# Verify loop for the SwiftDir reproduction.
#
#   make check       — the full gate: vet + tests + race-detector pass
#   make test        — tier-1: build + tests (what the seed guarantees)
#   make race        — go test -race over every package (fan-out safety)
#   make bench       — benchmark suite (-benchmem -count=6) -> BENCH_<date>.json
#   make bench-smoke — 1-iteration pass through the same pipeline (CI)
#   make benchdiff   — fresh run vs the committed baseline, ns/op deltas
#   make bench-gate  — hot-path ns/op ceiling + zero-alloc pins (CI)
#   make serve       — build and run the swiftdir-serve HTTP front end
#   make serve-e2e   — boot a server, submit the same batch twice, assert
#                      the second pass is 100% cache hits, byte-identical
#   make fuzz        — brief run of the campaign scheduler fuzz target
#   make soak        — fault-injection soak sweep under -race (watchdog armed)
#   make mcheck      — exhaustive protocol model check (3 paper policies
#                      + Phase-Priority)
#   make proto-verify— single-source-of-truth gate: table invariants,
#                      differential conformance goldens, 0-alloc pins,
#                      table-dispatch fuzz corpus, model check
#   make cover       — coverage of the protocol+checker packages vs floor
#   make staticcheck — staticcheck, skipped when the binary is absent

GO ?= go

# Fuzz knobs shared between local runs and CI so the two cannot drift:
# override with  make fuzz FUZZTIME=30s  or point FUZZTARGET/FUZZPKG at a
# different corpus.
FUZZTARGET ?= FuzzCampaign
FUZZPKG    ?= ./internal/campaign
FUZZTIME   ?= 10s
FUZZTIME_LONG ?= 5m

# Coverage floor for `make cover`, in percent of statements across
# COVERPKGS. The floor is the measured baseline at the time the gate was
# added, minus a small noise margin; raise it as coverage grows, never
# lower it to admit a regression.
COVERPKGS  ?= ./internal/coherence,./internal/mcheck
# Measured baseline when the gate was added: 88.8% (2026-08-05).
COVERFLOOR ?= 87.0

# BENCHFILTER narrows `make bench` to a -bench regexp, e.g.
#   make bench BENCHFILTER='Engine|Access'
# BENCHTAG suffixes the output record so same-day runs don't collide, e.g.
#   make bench BENCHTAG=-fastpath  ->  BENCH_<date>-fastpath.json
BENCHFILTER ?= .
BENCHTAG    ?=
BENCHDATE   := $(shell date +%Y-%m-%d)$(BENCHTAG)

# benchdiff baseline: the newest committed record by default; override
# with  make benchdiff BENCHBASE=BENCH_2026-08-05.json
BENCHBASE ?= $(lastword $(sort $(wildcard BENCH_*.json)))

.PHONY: check build test vet race bench bench-smoke benchdiff bench-gate serve serve-e2e fuzz fuzz-long soak chaos mcheck proto-verify cover staticcheck

check: vet test race

build:
	$(GO) build ./...

test: build
	$(GO) test ./...

vet:
	$(GO) vet ./...

# -short skips the slowest full-suite runs; the race pass is about
# catching cross-job sharing in the campaign fan-out, which the short
# determinism and fuzz tests already exercise at full worker counts.
race:
	$(GO) test -race -short ./...

# Six repetitions per benchmark feed bench2json, which folds them into
# one entry each (min ns/op, max allocs/op) and writes the dated JSON
# record that seeds the repo's perf trajectory.
bench:
	$(GO) test -bench='$(BENCHFILTER)' -benchmem -count=6 -run=^$$ . > bench.raw
	@cat bench.raw
	$(GO) run ./cmd/bench2json < bench.raw > BENCH_$(BENCHDATE).json
	@rm -f bench.raw
	@echo "wrote BENCH_$(BENCHDATE).json"

# One iteration of every benchmark through the same parse pipeline; fast
# enough for CI, and proves both the benchmarks and bench2json still work.
bench-smoke:
	$(GO) test -bench=. -benchmem -benchtime=1x -run=^$$ . > bench.raw
	$(GO) run ./cmd/bench2json < bench.raw > /dev/null
	@rm -f bench.raw
	@echo "bench smoke ok"

# Three repetitions give a usable min ns/op without the full six-count
# cost; the diff itself is informational (exit 0), regressions are the
# reader's call. The gate below is the hard tripwire.
benchdiff:
	@test -n "$(BENCHBASE)" || { echo "no BENCH_*.json baseline found"; exit 1; }
	$(GO) test -bench='$(BENCHFILTER)' -benchmem -count=3 -run=^$$ . > bench.raw
	$(GO) run ./cmd/bench2json -diff '$(BENCHBASE)' < bench.raw
	@rm -f bench.raw

# Hard perf gate for CI: the coherence hot-path benchmarks must stay
# under a generous ns/op ceiling (≈3x the committed baseline, so only a
# real regression trips it on shared runners) and allocation-free. The
# result-cache lookup and singleflight leader paths (swiftdir-serve's
# per-request fast path) are pinned the same way.
bench-gate:
	$(GO) test -bench='^BenchmarkAccess|^BenchmarkShardedEngine|^BenchmarkResultCache|^BenchmarkSingleflight|^BenchmarkMeshRoute' -benchmem -benchtime=50000x -run=^$$ . > bench.raw
	@cat bench.raw
	$(GO) run ./cmd/bench2json \
		-ceiling 'BenchmarkAccessMESI=2500,BenchmarkAccessSharded4=7000,BenchmarkShardedEngineSeq=1500,BenchmarkShardedEngineShards4=1500,BenchmarkResultCacheHit=500,BenchmarkSingleflightDo=1000,BenchmarkMeshRoute=500,BenchmarkAccessMesh64=8000' \
		-zeroalloc '^BenchmarkAccess|^BenchmarkShardedEngine|^BenchmarkResultCache|^BenchmarkSingleflight|^BenchmarkMeshRoute' < bench.raw > /dev/null
	@rm -f bench.raw
	@echo "bench gate ok"

# Run the simulation service locally. Knobs:
#   make serve SERVE_ADDR=:9090 SERVE_CACHEDIR=/var/tmp/swiftdir-cache
SERVE_ADDR     ?= :8080
SERVE_CACHEDIR ?=
serve: build
	$(GO) run ./cmd/swiftdir-serve -addr '$(SERVE_ADDR)' -cachedir '$(SERVE_CACHEDIR)'

# End-to-end cache proof against a real server process: boot, submit the
# same 3-experiment batch twice, assert the second pass is 100% cache
# hits with byte-identical report bodies, then drain gracefully (CI).
serve-e2e: build
	./scripts/serve-e2e.sh

fuzz:
	$(GO) test -run=^$$ -fuzz=$(FUZZTARGET) -fuzztime=$(FUZZTIME) $(FUZZPKG)

# Short fault-injection soak sweep under the race detector: each
# benchmark runs under SOAK_PLANS deterministic fault plans (plan 0 is
# the no-fault control) with the liveness watchdog armed; architectural
# results must be byte-identical across plans. Crash bundles from any
# failure land in SOAK_ARTIFACTS (CI uploads that directory) and replay
# with `swiftdir-sim -replay <bundle>`.
SOAK_ARTIFACTS ?= soak-bundles
SOAK_BENCHES   ?= mcf,dedup
SOAK_PLANS     ?= 8
SOAK_SEED      ?= 1
soak:
	$(GO) run -race ./cmd/swiftdir-sim -soak -bench '$(SOAK_BENCHES)' \
		-scale 0.05 -plans $(SOAK_PLANS) -planseed $(SOAK_SEED) \
		-bundledir '$(SOAK_ARTIFACTS)'

# Chaos sweep on the scaled machine under the race detector: the
# CHAOS_CORES-core mesh/two-level topology swept under the scaled plan
# generator — mesh per-link delay spikes, pinned-link storms, and
# cluster-hub busy windows on top of the flat machine's fault classes —
# with the watchdog armed and the same metamorphic oracle (timing faults
# must move cycles only). Crash bundles land in SOAK_ARTIFACTS, carry
# the scaled topology in replay.json, and reproduce at any shard count
# with `swiftdir-sim -replay <bundle>`.
CHAOS_CORES ?= 64
chaos:
	$(GO) run -race ./cmd/swiftdir-sim -soak -soakscaled -soakcores $(CHAOS_CORES) \
		-bench '$(SOAK_BENCHES)' -scale 0.02 -plans $(SOAK_PLANS) \
		-planseed $(SOAK_SEED) -bundledir '$(SOAK_ARTIFACTS)'

fuzz-long:
	$(GO) test -run=^$$ -fuzz=$(FUZZTARGET) -fuzztime=$(FUZZTIME_LONG) $(FUZZPKG)

# Bounded-exhaustive model check of the three paper protocols plus
# Phase-Priority on the default 2-core/1-line configuration, every
# interleaving explored. On a violation the minimal counterexample lands
# in MCHECK_ARTIFACTS (CI uploads that directory); locally it also
# prints to stdout.
MCHECK_ARTIFACTS ?= mcheck-artifacts
mcheck: build
	$(GO) run ./cmd/swiftdir-mcheck -policy all -coverage -artifacts '$(MCHECK_ARTIFACTS)'

# Single-source-of-truth gate for the table-driven protocol engine:
#   1. proto package invariants — every table total (no unclassified
#      cells), the pre-refactor relations preserved verbatim,
#      Phase-Priority structurally identical to MESI, lookups 0-alloc;
#   2. the differential conformance harness — golden transcripts and
#      table-vs-controller dispatch parity in internal/coherence, plus
#      the steady-state/fast-path 0-alloc pins the refactor must not
#      regress;
#   3. the checker-side completeness and shared-instance tests and the
#      4-policy transition-coverage matrix;
#   4. a brief run of the table-dispatch fuzzer (regression corpus runs
#      in `make test`; this also explores new schedules);
#   5. the exhaustive model check of all four policies (see mcheck).
proto-verify: build
	$(GO) test -count=1 ./internal/proto
	$(GO) test -count=1 -run 'TestProtocolConformance|TestTranscriptGoldens|TestSteadyStateL1HitZeroAlloc|TestSteadyStateMissZeroAlloc|TestFastPathZeroAlloc' ./internal/coherence
	$(GO) test -count=1 -run 'TestTablesComplete|TestTablesAreSharedWithDispatch|TestTransitionCoverage' ./internal/mcheck
	$(GO) test -run=^$$ -fuzz=FuzzTableDispatch -fuzztime=$(FUZZTIME) ./internal/mcheck
	$(GO) run ./cmd/swiftdir-mcheck -policy all -artifacts '$(MCHECK_ARTIFACTS)'

# Statement-coverage gate over the protocol and model-checker packages.
# awk compares against the floor so the gate needs no extra tooling.
cover:
	$(GO) test -coverprofile=cover.out -coverpkg='$(COVERPKGS)' \
		./internal/coherence ./internal/mcheck
	@$(GO) tool cover -func=cover.out | tail -n 1
	@$(GO) tool cover -func=cover.out | awk -v floor=$(COVERFLOOR) \
		'END { pct = $$3 + 0; if (pct < floor) { \
			printf "coverage %.1f%% below floor %.1f%%\n", pct, floor; exit 1 } \
			else printf "coverage %.1f%% >= floor %.1f%%\n", pct, floor }'
	@rm -f cover.out

# staticcheck is optional locally (the repo must build with a bare Go
# toolchain); CI installs it and the target then enforces a clean run.
staticcheck:
	@if command -v staticcheck >/dev/null 2>&1; then \
		staticcheck ./...; \
	else \
		echo "staticcheck not installed; skipping (CI runs it)"; \
	fi
