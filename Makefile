# Verify loop for the SwiftDir reproduction.
#
#   make check       — the full gate: vet + tests + race-detector pass
#   make test        — tier-1: build + tests (what the seed guarantees)
#   make race        — go test -race over every package (fan-out safety)
#   make bench       — benchmark suite (-benchmem -count=6) -> BENCH_<date>.json
#   make bench-smoke — 1-iteration pass through the same pipeline (CI)
#   make fuzz        — brief run of the campaign scheduler fuzz target

GO ?= go

# BENCHFILTER narrows `make bench` to a -bench regexp, e.g.
#   make bench BENCHFILTER='Engine|Access'
BENCHFILTER ?= .
BENCHDATE   := $(shell date +%Y-%m-%d)

.PHONY: check build test vet race bench bench-smoke fuzz fuzz-long

check: vet test race

build:
	$(GO) build ./...

test: build
	$(GO) test ./...

vet:
	$(GO) vet ./...

# -short skips the slowest full-suite runs; the race pass is about
# catching cross-job sharing in the campaign fan-out, which the short
# determinism and fuzz tests already exercise at full worker counts.
race:
	$(GO) test -race -short ./...

# Six repetitions per benchmark feed bench2json, which folds them into
# one entry each (min ns/op, max allocs/op) and writes the dated JSON
# record that seeds the repo's perf trajectory.
bench:
	$(GO) test -bench='$(BENCHFILTER)' -benchmem -count=6 -run=^$$ . > bench.raw
	@cat bench.raw
	$(GO) run ./cmd/bench2json < bench.raw > BENCH_$(BENCHDATE).json
	@rm -f bench.raw
	@echo "wrote BENCH_$(BENCHDATE).json"

# One iteration of every benchmark through the same parse pipeline; fast
# enough for CI, and proves both the benchmarks and bench2json still work.
bench-smoke:
	$(GO) test -bench=. -benchmem -benchtime=1x -run=^$$ . > bench.raw
	$(GO) run ./cmd/bench2json < bench.raw > /dev/null
	@rm -f bench.raw
	@echo "bench smoke ok"

fuzz:
	$(GO) test -run=^$$ -fuzz=FuzzCampaign -fuzztime=10s ./internal/campaign

fuzz-long:
	$(GO) test -run=^$$ -fuzz=FuzzCampaign -fuzztime=5m ./internal/campaign
