# Verify loop for the SwiftDir reproduction.
#
#   make check   — the full gate: vet + tests + race-detector pass
#   make test    — tier-1: build + tests (what the seed guarantees)
#   make race    — go test -race over every package (fan-out safety)
#   make bench   — the per-figure benchmark harness
#   make fuzz    — brief run of the campaign scheduler fuzz target

GO ?= go

.PHONY: check build test vet race bench fuzz fuzz-long

check: vet test race

build:
	$(GO) build ./...

test: build
	$(GO) test ./...

vet:
	$(GO) vet ./...

# -short skips the slowest full-suite runs; the race pass is about
# catching cross-job sharing in the campaign fan-out, which the short
# determinism and fuzz tests already exercise at full worker counts.
race:
	$(GO) test -race -short ./...

bench:
	$(GO) test -bench=. -benchmem -run=^$$ .

fuzz:
	$(GO) test -run=^$$ -fuzz=FuzzCampaign -fuzztime=10s ./internal/campaign

fuzz-long:
	$(GO) test -run=^$$ -fuzz=FuzzCampaign -fuzztime=5m ./internal/campaign
