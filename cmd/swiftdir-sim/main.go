// Command swiftdir-sim runs benchmarks on one protocol and prints the
// measured results with detailed hierarchy statistics.
//
// Usage:
//
//	swiftdir-sim -list
//	swiftdir-sim -bench mcf -protocol SwiftDir -cpu DerivO3CPU [-scale f]
//	swiftdir-sim -bench mcf,lbm,xz -j 4            # campaign over several benchmarks
//	swiftdir-sim -bench dedup -config machine.json
//	swiftdir-sim -dumpconfig machine.json -protocol S-MESI -cores 4
//	swiftdir-sim -soak -bench mcf -plans 8 -bundledir soak-bundles
//	swiftdir-sim -replay soak-bundles/plan-03-forced-c41288
//
// -bench accepts a comma-separated list; the runs fan out over -j
// concurrent workers (default: $SWIFTDIR_JOBS, else runtime.NumCPU())
// and print in list order regardless of completion order.
//
// -shards (default: $SWIFTDIR_SHARDS, else 1) shards each machine's
// event engine for parallel simulation; reports are byte-identical at
// every shard count, and the per-shard engine accounting prints to
// stderr as a [shards] footer. Shards compose with -j: each concurrent
// job runs its own machine on that many shards.
//
// -soak runs each benchmark under -plans deterministic fault plans
// (plan 0 is the no-fault control) with the liveness watchdog armed and
// asserts the architectural results are byte-identical across plans; a
// failing run is captured as a crash bundle under -bundledir, and
// -replay re-executes a bundle's replay.json to reproduce the recorded
// failure exactly. -soakscaled moves the sweep onto the scaled machine
// (-soakcores cores, mesh interconnect, two-level directory past 32
// cores) and draws from the scaled plan generator, which adds mesh
// per-link delay spikes, pinned-link storms, and cluster-hub busy
// windows to the flat machine's fault classes; bundles carry the scaled
// topology and replay on it at any shard count.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"repro/internal/campaign"
	"repro/internal/coherence"
	"repro/internal/core"
	"repro/internal/fault"
	"repro/internal/interconnect"
	"repro/internal/prof"
	"repro/internal/soak"
	"repro/internal/stats"
	"repro/internal/workload"
)

func main() {
	list := flag.Bool("list", false, "list available benchmarks and exit")
	bench := flag.String("bench", "mcf", "benchmark name or comma-separated list (see -list)")
	kernel := flag.String("kernel", "", "memory kernel to run instead of a benchmark (stream-triad, gups, pointer-chase)")
	kernelKB := flag.Int("kernelkb", 512, "kernel working-set size in KB")
	protoName := flag.String("protocol", "SwiftDir", strings.Join(coherence.PolicyNames(), ", "))
	cpuKind := flag.String("cpu", "DerivO3CPU", "TimingSimpleCPU or DerivO3CPU")
	scale := flag.Float64("scale", 1.0, "instruction-budget scale")
	configPath := flag.String("config", "", "machine configuration JSON (overrides -protocol)")
	dumpConfig := flag.String("dumpconfig", "", "write the default machine configuration to this file and exit")
	cores := flag.Int("cores", 4, "core count for -dumpconfig")
	jobs := flag.Int("j", 0, "concurrent benchmark runs for a -bench list (0 = $SWIFTDIR_JOBS, else NumCPU)")
	shards := flag.Int("shards", 0, "event-engine shards per machine, 1..64 (0 = $SWIFTDIR_SHARDS, else 1); results are byte-identical at every value")
	verbose := flag.Bool("v", true, "print hierarchy statistics")
	soakFlag := flag.Bool("soak", false, "fault-injection soak sweep over -bench (see package doc)")
	soakScaled := flag.Bool("soakscaled", false, "run -soak on the scaled machine (mesh + two-level directory) with mesh/hub fault classes")
	soakCores := flag.Int("soakcores", 64, "core count for -soakscaled")
	plansN := flag.Int("plans", 8, "fault plans per -soak benchmark (plan 0 is the no-fault control)")
	planSeed := flag.Uint64("planseed", 1, "seed for -soak plan generation")
	bundleDir := flag.String("bundledir", "soak-bundles", "crash-bundle directory for -soak failures")
	replayPath := flag.String("replay", "", "replay a crash bundle (directory or replay.json) and exit")
	var pf prof.Flags
	pf.Register(flag.CommandLine)
	flag.Parse()

	stopProf, err := pf.Start()
	if err != nil {
		fatal("%v", err)
	}
	defer func() {
		if err := stopProf(); err != nil {
			fmt.Fprintf(os.Stderr, "swiftdir-sim: profile: %v\n", err)
		}
	}()

	campaign.SetWorkers(*jobs)
	nshards, err := campaign.ResolveShards(*shards)
	if err != nil {
		fmt.Fprintf(os.Stderr, "swiftdir-sim: %v\n", err)
		flag.Usage()
		os.Exit(2)
	}
	campaign.SetShards(nshards)
	stats.TakeShards() // start from a clean footer slate

	if *list {
		fmt.Println("SPEC CPU 2017 (single-threaded):")
		for _, p := range workload.SPEC2017() {
			fmt.Printf("  %-12s mem=%.2f store=%.2f WAR=%.2f ws=%dKB\n",
				p.Name, p.MemFrac, p.StoreFrac, p.WARFrac, p.WorkingSetKB)
		}
		fmt.Println("Memory kernels (-kernel):")
		for _, k := range workload.Kernels() {
			fmt.Printf("  %s\n", k.Name)
		}
		fmt.Println("PARSEC 3.0 (4 threads):")
		for _, p := range workload.PARSEC3() {
			fmt.Printf("  %-14s mem=%.2f shared=%.2f sharedKB=%d barrierEvery=%d\n",
				p.Name, p.MemFrac, p.SharedFrac, p.SharedKB, p.BarrierEvery)
		}
		return
	}

	if *dumpConfig != "" {
		proto := coherence.PolicyByName(*protoName)
		if proto == nil {
			fatal("unknown protocol %q", *protoName)
		}
		if err := core.SaveConfig(*dumpConfig, core.DefaultConfig(*cores, proto)); err != nil {
			fatal("%v", err)
		}
		fmt.Printf("wrote %s\n", *dumpConfig)
		return
	}

	if *replayPath != "" {
		out, err := soak.Replay(*replayPath)
		if err != nil {
			fatal("%v", err)
		}
		fmt.Print(out.Describe())
		if out.Violation != nil {
			os.Exit(1) // reproduced the recorded failure
		}
		return
	}

	if *soakFlag {
		runSoak(strings.Split(*bench, ","), *protoName, workload.CPUKind(*cpuKind),
			*scale, *plansN, *planSeed, *bundleDir, *soakScaled, *soakCores)
		return
	}

	if *kernel != "" {
		k, ok := workload.KernelByName(*kernel)
		if !ok {
			fatal("unknown kernel %q", *kernel)
		}
		proto := coherence.PolicyByName(*protoName)
		if proto == nil {
			fatal("unknown protocol %q", *protoName)
		}
		res, err := workload.RunKernel(k, proto, workload.CPUKind(*cpuKind), *kernelKB<<10)
		if err != nil {
			fatal("%v", err)
		}
		fmt.Printf("kernel       : %s (%d KB working set)\n", res.Benchmark, *kernelKB)
		fmt.Printf("protocol     : %s on %s\n", res.Protocol, res.CPU)
		fmt.Printf("instructions : %d in %d cycles (IPC %.4f)\n", res.Instrs, res.ExecCycles, res.IPC)
		printShardFooters()
		return
	}

	// One job per requested benchmark; reports print in list order.
	names := strings.Split(*bench, ",")
	var benchJobs []campaign.Job[string]
	for _, name := range names {
		name := strings.TrimSpace(name)
		prof, ok := workload.ProfileByName(name)
		if !ok {
			fatal("unknown benchmark %q (try -list)", name)
		}
		prof = prof.Scale(*scale)
		benchJobs = append(benchJobs, campaign.Job[string]{
			Name: name,
			Run: func() (string, error) {
				return runOne(prof, *configPath, *protoName, workload.CPUKind(*cpuKind), *verbose)
			},
		})
	}
	reports, err := campaign.Collect(0, benchJobs)
	for i, r := range reports {
		if i > 0 {
			fmt.Println(strings.Repeat("-", 60))
		}
		fmt.Print(r)
	}
	// Shard accounting carries per-run engine internals, so it goes to
	// stderr: stdout stays byte-identical at any -shards value.
	printShardFooters()
	if err != nil {
		fatal("%v", err)
	}
}

// printShardFooters drains the queued [shards] summaries to stderr.
func printShardFooters() {
	for _, s := range stats.TakeShards() {
		fmt.Fprintln(os.Stderr, s.Footer())
	}
}

// runSoak sweeps every benchmark through plansN deterministic fault
// plans with the watchdog armed and fails loudly if any plan crashes or
// moves an architectural result.
func runSoak(names []string, protoName string, kind workload.CPUKind,
	scale float64, plansN int, planSeed uint64, bundleDir string, scaled bool, cores int) {
	var plans []fault.Plan
	if scaled {
		w, h := core.MeshDims(cores)
		plans = fault.RandomScaledPlans(plansN, planSeed, interconnect.MeshLinks(w, h))
		fmt.Printf("soak: scaled machine (%d cores, %dx%d mesh), ", cores, w, h)
	} else {
		plans = fault.RandomPlans(plansN, planSeed)
		fmt.Print("soak: ")
	}
	fmt.Printf("%d plans (seed %d), watchdog %+v, bundles -> %s\n",
		len(plans), planSeed, soak.DefaultWatchdog(), bundleDir)
	failed := false
	for _, name := range names {
		name = strings.TrimSpace(name)
		base := soak.Spec{
			Benchmark: name,
			Protocol:  protoName,
			CPU:       kind,
			Scale:     scale,
			Scaled:    scaled,
			Watchdog:  soak.DefaultWatchdog(),
		}
		if scaled {
			base.Cores = cores
		}
		res := soak.Sweep(base, plans, bundleDir, 0)
		for _, po := range res.Outcomes {
			status := "ok"
			if po.Err != nil {
				status = "FAIL"
			}
			fmt.Printf("  %-12s %-10s %s", name, po.Plan.Name, status)
			if po.Bundle != "" {
				fmt.Printf("  bundle=%s", po.Bundle)
			}
			fmt.Println()
		}
		if res.Err != nil {
			failed = true
			fmt.Fprintf(os.Stderr, "swiftdir-sim: soak %s: %v\n", name, res.Err)
		} else {
			fmt.Printf("  %-12s architectural results identical across %d plans (hash %.16s...)\n",
				name, len(plans), res.Outcomes[0].Result.MemImageHash)
		}
	}
	printShardFooters()
	if failed {
		os.Exit(1)
	}
}

// runOne executes a single benchmark and renders its report. It builds
// its own machine, so concurrent invocations are independent.
func runOne(prof workload.Profile, configPath, protoName string, kind workload.CPUKind, verbose bool) (string, error) {
	var cfg core.Config
	if configPath != "" {
		var err error
		cfg, err = core.LoadConfig(configPath)
		if err != nil {
			return "", fmt.Errorf("config: %w", err)
		}
	} else {
		proto := coherence.PolicyByName(protoName)
		if proto == nil {
			return "", fmt.Errorf("unknown protocol %q", protoName)
		}
		n := 1
		for n < prof.Threads {
			n *= 2
		}
		cfg = core.DefaultConfig(n, proto)
	}

	res, m, err := workload.RunDetailed(prof, cfg, kind)
	if err != nil {
		return "", err
	}

	var b strings.Builder
	fmt.Fprintf(&b, "benchmark    : %s (%s)\n", res.Benchmark, prof.Suite)
	fmt.Fprintf(&b, "protocol     : %s\n", res.Protocol)
	fmt.Fprintf(&b, "cpu model    : %s (L1 %s)\n", res.CPU, cfg.L1Arch)
	fmt.Fprintf(&b, "threads      : %d on %d cores\n", prof.Threads, cfg.Cores)
	fmt.Fprintf(&b, "instructions : %d\n", res.Instrs)
	fmt.Fprintf(&b, "cycles       : %d\n", res.ExecCycles)
	fmt.Fprintf(&b, "IPC/thread   : %.4f\n", res.IPC)
	for i, s := range res.PerThread {
		fmt.Fprintf(&b, "  thread %d   : %d instrs, %d loads, %d stores, %d cycles (IPC %.4f)\n",
			i, s.Instructions, s.Loads, s.Stores, s.Cycles(), s.IPC())
	}
	if !verbose {
		return b.String(), nil
	}

	b.WriteString("\nhierarchy statistics:\n")
	for _, l1 := range m.Sys.L1s {
		st := l1.Stats
		if st.Loads+st.Stores == 0 {
			continue
		}
		missRate := 1 - float64(st.LoadHits+st.StoreHits+st.SilentUpgrades)/float64(st.Loads+st.Stores)
		fmt.Fprintf(&b, "  L1 %-2d      : %d loads, %d stores, miss rate %.2f%%, %d silent upgrades, %d explicit upgrades, %d writebacks\n",
			l1.ID, st.Loads, st.Stores, 100*missRate, st.SilentUpgrades, st.ExplicitUpgrades, st.Writebacks)
		fmt.Fprintf(&b, "               fast path: %d fast hits, %d via event engine (%.1f%% fast)\n",
			st.FastHits, st.SlowPath,
			100*float64(st.FastHits)/float64(st.FastHits+st.SlowPath))
	}
	bs := m.Sys.BankStatsTotal()
	fmt.Fprintf(&b, "  directory  : %d requests, %d LLC-served, %d forwards (3-hop), %d invalidations, %d upgrade acks, %d recalls\n",
		bs.Requests, bs.LLCServed, bs.Forwards, bs.Invals, bs.UpgradeAcks, bs.Recalls)
	fmt.Fprintf(&b, "  memory     : %d reads, %d writes, row hits/misses/conflicts %d/%d/%d, avg latency %.1f cycles\n",
		m.Sys.Mem.Reads, m.Sys.Mem.Writes, m.Sys.Mem.RowHits, m.Sys.Mem.RowMisses, m.Sys.Mem.RowConflicts, m.Sys.Mem.AvgLatency())
	fmt.Fprintf(&b, "  messages   : %d coherence messages total (GETS %d, GETS_WP %d, GETX %d, Upgrade %d, Fwd %d)\n",
		m.Sys.TotalMessages(),
		m.Sys.MsgCount(coherence.MsgGETS), m.Sys.MsgCount(coherence.MsgGETSWP),
		m.Sys.MsgCount(coherence.MsgGETX), m.Sys.MsgCount(coherence.MsgUpgrade),
		m.Sys.MsgCount(coherence.MsgFwdGETS)+m.Sys.MsgCount(coherence.MsgFwdGETX))
	return b.String(), nil
}

func fatal(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "swiftdir-sim: "+format+"\n", args...)
	os.Exit(1)
}
