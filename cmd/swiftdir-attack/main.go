// Command swiftdir-attack demonstrates the E/S coherence timing-channel
// attacks against all three protocols: the covert channel leaks on MESI
// and collapses to guessing under SwiftDir and S-MESI; likewise the
// access-detection side channel.
//
// Usage:
//
//	swiftdir-attack [-bits n] [-trials n] [-secret text] [-policies a,b,...]
//
// -policies selects which protocols the exfiltration demo runs against
// (any names coherence.PolicyByName resolves, e.g. Phase-Priority to show
// that directory arbitration alone leaves the channel open).
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"repro/internal/attack"
	"repro/internal/coherence"
	"repro/internal/core"
	"repro/internal/experiments"
	"repro/internal/prof"
)

func main() {
	bits := flag.Int("bits", 1024, "covert-channel bits")
	trials := flag.Int("trials", 512, "side-channel trials")
	secret := flag.String("secret", "SwiftDir", "ASCII secret to exfiltrate in the demo")
	policyList := flag.String("policies", "MESI,SwiftDir",
		"comma-separated policies for the exfiltration demo")
	var pf prof.Flags
	pf.Register(flag.CommandLine)
	flag.Parse()

	stopProf, err := pf.Start()
	if err != nil {
		fmt.Fprintf(os.Stderr, "swiftdir-attack: %v\n", err)
		os.Exit(1)
	}
	defer func() {
		if err := stopProf(); err != nil {
			fmt.Fprintf(os.Stderr, "swiftdir-attack: profile: %v\n", err)
		}
	}()

	var demoPolicies []coherence.Policy
	for _, name := range strings.Split(*policyList, ",") {
		p := coherence.PolicyByName(strings.TrimSpace(name))
		if p == nil {
			fmt.Fprintf(os.Stderr, "swiftdir-attack: unknown policy %q\n", name)
			os.Exit(2)
		}
		demoPolicies = append(demoPolicies, p)
	}

	_, _, report := experiments.Security(*bits, *trials)
	fmt.Println(report)

	// Bonus demo: exfiltrate an actual ASCII secret through the channel.
	fmt.Printf("Exfiltrating %q through the covert channel:\n", *secret)
	payload := []byte(*secret)
	for _, p := range demoPolicies {
		ch, err := attack.NewChannel(core.DefaultConfig(4, p), len(payload)*8)
		if err != nil {
			fmt.Fprintf(os.Stderr, "swiftdir-attack: %v\n", err)
			os.Exit(1)
		}
		out := make([]byte, len(payload))
		for i := 0; i < len(payload)*8; i++ {
			bit := payload[i/8]>>(7-uint(i%8))&1 == 1
			if err := ch.Transmit(i, bit); err != nil {
				fmt.Fprintf(os.Stderr, "swiftdir-attack: %v\n", err)
				os.Exit(1)
			}
			got, _, err := ch.Probe(i)
			if err != nil {
				fmt.Fprintf(os.Stderr, "swiftdir-attack: %v\n", err)
				os.Exit(1)
			}
			if got {
				out[i/8] |= 1 << (7 - uint(i%8))
			}
		}
		fmt.Printf("  %-9s receiver decoded: %q\n", p.Name(), printable(out))
	}
}

func printable(b []byte) string {
	out := make([]byte, len(b))
	for i, c := range b {
		if c >= 32 && c < 127 {
			out[i] = c
		} else {
			out[i] = '.'
		}
	}
	return string(out)
}
