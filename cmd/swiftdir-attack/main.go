// Command swiftdir-attack demonstrates the E/S coherence timing-channel
// attacks against all three protocols: the covert channel leaks on MESI
// and collapses to guessing under SwiftDir and S-MESI; likewise the
// access-detection side channel.
//
// Usage:
//
//	swiftdir-attack [-bits n] [-trials n] [-secret text] [-policies a,b,...]
//	                [-scale] [-shards n]
//
// -policies selects which protocols the exfiltration demo runs against
// (any names coherence.PolicyByName resolves, e.g. Phase-Priority to show
// that directory arbitration alone leaves the channel open). -scale
// appends the machine-scaling study: the covert channel re-run on 16- and
// 64-core mesh machines with a two-level directory, against both a naive
// and a calibrating attacker. -shards shards each simulated machine's
// event engine; every report is byte-identical at any value.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"repro/internal/attack"
	"repro/internal/campaign"
	"repro/internal/coherence"
	"repro/internal/core"
	"repro/internal/experiments"
	"repro/internal/prof"
)

func main() {
	bits := flag.Int("bits", 1024, "covert-channel bits")
	trials := flag.Int("trials", 512, "side-channel trials")
	secret := flag.String("secret", "SwiftDir", "ASCII secret to exfiltrate in the demo")
	policyList := flag.String("policies", "MESI,SwiftDir",
		"comma-separated policies for the exfiltration demo")
	scale := flag.Bool("scale", false, "append the covert-channel scaling study (mesh, two-level directory)")
	shards := flag.Int("shards", 0, "event-engine shards per machine, 1..64 (0 = $SWIFTDIR_SHARDS, else 1)")
	var pf prof.Flags
	pf.Register(flag.CommandLine)
	flag.Parse()

	nshards, err := campaign.ResolveShards(*shards)
	if err != nil {
		fmt.Fprintf(os.Stderr, "swiftdir-attack: %v\n", err)
		os.Exit(2)
	}
	campaign.SetShards(nshards)
	defer campaign.SetShards(0)

	stopProf, err := pf.Start()
	if err != nil {
		fmt.Fprintf(os.Stderr, "swiftdir-attack: %v\n", err)
		os.Exit(1)
	}
	defer func() {
		if err := stopProf(); err != nil {
			fmt.Fprintf(os.Stderr, "swiftdir-attack: profile: %v\n", err)
		}
	}()

	var demoPolicies []coherence.Policy
	for _, name := range strings.Split(*policyList, ",") {
		p := coherence.PolicyByName(strings.TrimSpace(name))
		if p == nil {
			fmt.Fprintf(os.Stderr, "swiftdir-attack: unknown policy %q\n", name)
			os.Exit(2)
		}
		demoPolicies = append(demoPolicies, p)
	}

	_, _, report := experiments.Security(*bits, *trials)
	fmt.Println(report)

	// Bonus demo: exfiltrate an actual ASCII secret through the channel.
	fmt.Printf("Exfiltrating %q through the covert channel:\n", *secret)
	payload := []byte(*secret)
	for _, p := range demoPolicies {
		ch, err := attack.NewChannel(core.DefaultConfig(4, p), len(payload)*8)
		if err != nil {
			fmt.Fprintf(os.Stderr, "swiftdir-attack: %v\n", err)
			os.Exit(1)
		}
		out := make([]byte, len(payload))
		for i := 0; i < len(payload)*8; i++ {
			bit := payload[i/8]>>(7-uint(i%8))&1 == 1
			if err := ch.Transmit(i, bit); err != nil {
				fmt.Fprintf(os.Stderr, "swiftdir-attack: %v\n", err)
				os.Exit(1)
			}
			got, _, err := ch.Probe(i)
			if err != nil {
				fmt.Fprintf(os.Stderr, "swiftdir-attack: %v\n", err)
				os.Exit(1)
			}
			if got {
				out[i/8] |= 1 << (7 - uint(i%8))
			}
		}
		fmt.Printf("  %-9s receiver decoded: %q\n", p.Name(), printable(out))
	}

	if *scale {
		fmt.Println()
		fmt.Println(experiments.ScaleAttack(*bits / 8))
	}
}

func printable(b []byte) string {
	out := make([]byte, len(b))
	for i, c := range b {
		if c >= 32 && c < 127 {
			out[i] = c
		} else {
			out[i] = '.'
		}
	}
	return string(out)
}
