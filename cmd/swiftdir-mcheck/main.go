// Command swiftdir-mcheck runs the bounded-exhaustive protocol model
// checker (internal/mcheck) against the real coherence controllers: it
// explores every interleaving of a small configuration and checks SWMR,
// data-value consistency, deadlock freedom, and the per-policy
// transition relation in every reachable state.
//
// Usage:
//
//	swiftdir-mcheck [-policy name|all] [-cores n] [-clusters n] [-lines n]
//	                [-depth n] [-outstanding n] [-maxstates n] [-coverage]
//	                [-artifacts dir]
//
// On a violation it prints the minimal counterexample schedule and the
// replayed message transcript, optionally writes them to -artifacts (for
// CI upload), and exits 1.
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"repro/internal/coherence"
	"repro/internal/mcheck"
)

func main() {
	policy := flag.String("policy", "all", "protocol to check (MESI, SwiftDir, S-MESI, Phase-Priority, ...), or 'all' for the three paper protocols plus Phase-Priority")
	cores := flag.Int("cores", 2, "number of cores (1-4)")
	clusters := flag.Int("clusters", 0, "cluster count for the two-level directory (0/1 = flat; must divide -cores)")
	lines := flag.Int("lines", 1, "distinct cache lines accessed (1-8)")
	depth := flag.Int("depth", 4, "total accesses injected along any schedule")
	outstanding := flag.Int("outstanding", 2, "max in-flight accesses per core")
	maxStates := flag.Int("maxstates", 500000, "state cap before the search reports truncation")
	coverage := flag.Bool("coverage", false, "print the transition-relation coverage report")
	artifacts := flag.String("artifacts", "", "directory to write counterexample files into (for CI artifact upload)")
	flag.Parse()

	var policies []coherence.Policy
	if *policy == "all" {
		policies = append(append([]coherence.Policy{}, coherence.Policies...), coherence.PhasePriority)
		if *clusters > 1 {
			// The two-level directory requires FIFO bank queues, so the
			// arbitration variant is excluded from the default sweep.
			policies = policies[:len(coherence.Policies)]
		}
	} else {
		p := coherence.PolicyByName(*policy)
		if p == nil {
			fmt.Fprintf(os.Stderr, "swiftdir-mcheck: unknown policy %q\n", *policy)
			os.Exit(2)
		}
		policies = []coherence.Policy{p}
	}

	failed := false
	for _, p := range policies {
		res, err := mcheck.Run(mcheck.Config{
			Policy:         p,
			Cores:          *cores,
			Clusters:       *clusters,
			Lines:          *lines,
			Depth:          *depth,
			MaxOutstanding: *outstanding,
			MaxStates:      *maxStates,
		})
		if err != nil {
			fmt.Fprintf(os.Stderr, "swiftdir-mcheck: %v\n", err)
			os.Exit(2)
		}
		status := "OK"
		if res.Truncated {
			status = "TRUNCATED"
		}
		if res.Violation != nil {
			status = "VIOLATION"
			failed = true
		}
		fmt.Printf("%-10s %-10s states=%-8d edges=%-8d quiescent=%-5d terminal=%-5d maxdepth=%-3d %v\n",
			res.Policy, status, res.States, res.Edges, res.Quiescent,
			res.Terminal, res.MaxDepth, res.Elapsed.Round(1000000))

		if res.Violation != nil {
			fmt.Println()
			fmt.Println(res.Violation)
			if *artifacts != "" {
				if err := writeArtifact(*artifacts, res.Policy, res.Violation); err != nil {
					fmt.Fprintf(os.Stderr, "swiftdir-mcheck: %v\n", err)
				}
			}
		}
		if *coverage && res.Table != nil {
			fmt.Println()
			fmt.Print(res.Coverage())
		}
	}
	if failed {
		os.Exit(1)
	}
}

// writeArtifact saves one counterexample to dir, named after the policy.
func writeArtifact(dir, policy string, cx *mcheck.Counterexample) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	name := strings.ToLower(strings.ReplaceAll(policy, "/", "-"))
	path := filepath.Join(dir, fmt.Sprintf("counterexample-%s.txt", name))
	if err := os.WriteFile(path, []byte(cx.String()), 0o644); err != nil {
		return err
	}
	fmt.Printf("counterexample written to %s\n", path)
	return nil
}
