// Command bench2json converts `go test -bench -benchmem` output on stdin
// into the BENCH_<date>.json record the repo commits to track its perf
// trajectory across PRs (see `make bench`).
//
// Repeated runs of the same benchmark (-count=N) are folded into one
// entry: ns/op keeps the minimum across runs (the least-noise estimate),
// allocs/op and B/op keep the maximum (a regression in any run counts).
//
// Usage:
//
//	go test -bench=. -benchmem -count=6 -run='^$' . | bench2json > BENCH_2026-08-05.json
//
// With -diff it compares stdin against a committed baseline instead of
// emitting JSON, printing per-benchmark ns/op deltas (`make benchdiff`).
// Two gate flags make it a CI tripwire (`make bench-gate`): -ceiling
// fails the run when a named benchmark exceeds its ns/op budget, and
// -zeroalloc fails it when a benchmark matching the regexp allocates.
//
//	... | bench2json -diff BENCH_2026-08-05.json
//	... | bench2json -ceiling 'BenchmarkAccessMESI=2500' -zeroalloc '^BenchmarkAccess' > /dev/null
//
// -zeroalloc gates on allocs/op ONLY, never B/op. `go test -benchmem`
// reports both as total/N with B/op truncated to an integer, so a fixed
// one-time warmup cost inside the timed region (page-table growth, free
// lists) reads as 0 or 1 B/op purely depending on the iteration count the
// framework picks — exactly the BENCH_2026-08-05 (0 B/op) vs
// BENCH_2026-08-08-shards (1 B/op) drift on the BenchmarkAccess* rows,
// with allocs/op identically 0 in both records. allocs/op counts discrete
// allocation events, so a genuinely allocation-free steady state pins at
// 0 regardless of N; benchmarks should still hoist warmup before
// b.ResetTimer so the committed B/op numbers stay stable too.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"regexp"
	"strconv"
	"strings"
)

// Entry is one benchmark's folded result.
type Entry struct {
	Name        string  `json:"name"`
	Runs        int     `json:"runs"`
	NsPerOp     float64 `json:"ns_per_op"`
	AllocsPerOp float64 `json:"allocs_per_op"`
	BytesPerOp  float64 `json:"bytes_per_op"`
}

func main() {
	diffPath := flag.String("diff", "", "compare against this baseline JSON instead of emitting JSON")
	ceilings := flag.String("ceiling", "", "comma-separated name=ns/op budgets that fail the run when exceeded")
	zeroAlloc := flag.String("zeroalloc", "", "regexp of benchmarks that must report 0 allocs/op")
	flag.Parse()

	entries, err := parse(bufio.NewScanner(os.Stdin))
	if err != nil {
		fmt.Fprintf(os.Stderr, "bench2json: %v\n", err)
		os.Exit(1)
	}
	if len(entries) == 0 {
		fmt.Fprintln(os.Stderr, "bench2json: no benchmark lines on stdin")
		os.Exit(1)
	}

	violations := gate(entries, *ceilings, *zeroAlloc)
	for _, v := range violations {
		fmt.Fprintf(os.Stderr, "bench2json: GATE: %s\n", v)
	}

	if *diffPath != "" {
		if err := printDiff(os.Stdout, *diffPath, entries); err != nil {
			fmt.Fprintf(os.Stderr, "bench2json: %v\n", err)
			os.Exit(1)
		}
	} else {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(entries); err != nil {
			fmt.Fprintf(os.Stderr, "bench2json: %v\n", err)
			os.Exit(1)
		}
	}
	if len(violations) > 0 {
		os.Exit(1)
	}
}

// gate checks the budgets and returns a description of every violation.
// The ceiling spec is "Name=ns,Name=ns"; zeroAlloc is a regexp (empty
// disables). An unknown ceiling name is itself a violation, so a renamed
// benchmark cannot silently disarm the gate.
func gate(entries []*Entry, ceilings, zeroAlloc string) []string {
	var out []string
	byName := make(map[string]*Entry, len(entries))
	for _, e := range entries {
		byName[e.Name] = e
	}
	if ceilings != "" {
		for _, spec := range strings.Split(ceilings, ",") {
			name, limitStr, ok := strings.Cut(strings.TrimSpace(spec), "=")
			if !ok {
				out = append(out, fmt.Sprintf("bad -ceiling entry %q (want Name=ns)", spec))
				continue
			}
			limit, err := strconv.ParseFloat(limitStr, 64)
			if err != nil {
				out = append(out, fmt.Sprintf("bad -ceiling budget %q: %v", spec, err))
				continue
			}
			e := byName[name]
			if e == nil {
				out = append(out, fmt.Sprintf("%s: not found in benchmark output", name))
				continue
			}
			if e.NsPerOp > limit {
				out = append(out, fmt.Sprintf("%s: %.1f ns/op exceeds the %.1f ns/op ceiling", name, e.NsPerOp, limit))
			}
		}
	}
	if zeroAlloc != "" {
		re, err := regexp.Compile(zeroAlloc)
		if err != nil {
			return append(out, fmt.Sprintf("bad -zeroalloc regexp: %v", err))
		}
		matched := false
		for _, e := range entries {
			if !re.MatchString(e.Name) {
				continue
			}
			matched = true
			if e.AllocsPerOp != 0 {
				out = append(out, fmt.Sprintf("%s: %.0f allocs/op, pinned at 0", e.Name, e.AllocsPerOp))
			}
		}
		if !matched {
			out = append(out, fmt.Sprintf("-zeroalloc %q matched no benchmarks", zeroAlloc))
		}
	}
	return out
}

// printDiff renders per-benchmark ns/op deltas of entries vs the
// baseline JSON, in the fresh run's order, then lists baseline
// benchmarks that no longer exist.
func printDiff(w *os.File, baselinePath string, entries []*Entry) error {
	data, err := os.ReadFile(baselinePath)
	if err != nil {
		return err
	}
	var baseline []*Entry
	if err := json.Unmarshal(data, &baseline); err != nil {
		return fmt.Errorf("%s: %w", baselinePath, err)
	}
	base := make(map[string]*Entry, len(baseline))
	for _, e := range baseline {
		base[e.Name] = e
	}
	fmt.Fprintf(w, "%-40s %12s %12s %9s\n", "benchmark (vs "+baselinePath+")", "old ns/op", "new ns/op", "delta")
	seen := make(map[string]bool, len(entries))
	for _, e := range entries {
		seen[e.Name] = true
		b := base[e.Name]
		if b == nil {
			fmt.Fprintf(w, "%-40s %12s %12.1f %9s\n", e.Name, "-", e.NsPerOp, "new")
			continue
		}
		delta := "0.0%"
		if b.NsPerOp > 0 {
			delta = fmt.Sprintf("%+.1f%%", 100*(e.NsPerOp-b.NsPerOp)/b.NsPerOp)
		}
		fmt.Fprintf(w, "%-40s %12.1f %12.1f %9s\n", e.Name, b.NsPerOp, e.NsPerOp, delta)
	}
	for _, b := range baseline {
		if !seen[b.Name] {
			fmt.Fprintf(w, "%-40s %12.1f %12s %9s\n", b.Name, b.NsPerOp, "-", "removed")
		}
	}
	return nil
}

// parse folds benchmark result lines in first-seen order. Lines that are
// not benchmark results (headers, PASS, campaign footers, ReportMetric
// units it does not know) are ignored.
func parse(sc *bufio.Scanner) ([]*Entry, error) {
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	byName := make(map[string]*Entry)
	var order []*Entry
	for sc.Scan() {
		line := sc.Text()
		if !strings.HasPrefix(line, "Benchmark") {
			continue
		}
		fields := strings.Fields(line)
		if len(fields) < 4 {
			continue
		}
		// Strip the -GOMAXPROCS suffix so entries are machine-portable.
		name := fields[0]
		if i := strings.LastIndexByte(name, '-'); i > 0 {
			name = name[:i]
		}
		e := byName[name]
		if e == nil {
			e = &Entry{Name: name}
			byName[name] = e
			order = append(order, e)
		}
		e.Runs++
		// fields[1] is the iteration count; the rest are (value, unit)
		// pairs: "17.44 ns/op  0 B/op  0 allocs/op" plus any ReportMetric
		// extras, which are skipped.
		for i := 2; i+1 < len(fields); i += 2 {
			v, err := strconv.ParseFloat(fields[i], 64)
			if err != nil {
				continue
			}
			switch fields[i+1] {
			case "ns/op":
				if e.Runs == 1 || v < e.NsPerOp {
					e.NsPerOp = v
				}
			case "allocs/op":
				if v > e.AllocsPerOp {
					e.AllocsPerOp = v
				}
			case "B/op":
				if v > e.BytesPerOp {
					e.BytesPerOp = v
				}
			}
		}
	}
	return order, sc.Err()
}
