// Command bench2json converts `go test -bench -benchmem` output on stdin
// into the BENCH_<date>.json record the repo commits to track its perf
// trajectory across PRs (see `make bench`).
//
// Repeated runs of the same benchmark (-count=N) are folded into one
// entry: ns/op keeps the minimum across runs (the least-noise estimate),
// allocs/op and B/op keep the maximum (a regression in any run counts).
//
// Usage:
//
//	go test -bench=. -benchmem -count=6 -run='^$' . | bench2json > BENCH_2026-08-05.json
package main

import (
	"bufio"
	"encoding/json"
	"fmt"
	"os"
	"strconv"
	"strings"
)

// Entry is one benchmark's folded result.
type Entry struct {
	Name        string  `json:"name"`
	Runs        int     `json:"runs"`
	NsPerOp     float64 `json:"ns_per_op"`
	AllocsPerOp float64 `json:"allocs_per_op"`
	BytesPerOp  float64 `json:"bytes_per_op"`
}

func main() {
	entries, err := parse(bufio.NewScanner(os.Stdin))
	if err != nil {
		fmt.Fprintf(os.Stderr, "bench2json: %v\n", err)
		os.Exit(1)
	}
	if len(entries) == 0 {
		fmt.Fprintln(os.Stderr, "bench2json: no benchmark lines on stdin")
		os.Exit(1)
	}
	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	if err := enc.Encode(entries); err != nil {
		fmt.Fprintf(os.Stderr, "bench2json: %v\n", err)
		os.Exit(1)
	}
}

// parse folds benchmark result lines in first-seen order. Lines that are
// not benchmark results (headers, PASS, campaign footers, ReportMetric
// units it does not know) are ignored.
func parse(sc *bufio.Scanner) ([]*Entry, error) {
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	byName := make(map[string]*Entry)
	var order []*Entry
	for sc.Scan() {
		line := sc.Text()
		if !strings.HasPrefix(line, "Benchmark") {
			continue
		}
		fields := strings.Fields(line)
		if len(fields) < 4 {
			continue
		}
		// Strip the -GOMAXPROCS suffix so entries are machine-portable.
		name := fields[0]
		if i := strings.LastIndexByte(name, '-'); i > 0 {
			name = name[:i]
		}
		e := byName[name]
		if e == nil {
			e = &Entry{Name: name}
			byName[name] = e
			order = append(order, e)
		}
		e.Runs++
		// fields[1] is the iteration count; the rest are (value, unit)
		// pairs: "17.44 ns/op  0 B/op  0 allocs/op" plus any ReportMetric
		// extras, which are skipped.
		for i := 2; i+1 < len(fields); i += 2 {
			v, err := strconv.ParseFloat(fields[i], 64)
			if err != nil {
				continue
			}
			switch fields[i+1] {
			case "ns/op":
				if e.Runs == 1 || v < e.NsPerOp {
					e.NsPerOp = v
				}
			case "allocs/op":
				if v > e.AllocsPerOp {
					e.AllocsPerOp = v
				}
			case "B/op":
				if v > e.BytesPerOp {
					e.BytesPerOp = v
				}
			}
		}
	}
	return order, sc.Err()
}
