package main

import (
	"bufio"
	"os"
	"strings"
	"testing"
)

const sample = `goos: linux
goarch: amd64
pkg: repro
BenchmarkEngineEventThroughput-8   	68719476	        17.44 ns/op	       0 B/op	       0 allocs/op
BenchmarkEngineEventThroughput-8   	68719476	        18.02 ns/op	       0 B/op	       0 allocs/op
BenchmarkAccessMESI-8              	 1634336	       703.1 ns/op	       0 B/op	       0 allocs/op
BenchmarkFig7_SPEC-8               	       2	 512345678 ns/op	        95.40 SwiftDir-normIPC	        97.10 SMESI-normIPC	  524288 B/op	    4096 allocs/op
PASS
ok  	repro	12.345s
`

func TestParseFoldsRuns(t *testing.T) {
	entries, err := parse(bufio.NewScanner(strings.NewReader(sample)))
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 3 {
		t.Fatalf("got %d entries, want 3", len(entries))
	}
	e := entries[0]
	if e.Name != "BenchmarkEngineEventThroughput" || e.Runs != 2 {
		t.Fatalf("first entry = %+v", e)
	}
	if e.NsPerOp != 17.44 {
		t.Fatalf("ns/op should keep the minimum across runs: got %v", e.NsPerOp)
	}
	if e.AllocsPerOp != 0 || e.BytesPerOp != 0 {
		t.Fatalf("allocs/bytes = %v/%v, want 0/0", e.AllocsPerOp, e.BytesPerOp)
	}
	// ReportMetric extras must not pollute the standard fields.
	fig := entries[2]
	if fig.Name != "BenchmarkFig7_SPEC" || fig.NsPerOp != 512345678 || fig.AllocsPerOp != 4096 {
		t.Fatalf("fig7 entry = %+v", fig)
	}
}

func TestParseEmptyInput(t *testing.T) {
	entries, err := parse(bufio.NewScanner(strings.NewReader("PASS\n")))
	if err != nil || len(entries) != 0 {
		t.Fatalf("entries=%v err=%v", entries, err)
	}
}

func TestGate(t *testing.T) {
	entries, err := parse(bufio.NewScanner(strings.NewReader(sample)))
	if err != nil {
		t.Fatal(err)
	}
	if v := gate(entries, "BenchmarkAccessMESI=2500", "^BenchmarkAccessMESI$"); len(v) != 0 {
		t.Fatalf("clean run reported violations: %v", v)
	}
	v := gate(entries, "BenchmarkAccessMESI=500,BenchmarkMissing=1", "^BenchmarkFig7")
	if len(v) != 3 {
		t.Fatalf("got %d violations, want 3 (ceiling, missing name, allocs): %v", len(v), v)
	}
	if v := gate(entries, "", "^NoSuchBenchmark"); len(v) != 1 {
		t.Fatalf("unmatched -zeroalloc regexp must be a violation, got %v", v)
	}
	if v := gate(entries, "garbage", ""); len(v) != 1 {
		t.Fatalf("malformed ceiling spec must be a violation, got %v", v)
	}
}

func TestPrintDiff(t *testing.T) {
	entries, err := parse(bufio.NewScanner(strings.NewReader(sample)))
	if err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	baseline := dir + "/base.json"
	if err := os.WriteFile(baseline, []byte(`[
  {"name": "BenchmarkAccessMESI", "runs": 6, "ns_per_op": 800.0},
  {"name": "BenchmarkGone", "runs": 6, "ns_per_op": 42.0}
]`), 0o644); err != nil {
		t.Fatal(err)
	}
	out := dir + "/diff.txt"
	f, err := os.Create(out)
	if err != nil {
		t.Fatal(err)
	}
	if err := printDiff(f, baseline, entries); err != nil {
		t.Fatal(err)
	}
	f.Close()
	text, err := os.ReadFile(out)
	if err != nil {
		t.Fatal(err)
	}
	got := string(text)
	for _, want := range []string{"-12.1%", "new", "removed", "BenchmarkGone", "BenchmarkEngineEventThroughput"} {
		if !strings.Contains(got, want) {
			t.Errorf("diff output missing %q:\n%s", want, got)
		}
	}
}
