// Command swiftdir-trace records benchmark instruction traces to a
// compact binary file, inspects them, and replays them on any protocol and
// CPU model — so a workload can be captured once and compared across
// configurations bit-for-bit.
//
// Usage:
//
//	swiftdir-trace -record mcf -o mcf.swtr [-scale f]
//	swiftdir-trace -info mcf.swtr
//	swiftdir-trace -replay mcf.swtr [-protocol SwiftDir] [-cpu DerivO3CPU]
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"repro/internal/coherence"
	"repro/internal/cpu"
	"repro/internal/prof"
	"repro/internal/workload"
)

func main() {
	record := flag.String("record", "", "benchmark to record (see swiftdir-sim -list)")
	out := flag.String("o", "trace.swtr", "output file for -record")
	info := flag.String("info", "", "trace file to summarize")
	replay := flag.String("replay", "", "trace file to replay")
	protoName := flag.String("protocol", "SwiftDir",
		"protocol for -replay ("+strings.Join(coherence.PolicyNames(), ", ")+")")
	cpuKind := flag.String("cpu", "DerivO3CPU", "CPU model for -replay")
	scale := flag.Float64("scale", 0.25, "instruction-budget scale for -record")
	var pf prof.Flags
	pf.Register(flag.CommandLine)
	flag.Parse()

	stopProf, err := pf.Start()
	if err != nil {
		fatal("%v", err)
	}
	defer func() {
		if err := stopProf(); err != nil {
			fmt.Fprintf(os.Stderr, "swiftdir-trace: profile: %v\n", err)
		}
	}()

	switch {
	case *record != "":
		prof, ok := workload.ProfileByName(*record)
		if !ok {
			fatal("unknown benchmark %q", *record)
		}
		threads, err := workload.Record(prof.Scale(*scale))
		if err != nil {
			fatal("record: %v", err)
		}
		f, err := os.Create(*out)
		if err != nil {
			fatal("create: %v", err)
		}
		defer f.Close()
		if err := workload.WriteTraces(f, threads); err != nil {
			fatal("write: %v", err)
		}
		st, _ := f.Stat()
		var n int
		for _, t := range threads {
			n += len(t)
		}
		fmt.Printf("recorded %s: %d threads, %d instructions, %d bytes -> %s\n",
			prof.Name, len(threads), n, st.Size(), *out)

	case *info != "":
		threads := load(*info)
		fmt.Printf("%s: %d thread(s)\n", *info, len(threads))
		for t, instrs := range threads {
			var loads, stores, barriers int
			for _, ins := range instrs {
				switch ins.Op {
				case cpu.OpLoad:
					loads++
				case cpu.OpStore:
					stores++
				case cpu.OpBarrier:
					barriers++
				}
			}
			fmt.Printf("  thread %d: %d instrs (%d loads, %d stores, %d barriers)\n",
				t, len(instrs), loads, stores, barriers)
		}

	case *replay != "":
		threads := load(*replay)
		proto := coherence.PolicyByName(*protoName)
		if proto == nil {
			fatal("unknown protocol %q", *protoName)
		}
		res, err := workload.Replay(threads, proto, workload.CPUKind(*cpuKind))
		if err != nil {
			fatal("replay: %v", err)
		}
		fmt.Printf("replayed %s on %s/%s: %d instructions in %d cycles (IPC/thread %.4f)\n",
			*replay, res.Protocol, res.CPU, res.Instrs, res.ExecCycles, res.IPC)

	default:
		flag.Usage()
		os.Exit(2)
	}
}

func load(path string) [][]cpu.Instr {
	f, err := os.Open(path)
	if err != nil {
		fatal("open: %v", err)
	}
	defer f.Close()
	threads, err := workload.ReadTraces(f)
	if err != nil {
		fatal("read: %v", err)
	}
	return threads
}

func fatal(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "swiftdir-trace: "+format+"\n", args...)
	os.Exit(1)
}
