package main

import (
	"bytes"
	"io"
	"os"
	"strings"
	"testing"
)

// report runs the CLI entry point with the given args, returning stdout.
func report(t *testing.T, args ...string) string {
	t.Helper()
	var stdout, stderr bytes.Buffer
	if code := run(args, &stdout, &stderr); code != 0 {
		t.Fatalf("run(%v) = %d\nstderr: %s", args, code, stderr.String())
	}
	return stdout.String()
}

// The headline guarantee of the campaign runner: the report stream is
// byte-identical no matter how many workers execute the grid.
func TestFig7ByteIdenticalAcrossWorkerCounts(t *testing.T) {
	seq := report(t, "-exp", "fig7", "-scale", "0.02", "-j", "1")
	par := report(t, "-exp", "fig7", "-scale", "0.02", "-j", "8")
	if seq != par {
		t.Fatalf("fig7 report differs between -j 1 and -j 8:\n--- j=1 ---\n%s\n--- j=8 ---\n%s", seq, par)
	}
	if !strings.Contains(seq, "Figure 7") || !strings.Contains(seq, "average") {
		t.Fatalf("fig7 report incomplete:\n%s", seq)
	}
}

// Same check on a second experiment family (attacks rather than suite
// runs) to cover the string-assembling campaign path.
func TestSecurityByteIdenticalAcrossWorkerCounts(t *testing.T) {
	seq := report(t, "-exp", "security", "-bits", "64", "-j", "1")
	par := report(t, "-exp", "security", "-bits", "64", "-j", "8")
	if seq != par {
		t.Fatalf("security report differs between -j 1 and -j 8")
	}
}

// Campaign accounting goes to stderr only: stdout must carry no
// wall-clock text, stderr must carry the footer.
func TestCampaignFooterOnStderrOnly(t *testing.T) {
	var stdout, stderr bytes.Buffer
	if code := run([]string{"-exp", "sweep", "-j", "2"}, &stdout, &stderr); code != 0 {
		t.Fatalf("run = %d", code)
	}
	if strings.Contains(stdout.String(), "[campaign") {
		t.Fatal("campaign footer leaked onto the report stream")
	}
	if !strings.Contains(stderr.String(), "[campaign sweep]") || !strings.Contains(stderr.String(), "speedup") {
		t.Fatalf("stderr missing campaign footer: %q", stderr.String())
	}
}

func TestUnknownExperimentRejected(t *testing.T) {
	var stdout, stderr bytes.Buffer
	if code := run([]string{"-exp", "fig99"}, &stdout, &stderr); code != 2 {
		t.Fatalf("unknown experiment: code = %d", code)
	}
	if !strings.Contains(stderr.String(), "unknown experiment") {
		t.Fatalf("stderr = %q", stderr.String())
	}
	// The rejection teaches the vocabulary: every registry name listed.
	for _, name := range experimentNames {
		if !strings.Contains(stderr.String(), name) {
			t.Errorf("unknown-experiment error omits %q", name)
		}
	}
	// One bad name poisons a whole comma list.
	stderr.Reset()
	if code := run([]string{"-exp", "table5,fig99"}, &stdout, &stderr); code != 2 {
		t.Fatalf("bad name in list: code = %d", code)
	}
}

// -exp takes a comma-separated list, executed in report order and
// deduplicated, and the combined stream equals the single runs stitched
// together.
func TestCommaSeparatedExperimentList(t *testing.T) {
	// overhead precedes traffic in request order here, but the registry
	// (report) order is traffic then overhead; the duplicate collapses.
	combined := report(t, "-exp", "overhead,traffic,overhead")
	want := report(t, "-exp", "traffic") + report(t, "-exp", "overhead")
	if combined != want {
		t.Fatalf("comma list != stitched single runs:\n--- list ---\n%s\n--- stitched ---\n%s", combined, want)
	}
}

// The -exp flag help and the package doc comment's usage block must both
// list every experiment (the doc comment used to omit fig4, fig5, sweep,
// and friends).
func TestUsageListsAllExperiments(t *testing.T) {
	var help bytes.Buffer
	code := run([]string{"-h"}, io.Discard, &help)
	if code != 2 {
		t.Fatalf("-h: code = %d", code)
	}
	src, err := os.ReadFile("main.go")
	if err != nil {
		t.Fatal(err)
	}
	doc := string(src[:bytes.Index(src, []byte("package main"))])
	for _, name := range experimentNames {
		if !strings.Contains(help.String(), name) {
			t.Errorf("flag help omits %q", name)
		}
		if !strings.Contains(doc, name) {
			t.Errorf("doc comment usage omits %q", name)
		}
	}
}

// Spot-check that accepted experiment names actually produce reports.
func TestExperimentNamesAccepted(t *testing.T) {
	for _, name := range []string{"table5", "overhead"} {
		out := report(t, "-exp", name)
		if len(out) == 0 {
			t.Errorf("%s produced empty report", name)
		}
	}
}
