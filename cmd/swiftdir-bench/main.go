// Command swiftdir-bench regenerates the paper's tables and figures.
//
// Usage:
//
//	swiftdir-bench [-exp all|table4|table5|fig6|security|fig7|fig8|fig9|fig10a|fig10b]
//	               [-scale f] [-samples n] [-bits n] [-passes n]
//
// -scale shrinks the SPEC/PARSEC instruction budgets (1.0 = the default
// 200k/120k instructions per thread); the protocol comparison is stable
// well below that.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"strings"

	"repro/internal/experiments"
	"repro/internal/workload"
)

func main() {
	exp := flag.String("exp", "all", "experiment to run (all, table4, table5, fig4, fig5, fig6, fig6jitter, security, fig7, fig8, fig9, fig10a, fig10b, ablation, traffic, futurework, moesi, snoop, multiprogram, lru, prefetch, numa, kernels, sweep, msi, overhead)")
	scale := flag.Float64("scale", 0.25, "instruction-budget scale for fig7/fig8")
	samples := flag.Int("samples", 2000, "latency samples for fig6")
	bits := flag.Int("bits", 1024, "covert-channel bits for security")
	passes := flag.Int("passes", 4, "measured passes for fig10")
	outPath := flag.String("out", "", "also append the report to this file")
	flag.Parse()

	var out io.Writer = os.Stdout
	if *outPath != "" {
		f, err := os.OpenFile(*outPath, os.O_CREATE|os.O_APPEND|os.O_WRONLY, 0o644)
		if err != nil {
			fmt.Fprintf(os.Stderr, "swiftdir-bench: %v\n", err)
			os.Exit(1)
		}
		defer f.Close()
		out = io.MultiWriter(os.Stdout, f)
	}

	run := func(name string, fn func() string) {
		if *exp != "all" && *exp != name {
			return
		}
		fmt.Fprintln(out, fn())
		fmt.Fprintln(out, strings.Repeat("=", 78))
	}

	run("table5", experiments.Table5)
	run("table4", func() string { _, s := experiments.Table4(); return s })
	run("fig4", experiments.Fig4)
	run("fig5", experiments.Fig5)
	run("fig6", func() string { return experiments.Fig6(*samples).Rendered })
	run("fig6jitter", func() string { return experiments.Fig6Jitter(*samples / 4).Rendered })
	run("security", func() string { _, _, s := experiments.Security(*bits, *bits); return s })
	run("fig7", func() string { _, s := experiments.Fig7(*scale); return s })
	run("fig8", func() string { _, s := experiments.Fig8(*scale); return s })
	run("fig9", func() string { _, s := experiments.Fig9(experiments.Fig9Amounts); return s })
	run("fig10a", func() string { _, s := experiments.Fig10(workload.TimingSimpleCPU, *passes); return s })
	run("fig10b", func() string { _, s := experiments.Fig10(workload.DerivO3CPU, *passes); return s })
	run("ablation", func() string {
		return experiments.AblationEwp(*bits) + "\n" + experiments.AblationWAR(*passes)
	})
	run("traffic", experiments.Traffic)
	run("futurework", func() string { return experiments.FutureWork(*bits / 4) })
	run("moesi", func() string { return experiments.MOESIStudy(*bits/4, *passes) })
	run("snoop", func() string { return experiments.SnoopStudy(*bits / 4) })
	run("multiprogram", func() string { _, s := experiments.Multiprogram(*scale); return s })
	run("lru", func() string { return experiments.AblationLRU(*scale) })
	run("prefetch", func() string { return experiments.Prefetch(*bits / 4) })
	run("numa", experiments.NUMA)
	run("kernels", func() string { return experiments.KernelStudy(512) })
	run("sweep", experiments.TimingSweep)
	run("msi", func() string { return experiments.MSIStudy(*bits/4, *passes) })
	run("overhead", func() string { return experiments.Overhead(4) })

	switch *exp {
	case "all", "table4", "table5", "fig4", "fig5", "fig6", "security",
		"fig6jitter", "fig7", "fig8", "fig9", "fig10a", "fig10b", "ablation", "traffic", "futurework", "moesi", "snoop", "multiprogram", "lru", "prefetch", "numa", "kernels", "sweep", "msi", "overhead":
	default:
		fmt.Fprintf(os.Stderr, "swiftdir-bench: unknown experiment %q\n", *exp)
		flag.Usage()
		os.Exit(2)
	}
}
