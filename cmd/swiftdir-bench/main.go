// Command swiftdir-bench regenerates the paper's tables and figures.
//
// Usage:
//
//	swiftdir-bench [-exp all|table5|table4|fig4|fig5|fig6|fig6jitter|security
//	               |fig7|fig8|fig9|fig10a|fig10b|ablation|traffic|futurework
//	               |moesi|snoop|multiprogram|lru|prefetch|numa|kernels|sweep
//	               |msi|overhead|arbitration|scale|scale-attack]
//	               [-scale f] [-samples n] [-bits n] [-passes n] [-j n] [-shards n] [-out file]
//	swiftdir-bench -policy
//
// -exp also accepts a comma-separated list (e.g. -exp fig6,security);
// the selected experiments run in report order, deduplicated. The valid
// names come from the internal/experiments registry — the same dispatch
// table the swiftdir-serve HTTP server executes, so a CLI run and a
// server request with the same parameters render identical report bytes.
//
// -policy lists every selectable coherence policy with the size of its
// transition table (the internal/proto relation shared by the dispatchers
// and the model checker) and exits.
//
// -scale shrinks the SPEC/PARSEC instruction budgets (1.0 = the default
// 200k/120k instructions per thread); the protocol comparison is stable
// well below that.
//
// -j sets the number of concurrent simulation jobs (default: the
// SWIFTDIR_JOBS environment variable, else runtime.NumCPU()). Reports are
// byte-identical at every worker count; the per-experiment campaign
// accounting (wall time, busy time, speedup) goes to stderr so the
// report stream stays deterministic.
//
// -shards shards each simulated machine's event engine (default: the
// SWIFTDIR_SHARDS environment variable, else 1 — the sequential engine).
// Reports are byte-identical at every shard count; the per-experiment
// [shards] engine accounting goes to stderr. Shards compose with -j:
// each concurrent job runs its own machine on that many shards.
//
// An experiment that diverges (a simulation panic) is reported as FAILED
// and the sweep continues; the exit status is then 1.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"strings"
	"time"

	"repro/internal/campaign"
	"repro/internal/coherence"
	"repro/internal/experiments"
	"repro/internal/prof"
	"repro/internal/proto"
	"repro/internal/stats"
)

// experimentNames lists every -exp value, in report order — straight from
// the internal/experiments registry, the single dispatch table shared with
// the HTTP server. The flag help and the package doc comment above are
// kept in lockstep with it (TestUsageListsAllExperiments enforces it).
var experimentNames = experiments.Names()

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

// run is main with the process edges (args, streams, exit code) made
// explicit so tests can assert the report bytes at different -j values.
func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("swiftdir-bench", flag.ContinueOnError)
	fs.SetOutput(stderr)
	exp := fs.String("exp", "all",
		"experiment(s) to run, comma-separated (all, "+strings.Join(experimentNames, ", ")+")")
	scale := fs.Float64("scale", 0.25, "instruction-budget scale for fig7/fig8")
	samples := fs.Int("samples", 2000, "latency samples for fig6")
	bits := fs.Int("bits", 1024, "covert-channel bits for security")
	passes := fs.Int("passes", 4, "measured passes for fig10")
	jobs := fs.Int("j", 0, "concurrent simulation jobs (0 = $SWIFTDIR_JOBS, else NumCPU)")
	shards := fs.Int("shards", 0, "event-engine shards per machine, 1..64 (0 = $SWIFTDIR_SHARDS, else 1); reports are byte-identical at every value")
	outPath := fs.String("out", "", "also append the report to this file")
	listPolicies := fs.Bool("policy", false,
		"list the selectable coherence policies with their transition-table sizes, then exit")
	var pf prof.Flags
	pf.Register(fs)
	if err := fs.Parse(args); err != nil {
		return 2
	}

	if *listPolicies {
		for _, p := range coherence.ExtendedPolicies {
			pt := proto.TableFor(p.Name())
			if pt == nil {
				fmt.Fprintf(stdout, "%-16s (no transition table)\n", p.Name())
				continue
			}
			defined, defensive, impossible, illegal := pt.Counts()
			fmt.Fprintf(stdout, "%-16s table: %3d defined, %3d defensive, %3d impossible, %3d illegal\n",
				p.Name(), defined, defensive, impossible, illegal)
		}
		return 0
	}

	selected, err := experiments.ParseNames(*exp)
	if err != nil {
		fmt.Fprintf(stderr, "swiftdir-bench: %v\n", err)
		fs.Usage()
		return 2
	}

	stopProf, err := pf.Start()
	if err != nil {
		fmt.Fprintf(stderr, "swiftdir-bench: %v\n", err)
		return 1
	}
	defer func() {
		if err := stopProf(); err != nil {
			fmt.Fprintf(stderr, "swiftdir-bench: profile: %v\n", err)
		}
	}()

	nshards, err := campaign.ResolveShards(*shards)
	if err != nil {
		fmt.Fprintf(stderr, "swiftdir-bench: %v\n", err)
		fs.Usage()
		return 2
	}
	campaign.SetWorkers(*jobs)
	campaign.SetShards(nshards)
	defer campaign.SetWorkers(0)
	defer campaign.SetShards(0)
	campaign.TakeSummaries() // start from a clean accounting slate
	stats.TakeFastPaths()
	stats.TakeShards()

	var out io.Writer = stdout
	if *outPath != "" {
		f, err := os.OpenFile(*outPath, os.O_CREATE|os.O_APPEND|os.O_WRONLY, 0o644)
		if err != nil {
			fmt.Fprintf(stderr, "swiftdir-bench: %v\n", err)
			return 1
		}
		defer f.Close()
		out = io.MultiWriter(stdout, f)
	}

	// The flag knobs map onto registry Params; Normalize resolves the
	// knobs each experiment ignores (kernels' working set, overhead's
	// core count, fig9's sweep points keep their registry defaults, as
	// they always have in this CLI).
	params := experiments.Params{Scale: *scale, Samples: *samples, Bits: *bits, Passes: *passes}

	var campaignTotal stats.CampaignSummary
	var fpTotal stats.FastPathSummary
	var shTotal stats.ShardSummary
	totalStart := time.Now()
	failed := 0
	for _, name := range selected {
		e, _ := experiments.Lookup(name)
		start := time.Now()
		report, err := func() (r string, err error) {
			// The experiment functions panic on error (including labelled
			// campaign job panics); recover here so one diverging experiment
			// doesn't kill the rest of an -exp all sweep.
			defer func() {
				if p := recover(); p != nil {
					err = fmt.Errorf("%v", p)
				}
			}()
			return e.Run(params), nil
		}()
		if err != nil {
			failed++
			// The error text can embed a goroutine stack, which varies with
			// -j; keep stdout deterministic with a fixed marker and put the
			// details on stderr.
			fmt.Fprintf(out, "experiment %s FAILED (details on stderr)\n", name)
			fmt.Fprintf(stderr, "swiftdir-bench: experiment %s: %v\n", name, err)
		} else {
			fmt.Fprintln(out, report)
		}
		fmt.Fprintln(out, strings.Repeat("=", 78))
		// The campaign footer carries wall-clock measurements, so it goes
		// to stderr: stdout stays byte-identical at any -j.
		sum := stats.MergeCampaigns(name, campaign.TakeSummaries())
		sum.Wall = time.Since(start)
		if len(sum.Jobs) > 0 {
			fmt.Fprintln(stderr, sum.Footer())
			campaignTotal.Jobs = append(campaignTotal.Jobs, sum.Jobs...)
			if sum.Workers > campaignTotal.Workers {
				campaignTotal.Workers = sum.Workers
			}
		}
		// Same rule for the fast-path split: observability only, stderr
		// only, so stdout stays byte-identical with the fast path on or
		// off (and at any -j).
		if fp := stats.MergeFastPaths(name, stats.TakeFastPaths()); fp.Total() > 0 {
			fmt.Fprintln(stderr, fp.Footer())
			fpTotal.Fast += fp.Fast
			fpTotal.Slow += fp.Slow
		}
		// And the shard accounting: engine internals, stderr only, so
		// stdout stays byte-identical at any -shards value.
		if sh := stats.MergeShards(name, stats.TakeShards()); sh.Shards() > 0 {
			fmt.Fprintln(stderr, sh.Footer())
			shTotal = stats.MergeShards("all", []stats.ShardSummary{shTotal, sh})
		}
	}

	if len(selected) > 1 && len(campaignTotal.Jobs) > 0 {
		campaignTotal.Label = "all"
		campaignTotal.Wall = time.Since(totalStart)
		fmt.Fprintln(stderr, campaignTotal.Footer())
	}
	if len(selected) > 1 && fpTotal.Total() > 0 {
		fpTotal.Label = "all"
		fmt.Fprintln(stderr, fpTotal.Footer())
	}
	if len(selected) > 1 && shTotal.Shards() > 0 {
		fmt.Fprintln(stderr, shTotal.Footer())
	}
	if failed > 0 {
		return 1
	}
	return 0
}
