// Command swiftdir-serve runs the simulation-as-a-service front end: an
// HTTP server that executes registry experiments on the shared campaign
// machinery and memoizes every report in a content-addressed result
// cache. Identical requests are answered from cache (byte-identical to a
// re-run — the repo's determinism guarantee makes that sound), and
// identical requests *in flight* collapse into one simulation.
//
// Usage:
//
//	swiftdir-serve [-addr host:port] [-cachedir dir] [-cachemem n]
//	               [-workers n] [-queue n] [-j n] [-shards n]
//	               [-job-timeout d] [-bundledir dir]
//
// Quickstart:
//
//	swiftdir-serve -addr :8080 -cachedir /var/tmp/swiftdir-cache &
//	curl -s -XPOST localhost:8080/v1/run -d '{"experiment":"table5"}'
//	curl -s -XPOST localhost:8080/v1/batch \
//	     -d '{"specs":[{"experiment":"fig6"},{"experiment":"security","params":{"bits":64}}]}'
//	curl -s localhost:8080/v1/jobs/j1
//	curl -s localhost:8080/statsz
//
// SIGTERM/SIGINT drain gracefully: intake stops (healthz flips to 503 so
// a load balancer rotates the instance out), queued jobs finish, cache
// hits keep being served to the end, and the cache accounting footer is
// printed to stderr on the way out. If the -drainwait budget expires
// first, in-flight simulations are aborted mid-run via their cancel
// tokens; aborted jobs fail with a typed cancellation and never reach
// the cache.
//
// Deadlines: -job-timeout bounds every compute (0 = unbounded); a
// request's "timeout_ms" spec field overrides it per job. A run that
// exceeds its deadline — or whose client disconnects — aborts at the
// next simulated event and the request fails 504 (deadline) or 499
// (client gone) with {"kind":"cancelled"}. Diverging runs (simulator
// panics) fail 500 with {"kind":"diverged"} and, when -bundledir is
// set, a replayable crash bundle.
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"repro/internal/campaign"
	"repro/internal/prof"
	"repro/internal/resultcache"
	"repro/internal/server"
	"repro/internal/stats"
)

func main() {
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	os.Exit(run(ctx, os.Args[1:], os.Stdout, os.Stderr))
}

// run is main with the process edges (shutdown signal, args, streams,
// exit code) made explicit so tests can boot a real server on a loopback
// port and drain it by cancelling ctx.
func run(ctx context.Context, args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("swiftdir-serve", flag.ContinueOnError)
	fs.SetOutput(stderr)
	addr := fs.String("addr", ":8080", "listen address")
	cacheDir := fs.String("cachedir", "", "result-cache directory (empty = memory only)")
	cacheMem := fs.Int("cachemem", 1024, "in-memory result-cache entries (LRU)")
	workers := fs.Int("workers", 2, "batch worker pool size")
	queue := fs.Int("queue", 64, "bounded job queue depth (back-pressure beyond it)")
	jobs := fs.Int("j", 0, "concurrent simulation jobs per experiment (0 = $SWIFTDIR_JOBS, else NumCPU)")
	shards := fs.Int("shards", 0, "event-engine shards per machine, 1..64 (0 = $SWIFTDIR_SHARDS, else 1)")
	drainWait := fs.Duration("drainwait", 30*time.Second, "graceful-drain budget on SIGTERM (past it, in-flight jobs abort)")
	jobTimeout := fs.Duration("job-timeout", 0, "default per-job compute deadline (0 = unbounded; timeout_ms in a spec overrides)")
	bundleDir := fs.String("bundledir", "", "directory for crash bundles of diverging runs (empty = disabled)")
	var pf prof.Flags
	pf.Register(fs)
	if err := fs.Parse(args); err != nil {
		return 2
	}

	logf := func(format string, a ...any) {
		fmt.Fprintf(stderr, "swiftdir-serve: "+format+"\n", a...)
	}

	stopProf, err := pf.Start()
	if err != nil {
		logf("%v", err)
		return 1
	}
	defer func() {
		if err := stopProf(); err != nil {
			logf("profile: %v", err)
		}
	}()

	nshards, err := campaign.ResolveShards(*shards)
	if err != nil {
		logf("%v", err)
		fs.Usage()
		return 2
	}
	campaign.SetWorkers(*jobs)
	campaign.SetShards(nshards)
	defer campaign.SetWorkers(0)
	defer campaign.SetShards(0)

	st := &stats.CacheStats{}
	cache := resultcache.New(*cacheMem, *cacheDir, st, logf)
	srv := server.New(server.Config{
		Cache:      cache,
		Workers:    *workers,
		QueueDepth: *queue,
		JobTimeout: *jobTimeout,
		BundleDir:  *bundleDir,
		Logf:       logf,
	})

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		logf("%v", err)
		return 1
	}
	httpSrv := &http.Server{Handler: srv.Handler()}
	logf("listening on %s (cache: mem=%d dir=%q, workers=%d, queue=%d)",
		ln.Addr(), *cacheMem, *cacheDir, *workers, *queue)

	serveErr := make(chan error, 1)
	go func() { serveErr <- httpSrv.Serve(ln) }()

	code := 0
	select {
	case err := <-serveErr:
		logf("serve: %v", err)
		code = 1
	case <-ctx.Done():
		// Drain order: stop intake first (healthz flips to 503, batches are
		// refused) so a load balancer rotates us out while queued jobs
		// finish and cache hits keep flowing, then close the listener.
		logf("draining (budget %s)", *drainWait)
		dctx, cancel := context.WithTimeout(context.Background(), *drainWait)
		defer cancel()
		if err := srv.Drain(dctx); err != nil {
			logf("%v", err)
			code = 1
		}
		if err := httpSrv.Shutdown(dctx); err != nil {
			logf("shutdown: %v", err)
			code = 1
		}
	}
	logf("%s", st.Snapshot().Footer())
	return code
}
