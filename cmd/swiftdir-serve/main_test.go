package main

import (
	"bytes"
	"context"
	"io"
	"net/http"
	"regexp"
	"strings"
	"sync"
	"testing"
	"time"
)

// lockedBuffer lets the test read stderr while run() is still writing it.
type lockedBuffer struct {
	mu sync.Mutex
	b  bytes.Buffer
}

func (l *lockedBuffer) Write(p []byte) (int, error) {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.b.Write(p)
}

func (l *lockedBuffer) String() string {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.b.String()
}

var listenRE = regexp.MustCompile(`listening on ([0-9.:\[\]]+)`)

// boot starts run() on a loopback port and returns the base URL plus a
// shutdown function that drains and waits for exit.
func boot(t *testing.T, args ...string) (string, *lockedBuffer, func() int) {
	t.Helper()
	ctx, cancel := context.WithCancel(context.Background())
	stderr := &lockedBuffer{}
	code := make(chan int, 1)
	go func() {
		code <- run(ctx, append([]string{"-addr", "127.0.0.1:0"}, args...), io.Discard, stderr)
	}()

	deadline := time.Now().Add(30 * time.Second)
	var base string
	for base == "" {
		if m := listenRE.FindStringSubmatch(stderr.String()); m != nil {
			base = "http://" + m[1]
			break
		}
		if time.Now().After(deadline) {
			cancel()
			t.Fatalf("server never announced its address; stderr: %s", stderr.String())
		}
		time.Sleep(5 * time.Millisecond)
	}
	return base, stderr, func() int {
		cancel()
		select {
		case c := <-code:
			return c
		case <-time.After(60 * time.Second):
			t.Fatal("server did not exit after drain")
			return -1
		}
	}
}

func post(t *testing.T, url, body string) (*http.Response, string) {
	t.Helper()
	resp, err := http.Post(url, "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp, string(raw)
}

func TestServeEndToEnd(t *testing.T) {
	dir := t.TempDir()
	base, stderr, shutdown := boot(t, "-cachedir", dir, "-workers", "1", "-j", "1")

	// Cold run computes, warm run hits, bytes identical.
	cold, coldBody := post(t, base+"/v1/run", `{"experiment":"table5"}`)
	if cold.StatusCode != 200 || cold.Header.Get("X-Swiftdir-Cache") != "miss" {
		t.Fatalf("cold: %d %s", cold.StatusCode, cold.Header.Get("X-Swiftdir-Cache"))
	}
	warm, warmBody := post(t, base+"/v1/run", `{"experiment":"table5"}`)
	if warm.Header.Get("X-Swiftdir-Cache") != "hit" || warmBody != coldBody {
		t.Fatalf("warm run not a byte-identical hit (%s)", warm.Header.Get("X-Swiftdir-Cache"))
	}

	// healthz + statsz are up.
	if resp, body := get2(t, base+"/healthz"); resp.StatusCode != 200 || !strings.Contains(body, "ok") {
		t.Errorf("healthz: %d %s", resp.StatusCode, body)
	}
	if _, body := get2(t, base+"/statsz"); !strings.Contains(body, `"hits":1`) {
		t.Errorf("statsz missing hit count: %s", body)
	}

	if code := shutdown(); code != 0 {
		t.Fatalf("exit code %d; stderr: %s", code, stderr.String())
	}
	if !strings.Contains(stderr.String(), "[cache]") {
		t.Errorf("cache footer not printed at exit: %s", stderr.String())
	}

	// A fresh process over the same -cachedir serves the persisted entry.
	base2, _, shutdown2 := boot(t, "-cachedir", dir, "-workers", "1", "-j", "1")
	resp, body := post(t, base2+"/v1/run", `{"experiment":"table5"}`)
	if resp.Header.Get("X-Swiftdir-Cache") != "hit" || body != coldBody {
		t.Errorf("disk-persisted entry not served across restarts (%s)", resp.Header.Get("X-Swiftdir-Cache"))
	}
	if code := shutdown2(); code != 0 {
		t.Errorf("second instance exit code %d", code)
	}
}

func TestServeBadFlags(t *testing.T) {
	if code := run(context.Background(), []string{"-shards", "999"}, io.Discard, io.Discard); code != 2 {
		t.Errorf("bad -shards: code %d, want 2", code)
	}
	if code := run(context.Background(), []string{"-nope"}, io.Discard, io.Discard); code != 2 {
		t.Errorf("bad flag: code %d, want 2", code)
	}
}

func get2(t *testing.T, url string) (*http.Response, string) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp, string(raw)
}
