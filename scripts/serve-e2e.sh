#!/bin/sh
# serve-e2e.sh — end-to-end proof of the swiftdir-serve result cache
# against a real server process (the `make serve-e2e` / CI "serve" job):
#
#   1. boot swiftdir-serve on a loopback port with a disk cache;
#   2. submit a 3-experiment batch, wait for every job, save the reports
#      (submissions retry with jittered backoff, honoring the server's
#      Retry-After header on 429 back-pressure);
#   3. submit the identical batch again and assert every job resolves as
#      a cache hit with byte-identical report bytes;
#   4. cross-check /statsz (exactly 3 underlying runs, 0 corrupt);
#   5. SIGTERM and assert a clean graceful drain (exit 0, cache footer).
#
# Needs only a POSIX shell, curl, and grep/sed — no jq.
#
# SERVE_E2E_ADDR overrides the listen address (default 127.0.0.1:0, an
# ephemeral port). With a fixed port the script fails fast — with a
# message naming the port — if something else already holds it, instead
# of timing out against the wrong server.
set -eu

WORKDIR=$(mktemp -d)
LOG="$WORKDIR/serve.log"
LISTEN=${SERVE_E2E_ADDR:-127.0.0.1:0}
trap 'kill "$SERVER_PID" 2>/dev/null || true; rm -rf "$WORKDIR"' EXIT

fail() {
    echo "serve-e2e: FAIL: $*" >&2
    echo "--- server log ---" >&2
    cat "$LOG" >&2 || true
    exit 1
}

go build -o "$WORKDIR/swiftdir-serve" ./cmd/swiftdir-serve

"$WORKDIR/swiftdir-serve" -addr "$LISTEN" -cachedir "$WORKDIR/cache" \
    -workers 2 -j 2 2>"$LOG" &
SERVER_PID=$!

# bind_failed — true once the server log shows the port was taken.
bind_failed() {
    grep -q 'address already in use' "$LOG" 2>/dev/null
}

# The server logs "listening on 127.0.0.1:<port>" once bound.
BASE=""
i=0
while [ $i -lt 100 ]; do
    if bind_failed; then
        fail "port already bound: $LISTEN is in use — free it, or set SERVE_E2E_ADDR to another port (127.0.0.1:0 picks a free one)"
    fi
    ADDR=$(sed -n 's/.*listening on \([0-9.]*:[0-9]*\).*/\1/p' "$LOG" | head -n 1)
    if [ -n "$ADDR" ]; then BASE="http://$ADDR"; break; fi
    if ! kill -0 "$SERVER_PID" 2>/dev/null; then
        bind_failed && fail "port already bound: $LISTEN is in use — free it, or set SERVE_E2E_ADDR to another port (127.0.0.1:0 picks a free one)"
        fail "server exited during startup"
    fi
    i=$((i + 1))
    sleep 0.1
done
[ -n "$BASE" ] || fail "server never announced its address"

BATCH='{"specs":[{"experiment":"table5"},{"experiment":"overhead"},{"experiment":"traffic"}]}'

# post_retry <url> <data> — POST with a jittered-backoff retry loop. A
# 429 is back-pressure, not failure: the server names its comeback time
# in the Retry-After header, and we sleep that long plus a sub-second
# jitter (keyed off the attempt and PID, so parallel clients do not
# re-stampede in lockstep) before retrying. Echoes the response body.
post_retry() {
    attempt=0
    while :; do
        HDRS="$WORKDIR/hdrs.$$"
        BODY="$WORKDIR/body.$$"
        CODE=$(curl -s -D "$HDRS" -o "$BODY" -w '%{http_code}' -XPOST "$1" -d "$2") || CODE=000
        case "$CODE" in
        200 | 202)
            cat "$BODY"
            return 0
            ;;
        429)
            attempt=$((attempt + 1))
            [ "$attempt" -lt 8 ] || { echo "still 429 after $attempt attempts" >&2; return 1; }
            RA=$(sed -n 's/^[Rr]etry-[Aa]fter:[[:space:]]*\([0-9][0-9]*\).*/\1/p' "$HDRS" | head -n 1)
            [ -n "$RA" ] || RA=1
            sleep "$RA.$(((attempt * 7 + $$) % 10))"
            ;;
        *)
            echo "HTTP $CODE: $(cat "$BODY" 2>/dev/null)" >&2
            return 1
            ;;
        esac
    done
}

# submit_batch <pass> — posts the batch and echoes the job ids in order.
submit_batch() {
    OUT=$(post_retry "$BASE/v1/batch" "$BATCH") \
        || fail "pass $1: batch submission failed"
    IDS=$(printf '%s' "$OUT" | grep -o '"id":"[^"]*"' | sed 's/"id":"\(.*\)"/\1/')
    [ "$(printf '%s\n' $IDS | wc -l)" -eq 3 ] || fail "pass $1: want 3 jobs, got: $OUT"
    printf '%s\n' $IDS
}

# wait_job <pass> <id> — polls until the job is done; echoes its status JSON.
wait_job() {
    j=0
    while [ $j -lt 600 ]; do
        ST=$(curl -sf "$BASE/v1/jobs/$2") || fail "pass $1: job $2 status failed"
        case "$ST" in
        *'"state":"done"'*) printf '%s' "$ST"; return 0 ;;
        *'"state":"failed"'*) fail "pass $1: job $2 failed: $ST" ;;
        esac
        j=$((j + 1))
        sleep 0.1
    done
    fail "pass $1: job $2 never finished"
}

for PASS in 1 2; do
    n=1
    for ID in $(submit_batch "$PASS"); do
        ST=$(wait_job "$PASS" "$ID")
        if [ "$PASS" = 2 ]; then
            case "$ST" in
            *'"cache":"hit"'*) ;;
            *) fail "second pass job $ID not a cache hit: $ST" ;;
            esac
        fi
        curl -sf "$BASE/v1/jobs/$ID/report" >"$WORKDIR/pass$PASS-$n.txt" \
            || fail "pass $PASS: report $ID failed"
        n=$((n + 1))
    done
done

for n in 1 2 3; do
    cmp -s "$WORKDIR/pass1-$n.txt" "$WORKDIR/pass2-$n.txt" \
        || fail "report $n differs between passes (cache hit not byte-identical)"
    [ -s "$WORKDIR/pass1-$n.txt" ] || fail "report $n is empty"
done

STATS=$(curl -sf "$BASE/statsz") || fail "statsz failed"
case "$STATS" in
*'"runs":3'*) ;;
*) fail "statsz: want exactly 3 underlying runs: $STATS" ;;
esac
case "$STATS" in
*'"corrupt":0'*) ;;
*) fail "statsz: corrupt entries reported: $STATS" ;;
esac

kill -TERM "$SERVER_PID"
wait "$SERVER_PID" || fail "server exited non-zero after SIGTERM"
grep -q '\[cache\]' "$LOG" || fail "cache footer missing from shutdown log"

echo "serve-e2e: OK (second pass 100% cache hits, byte-identical reports)"
