// Top-level benchmarks: one per table/figure of the paper's evaluation
// (regenerating the comparison each iteration), plus substrate throughput
// benchmarks. Run with:
//
//	go test -bench=. -benchmem
//
// The figure benchmarks report the reproduced headline quantities via
// b.ReportMetric: normalized metrics (x100 of MESI), latency gaps, and
// bit error rates, so `go test -bench` output documents the reproduction.
package repro

import (
	"os"
	"testing"

	"repro/internal/attack"
	"repro/internal/cache"
	"repro/internal/campaign"
	"repro/internal/coherence"
	"repro/internal/core"
	"repro/internal/dram"
	"repro/internal/experiments"
	"repro/internal/interconnect"
	"repro/internal/mmu"
	"repro/internal/resultcache"
	"repro/internal/sim"
	"repro/internal/stats"
	"repro/internal/workload"
)

// --- Substrate micro-benchmarks -----------------------------------------

func BenchmarkEngineEventThroughput(b *testing.B) {
	e := sim.NewEngine()
	n := 0
	var tick func()
	tick = func() {
		n++
		if n < b.N {
			e.Schedule(1, tick)
		}
	}
	e.Schedule(0, tick)
	e.Run()
}

func BenchmarkDRAMAccess(b *testing.B) {
	m := dram.New(dram.DDR3_1600_8x8())
	now := sim.Cycle(0)
	for i := 0; i < b.N; i++ {
		now = m.AccessAt(now, uint64(i)*64, false)
	}
}

func BenchmarkCacheArrayProbe(b *testing.B) {
	a := cache.NewArray(cache.Params{Name: "L1", SizeBytes: 32 << 10, Ways: 4, BlockSize: 64})
	for i := 0; i < 512; i++ {
		ad := cache.Addr(i * 64)
		a.Install(a.Victim(ad), ad, cache.Shared)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		a.Probe(cache.Addr(i%512) * 64)
	}
}

// benchAccess measures raw coherent accesses per second for a protocol
// (an ablation axis: protocol logic overhead).
func benchAccess(b *testing.B, p coherence.Policy) {
	m := core.MustNewMachine(core.DefaultConfig(2, p))
	proc := m.NewProcess()
	ctx := proc.AttachContext(0)
	heap := proc.MmapAnon(1 << 20)
	// Warm the full 8192-block working set before the timer. The first
	// pass faults every page and grows page tables and free lists — a
	// fixed ~800 KB that, inside the timed region, amortizes to
	// total/b.N and makes B/op read 0 or 1 depending on the iteration
	// count the framework happens to pick (the BENCH_2026-08-05 vs
	// 2026-08-08 drift). The steady state itself is allocation-free.
	for i := 0; i < 8192; i++ {
		ctx.MustAccessSync(heap+mmu.VAddr(i)*64, i%4 == 0, uint64(i))
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ctx.MustAccessSync(heap+mmu.VAddr(i%8192)*64, i%4 == 0, uint64(i))
	}
}

func BenchmarkAccessMESI(b *testing.B)     { benchAccess(b, coherence.MESI) }
func BenchmarkAccessSwiftDir(b *testing.B) { benchAccess(b, coherence.SwiftDir) }
func BenchmarkAccessSMESI(b *testing.B)    { benchAccess(b, coherence.SMESI) }

// benchAccessHit measures the L1-hit steady state: a 16 KB working set
// (4 pages, well inside the 32 KB L1 and the 64-entry TLB) in M state,
// so after warmup every access is a stable-state hit — the case the
// synchronous fast path serves without touching the event engine.
// Disable it with SWIFTDIR_NO_FASTPATH=1 to measure the event path on
// the identical hit stream.
func benchAccessHit(b *testing.B, p coherence.Policy) {
	cfg := core.DefaultConfig(2, p)
	cfg.NoFastPath = os.Getenv("SWIFTDIR_NO_FASTPATH") == "1"
	m := core.MustNewMachine(cfg)
	proc := m.NewProcess()
	ctx := proc.AttachContext(0)
	heap := proc.MmapAnon(16 << 10)
	const blocks = 16 << 10 / 64
	for i := 0; i < blocks; i++ {
		ctx.MustAccessSync(heap+mmu.VAddr(i)*64, true, uint64(i)) // fault + drive to M
	}
	m.Quiesce()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ctx.MustAccessSync(heap+mmu.VAddr(i%blocks)*64, i%4 == 0, uint64(i))
	}
}

func BenchmarkAccessHitMESI(b *testing.B)     { benchAccessHit(b, coherence.MESI) }
func BenchmarkAccessHitSwiftDir(b *testing.B) { benchAccessHit(b, coherence.SwiftDir) }
func BenchmarkAccessHitSMESI(b *testing.B)    { benchAccessHit(b, coherence.SMESI) }

// --- Sharded-engine benchmarks -------------------------------------------
//
// The speedup pair: BenchmarkShardedEngineSeq is the plain sequential
// engine, BenchmarkShardedEngineShards4 the same 8-bank event load split
// across 4 shards running parallel epochs. Their ns/op ratio is the
// engine-level parallel speedup on this host; it scales with GOMAXPROCS
// (a single-CPU container shows barrier overhead instead of speedup —
// see DESIGN.md §5).

// benchBank models one directory bank's event load: per event it does a
// fixed slice of handler work, reschedules itself, and every fourth event
// forwards a message to the next bank over the crossbar (delay = the
// 3-cycle hop, so cross-shard sends respect the lookahead).
type benchBank struct {
	eng     *sim.Engine
	dst     *benchBank
	dstSh   int
	left    int
	counter int
	state   uint64
}

func (n *benchBank) Handle(p sim.Payload) {
	// ~64 rounds of integer mixing: the cost of a realistic protocol
	// handler (map lookup + state transition), so the benchmark measures
	// engine orchestration against real work, not empty events.
	s := n.state
	for i := 0; i < 64; i++ {
		s ^= s << 13
		s ^= s >> 7
		s ^= s << 17
	}
	n.state = s
	if p.Op == 1 {
		return // absorbed crossbar message
	}
	n.left--
	if n.left <= 0 {
		return
	}
	n.eng.ScheduleEvent(1, n, sim.Payload{})
	n.counter++
	if n.counter%4 == 0 {
		n.eng.SendRemote(n.dstSh, 3, n.dst, sim.Payload{Op: 1})
	}
}

// benchBanks wires 8 banks in a forwarding ring, mapped bank*shards/8.
func benchBanks(engFor func(bank int) (*sim.Engine, int), events int) []*benchBank {
	const banks = 8
	nodes := make([]*benchBank, banks)
	for i := range nodes {
		e, sh := engFor(i)
		nodes[i] = &benchBank{eng: e, dstSh: sh, left: events/banks + 1, state: uint64(i) + 1}
	}
	for i, n := range nodes {
		n.dst = nodes[(i+1)%banks]
		_, n.dstSh = engFor((i + 1) % banks)
	}
	return nodes
}

func BenchmarkShardedEngineSeq(b *testing.B) {
	eng := sim.NewEngine()
	nodes := benchBanks(func(int) (*sim.Engine, int) { return eng, 0 }, b.N)
	b.ResetTimer()
	for i, n := range nodes {
		eng.ScheduleEvent(sim.Cycle(1+i), n, sim.Payload{})
	}
	eng.Run()
}

func benchShardedEngine(b *testing.B, shards int) {
	sh := sim.NewSharded(shards, 3)
	engFor := func(bank int) (*sim.Engine, int) {
		s := bank * shards / 8
		return sh.Shard(s), s
	}
	nodes := benchBanks(engFor, b.N)
	b.ResetTimer()
	for i, n := range nodes {
		n.eng.ScheduleEvent(sim.Cycle(1+i), n, sim.Payload{})
	}
	sh.Run()
}

func BenchmarkShardedEngineShards2(b *testing.B) { benchShardedEngine(b, 2) }
func BenchmarkShardedEngineShards4(b *testing.B) { benchShardedEngine(b, 4) }

// BenchmarkAccessSharded4 is benchAccess on a 4-shard machine: the
// sequential-stepping path every default sharded run takes. Compare with
// BenchmarkAccessSwiftDir (the unsharded engine) for the stepping
// overhead; the gate pins it allocation-free like every access path.
func BenchmarkAccessSharded4(b *testing.B) {
	cfg := core.DefaultConfig(2, coherence.SwiftDir)
	cfg.Shards = 4
	m := core.MustNewMachine(cfg)
	proc := m.NewProcess()
	ctx := proc.AttachContext(0)
	heap := proc.MmapAnon(1 << 20)
	for i := 0; i < 8192; i++ { // warm the working set (see benchAccess)
		ctx.MustAccessSync(heap+mmu.VAddr(i)*64, i%4 == 0, uint64(i))
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ctx.MustAccessSync(heap+mmu.VAddr(i%8192)*64, i%4 == 0, uint64(i))
	}
}

// benchShardedWorkload runs a full 4-thread benchmark with parallel
// epochs unlocked (NoFastPath + Prefault); shards=1 is the sequential
// control. The pair's ratio is the end-to-end machine-level speedup.
func benchShardedWorkload(b *testing.B, shards int) {
	p := workload.PARSEC3()[1].Scale(0.10)
	p.BarrierEvery = 0
	for i := 0; i < b.N; i++ {
		cfg := core.DefaultConfig(4, coherence.SwiftDir)
		cfg.Shards = shards
		cfg.NoFastPath = true
		cfg.Prefault = true
		if _, _, err := workload.RunDetailed(p, cfg, workload.DerivO3CPU); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkShardedWorkloadSeq(b *testing.B)     { benchShardedWorkload(b, 1) }
func BenchmarkShardedWorkloadShards4(b *testing.B) { benchShardedWorkload(b, 4) }

// --- Mesh + two-level directory benchmarks -------------------------------

// meshHop forwards one message per delivery: each Handle sends to the
// port 17 positions ahead (gcd(17, 256) = 1, so the tour covers every
// router), so each op is one full mesh traversal — XY link walk,
// per-link occupancy bookkeeping, and event dispatch.
type meshHop struct {
	m    *interconnect.Mesh
	port int
	left int
}

func (h *meshHop) Handle(sim.Payload) {
	if h.left <= 0 {
		return
	}
	h.left--
	next := (h.port + 17) % 256
	h.m.SendEvent(h.port, next, h, sim.Payload{})
	h.port = next
}

// BenchmarkMeshRoute measures one routed message per op on the 16x16
// mesh (the 256-core machine's network) with link occupancy enabled —
// the most bookkeeping a message can pay. The gate pins it
// allocation-free: routing is index arithmetic over preallocated link
// state, and the steady-state event queue holds one in-flight message.
func BenchmarkMeshRoute(b *testing.B) {
	eng := sim.NewEngine()
	m, err := interconnect.NewMesh(eng, interconnect.MeshConfig{
		Ports: 256, W: 16, H: 16, Latency: 3, PerHop: 1, LinkOccupancy: 1,
	})
	if err != nil {
		b.Fatal(err)
	}
	h := &meshHop{m: m, left: b.N}
	b.ResetTimer()
	eng.ScheduleEvent(1, h, sim.Payload{})
	eng.Run()
}

// BenchmarkAccessMesh64 is benchAccess on the scaled machine: 64 cores
// on an 8x8 mesh with the two-level directory (8 clusters), so every
// miss pays hub hops and distance-dependent mesh latency. LLC banks are
// shrunk to 256 KB — the 512 KB working set still fits the 16 MB
// aggregate — to keep the benchmark's setup cheap. The gate pins the
// steady state allocation-free like every access path.
func BenchmarkAccessMesh64(b *testing.B) {
	cfg := core.DefaultScaledConfig(64, coherence.SwiftDir)
	cfg.L2Bank.SizeBytes = 256 << 10
	m := core.MustNewMachine(cfg)
	proc := m.NewProcess()
	ctx := proc.AttachContext(0)
	heap := proc.MmapAnon(1 << 20)
	for i := 0; i < 8192; i++ { // warm the working set (see benchAccess)
		ctx.MustAccessSync(heap+mmu.VAddr(i)*64, i%4 == 0, uint64(i))
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ctx.MustAccessSync(heap+mmu.VAddr(i%8192)*64, i%4 == 0, uint64(i))
	}
}

// BenchmarkDirectoryWARLookup stresses the directory's address-map lookups
// under a write-after-read pattern: core 0 installs a shared copy, core 1
// immediately writes the same block, so every iteration drives a GETS plus
// an invalidating GETX/Upgrade through the bank's entries/busy maps (the
// path served by the per-bank last-entry cache and pre-sized maps).
func BenchmarkDirectoryWARLookup(b *testing.B) {
	m := core.MustNewMachine(core.DefaultConfig(2, coherence.SwiftDir))
	proc := m.NewProcess()
	reader := proc.AttachContext(0)
	writer := proc.AttachContext(1)
	heap := proc.MmapAnon(1 << 20)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		a := heap + mmu.VAddr(i%512)*64
		reader.MustAccessSync(a, false, 0)
		writer.MustAccessSync(a, true, uint64(i))
	}
}

// --- Result-cache benchmarks ---------------------------------------------
//
// The server's per-request fast path is cache.Get (memory hit) and
// Flight.Do (uncontended leader); both are pinned allocation-free by the
// bench gate alongside the access paths.

func BenchmarkResultCacheHit(b *testing.B) {
	var st stats.CacheStats
	c := resultcache.New(16, "", &st, func(string, ...any) {})
	key, err := resultcache.NewKey("table5", experiments.Params{})
	if err != nil {
		b.Fatal(err)
	}
	c.Put(&resultcache.Entry{Key: key, Report: []byte("pinned report bytes")})
	id := key.ID()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, ok := c.Get(id); !ok {
			b.Fatal("hit path missed")
		}
	}
}

func BenchmarkSingleflightDo(b *testing.B) {
	f := resultcache.NewFlight(nil)
	key, err := resultcache.NewKey("table5", experiments.Params{})
	if err != nil {
		b.Fatal(err)
	}
	id := key.ID()
	entry := &resultcache.Entry{Report: []byte("r")}
	fn := func() (*resultcache.Entry, error) { return entry, nil }
	if _, _, err := f.Do(id, fn); err != nil { // warm the frame pool
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := f.Do(id, fn); err != nil {
			b.Fatal(err)
		}
	}
}

// --- Table and figure reproductions --------------------------------------

func BenchmarkTable4_QualitativeMatrix(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, _ := experiments.Table4()
		if len(rows) != 3 {
			b.Fatal("table IV incomplete")
		}
	}
}

func BenchmarkFig6_LatencyCDF(b *testing.B) {
	for i := 0; i < b.N; i++ {
		d := experiments.Fig6(200)
		b.ReportMetric(d.LoadWP.Mean(), "LoadWP-cycles")
		b.ReportMetric(d.LoadS.Mean(), "LoadS-cycles")
		b.ReportMetric(d.LoadE.Mean(), "LoadE-cycles")
	}
}

func BenchmarkSecurity_CovertChannel(b *testing.B) {
	for i := 0; i < b.N; i++ {
		var mesiBER, swiftBER, gap float64
		for _, p := range []coherence.Policy{coherence.MESI, coherence.SwiftDir} {
			ch, err := attack.NewChannel(core.DefaultConfig(4, p), 256)
			if err != nil {
				b.Fatal(err)
			}
			r, err := ch.Run(256, 1)
			if err != nil {
				b.Fatal(err)
			}
			if p == coherence.MESI {
				mesiBER, gap = r.BER, r.Gap
			} else {
				swiftBER = r.BER
			}
		}
		b.ReportMetric(mesiBER, "MESI-BER")
		b.ReportMetric(swiftBER, "SwiftDir-BER")
		b.ReportMetric(gap, "MESI-ES-gap-cycles")
	}
}

func BenchmarkSecurity_SideChannel(b *testing.B) {
	for i := 0; i < b.N; i++ {
		sc, err := attack.NewSideChannel(core.DefaultConfig(4, coherence.SwiftDir), 128)
		if err != nil {
			b.Fatal(err)
		}
		r, err := sc.Run(128, 3)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(r.Accuracy, "SwiftDir-inference-accuracy")
	}
}

func BenchmarkFig7_SPEC(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, _ := experiments.Fig7(0.02)
		var sw, sm float64
		for _, r := range rows {
			sw += r.SwiftDir
			sm += r.SMESI
		}
		b.ReportMetric(sw/float64(len(rows)), "SwiftDir-normIPC")
		b.ReportMetric(sm/float64(len(rows)), "SMESI-normIPC")
	}
}

func BenchmarkFig8_PARSEC(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, _ := experiments.Fig8(0.02)
		var sw, sm float64
		for _, r := range rows {
			sw += r.SwiftDir
			sm += r.SMESI
		}
		b.ReportMetric(sw/float64(len(rows)), "SwiftDir-normTime")
		b.ReportMetric(sm/float64(len(rows)), "SMESI-normTime")
	}
}

func BenchmarkFig9_ReadOnly(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, _ := experiments.Fig9([]int{1000, 3000, 5000})
		var sw float64
		for _, r := range rows {
			sw += r.SwiftDir
		}
		b.ReportMetric(sw/float64(len(rows)), "SwiftDir-normTime")
	}
}

func BenchmarkFig10a_WAR_InOrder(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, _ := experiments.Fig10(workload.TimingSimpleCPU, 1)
		var sm float64
		for _, r := range rows {
			sm += r.SMESI
		}
		b.ReportMetric(sm/float64(len(rows)), "SMESI-normTime")
	}
}

func BenchmarkFig5_CacheArchitectures(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if out := experiments.Fig5(); len(out) == 0 {
			b.Fatal("empty Fig5")
		}
	}
}

func BenchmarkTraffic_MessageBreakdown(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if out := experiments.Traffic(); len(out) == 0 {
			b.Fatal("empty traffic report")
		}
	}
}

func BenchmarkAblation_Ewp(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if out := experiments.AblationEwp(64); len(out) == 0 {
			b.Fatal("empty ablation")
		}
	}
}

func BenchmarkFutureWork_FastCoW(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if out := experiments.FutureWork(64); len(out) == 0 {
			b.Fatal("empty future-work report")
		}
	}
}

func BenchmarkStudy_MOESIFamilies(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if out := experiments.MOESIStudy(64, 1); len(out) == 0 {
			b.Fatal("empty study")
		}
	}
}

func BenchmarkStudy_Snoop(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if out := experiments.SnoopStudy(64); len(out) == 0 {
			b.Fatal("empty study")
		}
	}
}

func BenchmarkStudy_Prefetch(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if out := experiments.Prefetch(64); len(out) == 0 {
			b.Fatal("empty study")
		}
	}
}

func BenchmarkStudy_Multiprogram(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, _ := experiments.Multiprogram(0.02)
		if len(rows) != 5 {
			b.Fatal("mix count")
		}
	}
}

func BenchmarkFig10b_WAR_OoO(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, _ := experiments.Fig10(workload.DerivO3CPU, 1)
		var sm float64
		for _, r := range rows {
			sm += r.SMESI
		}
		b.ReportMetric(sm/float64(len(rows)), "SMESI-normTime")
	}
}

func BenchmarkStudy_TimingSweep(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if out := experiments.TimingSweep(); len(out) == 0 {
			b.Fatal("empty study")
		}
	}
}

func BenchmarkStudy_MSI(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if out := experiments.MSIStudy(64, 1); len(out) == 0 {
			b.Fatal("empty study")
		}
	}
}

func BenchmarkStudy_Overhead(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if len(experiments.HardwareCosts(4)) != 7 {
			b.Fatal("cost table incomplete")
		}
	}
}

// --- Campaign runner: sequential vs parallel suite execution ------------
//
// BenchmarkCampaignFig7* run the same Figure 7 grid (23 SPEC benchmarks x
// 3 protocols at scale 0.05) with the campaign pool pinned to one worker
// and opened up to all CPUs, so BENCH_*.json tracks the parallel speedup
// across PRs. The reports must be byte-identical; only the wall time may
// differ.

func benchCampaignFig7(b *testing.B, workers int) {
	campaign.SetWorkers(workers)
	defer campaign.SetWorkers(0)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rows, _ := experiments.Fig7(0.05)
		if len(rows) != 23 {
			b.Fatal("incomplete suite")
		}
	}
	b.StopTimer()
	if sums := campaign.TakeSummaries(); len(sums) > 0 {
		merged := stats.MergeCampaigns("fig7", sums)
		b.ReportMetric(merged.Speedup(), "campaign-speedup")
	}
}

func BenchmarkCampaignFig7Sequential(b *testing.B) { benchCampaignFig7(b, 1) }
func BenchmarkCampaignFig7Parallel(b *testing.B)   { benchCampaignFig7(b, 0) }

// BenchmarkCampaignPoolOverhead measures the scheduler's fixed cost with
// trivial jobs: what the pool adds per job when simulations are free.
func BenchmarkCampaignPoolOverhead(b *testing.B) {
	jobs := make([]campaign.Job[int], 64)
	for i := range jobs {
		i := i
		jobs[i] = campaign.Job[int]{Name: "noop", Run: func() (int, error) { return i, nil }}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		campaign.Run(4, jobs)
	}
	b.StopTimer()
	campaign.TakeSummaries()
}
