// Side channel: two attacker threads infer whether a victim accessed a
// shared-library line within an interval — the primitive behind website
// fingerprinting and ASLR breaks (§II-B). Also demonstrates the
// orthogonal dedup *write*-timing channel and the paper's future-work
// defense for it.
//
//	go run ./examples/sidechannel
package main

import (
	"fmt"
	"log"

	"repro/internal/attack"
	"repro/internal/coherence"
	"repro/internal/core"
)

func main() {
	fmt.Println("E/S access-detection side channel (read-based):")
	for _, p := range []coherence.Policy{coherence.MESI, coherence.SwiftDir, coherence.SMESI} {
		sc, err := attack.NewSideChannel(core.DefaultConfig(4, p), 256)
		if err != nil {
			log.Fatal(err)
		}
		r, err := sc.Run(256, 77)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Println("  " + r.Describe())
	}

	fmt.Println("\nDedup write-timing channel (orthogonal, MMU-level):")
	for _, fast := range []bool{false, true} {
		cfg := core.DefaultConfig(2, coherence.SwiftDir)
		cfg.FastCoWWrites = fast
		w, err := attack.NewWriteChannel(cfg, 256)
		if err != nil {
			log.Fatal(err)
		}
		r, err := w.Run(77)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Println("  " + r.Describe())
	}
	fmt.Println("\nSwiftDir closes the coherence-state channel; the paper's future-work")
	fmt.Println("write-buffer direction (FastCoW) closes the deduplication write channel.")
}
