// Protocols: a guided tour of all nine coherence policies along the two
// axes of the paper's Table IV, generalized to the MOESI/MESIF families:
//
//	axis 1 (security/efficiency for shared data): the latency of a remote
//	  load of a write-protected block another core has already read — the
//	  quantity the E/S timing channel measures;
//	axis 2 (efficiency for unshared data): the latency of a store to a
//	  private block the same core just read — the write-after-read cost
//	  S-MESI's overprotection inflates.
//
//	go run ./examples/protocols
package main

import (
	"fmt"

	"repro/internal/cache"
	"repro/internal/coherence"
	"repro/internal/core"
	"repro/internal/dram"
	"repro/internal/stats"
)

func main() {
	const wpBlock cache.Addr = 0x4000   // write-protected, read-shared
	const privBlock cache.Addr = 0x8000 // private, read-then-written

	tb := stats.NewTable(
		"Table IV, generalized: the two efficiency axes across all nine protocols",
		"protocol", "WP line after 1st read", "remote WP read", "private WAR store", "secure", "no overprotection")

	for _, p := range coherence.AllPolicies {
		s := coherence.MustNewSystem(coherence.SystemConfig{
			NumL1:     2,
			L1Params:  core.DefaultConfig(2, p).L1,
			LLCParams: core.DefaultConfig(2, p).L2Bank,
			Banks:     1,
			Timing:    coherence.DefaultTiming(),
			Policy:    p,
			DRAM:      dram.DDR3_1600_8x8(),
		})
		tm := coherence.DefaultTiming()

		// Axis 1: shared write-protected data.
		s.AccessSync(1, wpBlock, false, true, 0) // sender reads (the channel setup)
		s.Quiesce()
		state := s.L1StateOf(1, wpBlock).String()
		r := s.AccessSync(0, wpBlock, false, true, 0)

		// Axis 2: private write-after-read.
		s.AccessSync(1, privBlock, false, false, 0)
		w := s.AccessSync(1, privBlock, true, false, 1)
		s.Quiesce()
		if err := s.CheckInvariants(); err != nil {
			panic(err)
		}

		secure := "yes"
		if r.Latency != tm.LLCLoadLatency() {
			secure = "NO (state-dependent)"
		}
		fast := "yes"
		if w.Latency != tm.L1Tag {
			fast = "NO (round trip)"
		}
		tb.AddRowF(p.Name(), state,
			fmt.Sprintf("%d cyc (%v)", r.Latency, r.Served),
			fmt.Sprintf("%d cyc (%v)", w.Latency, w.Served),
			secure, fast)
	}
	fmt.Println(tb.Render())
	fmt.Println(`Reading the table:
- "remote WP read": 17 cycles = constant LLC service (channel closed);
  43 cycles = three-hop owner service whose presence depends on the
  sender's behaviour (channel open). MESIF's 43 is constant only while a
  forwarder exists - its residual channel (see -exp moesi).
- "private WAR store": 1 cycle = silent E->M upgrade kept; 17 cycles =
  S-MESI's Upgrade round trip on every write-after-read (overprotection).
- Only the SwiftDir variants answer yes on both axes.`)
}
