// Memory deduplication: kernel same-page merging turns identical private
// pages into shared, write-protected pages — the second source of
// exploitable shared memory in the paper (§IV-A). This example shows the
// pages merging, the R/W bit clearing, SwiftDir pinning the merged data
// in state S, and copy-on-write isolating a subsequent writer.
//
//	go run ./examples/dedup
package main

import (
	"fmt"
	"log"

	"repro/internal/coherence"
	"repro/internal/core"
	"repro/internal/mmu"
)

func main() {
	m, err := core.NewMachine(core.DefaultConfig(2, coherence.SwiftDir))
	if err != nil {
		log.Fatal(err)
	}

	// Two processes fill anonymous pages with identical content (say,
	// the same JIT-generated code or zero pages).
	p1, p2 := m.NewProcess(), m.NewProcess()
	t1, t2 := p1.AttachContext(0), p2.AttachContext(1)
	b1 := p1.MmapAnon(4 * mmu.PageSize)
	b2 := p2.MmapAnon(4 * mmu.PageSize)
	for i := 0; i < 4; i++ {
		content := uint64(0x1D) // identical across processes
		if i == 3 {
			content = uint64(0x100 + i) // last page unique per process
		}
		if err := p1.AS.WritePage(b1+mmu.VAddr(i)*mmu.PageSize, content); err != nil {
			log.Fatal(err)
		}
		if err := p2.AS.WritePage(b2+mmu.VAddr(i)*mmu.PageSize, content+uint64(i%4/3)*7); err != nil {
			log.Fatal(err)
		}
	}
	fmt.Printf("before KSM: %d live physical pages\n", m.PM.LivePages())

	merged := m.KSM.Scan()
	fmt.Printf("KSM scan   : merged %d pages; %d live physical pages remain\n",
		merged, m.PM.LivePages())

	// The kernel shoots down stale TLB entries after write-protecting.
	t1.DTLB.Flush()
	t2.DTLB.Flush()

	// The merged page is now write-protected; SwiftDir serves every
	// cross-core read from the LLC in constant time.
	r1 := t1.MustAccessSync(b1, false, 0)
	r2 := t2.MustAccessSync(b2, false, 0)
	fmt.Printf("p1 read    : write-protected=%v, served from %v (%d cycles)\n", r1.WP, r1.Served, r1.Latency)
	fmt.Printf("p2 read    : write-protected=%v, served from %v (%d cycles)\n", r2.WP, r2.Served, r2.Latency)

	// A write triggers copy-on-write: p1 gets a private frame; p2 keeps
	// reading the original value.
	w := t1.MustAccessSync(b1, true, 0xD1FF)
	c2, _ := p2.AS.ReadPage(b2)
	fmt.Printf("p1 write   : CoW fault -> private frame (write-protected now %v)\n", w.WP)
	fmt.Printf("p2 content : %#x (unchanged by p1's write)\n", c2)

	m.Quiesce()
	if err := m.CheckInvariants(); err != nil {
		log.Fatalf("invariants: %v", err)
	}
	fmt.Println("coherence invariants hold")
}
