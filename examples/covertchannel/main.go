// Covert channel: two colluding processes exfiltrate a secret through the
// E/S coherence state of shared-library cache lines (Yao et al., as
// summarized in the paper's §II-B), on MESI and on SwiftDir.
//
//	go run ./examples/covertchannel
package main

import (
	"fmt"
	"log"

	"repro/internal/attack"
	"repro/internal/coherence"
	"repro/internal/core"
)

func main() {
	const secret = "MICRO22"
	bits := len(secret) * 8

	for _, p := range []coherence.Policy{coherence.MESI, coherence.SwiftDir, coherence.SMESI} {
		ch, err := attack.NewChannel(core.DefaultConfig(4, p), bits)
		if err != nil {
			log.Fatal(err)
		}

		decoded := make([]byte, len(secret))
		for i := 0; i < bits; i++ {
			bit := secret[i/8]>>(7-uint(i%8))&1 == 1
			if err := ch.Transmit(i, bit); err != nil {
				log.Fatal(err)
			}
			got, lat, err := ch.Probe(i)
			if err != nil {
				log.Fatal(err)
			}
			if got {
				decoded[i/8] |= 1 << (7 - uint(i%8))
			}
			if i < 2 {
				fmt.Printf("%-9s bit %d: sent %v, probe latency %d cycles, decoded %v\n",
					p.Name(), i, bit, lat, got)
			}
		}
		ok := string(decoded) == secret
		fmt.Printf("%-9s decoded %q -> attack %s\n\n", p.Name(), printable(decoded),
			map[bool]string{true: "SUCCEEDS", false: "FAILS"}[ok])
	}

	// Statistical view: bit error rate over random payloads.
	for _, p := range []coherence.Policy{coherence.MESI, coherence.SwiftDir} {
		ch, err := attack.NewChannel(core.DefaultConfig(4, p), 512)
		if err != nil {
			log.Fatal(err)
		}
		res, err := ch.Run(512, 1)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Println(res.Describe())
	}
}

func printable(b []byte) string {
	out := make([]byte, len(b))
	for i, c := range b {
		if c >= 32 && c < 127 {
			out[i] = c
		} else {
			out[i] = '.'
		}
	}
	return string(out)
}
