// Write-after-read: the workload class where S-MESI's overprotection
// hurts most (Figure 10). Runs the paper's three array applications on
// both CPU models across all protocols and prints normalized execution
// times.
//
//	go run ./examples/writeafterread
package main

import (
	"fmt"
	"log"

	"repro/internal/coherence"
	"repro/internal/stats"
	"repro/internal/workload"
)

func main() {
	for _, kind := range []workload.CPUKind{workload.TimingSimpleCPU, workload.DerivO3CPU} {
		tb := stats.NewTable(
			fmt.Sprintf("Write-after-read intensive applications (%s)", kind),
			"application", "MESI (cycles)", "SwiftDir (cycles)", "S-MESI (cycles)", "S-MESI slowdown")
		for _, app := range workload.WARApps() {
			var cycles []float64
			for _, p := range []coherence.Policy{coherence.MESI, coherence.SwiftDir, coherence.SMESI} {
				r, err := workload.RunWAR(app, p, kind, 3)
				if err != nil {
					log.Fatal(err)
				}
				cycles = append(cycles, float64(r.ExecCycles))
			}
			tb.AddRowF(app.Name, cycles[0], cycles[1], cycles[2],
				fmt.Sprintf("%.2fx", cycles[2]/cycles[0]))
		}
		fmt.Println(tb.Render())
	}
	fmt.Println("SwiftDir keeps MESI's silent E->M upgrade for this unshared data,")
	fmt.Println("so it matches MESI exactly; S-MESI pays an Upgrade round trip per block.")
}
