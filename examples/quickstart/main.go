// Quickstart: build a SwiftDir machine, map a shared library into two
// processes, and watch the write-protection bit flow from the page table
// through the TLB into the coherence protocol.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"repro/internal/coherence"
	"repro/internal/core"
	"repro/internal/mmu"
)

func main() {
	// A 2-core machine with the paper's Table V configuration, running
	// the SwiftDir protocol.
	m, err := core.NewMachine(core.DefaultConfig(2, coherence.SwiftDir))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(m.Cfg.Describe())

	// Two processes map the same shared library (read-only, MAP_SHARED):
	// classic exploitable shared memory.
	libc := mmu.NewFile("libc.so.6", 0xC)
	p1, p2 := m.NewProcess(), m.NewProcess()
	t1, t2 := p1.AttachContext(0), p2.AttachContext(1)
	b1 := p1.MmapLibrary(libc, 1<<20)
	b2 := p2.MmapLibrary(libc, 1<<20)

	// Process 1 touches a library line: under SwiftDir the GETS_WP
	// request installs it directly in state S (I->S), never E.
	r1 := t1.MustAccessSync(b1+0x2000, false, 0)
	fmt.Printf("p1 cold load   : write-protected=%v, served from %v, %d cycles\n",
		r1.WP, r1.Served, r1.Latency)

	// Process 2 re-reads the same physical line cross-core: always the
	// constant LLC round trip -- the E/S timing channel does not exist.
	t2.MustAccessSync(b2+0x2040, false, 0) // warm p2's TLB on this page
	r2 := t2.MustAccessSync(b2+0x2000, false, 0)
	fmt.Printf("p2 remote load : write-protected=%v, served from %v, %d cycles\n",
		r2.WP, r2.Served, r2.Latency)

	// Private data keep MESI's fast path: read-then-write upgrades E->M
	// silently inside the L1, in one cycle.
	heap := p1.MmapAnon(1 << 16)
	t1.MustAccessSync(heap, false, 0)
	w := t1.MustAccessSync(heap, true, 42)
	fmt.Printf("p1 heap store  : write-protected=%v, served from %v, %d cycle(s) (silent E->M)\n",
		w.WP, w.Served, w.Latency)

	m.Quiesce()
	if err := m.CheckInvariants(); err != nil {
		log.Fatalf("coherence invariants violated: %v", err)
	}
	fmt.Println("\ncoherence invariants hold (SWMR, inclusion, WP-never-exclusive)")
}
