package campaign

import (
	"errors"
	"strings"
	"testing"
)

// OnPanic must run on the captured *PanicError before the result is
// delivered, and must not run for jobs that succeed or merely error.
func TestOnPanicHookReceivesPanicError(t *testing.T) {
	var captured []*PanicError
	hook := func(pe *PanicError) { captured = append(captured, pe) }
	jobs := []Job[int]{
		{Name: "ok", Run: func() (int, error) { return 1, nil }, OnPanic: hook},
		{Name: "err", Run: func() (int, error) { return 0, errors.New("soft") }, OnPanic: hook},
		{Name: "boom", Run: func() (int, error) { panic("diverged") }, OnPanic: hook},
	}
	results, _ := Run(1, jobs)
	if len(captured) != 1 {
		t.Fatalf("hook ran %d times, want 1", len(captured))
	}
	if captured[0].Job != "boom" || captured[0].Value != "diverged" {
		t.Errorf("captured %+v", captured[0])
	}
	var pe *PanicError
	if !errors.As(results[2].Err, &pe) || pe != captured[0] {
		t.Errorf("result error %v does not carry the hooked PanicError", results[2].Err)
	}
	if results[0].Err != nil {
		t.Errorf("ok job error: %v", results[0].Err)
	}
}

// A hook that itself panics degrades to an error annotation on the job,
// never a dead worker; the original PanicError stays retrievable.
func TestOnPanicHookFailureIsContained(t *testing.T) {
	jobs := []Job[int]{{
		Name:    "boom",
		Run:     func() (int, error) { panic("primary") },
		OnPanic: func(*PanicError) { panic("hook failure") },
	}}
	results, _ := Run(1, jobs)
	err := results[0].Err
	if err == nil {
		t.Fatal("no error for panicked job")
	}
	var pe *PanicError
	if !errors.As(err, &pe) || pe.Value != "primary" {
		t.Errorf("primary panic lost: %v", err)
	}
	if !strings.Contains(err.Error(), "hook failure") {
		t.Errorf("hook failure not reported: %v", err)
	}
}
