package campaign

import (
	"errors"
	"fmt"
	"math/rand"
	"strings"
	"testing"
	"time"
)

// squareJobs builds n jobs returning i*i, optionally jittering their
// runtime so completion order scrambles relative to submission order.
func squareJobs(n int, jitter bool, rng *rand.Rand) []Job[int] {
	jobs := make([]Job[int], n)
	for i := range jobs {
		i := i
		var d time.Duration
		if jitter {
			d = time.Duration(rng.Intn(3)) * time.Millisecond
		}
		jobs[i] = Job[int]{Name: fmt.Sprintf("sq-%d", i), Run: func() (int, error) {
			time.Sleep(d)
			return i * i, nil
		}}
	}
	return jobs
}

// Results must come back in submission order at every worker count,
// regardless of completion order — the determinism guarantee the whole
// evaluation leans on.
func TestRunDeterministicOrder(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for _, workers := range []int{1, 2, 4, 8, 16} {
		workers := workers
		t.Run(fmt.Sprintf("j%d", workers), func(t *testing.T) {
			results, sum := Run(workers, squareJobs(23, true, rng))
			if len(results) != 23 {
				t.Fatalf("results = %d, want 23", len(results))
			}
			for i, r := range results {
				if r.Err != nil {
					t.Fatalf("job %d: %v", i, r.Err)
				}
				if r.Value != i*i || r.Name != fmt.Sprintf("sq-%d", i) {
					t.Fatalf("slot %d holds %q=%d, want sq-%d=%d", i, r.Name, r.Value, i, i*i)
				}
			}
			if len(sum.Jobs) != 23 || sum.Failed() != 0 {
				t.Fatalf("summary: %d jobs, %d failed", len(sum.Jobs), sum.Failed())
			}
			if want := min(workers, 23); sum.Workers != want {
				t.Fatalf("summary workers = %d, want %d", sum.Workers, want)
			}
		})
	}
}

// A panicking job must surface as a labelled *PanicError on its own slot
// while every other job completes.
func TestPanicIsolation(t *testing.T) {
	jobs := squareJobs(8, false, nil)
	jobs[3] = Job[int]{Name: "diverges", Run: func() (int, error) {
		panic("simulation diverged")
	}}
	results, sum := Run(4, jobs)
	for i, r := range results {
		if i == 3 {
			var pe *PanicError
			if !errors.As(r.Err, &pe) {
				t.Fatalf("slot 3: err = %v, want *PanicError", r.Err)
			}
			if pe.Job != "diverges" || !strings.Contains(pe.Error(), "simulation diverged") {
				t.Fatalf("panic not labelled: %v", pe)
			}
			continue
		}
		if r.Err != nil || r.Value != i*i {
			t.Fatalf("job %d disturbed by sibling panic: %d, %v", i, r.Value, r.Err)
		}
	}
	if sum.Failed() != 1 {
		t.Fatalf("summary failed = %d, want 1", sum.Failed())
	}

	_, err := Collect(4, jobs)
	if err == nil || !strings.Contains(err.Error(), `"diverges"`) {
		t.Fatalf("Collect error not labelled: %v", err)
	}
}

func TestCollectValuesAndErrors(t *testing.T) {
	jobs := []Job[string]{
		{Name: "a", Run: func() (string, error) { return "A", nil }},
		{Name: "b", Run: func() (string, error) { return "", errors.New("boom") }},
		{Name: "c", Run: func() (string, error) { return "C", nil }},
	}
	values, err := Collect(2, jobs)
	if err == nil || !strings.Contains(err.Error(), `job "b"`) {
		t.Fatalf("err = %v", err)
	}
	if values[0] != "A" || values[2] != "C" {
		t.Fatalf("values = %v", values)
	}

	defer func() {
		if recover() == nil {
			t.Fatal("MustCollect did not panic on job error")
		}
	}()
	MustCollect(2, jobs)
}

func TestWorkersResolution(t *testing.T) {
	defer SetWorkers(0)

	SetWorkers(3)
	if Workers() != 3 {
		t.Fatalf("SetWorkers(3): Workers() = %d", Workers())
	}

	SetWorkers(0)
	t.Setenv("SWIFTDIR_JOBS", "5")
	if Workers() != 5 {
		t.Fatalf("SWIFTDIR_JOBS=5: Workers() = %d", Workers())
	}
	// An explicit SetWorkers beats the environment.
	SetWorkers(2)
	if Workers() != 2 {
		t.Fatalf("SetWorkers over env: Workers() = %d", Workers())
	}
	SetWorkers(0)
	t.Setenv("SWIFTDIR_JOBS", "not-a-number")
	if Workers() < 1 {
		t.Fatalf("garbage env: Workers() = %d", Workers())
	}
}

func TestEmptyAndSingleJobCampaigns(t *testing.T) {
	results, sum := Run[int](4, nil)
	if len(results) != 0 || len(sum.Jobs) != 0 {
		t.Fatalf("empty campaign: %d results", len(results))
	}
	values := MustCollect(8, squareJobs(1, false, nil))
	if len(values) != 1 || values[0] != 0 {
		t.Fatalf("single job: %v", values)
	}
}

func TestTakeSummariesDrains(t *testing.T) {
	TakeSummaries() // reset whatever earlier tests queued
	Run(2, squareJobs(4, false, nil))
	Run(2, squareJobs(2, false, nil))
	got := TakeSummaries()
	if len(got) != 2 || len(got[0].Jobs) != 4 || len(got[1].Jobs) != 2 {
		t.Fatalf("summaries = %+v", got)
	}
	if len(TakeSummaries()) != 0 {
		t.Fatal("second drain not empty")
	}
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
