package campaign

import (
	"errors"
	"fmt"
	"testing"
)

// FuzzCampaign drives random small job grids through the pool and checks
// the three invariants every experiment depends on: submission-order
// results, completeness (every job ran exactly once), and panic
// isolation (a diverging job is a labelled error on its own slot and
// nothing else).
func FuzzCampaign(f *testing.F) {
	f.Add(uint8(5), uint8(3), uint16(0))
	f.Add(uint8(0), uint8(0), uint16(0))
	f.Add(uint8(32), uint8(8), uint16(0xA5A5))
	f.Add(uint8(1), uint8(16), uint16(1))
	f.Add(uint8(17), uint8(2), uint16(0xFFFF))
	f.Fuzz(func(t *testing.T, njobs, workers uint8, panicMask uint16) {
		n := int(njobs % 48)
		w := int(workers % 17) // 0 exercises the automatic default
		panics := func(i int) bool { return panicMask&(1<<(i%16)) != 0 }

		jobs := make([]Job[int], n)
		for i := range jobs {
			i := i
			jobs[i] = Job[int]{Name: fmt.Sprintf("grid-%d", i), Run: func() (int, error) {
				if panics(i) {
					panic(fmt.Sprintf("diverged at %d", i))
				}
				return 3*i + 1, nil
			}}
		}

		results, sum := Run(w, jobs)
		if len(results) != n || len(sum.Jobs) != n {
			t.Fatalf("completeness: %d results / %d timings for %d jobs", len(results), len(sum.Jobs), n)
		}
		failed := 0
		for i, r := range results {
			if r.Name != fmt.Sprintf("grid-%d", i) {
				t.Fatalf("ordering: slot %d holds %q", i, r.Name)
			}
			if panics(i) {
				failed++
				var pe *PanicError
				if !errors.As(r.Err, &pe) || pe.Job != r.Name {
					t.Fatalf("slot %d: want labelled PanicError, got %v", i, r.Err)
				}
			} else if r.Err != nil || r.Value != 3*i+1 {
				t.Fatalf("slot %d: value %d err %v", i, r.Value, r.Err)
			}
		}
		if sum.Failed() != failed {
			t.Fatalf("summary failed = %d, want %d", sum.Failed(), failed)
		}
	})
}
