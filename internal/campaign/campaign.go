// Package campaign is the worker-pool job scheduler behind the
// evaluation. Every experiment in internal/experiments is a grid of
// independent simulations (benchmark × protocol × CPU model); campaign
// fans those jobs out across runtime.NumCPU() goroutines by default and
// hands the results back in deterministic submission order regardless of
// completion order, so a rendered report is byte-identical to a
// sequential run at any worker count.
//
// The worker count resolves, in priority order: the explicit workers
// argument to Run/Collect, SetWorkers (the CLIs' -j flag), the
// SWIFTDIR_JOBS environment variable, and finally runtime.NumCPU().
//
// A job that panics does not kill the campaign: the panic is captured as
// a labelled *PanicError on that job's Result while every other job runs
// to completion. Per-job wall times are recorded as
// stats.CampaignSummary values, which the CLIs drain via TakeSummaries
// to print speedup footers (on stderr, keeping report output
// deterministic).
package campaign

import (
	"context"
	"errors"
	"fmt"
	"os"
	"runtime"
	"runtime/debug"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/stats"
)

// Job is one independent unit of work: a named closure that builds its
// own simulator state (no sharing with other jobs) and returns a value.
type Job[T any] struct {
	Name string
	Run  func() (T, error)

	// OnPanic, if non-nil, runs on the worker goroutine after a panic in
	// Run has been captured as a *PanicError but before the job's Result
	// is finalized — the crash-bundle hook. It must not re-raise; if it
	// panics itself, that secondary failure is folded into the job error
	// rather than killing the campaign.
	OnPanic func(*PanicError)
}

// Result pairs one job's outcome with its wall time. Results are always
// delivered in submission order.
type Result[T any] struct {
	Name  string
	Value T
	Err   error
	Wall  time.Duration
}

// PanicError is a panic captured inside a job, labelled with the job
// that diverged so one bad simulation reads as a job error rather than a
// dead process.
type PanicError struct {
	Job   string
	Value any
	Stack []byte
}

func (e *PanicError) Error() string {
	return fmt.Sprintf("campaign job %q panicked: %v\n%s", e.Job, e.Value, e.Stack)
}

// workerOverride holds the SetWorkers value; 0 means "automatic".
var workerOverride atomic.Int64

// SetWorkers pins the default pool size (the CLIs' -j flag). n <= 0
// restores automatic sizing (SWIFTDIR_JOBS, then runtime.NumCPU()).
func SetWorkers(n int) {
	if n < 0 {
		n = 0
	}
	workerOverride.Store(int64(n))
}

// Workers reports the pool size a workers<=0 Run would use right now.
func Workers() int {
	if v := workerOverride.Load(); v > 0 {
		return int(v)
	}
	if s := os.Getenv("SWIFTDIR_JOBS"); s != "" {
		if n, err := strconv.Atoi(s); err == nil && n > 0 {
			return n
		}
	}
	return runtime.NumCPU()
}

// shardOverride holds the SetShards value; 0 means "automatic".
var shardOverride atomic.Int64

// SetShards pins the event-engine shard count sharding-aware runners
// (workload.RunDetailed) default to (the CLIs' -shards flag). n <= 0
// restores automatic resolution (SWIFTDIR_SHARDS, then 1). Shards
// compose with workers: each of the -j concurrent jobs runs its own
// machine on Shards() engine shards, so peak goroutine count is roughly
// their product.
func SetShards(n int) {
	if n < 0 {
		n = 0
	}
	shardOverride.Store(int64(n))
}

// Shards reports the shard count a sharding-aware runner would use right
// now: the SetShards override, else a valid SWIFTDIR_SHARDS, else 1 (the
// sequential engine).
func Shards() int {
	if v := shardOverride.Load(); v > 0 {
		return int(v)
	}
	if n, err := shardsFromEnv(); err == nil && n > 0 {
		return n
	}
	return 1
}

// shardsFromEnv parses SWIFTDIR_SHARDS; n == 0 means unset.
func shardsFromEnv() (int, error) {
	s := os.Getenv("SWIFTDIR_SHARDS")
	if s == "" {
		return 0, nil
	}
	n, err := strconv.Atoi(s)
	if err != nil || n < 1 || n > 64 {
		return 0, fmt.Errorf("campaign: SWIFTDIR_SHARDS=%q: want an integer in [1,64]", s)
	}
	return n, nil
}

// ResolveShards validates a CLI -shards value and resolves the effective
// shard count: flag > 0 wins, flag == 0 falls back to SWIFTDIR_SHARDS,
// else 1. Out-of-range values — from the flag or the environment — are
// errors, so the CLIs can fail with usage instead of silently running
// sequential.
func ResolveShards(flag int) (int, error) {
	if flag < 0 || flag > 64 {
		return 0, fmt.Errorf("campaign: -shards %d out of range [1,64]", flag)
	}
	if flag > 0 {
		return flag, nil
	}
	n, err := shardsFromEnv()
	if err != nil {
		return 0, err
	}
	if n == 0 {
		n = 1
	}
	return n, nil
}

// Run executes jobs on a pool of the given size (workers <= 0 uses
// Workers()) and returns one Result per job in submission order, plus
// the campaign's timing summary. The summary is also queued for
// TakeSummaries so CLI frontends can report it without threading it
// through every experiment signature.
func Run[T any](workers int, jobs []Job[T]) ([]Result[T], stats.CampaignSummary) {
	if workers <= 0 {
		workers = Workers()
	}
	if workers > len(jobs) {
		workers = len(jobs)
	}
	if workers < 1 {
		workers = 1
	}

	results := make([]Result[T], len(jobs))
	start := time.Now()
	var wg sync.WaitGroup
	idx := make(chan int)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range idx {
				results[i] = execute(jobs[i])
			}
		}()
	}
	for i := range jobs {
		idx <- i
	}
	close(idx)
	wg.Wait()

	summary := stats.CampaignSummary{Workers: workers, Wall: time.Since(start)}
	for _, r := range results {
		summary.Jobs = append(summary.Jobs, stats.JobTiming{
			Name: r.Name, Wall: r.Wall, Failed: r.Err != nil,
		})
	}
	if len(jobs) > 0 {
		record(summary)
	}
	return results, summary
}

// execute runs one job with the panic-capture fence.
func execute[T any](j Job[T]) (res Result[T]) {
	res.Name = j.Name
	start := time.Now()
	defer func() {
		res.Wall = time.Since(start)
		if r := recover(); r != nil {
			pe := &PanicError{Job: j.Name, Value: r, Stack: debug.Stack()}
			res.Err = pe
			if j.OnPanic != nil {
				if hookErr := runPanicHook(j.OnPanic, pe); hookErr != nil {
					res.Err = errors.Join(pe, fmt.Errorf("job %q OnPanic hook failed: %w", j.Name, hookErr))
				}
			}
		}
	}()
	res.Value, res.Err = j.Run()
	return res
}

// runPanicHook invokes an OnPanic hook under its own recover fence so a
// faulty bundle writer degrades to an error annotation, never a crash.
func runPanicHook(hook func(*PanicError), pe *PanicError) (err error) {
	defer func() {
		if r := recover(); r != nil {
			err = fmt.Errorf("panic: %v", r)
		}
	}()
	hook(pe)
	return nil
}

// RunCtx is Run with cooperative cancellation: once ctx is done, jobs
// not yet picked up by a worker are skipped — their Result carries the
// context's cause as Err and a zero Wall — while jobs already running
// finish (or abort themselves, when their machines carry a cancel
// token). Submission order of the results is unchanged, so a cancelled
// campaign still reads like a partial prefix of the full grid.
func RunCtx[T any](ctx context.Context, workers int, jobs []Job[T]) ([]Result[T], stats.CampaignSummary) {
	if ctx == nil || ctx.Done() == nil {
		return Run(workers, jobs)
	}
	guarded := make([]Job[T], len(jobs))
	for i, j := range jobs {
		run := j.Run
		guarded[i] = Job[T]{
			Name:    j.Name,
			OnPanic: j.OnPanic,
			Run: func() (T, error) {
				if err := ctx.Err(); err != nil {
					var zero T
					if cause := context.Cause(ctx); cause != nil {
						err = cause
					}
					return zero, fmt.Errorf("skipped: %w", err)
				}
				return run()
			},
		}
	}
	return Run(workers, guarded)
}

// CollectCtx is Collect with RunCtx's cancellation semantics.
func CollectCtx[T any](ctx context.Context, workers int, jobs []Job[T]) ([]T, error) {
	results, _ := RunCtx(ctx, workers, jobs)
	values := make([]T, len(results))
	var errs []error
	for i, r := range results {
		values[i] = r.Value
		if r.Err != nil {
			errs = append(errs, fmt.Errorf("job %q: %w", r.Name, r.Err))
		}
	}
	return values, errors.Join(errs...)
}

// MustCollectCtx is CollectCtx under the experiments' panic-on-error
// convention: a cancelled campaign panics with the joined per-job
// errors, which the frontends' recover fences classify.
func MustCollectCtx[T any](ctx context.Context, workers int, jobs []Job[T]) []T {
	values, err := CollectCtx(ctx, workers, jobs)
	if err != nil {
		panic(err)
	}
	return values
}

// Collect runs jobs and returns just the values in submission order.
// Failures (including captured panics) are joined into one error
// labelled with the failing jobs' names — after every job has finished,
// so one diverging simulation cannot strand the rest of the grid.
func Collect[T any](workers int, jobs []Job[T]) ([]T, error) {
	results, _ := Run(workers, jobs)
	values := make([]T, len(results))
	var errs []error
	for i, r := range results {
		values[i] = r.Value
		if r.Err != nil {
			errs = append(errs, fmt.Errorf("job %q: %w", r.Name, r.Err))
		}
	}
	return values, errors.Join(errs...)
}

// MustCollect is Collect for the experiment functions, which follow the
// package's panic-on-error convention.
func MustCollect[T any](workers int, jobs []Job[T]) []T {
	values, err := Collect(workers, jobs)
	if err != nil {
		panic(err)
	}
	return values
}

// pending accumulates summaries of completed campaigns until a frontend
// drains them.
var (
	pendingMu sync.Mutex
	pending   []stats.CampaignSummary
)

func record(s stats.CampaignSummary) {
	pendingMu.Lock()
	defer pendingMu.Unlock()
	pending = append(pending, s)
	// An unattended frontend (tests, library use) must not leak summaries
	// without bound; keep the most recent window.
	const keep = 4096
	if len(pending) > keep {
		pending = append(pending[:0], pending[len(pending)-keep:]...)
	}
}

// TakeSummaries drains and returns the summaries of campaigns completed
// since the previous drain, in completion order.
func TakeSummaries() []stats.CampaignSummary {
	pendingMu.Lock()
	defer pendingMu.Unlock()
	out := pending
	pending = nil
	return out
}
