package attack

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/mmu"
	"repro/internal/sim"
)

// WriteChannel implements the deduplication write-timing side channel of
// Bosman et al. (cited by the paper in §II-B): writing a merged
// (deduplicated) page triggers a copy-on-write fault and is an order of
// magnitude slower than writing a private page, so an attacker who writes
// a page of guessed content learns whether some victim held the same
// content. The paper's suggested future-work defense — treating the CoW
// fault as a write miss completed through a write buffer
// (core.Config.FastCoWWrites) — makes the write latency constant and
// closes this channel.
type WriteChannel struct {
	m        *core.Machine
	attacker *core.Process
	attCtx   *core.Context
	victim   *core.Process

	attackerBase mmu.VAddr
	victimBase   mmu.VAddr
	pages        int

	// Threshold separating a plain store from a CoW-faulting store.
	Threshold sim.Cycle
}

// NewWriteChannel builds the scenario: attacker on core 0, victim process
// alongside; trials pages of capacity.
func NewWriteChannel(cfg core.Config, trials int) (*WriteChannel, error) {
	if trials <= 0 {
		return nil, fmt.Errorf("attack: non-positive trial count")
	}
	m, err := core.NewMachine(cfg)
	if err != nil {
		return nil, err
	}
	attacker := m.NewProcess()
	victim := m.NewProcess()
	w := &WriteChannel{
		m:        m,
		attacker: attacker,
		attCtx:   attacker.AttachContext(0),
		victim:   victim,
		pages:    trials,
	}
	w.attackerBase = attacker.MmapAnon(trials * mmu.PageSize)
	w.victimBase = victim.MmapAnon(trials * mmu.PageSize)
	// Threshold: the CoW path costs at least CoWLatency (or the write
	// buffer under the defense); anything above half the CoW cost reads
	// as "merged".
	w.Threshold = cfg.CoWLatency / 2
	return w, nil
}

// Trial runs one detection round on page i: the attacker guesses that the
// victim holds content K; if victimHasContent, the victim's page indeed
// holds K. After a dedup pass, the attacker writes its own copy and times
// the store.
func (w *WriteChannel) Trial(i int, victimHasContent bool) (detected bool, err error) {
	content := 0xC0_0000 + uint64(i)
	av := w.attackerBase + mmu.VAddr(i)*mmu.PageSize
	vv := w.victimBase + mmu.VAddr(i)*mmu.PageSize
	if err := w.attacker.AS.WritePage(av, content); err != nil {
		return false, err
	}
	victimContent := content
	if !victimHasContent {
		victimContent = ^content // distinct content: no merge
	}
	if err := w.victim.AS.WritePage(vv, victimContent); err != nil {
		return false, err
	}
	// The dedup daemon runs; merged pages are write-protected and the
	// TLBs shot down.
	w.m.KSM.Scan()
	w.attCtx.DTLB.Flush()

	// Warm the attacker's read path so only the write fault matters.
	if _, err := w.attCtx.AccessSync(av, false, 0); err != nil {
		return false, err
	}
	r, err := w.attCtx.AccessSync(av, true, 0xDEAD)
	if err != nil {
		return false, err
	}
	return r.Latency > w.Threshold, nil
}

// Run performs trials rounds with randomized victim behaviour and returns
// the inference accuracy.
func (w *WriteChannel) Run(seed uint64) (SideResult, error) {
	rng := sim.NewRNG(seed)
	res := SideResult{Protocol: w.m.Cfg.Protocol.Name(), Trials: w.pages}
	if w.m.Cfg.FastCoWWrites {
		res.Protocol += "+FastCoW"
	}
	for i := 0; i < w.pages; i++ {
		truth := rng.Bool(0.5)
		got, err := w.Trial(i, truth)
		if err != nil {
			return res, err
		}
		if got == truth {
			res.Correct++
		}
	}
	res.Accuracy = float64(res.Correct) / float64(res.Trials)
	res.Works = res.Accuracy > 0.75
	return res, nil
}
