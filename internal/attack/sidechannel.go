package attack

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/mmu"
	"repro/internal/sim"
)

// SideChannel implements the access-detection side channel of §II-B: two
// colluding attacker threads bracket a victim's execution interval and
// infer whether the victim touched a shared line.
//
//  1. attacker thread 1 accesses the victim line (E under MESI);
//  2. the victim may or may not access its own mapping of the line
//     (E -> S if it does);
//  3. attacker thread 2 times an access: fast (LLC, S) means the victim
//     was there; slow (three-hop, E) means it was not.
//
// Such probes are the primitive behind website-fingerprinting, password-
// hash leakage, and ASLR breaks cited by the paper.
type SideChannel struct {
	attacker1 *core.Context
	attacker2 *core.Context
	victim    *core.Context

	attackerBase mmu.VAddr
	victimBase   mmu.VAddr

	Threshold sim.Cycle
	m         *core.Machine
}

// NewSideChannel builds the scenario on a fresh machine (needs >=3 cores:
// two attacker threads and the victim).
func NewSideChannel(cfg core.Config, trials int) (*SideChannel, error) {
	if cfg.Cores < 3 {
		return nil, fmt.Errorf("attack: side channel needs >=3 cores, have %d", cfg.Cores)
	}
	m, err := core.NewMachine(cfg)
	if err != nil {
		return nil, err
	}
	lib := mmu.NewFile("libvictim.so", 0x51DE)
	pages := (trials + linesPerPage - 1) / linesPerPage
	length := (pages + 1) * mmu.PageSize

	attacker := m.NewProcess()
	victim := m.NewProcess()
	sc := &SideChannel{
		attacker1: attacker.AttachContext(0),
		attacker2: attacker.AttachContext(1),
		victim:    victim.AttachContext(2),
		Threshold: (cfg.Timing.LLCLoadLatency() + cfg.Timing.RemoteLoadLatency()) / 2,
		m:         m,
	}
	sc.attackerBase = attacker.MmapLibrary(lib, length)
	sc.victimBase = victim.MmapLibrary(lib, length)
	return sc, nil
}

// Trial runs one detection round on line i. victimAccesses controls
// whether the victim touches the line during the interval. It returns the
// attacker's verdict.
func (s *SideChannel) Trial(i int, victimAccesses bool) (detected bool, err error) {
	// Prime.
	if _, err := s.attacker1.AccessSync(lineAddr(s.attackerBase, i), false, 0); err != nil {
		return false, err
	}
	// Victim's interval.
	if victimAccesses {
		if _, err := s.victim.AccessSync(lineAddr(s.victimBase, i), false, 0); err != nil {
			return false, err
		}
	}
	// Probe from the second attacker thread.
	if _, err := s.attacker2.AccessSync(pageAddr(s.attackerBase, i), false, 0); err != nil {
		return false, err
	}
	r, err := s.attacker2.AccessSync(lineAddr(s.attackerBase, i), false, 0)
	if err != nil {
		return false, err
	}
	// Fast (LLC) => the line was Shared => the victim accessed it.
	return r.Latency <= s.Threshold, nil
}

// SideResult summarizes a side-channel run.
type SideResult struct {
	Protocol string
	Trials   int
	Correct  int
	Accuracy float64 // 1.0 = perfect inference; ~0.5 = defended
	Works    bool
}

// Run performs trials rounds with randomized victim behaviour.
func (s *SideChannel) Run(trials int, seed uint64) (SideResult, error) {
	rng := sim.NewRNG(seed)
	res := SideResult{Protocol: s.m.Cfg.Protocol.Name(), Trials: trials}
	for i := 0; i < trials; i++ {
		truth := rng.Bool(0.5)
		got, err := s.Trial(i, truth)
		if err != nil {
			return res, err
		}
		if got == truth {
			res.Correct++
		}
	}
	res.Accuracy = float64(res.Correct) / float64(trials)
	res.Works = res.Accuracy > 0.75
	return res, nil
}

// Describe renders the result for reports.
func (r SideResult) Describe() string {
	status := "DEFENDED (inference at chance)"
	if r.Works {
		status = "VULNERABLE (victim behaviour inferred)"
	}
	return fmt.Sprintf("%-9s trials=%d correct=%d accuracy=%.3f => %s",
		r.Protocol, r.Trials, r.Correct, r.Accuracy, status)
}
