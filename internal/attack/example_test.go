package attack_test

import (
	"fmt"

	"repro/internal/attack"
	"repro/internal/coherence"
	"repro/internal/core"
)

// Example runs the E/S covert channel (§III) against MESI and SwiftDir.
// Under MESI the receiver decodes every bit from the 26-cycle latency
// gap; under SwiftDir the gap is gone and the channel degrades to coin
// flips.
func Example() {
	for _, p := range []coherence.Policy{coherence.MESI, coherence.SwiftDir} {
		ch, err := attack.NewChannel(core.DefaultConfig(4, p), 64)
		if err != nil {
			panic(err)
		}
		res, err := ch.Run(64, 1)
		if err != nil {
			panic(err)
		}
		fmt.Printf("%-8s gap=%2.0f cycles, usable=%v\n", res.Protocol, res.Gap, res.Leaked)
	}
	// Output:
	// MESI     gap=26 cycles, usable=true
	// SwiftDir gap= 0 cycles, usable=false
}
