package attack

import (
	"testing"

	"repro/internal/coherence"
	"repro/internal/core"
	"repro/internal/mmu"
)

// The dedup write-timing channel works on a stock machine regardless of
// the coherence protocol (it is an MMU-level channel, orthogonal to E/S).
func TestWriteChannelWorksWithoutDefense(t *testing.T) {
	for _, p := range []coherence.Policy{coherence.MESI, coherence.SwiftDir} {
		w, err := NewWriteChannel(core.DefaultConfig(2, p), 128)
		if err != nil {
			t.Fatal(err)
		}
		r, err := w.Run(11)
		if err != nil {
			t.Fatal(err)
		}
		if r.Accuracy != 1.0 {
			t.Fatalf("%s: write-channel accuracy %v, want 1.0", p.Name(), r.Accuracy)
		}
		if !r.Works {
			t.Fatal("channel reported defended without defense")
		}
	}
}

// The paper's future-work defense closes it: with FastCoWWrites the store
// latency is constant and inference collapses to chance.
func TestWriteChannelClosedByFastCoW(t *testing.T) {
	cfg := core.DefaultConfig(2, coherence.SwiftDir)
	cfg.FastCoWWrites = true
	w, err := NewWriteChannel(cfg, 128)
	if err != nil {
		t.Fatal(err)
	}
	r, err := w.Run(11)
	if err != nil {
		t.Fatal(err)
	}
	if r.Works {
		t.Fatalf("write channel still works under FastCoW (accuracy %v)", r.Accuracy)
	}
	if r.Accuracy < 0.3 || r.Accuracy > 0.7 {
		t.Fatalf("accuracy %v, want ~0.5", r.Accuracy)
	}
	if r.Protocol != "SwiftDir+FastCoW" {
		t.Fatalf("protocol label %q", r.Protocol)
	}
}

// FastCoW also speeds up CoW-write-intensive execution: the functional
// result is identical, only cheaper.
func TestFastCoWSpeedsUpCoWWrites(t *testing.T) {
	run := func(fast bool) (total int64) {
		cfg := core.DefaultConfig(1, coherence.SwiftDir)
		cfg.FastCoWWrites = fast
		m := core.MustNewMachine(cfg)
		lib := mmuFile()
		p := m.NewProcess()
		ctx := p.AttachContext(0)
		base := p.MmapLibraryData(lib, 64*4096, 0)
		for i := 0; i < 64; i++ {
			r := ctx.MustAccessSync(base+mmuPage(i), true, uint64(i))
			total += int64(r.Latency)
		}
		return total
	}
	slow := run(false)
	fast := run(true)
	if fast*2 >= slow {
		t.Fatalf("FastCoW writes %d not much cheaper than %d", fast, slow)
	}
}

func mmuFile() *mmu.File      { return mmu.NewFile("cow.so", 3) }
func mmuPage(i int) mmu.VAddr { return mmu.VAddr(i) * mmu.PageSize }
