package attack

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/mmu"
)

// NewDedupChannel builds the covert channel over the paper's second
// source of exploitable shared memory: memory deduplication. The two
// colluding processes fill anonymous private pages with identical
// (pre-agreed) content; the KSM daemon merges them into shared,
// write-protected frames; the E/S channel then runs over the merged
// lines exactly as over a shared library.
func NewDedupChannel(cfg core.Config, capacityBits int) (*Channel, error) {
	if cfg.Cores < 3 {
		return nil, fmt.Errorf("attack: covert channel needs >=3 cores, have %d", cfg.Cores)
	}
	m, err := core.NewMachine(cfg)
	if err != nil {
		return nil, err
	}

	pages := (capacityBits + linesPerPage - 1) / linesPerPage
	length := (pages + 1) * mmu.PageSize

	sender := m.NewProcess()
	receiver := m.NewProcess()
	ch := &Channel{
		m:         &Machine{M: m},
		senderA:   sender.AttachContext(0),
		senderB:   sender.AttachContext(1),
		receiver:  receiver.AttachContext(2),
		Threshold: (cfg.Timing.LLCLoadLatency() + cfg.Timing.RemoteLoadLatency()) / 2,
	}
	ch.senderABase = sender.MmapAnon(length)
	ch.senderBBase = ch.senderABase
	ch.receiverBase = receiver.MmapAnon(length)

	// Both processes fill their pages with the same pre-agreed content.
	for pg := 0; pg <= pages; pg++ {
		content := 0xDED0_0000 + uint64(pg)
		if err := sender.AS.WritePage(ch.senderABase+mmu.VAddr(pg)*mmu.PageSize, content); err != nil {
			return nil, err
		}
		if err := receiver.AS.WritePage(ch.receiverBase+mmu.VAddr(pg)*mmu.PageSize, content); err != nil {
			return nil, err
		}
	}
	// The KSM daemon merges and write-protects; stale writable TLB
	// entries are shot down (as write_protect_page does via the kernel).
	if merged := m.KSM.Scan(); merged < pages {
		return nil, fmt.Errorf("attack: KSM merged only %d of %d pages", merged, pages)
	}
	ch.senderA.DTLB.Flush()
	ch.senderB.DTLB.Flush()
	ch.receiver.DTLB.Flush()
	return ch, nil
}
