package attack

import (
	"fmt"

	"repro/internal/coherence"
	"repro/internal/core"
	"repro/internal/mmu"
	"repro/internal/sim"
)

// TextChannel is the covert channel built over instruction fetches of
// shared library CODE rather than data loads. Library text is mapped
// PROT_READ|PROT_EXEC / MAP_SHARED — write-protected — and instruction
// cache lines are coherent peers of the hierarchy, so executing (fetching)
// a library function drives the same E/S state machine the data channel
// exploits. SwiftDir's GETS_WP applies to instruction fetches unchanged:
// text lines are pinned in S and the fetch-timing channel closes with the
// same constant LLC latency.
type TextChannel struct {
	senderA, senderB *core.Context
	receiver         *core.Context

	senderBase, receiverBase mmu.VAddr
	Threshold                sim.Cycle
	m                        *core.Machine
}

// NewTextChannel builds the instruction-fetch channel (needs >=3 cores).
func NewTextChannel(cfg core.Config, capacityBits int) (*TextChannel, error) {
	if cfg.Cores < 3 {
		return nil, fmt.Errorf("attack: text channel needs >=3 cores, have %d", cfg.Cores)
	}
	m, err := core.NewMachine(cfg)
	if err != nil {
		return nil, err
	}
	lib := mmu.NewFile("libcrypto.so.text", 0x7E)
	pages := (capacityBits + linesPerPage - 1) / linesPerPage
	length := (pages + 1) * mmu.PageSize

	sender := m.NewProcess()
	receiver := m.NewProcess()
	tc := &TextChannel{
		senderA:   sender.AttachContext(0),
		senderB:   sender.AttachContext(1),
		receiver:  receiver.AttachContext(2),
		Threshold: (cfg.Timing.LLCLoadLatency() + cfg.Timing.RemoteLoadLatency()) / 2,
		m:         m,
	}
	tc.senderBase = sender.MmapLibrary(lib, length)
	tc.receiverBase = receiver.MmapLibrary(lib, length)
	return tc, nil
}

// fetchSync runs an instruction fetch to completion and returns its
// latency.
func fetchSync(m *core.Machine, ctx *core.Context, v mmu.VAddr) (sim.Cycle, error) {
	var lat sim.Cycle
	done := false
	if err := ctx.Fetch(v, func(r coherence.AccessResult) {
		lat = r.Latency
		done = true
	}); err != nil {
		return 0, err
	}
	m.Engine().RunWhile(func() bool { return !done })
	if !done {
		panic("attack: fetch did not complete")
	}
	return lat, nil
}

// Run transmits nBits random bits by executing (bit 1: one sender core;
// bit 0: two sender cores) distinct code lines, and decodes them from the
// receiver's fetch latencies.
func (c *TextChannel) Run(nBits int, seed uint64) (Result, error) {
	rng := sim.NewRNG(seed)
	res := Result{Protocol: c.m.Cfg.Protocol.Name() + "/ifetch", Bits: nBits}
	var sum1, sum0 float64
	var n1, n0 int
	for i := 0; i < nBits; i++ {
		sent := rng.Bool(0.5)
		sAddr := lineAddr(c.senderBase, i)
		if _, err := fetchSync(c.m, c.senderA, sAddr); err != nil {
			return res, err
		}
		if !sent {
			if _, err := fetchSync(c.m, c.senderB, sAddr); err != nil {
				return res, err
			}
		}
		// Warm the receiver's I-TLB on this page, then probe.
		if _, err := fetchSync(c.m, c.receiver, pageAddr(c.receiverBase, i)); err != nil {
			return res, err
		}
		lat, err := fetchSync(c.m, c.receiver, lineAddr(c.receiverBase, i))
		if err != nil {
			return res, err
		}
		got := lat > c.Threshold
		if got != sent {
			res.Errors++
		}
		if sent {
			sum1 += float64(lat)
			n1++
		} else {
			sum0 += float64(lat)
			n0++
		}
	}
	if n1 > 0 {
		res.MeanLatency1 = sum1 / float64(n1)
	}
	if n0 > 0 {
		res.MeanLatency0 = sum0 / float64(n0)
	}
	res.BER = float64(res.Errors) / float64(nBits)
	res.Gap = res.MeanLatency1 - res.MeanLatency0
	res.Leaked = res.BER < 0.25
	return res, nil
}
