package attack

import (
	"testing"

	"repro/internal/coherence"
	"repro/internal/core"
)

func TestChannelNeedsThreeCores(t *testing.T) {
	if _, err := NewChannel(core.DefaultConfig(2, coherence.MESI), 8); err == nil {
		t.Fatal("2-core channel accepted")
	}
	if _, err := NewSideChannel(core.DefaultConfig(1, coherence.MESI), 8); err == nil {
		t.Fatal("1-core side channel accepted")
	}
}

// The covert channel leaks on MESI: near-zero BER and a positive E/S
// latency gap equal to the three-hop/two-hop difference.
func TestCovertChannelLeaksOnMESI(t *testing.T) {
	cfg := core.DefaultConfig(4, coherence.MESI)
	ch, err := NewChannel(cfg, 256)
	if err != nil {
		t.Fatal(err)
	}
	res, err := ch.Run(256, 1)
	if err != nil {
		t.Fatal(err)
	}
	if res.BER != 0 {
		t.Fatalf("MESI BER = %v, want 0", res.BER)
	}
	if !res.Leaked {
		t.Fatal("MESI channel reported closed")
	}
	wantGap := float64(cfg.Timing.RemoteLoadLatency() - cfg.Timing.LLCLoadLatency())
	if res.Gap != wantGap {
		t.Fatalf("E/S gap = %v, want %v", res.Gap, wantGap)
	}
}

// Both defenses close the channel: BER collapses to the guessing rate and
// the latency gap vanishes; under SwiftDir every probe is exactly the
// constant LLC latency.
func TestCovertChannelClosedByDefenses(t *testing.T) {
	for _, p := range []coherence.Policy{coherence.SwiftDir, coherence.SMESI} {
		cfg := core.DefaultConfig(4, p)
		ch, err := NewChannel(cfg, 256)
		if err != nil {
			t.Fatal(err)
		}
		res, err := ch.Run(256, 1)
		if err != nil {
			t.Fatal(err)
		}
		if res.Leaked {
			t.Fatalf("%s: channel still open (BER=%v)", p.Name(), res.BER)
		}
		if res.BER < 0.3 || res.BER > 0.7 {
			t.Fatalf("%s: BER = %v, want ~0.5 (guessing)", p.Name(), res.BER)
		}
		if res.Gap != 0 {
			t.Fatalf("%s: residual latency gap %v cycles", p.Name(), res.Gap)
		}
		// Every probe latency is the same constant.
		all := append(append([]float64{}, res.MeanLatency0), res.MeanLatency1)
		for _, v := range all {
			if v != float64(cfg.Timing.LLCLoadLatency()) {
				t.Fatalf("%s: probe latency %v, want constant %d", p.Name(), v, cfg.Timing.LLCLoadLatency())
			}
		}
	}
}

// Latency distributions: on MESI the two populations are disjoint; on
// SwiftDir they are identical point masses.
func TestCovertChannelLatencyPopulations(t *testing.T) {
	mesiCh, _ := NewChannel(core.DefaultConfig(4, coherence.MESI), 64)
	mesiRes, err := mesiCh.Run(64, 7)
	if err != nil {
		t.Fatal(err)
	}
	for _, l1 := range mesiRes.Latencies1 {
		for _, l0 := range mesiRes.Latencies0 {
			if l1 <= l0 {
				t.Fatalf("MESI populations overlap: 1-lat %d <= 0-lat %d", l1, l0)
			}
		}
	}
	sdCh, _ := NewChannel(core.DefaultConfig(4, coherence.SwiftDir), 64)
	sdRes, err := sdCh.Run(64, 7)
	if err != nil {
		t.Fatal(err)
	}
	seen := map[int64]bool{}
	for _, l := range append(sdRes.Latencies0, sdRes.Latencies1...) {
		seen[int64(l)] = true
	}
	if len(seen) != 1 {
		t.Fatalf("SwiftDir latencies not constant: %v distinct values", len(seen))
	}
}

// The side channel: near-perfect inference on MESI, chance on defenses.
func TestSideChannel(t *testing.T) {
	mesi, err := NewSideChannel(core.DefaultConfig(4, coherence.MESI), 200)
	if err != nil {
		t.Fatal(err)
	}
	r, err := mesi.Run(200, 3)
	if err != nil {
		t.Fatal(err)
	}
	if r.Accuracy != 1.0 {
		t.Fatalf("MESI side-channel accuracy %v, want 1.0", r.Accuracy)
	}
	if !r.Works {
		t.Fatal("MESI side channel reported defended")
	}

	for _, p := range []coherence.Policy{coherence.SwiftDir, coherence.SMESI} {
		sc, err := NewSideChannel(core.DefaultConfig(4, p), 200)
		if err != nil {
			t.Fatal(err)
		}
		r, err := sc.Run(200, 3)
		if err != nil {
			t.Fatal(err)
		}
		if r.Works {
			t.Fatalf("%s: side channel still works (accuracy=%v)", p.Name(), r.Accuracy)
		}
		if r.Accuracy < 0.3 || r.Accuracy > 0.7 {
			t.Fatalf("%s: accuracy %v, want ~0.5", p.Name(), r.Accuracy)
		}
	}
}

// Determinism of the attack harness.
func TestAttackDeterminism(t *testing.T) {
	run := func() Result {
		ch, _ := NewChannel(core.DefaultConfig(4, coherence.MESI), 64)
		r, err := ch.Run(64, 42)
		if err != nil {
			t.Fatal(err)
		}
		return r
	}
	a, b := run(), run()
	if a.BER != b.BER || a.Gap != b.Gap || a.MeanLatency0 != b.MeanLatency0 {
		t.Fatal("attack runs nondeterministic")
	}
}

func TestDescribeStrings(t *testing.T) {
	r := Result{Protocol: "MESI", Bits: 8, Errors: 0, BER: 0, Gap: 26, Leaked: true}
	if s := r.Describe(); len(s) == 0 || !contains(s, "CHANNEL OPEN") {
		t.Fatalf("describe = %q", s)
	}
	sr := SideResult{Protocol: "SwiftDir", Trials: 10, Correct: 5, Accuracy: 0.5}
	if s := sr.Describe(); !contains(s, "DEFENDED") {
		t.Fatalf("describe = %q", s)
	}
}

func contains(s, sub string) bool {
	for i := 0; i+len(sub) <= len(s); i++ {
		if s[i:i+len(sub)] == sub {
			return true
		}
	}
	return false
}

// The dedup-sourced channel behaves identically: KSM-merged pages leak on
// MESI and are pinned to the constant LLC latency under SwiftDir.
func TestDedupChannel(t *testing.T) {
	mesiCh, err := NewDedupChannel(core.DefaultConfig(4, coherence.MESI), 128)
	if err != nil {
		t.Fatal(err)
	}
	r, err := mesiCh.Run(128, 5)
	if err != nil {
		t.Fatal(err)
	}
	if r.BER != 0 || !r.Leaked {
		t.Fatalf("MESI dedup channel BER=%v leaked=%v", r.BER, r.Leaked)
	}

	sdCh, err := NewDedupChannel(core.DefaultConfig(4, coherence.SwiftDir), 128)
	if err != nil {
		t.Fatal(err)
	}
	r, err = sdCh.Run(128, 5)
	if err != nil {
		t.Fatal(err)
	}
	if r.Leaked {
		t.Fatalf("SwiftDir dedup channel still leaks (BER=%v)", r.BER)
	}
	if r.Gap != 0 {
		t.Fatalf("SwiftDir dedup channel gap %v", r.Gap)
	}
}

// The instruction-fetch channel over shared library code: MESI leaks
// (I-cache lines are coherent peers), SwiftDir pins text in S and closes
// it with the same constant latency.
func TestTextChannel(t *testing.T) {
	mesi, err := NewTextChannel(core.DefaultConfig(4, coherence.MESI), 128)
	if err != nil {
		t.Fatal(err)
	}
	r, err := mesi.Run(128, 9)
	if err != nil {
		t.Fatal(err)
	}
	if r.BER != 0 || !r.Leaked {
		t.Fatalf("MESI ifetch channel BER=%v leaked=%v", r.BER, r.Leaked)
	}
	if r.Gap <= 0 {
		t.Fatalf("MESI ifetch gap %v", r.Gap)
	}

	sd, err := NewTextChannel(core.DefaultConfig(4, coherence.SwiftDir), 128)
	if err != nil {
		t.Fatal(err)
	}
	r, err = sd.Run(128, 9)
	if err != nil {
		t.Fatal(err)
	}
	if r.Leaked {
		t.Fatalf("SwiftDir ifetch channel leaks (BER=%v)", r.BER)
	}
	if r.Gap != 0 {
		t.Fatalf("SwiftDir ifetch gap %v", r.Gap)
	}
	if r.Protocol != "SwiftDir/ifetch" {
		t.Fatalf("label %q", r.Protocol)
	}
}

func TestTextChannelNeedsThreeCores(t *testing.T) {
	if _, err := NewTextChannel(core.DefaultConfig(2, coherence.MESI), 8); err == nil {
		t.Fatal("2-core text channel accepted")
	}
}

// The channel's leak rate on a 3 GHz clock lands in the paper's reported
// band (700~1,100 Kbps on 2.67 GHz cores): our per-bit cost is a few
// thousand cycles (page warming included), giving the same order of
// magnitude.
func TestCovertChannelBandwidth(t *testing.T) {
	ch, err := NewChannel(core.DefaultConfig(4, coherence.MESI), 512)
	if err != nil {
		t.Fatal(err)
	}
	r, err := ch.Run(512, 2)
	if err != nil {
		t.Fatal(err)
	}
	kbps := r.KbpsAt(3.0)
	if kbps < 100 || kbps > 20000 {
		t.Fatalf("leak rate %.0f Kbps out of plausible range (cycles/bit %.0f)", kbps, r.CyclesPerBit)
	}
	t.Logf("MESI leak rate: %.0f Kbps at 3 GHz (%.0f cycles/bit)", kbps, r.CyclesPerBit)
}
