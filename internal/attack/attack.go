// Package attack implements the E/S coherence timing-channel attacks the
// paper defends against (Yao et al., HPCA'18, as summarized in §II-B):
//
//   - a covert channel in which a sender process modulates secret bits
//     into the coherence state of shared (write-protected) cache lines —
//     Exclusive for 1, Shared for 0 — and a receiver decodes them by
//     timing its own loads: a three-hop E-state service is measurably
//     slower than a two-hop S-state LLC service;
//
//   - a side channel in which an attacker infers whether a victim
//     accessed a shared line within an interval, by priming the line into
//     E and probing whether it degraded to S.
//
// Both channels are built strictly from read operations on shared memory
// established through a shared library mapping, exactly as the threat
// model prescribes. Against SwiftDir (and S-MESI) the measured latency is
// the constant LLC round trip regardless of prior accesses, so decoding
// degenerates to guessing.
package attack

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/mmu"
	"repro/internal/sim"
)

// linesPerPage is how many cache lines of each 4 KB page carry payload
// bits; line 0 of every page is reserved for warming the receiver's TLB
// so that translation costs never pollute the timing measurement.
const (
	lineSize     = 64
	linesPerPage = mmu.PageSize/lineSize - 1
)

// Channel is a configured covert channel across two colluding processes.
type Channel struct {
	m *Machine

	// Sender threads on two cores (thread B creates the S state).
	senderA, senderB *core.Context
	// Receiver thread on a third core.
	receiver *core.Context

	senderABase, senderBBase, receiverBase mmu.VAddr

	// Threshold separating "fast" (LLC, S) from "slow" (remote, E)
	// loads, placed midway between the two calibrated service times.
	Threshold sim.Cycle

	// thresholds, when set, overrides Threshold per payload line (see
	// SetThresholds). On a mesh the LLC-served latency of a line depends
	// on the receiver-to-home-bank distance, so one global cut-off
	// misclassifies distant lines; a calibrating attacker measures each
	// line's baseline first.
	thresholds []sim.Cycle
}

// SetThresholds installs per-line decision thresholds — typically from
// CalibrateThresholds on an identically configured machine — overriding
// the global Threshold for lines i < len(t).
func (c *Channel) SetThresholds(t []sim.Cycle) { c.thresholds = t }

// Machine wraps a core.Machine prepared for the attack: a shared library
// mapped into a sender process (two threads on cores 0 and 1) and a
// receiver process (core 2).
type Machine struct {
	M   *core.Machine
	Lib *mmu.File
}

// NewChannel builds the covert channel on a fresh machine with the given
// protocol. The machine needs at least 3 cores (one per colluding thread
// role); capacity is the number of bits transmittable before lines run
// out.
func NewChannel(cfg core.Config, capacityBits int) (*Channel, error) {
	if cfg.Cores < 3 {
		return nil, fmt.Errorf("attack: covert channel needs >=3 cores, have %d", cfg.Cores)
	}
	m, err := core.NewMachine(cfg)
	if err != nil {
		return nil, err
	}
	lib := mmu.NewFile("libshared.so", 0x11B)

	pages := (capacityBits + linesPerPage - 1) / linesPerPage
	length := (pages + 1) * mmu.PageSize

	sender := m.NewProcess()
	receiver := m.NewProcess()
	ch := &Channel{
		m:         &Machine{M: m, Lib: lib},
		senderA:   sender.AttachContext(0),
		senderB:   sender.AttachContext(1),
		receiver:  receiver.AttachContext(2),
		Threshold: (cfg.Timing.LLCLoadLatency() + cfg.Timing.RemoteLoadLatency()) / 2,
	}
	ch.senderABase = sender.MmapLibrary(lib, length)
	ch.senderBBase = ch.senderABase // same address space, same mapping
	ch.receiverBase = receiver.MmapLibrary(lib, length)
	return ch, nil
}

// lineAddr returns the virtual address of payload line i within base's
// mapping, skipping line 0 of each page (the TLB-warming line).
func lineAddr(base mmu.VAddr, i int) mmu.VAddr {
	page := i / linesPerPage
	line := i%linesPerPage + 1
	return base + mmu.VAddr(page*mmu.PageSize+line*lineSize)
}

// pageAddr returns the warming line of payload index i's page.
func pageAddr(base mmu.VAddr, i int) mmu.VAddr {
	return base + mmu.VAddr((i/linesPerPage)*mmu.PageSize)
}

// Transmit encodes one bit into line i's coherence state:
//
//	bit 1: a single cold access from sender thread A (state E under MESI)
//	bit 0: accesses from both sender threads (state S)
func (c *Channel) Transmit(i int, bit bool) error {
	if _, err := c.senderA.AccessSync(lineAddr(c.senderABase, i), false, 0); err != nil {
		return err
	}
	if !bit {
		if _, err := c.senderB.AccessSync(lineAddr(c.senderBBase, i), false, 0); err != nil {
			return err
		}
	}
	return nil
}

// Probe times the receiver's load of line i and decodes the bit. The
// receiver first touches the page's warming line so the payload
// measurement is a pure cache-coherence latency.
func (c *Channel) Probe(i int) (bit bool, latency sim.Cycle, err error) {
	if _, err := c.receiver.AccessSync(pageAddr(c.receiverBase, i), false, 0); err != nil {
		return false, 0, err
	}
	r, err := c.receiver.AccessSync(lineAddr(c.receiverBase, i), false, 0)
	if err != nil {
		return false, 0, err
	}
	th := c.Threshold
	if i < len(c.thresholds) {
		th = c.thresholds[i]
	}
	return r.Latency > th, r.Latency, nil
}

// CalibrateThresholds plays the calibrating attacker's warm-up: on a
// throwaway machine with the same configuration it transmits an all-zero
// pattern and times every probe, yielding each line's S-state (LLC-
// served) baseline. The returned per-line thresholds sit half the E/S
// service gap above that baseline, so a subsequent run on a fresh,
// identically configured machine decodes each line against its own
// distance-dependent floor. The simulator is deterministic, which makes
// the throwaway machine a perfect stand-in — on real hardware the same
// pass costs the attacker one extra scan of the mapped library.
func CalibrateThresholds(cfg core.Config, nBits int) ([]sim.Cycle, error) {
	ch, err := NewChannel(cfg, nBits)
	if err != nil {
		return nil, err
	}
	half := (cfg.Timing.RemoteLoadLatency() - cfg.Timing.LLCLoadLatency()) / 2
	th := make([]sim.Cycle, nBits)
	for i := range th {
		if err := ch.Transmit(i, false); err != nil {
			return nil, err
		}
		_, lat, err := ch.Probe(i)
		if err != nil {
			return nil, err
		}
		th[i] = lat + half
	}
	return th, nil
}

// Result summarizes a covert-channel run.
type Result struct {
	Protocol     string
	Bits         int
	Errors       int
	BER          float64 // bit error rate
	MeanLatency1 float64 // receiver latency when '1' was sent
	MeanLatency0 float64 // receiver latency when '0' was sent
	Gap          float64 // MeanLatency1 - MeanLatency0 (the E/S channel)
	Leaked       bool    // channel usable (BER well below guessing)
	Latencies1   []sim.Cycle
	Latencies0   []sim.Cycle

	// Throughput: simulated cycles consumed end to end (sender encode +
	// receiver decode) and the implied leak rate on the paper's 3 GHz
	// clock (compare with the 700~1,100 Kbps reported for real Xeons).
	TotalCycles  sim.Cycle
	CyclesPerBit float64
}

// KbpsAt reports the channel's leak rate in kilobits per second for a
// clock of ghz gigahertz, counting only correctly transferred bits.
func (r Result) KbpsAt(ghz float64) float64 {
	if r.TotalCycles == 0 {
		return 0
	}
	goodBits := float64(r.Bits - r.Errors)
	seconds := float64(r.TotalCycles) / (ghz * 1e9)
	return goodBits / seconds / 1e3
}

// Run transmits bits (generated from seed) and decodes them, returning
// the bit error rate and the observed E/S latency gap.
func (c *Channel) Run(nBits int, seed uint64) (Result, error) {
	rng := sim.NewRNG(seed)
	res := Result{Protocol: c.m.M.Cfg.Protocol.Name(), Bits: nBits}
	var sum1, sum0 float64
	var n1, n0 int
	start := c.m.M.Now()
	for i := 0; i < nBits; i++ {
		sent := rng.Bool(0.5)
		if err := c.Transmit(i, sent); err != nil {
			return res, err
		}
		got, lat, err := c.Probe(i)
		if err != nil {
			return res, err
		}
		if got != sent {
			res.Errors++
		}
		if sent {
			sum1 += float64(lat)
			n1++
			res.Latencies1 = append(res.Latencies1, lat)
		} else {
			sum0 += float64(lat)
			n0++
			res.Latencies0 = append(res.Latencies0, lat)
		}
	}
	if n1 > 0 {
		res.MeanLatency1 = sum1 / float64(n1)
	}
	if n0 > 0 {
		res.MeanLatency0 = sum0 / float64(n0)
	}
	res.BER = float64(res.Errors) / float64(nBits)
	res.Gap = res.MeanLatency1 - res.MeanLatency0
	res.Leaked = res.BER < 0.25
	res.TotalCycles = c.m.M.Now() - start
	res.CyclesPerBit = float64(res.TotalCycles) / float64(nBits)
	return res, nil
}

// Describe renders the result for reports.
func (r Result) Describe() string {
	status := "CHANNEL CLOSED (decoding is guessing)"
	if r.Leaked {
		status = "CHANNEL OPEN (secret leaks)"
	}
	return fmt.Sprintf(
		"%-9s bits=%d errors=%d BER=%.3f  latency(sent 1)=%.1f cyc  latency(sent 0)=%.1f cyc  gap=%.1f cyc  => %s",
		r.Protocol, r.Bits, r.Errors, r.BER, r.MeanLatency1, r.MeanLatency0, r.Gap, status)
}
