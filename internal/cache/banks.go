package cache

// BankMapper distributes block addresses across LLC banks. The paper's
// setup (Table V) uses one 2-MB L2 bank per core; blocks interleave across
// banks by low-order block-address bits, matching common commercial
// designs.
type BankMapper struct {
	banks     int
	blockBits uint
}

// NewBankMapper builds a mapper for a power-of-two bank count.
func NewBankMapper(banks, blockSize int) *BankMapper {
	if banks <= 0 || banks&(banks-1) != 0 {
		panic("cache: bank count must be a positive power of two")
	}
	if blockSize <= 0 || blockSize&(blockSize-1) != 0 {
		panic("cache: block size must be a positive power of two")
	}
	bits := uint(0)
	for b := blockSize; b > 1; b >>= 1 {
		bits++
	}
	return &BankMapper{banks: banks, blockBits: bits}
}

// Banks returns the number of banks.
func (m *BankMapper) Banks() int { return m.banks }

// Bank returns the bank index the block containing addr maps to.
func (m *BankMapper) Bank(addr Addr) int {
	return int((addr >> m.blockBits) & Addr(m.banks-1))
}
