// Package cache implements the storage substrate of the memory hierarchy:
// set-associative tag/data arrays with pluggable replacement, address
// decomposition helpers, and LLC bank mapping. Coherence state is stored
// per line but interpreted by package coherence; this package only manages
// placement, lookup, and victim selection.
package cache

import (
	"fmt"
	"math/bits"
)

// Addr is a physical (or, for VIVT lookups, virtual) byte address.
type Addr uint64

// LineState is the coherence state stored alongside each cache line. The
// values mirror the MESI stable states; transient states live in the
// controllers' MSHRs, not in the array.
type LineState uint8

const (
	Invalid LineState = iota
	Shared
	Exclusive
	Modified
	// Owned is MOESI's dirty-shared state: this cache holds the only
	// up-to-date copy (memory and LLC are stale) while other caches may
	// hold Shared copies of the same value; the owner supplies data on
	// forwarded requests and writes back on eviction.
	Owned
	// Forward is MESIF's designated-responder state: a clean shared copy
	// that answers forwarded read requests cache-to-cache; at most one
	// sharer holds F.
	Forward
)

func (s LineState) String() string {
	switch s {
	case Invalid:
		return "I"
	case Shared:
		return "S"
	case Exclusive:
		return "E"
	case Modified:
		return "M"
	case Owned:
		return "O"
	case Forward:
		return "F"
	}
	return fmt.Sprintf("LineState(%d)", uint8(s))
}

// Dirty reports whether the state implies the line differs from the LLC.
func (s LineState) Dirty() bool { return s == Modified || s == Owned }

// Valid reports whether the state denotes a resident line.
func (s LineState) Valid() bool { return s != Invalid }

// Line is one cache line: a tag, a coherence state, and bookkeeping for
// replacement. Data is modeled as a 64-bit shadow token (see package
// coherence) rather than a byte payload: the simulator verifies coherence
// of values without simulating byte-level storage.
type Line struct {
	Tag   Addr
	State LineState
	Data  uint64 // shadow value token for data-value invariant checking
	WP    bool   // write-protected hint (diagnostics only)
	lru   uint64 // last-touch stamp for LRU
}

// ReplPolicy selects the victim-selection policy of an array.
type ReplPolicy uint8

const (
	// LRU evicts the least recently used way (the paper's Table V
	// configuration, and the policy behind S-MESI's retention side
	// effect in §V-B).
	LRU ReplPolicy = iota
	// FIFO evicts the oldest-installed way regardless of reuse.
	FIFO
	// Random evicts a pseudo-random way (deterministically seeded).
	Random
)

func (r ReplPolicy) String() string {
	switch r {
	case LRU:
		return "LRU"
	case FIFO:
		return "FIFO"
	case Random:
		return "Random"
	}
	return fmt.Sprintf("ReplPolicy(%d)", uint8(r))
}

// Params describes a cache geometry.
type Params struct {
	Name        string
	SizeBytes   int
	Ways        int
	BlockSize   int
	Replacement ReplPolicy // zero value = LRU
}

// Validate checks the geometry for internal consistency.
func (p Params) Validate() error {
	if p.SizeBytes <= 0 || p.Ways <= 0 || p.BlockSize <= 0 {
		return fmt.Errorf("cache %q: non-positive geometry %+v", p.Name, p)
	}
	if p.BlockSize&(p.BlockSize-1) != 0 {
		return fmt.Errorf("cache %q: block size %d not a power of two", p.Name, p.BlockSize)
	}
	if p.SizeBytes%(p.Ways*p.BlockSize) != 0 {
		return fmt.Errorf("cache %q: size %d not divisible by ways*block (%d*%d)",
			p.Name, p.SizeBytes, p.Ways, p.BlockSize)
	}
	sets := p.SizeBytes / (p.Ways * p.BlockSize)
	if sets&(sets-1) != 0 {
		return fmt.Errorf("cache %q: set count %d not a power of two", p.Name, sets)
	}
	return nil
}

// Array is a set-associative cache array.
type Array struct {
	params    Params
	sets      int
	blockBits uint
	setMask   Addr
	lines     [][]Line // [set][way]
	clock     uint64   // LRU/FIFO stamp source
	rng       uint64   // xorshift state for Random replacement

	// Stats
	Hits, Misses, Evictions uint64
}

// NewArray builds an array from params, panicking on invalid geometry
// (geometry comes from static configuration, not runtime input).
func NewArray(p Params) *Array {
	if err := p.Validate(); err != nil {
		panic(err)
	}
	sets := p.SizeBytes / (p.Ways * p.BlockSize)
	a := &Array{
		params:    p,
		sets:      sets,
		blockBits: uint(bits.TrailingZeros(uint(p.BlockSize))),
		setMask:   Addr(sets - 1),
		lines:     make([][]Line, sets),
	}
	backing := make([]Line, sets*p.Ways)
	for i := range a.lines {
		a.lines[i] = backing[i*p.Ways : (i+1)*p.Ways : (i+1)*p.Ways]
	}
	return a
}

// Params returns the geometry the array was built with.
func (a *Array) Params() Params { return a.params }

// Sets returns the number of sets.
func (a *Array) Sets() int { return a.sets }

// BlockAddr masks off the intra-block offset bits.
func (a *Array) BlockAddr(addr Addr) Addr {
	return addr &^ (Addr(a.params.BlockSize) - 1)
}

// SetIndex returns the set an address maps to.
func (a *Array) SetIndex(addr Addr) int {
	return int((addr >> a.blockBits) & a.setMask)
}

func (a *Array) tag(addr Addr) Addr {
	return addr >> (a.blockBits + uint(bits.TrailingZeros(uint(a.sets))))
}

// Lookup finds the line holding addr, returning nil on miss. It does not
// update replacement state or statistics; use Probe/Touch for that.
func (a *Array) Lookup(addr Addr) *Line {
	set := a.lines[a.SetIndex(addr)]
	tag := a.tag(addr)
	for i := range set {
		if set[i].State.Valid() && set[i].Tag == tag {
			return &set[i]
		}
	}
	return nil
}

// Probe is Lookup plus statistics and an LRU touch on hit.
func (a *Array) Probe(addr Addr) *Line {
	ln := a.Lookup(addr)
	if ln == nil {
		a.Misses++
		return nil
	}
	a.Hits++
	a.touch(ln)
	return ln
}

// Touch refreshes the replacement stamp of a resident line.
func (a *Array) Touch(addr Addr) {
	if ln := a.Lookup(addr); ln != nil {
		a.touch(ln)
	}
}

func (a *Array) touch(ln *Line) {
	if a.params.Replacement == FIFO {
		// FIFO stamps only at install (see Install); reuse is ignored.
		return
	}
	a.clock++
	ln.lru = a.clock
}

// nextRand advances the array's deterministic xorshift stream.
func (a *Array) nextRand() uint64 {
	x := a.rng
	if x == 0 {
		x = 0x9E3779B97F4A7C15
		for _, c := range a.params.Name {
			x ^= uint64(c)
			x *= 0x100000001B3
		}
	}
	x ^= x >> 12
	x ^= x << 25
	x ^= x >> 27
	a.rng = x
	return x * 0x2545F4914F6CDD1D
}

// Victim selects the line to evict from addr's set: an invalid way if one
// exists, otherwise the least recently used line. The returned line is
// still resident; the caller is responsible for writeback/invalidations
// before calling Install.
func (a *Array) Victim(addr Addr) *Line {
	set := a.lines[a.SetIndex(addr)]
	for i := range set {
		if !set[i].State.Valid() {
			return &set[i]
		}
	}
	if a.params.Replacement == Random {
		return &set[a.nextRand()%uint64(len(set))]
	}
	var victim *Line
	for i := range set {
		if victim == nil || set[i].lru < victim.lru {
			victim = &set[i]
		}
	}
	return victim
}

// VictimFiltered is Victim restricted to lines whose block address is not
// rejected by blocked. It returns nil if every way of the set is blocked
// (callers treat that as a structural stall). Invalid ways are never
// blocked.
func (a *Array) VictimFiltered(addr Addr, blocked func(Addr) bool) *Line {
	set := a.lines[a.SetIndex(addr)]
	// Single pass, no candidate slice: count the eligible ways and track
	// the LRU minimum (first-encountered wins ties, as before).
	n := 0
	var victim *Line
	for i := range set {
		if !set[i].State.Valid() {
			return &set[i]
		}
		if blocked != nil && blocked(a.AddrOfLine(&set[i], addr)) {
			continue
		}
		n++
		if victim == nil || set[i].lru < victim.lru {
			victim = &set[i]
		}
	}
	if n == 0 {
		return nil
	}
	if a.params.Replacement == Random {
		// One RNG draw over the candidate count, then re-walk to the k-th
		// eligible way; blocked is pure, so both passes agree.
		k := a.nextRand() % uint64(n)
		for i := range set {
			if blocked != nil && blocked(a.AddrOfLine(&set[i], addr)) {
				continue
			}
			if k == 0 {
				return &set[i]
			}
			k--
		}
	}
	return victim
}

// Install places addr into the given line (obtained from Victim) with the
// given state, counting an eviction if the line was valid.
func (a *Array) Install(ln *Line, addr Addr, state LineState) {
	if ln.State.Valid() {
		a.Evictions++
	}
	ln.Tag = a.tag(addr)
	ln.State = state
	ln.Data = 0
	ln.WP = false
	// Install always stamps, so FIFO records insertion order.
	a.clock++
	ln.lru = a.clock
}

// Invalidate removes addr from the array if resident, reporting whether a
// line was dropped.
func (a *Array) Invalidate(addr Addr) bool {
	if ln := a.Lookup(addr); ln != nil {
		*ln = Line{}
		return true
	}
	return false
}

// AddrOfLine reconstructs the block address of a resident line given any
// address mapping to the same set. It is used when evicting: the victim's
// full address is needed to notify the directory.
func (a *Array) AddrOfLine(ln *Line, setProbe Addr) Addr {
	set := Addr(a.SetIndex(setProbe))
	setBits := uint(bits.TrailingZeros(uint(a.sets)))
	return ln.Tag<<(a.blockBits+setBits) | set<<a.blockBits
}

// ForEachValid invokes fn for every resident line with its block address.
func (a *Array) ForEachValid(fn func(addr Addr, ln *Line)) {
	setBits := uint(bits.TrailingZeros(uint(a.sets)))
	for s := range a.lines {
		for w := range a.lines[s] {
			ln := &a.lines[s][w]
			if ln.State.Valid() {
				addr := ln.Tag<<(a.blockBits+setBits) | Addr(s)<<a.blockBits
				fn(addr, ln)
			}
		}
	}
}

// CountValid returns the number of resident lines.
func (a *Array) CountValid() int {
	n := 0
	a.ForEachValid(func(Addr, *Line) { n++ })
	return n
}

// AppendFingerprint emits a canonical encoding of the array's
// behaviorally relevant state as a stream of words: for every set, the
// resident lines in replacement order (least attractive victim last)
// with their tag, state, data token, and write-protection bit. Absolute
// LRU clock values are deliberately excluded — only the per-set ordering
// affects future victim choices — so two arrays that will behave
// identically fingerprint identically regardless of how much history
// produced them. For Random replacement the xorshift state is included,
// since it determines future victim draws.
func (a *Array) AppendFingerprint(emit func(uint64)) {
	if a.params.Replacement == Random {
		emit(a.rng)
	}
	// rank buffer reused across sets.
	rank := make([]*Line, a.params.Ways)
	for s := range a.lines {
		set := a.lines[s]
		n := 0
		for w := range set {
			if !set[w].State.Valid() {
				continue
			}
			ln := &set[w]
			// Insertion sort by lru ascending (victim order).
			i := n
			for i > 0 && rank[i-1].lru > ln.lru {
				rank[i] = rank[i-1]
				i--
			}
			rank[i] = ln
			n++
		}
		if n == 0 {
			continue
		}
		emit(uint64(s)<<8 | uint64(n))
		for i := 0; i < n; i++ {
			ln := rank[i]
			w := uint64(ln.State)
			if ln.WP {
				w |= 1 << 8
			}
			emit(uint64(ln.Tag))
			emit(w)
			emit(ln.Data)
		}
	}
}
