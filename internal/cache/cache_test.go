package cache

import (
	"testing"
	"testing/quick"
)

func smallParams() Params {
	return Params{Name: "L1D", SizeBytes: 1024, Ways: 4, BlockSize: 64}
}

func TestParamsValidate(t *testing.T) {
	cases := []struct {
		name string
		p    Params
		ok   bool
	}{
		{"good", smallParams(), true},
		{"zero size", Params{SizeBytes: 0, Ways: 4, BlockSize: 64}, false},
		{"non-pow2 block", Params{SizeBytes: 1024, Ways: 4, BlockSize: 48}, false},
		{"indivisible", Params{SizeBytes: 1000, Ways: 4, BlockSize: 64}, false},
		{"non-pow2 sets", Params{SizeBytes: 64 * 4 * 3, Ways: 4, BlockSize: 64}, false},
		{"table5 L1", Params{Name: "L1", SizeBytes: 32 << 10, Ways: 4, BlockSize: 64}, true},
		{"table5 L2 bank", Params{Name: "L2", SizeBytes: 2 << 20, Ways: 16, BlockSize: 64}, true},
	}
	for _, c := range cases {
		err := c.p.Validate()
		if (err == nil) != c.ok {
			t.Errorf("%s: Validate() = %v, want ok=%v", c.name, err, c.ok)
		}
	}
}

func TestLineStateString(t *testing.T) {
	for s, want := range map[LineState]string{Invalid: "I", Shared: "S", Exclusive: "E", Modified: "M"} {
		if s.String() != want {
			t.Errorf("%d.String() = %q, want %q", s, s.String(), want)
		}
	}
}

func TestArrayGeometry(t *testing.T) {
	a := NewArray(smallParams())
	if a.Sets() != 4 {
		t.Fatalf("sets = %d, want 4", a.Sets())
	}
	if a.BlockAddr(0x12345) != 0x12340 {
		t.Fatalf("BlockAddr(0x12345) = %#x", a.BlockAddr(0x12345))
	}
	// Consecutive blocks map to consecutive sets, wrapping at 4.
	for i := 0; i < 8; i++ {
		want := i % 4
		if got := a.SetIndex(Addr(i * 64)); got != want {
			t.Fatalf("SetIndex(block %d) = %d, want %d", i, got, want)
		}
	}
}

func TestInstallAndLookup(t *testing.T) {
	a := NewArray(smallParams())
	addr := Addr(0x4000)
	if a.Lookup(addr) != nil {
		t.Fatal("lookup in empty cache returned a line")
	}
	v := a.Victim(addr)
	a.Install(v, addr, Exclusive)
	ln := a.Lookup(addr)
	if ln == nil || ln.State != Exclusive {
		t.Fatalf("after install: line = %+v", ln)
	}
	// A different address in the same set should not alias.
	other := addr + Addr(a.Sets()*64)
	if a.Lookup(other) != nil {
		t.Fatal("tag aliasing: distinct address hit")
	}
}

func TestProbeStats(t *testing.T) {
	a := NewArray(smallParams())
	addr := Addr(0x100)
	if a.Probe(addr) != nil {
		t.Fatal("probe hit in empty cache")
	}
	a.Install(a.Victim(addr), addr, Shared)
	if a.Probe(addr) == nil {
		t.Fatal("probe miss after install")
	}
	if a.Hits != 1 || a.Misses != 1 {
		t.Fatalf("stats hits=%d misses=%d, want 1/1", a.Hits, a.Misses)
	}
}

func TestLRUVictimSelection(t *testing.T) {
	a := NewArray(smallParams()) // 4 ways
	setStride := Addr(a.Sets() * 64)
	addrs := make([]Addr, 5)
	for i := range addrs {
		addrs[i] = Addr(i) * setStride // all map to set 0
	}
	for _, ad := range addrs[:4] {
		a.Install(a.Victim(ad), ad, Shared)
	}
	// Touch addrs[0] so addrs[1] becomes LRU.
	a.Touch(addrs[0])
	v := a.Victim(addrs[4])
	got := a.AddrOfLine(v, addrs[4])
	if got != addrs[1] {
		t.Fatalf("victim = %#x, want %#x (LRU)", got, addrs[1])
	}
	a.Install(v, addrs[4], Shared)
	if a.Evictions != 1 {
		t.Fatalf("evictions = %d, want 1", a.Evictions)
	}
	if a.Lookup(addrs[1]) != nil {
		t.Fatal("evicted line still resident")
	}
}

func TestVictimPrefersInvalidWay(t *testing.T) {
	a := NewArray(smallParams())
	base := Addr(0)
	stride := Addr(a.Sets() * 64)
	a.Install(a.Victim(base), base, Modified)
	v := a.Victim(base + stride)
	if v.State.Valid() {
		t.Fatal("victim chose a valid way while invalid ways exist")
	}
}

func TestInvalidate(t *testing.T) {
	a := NewArray(smallParams())
	addr := Addr(0x2000)
	a.Install(a.Victim(addr), addr, Modified)
	if !a.Invalidate(addr) {
		t.Fatal("invalidate of resident line returned false")
	}
	if a.Invalidate(addr) {
		t.Fatal("invalidate of absent line returned true")
	}
	if a.Lookup(addr) != nil {
		t.Fatal("line resident after invalidate")
	}
}

func TestAddrOfLineRoundTrip(t *testing.T) {
	a := NewArray(Params{Name: "L2", SizeBytes: 64 << 10, Ways: 8, BlockSize: 64})
	addrs := []Addr{0, 64, 0x1040, 0xFFC0, 0xABCD40}
	for _, ad := range addrs {
		ad = a.BlockAddr(ad)
		v := a.Victim(ad)
		a.Install(v, ad, Shared)
		if got := a.AddrOfLine(v, ad); got != ad {
			t.Fatalf("AddrOfLine round trip: got %#x want %#x", got, ad)
		}
	}
}

func TestForEachValidAndCount(t *testing.T) {
	a := NewArray(smallParams())
	want := map[Addr]bool{0x0: true, 0x40: true, 0x80: true}
	for ad := range want {
		a.Install(a.Victim(ad), ad, Shared)
	}
	seen := map[Addr]bool{}
	a.ForEachValid(func(ad Addr, ln *Line) { seen[ad] = true })
	if len(seen) != len(want) {
		t.Fatalf("seen %v, want %v", seen, want)
	}
	for ad := range want {
		if !seen[ad] {
			t.Fatalf("missing %#x", ad)
		}
	}
	if a.CountValid() != 3 {
		t.Fatalf("CountValid = %d, want 3", a.CountValid())
	}
}

// Property: installing any set of distinct block addresses that fit within
// associativity keeps them all resident and recoverable.
func TestArrayResidencyProperty(t *testing.T) {
	f := func(raw []uint32) bool {
		a := NewArray(smallParams())
		installed := map[Addr]bool{}
		perSet := map[int]int{}
		for _, r := range raw {
			ad := a.BlockAddr(Addr(r))
			if installed[ad] {
				continue
			}
			s := a.SetIndex(ad)
			if perSet[s] >= a.Params().Ways {
				continue // would force an eviction
			}
			perSet[s]++
			installed[ad] = true
			a.Install(a.Victim(ad), ad, Shared)
		}
		for ad := range installed {
			if a.Lookup(ad) == nil {
				return false
			}
		}
		return a.CountValid() == len(installed)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestBankMapper(t *testing.T) {
	m := NewBankMapper(4, 64)
	if m.Banks() != 4 {
		t.Fatalf("banks = %d", m.Banks())
	}
	// Consecutive blocks round-robin across banks.
	for i := 0; i < 16; i++ {
		if got := m.Bank(Addr(i * 64)); got != i%4 {
			t.Fatalf("Bank(block %d) = %d, want %d", i, got, i%4)
		}
	}
	// Offsets within a block stay in the same bank.
	if m.Bank(0x47) != m.Bank(0x40) {
		t.Fatal("intra-block offset changed bank")
	}
}

func TestBankMapperPanics(t *testing.T) {
	for _, c := range []struct{ banks, block int }{{3, 64}, {0, 64}, {4, 48}} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("NewBankMapper(%d,%d) did not panic", c.banks, c.block)
				}
			}()
			NewBankMapper(c.banks, c.block)
		}()
	}
}

func TestReplPolicyStrings(t *testing.T) {
	if LRU.String() != "LRU" || FIFO.String() != "FIFO" || Random.String() != "Random" {
		t.Fatal("names wrong")
	}
}

func TestFIFOIgnoresReuse(t *testing.T) {
	p := smallParams()
	p.Replacement = FIFO
	a := NewArray(p)
	stride := Addr(a.Sets() * 64)
	// Fill set 0 in order 0,1,2,3; then touch 0 heavily.
	for i := 0; i < 4; i++ {
		ad := Addr(i) * stride
		a.Install(a.Victim(ad), ad, Shared)
	}
	for i := 0; i < 10; i++ {
		a.Probe(Addr(0))
	}
	// FIFO must still evict block 0 (oldest installed).
	v := a.Victim(4 * stride)
	if got := a.AddrOfLine(v, 4*stride); got != 0 {
		t.Fatalf("FIFO victim = %#x, want 0", got)
	}
}

func TestRandomReplacementDeterministic(t *testing.T) {
	run := func() []Addr {
		p := smallParams()
		p.Replacement = Random
		a := NewArray(p)
		stride := Addr(a.Sets() * 64)
		var evictions []Addr
		for i := 0; i < 12; i++ {
			ad := Addr(i) * stride
			v := a.Victim(ad)
			if v.State.Valid() {
				evictions = append(evictions, a.AddrOfLine(v, ad))
			}
			a.Install(v, ad, Shared)
		}
		return evictions
	}
	a, b := run(), run()
	if len(a) != len(b) || len(a) == 0 {
		t.Fatalf("eviction counts %d/%d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("random replacement nondeterministic")
		}
	}
	// And it actually varies (not always the same way).
	distinct := map[Addr]bool{}
	for _, e := range a {
		distinct[e] = true
	}
	if len(distinct) < 2 {
		t.Fatalf("random replacement degenerate: %v", a)
	}
}
