package workload

import (
	"fmt"

	"repro/internal/campaign"
	"repro/internal/coherence"
	"repro/internal/core"
	"repro/internal/cpu"
	"repro/internal/mmu"
	"repro/internal/sim"
	"repro/internal/stats"
)

// publishFastPath queues the machine's fast/slow access split (DESIGN.md
// §5) under the run's label for the CLI report footers; frontends drain
// it via stats.TakeFastPaths. Every runner calls it after its invariant
// check so the split covers exactly the accesses the Result reports.
func publishFastPath(benchmark, protocol string, m *core.Machine) {
	fast, slow := m.Sys.FastPathTotals()
	stats.AddFastPath(stats.FastPathSummary{
		Label: benchmark + "/" + protocol, Fast: fast, Slow: slow,
	})
}

// publishShards queues a sharded run's engine accounting (per-shard
// executed events, driver-run globals, epoch barriers) for the CLI
// [shards] stderr footers; a no-op on one-engine machines. Like the
// fast-path split it is observability only: the report stream is
// byte-identical at every shard count.
func publishShards(benchmark, protocol string, m *core.Machine) {
	sh := m.Sys.ShardedEngine()
	if sh == nil {
		return
	}
	stats.AddShards(stats.ShardSummary{
		Label:    benchmark + "/" + protocol,
		Executed: sh.ExecutedPerShard(),
		Globals:  sh.GlobalsRun(),
		Barriers: sh.Barriers(),
	})
}

// shardedDefault applies the campaign-wide -shards / SWIFTDIR_SHARDS
// setting to a runner-built machine configuration; an explicit
// Config.Shards wins.
func shardedDefault(cfg core.Config) core.Config {
	if cfg.Shards == 0 {
		cfg.Shards = campaign.Shards()
	}
	return cfg
}

// CPUKind selects the execution model.
type CPUKind string

// The two CPU models of the evaluation.
const (
	TimingSimpleCPU CPUKind = "TimingSimpleCPU"
	DerivO3CPU      CPUKind = "DerivO3CPU"
)

func newCPU(kind CPUKind, ctx *core.Context, trace cpu.TraceSource, bar *cpu.Barrier) cpu.CPU {
	switch kind {
	case TimingSimpleCPU:
		return cpu.NewInOrder(ctx, trace, bar)
	case DerivO3CPU:
		return cpu.NewOutOfOrder(ctx, trace, bar)
	}
	panic(fmt.Sprintf("workload: unknown CPU kind %q", kind))
}

// Result summarizes one benchmark execution.
type Result struct {
	Benchmark  string
	Protocol   string
	CPU        CPUKind
	ExecCycles sim.Cycle
	Instrs     uint64
	IPC        float64
	PerThread  []cpu.Stats
}

// Run executes profile p on a fresh machine with the given protocol and
// CPU model and returns the measured result. Threads are pinned to cores
// 0..Threads-1 of a machine sized to the thread count (min 1 core,
// rounded up to a power of two), mirroring the paper's setup.
func Run(p Profile, protocol coherence.Policy, kind CPUKind) (Result, error) {
	return RunCancel(p, protocol, kind, nil)
}

// RunCancel is Run with a cooperative cancellation token armed on the
// machine; a nil token is Run exactly.
func RunCancel(p Profile, protocol coherence.Policy, kind CPUKind, c *sim.Cancel) (Result, error) {
	cores := 1
	for cores < p.Threads {
		cores *= 2
	}
	cfg := core.DefaultConfig(cores, protocol)
	cfg.Cancel = c
	r, _, err := RunDetailed(p, cfg, kind)
	return r, err
}

// RunDetailed is Run with an explicit machine configuration; it also
// returns the quiesced machine so callers can inspect hierarchy
// statistics. The configuration must provide at least p.Threads cores.
func RunDetailed(p Profile, cfg core.Config, kind CPUKind) (Result, *core.Machine, error) {
	if err := p.Validate(); err != nil {
		return Result{}, nil, err
	}
	if cfg.Cores < p.Threads {
		return Result{}, nil, fmt.Errorf("workload %s: %d threads need >= as many cores, have %d",
			p.Name, p.Threads, cfg.Cores)
	}
	cfg = shardedDefault(cfg)
	m, err := core.NewMachine(cfg)
	if err != nil {
		return Result{}, nil, err
	}
	proc := m.NewProcess()

	var shared mmu.VAddr
	if p.SharedKB > 0 {
		lib := mmu.NewFile(p.Name+".so", p.Seed^0x5EED)
		shared = proc.MmapLibrary(lib, p.SharedKB*1024)
	}

	var bar *cpu.Barrier
	if p.Threads > 1 && p.BarrierEvery > 0 {
		bar = cpu.NewBarrier(m.Engine(), p.Threads)
		// Trace barriers mutate one shared waiter list from every core:
		// sharded machines must stay in sequential-stepping mode.
		m.ForceSequential()
	}

	cpus := make([]cpu.CPU, 0, p.Threads)
	rng := sim.NewRNG(p.Seed)
	for t := 0; t < p.Threads; t++ {
		ctx := proc.AttachContext(t)
		heap := proc.MmapAnon(p.WorkingSetKB * 1024)
		gp := p
		if bar == nil {
			gp.BarrierEvery = 0
		}
		gen := newGenerator(gp, heap, shared, rng.Uint64())
		cpus = append(cpus, newCPU(kind, ctx, gen, bar))
	}

	if cfg.Prefault {
		if err := m.Prefault(); err != nil {
			return Result{}, nil, fmt.Errorf("workload %s: prefault: %w", p.Name, err)
		}
	}

	cycles := cpu.Run(m, cpus)
	if err := m.CheckInvariants(); err != nil {
		return Result{}, nil, fmt.Errorf("workload %s on %s: %w", p.Name, cfg.Protocol.Name(), err)
	}
	publishFastPath(p.Name, cfg.Protocol.Name(), m)
	publishShards(p.Name, cfg.Protocol.Name(), m)

	res := Result{
		Benchmark:  p.Name,
		Protocol:   cfg.Protocol.Name(),
		CPU:        kind,
		ExecCycles: cycles,
		Instrs:     cpu.TotalInstructions(cpus),
	}
	for _, c := range cpus {
		res.PerThread = append(res.PerThread, c.Stats())
	}
	if cycles > 0 {
		res.IPC = float64(res.Instrs) / float64(cycles) / float64(p.Threads)
	}
	return res, m, nil
}

// MustRun is Run for callers with static inputs.
func MustRun(p Profile, protocol coherence.Policy, kind CPUKind) Result {
	r, err := Run(p, protocol, kind)
	if err != nil {
		panic(err)
	}
	return r
}
