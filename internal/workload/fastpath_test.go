package workload

import (
	"reflect"
	"testing"

	"repro/internal/coherence"
	"repro/internal/core"
)

// TestFastPathCPUEquivalence runs a WAR-heavy multithreaded profile on
// both CPU models with the fast path enabled and disabled. The out-of-
// order core overlaps loads with in-flight stores (the interleaving the
// fast path must not perturb), so identical Results — cycle counts, IPC,
// per-thread stats — plus identical hierarchy statistics certify that
// fast-path hits land at exactly the event path's position in the
// schedule.
func TestFastPathCPUEquivalence(t *testing.T) {
	p := Profile{
		Name: "fastpath-equiv", Suite: "micro", Threads: 2, Instrs: 4000,
		MemFrac: 0.6, StoreFrac: 0.4, WARFrac: 0.5, SeqFrac: 0.7,
		SharedFrac: 0.2, SharedKB: 16, DepFrac: 0.3, MissRate: 0.05,
		WorkingSetKB: 16, Seed: 0xFA57,
	}
	for _, kind := range []CPUKind{TimingSimpleCPU, DerivO3CPU} {
		t.Run(string(kind), func(t *testing.T) {
			run := func(noFast bool) (Result, *core.Machine) {
				cfg := core.DefaultConfig(2, coherence.SwiftDir)
				cfg.NoFastPath = noFast
				r, m, err := RunDetailed(p, cfg, kind)
				if err != nil {
					t.Fatal(err)
				}
				return r, m
			}
			rf, mf := run(false)
			rs, ms := run(true)
			if !reflect.DeepEqual(rf, rs) {
				t.Fatalf("results diverged:\nfast %+v\nslow %+v", rf, rs)
			}
			var fastHits uint64
			for i := range mf.Sys.L1s {
				fs, ss := mf.Sys.L1s[i].Stats, ms.Sys.L1s[i].Stats
				fastHits += fs.FastHits
				fs.FastHits, fs.SlowPath = 0, 0
				ss.FastHits, ss.SlowPath = 0, 0
				if fs != ss {
					t.Fatalf("L1 %d stats diverged:\nfast %+v\nslow %+v", i, fs, ss)
				}
			}
			if fb, sb := mf.Sys.BankStatsTotal(), ms.Sys.BankStatsTotal(); fb != sb {
				t.Fatalf("bank stats diverged:\nfast %+v\nslow %+v", fb, sb)
			}
			if fastHits == 0 {
				t.Fatal("run never exercised the fast path")
			}
			if sf, _ := ms.Sys.FastPathTotals(); sf != 0 {
				t.Fatalf("NoFastPath machine recorded %d fast hits", sf)
			}
		})
	}
}
