package workload_test

import (
	"fmt"

	"repro/internal/coherence"
	"repro/internal/workload"
)

// Example runs a scaled-down SPEC CPU 2017 profile on the out-of-order
// core under MESI and SwiftDir. SwiftDir never perturbs the schedule of
// a benchmark that takes no write-after-read faults, so the cycle counts
// are bit-exact equal (Figure 7).
func Example() {
	prof, _ := workload.ProfileByName("mcf")
	prof = prof.Scale(0.02)

	base, err := workload.Run(prof, coherence.MESI, workload.DerivO3CPU)
	if err != nil {
		panic(err)
	}
	swift, err := workload.Run(prof, coherence.SwiftDir, workload.DerivO3CPU)
	if err != nil {
		panic(err)
	}
	fmt.Printf("same instruction count: %v\n", base.Instrs == swift.Instrs)
	fmt.Printf("same cycle count: %v\n", base.ExecCycles == swift.ExecCycles)
	// Output:
	// same instruction count: true
	// same cycle count: true
}

// ExampleRunKernel measures a pointer-chasing kernel whose working set
// exceeds the L1, exercising the full hierarchy down to DDR3 timing.
func ExampleRunKernel() {
	k, _ := workload.KernelByName("pointer-chase")
	res, err := workload.RunKernel(k, coherence.SwiftDir, workload.TimingSimpleCPU, 64<<10)
	if err != nil {
		panic(err)
	}
	fmt.Printf("ran %s: ipc below 0.2: %v\n", res.Benchmark, res.IPC < 0.2)
	// Output:
	// ran pointer-chase: ipc below 0.2: true
}
