package workload

import (
	"bytes"
	"errors"
	"testing"
	"testing/quick"

	"repro/internal/cpu"
	"repro/internal/mmu"
	"repro/internal/sim"
)

func TestTraceRoundTrip(t *testing.T) {
	threads := [][]cpu.Instr{
		{
			{Op: cpu.OpInt},
			{Op: cpu.OpLoad, Addr: 0x40001234, Dep1: 1},
			{Op: cpu.OpStore, Addr: 0x40001234, Value: 0xDEADBEEF, Dep1: 1, Dep2: 2},
			{Op: cpu.OpFP, Lat: 12},
			{Op: cpu.OpBarrier},
		},
		{
			{Op: cpu.OpBranch, Dep1: 3},
		},
	}
	var buf bytes.Buffer
	if err := WriteTraces(&buf, threads); err != nil {
		t.Fatal(err)
	}
	got, err := ReadTraces(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(threads) {
		t.Fatalf("threads = %d", len(got))
	}
	for ti := range threads {
		if len(got[ti]) != len(threads[ti]) {
			t.Fatalf("thread %d length %d != %d", ti, len(got[ti]), len(threads[ti]))
		}
		for i := range threads[ti] {
			if got[ti][i] != threads[ti][i] {
				t.Fatalf("thread %d instr %d: %+v != %+v", ti, i, got[ti][i], threads[ti][i])
			}
		}
	}
}

func TestTraceCompactness(t *testing.T) {
	// 1000 pure-ALU instructions must encode at ~2 bytes each.
	instrs := make([]cpu.Instr, 1000)
	for i := range instrs {
		instrs[i] = cpu.Instr{Op: cpu.OpInt}
	}
	var buf bytes.Buffer
	if err := WriteTraces(&buf, [][]cpu.Instr{instrs}); err != nil {
		t.Fatal(err)
	}
	if buf.Len() > 2*1000+16 {
		t.Fatalf("encoded size %d, want ~2KB", buf.Len())
	}
}

func TestTraceRejectsGarbage(t *testing.T) {
	cases := map[string][]byte{
		"empty":       {},
		"bad magic":   []byte("NOPE\x01\x00"),
		"bad version": []byte("SWTR\x7f\x00"),
		"truncated":   []byte("SWTR\x01\x02\x05"),
		"bad op":      append([]byte("SWTR\x01\x01\x01"), 0xEE, 0x00),
	}
	for name, data := range cases {
		if _, err := ReadTraces(bytes.NewReader(data)); !errors.Is(err, ErrBadTrace) {
			t.Errorf("%s: err = %v, want ErrBadTrace", name, err)
		}
	}
}

// Property: any instruction stream round-trips exactly.
func TestTraceRoundTripProperty(t *testing.T) {
	f := func(raw []uint64) bool {
		var instrs []cpu.Instr
		for _, r := range raw {
			instrs = append(instrs, cpu.Instr{
				Op:    cpu.Op(r % 6),
				Addr:  mmu.VAddr(r >> 3 & 0xFFFFFFFF),
				Value: r >> 7,
				Dep1:  int(r % 5),
				Dep2:  int(r % 3),
				Lat:   sim.Cycle(r % 17),
			})
		}
		var buf bytes.Buffer
		if err := WriteTraces(&buf, [][]cpu.Instr{instrs}); err != nil {
			return false
		}
		got, err := ReadTraces(&buf)
		if err != nil || len(got) != 1 || len(got[0]) != len(instrs) {
			return false
		}
		for i := range instrs {
			if got[0][i] != instrs[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestRecordMatchesGeneratorShape(t *testing.T) {
	p := SPEC2017()[0].Scale(0.02)
	threads, err := Record(p)
	if err != nil {
		t.Fatal(err)
	}
	if len(threads) != p.Threads {
		t.Fatalf("threads = %d", len(threads))
	}
	if len(threads[0]) < p.Instrs {
		t.Fatalf("instructions = %d < %d", len(threads[0]), p.Instrs)
	}
	// Deterministic.
	again, _ := Record(p)
	for i := range threads[0] {
		if threads[0][i] != again[0][i] {
			t.Fatal("Record nondeterministic")
		}
	}
	// Round-trips through the file format.
	var buf bytes.Buffer
	if err := WriteTraces(&buf, threads); err != nil {
		t.Fatal(err)
	}
	got, err := ReadTraces(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(got[0]) != len(threads[0]) {
		t.Fatal("round trip lost instructions")
	}
	if err := p.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestRecordRejectsInvalidProfile(t *testing.T) {
	p := SPEC2017()[0]
	p.MemFrac = 5
	if _, err := Record(p); err == nil {
		t.Fatal("invalid profile accepted")
	}
}
