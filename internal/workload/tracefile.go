package workload

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"io"

	"repro/internal/cpu"
	"repro/internal/mmu"
	"repro/internal/sim"
)

// Trace file format: a compact, versioned, stream-oriented binary encoding
// of instruction traces, so workloads can be recorded once and replayed
// across protocols/CPU models or shared between machines.
//
//	header : magic "SWTR" | version u8 | thread count uvarint
//	thread : instruction count uvarint | instructions
//	instr  : op u8 | flags u8 | [addr uvarint] [value uvarint]
//	         [dep1 uvarint] [dep2 uvarint] [lat uvarint]
//
// Optional fields are present iff their flag bit is set, so pure-ALU
// instructions cost two bytes.

const (
	traceMagic   = "SWTR"
	traceVersion = 1
)

// Flag bits for optional instruction fields.
const (
	tfAddr = 1 << iota
	tfValue
	tfDep1
	tfDep2
	tfLat
	tfMispredict
)

// ErrBadTrace reports a malformed trace file.
var ErrBadTrace = errors.New("workload: malformed trace file")

// WriteTraces encodes one instruction stream per thread.
func WriteTraces(w io.Writer, threads [][]cpu.Instr) error {
	bw := bufio.NewWriter(w)
	if _, err := bw.WriteString(traceMagic); err != nil {
		return err
	}
	if err := bw.WriteByte(traceVersion); err != nil {
		return err
	}
	var buf [binary.MaxVarintLen64]byte
	putUvarint := func(v uint64) error {
		n := binary.PutUvarint(buf[:], v)
		_, err := bw.Write(buf[:n])
		return err
	}
	if err := putUvarint(uint64(len(threads))); err != nil {
		return err
	}
	for _, instrs := range threads {
		if err := putUvarint(uint64(len(instrs))); err != nil {
			return err
		}
		for _, ins := range instrs {
			var flags byte
			if ins.Addr != 0 {
				flags |= tfAddr
			}
			if ins.Value != 0 {
				flags |= tfValue
			}
			if ins.Dep1 != 0 {
				flags |= tfDep1
			}
			if ins.Dep2 != 0 {
				flags |= tfDep2
			}
			if ins.Lat != 0 {
				flags |= tfLat
			}
			if ins.Mispredict {
				flags |= tfMispredict
			}
			if err := bw.WriteByte(byte(ins.Op)); err != nil {
				return err
			}
			if err := bw.WriteByte(flags); err != nil {
				return err
			}
			if flags&tfAddr != 0 {
				if err := putUvarint(uint64(ins.Addr)); err != nil {
					return err
				}
			}
			if flags&tfValue != 0 {
				if err := putUvarint(ins.Value); err != nil {
					return err
				}
			}
			if flags&tfDep1 != 0 {
				if err := putUvarint(uint64(ins.Dep1)); err != nil {
					return err
				}
			}
			if flags&tfDep2 != 0 {
				if err := putUvarint(uint64(ins.Dep2)); err != nil {
					return err
				}
			}
			if flags&tfLat != 0 {
				if err := putUvarint(uint64(ins.Lat)); err != nil {
					return err
				}
			}
		}
	}
	return bw.Flush()
}

// ReadTraces decodes a trace file written by WriteTraces.
func ReadTraces(r io.Reader) ([][]cpu.Instr, error) {
	br := bufio.NewReader(r)
	magic := make([]byte, len(traceMagic))
	if _, err := io.ReadFull(br, magic); err != nil {
		return nil, fmt.Errorf("%w: %v", ErrBadTrace, err)
	}
	if string(magic) != traceMagic {
		return nil, fmt.Errorf("%w: bad magic %q", ErrBadTrace, magic)
	}
	ver, err := br.ReadByte()
	if err != nil {
		return nil, fmt.Errorf("%w: %v", ErrBadTrace, err)
	}
	if ver != traceVersion {
		return nil, fmt.Errorf("%w: unsupported version %d", ErrBadTrace, ver)
	}
	nThreads, err := binary.ReadUvarint(br)
	if err != nil {
		return nil, fmt.Errorf("%w: %v", ErrBadTrace, err)
	}
	if nThreads > 1024 {
		return nil, fmt.Errorf("%w: implausible thread count %d", ErrBadTrace, nThreads)
	}
	out := make([][]cpu.Instr, 0, nThreads)
	for t := uint64(0); t < nThreads; t++ {
		n, err := binary.ReadUvarint(br)
		if err != nil {
			return nil, fmt.Errorf("%w: %v", ErrBadTrace, err)
		}
		if n > 1<<30 {
			return nil, fmt.Errorf("%w: implausible instruction count %d", ErrBadTrace, n)
		}
		instrs := make([]cpu.Instr, 0, n)
		for i := uint64(0); i < n; i++ {
			ins, err := readInstr(br)
			if err != nil {
				return nil, err
			}
			instrs = append(instrs, ins)
		}
		out = append(out, instrs)
	}
	return out, nil
}

func readInstr(br *bufio.Reader) (cpu.Instr, error) {
	var ins cpu.Instr
	op, err := br.ReadByte()
	if err != nil {
		return ins, fmt.Errorf("%w: %v", ErrBadTrace, err)
	}
	if op > byte(cpu.OpBarrier) {
		return ins, fmt.Errorf("%w: unknown op %d", ErrBadTrace, op)
	}
	ins.Op = cpu.Op(op)
	flags, err := br.ReadByte()
	if err != nil {
		return ins, fmt.Errorf("%w: %v", ErrBadTrace, err)
	}
	read := func() (uint64, error) {
		v, err := binary.ReadUvarint(br)
		if err != nil {
			return 0, fmt.Errorf("%w: %v", ErrBadTrace, err)
		}
		return v, nil
	}
	if flags&tfAddr != 0 {
		v, err := read()
		if err != nil {
			return ins, err
		}
		ins.Addr = mmu.VAddr(v)
	}
	if flags&tfValue != 0 {
		v, err := read()
		if err != nil {
			return ins, err
		}
		ins.Value = v
	}
	if flags&tfDep1 != 0 {
		v, err := read()
		if err != nil {
			return ins, err
		}
		ins.Dep1 = int(v)
	}
	if flags&tfDep2 != 0 {
		v, err := read()
		if err != nil {
			return ins, err
		}
		ins.Dep2 = int(v)
	}
	if flags&tfLat != 0 {
		v, err := read()
		if err != nil {
			return ins, err
		}
		ins.Lat = sim.Cycle(v)
	}
	ins.Mispredict = flags&tfMispredict != 0
	return ins, nil
}

// Record materializes a profile's per-thread instruction streams (as the
// generators would emit them) for writing to a trace file.
func Record(p Profile) ([][]cpu.Instr, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	seeds := sim.NewRNG(p.Seed)
	out := make([][]cpu.Instr, 0, p.Threads)
	for t := 0; t < p.Threads; t++ {
		// The recorded addresses are the generator's virtual layout:
		// heap at a fixed per-thread base, shared region above it.
		heap := mmu.VAddr(0x4000_0000) + mmu.VAddr(t)<<32
		shared := mmu.VAddr(0x7000_0000_0000)
		g := newGenerator(p, heap, shared, seeds.Uint64())
		var instrs []cpu.Instr
		for {
			ins, ok := g.Next()
			if !ok {
				break
			}
			instrs = append(instrs, ins)
		}
		out = append(out, instrs)
	}
	return out, nil
}
