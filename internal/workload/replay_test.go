package workload

import (
	"bytes"
	"testing"

	"repro/internal/coherence"
)

func TestReplayMatchesDirectRun(t *testing.T) {
	p := PARSEC3()[0].Scale(0.02)
	threads, err := Record(p)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := WriteTraces(&buf, threads); err != nil {
		t.Fatal(err)
	}
	loaded, err := ReadTraces(&buf)
	if err != nil {
		t.Fatal(err)
	}
	r1, err := Replay(loaded, coherence.SwiftDir, DerivO3CPU)
	if err != nil {
		t.Fatal(err)
	}
	r2, err := Replay(threads, coherence.SwiftDir, DerivO3CPU)
	if err != nil {
		t.Fatal(err)
	}
	if r1.ExecCycles != r2.ExecCycles || r1.Instrs != r2.Instrs {
		t.Fatalf("replay not reproducible: %d/%d vs %d/%d", r1.ExecCycles, r1.Instrs, r2.ExecCycles, r2.Instrs)
	}
	if r1.Instrs == 0 || len(r1.PerThread) != p.Threads {
		t.Fatalf("replay result empty: %+v", r1)
	}
}

func TestReplayAcrossProtocols(t *testing.T) {
	p := SPEC2017()[9].Scale(0.02) // xz: WAR-heavy
	threads, err := Record(p)
	if err != nil {
		t.Fatal(err)
	}
	mesi, err := Replay(threads, coherence.MESI, TimingSimpleCPU)
	if err != nil {
		t.Fatal(err)
	}
	smesi, err := Replay(threads, coherence.SMESI, TimingSimpleCPU)
	if err != nil {
		t.Fatal(err)
	}
	if smesi.ExecCycles <= mesi.ExecCycles {
		t.Fatalf("S-MESI (%d) not slower than MESI (%d) on a WAR-heavy replay", smesi.ExecCycles, mesi.ExecCycles)
	}
}

func TestReplayEmptyTraceRejected(t *testing.T) {
	if _, err := Replay(nil, coherence.MESI, DerivO3CPU); err == nil {
		t.Fatal("empty trace accepted")
	}
}
