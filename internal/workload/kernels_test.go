package workload

import (
	"testing"

	"repro/internal/coherence"
)

func TestKernelsWellFormed(t *testing.T) {
	if len(Kernels()) != 3 {
		t.Fatalf("kernels = %d", len(Kernels()))
	}
	if _, ok := KernelByName("gups"); !ok {
		t.Fatal("gups missing")
	}
	if _, ok := KernelByName("nope"); ok {
		t.Fatal("bogus kernel resolved")
	}
	if _, err := RunKernel(Kernels()[0], coherence.MESI, DerivO3CPU, 100); err == nil {
		t.Fatal("tiny working set accepted")
	}
}

// The kernels' performance signatures must order correctly on the O3
// model: stream (sequential, MLP) >> gups (random RMW) >> pointer-chase
// (serialized loads).
func TestKernelSignatures(t *testing.T) {
	const ws = 512 << 10 // larger than L1, fits LLC? 512KB < 2MB bank
	ipc := map[string]float64{}
	walks := map[string]uint64{}
	for _, k := range Kernels() {
		r, err := RunKernel(k, coherence.MESI, DerivO3CPU, ws)
		if err != nil {
			t.Fatal(err)
		}
		ipc[k.Name] = r.IPC
		walks[k.Name] = 0
		t.Logf("%-14s IPC=%.3f instrs=%d cycles=%d", k.Name, r.IPC, r.Instrs, r.ExecCycles)
	}
	if !(ipc["stream-triad"] > 2*ipc["gups"]) {
		t.Fatalf("stream (%.3f) not clearly above gups (%.3f)", ipc["stream-triad"], ipc["gups"])
	}
	if !(ipc["gups"] > 2*ipc["pointer-chase"]) {
		t.Fatalf("gups (%.3f) not clearly above pointer-chase (%.3f)", ipc["gups"], ipc["pointer-chase"])
	}
}

// Pointer chasing is latency-bound: the in-order and O3 models converge
// (out-of-order cannot help a fully serialized chain).
func TestPointerChaseDefeatsOoO(t *testing.T) {
	k, _ := KernelByName("pointer-chase")
	inorder, err := RunKernel(k, coherence.MESI, TimingSimpleCPU, 128<<10)
	if err != nil {
		t.Fatal(err)
	}
	o3, err := RunKernel(k, coherence.MESI, DerivO3CPU, 128<<10)
	if err != nil {
		t.Fatal(err)
	}
	ratio := float64(inorder.ExecCycles) / float64(o3.ExecCycles)
	if ratio > 1.3 {
		t.Fatalf("O3 %.2fx faster than in-order on a serialized chain", ratio)
	}
}

// Stream is where O3's MLP shines: it must beat in-order decisively.
func TestStreamLovesOoO(t *testing.T) {
	k, _ := KernelByName("stream-triad")
	inorder, err := RunKernel(k, coherence.MESI, TimingSimpleCPU, 192<<10)
	if err != nil {
		t.Fatal(err)
	}
	o3, err := RunKernel(k, coherence.MESI, DerivO3CPU, 192<<10)
	if err != nil {
		t.Fatal(err)
	}
	if float64(inorder.ExecCycles) < 2*float64(o3.ExecCycles) {
		t.Fatalf("O3 (%d) not clearly faster than in-order (%d) on stream", o3.ExecCycles, inorder.ExecCycles)
	}
}
