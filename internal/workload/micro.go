package workload

import (
	"fmt"

	"repro/internal/coherence"
	"repro/internal/core"
	"repro/internal/cpu"
	"repro/internal/mmu"
	"repro/internal/sim"
)

// RunReadOnly executes the Figure 9 microbenchmark: a two-threaded
// application accessing `amount` exploitable shared (write-protected)
// cache lines. Thread 0 loads the whole region, both threads synchronize,
// then thread 1 re-accesses every line cross-core. Under MESI the
// re-access loads hit E-state blocks and take the three-hop path; under
// S-MESI and SwiftDir they are served from the LLC.
func RunReadOnly(amount int, protocol coherence.Policy, kind CPUKind) (Result, error) {
	return RunReadOnlyCancel(amount, protocol, kind, nil)
}

// RunReadOnlyCancel is RunReadOnly with a cooperative cancellation token
// armed on the machine; a nil token is RunReadOnly exactly.
func RunReadOnlyCancel(amount int, protocol coherence.Policy, kind CPUKind, c *sim.Cancel) (Result, error) {
	if amount <= 0 {
		return Result{}, fmt.Errorf("workload: non-positive shared-data amount %d", amount)
	}
	cfg := shardedDefault(core.DefaultConfig(2, protocol))
	cfg.Cancel = c
	m, err := core.NewMachine(cfg)
	if err != nil {
		return Result{}, err
	}
	proc := m.NewProcess()
	lib := mmu.NewFile("readonly.so", 0xF19)
	// Lines are spread one per 64B block; size up to the next page.
	bytes := (amount*64 + mmu.PageSize - 1) / mmu.PageSize * mmu.PageSize
	shared := proc.MmapLibrary(lib, bytes)

	loop := func() *cpu.SliceTrace {
		tr := &cpu.SliceTrace{}
		for i := 0; i < amount; i++ {
			tr.Instrs = append(tr.Instrs,
				cpu.Instr{Op: cpu.OpLoad, Addr: shared + mmu.VAddr(i*64)},
				cpu.Instr{Op: cpu.OpInt, Dep1: 1}, // consume the value
				cpu.Instr{Op: cpu.OpInt},          // loop counter
				cpu.Instr{Op: cpu.OpBranch, Dep1: 1},
			)
		}
		return tr
	}

	bar := cpu.NewBarrier(m.Engine(), 2)
	m.ForceSequential()
	accessor := loop()
	accessor.Instrs = append(accessor.Instrs, cpu.Instr{Op: cpu.OpBarrier})
	reaccessor := &cpu.SliceTrace{Instrs: append([]cpu.Instr{{Op: cpu.OpBarrier}}, loop().Instrs...)}

	c0 := newCPU(kind, proc.AttachContext(0), accessor, bar)
	c1 := newCPU(kind, proc.AttachContext(1), reaccessor, bar)
	cycles := cpu.Run(m, []cpu.CPU{c0, c1})
	if err := m.CheckInvariants(); err != nil {
		return Result{}, err
	}
	publishFastPath(fmt.Sprintf("readonly-%d", amount), protocol.Name(), m)
	publishShards(fmt.Sprintf("readonly-%d", amount), protocol.Name(), m)
	return Result{
		Benchmark:  fmt.Sprintf("readonly-%d", amount),
		Protocol:   protocol.Name(),
		CPU:        kind,
		ExecCycles: cycles,
		Instrs:     cpu.TotalInstructions([]cpu.CPU{c0, c1}),
		PerThread:  []cpu.Stats{c0.Stats(), c1.Stats()},
	}, nil
}

// WARApp is one of the Figure 10 write-after-read intensive applications.
type WARApp struct {
	Name string
	// trace builds one measured pass over the array.
	trace func(heap mmu.VAddr, blocks int, rng *sim.RNG) []cpu.Instr
}

// WARApps returns the paper's three applications, generated at 8-byte
// element granularity (eight elements per 64-byte block). The array
// exceeds the L1 but fits the LLC, so every pass re-loads each block into
// state E from the LLC and the block's first store exercises the E->M
// transition — silently under MESI/SwiftDir, via an Upgrade round trip
// under S-MESI. The remaining intra-block accesses are the L1 hits that
// dilute the upgrade cost, exactly as in a real array traversal.
func WARApps() []WARApp {
	return []WARApp{
		{
			// a[i] = f(a[i]): independent load+store per element.
			Name: "array assignment",
			trace: func(heap mmu.VAddr, blocks int, rng *sim.RNG) []cpu.Instr {
				var tr []cpu.Instr
				for e := 0; e < blocks*8; e++ {
					addr := heap + mmu.VAddr(e*8)
					tr = append(tr,
						cpu.Instr{Op: cpu.OpLoad, Addr: addr},
						cpu.Instr{Op: cpu.OpStore, Addr: addr, Dep1: 1, Value: rng.Uint64()},
					)
				}
				return tr
			},
		},
		{
			// Shifting elements for an insertion: a[e] is read and the
			// value written one slot over; the chain through the shifted
			// value serializes across elements, so upgrade latency is
			// exposed even out of order.
			Name: "array insertion",
			trace: func(heap mmu.VAddr, blocks int, rng *sim.RNG) []cpu.Instr {
				var tr []cpu.Instr
				for e := 0; e < blocks*8; e++ {
					addr := heap + mmu.VAddr(e*8)
					tr = append(tr,
						// load depends on the previous store (the
						// immediately preceding instruction): the value
						// being shifted along the array.
						cpu.Instr{Op: cpu.OpLoad, Addr: addr, Dep1: 1},
						cpu.Instr{Op: cpu.OpInt, Dep1: 1}, // compare with key
						cpu.Instr{Op: cpu.OpStore, Addr: addr, Dep1: 1, Value: rng.Uint64()},
					)
				}
				return tr
			},
		},
		{
			// A compare-and-swap pass over neighbours: the most compute
			// per element, so the smallest (but still real) share of
			// time sits in upgrades.
			Name: "array sorting",
			trace: func(heap mmu.VAddr, blocks int, rng *sim.RNG) []cpu.Instr {
				var tr []cpu.Instr
				for e := 0; e < blocks*8-1; e++ {
					addr := heap + mmu.VAddr(e*8)
					tr = append(tr,
						cpu.Instr{Op: cpu.OpLoad, Addr: addr},
						cpu.Instr{Op: cpu.OpLoad, Addr: addr + 8},
						cpu.Instr{Op: cpu.OpInt, Dep1: 2, Dep2: 1}, // compare
						cpu.Instr{Op: cpu.OpBranch, Dep1: 1},
					)
					if rng.Bool(0.5) { // swap
						tr = append(tr,
							cpu.Instr{Op: cpu.OpStore, Addr: addr, Dep1: 2, Value: rng.Uint64()},
							cpu.Instr{Op: cpu.OpStore, Addr: addr + 8, Dep1: 3, Value: rng.Uint64()},
						)
					} else {
						tr = append(tr,
							cpu.Instr{Op: cpu.OpInt, Dep1: 2},
							cpu.Instr{Op: cpu.OpInt},
						)
					}
				}
				return tr
			},
		},
	}
}

// WARArrayKB is the array footprint of the Figure 10 applications: twice
// the L1 capacity, comfortably LLC-resident.
const WARArrayKB = 64

// RunWAR executes one Figure 10 application: a warm pass (cold misses)
// followed by `passes` measured passes, single-threaded.
func RunWAR(app WARApp, protocol coherence.Policy, kind CPUKind, passes int) (Result, error) {
	return RunWARCancel(app, protocol, kind, passes, nil)
}

// RunWARCancel is RunWAR with a cooperative cancellation token armed on
// the machine; a nil token is RunWAR exactly.
func RunWARCancel(app WARApp, protocol coherence.Policy, kind CPUKind, passes int, tok *sim.Cancel) (Result, error) {
	if passes <= 0 {
		return Result{}, fmt.Errorf("workload: non-positive pass count")
	}
	cfg := shardedDefault(core.DefaultConfig(1, protocol))
	cfg.Cancel = tok
	m, err := core.NewMachine(cfg)
	if err != nil {
		return Result{}, err
	}
	proc := m.NewProcess()
	heap := proc.MmapAnon(WARArrayKB * 1024)
	blocks := WARArrayKB * 1024 / 64
	rng := sim.NewRNG(0xA44)

	// Warm pass: demand paging + memory fetches, excluded from timing.
	warm := &cpu.SliceTrace{Instrs: app.trace(heap, blocks, rng)}
	ctx := proc.AttachContext(0)
	cpu.Run(m, []cpu.CPU{newCPU(kind, ctx, warm, nil)})

	var instrs []cpu.Instr
	for p := 0; p < passes; p++ {
		instrs = append(instrs, app.trace(heap, blocks, rng)...)
	}
	c := newCPU(kind, ctx, &cpu.SliceTrace{Instrs: instrs}, nil)
	cycles := cpu.Run(m, []cpu.CPU{c})
	if err := m.CheckInvariants(); err != nil {
		return Result{}, err
	}
	publishFastPath(app.Name, protocol.Name(), m)
	publishShards(app.Name, protocol.Name(), m)
	return Result{
		Benchmark:  app.Name,
		Protocol:   protocol.Name(),
		CPU:        kind,
		ExecCycles: cycles,
		Instrs:     c.Stats().Instructions,
		IPC:        c.Stats().IPC(),
		PerThread:  []cpu.Stats{c.Stats()},
	}, nil
}
