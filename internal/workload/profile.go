// Package workload generates the synthetic benchmarks of the evaluation.
// SPEC CPU 2017 and PARSEC 3.0 cannot be shipped or executed inside the
// simulator, so each named benchmark is replaced by a deterministic,
// seeded trace generator whose parameters (memory intensity, store and
// write-after-read fractions, working-set and shared-library footprints,
// locality, thread count, synchronization density) are chosen to exercise
// the protocol behaviours the paper measures. Absolute IPCs are not
// comparable to gem5's; the protocol *comparison* is the reproduced
// quantity (see DESIGN.md).
package workload

import (
	"fmt"

	"repro/internal/cpu"
	"repro/internal/mmu"
	"repro/internal/sim"
)

// Profile parameterizes one synthetic benchmark.
type Profile struct {
	Name    string
	Suite   string // "SPEC2017", "PARSEC3", or "micro"
	Threads int
	Instrs  int // instructions per thread

	MemFrac    float64 // fraction of instructions that touch memory
	StoreFrac  float64 // of memory ops, fraction that are stores
	WARFrac    float64 // of stores, fraction emitted as load+store pairs
	SharedFrac float64 // of loads, fraction into the shared (write-protected) region
	SeqFrac    float64 // of private accesses, fraction continuing sequentially
	FPFrac     float64 // of non-memory ops, fraction floating point
	DepFrac    float64 // probability an instruction depends on its predecessor
	MissRate   float64 // of branches, fraction mispredicted

	WorkingSetKB int // private region per thread
	SharedKB     int // shared write-protected region (library)

	BarrierEvery int // instructions between barriers (0 = none)

	Seed uint64
}

// Validate checks the profile for sane fractions and sizes.
func (p Profile) Validate() error {
	if p.Name == "" {
		return fmt.Errorf("workload: unnamed profile")
	}
	if p.Threads <= 0 || p.Instrs <= 0 {
		return fmt.Errorf("workload %s: non-positive threads/instrs", p.Name)
	}
	for _, f := range []struct {
		name string
		v    float64
	}{
		{"MemFrac", p.MemFrac}, {"StoreFrac", p.StoreFrac}, {"WARFrac", p.WARFrac},
		{"SharedFrac", p.SharedFrac}, {"SeqFrac", p.SeqFrac}, {"FPFrac", p.FPFrac},
		{"DepFrac", p.DepFrac}, {"MissRate", p.MissRate},
	} {
		if f.v < 0 || f.v > 1 {
			return fmt.Errorf("workload %s: %s = %v out of [0,1]", p.Name, f.name, f.v)
		}
	}
	if p.WorkingSetKB <= 0 {
		return fmt.Errorf("workload %s: non-positive working set", p.Name)
	}
	if p.SharedFrac > 0 && p.SharedKB <= 0 {
		return fmt.Errorf("workload %s: shared accesses without a shared region", p.Name)
	}
	return nil
}

// Scale returns a copy with the per-thread instruction count multiplied by
// f (min 1000); used to shrink runs for quick tests.
func (p Profile) Scale(f float64) Profile {
	n := int(float64(p.Instrs) * f)
	if n < 1000 {
		n = 1000
	}
	p.Instrs = n
	return p
}

// generator emits the instruction stream for one thread.
type generator struct {
	p   Profile
	rng *sim.RNG

	heapBase     mmu.VAddr
	heapBlocks   int
	sharedBase   mmu.VAddr
	sharedBlocks int

	cursor    int // sequential-walk position in the private region
	emitted   int
	pending   []cpu.Instr
	lastValue uint64
}

// newGenerator builds a thread's trace. The caller supplies mapped
// regions; seed should differ per thread.
func newGenerator(p Profile, heap, shared mmu.VAddr, seed uint64) *generator {
	return &generator{
		p:            p,
		rng:          sim.NewRNG(seed),
		heapBase:     heap,
		heapBlocks:   p.WorkingSetKB * 1024 / 64,
		sharedBase:   shared,
		sharedBlocks: p.SharedKB * 1024 / 64,
	}
}

var _ cpu.TraceSource = (*generator)(nil)

// privateAddr returns the next private-region address: a sequential walk
// with probability SeqFrac, a uniform jump otherwise.
func (g *generator) privateAddr() mmu.VAddr {
	if g.rng.Bool(g.p.SeqFrac) {
		g.cursor = (g.cursor + 1) % g.heapBlocks
	} else {
		g.cursor = g.rng.Intn(g.heapBlocks)
	}
	return g.heapBase + mmu.VAddr(g.cursor*64)
}

func (g *generator) sharedAddr() mmu.VAddr {
	return g.sharedBase + mmu.VAddr(g.rng.Intn(g.sharedBlocks)*64)
}

func (g *generator) dep() int {
	if g.rng.Bool(g.p.DepFrac) {
		return 1
	}
	return 0
}

// Next implements cpu.TraceSource.
func (g *generator) Next() (cpu.Instr, bool) {
	if len(g.pending) > 0 {
		ins := g.pending[0]
		g.pending = g.pending[1:]
		return ins, true
	}
	if g.emitted >= g.p.Instrs {
		return cpu.Instr{}, false
	}
	g.emitted++

	if g.p.BarrierEvery > 0 && g.emitted%g.p.BarrierEvery == 0 {
		return cpu.Instr{Op: cpu.OpBarrier}, true
	}

	if g.rng.Bool(g.p.MemFrac) {
		if g.rng.Bool(g.p.StoreFrac) {
			g.lastValue = g.rng.Uint64()
			addr := g.privateAddr()
			if g.rng.Bool(g.p.WARFrac) {
				// Write-after-read pair: the pattern whose E->M
				// upgrade cost separates the protocols.
				g.pending = append(g.pending,
					cpu.Instr{Op: cpu.OpStore, Addr: addr, Value: g.lastValue, Dep1: 1})
				return cpu.Instr{Op: cpu.OpLoad, Addr: addr}, true
			}
			return cpu.Instr{Op: cpu.OpStore, Addr: addr, Value: g.lastValue, Dep1: g.dep()}, true
		}
		if g.p.SharedFrac > 0 && g.rng.Bool(g.p.SharedFrac) {
			return cpu.Instr{Op: cpu.OpLoad, Addr: g.sharedAddr(), Dep1: g.dep()}, true
		}
		return cpu.Instr{Op: cpu.OpLoad, Addr: g.privateAddr(), Dep1: g.dep()}, true
	}
	if g.rng.Bool(g.p.FPFrac) {
		return cpu.Instr{Op: cpu.OpFP, Dep1: g.dep()}, true
	}
	if g.rng.Bool(0.15) {
		return cpu.Instr{Op: cpu.OpBranch, Dep1: g.dep(), Mispredict: g.rng.Bool(g.p.MissRate)}, true
	}
	return cpu.Instr{Op: cpu.OpInt, Dep1: g.dep()}, true
}
