package workload

import (
	"fmt"

	"repro/internal/coherence"
	"repro/internal/core"
	"repro/internal/cpu"
	"repro/internal/mmu"
)

// recordSharedBase is the virtual base Record places the shared
// (write-protected) region at; everything below it is per-thread private
// heap.
const recordSharedBase = mmu.VAddr(0x7000_0000_0000)

// Replay executes a recorded trace (one instruction stream per thread) on
// a fresh machine under the given protocol and CPU model. The recorded
// address-space layout is reconstructed with fixed mappings: private
// anonymous regions for each thread's heap addresses, and a shared-library
// mapping (write-protected) for the shared region.
func Replay(threads [][]cpu.Instr, protocol coherence.Policy, kind CPUKind) (Result, error) {
	if len(threads) == 0 {
		return Result{}, fmt.Errorf("workload: empty trace")
	}
	cores := 1
	for cores < len(threads) {
		cores *= 2
	}
	m, err := core.NewMachine(shardedDefault(core.DefaultConfig(cores, protocol)))
	if err != nil {
		return Result{}, err
	}
	proc := m.NewProcess()

	// Reconstruct the layout: one fixed anonymous region per contiguous
	// private range, one fixed library mapping over the shared range.
	type rng struct{ lo, hi mmu.VAddr }
	var shared *rng
	private := map[mmu.VAddr]*rng{} // keyed by bits 32+ of the address
	for _, instrs := range threads {
		for _, ins := range instrs {
			if !ins.Op.IsMem() {
				continue
			}
			if ins.Addr >= recordSharedBase {
				if shared == nil {
					shared = &rng{lo: ins.Addr, hi: ins.Addr}
				}
				if ins.Addr < shared.lo {
					shared.lo = ins.Addr
				}
				if ins.Addr > shared.hi {
					shared.hi = ins.Addr
				}
				continue
			}
			key := ins.Addr >> 32
			r := private[key]
			if r == nil {
				private[key] = &rng{lo: ins.Addr, hi: ins.Addr}
				continue
			}
			if ins.Addr < r.lo {
				r.lo = ins.Addr
			}
			if ins.Addr > r.hi {
				r.hi = ins.Addr
			}
		}
	}
	pageFloor := func(v mmu.VAddr) mmu.VAddr { return v &^ (mmu.PageSize - 1) }
	for _, r := range private {
		base := pageFloor(r.lo)
		length := int(r.hi-base) + mmu.PageSize
		if err := proc.AS.MmapFixed(base, length,
			mmu.ProtRead|mmu.ProtWrite, mmu.MapPrivate|mmu.MapAnonymous, nil, 0); err != nil {
			return Result{}, err
		}
	}
	if shared != nil {
		base := pageFloor(shared.lo)
		length := int(shared.hi-base) + mmu.PageSize
		lib := mmu.NewFile("replay.so", 0x4E71A)
		if err := proc.AS.MmapFixed(base, length,
			mmu.ProtRead|mmu.ProtExec, mmu.MapShared, lib, 0); err != nil {
			return Result{}, err
		}
	}

	var bar *cpu.Barrier
	for _, instrs := range threads {
		for _, ins := range instrs {
			if ins.Op == cpu.OpBarrier {
				bar = cpu.NewBarrier(m.Engine(), len(threads))
				m.ForceSequential()
			}
		}
		if bar != nil {
			break
		}
	}

	cpus := make([]cpu.CPU, 0, len(threads))
	for t, instrs := range threads {
		ctx := proc.AttachContext(t)
		cpus = append(cpus, newCPU(kind, ctx, &cpu.SliceTrace{Instrs: instrs}, bar))
	}
	cycles := cpu.Run(m, cpus)
	if err := m.CheckInvariants(); err != nil {
		return Result{}, err
	}
	publishFastPath("replay", protocol.Name(), m)
	publishShards("replay", protocol.Name(), m)
	res := Result{
		Benchmark:  "replay",
		Protocol:   protocol.Name(),
		CPU:        kind,
		ExecCycles: cycles,
		Instrs:     cpu.TotalInstructions(cpus),
	}
	for _, c := range cpus {
		res.PerThread = append(res.PerThread, c.Stats())
	}
	if cycles > 0 {
		res.IPC = float64(res.Instrs) / float64(cycles) / float64(len(threads))
	}
	return res, nil
}
