package workload

import (
	"testing"

	"repro/internal/coherence"
	"repro/internal/cpu"
	"repro/internal/mmu"
	"repro/internal/sim"
)

func TestProfileValidate(t *testing.T) {
	good := SPEC2017()[0]
	if err := good.Validate(); err != nil {
		t.Fatalf("spec profile invalid: %v", err)
	}
	bad := good
	bad.MemFrac = 1.5
	if bad.Validate() == nil {
		t.Error("MemFrac > 1 accepted")
	}
	bad = good
	bad.Name = ""
	if bad.Validate() == nil {
		t.Error("unnamed profile accepted")
	}
	bad = good
	bad.WorkingSetKB = 0
	if bad.Validate() == nil {
		t.Error("zero working set accepted")
	}
	bad = good
	bad.SharedFrac = 0.5
	bad.SharedKB = 0
	if bad.Validate() == nil {
		t.Error("shared accesses without region accepted")
	}
}

func TestAllSuiteProfilesValid(t *testing.T) {
	spec := SPEC2017()
	if len(spec) != 23 {
		t.Fatalf("SPEC suite has %d profiles, want 23", len(spec))
	}
	parsec := PARSEC3()
	if len(parsec) != 13 {
		t.Fatalf("PARSEC suite has %d profiles, want 13", len(parsec))
	}
	seen := map[string]bool{}
	for _, p := range append(spec, parsec...) {
		if err := p.Validate(); err != nil {
			t.Errorf("%s: %v", p.Name, err)
		}
		key := p.Suite + "/" + p.Name
		if seen[key] {
			t.Errorf("duplicate profile %s", key)
		}
		seen[key] = true
	}
	for _, p := range spec {
		if p.Threads != 1 {
			t.Errorf("SPEC %s has %d threads", p.Name, p.Threads)
		}
	}
	for _, p := range parsec {
		if p.Threads != 4 {
			t.Errorf("PARSEC %s has %d threads", p.Name, p.Threads)
		}
	}
}

func TestProfileByName(t *testing.T) {
	if _, ok := ProfileByName("mcf"); !ok {
		t.Error("mcf not found")
	}
	if _, ok := ProfileByName("canneal"); !ok {
		t.Error("canneal not found")
	}
	if _, ok := ProfileByName("nonesuch"); ok {
		t.Error("nonexistent benchmark found")
	}
}

func TestScale(t *testing.T) {
	p := SPEC2017()[0]
	s := p.Scale(0.1)
	if s.Instrs != p.Instrs/10 {
		t.Fatalf("scaled instrs = %d", s.Instrs)
	}
	tiny := p.Scale(0.000001)
	if tiny.Instrs != 1000 {
		t.Fatalf("floor = %d", tiny.Instrs)
	}
}

func TestGeneratorDeterministicAndExhaustive(t *testing.T) {
	p := SPEC2017()[0].Scale(0.05)
	mk := func() []cpu.Instr {
		g := newGenerator(p, 0x40000000, 0x50000000, 7)
		var out []cpu.Instr
		for {
			ins, ok := g.Next()
			if !ok {
				break
			}
			out = append(out, ins)
		}
		return out
	}
	a, b := mk(), mk()
	if len(a) != len(b) || len(a) < p.Instrs {
		t.Fatalf("lengths %d vs %d (instrs %d)", len(a), len(b), p.Instrs)
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("instruction %d differs", i)
		}
	}
}

func TestGeneratorRespectsFractions(t *testing.T) {
	p := Profile{
		Name: "frac", Suite: "micro", Threads: 1, Instrs: 50000,
		MemFrac: 0.5, StoreFrac: 0.4, WARFrac: 0, SharedFrac: 0.3,
		SeqFrac: 0.5, FPFrac: 0.5, DepFrac: 0.3,
		WorkingSetKB: 64, SharedKB: 64, Seed: 3,
	}
	g := newGenerator(p, 0x40000000, 0x50000000, 3)
	var mem, stores, shared, total int
	for {
		ins, ok := g.Next()
		if !ok {
			break
		}
		total++
		if ins.Op.IsMem() {
			mem++
			if ins.Op == cpu.OpStore {
				stores++
			}
			if ins.Addr >= 0x50000000 {
				shared++
			}
		}
	}
	memFrac := float64(mem) / float64(total)
	if memFrac < 0.45 || memFrac > 0.55 {
		t.Fatalf("mem fraction = %v", memFrac)
	}
	storeFrac := float64(stores) / float64(mem)
	if storeFrac < 0.35 || storeFrac > 0.45 {
		t.Fatalf("store fraction = %v", storeFrac)
	}
	if shared == 0 {
		t.Fatal("no shared accesses generated")
	}
}

func TestGeneratorWARPairs(t *testing.T) {
	p := Profile{
		Name: "war", Suite: "micro", Threads: 1, Instrs: 10000,
		MemFrac: 0.6, StoreFrac: 0.5, WARFrac: 1.0,
		SeqFrac: 0.5, WorkingSetKB: 64, Seed: 5,
	}
	g := newGenerator(p, 0x40000000, 0, 5)
	var prev cpu.Instr
	pairs, stores := 0, 0
	for {
		ins, ok := g.Next()
		if !ok {
			break
		}
		if ins.Op == cpu.OpStore {
			stores++
			if prev.Op == cpu.OpLoad && prev.Addr == ins.Addr {
				pairs++
			}
		}
		prev = ins
	}
	if stores == 0 || pairs != stores {
		t.Fatalf("WAR pairs %d of %d stores; want all", pairs, stores)
	}
}

func TestGeneratorBarrierCadence(t *testing.T) {
	p := PARSEC3()[0].Scale(0.1)
	g := newGenerator(p, 0x40000000, 0x50000000, 1)
	barriers := 0
	for {
		ins, ok := g.Next()
		if !ok {
			break
		}
		if ins.Op == cpu.OpBarrier {
			barriers++
		}
	}
	want := p.Instrs / p.BarrierEvery
	if barriers != want {
		t.Fatalf("barriers = %d, want %d", barriers, want)
	}
}

func TestRunSingleThreadedSmoke(t *testing.T) {
	p := SPEC2017()[0].Scale(0.02) // 4000 instrs
	for _, proto := range coherence.Policies {
		r, err := Run(p, proto, DerivO3CPU)
		if err != nil {
			t.Fatalf("%s: %v", proto.Name(), err)
		}
		if r.Instrs < uint64(p.Instrs) {
			t.Fatalf("%s: committed %d < %d", proto.Name(), r.Instrs, p.Instrs)
		}
		if r.ExecCycles == 0 || r.IPC <= 0 {
			t.Fatalf("%s: empty result %+v", proto.Name(), r)
		}
	}
}

func TestRunMultiThreadedSmoke(t *testing.T) {
	p := PARSEC3()[3].Scale(0.03) // dedup, ~3600 instrs/thread
	r, err := Run(p, coherence.SwiftDir, DerivO3CPU)
	if err != nil {
		t.Fatal(err)
	}
	if len(r.PerThread) != 4 {
		t.Fatalf("threads = %d", len(r.PerThread))
	}
	for i, s := range r.PerThread {
		if s.Instructions == 0 {
			t.Fatalf("thread %d committed nothing", i)
		}
	}
}

func TestRunDeterminism(t *testing.T) {
	p := SPEC2017()[4].Scale(0.02)
	a := MustRun(p, coherence.SMESI, TimingSimpleCPU)
	b := MustRun(p, coherence.SMESI, TimingSimpleCPU)
	if a.ExecCycles != b.ExecCycles || a.Instrs != b.Instrs {
		t.Fatalf("nondeterministic: %v vs %v", a.ExecCycles, b.ExecCycles)
	}
}

func TestRunRejectsInvalidProfile(t *testing.T) {
	p := SPEC2017()[0]
	p.MemFrac = 2
	if _, err := Run(p, coherence.MESI, DerivO3CPU); err == nil {
		t.Fatal("invalid profile accepted")
	}
	if _, err := RunReadOnly(0, coherence.MESI, DerivO3CPU); err == nil {
		t.Fatal("zero amount accepted")
	}
	if _, err := RunWAR(WARApps()[0], coherence.MESI, DerivO3CPU, 0); err == nil {
		t.Fatal("zero passes accepted")
	}
}

// Figure 9's shape: the read-only re-access is faster under SwiftDir and
// S-MESI than under MESI.
func TestReadOnlySharedFasterUnderDefenses(t *testing.T) {
	mesi, err := RunReadOnly(1000, coherence.MESI, DerivO3CPU)
	if err != nil {
		t.Fatal(err)
	}
	swift, err := RunReadOnly(1000, coherence.SwiftDir, DerivO3CPU)
	if err != nil {
		t.Fatal(err)
	}
	smesi, err := RunReadOnly(1000, coherence.SMESI, DerivO3CPU)
	if err != nil {
		t.Fatal(err)
	}
	if swift.ExecCycles >= mesi.ExecCycles {
		t.Fatalf("SwiftDir %d !< MESI %d", swift.ExecCycles, mesi.ExecCycles)
	}
	if smesi.ExecCycles >= mesi.ExecCycles {
		t.Fatalf("S-MESI %d !< MESI %d", smesi.ExecCycles, mesi.ExecCycles)
	}
}

// Figure 10's shape: all three WAR apps are much slower under S-MESI and
// tie between MESI and SwiftDir, on both CPU models.
func TestWARAppsShape(t *testing.T) {
	for _, kind := range []CPUKind{TimingSimpleCPU, DerivO3CPU} {
		for _, app := range WARApps() {
			mesi, err := RunWAR(app, coherence.MESI, kind, 2)
			if err != nil {
				t.Fatal(err)
			}
			swift, err := RunWAR(app, coherence.SwiftDir, kind, 2)
			if err != nil {
				t.Fatal(err)
			}
			smesi, err := RunWAR(app, coherence.SMESI, kind, 2)
			if err != nil {
				t.Fatal(err)
			}
			if swift.ExecCycles != mesi.ExecCycles {
				t.Errorf("%s/%s: SwiftDir %d != MESI %d", kind, app.Name, swift.ExecCycles, mesi.ExecCycles)
			}
			if float64(smesi.ExecCycles) < 1.05*float64(mesi.ExecCycles) {
				t.Errorf("%s/%s: S-MESI %d not slower than MESI %d", kind, app.Name, smesi.ExecCycles, mesi.ExecCycles)
			}
		}
	}
}

func TestNewCPUPanicsOnUnknownKind(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("unknown CPU kind accepted")
		}
	}()
	newCPU("weird", nil, nil, nil)
}

var _ = mmu.PageSize // keep import for readability of addresses above
var _ = sim.NewRNG
