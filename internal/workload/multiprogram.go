package workload

import (
	"fmt"
	"strings"

	"repro/internal/coherence"
	"repro/internal/core"
	"repro/internal/cpu"
	"repro/internal/mmu"
	"repro/internal/sim"
)

// RunMultiprogram executes one single-threaded profile per core, each in
// its OWN process, with all of them dynamically linked against the same
// shared library — the exact setting the paper's introduction motivates:
// independent programs whose common library pages are the exploitable
// (and, under SwiftDir, efficiently protected) shared memory. Library
// accesses are genuinely cross-process: every process maps the same
// mmu.File, so the physical frames coincide while heaps stay private.
func RunMultiprogram(profiles []Profile, protocol coherence.Policy, kind CPUKind) (Result, error) {
	if len(profiles) == 0 {
		return Result{}, fmt.Errorf("workload: no programs")
	}
	cores := 1
	for cores < len(profiles) {
		cores *= 2
	}
	m, err := core.NewMachine(shardedDefault(core.DefaultConfig(cores, protocol)))
	if err != nil {
		return Result{}, err
	}

	// One shared library for everyone (libc, in the paper's story).
	libc := mmu.NewFile("libc.so.6", 0x11BC)

	rng := sim.NewRNG(0xA11)
	cpus := make([]cpu.CPU, 0, len(profiles))
	names := make([]string, 0, len(profiles))
	for i, p := range profiles {
		if err := p.Validate(); err != nil {
			return Result{}, err
		}
		if p.Threads != 1 {
			return Result{}, fmt.Errorf("workload: multiprogram profile %s must be single-threaded", p.Name)
		}
		proc := m.NewProcess()
		ctx := proc.AttachContext(i)
		heap := proc.MmapAnon(p.WorkingSetKB * 1024)
		var shared mmu.VAddr
		if p.SharedKB > 0 {
			shared = proc.MmapLibrary(libc, p.SharedKB*1024)
		}
		gp := p
		gp.BarrierEvery = 0
		gen := newGenerator(gp, heap, shared, rng.Uint64())
		cpus = append(cpus, newCPU(kind, ctx, gen, nil))
		names = append(names, p.Name)
	}

	cycles := cpu.Run(m, cpus)
	if err := m.CheckInvariants(); err != nil {
		return Result{}, fmt.Errorf("multiprogram [%s] on %s: %w",
			strings.Join(names, ","), protocol.Name(), err)
	}
	publishFastPath("mix("+strings.Join(names, "+")+")", protocol.Name(), m)
	publishShards("mix("+strings.Join(names, "+")+")", protocol.Name(), m)
	res := Result{
		Benchmark:  "mix(" + strings.Join(names, "+") + ")",
		Protocol:   protocol.Name(),
		CPU:        kind,
		ExecCycles: cycles,
		Instrs:     cpu.TotalInstructions(cpus),
	}
	for _, c := range cpus {
		res.PerThread = append(res.PerThread, c.Stats())
	}
	if cycles > 0 {
		res.IPC = float64(res.Instrs) / float64(cycles) / float64(len(profiles))
	}
	return res, nil
}

// SPECRateMixes returns representative 4-program mixes in the style of
// multiprogrammed SPECrate studies: each mix stresses a different blend of
// library sharing and write-after-read intensity. The SharedKB/SharedFrac
// of the constituent profiles control how much libc traffic the mix
// generates.
func SPECRateMixes() map[string][]Profile {
	byName := func(names ...string) []Profile {
		var out []Profile
		for _, n := range names {
			p, ok := ProfileByName(n)
			if !ok {
				panic("unknown profile " + n)
			}
			out = append(out, p)
		}
		return out
	}
	return map[string][]Profile{
		"lib-heavy": sharedBoost(byName("perlbench", "gcc", "xalancbmk", "omnetpp"), 0.30, 2048),
		"war-heavy": byName("xz", "wrf", "bwaves", "xalancbmk"),
		"mem-bound": byName("mcf", "lbm", "fotonik3d", "roms"),
		"compute":   byName("leela", "exchange2", "namd", "imagick"),
		"mixed":     sharedBoost(byName("gcc", "mcf", "povray", "xz"), 0.15, 1024),
	}
}

// sharedBoost raises the library footprint and access share of each
// profile (multiprogrammed processes lean harder on common libraries than
// our single-process defaults assume).
func sharedBoost(ps []Profile, frac float64, sharedKB int) []Profile {
	out := make([]Profile, len(ps))
	for i, p := range ps {
		p.SharedFrac = frac
		p.SharedKB = sharedKB
		out[i] = p
	}
	return out
}
