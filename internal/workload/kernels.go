package workload

import (
	"fmt"

	"repro/internal/coherence"
	"repro/internal/core"
	"repro/internal/cpu"
	"repro/internal/mmu"
	"repro/internal/sim"
)

// Kernel is a classic memory-system microbenchmark with a known
// performance signature, used to validate the substrates (MLP, DRAM row
// behaviour, TLB pressure, dependent-load latency) independently of the
// SPEC/PARSEC profiles.
type Kernel struct {
	Name string
	// trace generates the instruction stream over a working set of the
	// given size.
	trace func(heap mmu.VAddr, bytes int, rng *sim.RNG) []cpu.Instr
}

// Kernels returns the built-in suite.
func Kernels() []Kernel {
	return []Kernel{
		{
			// STREAM triad: a[i] = b[i] + s*c[i]. Sequential, massive
			// memory-level parallelism; bandwidth-bound.
			Name: "stream-triad",
			trace: func(heap mmu.VAddr, bytes int, rng *sim.RNG) []cpu.Instr {
				third := mmu.VAddr(bytes / 3 / 64 * 64)
				a, bb, c := heap, heap+third, heap+2*third
				n := int(third) / 8
				var tr []cpu.Instr
				for i := 0; i < n; i++ {
					off := mmu.VAddr(i * 8)
					tr = append(tr,
						cpu.Instr{Op: cpu.OpLoad, Addr: bb + off},
						cpu.Instr{Op: cpu.OpLoad, Addr: c + off},
						cpu.Instr{Op: cpu.OpFP, Dep1: 1, Dep2: 2}, // b[i] + s*c[i]
						cpu.Instr{Op: cpu.OpStore, Addr: a + off, Dep1: 1, Value: uint64(i)},
					)
				}
				return tr
			},
		},
		{
			// GUPS: random read-modify-write over the whole table. No
			// locality, heavy TLB and DRAM row-conflict pressure.
			Name: "gups",
			trace: func(heap mmu.VAddr, bytes int, rng *sim.RNG) []cpu.Instr {
				blocks := bytes / 64
				updates := blocks / 2
				var tr []cpu.Instr
				for i := 0; i < updates; i++ {
					addr := heap + mmu.VAddr(rng.Intn(blocks)*64)
					tr = append(tr,
						cpu.Instr{Op: cpu.OpLoad, Addr: addr},
						cpu.Instr{Op: cpu.OpInt, Dep1: 1}, // xor update
						cpu.Instr{Op: cpu.OpStore, Addr: addr, Dep1: 1, Value: uint64(i)},
					)
				}
				return tr
			},
		},
		{
			// Pointer chase: each load's address depends on the previous
			// load's value. Zero memory-level parallelism; pure latency.
			Name: "pointer-chase",
			trace: func(heap mmu.VAddr, bytes int, rng *sim.RNG) []cpu.Instr {
				blocks := bytes / 64
				hops := blocks / 2
				var tr []cpu.Instr
				for i := 0; i < hops; i++ {
					addr := heap + mmu.VAddr(rng.Intn(blocks)*64)
					// Dep1=1 chains every load to its predecessor.
					tr = append(tr, cpu.Instr{Op: cpu.OpLoad, Addr: addr, Dep1: 1})
				}
				return tr
			},
		},
	}
}

// KernelByName resolves a kernel.
func KernelByName(name string) (Kernel, bool) {
	for _, k := range Kernels() {
		if k.Name == name {
			return k, true
		}
	}
	return Kernel{}, false
}

// RunKernel executes a kernel single-threaded over a working set of
// `bytes` on the given protocol and CPU model.
func RunKernel(k Kernel, protocol coherence.Policy, kind CPUKind, bytes int) (Result, error) {
	if bytes < 4096 {
		return Result{}, fmt.Errorf("workload: kernel working set %d too small", bytes)
	}
	m, err := core.NewMachine(shardedDefault(core.DefaultConfig(1, protocol)))
	if err != nil {
		return Result{}, err
	}
	proc := m.NewProcess()
	heap := proc.MmapAnon(bytes)
	ctx := proc.AttachContext(0)
	rng := sim.NewRNG(0x6E12)
	c := newCPU(kind, ctx, &cpu.SliceTrace{Instrs: k.trace(heap, bytes, rng)}, nil)
	cycles := cpu.Run(m, []cpu.CPU{c})
	if err := m.CheckInvariants(); err != nil {
		return Result{}, err
	}
	publishFastPath(k.Name, protocol.Name(), m)
	publishShards(k.Name, protocol.Name(), m)
	res := Result{
		Benchmark:  k.Name,
		Protocol:   protocol.Name(),
		CPU:        kind,
		ExecCycles: cycles,
		Instrs:     c.Stats().Instructions,
		IPC:        c.Stats().IPC(),
		PerThread:  []cpu.Stats{c.Stats()},
	}
	return res, nil
}
