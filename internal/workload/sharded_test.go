package workload

import (
	"reflect"
	"testing"

	"repro/internal/campaign"
	"repro/internal/coherence"
	"repro/internal/core"
)

// runAtShards executes profile p with the machine's engine split across n
// shards (0 = the plain sequential engine) and returns the full Result.
func runAtShards(t *testing.T, p Profile, n int, kind CPUKind) Result {
	t.Helper()
	cores := 1
	for cores < p.Threads {
		cores *= 2
	}
	cfg := core.DefaultConfig(cores, coherence.SwiftDir)
	cfg.Shards = n
	r, _, err := RunDetailed(p, cfg, kind)
	if err != nil {
		t.Fatalf("shards=%d: %v", n, err)
	}
	return r
}

// TestShardedWorkloadEquivalence runs representative profiles — a
// single-threaded SPEC profile, a multi-threaded PARSEC profile with
// trace barriers (which forces sequential-stepping mode), and a
// barrier-free multi-threaded profile — at shards 1, 2, 4 and 8 and
// requires every Result field (cycles, IPC, per-thread stats) to be
// identical to the sequential run. Sharding is a performance knob, never
// a behaviour knob.
func TestShardedWorkloadEquivalence(t *testing.T) {
	profiles := []Profile{
		SPEC2017()[2].Scale(0.05),
		PARSEC3()[3].Scale(0.03), // dedup: 4 threads, barriers
	}
	noBar := PARSEC3()[1].Scale(0.03)
	noBar.BarrierEvery = 0
	profiles = append(profiles, noBar)

	for _, p := range profiles {
		p := p
		t.Run(p.Name, func(t *testing.T) {
			want := runAtShards(t, p, 1, DerivO3CPU)
			for _, n := range []int{2, 4, 8} {
				got := runAtShards(t, p, n, DerivO3CPU)
				if !reflect.DeepEqual(want, got) {
					t.Errorf("shards=%d diverged from sequential:\nwant %+v\ngot  %+v", n, want, got)
				}
			}
		})
	}
}

// TestShardedKernelEquivalence covers the kernel runner, driven through
// the campaign-wide knob exactly as the CLI -shards flag sets it.
func TestShardedKernelEquivalence(t *testing.T) {
	defer campaign.SetShards(0)
	for _, k := range Kernels() {
		k := k
		t.Run(k.Name, func(t *testing.T) {
			results := map[int]Result{}
			for _, n := range []int{1, 4} {
				campaign.SetShards(n)
				r, err := RunKernel(k, coherence.SwiftDir, DerivO3CPU, 32*1024)
				if err != nil {
					t.Fatalf("shards=%d: %v", n, err)
				}
				results[n] = r
			}
			if !reflect.DeepEqual(results[1], results[4]) {
				t.Errorf("shards=4 diverged:\nwant %+v\ngot  %+v", results[1], results[4])
			}
		})
	}
}

// TestShardedParallelMode exercises the opt-in parallel-epoch path:
// NoFastPath plus Prefault on a barrier-free multi-threaded profile makes
// the machine eligible for true concurrent execution, and the results and
// final architectural memory image must still match the sequential engine
// bit for bit.
func TestShardedParallelMode(t *testing.T) {
	p := PARSEC3()[1].Scale(0.04)
	p.BarrierEvery = 0

	run := func(n int) (Result, string) {
		cfg := core.DefaultConfig(4, coherence.SwiftDir)
		cfg.Shards = n
		cfg.NoFastPath = true
		cfg.Prefault = true
		r, m, err := RunDetailed(p, cfg, DerivO3CPU)
		if err != nil {
			t.Fatalf("shards=%d: %v", n, err)
		}
		if n > 1 {
			if !m.CanRunParallel() {
				t.Fatalf("shards=%d: machine not parallel-eligible (want NoFastPath+Prefault to unlock epochs)", n)
			}
			sh := m.Sys.ShardedEngine()
			if sh == nil {
				t.Fatalf("shards=%d: no sharded engine", n)
			}
			if sh.Barriers() == 0 {
				t.Errorf("shards=%d: zero epoch barriers — parallel path never engaged", n)
			}
		}
		return r, m.ArchMemHash()
	}

	wantRes, wantHash := run(1)
	for _, n := range []int{2, 4} {
		gotRes, gotHash := run(n)
		if !reflect.DeepEqual(wantRes, gotRes) {
			t.Errorf("shards=%d result diverged:\nwant %+v\ngot  %+v", n, wantRes, gotRes)
		}
		if gotHash != wantHash {
			t.Errorf("shards=%d memory image hash %s != sequential %s", n, gotHash, wantHash)
		}
	}
}

// TestShardedReplayAndMicroEquivalence pins the remaining runners (trace
// replay with barriers, the Figure 9 read-only micro) at shards=4 against
// the sequential engine via the campaign knob, exactly as the CLIs set it.
func TestShardedReplayAndMicroEquivalence(t *testing.T) {
	runBoth := func(f func() (Result, error)) (Result, Result) {
		campaign.SetShards(0)
		seq, err := f()
		if err != nil {
			t.Fatal(err)
		}
		campaign.SetShards(4)
		defer campaign.SetShards(0)
		shr, err := f()
		if err != nil {
			t.Fatal(err)
		}
		return seq, shr
	}

	t.Run("readonly", func(t *testing.T) {
		seq, shr := runBoth(func() (Result, error) {
			return RunReadOnly(200, coherence.SwiftDir, DerivO3CPU)
		})
		if !reflect.DeepEqual(seq, shr) {
			t.Errorf("readonly diverged:\nwant %+v\ngot  %+v", seq, shr)
		}
	})

	t.Run("war", func(t *testing.T) {
		seq, shr := runBoth(func() (Result, error) {
			return RunWAR(WARApps()[0], coherence.SwiftDir, DerivO3CPU, 1)
		})
		if !reflect.DeepEqual(seq, shr) {
			t.Errorf("war diverged:\nwant %+v\ngot  %+v", seq, shr)
		}
	})
}
