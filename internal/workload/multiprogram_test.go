package workload

import (
	"strings"
	"testing"

	"repro/internal/coherence"
)

func TestMultiprogramSmoke(t *testing.T) {
	mix := SPECRateMixes()["lib-heavy"]
	var small []Profile
	for _, p := range mix {
		small = append(small, p.Scale(0.02))
	}
	r, err := RunMultiprogram(small, coherence.SwiftDir, DerivO3CPU)
	if err != nil {
		t.Fatal(err)
	}
	if len(r.PerThread) != 4 || r.Instrs == 0 {
		t.Fatalf("result %+v", r)
	}
	if !strings.Contains(r.Benchmark, "perlbench") {
		t.Fatalf("benchmark label %q", r.Benchmark)
	}
}

func TestMultiprogramValidation(t *testing.T) {
	if _, err := RunMultiprogram(nil, coherence.MESI, DerivO3CPU); err == nil {
		t.Fatal("empty mix accepted")
	}
	multi := PARSEC3()[0] // 4 threads: not allowed per program
	if _, err := RunMultiprogram([]Profile{multi}, coherence.MESI, DerivO3CPU); err == nil {
		t.Fatal("multithreaded profile accepted")
	}
}

func TestSPECRateMixesWellFormed(t *testing.T) {
	mixes := SPECRateMixes()
	if len(mixes) != 5 {
		t.Fatalf("mixes = %d", len(mixes))
	}
	for name, ps := range mixes {
		if len(ps) != 4 {
			t.Errorf("%s: %d programs", name, len(ps))
		}
		for _, p := range ps {
			if err := p.Validate(); err != nil {
				t.Errorf("%s/%s: %v", name, p.Name, err)
			}
		}
	}
}

// The multiprogrammed lib-heavy mix is where SwiftDir's cross-process
// library sharing gains should be visible: faster than (or equal to) MESI.
func TestMultiprogramSwiftDirNotSlower(t *testing.T) {
	var small []Profile
	for _, p := range SPECRateMixes()["lib-heavy"] {
		small = append(small, p.Scale(0.05))
	}
	mesi, err := RunMultiprogram(small, coherence.MESI, DerivO3CPU)
	if err != nil {
		t.Fatal(err)
	}
	swift, err := RunMultiprogram(small, coherence.SwiftDir, DerivO3CPU)
	if err != nil {
		t.Fatal(err)
	}
	if float64(swift.ExecCycles) > 1.01*float64(mesi.ExecCycles) {
		t.Fatalf("SwiftDir %d much slower than MESI %d on the lib-heavy mix", swift.ExecCycles, mesi.ExecCycles)
	}
	t.Logf("MESI=%d SwiftDir=%d (%.3f)", mesi.ExecCycles, swift.ExecCycles, float64(swift.ExecCycles)/float64(mesi.ExecCycles))
}
