package workload

// SPEC2017 returns profiles standing in for the single-threaded SPECrate
// 2017 Integer and Floating Point benchmarks of Figure 7. Parameters
// follow the published memory-behaviour characterizations of each
// benchmark qualitatively: mcf/lbm are memory-bound with poor locality,
// xalancbmk and xz are store-heavy with substantial write-after-read,
// exchange2/leela are compute-bound, bwaves/cactuBSSN/fotonik3d/roms are
// streaming FP codes, and so on. The WARFrac knob is the protocol-
// sensitive axis: S-MESI's upgrade cost scales with it.
func SPEC2017() []Profile {
	const instrs = 200_000
	mk := func(name string, mem, store, war, shared, seq, fp float64, wsKB int, seed uint64) Profile {
		// Branchy integer codes mispredict more than streaming FP codes.
		miss := 0.04
		if fp > 0.3 {
			miss = 0.01
		}
		return Profile{
			Name: name, Suite: "SPEC2017", Threads: 1, Instrs: instrs,
			MemFrac: mem, StoreFrac: store, WARFrac: war,
			SharedFrac: shared, SeqFrac: seq, FPFrac: fp, DepFrac: 0.35,
			MissRate:     miss,
			WorkingSetKB: wsKB, SharedKB: 256, Seed: seed,
		}
	}
	return []Profile{
		// SPECrate 2017 Integer.
		mk("perlbench", 0.38, 0.30, 0.30, 0.06, 0.55, 0.02, 96, 101),
		mk("gcc", 0.40, 0.28, 0.25, 0.08, 0.45, 0.02, 192, 102),
		mk("mcf", 0.52, 0.18, 0.10, 0.02, 0.10, 0.02, 512, 103),
		mk("omnetpp", 0.46, 0.24, 0.20, 0.04, 0.20, 0.03, 384, 104),
		mk("xalancbmk", 0.44, 0.34, 0.42, 0.06, 0.35, 0.02, 256, 105),
		mk("x264", 0.36, 0.26, 0.30, 0.03, 0.70, 0.15, 128, 106),
		mk("deepsjeng", 0.30, 0.22, 0.18, 0.02, 0.40, 0.02, 160, 107),
		mk("leela", 0.26, 0.18, 0.15, 0.02, 0.45, 0.05, 64, 108),
		mk("exchange2", 0.18, 0.15, 0.10, 0.01, 0.60, 0.02, 48, 109),
		mk("xz", 0.42, 0.36, 0.40, 0.03, 0.50, 0.02, 320, 110),
		// SPECrate 2017 Floating Point.
		mk("bwaves", 0.48, 0.30, 0.38, 0.02, 0.85, 0.45, 448, 111),
		mk("cactuBSSN", 0.44, 0.28, 0.30, 0.02, 0.75, 0.50, 384, 112),
		mk("namd", 0.34, 0.22, 0.20, 0.02, 0.60, 0.55, 96, 113),
		mk("parest", 0.40, 0.26, 0.25, 0.03, 0.55, 0.40, 256, 114),
		mk("povray", 0.30, 0.26, 0.28, 0.04, 0.40, 0.35, 64, 115),
		mk("lbm", 0.54, 0.38, 0.35, 0.01, 0.90, 0.40, 512, 116),
		mk("wrf", 0.46, 0.32, 0.40, 0.02, 0.70, 0.45, 320, 117),
		mk("blender", 0.34, 0.28, 0.30, 0.05, 0.45, 0.35, 192, 118),
		mk("cam4", 0.42, 0.28, 0.28, 0.03, 0.65, 0.40, 288, 119),
		mk("imagick", 0.32, 0.24, 0.26, 0.02, 0.75, 0.40, 128, 120),
		mk("nab", 0.36, 0.24, 0.22, 0.02, 0.55, 0.45, 112, 121),
		mk("fotonik3d", 0.50, 0.30, 0.32, 0.01, 0.88, 0.45, 480, 122),
		mk("roms", 0.48, 0.30, 0.34, 0.01, 0.85, 0.45, 416, 123),
	}
}

// PARSEC3 returns profiles standing in for the multi-threaded PARSEC 3.0
// benchmarks of Figure 8 (four threads, ROI only, simmedium-scaled).
// SharedFrac models read sharing of the input data (write-protected
// pages); BarrierEvery models the synchronization density of each
// benchmark's parallel kernel.
func PARSEC3() []Profile {
	const instrs = 120_000
	mk := func(name string, mem, store, war, shared, seq, fp float64, wsKB, sharedKB, barrier int, seed uint64) Profile {
		return Profile{
			Name: name, Suite: "PARSEC3", Threads: 4, Instrs: instrs,
			MemFrac: mem, StoreFrac: store, WARFrac: war,
			SharedFrac: shared, SeqFrac: seq, FPFrac: fp, DepFrac: 0.3,
			WorkingSetKB: wsKB, SharedKB: sharedKB, BarrierEvery: barrier, Seed: seed,
		}
	}
	// SharedKB beyond the 8 MB LLC (canneal, streamcluster, dedup,
	// freqmine, ferret) models the simmedium inputs whose shared data do
	// not stay LLC-resident, so MESI repeatedly re-grants exclusivity and
	// pays three-hop re-reads — the source of SwiftDir's multi-threaded
	// gains in Figure 8.
	return []Profile{
		mk("blackscholes", 0.30, 0.20, 0.20, 0.30, 0.80, 0.50, 64, 512, 20000, 201),
		mk("bodytrack", 0.36, 0.24, 0.22, 0.25, 0.50, 0.35, 128, 1024, 8000, 202),
		mk("canneal", 0.50, 0.22, 0.12, 0.35, 0.10, 0.05, 512, 12288, 0, 203),
		mk("dedup", 0.44, 0.32, 0.30, 0.40, 0.45, 0.02, 384, 8192, 6000, 204),
		mk("facesim", 0.42, 0.28, 0.26, 0.20, 0.65, 0.50, 320, 2048, 10000, 205),
		mk("ferret", 0.40, 0.26, 0.22, 0.35, 0.40, 0.25, 256, 6144, 5000, 206),
		mk("fluidanimate", 0.44, 0.30, 0.30, 0.25, 0.60, 0.45, 288, 1536, 4000, 207),
		mk("freqmine", 0.42, 0.30, 0.28, 0.38, 0.35, 0.02, 384, 8192, 0, 208),
		mk("raytrace", 0.36, 0.22, 0.18, 0.30, 0.45, 0.45, 192, 2048, 12000, 209),
		mk("streamcluster", 0.48, 0.24, 0.16, 0.45, 0.75, 0.30, 448, 10240, 3000, 210),
		mk("swaptions", 0.28, 0.22, 0.24, 0.15, 0.55, 0.50, 96, 512, 0, 211),
		mk("vips", 0.38, 0.28, 0.26, 0.25, 0.70, 0.30, 224, 3072, 7000, 212),
		mk("x264", 0.36, 0.26, 0.28, 0.30, 0.70, 0.20, 160, 4096, 9000, 213),
	}
}

// ProfileByName finds a profile in the SPEC and PARSEC suites.
func ProfileByName(name string) (Profile, bool) {
	for _, p := range SPEC2017() {
		if p.Name == name {
			return p, true
		}
	}
	for _, p := range PARSEC3() {
		if p.Name == name && p.Suite == "PARSEC3" {
			return p, true
		}
	}
	return Profile{}, false
}
