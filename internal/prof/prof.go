// Package prof centralizes the -cpuprofile/-memprofile plumbing shared
// by the CLI tools (swiftdir-sim, swiftdir-bench, swiftdir-trace,
// swiftdir-attack), so every frontend exposes the same two flags with
// the same semantics: the CPU profile covers the whole run, and the heap
// profile is written on exit after a GC flushes dead objects.
package prof

import (
	"flag"
	"os"
	"runtime"
	"runtime/pprof"
)

// Flags holds the two profiling destinations.
type Flags struct {
	CPU string
	Mem string
}

// Register installs the -cpuprofile/-memprofile flags on fs.
func (f *Flags) Register(fs *flag.FlagSet) {
	fs.StringVar(&f.CPU, "cpuprofile", "", "write a CPU profile to this file")
	fs.StringVar(&f.Mem, "memprofile", "", "write a heap profile to this file on exit")
}

// Start begins CPU profiling if requested and returns a stop function
// that finalizes the CPU profile and writes the heap profile. Defer the
// stop function immediately; with neither flag set both Start and stop
// are no-ops.
func (f *Flags) Start() (stop func() error, err error) {
	var cpuFile *os.File
	if f.CPU != "" {
		fd, err := os.Create(f.CPU)
		if err != nil {
			return nil, err
		}
		if err := pprof.StartCPUProfile(fd); err != nil {
			fd.Close()
			return nil, err
		}
		cpuFile = fd
	}
	return func() error {
		if cpuFile != nil {
			pprof.StopCPUProfile()
			if err := cpuFile.Close(); err != nil {
				return err
			}
		}
		if f.Mem != "" {
			fd, err := os.Create(f.Mem)
			if err != nil {
				return err
			}
			defer fd.Close()
			runtime.GC() // flush dead objects so the profile shows live heap
			return pprof.WriteHeapProfile(fd)
		}
		return nil
	}, nil
}
