package mmu

import (
	"testing"
	"testing/quick"
)

func TestTLBHitMissAccounting(t *testing.T) {
	_, as := newAS()
	tlb := NewTLB(64)
	base, _ := as.Mmap(PageSize, ProtRead|ProtWrite, MapPrivate|MapAnonymous, nil, 0)

	_, hit, err := tlb.Translate(as, base, false)
	if err != nil || hit {
		t.Fatalf("first access: hit=%v err=%v", hit, err)
	}
	_, hit, err = tlb.Translate(as, base+100, false)
	if err != nil || !hit {
		t.Fatalf("second access: hit=%v err=%v", hit, err)
	}
	if tlb.Hits != 1 || tlb.Misses != 1 {
		t.Fatalf("hits=%d misses=%d", tlb.Hits, tlb.Misses)
	}
}

func TestTLBCarriesWriteProtectionBit(t *testing.T) {
	_, as := newAS()
	f := NewFile("lib.so", 7)
	tlb := NewTLB(64)
	base, _ := as.Mmap(PageSize, ProtRead, MapShared, f, 0)

	r, _, err := tlb.Translate(as, base, false)
	if err != nil || !r.WriteProtected {
		t.Fatalf("miss path: wp=%v err=%v", r.WriteProtected, err)
	}
	r, hit, err := tlb.Translate(as, base+8, false)
	if err != nil || !hit || !r.WriteProtected {
		t.Fatalf("hit path: hit=%v wp=%v err=%v", hit, r.WriteProtected, err)
	}
}

func TestTLBLRUEviction(t *testing.T) {
	_, as := newAS()
	tlb := NewTLB(4)
	base, _ := as.Mmap(8*PageSize, ProtRead|ProtWrite, MapPrivate|MapAnonymous, nil, 0)
	for i := 0; i < 4; i++ {
		tlb.Translate(as, base+VAddr(i)*PageSize, false)
	}
	if tlb.Size() != 4 {
		t.Fatalf("size = %d, want 4", tlb.Size())
	}
	// Touch page 0 so page 1 is LRU, then insert page 4.
	tlb.Translate(as, base, false)
	tlb.Translate(as, base+4*PageSize, false)
	if tlb.Size() != 4 {
		t.Fatalf("size = %d after eviction, want 4", tlb.Size())
	}
	// Page 0 should still hit; page 1 should miss.
	before := tlb.Hits
	tlb.Translate(as, base, false)
	if tlb.Hits != before+1 {
		t.Fatal("recently used entry evicted")
	}
	beforeMiss := tlb.Misses
	tlb.Translate(as, base+PageSize, false)
	if tlb.Misses != beforeMiss+1 {
		t.Fatal("LRU entry not evicted")
	}
}

func TestTLBWriteToCachedWriteProtectedEntryTriggersCoW(t *testing.T) {
	pm := NewPhysMem(0)
	f := NewFile("libdata.so", 8)
	as := NewAddressSpace(pm)
	tlb := NewTLB(64)
	base, _ := as.Mmap(PageSize, ProtRead|ProtWrite, MapPrivate, f, 0)

	// Load first: TLB caches the write-protected translation.
	r, _, _ := tlb.Translate(as, base, false)
	if !r.WriteProtected {
		t.Fatal("private file page not write-protected on load")
	}
	// Store: must fault through, CoW, and refill.
	w, hit, err := tlb.Translate(as, base, true)
	if err != nil {
		t.Fatal(err)
	}
	if hit {
		t.Fatal("write to write-protected cached entry reported as TLB hit")
	}
	if !w.CoW || w.WriteProtected {
		t.Fatalf("CoW path wrong: %+v", w)
	}
	// Subsequent store hits with the writable translation.
	w2, hit, err := tlb.Translate(as, base, true)
	if err != nil || !hit || w2.WriteProtected {
		t.Fatalf("post-CoW store: hit=%v wp=%v err=%v", hit, w2.WriteProtected, err)
	}
	if w2.PAddr != w.PAddr {
		t.Fatal("post-CoW translation moved")
	}
}

func TestTLBFlushAndInvalidate(t *testing.T) {
	_, as := newAS()
	tlb := NewTLB(8)
	base, _ := as.Mmap(2*PageSize, ProtRead|ProtWrite, MapPrivate|MapAnonymous, nil, 0)
	tlb.Translate(as, base, false)
	tlb.Translate(as, base+PageSize, false)
	tlb.InvalidatePage(base)
	if tlb.Size() != 1 {
		t.Fatalf("size after invalidate = %d, want 1", tlb.Size())
	}
	tlb.Flush()
	if tlb.Size() != 0 || tlb.Flushes != 1 {
		t.Fatalf("flush: size=%d flushes=%d", tlb.Size(), tlb.Flushes)
	}
}

func TestTLBErrorsPropagate(t *testing.T) {
	_, as := newAS()
	tlb := NewTLB(8)
	if _, _, err := tlb.Translate(as, 0x1, false); err == nil {
		t.Fatal("unmapped access through TLB did not error")
	}
}

func TestNewTLBPanicsOnZero(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("NewTLB(0) did not panic")
		}
	}()
	NewTLB(0)
}

// Property: TLB-cached translations always agree with direct page-table
// walks, for any access pattern over a small set of pages.
func TestTLBConsistencyProperty(t *testing.T) {
	f := func(accesses []uint8) bool {
		pm := NewPhysMem(0)
		as := NewAddressSpace(pm)
		tlb := NewTLB(3) // tiny, to force evictions
		base, _ := as.Mmap(8*PageSize, ProtRead|ProtWrite, MapPrivate|MapAnonymous, nil, 0)
		for _, a := range accesses {
			page := int(a) % 8
			isWrite := a%2 == 0
			v := base + VAddr(page)*PageSize + VAddr(a%64)
			got, _, err := tlb.Translate(as, v, isWrite)
			if err != nil {
				return false
			}
			want, err := as.Translate(v, isWrite)
			if err != nil {
				return false
			}
			if got.PAddr != want.PAddr || got.WriteProtected != want.WriteProtected {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}
