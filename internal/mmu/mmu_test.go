package mmu

import (
	"errors"
	"testing"
	"testing/quick"
)

func newAS() (*PhysMem, *AddressSpace) {
	pm := NewPhysMem(0x100)
	return pm, NewAddressSpace(pm)
}

func TestMmapArgumentValidation(t *testing.T) {
	_, as := newAS()
	f := NewFile("libc.so", 1)
	cases := []struct {
		name   string
		len    int
		prot   Prot
		flags  MapFlags
		file   *File
		offset uint64
	}{
		{"zero length", 0, ProtRead, MapPrivate, f, 0},
		{"both private and shared", PageSize, ProtRead, MapPrivate | MapShared, f, 0},
		{"neither private nor shared", PageSize, ProtRead, 0, f, 0},
		{"file-backed without file", PageSize, ProtRead, MapPrivate, nil, 0},
		{"unaligned offset", PageSize, ProtRead, MapPrivate, f, 100},
	}
	for _, c := range cases {
		if _, err := as.Mmap(c.len, c.prot, c.flags, c.file, c.offset); !errors.Is(err, ErrBadMap) {
			t.Errorf("%s: err = %v, want ErrBadMap", c.name, err)
		}
	}
}

// The paper's §IV-A2 R/W-bit rules, as a table.
func TestMkPTEWriteProtectionRules(t *testing.T) {
	f := NewFile("libxul.so", 2)
	cases := []struct {
		name       string
		prot       Prot
		flags      MapFlags
		file       *File
		wantRW     bool // PTE.Writable
		wantCoW    bool
		wantWPView bool // Result.WriteProtected
	}{
		{"library text: PROT_READ MAP_SHARED", ProtRead | ProtExec, MapShared, f, false, false, true},
		{"library data: PROT_READ|WRITE MAP_PRIVATE", ProtRead | ProtWrite, MapPrivate, f, false, true, true},
		{"read-only private file", ProtRead, MapPrivate, f, false, false, true},
		{"writable shared file", ProtRead | ProtWrite, MapShared, f, true, false, false},
		{"anonymous private heap", ProtRead | ProtWrite, MapPrivate | MapAnonymous, nil, true, false, false},
		{"anonymous shared read-only", ProtRead, MapShared | MapAnonymous, nil, false, false, true},
	}
	for _, c := range cases {
		_, as := newAS()
		base, err := as.Mmap(PageSize, c.prot, c.flags, c.file, 0)
		if err != nil {
			t.Fatalf("%s: mmap: %v", c.name, err)
		}
		res, err := as.Translate(base, false)
		if err != nil {
			t.Fatalf("%s: translate: %v", c.name, err)
		}
		pte := as.PTEOf(base)
		if pte.Writable != c.wantRW || pte.CoW != c.wantCoW {
			t.Errorf("%s: PTE writable=%v cow=%v, want %v/%v",
				c.name, pte.Writable, pte.CoW, c.wantRW, c.wantCoW)
		}
		if res.WriteProtected != c.wantWPView {
			t.Errorf("%s: WriteProtected=%v, want %v", c.name, res.WriteProtected, c.wantWPView)
		}
	}
}

func TestDemandPagingFaultsOncePerPage(t *testing.T) {
	_, as := newAS()
	base, _ := as.Mmap(3*PageSize, ProtRead|ProtWrite, MapPrivate|MapAnonymous, nil, 0)
	r1, err := as.Translate(base, false)
	if err != nil || !r1.Faulted {
		t.Fatalf("first touch: res=%+v err=%v", r1, err)
	}
	r2, err := as.Translate(base+8, false)
	if err != nil || r2.Faulted {
		t.Fatalf("second touch faulted again: %+v err=%v", r2, err)
	}
	if as.Faults != 1 {
		t.Fatalf("faults = %d, want 1", as.Faults)
	}
	as.Translate(base+PageSize, false)
	as.Translate(base+2*PageSize, false)
	if as.Faults != 3 {
		t.Fatalf("faults = %d, want 3", as.Faults)
	}
}

func TestUnmappedAccessFails(t *testing.T) {
	_, as := newAS()
	if _, err := as.Translate(0xDEAD000, false); !errors.Is(err, ErrUnmapped) {
		t.Fatalf("err = %v, want ErrUnmapped", err)
	}
}

func TestTranslationOffsetsWithinPage(t *testing.T) {
	_, as := newAS()
	base, _ := as.Mmap(PageSize, ProtRead|ProtWrite, MapPrivate|MapAnonymous, nil, 0)
	r1, _ := as.Translate(base, false)
	r2, _ := as.Translate(base+123, false)
	if r2.PAddr != r1.PAddr+123 {
		t.Fatalf("offsets not preserved: %#x vs %#x", r1.PAddr, r2.PAddr)
	}
}

func TestWriteToReadOnlySharedFaults(t *testing.T) {
	_, as := newAS()
	f := NewFile("lib.so", 3)
	base, _ := as.Mmap(PageSize, ProtRead, MapShared, f, 0)
	if _, err := as.Translate(base, true); !errors.Is(err, ErrWriteProtection) {
		t.Fatalf("err = %v, want ErrWriteProtection", err)
	}
}

func TestCopyOnWriteDuplicatesFrame(t *testing.T) {
	pm := NewPhysMem(0)
	f := NewFile("libdata.so", 4)
	as1 := NewAddressSpace(pm)
	as2 := NewAddressSpace(pm)
	b1, _ := as1.Mmap(PageSize, ProtRead|ProtWrite, MapPrivate, f, 0)
	b2, _ := as2.Mmap(PageSize, ProtRead|ProtWrite, MapPrivate, f, 0)

	r1, _ := as1.Translate(b1, false)
	r2, _ := as2.Translate(b2, false)
	if r1.PAddr != r2.PAddr {
		t.Fatalf("private file mappings should initially share the frame: %#x vs %#x", r1.PAddr, r2.PAddr)
	}

	w, err := as1.Translate(b1, true)
	if err != nil {
		t.Fatalf("CoW write failed: %v", err)
	}
	if !w.CoW {
		t.Fatal("write did not report CoW")
	}
	if w.PAddr == r2.PAddr {
		t.Fatal("CoW did not move the writer to a new frame")
	}
	if w.WriteProtected {
		t.Fatal("page still write-protected after CoW")
	}
	// The other process keeps the original frame.
	r2b, _ := as2.Translate(b2, false)
	if r2b.PAddr != r2.PAddr {
		t.Fatal("CoW in one process moved the other process's frame")
	}
	if as1.CoWFaults != 1 {
		t.Fatalf("CoWFaults = %d, want 1", as1.CoWFaults)
	}
	// Content was copied.
	c1, _ := as1.ReadPage(b1)
	c2, _ := as2.ReadPage(b2)
	if c1 != c2 {
		t.Fatalf("CoW copy content %#x != original %#x", c1, c2)
	}
}

func TestSharedLibraryPagesSharedAcrossProcesses(t *testing.T) {
	pm := NewPhysMem(0)
	lib := NewFile("libc.so", 5)
	var addrs []PAddr
	for i := 0; i < 3; i++ {
		as := NewAddressSpace(pm)
		base, _ := as.Mmap(4*PageSize, ProtRead|ProtExec, MapShared, lib, 0)
		r, err := as.Translate(base+2*PageSize, false)
		if err != nil {
			t.Fatal(err)
		}
		if !r.WriteProtected {
			t.Fatal("shared library text not write-protected")
		}
		addrs = append(addrs, r.PAddr)
	}
	if addrs[0] != addrs[1] || addrs[1] != addrs[2] {
		t.Fatalf("library page not shared: %v", addrs)
	}
	// Three mappers plus the page cache's own reference.
	if pm.Refs(uint64(addrs[0])/PageSize) != 4 {
		t.Fatalf("refs = %d, want 4", pm.Refs(uint64(addrs[0])/PageSize))
	}
}

func TestFileOffsetSelectsDistinctPages(t *testing.T) {
	pm := NewPhysMem(0)
	lib := NewFile("lib.so", 6)
	as := NewAddressSpace(pm)
	b0, _ := as.Mmap(PageSize, ProtRead, MapShared, lib, 0)
	b1, _ := as.Mmap(PageSize, ProtRead, MapShared, lib, PageSize)
	r0, _ := as.Translate(b0, false)
	r1, _ := as.Translate(b1, false)
	if r0.PAddr == r1.PAddr {
		t.Fatal("different file offsets map to same frame")
	}
	// Same offset in another space shares.
	as2 := NewAddressSpace(pm)
	b2, _ := as2.Mmap(PageSize, ProtRead, MapShared, lib, PageSize)
	r2, _ := as2.Translate(b2, false)
	if r2.PAddr != r1.PAddr {
		t.Fatal("same file offset not shared across spaces")
	}
}

func TestWriteReadPageRoundTrip(t *testing.T) {
	_, as := newAS()
	base, _ := as.Mmap(PageSize, ProtRead|ProtWrite, MapPrivate|MapAnonymous, nil, 0)
	if err := as.WritePage(base, 0xABCD); err != nil {
		t.Fatal(err)
	}
	got, err := as.ReadPage(base)
	if err != nil || got != 0xABCD {
		t.Fatalf("ReadPage = %#x, %v", got, err)
	}
}

func TestKSMMergesIdenticalPages(t *testing.T) {
	pm := NewPhysMem(0)
	ksm := NewKSM(pm)
	var spaces []*AddressSpace
	var bases []VAddr
	for i := 0; i < 3; i++ {
		as := NewAddressSpace(pm)
		base, _ := as.Mmap(2*PageSize, ProtRead|ProtWrite, MapPrivate|MapAnonymous, nil, 0)
		// Page 0: identical everywhere. Page 1: unique.
		as.WritePage(base, 0x5A4E)
		as.WritePage(base+PageSize, uint64(0x100+i))
		ksm.Register(as)
		spaces = append(spaces, as)
		bases = append(bases, base)
	}
	live := pm.LivePages()
	merged := ksm.Scan()
	if merged != 2 {
		t.Fatalf("merged = %d, want 2", merged)
	}
	if pm.LivePages() != live-2 {
		t.Fatalf("live pages %d, want %d", pm.LivePages(), live-2)
	}
	// All three now share one frame, write-protected with CoW armed.
	var pfns []uint64
	for i, as := range spaces {
		pte := as.PTEOf(bases[i])
		if pte.Writable || !pte.CoW {
			t.Fatalf("space %d: merged page writable=%v cow=%v", i, pte.Writable, pte.CoW)
		}
		res, _ := as.Translate(bases[i], false)
		if !res.WriteProtected {
			t.Fatalf("space %d: merged page not write-protected in translation", i)
		}
		pfns = append(pfns, pte.PFN)
	}
	if pfns[0] != pfns[1] || pfns[1] != pfns[2] {
		t.Fatalf("merged pages not sharing a frame: %v", pfns)
	}
	// Unique pages untouched.
	for i, as := range spaces {
		c, _ := as.ReadPage(bases[i] + PageSize)
		if c != uint64(0x100+i) {
			t.Fatalf("space %d: unique page content changed to %#x", i, c)
		}
	}
}

func TestKSMMergedPageCopyOnWrite(t *testing.T) {
	pm := NewPhysMem(0)
	ksm := NewKSM(pm)
	as1, as2 := NewAddressSpace(pm), NewAddressSpace(pm)
	b1, _ := as1.Mmap(PageSize, ProtRead|ProtWrite, MapPrivate|MapAnonymous, nil, 0)
	b2, _ := as2.Mmap(PageSize, ProtRead|ProtWrite, MapPrivate|MapAnonymous, nil, 0)
	as1.WritePage(b1, 0xC0DE)
	as2.WritePage(b2, 0xC0DE)
	ksm.Register(as1)
	ksm.Register(as2)
	if ksm.Scan() != 1 {
		t.Fatal("expected one merge")
	}
	// Writing after merge must CoW, not corrupt the sharer.
	if err := as1.WritePage(b1, 0xD1FF); err != nil {
		t.Fatal(err)
	}
	c2, _ := as2.ReadPage(b2)
	if c2 != 0xC0DE {
		t.Fatalf("sharer content corrupted: %#x", c2)
	}
	c1, _ := as1.ReadPage(b1)
	if c1 != 0xD1FF {
		t.Fatalf("writer content lost: %#x", c1)
	}
	if as1.CoWFaults != 1 {
		t.Fatalf("CoWFaults = %d, want 1", as1.CoWFaults)
	}
}

func TestKSMRescanStable(t *testing.T) {
	pm := NewPhysMem(0)
	ksm := NewKSM(pm)
	as := NewAddressSpace(pm)
	base, _ := as.Mmap(4*PageSize, ProtRead|ProtWrite, MapPrivate|MapAnonymous, nil, 0)
	for i := 0; i < 4; i++ {
		as.WritePage(base+VAddr(i)*PageSize, 0x11)
	}
	ksm.Register(as)
	first := ksm.Scan()
	if first != 3 {
		t.Fatalf("first scan merged %d, want 3", first)
	}
	if again := ksm.Scan(); again != 0 {
		t.Fatalf("second scan merged %d, want 0", again)
	}
	if pm.LivePages() != 1 {
		t.Fatalf("live pages = %d, want 1", pm.LivePages())
	}
}

// Property: after arbitrary interleavings of writes and scans, (a) every
// address space still reads back the content it last wrote, and (b) frame
// refcounts equal the number of PTEs pointing at each frame.
func TestKSMPreservesContentsProperty(t *testing.T) {
	f := func(ops []uint16) bool {
		pm := NewPhysMem(0)
		ksm := NewKSM(pm)
		const nSpaces, nPages = 3, 4
		spaces := make([]*AddressSpace, nSpaces)
		bases := make([]VAddr, nSpaces)
		want := make([][]uint64, nSpaces)
		for i := range spaces {
			spaces[i] = NewAddressSpace(pm)
			bases[i], _ = spaces[i].Mmap(nPages*PageSize, ProtRead|ProtWrite, MapPrivate|MapAnonymous, nil, 0)
			want[i] = make([]uint64, nPages)
			ksm.Register(spaces[i])
			for p := 0; p < nPages; p++ {
				spaces[i].WritePage(bases[i]+VAddr(p)*PageSize, 0)
			}
		}
		for _, op := range ops {
			s := int(op) % nSpaces
			p := int(op/8) % nPages
			val := uint64(op % 5) // few distinct values => merges happen
			if op%16 == 0 {
				ksm.Scan()
				continue
			}
			if err := spaces[s].WritePage(bases[s]+VAddr(p)*PageSize, val); err != nil {
				return false
			}
			want[s][p] = val
		}
		ksm.Scan()
		// (a) contents survive
		for s := range spaces {
			for p := 0; p < nPages; p++ {
				got, err := spaces[s].ReadPage(bases[s] + VAddr(p)*PageSize)
				if err != nil || got != want[s][p] {
					return false
				}
			}
		}
		// (b) refcounts match PTE references
		counts := map[uint64]int{}
		for _, as := range spaces {
			for _, vp := range as.MappedVPNs() {
				counts[as.table[vp].PFN]++
			}
		}
		for pfn, n := range counts {
			if pm.Refs(pfn) != n {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}
