package mmu

import (
	"testing"
	"testing/quick"
)

func TestForkSharesFramesCopyOnWrite(t *testing.T) {
	pm, parent := newAS()
	base, _ := parent.Mmap(4*PageSize, ProtRead|ProtWrite, MapPrivate|MapAnonymous, nil, 0)
	for i := 0; i < 4; i++ {
		parent.WritePage(base+VAddr(i)*PageSize, uint64(0x10+i))
	}
	live := pm.LivePages()

	child := parent.Fork()
	if pm.LivePages() != live {
		t.Fatalf("fork allocated frames: %d -> %d", live, pm.LivePages())
	}
	// Both sides read the same frames, now write-protected.
	for i := 0; i < 4; i++ {
		v := base + VAddr(i)*PageSize
		pr, err := parent.Translate(v, false)
		if err != nil || !pr.WriteProtected {
			t.Fatalf("parent page %d: wp=%v err=%v", i, pr.WriteProtected, err)
		}
		cr, err := child.Translate(v, false)
		if err != nil || !cr.WriteProtected {
			t.Fatalf("child page %d: wp=%v err=%v", i, cr.WriteProtected, err)
		}
		if pr.PAddr != cr.PAddr {
			t.Fatalf("page %d not shared after fork", i)
		}
	}

	// The child writes: copy-on-write isolates the parent.
	if err := child.WritePage(base, 0xC0FFEE); err != nil {
		t.Fatal(err)
	}
	pc, _ := parent.ReadPage(base)
	cc, _ := child.ReadPage(base)
	if pc != 0x10 || cc != 0xC0FFEE {
		t.Fatalf("contents after child write: parent=%#x child=%#x", pc, cc)
	}

	// The parent writes another page: same isolation the other way.
	if err := parent.WritePage(base+PageSize, 0xAA); err != nil {
		t.Fatal(err)
	}
	cc2, _ := child.ReadPage(base + PageSize)
	if cc2 != 0x11 {
		t.Fatalf("child sees parent's post-fork write: %#x", cc2)
	}
}

func TestForkKeepsSharedMappingsWritable(t *testing.T) {
	pm := NewPhysMem(0)
	parent := NewAddressSpace(pm)
	f := NewFile("shm", 8)
	base, _ := parent.Mmap(PageSize, ProtRead|ProtWrite, MapShared, f, 0)
	parent.Translate(base, true) // fault in writable

	child := parent.Fork()
	r, err := child.Translate(base, true)
	if err != nil {
		t.Fatal(err)
	}
	if r.WriteProtected || r.CoW {
		t.Fatalf("MAP_SHARED page write-protected after fork: %+v", r)
	}
	// Writes are visible across the fork (true shared memory).
	if err := parent.WritePage(base, 0x77); err != nil {
		t.Fatal(err)
	}
	got, _ := child.ReadPage(base)
	if got != 0x77 {
		t.Fatalf("shared write not visible to child: %#x", got)
	}
}

func TestForkUnfaultedPagesFaultIndependently(t *testing.T) {
	_, parent := newAS()
	base, _ := parent.Mmap(2*PageSize, ProtRead|ProtWrite, MapPrivate|MapAnonymous, nil, 0)
	parent.Translate(base, false) // only page 0 faulted

	child := parent.Fork()
	// Page 1 was never faulted: each side gets its own fresh frame.
	pr, err := parent.Translate(base+PageSize, false)
	if err != nil {
		t.Fatal(err)
	}
	cr, err := child.Translate(base+PageSize, false)
	if err != nil {
		t.Fatal(err)
	}
	if pr.PAddr == cr.PAddr {
		t.Fatal("unfaulted page shared a frame after independent faults")
	}
}

// Property: after a fork and arbitrary interleaved writes, parent and
// child contents never bleed into each other.
func TestForkIsolationProperty(t *testing.T) {
	f := func(ops []uint8) bool {
		_, parent := newAS()
		base, _ := parent.Mmap(4*PageSize, ProtRead|ProtWrite, MapPrivate|MapAnonymous, nil, 0)
		for i := 0; i < 4; i++ {
			parent.WritePage(base+VAddr(i)*PageSize, uint64(i))
		}
		child := parent.Fork()
		wantP := []uint64{0, 1, 2, 3}
		wantC := []uint64{0, 1, 2, 3}
		for n, op := range ops {
			page := int(op) % 4
			v := base + VAddr(page)*PageSize
			val := uint64(0x100 + n)
			if op&0x80 != 0 {
				if parent.WritePage(v, val) != nil {
					return false
				}
				wantP[page] = val
			} else {
				if child.WritePage(v, val) != nil {
					return false
				}
				wantC[page] = val
			}
		}
		for i := 0; i < 4; i++ {
			v := base + VAddr(i)*PageSize
			pc, _ := parent.ReadPage(v)
			cc, _ := child.ReadPage(v)
			if pc != wantP[i] || cc != wantC[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

// Fork + KSM interplay: forked CoW pages are already shared, so KSM finds
// nothing new to merge among them.
func TestForkThenKSM(t *testing.T) {
	pm, parent := newAS()
	ksm := NewKSM(pm)
	base, _ := parent.Mmap(2*PageSize, ProtRead|ProtWrite, MapPrivate|MapAnonymous, nil, 0)
	parent.WritePage(base, 0x1)
	parent.WritePage(base+PageSize, 0x1) // duplicate content within parent
	child := parent.Fork()
	ksm.Register(parent)
	ksm.Register(child)
	// The two distinct-content... identical-content frames merge; the
	// fork-shared PTEs just get repointed consistently.
	ksm.Scan()
	c1, _ := parent.ReadPage(base)
	c2, _ := child.ReadPage(base + PageSize)
	if c1 != 0x1 || c2 != 0x1 {
		t.Fatalf("contents corrupted: %#x %#x", c1, c2)
	}
	// Writes still isolate.
	child.WritePage(base, 0x2)
	p, _ := parent.ReadPage(base)
	if p != 0x1 {
		t.Fatalf("parent corrupted after post-KSM child write: %#x", p)
	}
}
