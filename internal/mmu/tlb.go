package mmu

// TLB is a fully associative translation lookaside buffer with LRU
// replacement, matching the paper's 64-entry ITB/DTB (Table V). Entries
// cache the translated frame and the R/W bit so the write-protection
// information reaches the cache hierarchy even on TLB hits without
// re-walking the page table (§IV-B).
type TLB struct {
	capacity int
	entries  map[uint64]*tlbEntry
	clock    uint64

	Hits, Misses uint64
	Flushes      uint64
}

type tlbEntry struct {
	pfn      uint64
	writable bool
	cow      bool
	lru      uint64
}

// NewTLB builds a TLB with the given entry count.
func NewTLB(entries int) *TLB {
	if entries <= 0 {
		panic("mmu: TLB must have at least one entry")
	}
	return &TLB{capacity: entries, entries: make(map[uint64]*tlbEntry, entries)}
}

// Capacity returns the entry count.
func (t *TLB) Capacity() int { return t.capacity }

// Size returns the number of resident entries.
func (t *TLB) Size() int { return len(t.entries) }

func (t *TLB) lookup(vp uint64) *tlbEntry {
	e := t.entries[vp]
	if e != nil {
		t.clock++
		e.lru = t.clock
	}
	return e
}

func (t *TLB) insert(vp uint64, pfn uint64, writable, cow bool) {
	if len(t.entries) >= t.capacity {
		var victim uint64
		var oldest uint64 = ^uint64(0)
		for k, e := range t.entries {
			if e.lru < oldest {
				oldest = e.lru
				victim = k
			}
		}
		delete(t.entries, victim)
	}
	t.clock++
	t.entries[vp] = &tlbEntry{pfn: pfn, writable: writable, cow: cow, lru: t.clock}
}

// InvalidatePage drops the entry for the page containing v, if any.
func (t *TLB) InvalidatePage(v VAddr) { delete(t.entries, vpn(v)) }

// Flush empties the TLB.
func (t *TLB) Flush() {
	t.entries = make(map[uint64]*tlbEntry, t.capacity)
	t.Flushes++
}

// Translate performs the full MMU path for one access: TLB lookup, page
// walk on miss, protection handling, and TLB fill. The returned Result's
// WriteProtected field is the R/W bit the coherence controller consumes;
// TLBHit is reported separately for timing.
func (t *TLB) Translate(as *AddressSpace, v VAddr, isWrite bool) (Result, bool, error) {
	vp := vpn(v)
	if e := t.lookup(vp); e != nil {
		if !isWrite || e.writable {
			t.Hits++
			return Result{
				PAddr:          PAddr(e.pfn*PageSize) + PAddr(uint64(v)%PageSize),
				WriteProtected: !e.writable,
			}, true, nil
		}
		// Write to a write-protected cached translation: the hardware
		// raises a fault; the handler (Translate below) performs CoW or
		// rejects, and the stale entry must be shot down.
		t.InvalidatePage(v)
	}
	t.Misses++
	res, err := as.Translate(v, isWrite)
	if err != nil {
		return res, false, err
	}
	pte := as.PTEOf(v)
	t.insert(vp, pte.PFN, pte.Writable, pte.CoW)
	return res, false, nil
}
