package mmu

// KSM models kernel same-page merging (§IV-A1, "Memory deduplication").
// A scan pass finds faulted-in pages with identical content across the
// registered address spaces, keeps one frame per distinct content, remaps
// every other PTE to it, and — exactly as Linux's write_protect_page does —
// clears the R/W field of every merged PTE, including the canonical copy's.
// Copy-on-write is armed only where the VMA permits writes; merged pages in
// read-only mappings keep faulting on stores. The freed frames return to
// the allocator.
type KSM struct {
	pm     *PhysMem
	spaces []*AddressSpace

	// Stats
	Scans       uint64
	PagesMerged uint64 // PTEs redirected to a canonical frame
	PagesFreed  uint64 // frames released by merging
}

// NewKSM creates a dedup engine over pm.
func NewKSM(pm *PhysMem) *KSM { return &KSM{pm: pm} }

// Register adds an address space to the scan set.
func (k *KSM) Register(as *AddressSpace) { k.spaces = append(k.spaces, as) }

type ksmCandidate struct {
	as  *AddressSpace
	pte *PTE
	cow bool // whether CoW may be armed (VMA allows writes)
}

// Scan performs one full merge pass and returns the number of PTEs
// redirected to a canonical frame during this pass.
func (k *KSM) Scan() int {
	k.Scans++
	freedBefore := k.pm.Freed

	// Pass 1: group present PTEs by frame content.
	groups := make(map[uint64][]ksmCandidate)
	order := make([]uint64, 0)
	for _, as := range k.spaces {
		for _, vp := range as.MappedVPNs() {
			pte := as.table[vp]
			if !pte.Present {
				continue
			}
			area := as.findVMA(VAddr(vp * PageSize))
			cow := area != nil && area.prot&ProtWrite != 0
			content := k.pm.Content(pte.PFN)
			if _, seen := groups[content]; !seen {
				order = append(order, content)
			}
			groups[content] = append(groups[content], ksmCandidate{as: as, pte: pte, cow: cow})
		}
	}

	// Pass 2: for every content represented by more than one PTE, elect
	// the first frame as canonical, write-protect every copy, and remap
	// the rest.
	merged := 0
	for _, content := range order {
		g := groups[content]
		if len(g) < 2 {
			continue
		}
		canonical := g[0].pte.PFN
		for _, c := range g {
			c.pte.Writable = false
			c.pte.CoW = c.cow
			if c.pte.PFN == canonical {
				continue
			}
			old := c.pte.PFN
			c.pte.PFN = canonical
			k.pm.ref(canonical)
			k.pm.unref(old)
			k.PagesMerged++
			merged++
		}
	}
	k.PagesFreed += k.pm.Freed - freedBefore
	return merged
}
