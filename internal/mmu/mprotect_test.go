package mmu

import (
	"errors"
	"testing"
)

func TestMprotectHardensToReadOnly(t *testing.T) {
	_, as := newAS()
	base, _ := as.Mmap(2*PageSize, ProtRead|ProtWrite, MapPrivate|MapAnonymous, nil, 0)
	// Fault both pages in writable.
	if _, err := as.Translate(base, true); err != nil {
		t.Fatal(err)
	}
	if _, err := as.Translate(base+PageSize, true); err != nil {
		t.Fatal(err)
	}
	if err := as.Mprotect(base, 2*PageSize, ProtRead); err != nil {
		t.Fatal(err)
	}
	// Reads still work and now report write-protected.
	r, err := as.Translate(base, false)
	if err != nil || !r.WriteProtected {
		t.Fatalf("read after mprotect: wp=%v err=%v", r.WriteProtected, err)
	}
	// Writes fault.
	if _, err := as.Translate(base, true); !errors.Is(err, ErrWriteProtection) {
		t.Fatalf("write after mprotect: err=%v, want protection fault", err)
	}
}

func TestMprotectRelaxPrivatePage(t *testing.T) {
	_, as := newAS()
	base, _ := as.Mmap(PageSize, ProtRead|ProtWrite, MapPrivate|MapAnonymous, nil, 0)
	as.Translate(base, true)
	as.Mprotect(base, PageSize, ProtRead)
	if err := as.Mprotect(base, PageSize, ProtRead|ProtWrite); err != nil {
		t.Fatal(err)
	}
	r, err := as.Translate(base, true)
	if err != nil || r.WriteProtected {
		t.Fatalf("write after relax: wp=%v err=%v", r.WriteProtected, err)
	}
}

// Relaxing protection on a page whose frame is shared (KSM-merged) must
// not create a writable alias: the PTE stays write-protected with CoW
// armed, and the next store duplicates.
func TestMprotectRelaxSharedFrameKeepsCoW(t *testing.T) {
	pm := NewPhysMem(0)
	ksm := NewKSM(pm)
	as1, as2 := NewAddressSpace(pm), NewAddressSpace(pm)
	b1, _ := as1.Mmap(PageSize, ProtRead|ProtWrite, MapPrivate|MapAnonymous, nil, 0)
	b2, _ := as2.Mmap(PageSize, ProtRead|ProtWrite, MapPrivate|MapAnonymous, nil, 0)
	as1.WritePage(b1, 0xAB)
	as2.WritePage(b2, 0xAB)
	ksm.Register(as1)
	ksm.Register(as2)
	if ksm.Scan() != 1 {
		t.Fatal("merge failed")
	}
	if err := as1.Mprotect(b1, PageSize, ProtRead|ProtWrite); err != nil {
		t.Fatal(err)
	}
	pte := as1.PTEOf(b1)
	if pte.Writable || !pte.CoW {
		t.Fatalf("shared frame became writable: %+v", pte)
	}
	// A store CoWs and the sharer is unaffected.
	if err := as1.WritePage(b1, 0xCD); err != nil {
		t.Fatal(err)
	}
	if c2, _ := as2.ReadPage(b2); c2 != 0xAB {
		t.Fatalf("sharer corrupted: %#x", c2)
	}
}

func TestMprotectErrors(t *testing.T) {
	_, as := newAS()
	base, _ := as.Mmap(PageSize, ProtRead|ProtWrite, MapPrivate|MapAnonymous, nil, 0)
	if err := as.Mprotect(base, 0, ProtRead); !errors.Is(err, ErrBadMap) {
		t.Fatalf("zero length: %v", err)
	}
	if err := as.Mprotect(0x10, PageSize, ProtRead); !errors.Is(err, ErrUnmapped) {
		t.Fatalf("unmapped: %v", err)
	}
}

// Future pages of the region fault in with the new protection.
func TestMprotectAffectsFutureFaults(t *testing.T) {
	_, as := newAS()
	base, _ := as.Mmap(4*PageSize, ProtRead|ProtWrite, MapPrivate|MapAnonymous, nil, 0)
	as.Translate(base, false) // fault page 0 only
	if err := as.Mprotect(base, 4*PageSize, ProtRead); err != nil {
		t.Fatal(err)
	}
	r, err := as.Translate(base+3*PageSize, false) // fresh fault
	if err != nil || !r.WriteProtected {
		t.Fatalf("fresh fault after mprotect: wp=%v err=%v", r.WriteProtected, err)
	}
}

func TestMunmapReleasesFramesAndMappings(t *testing.T) {
	pm, as := newAS()
	base, _ := as.Mmap(4*PageSize, ProtRead|ProtWrite, MapPrivate|MapAnonymous, nil, 0)
	for i := 0; i < 4; i++ {
		as.Translate(base+VAddr(i)*PageSize, true)
	}
	live := pm.LivePages()
	if err := as.Munmap(base, 4*PageSize); err != nil {
		t.Fatal(err)
	}
	if pm.LivePages() != live-4 {
		t.Fatalf("live pages %d, want %d", pm.LivePages(), live-4)
	}
	if _, err := as.Translate(base, false); !errors.Is(err, ErrUnmapped) {
		t.Fatalf("post-munmap access: %v", err)
	}
}

func TestMunmapSharedFrameKeepsOtherMappers(t *testing.T) {
	pm := NewPhysMem(0)
	lib := NewFile("l.so", 4)
	a1 := NewAddressSpace(pm)
	a2 := NewAddressSpace(pm)
	b1, _ := a1.Mmap(PageSize, ProtRead, MapShared, lib, 0)
	b2, _ := a2.Mmap(PageSize, ProtRead, MapShared, lib, 0)
	a1.Translate(b1, false)
	a2.Translate(b2, false)
	if err := a1.Munmap(b1, PageSize); err != nil {
		t.Fatal(err)
	}
	// a2 still reads the page.
	if _, err := a2.Translate(b2, false); err != nil {
		t.Fatal(err)
	}
}

func TestMunmapErrors(t *testing.T) {
	_, as := newAS()
	base, _ := as.Mmap(2*PageSize, ProtRead|ProtWrite, MapPrivate|MapAnonymous, nil, 0)
	if err := as.Munmap(base, 0); !errors.Is(err, ErrBadMap) {
		t.Fatalf("zero length: %v", err)
	}
	// Partial coverage rejected.
	if err := as.Munmap(base, PageSize); !errors.Is(err, ErrBadMap) {
		t.Fatalf("partial unmap: %v", err)
	}
	// Unmapping nothing is fine (POSIX allows it).
	if err := as.Munmap(0x100000, PageSize); err != nil {
		t.Fatalf("no-op munmap: %v", err)
	}
}

// Mprotect splits VMAs page-exactly: protecting one page of a region
// leaves its neighbours writable, and KSM's CoW decision honors the
// per-page protection.
func TestMprotectSplitsVMAs(t *testing.T) {
	pm := NewPhysMem(0)
	as := NewAddressSpace(pm)
	base, _ := as.Mmap(4*PageSize, ProtRead|ProtWrite, MapPrivate|MapAnonymous, nil, 0)
	for i := 0; i < 4; i++ {
		as.Translate(base+VAddr(i)*PageSize, true)
	}
	// Harden only page 1.
	if err := as.Mprotect(base+PageSize, PageSize, ProtRead); err != nil {
		t.Fatal(err)
	}
	// Pages 0, 2, 3 stay writable; page 1 faults on write.
	for _, pg := range []int{0, 2, 3} {
		if _, err := as.Translate(base+VAddr(pg)*PageSize, true); err != nil {
			t.Fatalf("page %d write after split: %v", pg, err)
		}
	}
	if _, err := as.Translate(base+PageSize, true); !errors.Is(err, ErrWriteProtection) {
		t.Fatalf("protected page writable: %v", err)
	}
	// Fresh faults in the split sub-ranges see the right protections.
	as2 := NewAddressSpace(pm)
	b2, _ := as2.Mmap(4*PageSize, ProtRead|ProtWrite, MapPrivate|MapAnonymous, nil, 0)
	if err := as2.Mprotect(b2+2*PageSize, 2*PageSize, ProtRead); err != nil {
		t.Fatal(err)
	}
	r, err := as2.Translate(b2+3*PageSize, false)
	if err != nil || !r.WriteProtected {
		t.Fatalf("fresh fault in hardened half: wp=%v err=%v", r.WriteProtected, err)
	}
	r, err = as2.Translate(b2, false)
	if err != nil || r.WriteProtected {
		t.Fatalf("fresh fault in writable half: wp=%v err=%v", r.WriteProtected, err)
	}
}

// KSM merging a page inside a writable VMA arms CoW even when a sibling
// page was mprotected read-only (the page-exact interplay the machine
// campaign exercises).
func TestMprotectKSMPageExactInterplay(t *testing.T) {
	pm := NewPhysMem(0)
	ksm := NewKSM(pm)
	as1, as2 := NewAddressSpace(pm), NewAddressSpace(pm)
	b1, _ := as1.Mmap(2*PageSize, ProtRead|ProtWrite, MapPrivate|MapAnonymous, nil, 0)
	b2, _ := as2.Mmap(2*PageSize, ProtRead|ProtWrite, MapPrivate|MapAnonymous, nil, 0)
	as1.WritePage(b1+PageSize, 0x77)
	as2.WritePage(b2+PageSize, 0x77)
	// Harden page 0 of as1 only.
	as1.Translate(b1, false)
	if err := as1.Mprotect(b1, PageSize, ProtRead); err != nil {
		t.Fatal(err)
	}
	ksm.Register(as1)
	ksm.Register(as2)
	ksm.Scan()
	// Page 1 merged and must still be CoW-writable despite page 0's RO.
	if err := as1.WritePage(b1+PageSize, 0x99); err != nil {
		t.Fatalf("write to merged page in writable sub-VMA: %v", err)
	}
	if got, _ := as2.ReadPage(b2 + PageSize); got != 0x77 {
		t.Fatalf("sharer corrupted: %#x", got)
	}
}
