// Package mmu models the memory-management substrate SwiftDir relies on:
// per-process virtual address spaces with page tables whose entries carry
// the Read/Write permission bit, mmap with PROT_*/MAP_* semantics, demand
// paging, copy-on-write, kernel same-page merging (KSM), and per-core
// TLBs. The package reproduces the paper's §IV-A observation chain:
//
//   - a file-backed MAP_PRIVATE mapping (writable shared-library segment)
//     yields PTEs with R/W = 0 (write-protected, copy-on-write);
//   - a MAP_SHARED mapping without PROT_WRITE (read-only library text)
//     yields PTEs with R/W = 0;
//   - KSM's write_protect_page sets R/W = 0 on merged pages;
//
// so exploitable shared data are exactly the write-protected data, and the
// translation result exposes that bit for the cache hierarchy to hitchhike
// (§IV-B).
package mmu

import (
	"errors"
	"fmt"
	"sort"
)

// PageSize is the virtual-memory page size in bytes.
const PageSize = 4096

// VAddr is a virtual byte address; PAddr is a physical byte address.
type (
	VAddr uint64
	PAddr uint64
)

// Prot is an mmap protection mask.
type Prot uint8

// Protection bits, mirroring POSIX PROT_*.
const (
	ProtRead Prot = 1 << iota
	ProtWrite
	ProtExec
)

// MapFlags is an mmap flags mask.
type MapFlags uint8

// Mapping flags, mirroring the subset of MAP_* the paper discusses.
const (
	MapPrivate MapFlags = 1 << iota
	MapShared
	MapAnonymous
)

// Errors reported by translation.
var (
	ErrUnmapped        = errors.New("mmu: access to unmapped address")
	ErrWriteProtection = errors.New("mmu: write to write-protected page")
	ErrBadMap          = errors.New("mmu: invalid mmap arguments")
)

// PTE is a page-table entry. Writable is the R/W field the paper keys on:
// Writable == false marks the page write-protected, the exact category
// SwiftDir narrows its protection scope to.
type PTE struct {
	PFN      uint64
	Present  bool
	Writable bool
	CoW      bool // write triggers copy-on-write rather than a fault
	Dirty    bool
	Accessed bool
}

// physPage is a physical frame. Content is a 64-bit token standing in for
// the page's bytes; KSM compares and merges frames by this token.
type physPage struct {
	content uint64
	refs    int
}

// PhysMem is the machine-wide physical memory allocator shared by all
// address spaces. Frames are handed out sequentially above base. It also
// plays the role of the page cache: frames backing file pages are cached
// here with a reference of their own, so they survive even when every
// mapper has copy-on-written away from them.
type PhysMem struct {
	basePFN   uint64
	nextPFN   uint64
	pages     map[uint64]*physPage
	fileCache map[fileKey]uint64 // (file, page index) -> PFN

	Allocated uint64 // frames ever allocated
	Freed     uint64 // frames released (refs hit zero)
}

type fileKey struct {
	file *File
	idx  uint64
}

// NewPhysMem returns an allocator whose first frame starts at basePFN.
func NewPhysMem(basePFN uint64) *PhysMem {
	return &PhysMem{
		basePFN:   basePFN,
		nextPFN:   basePFN,
		pages:     make(map[uint64]*physPage),
		fileCache: make(map[fileKey]uint64),
	}
}

// filePage returns the frame backing page idx of f, materializing it on
// first use. The page cache keeps one reference; the caller's mapping gets
// another.
func (pm *PhysMem) filePage(f *File, idx uint64) uint64 {
	key := fileKey{file: f, idx: idx}
	if pfn, ok := pm.fileCache[key]; ok {
		pm.ref(pfn)
		return pfn
	}
	content := f.seed*0x9E3779B97F4A7C15 + idx + 1
	pfn := pm.alloc(content) // ref held by the page cache
	pm.fileCache[key] = pfn
	pm.ref(pfn) // ref for the mapper
	return pfn
}

func (pm *PhysMem) alloc(content uint64) uint64 {
	pfn := pm.nextPFN
	pm.nextPFN++
	pm.pages[pfn] = &physPage{content: content, refs: 1}
	pm.Allocated++
	return pfn
}

func (pm *PhysMem) get(pfn uint64) *physPage {
	p := pm.pages[pfn]
	if p == nil {
		panic(fmt.Sprintf("mmu: dangling PFN %#x", pfn))
	}
	return p
}

func (pm *PhysMem) ref(pfn uint64) { pm.get(pfn).refs++ }
func (pm *PhysMem) unref(pfn uint64) {
	p := pm.get(pfn)
	p.refs--
	if p.refs == 0 {
		delete(pm.pages, pfn)
		pm.Freed++
	}
}

// Content returns the content token of a frame.
func (pm *PhysMem) Content(pfn uint64) uint64 { return pm.get(pfn).content }

// Refs returns the reference count of a frame.
func (pm *PhysMem) Refs(pfn uint64) int { return pm.get(pfn).refs }

// LivePages returns the number of allocated frames.
func (pm *PhysMem) LivePages() int { return len(pm.pages) }

// File is a shared backing object (a shared library, a data file). Pages
// materialize lazily in the PhysMem page cache; every address space
// mapping the same file page gets the same physical frame, which is how
// shared libraries create genuinely shared memory across processes.
type File struct {
	Name string
	seed uint64
}

// NewFile creates a backing file whose page contents derive from seed.
func NewFile(name string, seed uint64) *File {
	return &File{Name: name, seed: seed}
}

// vma is a virtual memory area created by Mmap.
type vma struct {
	start, end VAddr // [start, end)
	prot       Prot
	flags      MapFlags
	file       *File
	fileOff    uint64 // page-aligned offset into file
}

// AddressSpace is one process's view of memory.
type AddressSpace struct {
	pm    *PhysMem
	vmas  []vma
	table map[uint64]*PTE // VPN -> PTE
	next  VAddr           // next mmap placement

	// Stats
	Faults    uint64 // demand-paging faults
	CoWFaults uint64 // copy-on-write duplications
}

// NewAddressSpace creates an empty address space over pm.
func NewAddressSpace(pm *PhysMem) *AddressSpace {
	return &AddressSpace{
		pm:    pm,
		table: make(map[uint64]*PTE),
		next:  0x4000_0000, // leave low memory unmapped to catch bugs
	}
}

// PhysMem returns the allocator backing this address space.
func (as *AddressSpace) PhysMem() *PhysMem { return as.pm }

func vpn(v VAddr) uint64   { return uint64(v) / PageSize }
func pageOf(v VAddr) VAddr { return v &^ (PageSize - 1) }

// Mmap establishes a mapping of length bytes (rounded up to pages) and
// returns its base address. file may be nil for anonymous mappings. The
// semantics follow mmap(2) as analyzed in §IV-A of the paper.
func (as *AddressSpace) Mmap(length int, prot Prot, flags MapFlags, file *File, offset uint64) (VAddr, error) {
	if length <= 0 {
		return 0, fmt.Errorf("%w: length %d", ErrBadMap, length)
	}
	if flags&MapPrivate != 0 && flags&MapShared != 0 {
		return 0, fmt.Errorf("%w: both MAP_PRIVATE and MAP_SHARED", ErrBadMap)
	}
	if flags&(MapPrivate|MapShared) == 0 {
		return 0, fmt.Errorf("%w: neither MAP_PRIVATE nor MAP_SHARED", ErrBadMap)
	}
	if file == nil && flags&MapAnonymous == 0 {
		return 0, fmt.Errorf("%w: file-backed mapping without file", ErrBadMap)
	}
	if offset%PageSize != 0 {
		return 0, fmt.Errorf("%w: offset %d not page-aligned", ErrBadMap, offset)
	}
	pages := (length + PageSize - 1) / PageSize
	base := as.next
	as.next += VAddr(pages+1) * PageSize // guard page between mappings
	as.vmas = append(as.vmas, vma{
		start: base, end: base + VAddr(pages)*PageSize,
		prot: prot, flags: flags, file: file, fileOff: offset,
	})
	return base, nil
}

func (as *AddressSpace) findVMA(v VAddr) *vma {
	for i := range as.vmas {
		if v >= as.vmas[i].start && v < as.vmas[i].end {
			return &as.vmas[i]
		}
	}
	return nil
}

// mkPTE creates the PTE for a freshly faulted page, applying the R/W-bit
// rules the paper extracts from Linux 5.16 (§IV-A2):
//
//   - MAP_PRIVATE file-backed  -> R/W=0, copy-on-write
//   - MAP_SHARED without PROT_WRITE -> R/W=0
//   - otherwise (writable shared file page, or anonymous private heap)
//     -> R/W=1
func mkPTE(v *vma, pfn uint64) *PTE {
	writable := v.prot&ProtWrite != 0
	cow := false
	switch {
	case v.file != nil && v.flags&MapPrivate != 0:
		// Private mapping of a file: even if PROT_WRITE, the first
		// store must duplicate the page (copy-on-write), so the R/W
		// field is cleared.
		cow = writable
		writable = false
	case v.flags&MapShared != 0 && v.prot&ProtWrite == 0:
		writable = false
	}
	return &PTE{PFN: pfn, Present: true, Writable: writable, CoW: cow}
}

// fault services a demand-paging fault for the page containing v.
func (as *AddressSpace) fault(v VAddr) (*PTE, error) {
	area := as.findVMA(v)
	if area == nil {
		return nil, fmt.Errorf("%w: %#x", ErrUnmapped, uint64(v))
	}
	as.Faults++
	var pfn uint64
	if area.file != nil {
		pageIdx := area.fileOff/PageSize + (uint64(pageOf(v)-area.start))/PageSize
		pfn = as.pm.filePage(area.file, pageIdx)
	} else {
		pfn = as.pm.alloc(0) // zero-filled anonymous page
	}
	pte := mkPTE(area, pfn)
	as.table[vpn(v)] = pte
	return pte, nil
}

// Result is the outcome of a translation: the physical address, the
// write-protection status read from the PTE's R/W field (the bit SwiftDir
// transmits to the coherence controller), and accounting of the work the
// walk performed so callers can charge time.
type Result struct {
	PAddr          PAddr
	WriteProtected bool
	Faulted        bool // demand-paging fault serviced
	CoW            bool // copy-on-write duplication performed
}

// Translate walks the page table for v (no TLB; see TLB.Translate for the
// cached path). For isWrite on a write-protected page it either performs
// copy-on-write (if the PTE allows) or returns ErrWriteProtection.
func (as *AddressSpace) Translate(v VAddr, isWrite bool) (Result, error) {
	var res Result
	pte, ok := as.table[vpn(v)]
	if !ok || !pte.Present {
		var err error
		pte, err = as.fault(v)
		if err != nil {
			return res, err
		}
		res.Faulted = true
	}
	if isWrite && !pte.Writable {
		if !pte.CoW {
			return res, fmt.Errorf("%w: %#x", ErrWriteProtection, uint64(v))
		}
		as.copyOnWrite(pte)
		res.CoW = true
	}
	// Set the A/D bits only when clear: after Prefault has set them, the
	// hot translation path never writes the PTE, so concurrent walks from
	// sharded cores are pure reads.
	if !pte.Accessed {
		pte.Accessed = true
	}
	if isWrite && !pte.Dirty {
		pte.Dirty = true
	}
	res.PAddr = PAddr(pte.PFN*PageSize) + PAddr(uint64(v)%PageSize)
	res.WriteProtected = !pte.Writable
	return res, nil
}

// copyOnWrite spawns a private duplicate of pte's frame and redirects the
// PTE to it with R/W = 1.
func (as *AddressSpace) copyOnWrite(pte *PTE) {
	as.CoWFaults++
	old := pte.PFN
	content := as.pm.Content(old)
	pte.PFN = as.pm.alloc(content)
	pte.Writable = true
	pte.CoW = false
	as.pm.unref(old)
}

// PTEOf returns the current PTE for an address, or nil if not yet faulted
// in. Exposed for tests and for KSM.
func (as *AddressSpace) PTEOf(v VAddr) *PTE { return as.table[vpn(v)] }

// WritePage sets the content token of the page containing v, faulting it
// in if needed. It models a program initializing page contents and is the
// hook dedup tests use to create identical pages. The write obeys
// protection (it performs CoW when required).
func (as *AddressSpace) WritePage(v VAddr, content uint64) error {
	if _, err := as.Translate(v, true); err != nil {
		return err
	}
	pte := as.table[vpn(v)]
	as.pm.get(pte.PFN).content = content
	return nil
}

// ReadPage returns the content token of the page containing v, faulting it
// in if needed.
func (as *AddressSpace) ReadPage(v VAddr) (uint64, error) {
	if _, err := as.Translate(v, false); err != nil {
		return 0, err
	}
	return as.pm.Content(as.table[vpn(v)].PFN), nil
}

// Prefault faults in every page of every mapping, then takes a write
// fault on each page whose PTE came up writable so its Dirty bit is set
// too. Copy-on-write and write-protected pages are only read-faulted:
// pre-copying them would change their R/W bit — the very property
// SwiftDir's protection scope keys on. After Prefault, translations of
// resident pages read the page table without writing it, which is what
// lets sharded cores walk concurrently (core.Machine.Prefault).
func (as *AddressSpace) Prefault() error {
	for i := range as.vmas {
		v := as.vmas[i]
		for p := v.start; p < v.end; p += PageSize {
			if _, err := as.Translate(p, false); err != nil {
				return err
			}
			if pte := as.table[vpn(p)]; pte.Writable {
				if _, err := as.Translate(p, true); err != nil {
					return err
				}
			}
		}
	}
	return nil
}

// Munmap removes the mapping(s) overlapping [addr, addr+length), as
// munmap(2) does for whole VMAs (partial unmapping splits are not
// modeled: the range must cover each overlapped VMA entirely). Present
// pages release their frame references. The caller must shoot down TLB
// entries for the range.
func (as *AddressSpace) Munmap(addr VAddr, length int) error {
	if length <= 0 {
		return fmt.Errorf("%w: munmap length %d", ErrBadMap, length)
	}
	start := pageOf(addr)
	end := pageOf(addr + VAddr(length) + PageSize - 1)
	// Validate: every overlapped VMA must be fully covered.
	for i := range as.vmas {
		v := &as.vmas[i]
		if start < v.end && v.start < end {
			if v.start < start || v.end > end {
				return fmt.Errorf("%w: munmap [%#x,%#x) partially covers VMA [%#x,%#x)",
					ErrBadMap, uint64(start), uint64(end), uint64(v.start), uint64(v.end))
			}
		}
	}
	// Drop PTEs and release frames.
	for v := start; v < end; v += PageSize {
		if pte := as.table[vpn(v)]; pte != nil && pte.Present {
			as.pm.unref(pte.PFN)
			delete(as.table, vpn(v))
		}
	}
	// Remove covered VMAs.
	kept := as.vmas[:0]
	for _, v := range as.vmas {
		if start < v.end && v.start < end {
			continue
		}
		kept = append(kept, v)
	}
	as.vmas = kept
	return nil
}

// Fork clones the address space as fork(2) does: the child shares every
// present frame with the parent, and all writable private pages become
// copy-on-write in BOTH processes (their PTE R/W bits are cleared). This
// is the third mass producer of write-protected memory after read-only
// shared libraries and KSM: right after a fork, the paper's protection
// scope covers essentially the whole address space, and pages leave it
// one copy-on-write at a time.
func (as *AddressSpace) Fork() *AddressSpace {
	child := NewAddressSpace(as.pm)
	child.vmas = append([]vma(nil), as.vmas...)
	child.next = as.next
	for vp, pte := range as.table {
		if !pte.Present {
			continue
		}
		as.pm.ref(pte.PFN)
		cp := *pte
		area := as.findVMA(VAddr(vp * PageSize))
		sharedMapping := area != nil && area.flags&MapShared != 0
		if pte.Writable && !sharedMapping {
			// Writable private page: arm copy-on-write on both sides.
			// MAP_SHARED mappings keep shared, writable frames, as on
			// Linux.
			pte.Writable = false
			pte.CoW = true
			cp.Writable = false
			cp.CoW = true
		}
		child.table[vp] = &cp
	}
	return child
}

// MmapFixed is Mmap with a caller-chosen base address (MAP_FIXED): the
// mapping is placed exactly at addr (which must be page-aligned) and the
// call fails if it would overlap an existing mapping. Trace replay uses
// this to reconstruct a recorded address-space layout.
func (as *AddressSpace) MmapFixed(addr VAddr, length int, prot Prot, flags MapFlags, file *File, offset uint64) error {
	if addr%PageSize != 0 {
		return fmt.Errorf("%w: fixed address %#x not page-aligned", ErrBadMap, uint64(addr))
	}
	if length <= 0 {
		return fmt.Errorf("%w: length %d", ErrBadMap, length)
	}
	pages := (length + PageSize - 1) / PageSize
	end := addr + VAddr(pages)*PageSize
	for i := range as.vmas {
		if addr < as.vmas[i].end && as.vmas[i].start < end {
			return fmt.Errorf("%w: fixed mapping [%#x,%#x) overlaps [%#x,%#x)",
				ErrBadMap, uint64(addr), uint64(end),
				uint64(as.vmas[i].start), uint64(as.vmas[i].end))
		}
	}
	// Reuse Mmap's argument validation by constructing the VMA the same
	// way after the checks it performs.
	probe, err := as.Mmap(length, prot, flags, file, offset)
	if err != nil {
		return err
	}
	// Relocate the just-created VMA to the fixed base.
	v := &as.vmas[len(as.vmas)-1]
	if v.start != probe {
		return fmt.Errorf("%w: internal mmap bookkeeping", ErrBadMap)
	}
	v.start = addr
	v.end = end
	return nil
}

// Mprotect changes the protection of the pages overlapping [addr,
// addr+length), as mprotect(2) does, splitting VMAs at the range
// boundaries so the change is page-exact. Hardening a region to
// read-only clears the R/W bit of its present PTEs — from SwiftDir's
// point of view the region becomes write-protected data and is handled in
// state S from then on (the "enlarged protection scope" case of §I).
// Relaxing a region to writable restores the R/W bit for exclusively
// owned private pages; shared frames (file-backed private or KSM-merged)
// keep R/W = 0 with copy-on-write armed and resolve on the next store.
// The caller must shoot down stale TLB entries (TLB.InvalidatePage /
// TLB.Flush), as an OS would.
func (as *AddressSpace) Mprotect(addr VAddr, length int, prot Prot) error {
	if length <= 0 {
		return fmt.Errorf("%w: mprotect length %d", ErrBadMap, length)
	}
	start := pageOf(addr)
	end := pageOf(addr + VAddr(length) + PageSize - 1)
	// Every page must belong to a mapping.
	for v := start; v < end; v += PageSize {
		if as.findVMA(v) == nil {
			return fmt.Errorf("%w: mprotect over unmapped page %#x", ErrUnmapped, uint64(v))
		}
	}
	as.splitVMAAt(start)
	as.splitVMAAt(end)
	for i := range as.vmas {
		v := &as.vmas[i]
		if v.start >= start && v.end <= end {
			v.prot = prot
		}
	}
	for v := start; v < end; v += PageSize {
		if pte := as.table[vpn(v)]; pte != nil && pte.Present {
			switch {
			case prot&ProtWrite == 0:
				pte.Writable = false
				pte.CoW = false
			case as.pm.Refs(pte.PFN) > 1:
				// Shared frames stay write-protected; a store after
				// re-enabling PROT_WRITE goes through copy-on-write.
				pte.Writable = false
				pte.CoW = true
			default:
				pte.Writable = true
				pte.CoW = false
			}
		}
	}
	return nil
}

// splitVMAAt divides the VMA containing boundary (if any) into two VMAs
// meeting at it, so protections can change page-exactly.
func (as *AddressSpace) splitVMAAt(boundary VAddr) {
	for i := range as.vmas {
		v := &as.vmas[i]
		if boundary > v.start && boundary < v.end {
			upper := *v
			upper.start = boundary
			if v.file != nil {
				upper.fileOff = v.fileOff + uint64(boundary-v.start)
			}
			v.end = boundary
			as.vmas = append(as.vmas, upper)
			return
		}
	}
}

// MappedVPNs returns the faulted-in virtual page numbers in ascending
// order (used by KSM scans and invariant checks).
func (as *AddressSpace) MappedVPNs() []uint64 {
	out := make([]uint64, 0, len(as.table))
	for v := range as.table {
		out = append(out, v)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}
