package mcheck

import (
	"strings"
	"testing"
	"time"

	"repro/internal/coherence"
)

// TestExhaustiveDefault is the headline acceptance check: the full
// interleaving space of the default configuration (2 cores, 1 line,
// depth 4, every schedule) must be explored to completion — no
// truncation — with zero violations, for all three paper protocols,
// in well under a minute per policy.
func TestExhaustiveDefault(t *testing.T) {
	for _, p := range coherence.Policies {
		p := p
		t.Run(p.Name(), func(t *testing.T) {
			res, err := Run(Config{Policy: p})
			if err != nil {
				t.Fatal(err)
			}
			if res.Violation != nil {
				t.Fatalf("violation:\n%s", res.Violation)
			}
			if res.Truncated {
				t.Fatalf("truncated at %d states: not an exhaustive run", res.States)
			}
			if res.States < 10000 {
				t.Errorf("only %d states explored; the schedule space collapsed "+
					"(fingerprint too coarse or actions not enabled)", res.States)
			}
			if res.Terminal == 0 {
				t.Error("no terminal states: exploration never drained a full schedule")
			}
			if res.Elapsed > 60*time.Second {
				t.Errorf("exploration took %v, over the 60s budget", res.Elapsed)
			}
			t.Logf("%s: %d states, %d edges, %d terminal, maxdepth %d, %v",
				res.Policy, res.States, res.Edges, res.Terminal, res.MaxDepth, res.Elapsed)
		})
	}
}

// TestDeterministicReplay: the whole checker rests on replay determinism
// (a node is just an action sequence). Two independent runs of the same
// configuration must reach exactly the same state graph.
func TestDeterministicReplay(t *testing.T) {
	cfg := Config{Policy: coherence.SwiftDir, Depth: 3}
	a, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if a.States != b.States || a.Edges != b.Edges || a.Terminal != b.Terminal {
		t.Fatalf("two runs diverged: %d/%d/%d vs %d/%d/%d states/edges/terminal",
			a.States, a.Edges, a.Terminal, b.States, b.Edges, b.Terminal)
	}
	if len(a.Observed) != len(b.Observed) {
		t.Fatalf("observed pair sets differ: %d vs %d", len(a.Observed), len(b.Observed))
	}
	for p := range a.Observed {
		if !b.Observed[p] {
			t.Errorf("pair %s observed in run A only", p)
		}
	}
}

// buggyPolicy seeds a real protocol bug: plain MESI (silent E->M
// upgrades) but with S-MESI's ServeExclusiveFromLLC short-circuit, which
// is only sound when silent upgrades are revoked. The directory will
// serve a load exclusively from a stale LLC copy while the silent owner
// holds modified data — the checker must find it and produce a
// counterexample.
type buggyPolicy struct {
	coherence.Policy
}

func (buggyPolicy) Name() string                    { return "MESI-bug" }
func (buggyPolicy) ServeExclusiveFromLLC(bool) bool { return true }

func TestSeededBugFound(t *testing.T) {
	res, err := Run(Config{Policy: buggyPolicy{coherence.MESI}})
	if err != nil {
		t.Fatal(err)
	}
	if res.Violation == nil {
		t.Fatal("seeded ServeExclusiveFromLLC-without-revocation bug not found")
	}
	cx := res.Violation
	if len(cx.Actions) == 0 {
		t.Error("counterexample has no actions")
	}
	if cx.Trace == "" {
		t.Error("counterexample has no message transcript")
	}
	if cx.Script() == "" {
		t.Error("counterexample script is empty")
	}
	switch cx.Violation.Kind {
	case "swmr", "data-value":
		// Either symptom of the stale exclusive serve is acceptable.
	default:
		t.Errorf("unexpected violation kind %q (want swmr or data-value):\n%s",
			cx.Violation.Kind, cx)
	}
	t.Logf("found %s after %d states with a %d-action counterexample",
		cx.Violation.Kind, res.States, len(cx.Actions))
}

// TestCounterexampleMinimal: BFS explores by depth, so the reported
// schedule must be minimal — rerunning the checker with Depth set just
// below the counterexample's injection count must find nothing.
func TestCounterexampleMinimal(t *testing.T) {
	res, err := Run(Config{Policy: buggyPolicy{coherence.MESI}})
	if err != nil {
		t.Fatal(err)
	}
	if res.Violation == nil {
		t.Fatal("seeded bug not found")
	}
	injects := 0
	for _, a := range res.Violation.Actions {
		if !a.Step {
			injects++
		}
	}
	if injects < 2 {
		t.Skipf("counterexample uses %d access(es); nothing to shrink", injects)
	}
	shrunk, err := Run(Config{Policy: buggyPolicy{coherence.MESI}, Depth: injects - 1})
	if err != nil {
		t.Fatal(err)
	}
	if shrunk.Violation != nil {
		t.Errorf("violation still found at depth %d; the depth-%d counterexample "+
			"was not minimal:\n%s", injects-1, injects, shrunk.Violation)
	}
}

// TestConfigValidation: bad configurations must be rejected before any
// exploration starts.
func TestConfigValidation(t *testing.T) {
	cases := []struct {
		name string
		cfg  Config
		want string
	}{
		{"nil policy", Config{}, "nil policy"},
		{"cores", Config{Policy: coherence.MESI, Cores: 9}, "Cores"},
		{"lines", Config{Policy: coherence.MESI, Lines: 99}, "Lines"},
		{"depth", Config{Policy: coherence.MESI, Depth: 64}, "Depth"},
		{"prelude core", Config{Policy: coherence.MESI,
			Prelude: []Inject{{Core: 5, Op: OpLoad}}}, "prelude"},
		{"prelude line", Config{Policy: coherence.MESI,
			Prelude: []Inject{{Line: 3, Op: OpLoad}}}, "prelude"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := Run(tc.cfg)
			if err == nil || !strings.Contains(err.Error(), tc.want) {
				t.Fatalf("got %v, want error containing %q", err, tc.want)
			}
		})
	}
}

// TestWPAlphabet: write-protected loads join the alphabet only for
// policies that issue GETS_WP (unless forced).
func TestWPAlphabet(t *testing.T) {
	for _, tc := range []struct {
		cfg  Config
		want bool
	}{
		{Config{Policy: coherence.MESI}, false},
		{Config{Policy: coherence.SwiftDir}, true},
		{Config{Policy: coherence.SwiftDir, WPLoads: WPOff}, false},
		{Config{Policy: coherence.MESI, WPLoads: WPOn}, true},
	} {
		if err := tc.cfg.fill(); err != nil {
			t.Fatal(err)
		}
		if got := tc.cfg.wpEnabled(); got != tc.want {
			t.Errorf("%s WPLoads=%d: wpEnabled=%v, want %v",
				tc.cfg.Policy.Name(), tc.cfg.WPLoads, got, tc.want)
		}
	}
}
