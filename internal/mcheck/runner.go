package mcheck

import (
	"fmt"
	"sort"

	"repro/internal/cache"
	"repro/internal/coherence"
	"repro/internal/proto"
)

// Violation is one invariant failure.
type Violation struct {
	Kind   string // "panic", "swmr", "wp-exclusive", "data-value", "deadlock", "invariant", "unexpected-transition", "next-state"
	Detail string
}

func (v *Violation) Error() string { return v.Kind + ": " + v.Detail }

// pendAcc is the specification's view of one injected, not-yet-completed
// access.
type pendAcc struct {
	core  int
	line  int
	op    Op
	token uint64 // the value a store commits

	// legal is the set of values a load may return: the value committed
	// when it was injected, plus every value committed while it was
	// outstanding (any of them is a sequentially consistent outcome).
	legal map[uint64]bool
}

// runner executes one action sequence against a fresh system, tracking
// the value specification and recording transitions. It is single-use:
// the only way to "rewind" is to build a new runner and replay.
type runner struct {
	cfg   *Config
	sys   *coherence.System
	addrs []cache.Addr

	committed []uint64     // per line: last committed store value
	out       [][]*pendAcc // per core: outstanding accesses in issue order
	perCore   []int        // per core: accesses injected so far (token stream)
	injected  int

	table    *Table        // nil disables unexpected-transition checking
	observed map[Pair]bool // shared across runners; nil disables recording

	// frames brackets in-flight deliveries for next-state conformance:
	// the pre-observation hook pushes the receiver's state and the proto
	// table cell, the post hook pops and checks the post-dispatch state
	// against the cell's next-state mask. Deliveries nest LIFO (a data
	// grant synchronously replays a merged store), so a stack suffices.
	frames []postFrame

	vio *Violation // first violation raised
}

// postFrame is one bracketed delivery awaiting its post-state check.
type postFrame struct {
	dir   bool
	id    int
	addr  cache.Addr
	l1St  proto.L1State
	dirSt proto.DirState
	ev    proto.Event
}

// tokenFor derives the unique value core's idx-th store writes. The bias
// keeps tokens disjoint from the address-derived initial tokens.
func tokenFor(core, idx int) uint64 {
	return 0xA0000000 + uint64(core)<<16 + uint64(idx)
}

func (c *checker) newRunner() *runner {
	sys := coherence.MustNewSystem(c.sysCfg)
	r := &runner{
		cfg:       &c.cfg,
		sys:       sys,
		addrs:     make([]cache.Addr, c.cfg.Lines),
		committed: make([]uint64, c.cfg.Lines),
		out:       make([][]*pendAcc, c.cfg.Cores),
		perCore:   make([]int, c.cfg.Cores),
		table:     c.cfg.Table,
		observed:  c.observed,
	}
	for i := range r.addrs {
		r.addrs[i] = cache.Addr(i * blockBytes)
		r.committed[i] = coherence.InitialToken(r.addrs[i])
	}
	sys.Observe = r.observeMsg
	sys.ObserveCPU = r.observeCPU
	if r.table != nil && r.table.Proto != nil {
		sys.ObservePost = r.observeMsgPost
		sys.ObserveCPUPost = r.observeCPUPost
	}
	r.runPrelude(c.cfg.Prelude)
	return r
}

// runPrelude executes the directed setup sequence, draining the engine
// after each access so exploration starts from a stable prepared state.
// Prelude accesses go through the same inject/complete machinery (so the
// value specification and transition recording see them), but do not
// count against the exploration depth budget.
func (r *runner) runPrelude(pre []Inject) {
	defer func() {
		if p := recover(); p != nil {
			r.fail("panic", fmt.Sprintf("controller panic in prelude: %v", p))
		}
	}()
	for _, in := range pre {
		r.inject(Action{Core: uint8(in.Core), Op: in.Op, Line: uint8(in.Line)})
		r.sys.Quiesce()
		if r.vio != nil {
			return
		}
	}
	r.injected = 0 // prelude accesses are free; Depth bounds exploration only
}

func (r *runner) fail(kind, detail string) {
	if r.vio == nil {
		r.vio = &Violation{Kind: kind, Detail: detail}
	}
}

// apply executes one action. Controller panics (protocol assertion
// failures, e.g. an Unblock with no transaction) are converted into
// violations rather than crashing the search.
func (r *runner) apply(a Action) {
	defer func() {
		if p := recover(); p != nil {
			r.fail("panic", fmt.Sprintf("controller panic: %v", p))
		}
	}()
	if a.Step {
		r.sys.Eng.Step()
		return
	}
	r.inject(a)
}

func (r *runner) inject(a Action) {
	core, line := int(a.Core), int(a.Line)
	pa := &pendAcc{
		core: core,
		line: line,
		op:   a.Op,
	}
	acc := coherence.Access{Addr: r.addrs[line]}
	switch a.Op {
	case OpStore:
		pa.token = tokenFor(core, r.perCore[core])
		acc.Write = true
		acc.Value = pa.token
	case OpLoadWP:
		acc.WP = true
		fallthrough
	case OpLoad:
		pa.legal = map[uint64]bool{r.committed[line]: true}
	}
	acc.Done = func(res coherence.AccessResult) { r.complete(pa, res) }
	r.perCore[core]++
	r.injected++
	r.out[core] = append(r.out[core], pa)
	r.sys.Submit(core, acc)
}

// complete is the Done callback: it retires the access from the
// outstanding set, commits store values, and checks loads against their
// legal value sets.
func (r *runner) complete(pa *pendAcc, res coherence.AccessResult) {
	lst := r.out[pa.core]
	for i, q := range lst {
		if q == pa {
			r.out[pa.core] = append(lst[:i], lst[i+1:]...)
			break
		}
	}
	if pa.op == OpStore {
		if res.Value != pa.token {
			r.fail("data-value", fmt.Sprintf(
				"core%d store x%d: completed with value %#x, stored %#x",
				pa.core, pa.line, res.Value, pa.token))
			return
		}
		// The store is now the committed value; every load still in
		// flight anywhere may legally observe it.
		r.committed[pa.line] = pa.token
		for _, outs := range r.out {
			for _, q := range outs {
				if q.line == pa.line && q.legal != nil {
					q.legal[pa.token] = true
				}
			}
		}
		return
	}
	if !pa.legal[res.Value] {
		r.fail("data-value", fmt.Sprintf(
			"core%d %s x%d returned %#x; legal values %s",
			pa.core, pa.op, pa.line, res.Value, fmtTokens(pa.legal)))
	}
}

func fmtTokens(set map[uint64]bool) string {
	keys := make([]uint64, 0, len(set))
	for k := range set {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool { return keys[i] < keys[j] })
	s := "{"
	for i, k := range keys {
		if i > 0 {
			s += ", "
		}
		s += fmt.Sprintf("%#x", k)
	}
	return s + "}"
}

// l1ProtoState is an L1's transition-relation state for a block: the
// MSHR transient state if a transaction is outstanding, else the stable
// line state (I when not resident). The proto enums mirror the coherence
// enums by construction (asserted on the coherence side), so the labels
// recorded from them match the controllers' own state names.
func (r *runner) l1ProtoState(id int, block cache.Addr) proto.L1State {
	if st, ok := r.sys.L1s[id].MSHRStateOf(block); ok {
		return proto.L1ISD + proto.L1State(st)
	}
	if ln := r.sys.L1s[id].Array().Lookup(block); ln != nil {
		return proto.L1State(ln.State)
	}
	return proto.L1I
}

// dirProtoState is the directory's transition-relation state for a
// block: DirBusy if a blocking transaction is in flight, else the entry
// state (DirI when absent).
func (r *runner) dirProtoState(addr cache.Addr) proto.DirState {
	if r.sys.BankBusy(addr) {
		return proto.DirBusy
	}
	return proto.DirState(r.sys.DirStateOf(addr))
}

// observeMsg is the System.Observe hook: it labels the receiver's
// pre-delivery state, validates the (state, event) pair, and brackets
// the delivery for the post-state check.
func (r *runner) observeMsg(m coherence.Msg, dst int) {
	f := postFrame{addr: m.Addr, ev: proto.EvGETS + proto.Event(m.Kind)}
	if dst == coherence.DirID {
		f.dir = true
		f.dirSt = r.dirProtoState(m.Addr)
		r.record(Pair{CtrlDir, f.dirSt.String(), m.Kind.String()})
	} else {
		f.id = dst
		f.l1St = r.l1ProtoState(dst, m.Addr)
		r.record(Pair{CtrlL1, f.l1St.String(), m.Kind.String()})
	}
	if r.table != nil && r.table.Proto != nil {
		r.frames = append(r.frames, f)
	}
}

// observeCPU is the System.ObserveCPU hook: CPU examinations are
// transition-relation events too ("Load"/"Store").
func (r *runner) observeCPU(port int, block cache.Addr, write bool) {
	ev := proto.EvLoad
	if write {
		ev = proto.EvStore
	}
	st := r.l1ProtoState(port, block)
	r.record(Pair{CtrlL1, st.String(), ev.String()})
	if r.table != nil && r.table.Proto != nil {
		r.frames = append(r.frames, postFrame{id: port, addr: block, l1St: st, ev: ev})
	}
}

// observeMsgPost / observeCPUPost close the bracket opened by the pre
// hooks: the receiver has fully dispatched the event, so its state must
// now be inside the table cell's next-state mask.
func (r *runner) observeMsgPost(m coherence.Msg, dst int) {
	r.closeFrame(dst == coherence.DirID, max(dst, 0), m.Addr,
		proto.EvGETS+proto.Event(m.Kind))
}

func (r *runner) observeCPUPost(port int, block cache.Addr, write bool) {
	ev := proto.EvLoad
	if write {
		ev = proto.EvStore
	}
	r.closeFrame(false, port, block, ev)
}

func (r *runner) closeFrame(dir bool, id int, addr cache.Addr, ev proto.Event) {
	if len(r.frames) == 0 {
		return
	}
	f := r.frames[len(r.frames)-1]
	r.frames = r.frames[:len(r.frames)-1]
	if f.dir != dir || (!dir && f.id != id) || f.addr != addr || f.ev != ev {
		// The bracketing only breaks after a recovered dispatch panic,
		// which has already been recorded as a violation; stop matching
		// rather than cascade spurious next-state failures.
		r.frames = r.frames[:0]
		return
	}
	pt := r.table.Proto
	if f.dir {
		ent := &pt.Dir[f.dirSt][f.ev]
		if ent.Class != proto.Defined && ent.Class != proto.Defensive {
			return // the membership check already failed this pair
		}
		if post := r.dirProtoState(addr); !proto.HasDir(ent.Next, post) {
			r.fail("next-state", fmt.Sprintf(
				"Dir[%s] <- %s dispatched to %s, outside the %s next-state mask",
				f.dirSt, f.ev, post, r.table.Policy))
		}
		return
	}
	ent := &pt.L1[f.l1St][f.ev]
	if ent.Class != proto.Defined && ent.Class != proto.Defensive {
		return
	}
	if post := r.l1ProtoState(f.id, addr); !proto.HasL1(ent.Next, post) {
		r.fail("next-state", fmt.Sprintf(
			"L1(%d)[%s] <- %s dispatched to %s, outside the %s next-state mask",
			f.id, f.l1St, f.ev, post, r.table.Policy))
	}
}

func (r *runner) record(p Pair) {
	if r.observed != nil {
		r.observed[p] = true
	}
	if r.table != nil && !r.table.Allowed[p] {
		r.fail("unexpected-transition", fmt.Sprintf(
			"%s not in the %s transition relation", p, r.table.Policy))
	}
}

// checkState runs the per-state invariants after an action.
func (r *runner) checkState() *Violation {
	if r.vio != nil {
		return r.vio
	}
	r.checkSWMR()
	if r.vio == nil && r.sys.Eng.Pending() == 0 {
		r.checkQuiescent()
	}
	return r.vio
}

// checkSWMR enforces single-writer/multiple-reader in EVERY state, not
// just quiescent ones: at most one copy in an exclusive-like state
// (E/M/O), and no writer-capable copy alongside any other copy. A copy
// is writer-capable if it can be written without a directory round trip:
// M always, E iff the policy allows silent upgrades for it. (An E copy
// coexisting with fresh S copies is legal mid-serve for S-MESI, where E
// is read-only until an explicit upgrade; an O copy coexists with the
// sharers it supplies by design — MOESI stores on O pay an explicit
// Upgrade, so O is dirty but not writer-capable.)
func (r *runner) checkSWMR() {
	for li, addr := range r.addrs {
		var exclusive, copies, forwards int
		writers := 0
		for id := range r.sys.L1s {
			ln := r.sys.L1s[id].Array().Lookup(addr)
			if ln == nil {
				continue
			}
			copies++
			switch ln.State {
			case cache.Exclusive:
				exclusive++
				if r.cfg.Policy.SilentUpgrade(ln.WP) {
					writers++
				}
			case cache.Modified:
				exclusive++
				writers++
			case cache.Owned:
				exclusive++
			case cache.Forward:
				forwards++
			}
		}
		if exclusive > 1 {
			r.fail("swmr", fmt.Sprintf(
				"x%d: %d exclusive-like (E/M/O) copies", li, exclusive))
			return
		}
		if forwards > 1 {
			r.fail("swmr", fmt.Sprintf("x%d: %d Forward copies", li, forwards))
			return
		}
		if writers > 0 && copies > 1 {
			r.fail("swmr", fmt.Sprintf(
				"x%d: writer-capable copy coexists with %d other copies",
				li, copies-1))
			return
		}
		// SwiftDir's security invariant, checked in every state: a
		// policy that refuses exclusive grants for write-protected data
		// must never produce a non-Shared write-protected line.
		if !r.cfg.Policy.GrantExclusiveOnLoad(true) {
			for id := range r.sys.L1s {
				ln := r.sys.L1s[id].Array().Lookup(addr)
				if ln != nil && ln.WP && ln.State != cache.Shared {
					r.fail("wp-exclusive", fmt.Sprintf(
						"x%d: write-protected line in %s at L1(%d)",
						li, ln.State, id))
					return
				}
			}
		}
	}
}

// checkQuiescent runs when the engine has drained: every access must
// have completed (deadlock freedom), the system's own structural
// invariants must hold, and every surviving copy must equal the
// committed value.
func (r *runner) checkQuiescent() {
	for core, outs := range r.out {
		if len(outs) > 0 {
			pa := outs[0]
			r.fail("deadlock", fmt.Sprintf(
				"engine drained with core%d %s x%d incomplete (%d outstanding total)",
				core, pa.op, pa.line, r.totalOut()))
			return
		}
	}
	if err := r.sys.CheckInvariants(); err != nil {
		r.fail("invariant", err.Error())
		return
	}
	for li, addr := range r.addrs {
		want := r.committed[li]
		for id := range r.sys.L1s {
			if ln := r.sys.L1s[id].Array().Lookup(addr); ln != nil && ln.Data != want {
				r.fail("data-value", fmt.Sprintf(
					"quiescent: L1(%d) holds x%d=%#x, committed %#x",
					id, li, ln.Data, want))
				return
			}
		}
		if e, ok := r.sys.DirEntryOf(addr); ok {
			// With no L1 writer (DirP/DirS) the LLC copy must be
			// current; under DirE/DirM/DirO a dirty L1 copy may have
			// left it stale, which the checks above already cover.
			if e.State == coherence.DirPresent || e.State == coherence.DirShared {
				ln := r.sys.BankArray(0).Lookup(addr)
				if ln == nil {
					r.fail("invariant", fmt.Sprintf(
						"quiescent: x%d has a directory entry but no LLC line", li))
					return
				}
				if ln.Data != want {
					r.fail("data-value", fmt.Sprintf(
						"quiescent: LLC holds x%d=%#x, committed %#x",
						li, ln.Data, want))
					return
				}
			}
		} else if got := r.sys.MemRead(addr); got != want {
			r.fail("data-value", fmt.Sprintf(
				"quiescent: memory holds x%d=%#x, committed %#x", li, got, want))
			return
		}
	}
}

func (r *runner) totalOut() int {
	n := 0
	for _, outs := range r.out {
		n += len(outs)
	}
	return n
}
