package mcheck

import (
	"fmt"
	"sort"

	"repro/internal/coherence"
)

// Ctrl identifies which controller class observed an event.
type Ctrl uint8

const (
	CtrlL1 Ctrl = iota
	CtrlDir
)

func (c Ctrl) String() string {
	if c == CtrlDir {
		return "Dir"
	}
	return "L1"
}

// Pair is one (controller state, event) observation. State is the
// receiver's state at delivery time: for an L1, the MSHR transient state
// if the block has an outstanding transaction, else the stable line state
// ("I" when absent); for the directory, "DirBusy" if the block has an
// in-flight transaction, else the entry state ("DirI" when absent).
// Event is a MsgKind name, or "Load"/"Store" for CPU accesses observed
// at L1 examination time.
type Pair struct {
	Ctrl  Ctrl
	State string
	Event string
}

func (p Pair) String() string {
	return fmt.Sprintf("%s[%s] <- %s", p.Ctrl, p.State, p.Event)
}

// dirBusy is the Pair.State label for a block with an in-flight
// directory transaction (arriving requests queue behind it).
const dirBusy = "DirBusy"

// Table is a protocol's transition relation: the set of (state, event)
// pairs the controllers are expected to encounter. It encodes the
// paper's Tables I-III plus the race transitions the real blocking
// directory exhibits (stale evictions crossing invalidations, recalls
// racing upgrades, writebacks racing forwards). An observed pair outside
// the table is an unexpected-transition violation; a table pair never
// observed shows up in the coverage report.
type Table struct {
	Policy  string
	Allowed map[Pair]bool
}

func newTable(policy string) *Table {
	return &Table{Policy: policy, Allowed: make(map[Pair]bool)}
}

func (t *Table) l1(state string, events ...string) {
	for _, e := range events {
		t.Allowed[Pair{CtrlL1, state, e}] = true
	}
}

func (t *Table) dir(state string, events ...string) {
	for _, e := range events {
		t.Allowed[Pair{CtrlDir, state, e}] = true
	}
}

// Pairs returns the table entries sorted (Ctrl, State, Event).
func (t *Table) Pairs() []Pair {
	out := make([]Pair, 0, len(t.Allowed))
	for p := range t.Allowed {
		out = append(out, p)
	}
	sort.Slice(out, func(i, j int) bool {
		a, b := out[i], out[j]
		if a.Ctrl != b.Ctrl {
			return a.Ctrl < b.Ctrl
		}
		if a.State != b.State {
			return a.State < b.State
		}
		return a.Event < b.Event
	})
	return out
}

// Event-name shorthands, taken from the canonical MsgKind names so the
// table cannot drift from the message vocabulary.
var (
	evLoad  = "Load"
	evStore = "Store"

	evGETS    = coherence.MsgGETS.String()
	evGETSWP  = coherence.MsgGETSWP.String()
	evGETX    = coherence.MsgGETX.String()
	evUpgrade = coherence.MsgUpgrade.String()
	evPUTS    = coherence.MsgPUTS.String()
	evPUTX    = coherence.MsgPUTX.String()
	evUnblock = coherence.MsgUnblock.String()
	evExUnblk = coherence.MsgExclusiveUnblock.String()
	evInvAck  = coherence.MsgInvAck.String()
	evWBData  = coherence.MsgWBData.String()

	evData    = coherence.MsgData.String()
	evDataEx  = coherence.MsgDataExclusive.String()
	evUpgAck  = coherence.MsgUpgradeAck.String()
	evInv     = coherence.MsgInv.String()
	evFwdGETS = coherence.MsgFwdGETS.String()
	evFwdGETX = coherence.MsgFwdGETX.String()
	evDowng   = coherence.MsgDowngrade.String()
	evWBAck   = coherence.MsgWBAck.String()
	evDataOwn = coherence.MsgDataFromOwner.String()
)

// mesiBase is the transition relation shared by MESI and SwiftDir (whose
// only protocol delta is the GETS_WP request kind and the shared-only
// grant for write-protected data — no new states or events at the L1).
func mesiBase(policy string) *Table {
	t := newTable(policy)

	// L1 stable states.
	// "I" sees messages for blocks it no longer (or does not yet) hold:
	// Inv crossing a PUTS or arriving after a recall; Fwd_GETS/Fwd_GETX
	// answered from the writeback buffer after an owner eviction; WB_Ack
	// completing an eviction.
	t.l1("I", evLoad, evStore, evInv, evFwdGETS, evFwdGETX, evWBAck)
	t.l1("S", evLoad, evStore, evInv)
	t.l1("E", evLoad, evStore, evFwdGETS, evFwdGETX)
	t.l1("M", evLoad, evStore, evFwdGETS, evFwdGETX)

	// L1 transient states. Load/Store are merges into the outstanding
	// MSHR. Inv in IS^D/IM^D targets a stale sharer record (the local
	// copy was evicted or recalled before this transaction re-requested
	// the block); Inv in SM^A is the upgrade-vs-GETX race that downgrades
	// the upgrade to a full miss. WB_Ack, Fwd_GETS, and Fwd_GETX in
	// IS^D/IM^D belong to an earlier eviction of the same block that the
	// re-miss overtook: the eviction's PUTX is still in flight and the
	// forward is answered from the writeback buffer.
	t.l1("IS^D", evLoad, evStore, evData, evDataEx, evDataOwn, evInv,
		evWBAck, evFwdGETS, evFwdGETX)
	t.l1("IM^D", evLoad, evStore, evDataEx, evDataOwn, evInv,
		evWBAck, evFwdGETS, evFwdGETX)
	t.l1("SM^A", evLoad, evStore, evUpgAck, evInv)

	// Directory, by entry state at delivery. Upgrade at DirI/DirE/DirM is
	// the recall-vs-upgrade race (the requestor's S copy was recalled or
	// invalidated while its Upgrade was in flight; the directory demotes
	// it to a store miss). PUTS/PUTX at states that no longer record the
	// evictor are stale eviction notices crossing invalidations.
	t.dir("DirI", evGETS, evGETX, evUpgrade, evPUTS, evPUTX)
	t.dir("DirP", evGETS, evGETX, evPUTS)
	t.dir("DirS", evGETS, evGETX, evUpgrade, evPUTS, evPUTX)
	t.dir("DirE", evGETS, evGETX, evUpgrade, evPUTX)
	t.dir("DirM", evGETS, evGETX, evUpgrade, evPUTX)

	// A busy block queues new requests and accepts the completion
	// traffic of the in-flight transaction.
	t.dir(dirBusy, evGETS, evGETX, evUpgrade, evPUTS, evPUTX,
		evUnblock, evExUnblk, evInvAck, evWBData)

	return t
}

func mesiTable() *Table { return mesiBase("MESI") }

func swiftDirTable() *Table {
	t := mesiBase("SwiftDir")
	// Write-protected load misses use GETS_WP; the directory handles it
	// wherever GETS is legal.
	t.dir("DirI", evGETSWP)
	t.dir("DirP", evGETSWP)
	t.dir("DirS", evGETSWP)
	t.dir("DirE", evGETSWP)
	t.dir("DirM", evGETSWP)
	t.dir(dirBusy, evGETSWP)
	return t
}

func smesiTable() *Table {
	t := newTable("S-MESI")

	// S-MESI revokes silent upgrades: stores on E go through an explicit
	// EM^A upgrade, loads on DirE are served from the LLC (clean by
	// construction) with a Downgrade to the owner instead of a forward.
	// Downgrade at I is the owner-evicted race (PUTX crossed the serve).
	t.l1("I", evLoad, evStore, evInv, evFwdGETS, evFwdGETX, evWBAck, evDowng)
	t.l1("S", evLoad, evStore, evInv)
	// E never sees Fwd_GETS (loads at DirE are LLC-served), but GETX
	// still forwards to the owner.
	t.l1("E", evLoad, evStore, evFwdGETX, evDowng)
	t.l1("M", evLoad, evStore, evFwdGETS, evFwdGETX)

	// Transients also see the wb-race messages of an overtaken eviction
	// (see mesiBase), plus Downgrade when the evicted copy was E and the
	// directory LLC-served a load before the PUTX landed.
	t.l1("IS^D", evLoad, evStore, evData, evDataEx, evDataOwn, evInv,
		evWBAck, evFwdGETS, evFwdGETX, evDowng)
	t.l1("IM^D", evLoad, evStore, evDataEx, evDataOwn, evInv,
		evWBAck, evFwdGETS, evFwdGETX, evDowng)
	t.l1("SM^A", evLoad, evStore, evUpgAck, evInv)
	t.l1("EM^A", evLoad, evStore, evUpgAck, evFwdGETX, evDowng)

	t.dir("DirI", evGETS, evGETX, evUpgrade, evPUTS, evPUTX)
	t.dir("DirP", evGETS, evGETX, evPUTS)
	t.dir("DirS", evGETS, evGETX, evUpgrade, evPUTS, evPUTX)
	// Upgrade at DirE is S-MESI's EM^A in the common (unraced) case.
	t.dir("DirE", evGETS, evGETX, evUpgrade, evPUTX)
	t.dir("DirM", evGETS, evGETX, evUpgrade, evPUTX)
	t.dir(dirBusy, evGETS, evGETX, evUpgrade, evPUTS, evPUTX,
		evUnblock, evExUnblk, evInvAck, evWBData)

	return t
}

// TableFor returns the transition relation for a policy, or nil for
// policies without one (the semantic invariants still run; only
// unexpected-transition checking and coverage are disabled).
func TableFor(p coherence.Policy) *Table {
	switch p.Name() {
	case "MESI":
		return mesiTable()
	case "SwiftDir":
		return swiftDirTable()
	case "S-MESI":
		return smesiTable()
	}
	return nil
}
