package mcheck

import (
	"fmt"
	"sort"

	"repro/internal/coherence"
	"repro/internal/proto"
)

// Ctrl identifies which controller class observed an event.
type Ctrl uint8

const (
	CtrlL1 Ctrl = iota
	CtrlDir
)

func (c Ctrl) String() string {
	if c == CtrlDir {
		return "Dir"
	}
	return "L1"
}

// Pair is one (controller state, event) observation. State is the
// receiver's state at delivery time: for an L1, the MSHR transient state
// if the block has an outstanding transaction, else the stable line state
// ("I" when absent); for the directory, "DirBusy" if the block has an
// in-flight transaction, else the entry state ("DirI" when absent).
// Event is a MsgKind name, or "Load"/"Store" for CPU accesses observed
// at L1 examination time.
type Pair struct {
	Ctrl  Ctrl
	State string
	Event string
}

func (p Pair) String() string {
	return fmt.Sprintf("%s[%s] <- %s", p.Ctrl, p.State, p.Event)
}

// Event-name shorthands for CPU examinations (message events use the
// MsgKind names directly, which proto asserts equal its Event names).
const (
	evLoad  = "Load"
	evStore = "Store"
)

// Table is a protocol's transition relation as the checker consumes it.
// It is a view over the policy's canonical proto.Table — the SAME table
// the runtime controllers dispatch from — so the relation the simulator
// executes and the relation the checker verifies cannot drift apart.
//
// Allowed is the set of Defined (state, event) pairs, keyed by the
// canonical state/event name strings. Defensive cells are deliberately
// NOT allowed: the controllers handle them gracefully because wider
// configurations (deeper queues, injected delays) could produce them,
// but the bounded model should never reach one, so observing one is
// still an unexpected-transition violation. Proto carries the full
// cells for next-state mask conformance after each dispatch.
type Table struct {
	Policy  string
	Proto   *proto.Table
	Allowed map[Pair]bool
}

// fromProto projects a canonical table onto the checker's string-keyed
// view of its Defined relation.
func fromProto(pt *proto.Table) *Table {
	t := &Table{Policy: pt.Policy, Proto: pt, Allowed: make(map[Pair]bool)}
	for s := proto.L1State(0); s < proto.NumL1States; s++ {
		for e := proto.Event(0); e < proto.NumEvents; e++ {
			if pt.L1[s][e].Class == proto.Defined {
				t.Allowed[Pair{CtrlL1, s.String(), e.String()}] = true
			}
		}
	}
	for s := proto.DirState(0); s < proto.NumDirStates; s++ {
		for e := proto.Event(0); e < proto.NumEvents; e++ {
			if pt.Dir[s][e].Class == proto.Defined {
				t.Allowed[Pair{CtrlDir, s.String(), e.String()}] = true
			}
		}
	}
	return t
}

// Pairs returns the table entries sorted (Ctrl, State, Event).
func (t *Table) Pairs() []Pair {
	out := make([]Pair, 0, len(t.Allowed))
	for p := range t.Allowed {
		out = append(out, p)
	}
	sort.Slice(out, func(i, j int) bool {
		a, b := out[i], out[j]
		if a.Ctrl != b.Ctrl {
			return a.Ctrl < b.Ctrl
		}
		if a.State != b.State {
			return a.State < b.State
		}
		return a.Event < b.Event
	})
	return out
}

// TableFor returns the transition relation for a policy — a view over the
// same proto.Table its controllers dispatch from — or nil for ad-hoc
// policies without a registered table (the semantic invariants still run;
// only membership checking, next-state conformance, and coverage are
// disabled).
func TableFor(p coherence.Policy) *Table {
	if pt := proto.TableFor(p.Name()); pt != nil {
		return fromProto(pt)
	}
	return nil
}
