package mcheck

import (
	"fmt"

	"repro/internal/coherence"
)

// checker holds the shared exploration state of one Run.
type checker struct {
	cfg      Config
	sysCfg   coherence.SystemConfig
	observed map[Pair]bool
	ops      []Op
}

// node is one reached state. The deterministic engine makes the action
// path from the root a complete description of the state, so a node
// stores only its incoming edge plus the tiny summary needed to
// enumerate enabled actions without a replay.
type node struct {
	parent *node
	act    Action
	depth  int32

	injected int16
	pending  bool // engine has pending events (Step is enabled)
	outs     [maxCores]int8
}

// path reconstructs the action sequence from the root to n.
func (n *node) path(buf []Action) []Action {
	buf = buf[:0]
	for m := n; m.parent != nil; m = m.parent {
		buf = append(buf, m.act)
	}
	for i, j := 0, len(buf)-1; i < j; i, j = i+1, j-1 {
		buf[i], buf[j] = buf[j], buf[i]
	}
	return buf
}

// enabled lists the actions applicable in n's state: one engine step if
// events are pending, plus every injection that respects the depth and
// per-core outstanding bounds.
func (c *checker) enabled(n *node, buf []Action) []Action {
	buf = buf[:0]
	if n.pending {
		buf = append(buf, stepAction)
	}
	if int(n.injected) < c.cfg.Depth {
		for core := 0; core < c.cfg.Cores; core++ {
			if int(n.outs[core]) >= c.cfg.MaxOutstanding {
				continue
			}
			for _, op := range c.ops {
				for line := 0; line < c.cfg.Lines; line++ {
					buf = append(buf, Action{
						Core: uint8(core), Op: op, Line: uint8(line),
					})
				}
			}
		}
	}
	return buf
}

// summarize fills a node's enabled-action summary from a runner that
// just reached its state.
func summarize(n *node, r *runner) {
	n.injected = int16(r.injected)
	n.pending = r.sys.Eng.Pending() > 0
	for core, outs := range r.out {
		n.outs[core] = int8(len(outs))
	}
}

// explore runs the BFS. It returns a Result with either a violation (at
// minimal action depth, by BFS order) or the exhaustive-state counts.
func (c *checker) explore() *Result {
	res := &Result{}

	root := &node{}
	rootRunner := c.newRunner()
	if v := rootRunner.checkState(); v != nil {
		// A fresh idle system violating an invariant means the harness
		// itself is broken; surface it as a zero-action counterexample.
		res.Violation = c.counterexample(nil, v)
		return res
	}
	summarize(root, rootRunner)

	seen := map[fp]struct{}{c.fingerprint(rootRunner): {}}
	queue := []*node{root}
	res.States = 1
	res.Quiescent = 1

	var pathBuf, actBuf []Action
	for qi := 0; qi < len(queue); qi++ {
		n := queue[qi]
		actions := c.enabled(n, actBuf)
		actBuf = actions // reuse backing array next iteration
		if len(actions) == 0 {
			res.Terminal++
			continue
		}
		pathBuf = n.path(pathBuf)
		for _, a := range actions {
			res.Edges++
			r := c.newRunner()
			for i, pa := range pathBuf {
				r.apply(pa)
				if r.vio != nil {
					// The prefix was violation-free when first explored;
					// a violation during replay means determinism broke.
					res.Violation = c.counterexample(pathBuf[:i+1], &Violation{
						Kind: "nondeterminism",
						Detail: fmt.Sprintf(
							"replayed prefix raised %s (%s); the engine is not deterministic",
							r.vio.Kind, r.vio.Detail),
					})
					return res
				}
			}
			r.apply(a)
			if v := r.checkState(); v != nil {
				trace := append(append([]Action{}, pathBuf...), a)
				res.Violation = c.counterexample(trace, v)
				return res
			}
			f := c.fingerprint(r)
			if _, dup := seen[f]; dup {
				continue
			}
			if len(seen) >= c.cfg.MaxStates {
				res.Truncated = true
				return res
			}
			seen[f] = struct{}{}
			child := &node{parent: n, act: a, depth: n.depth + 1}
			summarize(child, r)
			res.States++
			if !child.pending {
				res.Quiescent++
			}
			if int(child.depth) > res.MaxDepth {
				res.MaxDepth = int(child.depth)
			}
			queue = append(queue, child)
		}
		// Release explored nodes' queue slots for GC; the node itself
		// stays reachable through its children's parent pointers.
		queue[qi] = nil
	}
	return res
}
