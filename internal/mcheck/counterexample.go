package mcheck

import (
	"fmt"
	"strings"
)

// Counterexample is a minimal action schedule reaching a violating
// state, plus the message transcript of replaying it through the real
// controllers (via the coherence trace machinery).
type Counterexample struct {
	Violation Violation
	Policy    string
	Actions   []Action
	Trace     string // rendered message transcript of the replay
}

// Script renders the schedule one action per line, numbered.
func (cx *Counterexample) Script() string {
	var b strings.Builder
	for i, a := range cx.Actions {
		fmt.Fprintf(&b, "%3d. %s\n", i+1, a)
	}
	return b.String()
}

// String renders the full report: violation, schedule, transcript.
func (cx *Counterexample) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "counterexample for %s (%d actions)\n", cx.Policy, len(cx.Actions))
	fmt.Fprintf(&b, "violation: %s: %s\n\n", cx.Violation.Kind, cx.Violation.Detail)
	b.WriteString("schedule:\n")
	b.WriteString(cx.Script())
	b.WriteByte('\n')
	b.WriteString(cx.Trace)
	return b.String()
}

// counterexample replays the violating schedule with a tracer attached
// and packages the transcript. The replay tolerates the final action
// panicking (the trace still holds every message delivered before it).
func (c *checker) counterexample(actions []Action, v *Violation) *Counterexample {
	r := c.newRunner()
	// The replay must not double-report into the shared observation
	// state, and must not stop at the table violation (we want the
	// transcript up to and including the bad delivery).
	r.observed = nil
	r.table = nil
	tr := r.sys.AttachTracer()
	for _, a := range actions {
		r.apply(a)
	}
	return &Counterexample{
		Violation: *v,
		Policy:    c.cfg.Policy.Name(),
		Actions:   append([]Action{}, actions...),
		Trace: tr.Render(fmt.Sprintf("message transcript (%s, %d actions):",
			c.cfg.Policy.Name(), len(actions))),
	}
}
