package mcheck

import (
	"testing"

	"repro/internal/coherence"
	"repro/internal/proto"
)

// TestTablesAreSharedWithDispatch pins the single-source-of-truth
// property: for every shipped policy the checker's relation is a view
// over the SAME proto.Table instance the runtime controllers dispatch
// from, and Allowed is exactly its Defined cells.
func TestTablesAreSharedWithDispatch(t *testing.T) {
	for _, p := range coherence.ExtendedPolicies {
		tb := TableFor(p)
		if tb == nil {
			t.Fatalf("%s: no transition relation", p.Name())
		}
		pt := proto.TableFor(p.Name())
		if tb.Proto != pt {
			t.Errorf("%s: checker table is not the dispatch table instance", p.Name())
		}
		defined, _, _, _ := pt.Counts()
		if len(tb.Allowed) != defined {
			t.Errorf("%s: Allowed has %d pairs, table defines %d",
				p.Name(), len(tb.Allowed), defined)
		}
		for _, pr := range tb.Pairs() {
			if pr.State == "" || pr.Event == "" {
				t.Errorf("%s: malformed pair %v", p.Name(), pr)
			}
		}
	}
}

// TestTablesComplete asserts every (state, event) cell of every shipped
// table carries an explicit classification — there is no silent-default
// cell a controller could fall through, and every cell outside the
// relation is typed (defensive, impossible, or illegal).
func TestTablesComplete(t *testing.T) {
	for _, name := range proto.Names() {
		pt := proto.TableFor(name)
		for s := proto.L1State(0); s < proto.NumL1States; s++ {
			for e := proto.Event(0); e < proto.NumEvents; e++ {
				if pt.L1[s][e].Class == proto.Unclassified {
					t.Errorf("%s: L1[%s][%s] unclassified", name, s, e)
				}
			}
		}
		for s := proto.DirState(0); s < proto.NumDirStates; s++ {
			for e := proto.Event(0); e < proto.NumEvents; e++ {
				if pt.Dir[s][e].Class == proto.Unclassified {
					t.Errorf("%s: Dir[%s][%s] unclassified", name, s, e)
				}
			}
		}
	}
}
