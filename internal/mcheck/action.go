package mcheck

import "fmt"

// Op is an injected CPU operation.
type Op uint8

const (
	OpLoad Op = iota
	OpStore
	// OpLoadWP is a load of write-protected data: the MMU delivers the
	// WP bit with the translation, and SwiftDir-family policies request
	// it with GETS_WP. Write-protected stores are not a separate op: a
	// store's directory handling is identical with or without the bit.
	OpLoadWP
)

func (o Op) String() string {
	switch o {
	case OpLoad:
		return "load"
	case OpStore:
		return "store"
	case OpLoadWP:
		return "load-wp"
	}
	return fmt.Sprintf("Op(%d)", uint8(o))
}

// Action is one step of a schedule: either executing the next pending
// engine event, or injecting a CPU access on a core. Because the engine
// is deterministic, a sequence of Actions fully determines a state.
type Action struct {
	Step bool // true: run one engine event; Core/Op/Line unused
	Core uint8
	Op   Op
	Line uint8
}

// stepAction is the singleton engine-step action.
var stepAction = Action{Step: true}

func (a Action) String() string {
	if a.Step {
		return "step"
	}
	return fmt.Sprintf("core%d %s x%d", a.Core, a.Op, a.Line)
}
