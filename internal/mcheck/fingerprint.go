package mcheck

import (
	"math/bits"
	"sort"

	"repro/internal/cache"
	"repro/internal/coherence"
	"repro/internal/sim"
)

// fp is a 128-bit state fingerprint. Two independently mixed 64-bit
// accumulators make accidental collisions (which would unsoundly merge
// distinct states) negligible at the state counts mcheck explores.
type fp struct{ a, b uint64 }

type fpHash struct{ a, b uint64 }

func newFPHash() *fpHash {
	return &fpHash{a: 0xcbf29ce484222325, b: 0x9E3779B97F4A7C15}
}

func (h *fpHash) emit(v uint64) {
	h.a ^= v
	h.a *= 0x100000001b3
	h.a = bits.RotateLeft64(h.a, 27)
	h.b += v*0x9E3779B97F4A7C15 + 0x7F4A7C15
	h.b ^= h.b >> 29
	h.b *= 0xBF58476D1CE4E5B9
}

func (h *fpHash) sum() fp { return fp{h.a, h.b} }

// fingerprint computes the canonical fingerprint of the runner's current
// state: everything that can influence future behaviour, and nothing
// that cannot. Time enters only as deltas (event deadlines and DRAM
// timestamps relative to now), so two states that differ only in how
// long their histories took fingerprint identically. The specification's
// own bookkeeping (outstanding accesses, legal value sets, committed
// values, token counters) is included because it decides future checks
// and token values.
func (c *checker) fingerprint(r *runner) fp {
	h := newFPHash()
	emit := h.emit
	now := r.sys.Eng.Now()

	// Specification state.
	emit(uint64(r.injected))
	for core := 0; core < c.cfg.Cores; core++ {
		emit(uint64(r.perCore[core])<<8 | uint64(len(r.out[core])))
		for _, pa := range r.out[core] {
			emit(uint64(pa.line)<<16 | uint64(pa.op)<<8 | uint64(pa.core))
			if pa.legal != nil {
				keys := make([]uint64, 0, len(pa.legal))
				for k := range pa.legal {
					keys = append(keys, k)
				}
				sort.Slice(keys, func(i, j int) bool { return keys[i] < keys[j] })
				emit(uint64(len(keys)))
				for _, k := range keys {
					emit(k)
				}
			}
		}
	}
	for _, v := range r.committed {
		emit(v)
	}

	// L1 controllers: array (tags, states, data, replacement order),
	// MSHRs with their merged accesses, writeback buffers.
	for id := range r.sys.L1s {
		l1 := r.sys.L1s[id]
		emit(0x4C310000 | uint64(id)) // per-L1 separator
		l1.Array().AppendFingerprint(emit)
		l1.ForEachMSHR(func(block cache.Addr, st coherence.Transient, wp bool, pending []coherence.Access) {
			w := uint64(st)<<1 | b2u(wp)
			emit(uint64(block))
			emit(w<<8 | uint64(len(pending)))
			for i := range pending {
				emit(b2u(pending[i].Write)<<1 | b2u(pending[i].WP))
				emit(pending[i].Value)
			}
		})
		l1.ForEachWB(func(block cache.Addr, data uint64, dirty bool) {
			emit(uint64(block))
			emit(data<<1 | b2u(dirty))
		})
	}

	// Directory + LLC: entries, in-flight transactions (request, waits,
	// deferred grants, queued requests), pinned grants, bank arrays.
	r.sys.ForEachDirEntry(func(bank int, addr cache.Addr, v coherence.DirEntryView) {
		emit(uint64(addr))
		emit(uint64(v.State)<<32 | uint64(uint8(int8(v.Owner)))<<16 |
			uint64(uint8(int8(v.Forwarder)))<<8 | b2u(v.LLCDirty)<<1 | b2u(v.WP))
		emit(v.Sharers)
	})
	r.sys.ForEachBusy(func(bank int, addr cache.Addr, v coherence.TxnView) {
		emit(uint64(addr))
		emitMsg(emit, v.Req)
		emit(uint64(v.WaitAcks)<<16 | uint64(v.PendKind)<<8 |
			b2u(v.WaitUnblock)<<1 | b2u(v.WaitWB))
		emit(v.PendData)
		emit(uint64(len(v.Queued)))
		for _, m := range v.Queued {
			emitMsg(emit, m)
		}
	})
	r.sys.ForEachPinned(func(bank int, addr cache.Addr, n int) {
		emit(uint64(addr))
		emit(uint64(n))
	})

	// Cluster hubs (two-level configurations only): exact local records,
	// outstanding ack aggregations, in-flight up-request counts. All of
	// it decides future filtering and acking behaviour.
	r.sys.ForEachHubState(func(hub int, addr cache.Addr, record uint64, pending, upReqs int) {
		emit(0x4855420000000000 | uint64(hub))
		emit(uint64(addr))
		emit(record)
		emit(uint64(pending)<<32 | uint64(upReqs))
	})
	for i := 0; i < r.sys.NumBanks(); i++ {
		r.sys.BankArray(i).AppendFingerprint(emit)
	}

	// Main-memory shadow image (only blocks that diverged from the
	// address-derived initial tokens).
	r.sys.ForEachMemImage(func(addr cache.Addr, v uint64) {
		emit(uint64(addr))
		emit(v)
	})

	// DRAM timing state, time-relative (refresh is disabled in mcheck
	// configurations, so this is translation-invariant).
	r.sys.Mem.AppendFingerprint(now, emit)

	// Pending events: relative deadline, destination handler, payload.
	// The engine's tie order (insertion order for equal deadlines) is
	// behaviourally significant and is preserved by ForEachPending, so
	// emitting in iteration order distinguishes states that would
	// execute the same events differently.
	r.sys.Eng.ForEachPending(func(rel sim.Cycle, hd sim.Handler, p sim.Payload, isClosure bool) {
		emit(uint64(rel))
		if isClosure {
			// mcheck configurations schedule no closures (every timed
			// action is a payload event); mark defensively if one
			// appears so it at least perturbs the fingerprint.
			emit(0xC105C105C105C105)
			return
		}
		emit(uint64(uint8(int8(r.sys.HandlerID(hd)))))
		emit(p.A)
		emit(p.B)
		emit(uint64(uint32(p.X))<<32 | uint64(uint32(p.Y)))
		emit(uint64(uint32(p.Z))<<24 | uint64(p.K)<<16 | uint64(p.F)<<8 | uint64(p.Aux))
		emit(uint64(p.Op))
	})

	return h.sum()
}

// emitMsg folds every field of a message into the fingerprint.
func emitMsg(emit func(uint64), m coherence.Msg) {
	emit(uint64(m.Addr))
	emit(uint64(m.Kind)<<32 | uint64(uint8(int8(m.Src)))<<24 |
		uint64(uint8(int8(m.Requestor)))<<16 | uint64(m.Served)<<8 |
		b2u(m.ClusterLast)<<6 |
		b2u(m.WP)<<5 | b2u(m.Dirty)<<4 | b2u(m.FromWB)<<3 |
		b2u(m.Excl)<<2 | b2u(m.Owned)<<1 | b2u(m.MakeForward))
	emit(m.Data)
}

func b2u(b bool) uint64 {
	if b {
		return 1
	}
	return 0
}
