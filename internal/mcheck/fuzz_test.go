package mcheck

import (
	"testing"

	"repro/internal/coherence"
)

// fuzzEnabled mirrors checker.enabled for a live runner: one engine step
// if events are pending, plus every injection respecting the depth and
// per-core outstanding bounds. The fuzzer only ever picks from this set,
// so every fuzzed schedule is a legal schedule the BFS explorer could
// itself have generated — just much longer than any exhaustive bound.
func fuzzEnabled(r *runner, cfg *Config, ops []Op, buf []Action) []Action {
	buf = buf[:0]
	if r.sys.Eng.Pending() > 0 {
		buf = append(buf, stepAction)
	}
	if r.injected < cfg.Depth {
		for core := 0; core < cfg.Cores; core++ {
			if len(r.out[core]) >= cfg.MaxOutstanding {
				continue
			}
			for _, op := range ops {
				for line := 0; line < cfg.Lines; line++ {
					buf = append(buf, Action{
						Core: uint8(core), Op: op, Line: uint8(line),
					})
				}
			}
		}
	}
	return buf
}

// FuzzTableDispatch drives random legal event sequences through the
// table-driven dispatchers and cross-checks every reached state with the
// explorer's full invariant battery: SWMR, data-value/sequential
// consistency, transition-relation membership, next-state masks, and
// deadlock freedom once drained. The first input byte selects the
// policy, so one corpus exercises every shipped table; each remaining
// byte selects one enabled action, so inputs stay meaningful under the
// fuzzer's mutations (no wasted illegal prefixes).
func FuzzTableDispatch(f *testing.F) {
	f.Add(uint8(0), []byte{0})
	f.Add(uint8(1), []byte{1, 0, 0, 0, 0, 0, 0, 0})
	f.Add(uint8(2), []byte{3, 1, 4, 1, 5, 9, 2, 6, 5, 3, 5, 8, 9, 7, 9})
	f.Add(uint8(3), []byte{0xFF, 0x00, 0xFF, 0x00, 0xFF, 0x00, 0xFF, 0x00,
		0x7F, 0x3F, 0x1F, 0x0F, 0x07, 0x03, 0x01, 0x00})
	f.Add(uint8(9), []byte{2, 2, 2, 2, 1, 1, 1, 1, 0, 0, 0, 0, 6, 6, 6, 6})

	f.Fuzz(func(t *testing.T, pb uint8, seq []byte) {
		policies := coherence.ExtendedPolicies
		p := policies[int(pb)%len(policies)]
		cfg := Config{Policy: p, Cores: 2, Lines: 2, Depth: 24}
		if err := cfg.fill(); err != nil {
			t.Fatal(err)
		}
		c := &checker{cfg: cfg, sysCfg: cfg.sysConfig(), observed: make(map[Pair]bool)}
		c.ops = []Op{OpLoad, OpStore}
		if cfg.wpEnabled() {
			c.ops = append(c.ops, OpLoadWP)
		}
		if len(seq) > 96 {
			seq = seq[:96]
		}

		r := c.newRunner()
		if v := r.checkState(); v != nil {
			t.Fatalf("%s: fresh system: %s", p.Name(), v)
		}
		var taken []Action
		var buf []Action
		for _, b := range seq {
			legal := fuzzEnabled(r, &cfg, c.ops, buf)
			buf = legal
			if len(legal) == 0 {
				break
			}
			a := legal[int(b)%len(legal)]
			r.apply(a)
			taken = append(taken, a)
			if v := r.checkState(); v != nil {
				t.Fatalf("%s: %s\nschedule: %v", p.Name(), v, taken)
			}
		}
		// Drain the engine so the quiescent checks (deadlock freedom,
		// committed-value agreement) run on every input, not only those
		// whose last byte happened to land on an idle system.
		for i := 0; r.sys.Eng.Pending() > 0; i++ {
			if i > 100000 {
				t.Fatalf("%s: engine failed to drain\nschedule: %v", p.Name(), taken)
			}
			r.apply(stepAction)
			if v := r.checkState(); v != nil {
				t.Fatalf("%s: %s\nschedule: %v", p.Name(), v, taken)
			}
		}
	})
}
