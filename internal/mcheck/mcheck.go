// Package mcheck is a bounded-exhaustive model checker for the coherence
// protocols in internal/coherence. Unlike hand-written protocol tests, it
// drives the REAL controllers — the same L1, directory, and DRAM code the
// simulator runs — through every interleaving of a small configuration
// (2-4 cores, 1-2 cache lines) and checks safety and liveness invariants
// in every reachable state:
//
//   - SWMR: at most one writer-capable copy of a block, and never
//     alongside other copies (single-writer/multiple-reader).
//   - Data-value: every load returns a value a sequentially consistent
//     memory could have returned (the last committed store, or any store
//     that committed while the load was outstanding).
//   - Deadlock freedom: whenever the event engine drains, every injected
//     access has completed.
//   - No unexpected transition: every observed (controller state, event)
//     pair appears in the protocol's transition relation — the SAME
//     internal/proto table the controllers dispatch from (the paper's
//     Tables I-III, extended with the race transitions the real blocking
//     directory exhibits) — and after each dispatch the receiver's state
//     must be inside that table cell's next-state mask. The relation
//     doubles as a coverage report.
//
// The checker explores by replay: the deterministic engine makes an
// action sequence a complete description of a state, so a BFS node is
// just a parent pointer and one action. States are deduplicated by a
// canonical 128-bit fingerprint that includes all behaviorally relevant
// state (arrays, MSHRs, directory entries, in-flight transactions,
// pending events with time-relative deadlines, and the specification's
// own bookkeeping). On a violation the BFS order guarantees a
// minimal-length counterexample, which is replayed with a Tracer attached
// to render the full message transcript.
package mcheck

import (
	"fmt"
	"time"

	"repro/internal/cache"
	"repro/internal/coherence"
	"repro/internal/dram"
	"repro/internal/stats"
)

// blockBytes is the line size of every mcheck configuration. The value is
// irrelevant to the protocol (data is a 64-bit shadow token); it only has
// to agree between the caches and the DRAM model.
const blockBytes = 64

// maxCores bounds the configuration size (node metadata is fixed-width).
const maxCores = 4

// WPOpt controls whether write-protected loads are part of the injected
// operation alphabet.
type WPOpt uint8

const (
	// WPAuto enables write-protected loads iff the policy distinguishes
	// them (i.e. it issues GETS_WP).
	WPAuto WPOpt = iota
	WPOn
	WPOff
)

// Config describes one model-checking run.
type Config struct {
	Policy coherence.Policy

	Cores int // number of L1s/cores (1..4); default 2
	Lines int // distinct block addresses accessed; default 1
	Depth int // total accesses injected along any path; default 4

	// Clusters > 1 checks the two-level directory: the cores partition
	// into per-cluster hubs and the home tracks sharer clusters. Must
	// divide Cores. 0 or 1 checks the flat directory.
	Clusters int

	// MaxOutstanding bounds the in-flight accesses per core, so MSHR
	// merging is exercised without unbounded pipelining. Default 2.
	MaxOutstanding int

	// L1Blocks / LLCBlocks are the cache capacities in blocks (fully
	// associative). Defaults are 1 each, so Lines=2 exercises both L1
	// conflict evictions and LLC recalls.
	L1Blocks  int
	LLCBlocks int

	// MaxStates caps the number of distinct states explored; hitting it
	// sets Result.Truncated (the run is then a bounded search, not a
	// proof). Default 500000.
	MaxStates int

	// Prelude is a directed access sequence, each entry executed to
	// quiescence before exploration starts. It prepares interesting
	// stable states (an E copy about to be evicted, two sharers, a
	// full LLC) so short explorations reach deep races that would
	// otherwise need an intractably large schedule space. Prelude
	// accesses do not count against Depth.
	Prelude []Inject

	// Table overrides the transition relation (nil: TableFor(Policy)).
	// If the policy has no table, unexpected-transition checking is
	// disabled and only the semantic invariants run.
	Table *Table

	// WPLoads controls write-protected loads in the alphabet.
	WPLoads WPOpt
}

func (c *Config) fill() error {
	if c.Policy == nil {
		return fmt.Errorf("mcheck: nil policy")
	}
	if c.Cores == 0 {
		c.Cores = 2
	}
	if c.Lines == 0 {
		c.Lines = 1
	}
	if c.Depth == 0 {
		c.Depth = 4
	}
	if c.MaxOutstanding == 0 {
		c.MaxOutstanding = 2
	}
	if c.L1Blocks == 0 {
		c.L1Blocks = 1
	}
	if c.LLCBlocks == 0 {
		c.LLCBlocks = 1
	}
	if c.MaxStates == 0 {
		c.MaxStates = 500000
	}
	if c.Cores < 1 || c.Cores > maxCores {
		return fmt.Errorf("mcheck: Cores %d out of range [1,%d]", c.Cores, maxCores)
	}
	if c.Clusters > 1 && c.Cores%c.Clusters != 0 {
		return fmt.Errorf("mcheck: Cores %d not divisible into %d clusters", c.Cores, c.Clusters)
	}
	if c.Lines < 1 || c.Lines > 8 {
		return fmt.Errorf("mcheck: Lines %d out of range [1,8]", c.Lines)
	}
	if c.Depth < 1 || c.Depth > 32 {
		return fmt.Errorf("mcheck: Depth %d out of range [1,32]", c.Depth)
	}
	for _, in := range c.Prelude {
		if in.Core < 0 || in.Core >= c.Cores || in.Line < 0 || in.Line >= c.Lines {
			return fmt.Errorf("mcheck: prelude access %+v out of range", in)
		}
	}
	if c.Table == nil {
		c.Table = TableFor(c.Policy)
	}
	return nil
}

// Inject is one prelude access.
type Inject struct {
	Core int
	Op   Op
	Line int
}

// wpEnabled reports whether write-protected loads are injected.
func (c *Config) wpEnabled() bool {
	switch c.WPLoads {
	case WPOn:
		return true
	case WPOff:
		return false
	}
	return c.Policy.LoadRequest(true) == coherence.MsgGETSWP
}

// sysConfig builds the hierarchy configuration: single-bank LLC, minimal
// flat DRAM timing with refresh disabled (refresh would make behaviour
// depend on absolute time, breaking the time-relative fingerprints), an
// ideal crossbar (zero occupancy/jitter, so the interconnect is
// stateless), and no prefetching.
func (c *Config) sysConfig() coherence.SystemConfig {
	return coherence.SystemConfig{
		NumL1: c.Cores,
		L1Params: cache.Params{
			Name: "mc-l1", SizeBytes: blockBytes * c.L1Blocks,
			Ways: c.L1Blocks, BlockSize: blockBytes,
		},
		LLCParams: cache.Params{
			Name: "mc-llc", SizeBytes: blockBytes * c.LLCBlocks,
			Ways: c.LLCBlocks, BlockSize: blockBytes,
		},
		Banks:    1,
		Clusters: c.Clusters,
		Timing: coherence.Timing{
			L1Tag: 1, Hop: 2, LLCTag: 3, RemoteL1Service: 4, RecallPenalty: 5,
		},
		Policy: c.Policy,
		DRAM: dram.Config{
			Channels: 1, Ranks: 1, BanksPerRank: 1,
			RowBytes: blockBytes, BlockBytes: blockBytes,
			TCAS: 1, TRCD: 1, TRP: 1, TBurst: 1,
			CPUCyclesPerDRAMCycleNum: 1, CPUCyclesPerDRAMCycleDen: 1,
			FrontendLatency: 1,
		},
		Prefetch:   coherence.PrefetchOff,
		NoFastPath: true, // every access rides the engine, so Step sees it
	}
}

// Result reports one completed exploration.
type Result struct {
	Policy string

	States    int  // distinct canonical states reached
	Edges     int  // transitions explored
	Terminal  int  // states with no enabled action (all work injected and drained)
	Quiescent int  // states with an idle event engine
	MaxDepth  int  // longest action sequence to any state
	Truncated bool // MaxStates cap hit: exploration incomplete

	// Violation is nil iff every reachable state satisfied every
	// invariant (within the explored bound).
	Violation *Counterexample

	// Observed is every (state, event) pair the controllers exhibited.
	Observed map[Pair]bool
	// Table is the transition relation checked against (nil if none).
	Table *Table

	Elapsed time.Duration
}

// Coverage builds the transition-relation coverage report: which table
// entries the exploration exercised, which it never reached, and any
// observed pairs outside the table (the latter can only be non-empty if
// the run was checked without a table or ended early on a violation).
func (r *Result) Coverage() *stats.Coverage {
	cov := &stats.Coverage{Name: fmt.Sprintf("%s transition coverage", r.Policy)}
	if r.Table != nil {
		for _, p := range r.Table.Pairs() {
			cov.Declare(p.String())
		}
	}
	for p := range r.Observed {
		cov.Hit(p.String())
	}
	return cov
}

// Run explores every schedule of cfg and returns the result. The error
// return is for configuration problems only; protocol violations are
// reported in Result.Violation.
func Run(cfg Config) (*Result, error) {
	if err := cfg.fill(); err != nil {
		return nil, err
	}
	c := &checker{
		cfg:      cfg,
		sysCfg:   cfg.sysConfig(),
		observed: make(map[Pair]bool),
	}
	c.ops = []Op{OpLoad, OpStore}
	if cfg.wpEnabled() {
		c.ops = append(c.ops, OpLoadWP)
	}
	start := time.Now()
	res := c.explore()
	res.Policy = cfg.Policy.Name()
	res.Observed = c.observed
	res.Table = cfg.Table
	res.Elapsed = time.Since(start)
	return res, nil
}
