package mcheck

import (
	"testing"

	"repro/internal/coherence"
)

// coverageConfigs is the verification matrix: the union of these
// explorations must exercise every entry of each policy's transition
// relation, except the explicitly allowlisted pairs below. The single
// default config covers the uncontended and 2-core-contended paths; the
// prelude configs prepare stable states (two sharers, an E owner, an M
// owner, a full LLC) whose depth-3 neighbourhoods contain the eviction,
// recall, and writeback races that a cold-start exploration could only
// reach at intractable depths.
var coverageConfigs = []Config{
	{Lines: 1, Depth: 4},
	{Lines: 2, Depth: 3, WPLoads: WPOff,
		Prelude: []Inject{{0, OpLoad, 0}, {1, OpLoad, 0}}}, // two sharers
	{Lines: 2, Depth: 3, WPLoads: WPOff,
		Prelude: []Inject{{0, OpLoad, 0}}}, // E owner
	{Lines: 2, Depth: 3, WPLoads: WPOff,
		Prelude: []Inject{{0, OpStore, 0}}}, // M owner
	{Lines: 2, Depth: 3, LLCBlocks: 2,
		Prelude: []Inject{{0, OpLoad, 0}, {0, OpLoad, 1}}}, // L1 thrash, no recalls
}

// allowlist holds the table entries the matrix is known not to reach.
// Every entry stays in the transition relation because the controllers
// handle it defensively and wider configurations (more hops in flight,
// deeper schedules) could produce it; each is annotated with why the
// mcheck configurations cannot. If a future config reaches one, the
// test fails so the entry gets removed from here.
var allowlist = map[string][]Pair{
	"MESI": {
		// A stale-sharer Inv must arrive inside the ~1-cycle window
		// between a re-miss allocating its MSHR and the directory
		// processing the eviction notice that would deregister the
		// sharer; with 2-cycle hops the windows never overlap.
		{CtrlL1, "IS^D", "Inv"},
		{CtrlL1, "IM^D", "Inv"},
		// A raced Upgrade lands at DirE/DirM only if the block was
		// recalled AND re-fetched exclusively within the Upgrade's
		// 2-cycle flight; a refetch takes a full directory round trip.
		// (Upgrades queued behind the refetch replay unobserved.)
		{CtrlDir, "DirE", "Upgrade"},
		{CtrlDir, "DirM", "Upgrade"},
		// An eviction notice at DirI needs the entry recalled while the
		// notice is in flight, but a recall force-invalidates every L1
		// copy first — so no copy survives to be evicted afterwards, and
		// a notice already in flight lands within 2 cycles, before the
		// multi-cycle recall completes.
		{CtrlDir, "DirI", "PUTS"},
		{CtrlDir, "DirI", "PUTX"},
		// The last sharer's PUTS is observed at DirS (the entry becomes
		// DirP only after processing it); reaching PUTS-at-DirP needs a
		// sharer list emptied some other way first.
		{CtrlDir, "DirP", "PUTS"},
		// The owner's stale PUTX always lands inside the busy window of
		// the transaction that re-shared the block, so it is observed as
		// DirBusy <- PUTX instead.
		{CtrlDir, "DirS", "PUTX"},
	},
	// SwiftDir's protocol delta (GETS_WP, shared-only WP grants) adds no
	// new race windows; the unreachable set matches MESI's.
	"SwiftDir": {
		{CtrlL1, "IS^D", "Inv"},
		{CtrlL1, "IM^D", "Inv"},
		{CtrlDir, "DirE", "Upgrade"},
		{CtrlDir, "DirM", "Upgrade"},
		{CtrlDir, "DirI", "PUTS"},
		{CtrlDir, "DirI", "PUTX"},
		{CtrlDir, "DirP", "PUTS"},
		{CtrlDir, "DirS", "PUTX"},
	},
	"S-MESI": {
		{CtrlL1, "IS^D", "Inv"},
		{CtrlL1, "IM^D", "Inv"},
		// S-MESI serves loads at DirE from the LLC, so Fwd_GETS only
		// exists at DirM: the wb-race window shrinks to the single cycle
		// between a dirty eviction and the forward, which the 2-cycle
		// hop cannot hit. (MESI reaches these pairs through the wider
		// DirE forward path that S-MESI replaces with LLC serves.)
		{CtrlL1, "IS^D", "Fwd_GETS"},
		{CtrlL1, "IM^D", "Fwd_GETS"},
		// DirE <- Upgrade is S-MESI's ordinary EM^A path and IS
		// covered; only the recall-raced DirM variant is unreachable.
		{CtrlDir, "DirM", "Upgrade"},
		{CtrlDir, "DirI", "PUTS"},
		{CtrlDir, "DirI", "PUTX"},
		{CtrlDir, "DirP", "PUTS"},
		{CtrlDir, "DirS", "PUTX"},
	},
	// Phase-Priority is MESI plus bank-queue arbitration; arbitration
	// reorders replays of already-queued requests but adds no states or
	// events, so the relation and the unreachable set are MESI's
	// (asserted structurally by proto's TestPhasePriorityRelationIsMESI).
	"Phase-Priority": {
		{CtrlL1, "IS^D", "Inv"},
		{CtrlL1, "IM^D", "Inv"},
		{CtrlDir, "DirE", "Upgrade"},
		{CtrlDir, "DirM", "Upgrade"},
		{CtrlDir, "DirI", "PUTS"},
		{CtrlDir, "DirI", "PUTX"},
		{CtrlDir, "DirP", "PUTS"},
		{CtrlDir, "DirS", "PUTX"},
	},
}

// coveragePolicies is the matrix's policy axis: the three paper
// protocols plus the arbitration variant the shared tables admit for
// free.
var coveragePolicies = append(append([]coherence.Policy{},
	coherence.Policies...), coherence.PhasePriority)

// TestTransitionCoverage runs the verification matrix for each paper
// protocol and asserts the observed (state, event) pairs cover the
// transition relation EXACTLY up to the allowlist: every non-allowlisted
// entry must be observed, and every allowlisted entry must stay
// unobserved (otherwise the allowlist is stale). Unexpected pairs abort
// the exploration as violations, so passing also means the relation is
// sound over the whole explored space.
func TestTransitionCoverage(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-config exhaustive exploration; skipped with -short")
	}
	for _, p := range coveragePolicies {
		p := p
		t.Run(p.Name(), func(t *testing.T) {
			skip := make(map[Pair]bool)
			for _, pr := range allowlist[p.Name()] {
				skip[pr] = true
			}
			union := make(map[Pair]bool)
			var table *Table
			for ci, base := range coverageConfigs {
				cfg := base
				cfg.Policy = p
				res, err := Run(cfg)
				if err != nil {
					t.Fatal(err)
				}
				if res.Violation != nil {
					t.Fatalf("config %d: violation:\n%s", ci, res.Violation)
				}
				if res.Truncated {
					t.Fatalf("config %d: truncated at %d states; the matrix "+
						"no longer explores exhaustively", ci, res.States)
				}
				for pr := range res.Observed {
					union[pr] = true
				}
				table = res.Table
			}
			if table == nil {
				t.Fatal("policy has no transition relation")
			}
			for pr := range skip {
				if !table.Allowed[pr] {
					t.Errorf("allowlisted pair %s is not in the table", pr)
				}
			}
			covered, missing := 0, 0
			for _, pr := range table.Pairs() {
				switch {
				case union[pr] && skip[pr]:
					t.Errorf("allowlisted pair %s WAS observed; remove it "+
						"from the allowlist", pr)
				case union[pr]:
					covered++
				case skip[pr]:
					// Unreached, as documented.
				default:
					missing++
					t.Errorf("table pair %s never observed and not allowlisted", pr)
				}
			}
			t.Logf("%s: %d/%d table entries covered, %d allowlisted",
				p.Name(), covered, len(table.Allowed), len(skip))
		})
	}
}
