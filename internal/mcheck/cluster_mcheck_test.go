package mcheck

import (
	"testing"
	"time"

	"repro/internal/coherence"
)

// TestExhaustiveTwoLevel: the smallest two-level machine — two cores in
// two single-local clusters, so every request, grant, eviction notice,
// and invalidation crosses a hub — explores to completion with zero
// violations for all three paper protocols.
func TestExhaustiveTwoLevel(t *testing.T) {
	for _, p := range coherence.Policies {
		p := p
		t.Run(p.Name(), func(t *testing.T) {
			res, err := Run(Config{Policy: p, Cores: 2, Clusters: 2})
			if err != nil {
				t.Fatal(err)
			}
			if res.Violation != nil {
				t.Fatalf("violation:\n%s", res.Violation)
			}
			if res.Truncated {
				t.Fatalf("truncated at %d states: not an exhaustive run", res.States)
			}
			if res.States < 10000 {
				t.Errorf("only %d states explored; the schedule space collapsed", res.States)
			}
			if res.Terminal == 0 {
				t.Error("no terminal states: exploration never drained a full schedule")
			}
			if res.Elapsed > 120*time.Second {
				t.Errorf("exploration took %v, over the 120s budget", res.Elapsed)
			}
			t.Logf("%s 2x2: %d states, %d edges, %d terminal, maxdepth %d, %v",
				res.Policy, res.States, res.Edges, res.Terminal, res.MaxDepth, res.Elapsed)
		})
	}
}

// TestExhaustiveTwoLevelMultiLocal: four cores in two clusters puts two
// locals behind each hub, so the hub's eviction filtering (absorbed
// non-last PUTS, the ClusterLast certificate, the conservative in-flight
// window) and ack aggregation are all reachable. One line and a single
// L1 block force constant conflict evictions through the hubs.
func TestExhaustiveTwoLevelMultiLocal(t *testing.T) {
	res, err := Run(Config{
		Policy:   coherence.SwiftDir,
		Cores:    4,
		Clusters: 2,
		Depth:    3,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Violation != nil {
		t.Fatalf("violation:\n%s", res.Violation)
	}
	if res.Truncated {
		t.Fatalf("truncated at %d states: not an exhaustive run", res.States)
	}
	t.Logf("SwiftDir 4x2: %d states, %d edges, %d terminal, maxdepth %d, %v",
		res.States, res.Edges, res.Terminal, res.MaxDepth, res.Elapsed)
}

// TestExhaustiveTwoLevelSharedPrelude starts exploration from a prepared
// state with a sharer in each cluster (plus two L1 capacity blocks and
// two lines, so evictions race invalidations): the deepest hub races —
// an Inv crossing an absorbed PUTS, a grant in flight past an emptied
// record — sit within a short schedule of this state.
func TestExhaustiveTwoLevelSharedPrelude(t *testing.T) {
	for _, p := range []coherence.Policy{coherence.MESI, coherence.SwiftDir} {
		p := p
		t.Run(p.Name(), func(t *testing.T) {
			res, err := Run(Config{
				Policy:   p,
				Cores:    4,
				Clusters: 2,
				Lines:    2,
				Depth:    2,
				L1Blocks: 1,
				Prelude: []Inject{
					{Core: 0, Op: OpLoadWP, Line: 0},
					{Core: 2, Op: OpLoadWP, Line: 0},
				},
				WPLoads: WPOn,
			})
			if err != nil {
				t.Fatal(err)
			}
			if res.Violation != nil {
				t.Fatalf("violation:\n%s", res.Violation)
			}
			if res.Truncated {
				t.Fatalf("truncated at %d states", res.States)
			}
			t.Logf("%s 4x2 prelude: %d states, %d edges, maxdepth %d, %v",
				res.Policy, res.States, res.Edges, res.MaxDepth, res.Elapsed)
		})
	}
}

// TestTwoLevelConfigValidation: a cluster count that does not divide the
// cores is rejected before exploration.
func TestTwoLevelConfigValidation(t *testing.T) {
	if _, err := Run(Config{Policy: coherence.MESI, Cores: 3, Clusters: 2}); err == nil {
		t.Fatal("cores=3 clusters=2 accepted")
	}
}
