package soak

import (
	"testing"

	"repro/internal/campaign"
	"repro/internal/core"
	"repro/internal/fault"
	"repro/internal/interconnect"
)

// scaledChaosBase is the 64-core mesh/two-level machine the chaos sweep
// targets: big enough that the mesh has 256 directed links and the
// directory runs two-level (8 hubs), small enough that a scaled-down
// benchmark sweep stays test-suite friendly.
func scaledChaosBase(proto string) Spec {
	return Spec{
		Benchmark: "dedup", // 4 threads, heavy sharing: real cross-tile traffic
		Protocol:  proto,
		CPU:       "DerivO3CPU",
		Scale:     0.02,
		Scaled:    true,
		Cores:     64,
		Watchdog:  DefaultWatchdog(),
	}
}

// The scaled-machine chaos property: mesh link spikes, pinned-link
// storms, and cluster-hub busy windows perturb timing on layers the flat
// Table V machine does not even have — and still must leave the
// architectural projection byte-identical to the no-fault control, for
// every protocol. This is the metamorphic oracle of the original sweep,
// re-run where the new fault classes actually bite.
func TestScaledChaosSweepMetamorphic(t *testing.T) {
	w, h := core.MeshDims(64)
	plans := fault.RandomScaledPlans(8, 0xC4A0, interconnect.MeshLinks(w, h))
	if plans[0].Name != "no-fault" {
		t.Fatalf("plan 0 is %q, want the no-fault control", plans[0].Name)
	}
	// The generator must actually cover the new classes, or the sweep
	// silently degenerates into a DRAM-only soak.
	var mesh, hub int
	for _, p := range plans[1:] {
		if p.MeshSpikeProb > 0 || len(p.MeshStorms) > 0 {
			mesh++
		}
		if p.HubBusyProb > 0 || len(p.HubStorms) > 0 {
			hub++
		}
	}
	if mesh == 0 || hub == 0 {
		t.Fatalf("scaled plans exercise mesh=%d hub=%d classes; want both > 0", mesh, hub)
	}
	for _, proto := range []string{"MESI", "S-MESI", "SwiftDir"} {
		t.Run(proto, func(t *testing.T) {
			res := Sweep(scaledChaosBase(proto), plans, t.TempDir(), 0)
			if res.Err != nil {
				t.Fatal(res.Err)
			}
			control := res.Outcomes[0].Result
			if control.Instrs == 0 || control.MemImageHash == "" {
				t.Fatalf("empty control projection: %+v", control)
			}
		})
	}
}

// A failure recorded on the scaled machine at shards=4 must replay
// byte-identically at shards=1: the replay spec now carries the scaled
// topology, and mesh-faulted systems always run sequential stepping, so
// the injector's draw order is the global message order at every shard
// count.
func TestScaledBundleReplaysAcrossShardCounts(t *testing.T) {
	dir := t.TempDir()
	plans := []fault.Plan{
		{Name: "scaled-forced", Seed: 11, FailAt: 2_000,
			MeshSpikeProb: 0.05, MeshSpikeMax: 8,
			HubBusyProb: 0.05, HubBusyMax: 8},
	}
	base := scaledChaosBase("SwiftDir")

	campaign.SetShards(4)
	res := Sweep(base, plans, dir, 1)
	campaign.SetShards(0)
	if res.Err == nil {
		t.Fatal("forced plan did not fail the sweep")
	}
	po := res.Outcomes[0]
	if po.Bundle == "" {
		t.Fatalf("no bundle for forced plan; outcome err: %v", po.Err)
	}
	recorded, err := fault.ReadBundleViolation(po.Bundle)
	if err != nil {
		t.Fatal(err)
	}
	if recorded.Kind != fault.KindForced {
		t.Fatalf("bundled violation kind %q, want forced", recorded.Kind)
	}

	campaign.SetShards(1)
	defer campaign.SetShards(0)
	out, err := Replay(po.Bundle)
	if err != nil {
		t.Fatal(err)
	}
	if out.Violation == nil {
		t.Fatalf("sequential replay did not reproduce the violation (err=%v)", out.Err)
	}
	if !out.Spec.Scaled || out.Spec.Cores != 64 {
		t.Fatalf("replay spec lost the scaled topology: %+v", out.Spec)
	}
	if out.Violation.Kind != recorded.Kind || out.Violation.Cycle != recorded.Cycle ||
		out.Violation.Msg != recorded.Msg || out.Violation.Component != recorded.Component {
		t.Errorf("sequential replay differs from sharded recording:\n  bundled:  %s\n  replayed: %s",
			recorded.Error(), out.Violation.Error())
	}
	if out.Violation.Dump != recorded.Dump {
		t.Errorf("replayed diagnostic is not byte-identical (%d vs %d bytes)",
			len(out.Violation.Dump), len(recorded.Dump))
	}
}
