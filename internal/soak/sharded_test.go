package soak

import (
	"testing"

	"repro/internal/campaign"
	"repro/internal/fault"
	"repro/internal/sim"
)

// A crash bundle recorded on a sharded machine must replay byte-identically
// on the sequential engine: the bundle captures architectural state and
// event timing, and sharding moves neither. This is the debugging
// guarantee of the sharded engine — wind a parallel-campaign failure back
// on one engine and single-step it.
func TestShardedBundleReplaysSequentially(t *testing.T) {
	dir := t.TempDir()
	plans := []fault.Plan{
		{Name: "forced", Seed: 7, FailAt: 2_000,
			LinkSpikeProb: 0.05, LinkSpikeMax: 10},
	}
	base := Spec{
		Benchmark: "dedup", Protocol: "SwiftDir", CPU: "DerivO3CPU",
		Scale: 0.02, Watchdog: DefaultWatchdog(),
	}

	// Record the failure with every machine split across 4 shards.
	campaign.SetShards(4)
	res := Sweep(base, plans, dir, 1)
	campaign.SetShards(0)
	if res.Err == nil {
		t.Fatal("forced plan did not fail the sweep")
	}
	po := res.Outcomes[0]
	if po.Bundle == "" {
		t.Fatalf("no bundle for forced plan; outcome err: %v", po.Err)
	}
	recorded, err := fault.ReadBundleViolation(po.Bundle)
	if err != nil {
		t.Fatal(err)
	}

	// Replay on the plain sequential engine (shards = 1).
	campaign.SetShards(1)
	defer campaign.SetShards(0)
	out, err := Replay(po.Bundle)
	if err != nil {
		t.Fatal(err)
	}
	if out.Violation == nil {
		t.Fatalf("sequential replay did not reproduce the violation (err=%v)", out.Err)
	}
	if out.Violation.Kind != recorded.Kind || out.Violation.Cycle != recorded.Cycle ||
		out.Violation.Msg != recorded.Msg || out.Violation.Component != recorded.Component {
		t.Errorf("sequential replay differs from sharded recording:\n  bundled:  %s\n  replayed: %s",
			recorded.Error(), out.Violation.Error())
	}
	if out.Violation.Dump != recorded.Dump {
		t.Errorf("replayed diagnostic is not byte-identical (%d vs %d bytes)",
			len(out.Violation.Dump), len(recorded.Dump))
	}
}

// The same property for a watchdog liveness trip: a wedge caught at
// shards=4 — where the pending snapshot must also cover events parked in
// the cross-shard merge buffers — reproduces at shards=1 with the
// identical cycle and diagnostic bytes.
func TestShardedHangBundleReplaysSequentially(t *testing.T) {
	dir := t.TempDir()
	plans := []fault.Plan{{Name: "wedge", Seed: 3, HangAt: 1_000}}
	base := Spec{
		Benchmark: "mcf", Protocol: "MESI", CPU: "TimingSimpleCPU",
		Scale:    0.02,
		Watchdog: sim.WatchdogConfig{MaxEvents: 10_000, MaxCycles: 100_000},
	}

	campaign.SetShards(4)
	res := Sweep(base, plans, dir, 1)
	campaign.SetShards(0)
	if res.Err == nil {
		t.Fatal("hang plan did not fail the sweep")
	}
	po := res.Outcomes[0]
	if po.Bundle == "" {
		t.Fatalf("no bundle for hang plan; outcome err: %v", po.Err)
	}
	recorded, err := fault.ReadBundleViolation(po.Bundle)
	if err != nil {
		t.Fatal(err)
	}
	if recorded.Kind != fault.KindLiveness {
		t.Fatalf("bundled violation = %+v, want a watchdog liveness trip", recorded)
	}

	campaign.SetShards(1)
	defer campaign.SetShards(0)
	out, err := Replay(po.Bundle)
	if err != nil {
		t.Fatal(err)
	}
	if out.Violation == nil {
		t.Fatal("sequential replay did not reproduce the hang")
	}
	if out.Violation.Kind != recorded.Kind || out.Violation.Cycle != recorded.Cycle {
		t.Errorf("replayed %s, bundled %s", out.Violation.Error(), recorded.Error())
	}
	if out.Violation.Dump != recorded.Dump {
		t.Error("replayed liveness diagnostic is not byte-identical")
	}
}
