package soak

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/fault"
	"repro/internal/sim"
)

// The headline metamorphic property, at full-machine scope: a randomized
// sweep of fault plans over a real benchmark run must leave the
// architectural projection — instruction counts, per-thread load/store
// counts, final memory image — byte-identical to the no-fault control,
// for every protocol under test. Only cycles may move.
func TestSweepMetamorphicAcrossPlans(t *testing.T) {
	plans := fault.RandomPlans(8, 0x50AC)
	if plans[0].Name != "no-fault" {
		t.Fatalf("plan 0 is %q, want the no-fault control", plans[0].Name)
	}
	for _, proto := range []string{"MESI", "S-MESI", "SwiftDir"} {
		t.Run(proto, func(t *testing.T) {
			base := Spec{
				Benchmark: "dedup", // 4 threads, heavy sharing
				Protocol:  proto,
				CPU:       "DerivO3CPU", // overlapping misses: the hardest timing to perturb safely
				Scale:     0.02,
				Watchdog:  DefaultWatchdog(),
			}
			res := Sweep(base, plans, t.TempDir(), 0)
			if res.Err != nil {
				t.Fatal(res.Err)
			}
			if len(res.Outcomes) != len(plans) {
				t.Fatalf("%d outcomes for %d plans", len(res.Outcomes), len(plans))
			}
			control := res.Outcomes[0].Result
			if control.Instrs == 0 || control.MemImageHash == "" {
				t.Fatalf("empty control projection: %+v", control)
			}
		})
	}
}

// A long, WAR-heavy healthy run must never false-positive the watchdog,
// on any protocol: every access completion marks progress.
func TestWatchdogNeverFalsePositivesOnHealthyRuns(t *testing.T) {
	for _, proto := range []string{"MESI", "S-MESI", "SwiftDir"} {
		spec := Spec{
			Benchmark: "xalancbmk", // WARFrac 0.42: upgrade-heavy
			Protocol:  proto,
			CPU:       "DerivO3CPU",
			Scale:     0.05,
			Plan:      fault.Plan{Name: "no-fault"},
			// Far tighter than DefaultWatchdog: the run executes orders of
			// magnitude more events than this budget in total, so only the
			// per-access progress marks keep it alive.
			Watchdog: sim.WatchdogConfig{MaxEvents: 20_000, MaxCycles: 200_000},
		}
		r, err := RunSpec(spec) // a trip would panic
		if err != nil {
			t.Fatalf("%s: %v", proto, err)
		}
		if r.Instrs == 0 {
			t.Fatalf("%s: empty run", proto)
		}
	}
}

// A forced violation mid-campaign must produce a crash bundle whose
// replay.json reproduces the identical violation — same kind, same cycle,
// byte-identical diagnostic — in one Replay call.
func TestForcedViolationBundleReplayRoundTrip(t *testing.T) {
	dir := t.TempDir()
	plans := []fault.Plan{
		{Name: "no-fault"},
		{Name: "forced", Seed: 7, FailAt: 2_000,
			LinkSpikeProb: 0.05, LinkSpikeMax: 10},
	}
	base := Spec{
		Benchmark: "mcf", Protocol: "SwiftDir", CPU: "TimingSimpleCPU",
		Scale: 0.02, Watchdog: DefaultWatchdog(),
	}
	res := Sweep(base, plans, dir, 2)
	if res.Err == nil {
		t.Fatal("forced plan did not fail the sweep")
	}
	po := res.Outcomes[1]
	if po.Bundle == "" {
		t.Fatalf("no bundle for forced plan; outcome err: %v", po.Err)
	}
	recorded, err := fault.ReadBundleViolation(po.Bundle)
	if err != nil {
		t.Fatal(err)
	}
	if recorded.Kind != fault.KindForced {
		t.Fatalf("bundled violation kind %q, want forced", recorded.Kind)
	}

	out, err := Replay(po.Bundle)
	if err != nil {
		t.Fatal(err)
	}
	if out.Violation == nil {
		t.Fatalf("replay did not reproduce a violation (err=%v, result=%+v)", out.Err, out.Result)
	}
	if out.Violation.Kind != recorded.Kind || out.Violation.Cycle != recorded.Cycle ||
		out.Violation.Msg != recorded.Msg || out.Violation.Component != recorded.Component {
		t.Errorf("replayed violation differs:\n  bundled:  %s\n  replayed: %s",
			recorded.Error(), out.Violation.Error())
	}
	if out.Violation.Dump != recorded.Dump {
		t.Errorf("replayed diagnostic is not byte-identical (%d vs %d bytes)",
			len(out.Violation.Dump), len(recorded.Dump))
	}
	// The on-disk diagnostic file is the same bytes.
	diag, err := os.ReadFile(filepath.Join(po.Bundle, fault.BundleDiagnosticFile))
	if err != nil {
		t.Fatal(err)
	}
	if string(diag) != out.Violation.Dump {
		t.Error("diagnostic.txt does not match the replayed dump")
	}
}

// A forced hang must be caught by the watchdog as a liveness violation,
// bundled, and reproduced by replay at the identical cycle with the
// identical diagnostic.
func TestHangBundleReplayRoundTrip(t *testing.T) {
	dir := t.TempDir()
	plans := []fault.Plan{{Name: "wedge", Seed: 3, HangAt: 1_000}}
	base := Spec{
		Benchmark: "mcf", Protocol: "MESI", CPU: "TimingSimpleCPU",
		Scale:    0.02,
		Watchdog: sim.WatchdogConfig{MaxEvents: 10_000, MaxCycles: 100_000},
	}
	res := Sweep(base, plans, dir, 1)
	if res.Err == nil {
		t.Fatal("hang plan did not fail the sweep")
	}
	po := res.Outcomes[0]
	if po.Bundle == "" {
		t.Fatalf("no bundle for hang plan; outcome err: %v", po.Err)
	}
	recorded, err := fault.ReadBundleViolation(po.Bundle)
	if err != nil {
		t.Fatal(err)
	}
	if recorded.Kind != fault.KindLiveness || recorded.Component != "watchdog" {
		t.Fatalf("bundled violation = %+v, want a watchdog liveness trip", recorded)
	}
	if !strings.Contains(recorded.Dump, "-- watchdog pending snapshot --") ||
		!strings.Contains(recorded.Dump, "=== system state at cycle") {
		t.Errorf("liveness dump missing sections:\n%.400s", recorded.Dump)
	}

	out, err := Replay(po.Bundle)
	if err != nil {
		t.Fatal(err)
	}
	if out.Violation == nil {
		t.Fatal("replay did not reproduce the hang")
	}
	if out.Violation.Kind != fault.KindLiveness || out.Violation.Cycle != recorded.Cycle {
		t.Errorf("replayed %s, bundled %s", out.Violation.Error(), recorded.Error())
	}
	if out.Violation.Dump != recorded.Dump {
		t.Error("replayed liveness diagnostic is not byte-identical")
	}
}

// Replay of a bundle for a run that would now succeed reports completion
// rather than inventing a failure, and spec loading validates the plan.
func TestReplaySpecLoading(t *testing.T) {
	dir := t.TempDir()
	spec := Spec{
		Benchmark: "leela", Protocol: "MESI", CPU: "TimingSimpleCPU",
		Scale: 0.01, Plan: fault.Plan{Name: "mild", Seed: 5, LinkSpikeProb: 0.1, LinkSpikeMax: 4},
		Watchdog: DefaultWatchdog(),
	}
	path := filepath.Join(dir, "replay.json")
	if err := os.WriteFile(path, spec.specJSON(), 0o644); err != nil {
		t.Fatal(err)
	}
	out, err := Replay(path)
	if err != nil {
		t.Fatal(err)
	}
	if out.Violation != nil || out.Err != nil {
		t.Fatalf("healthy replay failed: violation=%v err=%v", out.Violation, out.Err)
	}
	if out.Result.Instrs == 0 {
		t.Fatal("empty replay result")
	}
	if !strings.Contains(out.Describe(), "completed without failure") {
		t.Errorf("Describe() = %q", out.Describe())
	}

	bad := Spec{Benchmark: "leela", Protocol: "MESI",
		Plan: fault.Plan{Name: "bad", LinkSpikeProb: 0.5}} // prob without max
	if err := os.WriteFile(path, bad.specJSON(), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Replay(path); err == nil {
		t.Fatal("invalid plan accepted")
	}
}
