package soak

import (
	"errors"
	"fmt"
	"os"
	"strings"
	"sync"

	"repro/internal/campaign"
	"repro/internal/fault"
)

// PlanOutcome is one plan's result within a sweep.
type PlanOutcome struct {
	Plan   fault.Plan
	Result ArchResult // valid only when Err == nil
	Err    error      // run failure (possibly a captured *fault.Violation)
	Bundle string     // crash-bundle directory, when a failure was bundled
}

// SweepResult aggregates a soak sweep.
type SweepResult struct {
	Outcomes []PlanOutcome
	// Err joins every failure: runs that crashed and runs whose
	// architectural projection diverged from the control plan's.
	Err error
}

// Sweep runs base once per plan (fanning out over the campaign pool) and
// applies the metamorphic oracle: every successful run's architectural
// projection must be byte-identical to the first successful one —
// conventionally plan 0, the no-fault control of fault.RandomPlans. A run
// that panics is captured on its worker and written as a crash bundle
// under bundleDir (when non-empty), with a replay.json that reproduces
// the failure via Replay or `swiftdir-sim -replay`.
func Sweep(base Spec, plans []fault.Plan, bundleDir string, workers int) SweepResult {
	var mu sync.Mutex
	bundles := make(map[string]string) // plan name -> bundle dir

	jobs := make([]campaign.Job[ArchResult], 0, len(plans))
	for _, plan := range plans {
		spec := base
		spec.Plan = plan
		jobs = append(jobs, campaign.Job[ArchResult]{
			Name: plan.Name,
			Run:  func() (ArchResult, error) { return RunSpec(spec) },
			OnPanic: func(pe *campaign.PanicError) {
				if bundleDir == "" {
					return
				}
				dir, err := writeBundle(bundleDir, spec, pe)
				if err != nil {
					fmt.Fprintf(os.Stderr, "soak: bundle for plan %q: %v\n", spec.Plan.Name, err)
					return
				}
				mu.Lock()
				bundles[spec.Plan.Name] = dir
				mu.Unlock()
			},
		})
	}

	results, _ := campaign.Run(workers, jobs)
	out := SweepResult{Outcomes: make([]PlanOutcome, len(plans))}
	var errs []error
	control := ""
	for i, r := range results {
		po := PlanOutcome{Plan: plans[i], Result: r.Value, Err: r.Err, Bundle: bundles[plans[i].Name]}
		out.Outcomes[i] = po
		if r.Err != nil {
			errs = append(errs, fmt.Errorf("plan %q: %w", plans[i].Name, r.Err))
			continue
		}
		got := r.Value.CanonicalJSON()
		if control == "" {
			control = got
			continue
		}
		if got != control {
			errs = append(errs, fmt.Errorf(
				"plan %q: architectural result diverged from control:\n--- control ---\n%s\n--- plan %q ---\n%s",
				plans[i].Name, control, plans[i].Name, got))
		}
	}
	out.Err = errors.Join(errs...)
	return out
}

// writeBundle turns a captured job panic into a crash bundle for spec.
func writeBundle(root string, spec Spec, pe *campaign.PanicError) (string, error) {
	v := fault.AsViolation(pe.Value)
	if v == nil {
		v = &fault.Violation{
			Kind:      fault.KindPanic,
			Component: "campaign job " + pe.Job,
			Msg:       fmt.Sprint(pe.Value),
		}
	}
	return fault.WriteBundle(root, fault.BundleSpec{
		Violation: v,
		Plan:      spec.Plan,
		Config:    spec.configJSON(),
		Replay:    spec.specJSON(),
		Stack:     pe.Stack,
	})
}

// ReplayOutcome reports what re-executing a replay spec did.
type ReplayOutcome struct {
	Spec      Spec
	Violation *fault.Violation // the reproduced failure, nil if the run completed
	Result    ArchResult       // valid when Violation == nil and Err == nil
	Err       error            // non-failure error (bad spec, unknown benchmark)
}

// Replay re-executes the spec at path (a replay.json or a bundle
// directory) under a capture fence. Determinism end to end — seeded
// workload, seeded per-class injector streams, canonical dump ordering —
// means a replayed failure reproduces the bundled violation byte for
// byte, cycle included.
func Replay(path string) (ReplayOutcome, error) {
	spec, err := LoadSpec(path)
	if err != nil {
		return ReplayOutcome{}, err
	}
	out := ReplayOutcome{Spec: spec}
	func() {
		defer func() {
			if r := recover(); r != nil {
				if v := fault.AsViolation(r); v != nil {
					out.Violation = v
					return
				}
				out.Violation = &fault.Violation{
					Kind: fault.KindPanic, Component: "replay", Msg: fmt.Sprint(r),
				}
			}
		}()
		out.Result, out.Err = RunSpec(spec)
	}()
	return out, nil
}

// Describe renders a replay outcome for the CLI.
func (o ReplayOutcome) Describe() string {
	var b strings.Builder
	fmt.Fprintf(&b, "replay: %s on %s (%s), plan %q\n",
		o.Spec.Benchmark, o.Spec.Protocol, o.Spec.kind(), o.Spec.Plan.Name)
	switch {
	case o.Err != nil:
		fmt.Fprintf(&b, "error: %v\n", o.Err)
	case o.Violation != nil:
		fmt.Fprintf(&b, "reproduced: %s\n", o.Violation.Error())
		if o.Violation.Dump != "" {
			b.WriteString(o.Violation.Dump)
		}
	default:
		fmt.Fprintf(&b, "completed without failure:\n%s\n", o.Result.CanonicalJSON())
	}
	return b.String()
}
