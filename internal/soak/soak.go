// Package soak is the randomized fault-injection campaign runner behind
// `swiftdir-sim -soak` and the CI soak job. It ties the pieces of the
// robustness story together: fault plans (internal/fault) perturb the
// timing of full benchmark runs, the liveness watchdog (internal/sim)
// bounds every run, and the metamorphic oracle asserts that timing faults
// move cycles but never architectural results — the same instruction
// streams retire, and the final memory image is byte-identical, under
// every plan. A run that fails instead of diverging silently is captured
// as a replayable crash bundle.
package soak

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"

	"repro/internal/coherence"
	"repro/internal/core"
	"repro/internal/fault"
	"repro/internal/sim"
	"repro/internal/workload"
)

// Spec is one replayable soak run: everything needed to reconstruct the
// simulation deterministically. It is the payload of a crash bundle's
// replay.json — `swiftdir-sim -replay` feeds it straight back into
// RunSpec and must reproduce the recorded failure exactly.
type Spec struct {
	Benchmark string             `json:"benchmark"`
	Protocol  string             `json:"protocol"`
	CPU       workload.CPUKind   `json:"cpu"`
	Scale     float64            `json:"scale,omitempty"` // instruction-budget scale, 0 = 1.0
	Plan      fault.Plan         `json:"plan"`
	Watchdog  sim.WatchdogConfig `json:"watchdog"`

	// Scaled builds the machine with core.DefaultScaledConfig — 2D mesh
	// interconnect plus a two-level directory past 32 cores — instead of
	// the Table V crossbar, so mesh- and hub-class fault plans have the
	// layers they target. Cores overrides the profile-derived core count
	// (it must cover the benchmark's threads); both serialize into
	// replay.json, so a bundle recorded on the scaled machine replays on
	// the scaled machine.
	Scaled bool `json:"scaled,omitempty"`
	Cores  int  `json:"cores,omitempty"`
}

// DefaultWatchdog bounds a soak run generously: a healthy benchmark marks
// progress every few hundred events, so these budgets are orders of
// magnitude above any legitimate inter-progress gap while still tripping
// a genuine wedge in well under a second of wall time.
func DefaultWatchdog() sim.WatchdogConfig {
	return sim.WatchdogConfig{MaxEvents: 2_000_000, MaxCycles: 5_000_000}
}

// ThreadArch is the architectural (timing-independent) slice of one
// thread's statistics.
type ThreadArch struct {
	Instructions uint64 `json:"instructions"`
	Loads        uint64 `json:"loads"`
	Stores       uint64 `json:"stores"`
}

// ArchResult is the architectural projection of a workload.Result plus
// the final memory image: exactly the fields a timing-only fault must
// not move. Cycles, IPC, and every latency are deliberately absent.
// Two runs of the same Spec modulo fault plan must produce byte-identical
// CanonicalJSON — the metamorphic oracle of the soak sweep.
type ArchResult struct {
	Benchmark    string           `json:"benchmark"`
	Protocol     string           `json:"protocol"`
	CPU          workload.CPUKind `json:"cpu"`
	Instrs       uint64           `json:"instrs"`
	PerThread    []ThreadArch     `json:"per_thread"`
	MemImageHash string           `json:"mem_image_hash"`
}

// CanonicalJSON renders the projection in its comparison form.
func (r ArchResult) CanonicalJSON() string {
	data, err := json.MarshalIndent(r, "", "  ")
	if err != nil {
		panic(err) // static struct cannot fail to marshal
	}
	return string(data)
}

// profile resolves the spec's benchmark and scale.
func (s Spec) profile() (workload.Profile, error) {
	p, ok := workload.ProfileByName(s.Benchmark)
	if !ok {
		return workload.Profile{}, fmt.Errorf("soak: unknown benchmark %q", s.Benchmark)
	}
	if s.Scale > 0 {
		p = p.Scale(s.Scale)
	}
	return p, nil
}

// machineConfig builds the Table V machine for the spec: protocol by
// name, cores sized to the profile, the fault injector (for a non-empty
// plan), and the watchdog.
func (s Spec) machineConfig(p workload.Profile) (core.Config, error) {
	proto := coherence.PolicyByName(s.Protocol)
	if proto == nil {
		return core.Config{}, fmt.Errorf("soak: unknown protocol %q", s.Protocol)
	}
	cores := 1
	for cores < p.Threads {
		cores *= 2
	}
	if s.Cores > 0 {
		if s.Cores < p.Threads {
			return core.Config{}, fmt.Errorf("soak: %d cores cannot run %d threads", s.Cores, p.Threads)
		}
		cores = s.Cores
	}
	var cfg core.Config
	if s.Scaled {
		cfg = core.DefaultScaledConfig(cores, proto)
	} else {
		cfg = core.DefaultConfig(cores, proto)
	}
	cfg.Watchdog = s.Watchdog
	if !s.Plan.Zero() {
		inj, err := fault.NewInjector(s.Plan)
		if err != nil {
			return core.Config{}, err
		}
		cfg.Faults = inj
	}
	return cfg, nil
}

// configJSON renders the spec's machine configuration for a crash
// bundle; nil if the spec itself is broken (the violation still records
// the failure).
func (s Spec) configJSON() []byte {
	p, err := s.profile()
	if err != nil {
		return nil
	}
	cfg, err := s.machineConfig(p)
	if err != nil {
		return nil
	}
	data, err := json.MarshalIndent(cfg, "", "  ")
	if err != nil {
		return nil
	}
	return append(data, '\n')
}

// specJSON renders the spec as a bundle's replay.json payload.
func (s Spec) specJSON() []byte {
	data, err := json.MarshalIndent(s, "", "  ")
	if err != nil {
		return nil
	}
	return append(data, '\n')
}

// kind returns the spec's CPU model, defaulting to the paper's DerivO3CPU.
func (s Spec) kind() workload.CPUKind {
	if s.CPU == "" {
		return workload.DerivO3CPU
	}
	return s.CPU
}

// RunSpec executes one spec to completion and returns its architectural
// projection. Contained failures (protocol violations, watchdog trips,
// forced faults) surface as panics with *fault.Violation values — run it
// under a campaign fence or Replay's recover.
func RunSpec(s Spec) (ArchResult, error) {
	p, err := s.profile()
	if err != nil {
		return ArchResult{}, err
	}
	cfg, err := s.machineConfig(p)
	if err != nil {
		return ArchResult{}, err
	}
	res, m, err := workload.RunDetailed(p, cfg, s.kind())
	if err != nil {
		return ArchResult{}, err
	}
	out := ArchResult{
		Benchmark:    res.Benchmark,
		Protocol:     res.Protocol,
		CPU:          res.CPU,
		Instrs:       res.Instrs,
		MemImageHash: m.ArchMemHash(),
	}
	for _, t := range res.PerThread {
		out.PerThread = append(out.PerThread, ThreadArch{
			Instructions: t.Instructions, Loads: t.Loads, Stores: t.Stores,
		})
	}
	return out, nil
}

// LoadSpec reads a replay spec from path, which may be a replay.json
// file or a crash-bundle directory containing one.
func LoadSpec(path string) (Spec, error) {
	info, err := os.Stat(path)
	if err != nil {
		return Spec{}, err
	}
	if info.IsDir() {
		path = filepath.Join(path, fault.BundleReplayFile)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		return Spec{}, err
	}
	var s Spec
	if err := json.Unmarshal(data, &s); err != nil {
		return Spec{}, fmt.Errorf("soak: replay spec %s: %w", path, err)
	}
	if err := s.Plan.Validate(); err != nil {
		return Spec{}, err
	}
	return s, nil
}
