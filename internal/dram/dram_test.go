package dram

import (
	"testing"
	"testing/quick"

	"repro/internal/sim"
)

func TestConfigValidate(t *testing.T) {
	good := DDR3_1600_8x8()
	if err := good.Validate(); err != nil {
		t.Fatalf("default config invalid: %v", err)
	}
	bad := good
	bad.RowBytes = 100 // not a multiple of block
	if bad.Validate() == nil {
		t.Fatal("invalid row size accepted")
	}
	bad = good
	bad.TCAS = 0
	if bad.Validate() == nil {
		t.Fatal("zero tCAS accepted")
	}
	bad = good
	bad.Channels = 0
	if bad.Validate() == nil {
		t.Fatal("zero channels accepted")
	}
}

func TestFirstAccessIsRowMiss(t *testing.T) {
	m := New(DDR3_1600_8x8())
	done := m.AccessAt(0, 0x1000, false)
	if m.RowMisses != 1 || m.RowHits != 0 {
		t.Fatalf("first access: hits=%d misses=%d", m.RowHits, m.RowMisses)
	}
	// Frontend 10 + (tRCD+tCAS=22 DRAM cycles -> ceil(22*15/4)=83) + burst
	// ceil(4*15/4)=15 => 108.
	if done != 108 {
		t.Fatalf("completion = %d, want 108", done)
	}
}

func TestRowHitFasterThanMiss(t *testing.T) {
	m := New(DDR3_1600_8x8())
	missDone := m.AccessAt(0, 0, false)
	start := missDone + 100
	hitDone := m.AccessAt(start, 64, false) // same row, next block
	if m.RowHits != 1 {
		t.Fatalf("second same-row access not a row hit (hits=%d)", m.RowHits)
	}
	if hitDone-start >= missDone-0 {
		t.Fatalf("row hit latency %d not faster than miss %d", hitDone-start, missDone)
	}
}

func TestRowConflictSlowest(t *testing.T) {
	cfg := DDR3_1600_8x8()
	m := New(cfg)
	// Two rows in the same bank: with 1 channel and 16 banks, rows stripe
	// across banks, so row IDs differing by 16 share a bank.
	rowStride := uint64(cfg.RowBytes)
	sameBank := rowStride * uint64(cfg.Ranks*cfg.BanksPerRank)
	d1 := m.AccessAt(0, 0, false)
	t2 := d1 + 1000
	d2 := m.AccessAt(t2, sameBank, false)
	if m.RowConflicts != 1 {
		t.Fatalf("conflicts = %d, want 1 (misses=%d hits=%d)", m.RowConflicts, m.RowMisses, m.RowHits)
	}
	if d2-t2 <= d1 {
		t.Fatalf("conflict latency %d not slower than cold miss %d", d2-t2, d1)
	}
}

func TestBankParallelism(t *testing.T) {
	cfg := DDR3_1600_8x8()
	m := New(cfg)
	// Blocks in different banks issued at the same cycle should overlap:
	// total completion is far less than the sum of serialized latencies.
	var last sim.Cycle
	n := 8
	for i := 0; i < n; i++ {
		addr := uint64(i) * uint64(cfg.RowBytes) // different banks
		done := m.AccessAt(0, addr, false)
		if done > last {
			last = done
		}
	}
	solo := New(cfg).AccessAt(0, 0, false)
	if last >= solo*sim.Cycle(n) {
		t.Fatalf("no bank parallelism: last=%d, serialized=%d", last, solo*sim.Cycle(n))
	}
	// But the shared bus still serializes bursts.
	if last < solo+sim.Cycle(n-1)*m.toCPU(cfg.TBurst) {
		t.Fatalf("bus contention unmodeled: last=%d", last)
	}
}

func TestSameBankSerializes(t *testing.T) {
	cfg := DDR3_1600_8x8()
	m := New(cfg)
	d1 := m.AccessAt(0, 0, false)
	d2 := m.AccessAt(0, 64, false) // same row, same bank, same arrival
	if d2 <= d1 {
		t.Fatalf("same-bank back-to-back did not serialize: %d then %d", d1, d2)
	}
}

func TestWriteCounted(t *testing.T) {
	m := New(DDR3_1600_8x8())
	m.AccessAt(0, 0, true)
	m.AccessAt(0, 4096, false)
	if m.Writes != 1 || m.Reads != 1 {
		t.Fatalf("reads=%d writes=%d", m.Reads, m.Writes)
	}
}

func TestAvgLatencyAndReset(t *testing.T) {
	m := New(DDR3_1600_8x8())
	if m.AvgLatency() != 0 {
		t.Fatal("avg latency nonzero before any access")
	}
	m.AccessAt(0, 0, false)
	if m.AvgLatency() <= 0 {
		t.Fatal("avg latency not positive after access")
	}
	m.Reset()
	if m.Reads != 0 || m.AvgLatency() != 0 || m.RowMisses != 0 {
		t.Fatal("reset did not clear stats")
	}
	// After reset the bank state is cold again.
	m.AccessAt(0, 0, false)
	if m.RowMisses != 1 {
		t.Fatal("reset did not clear bank state")
	}
}

func TestDecodeStableAndInRange(t *testing.T) {
	m := New(DDR3_1600_8x8())
	f := func(addr uint64) bool {
		ch, bk, row := m.decode(addr)
		ch2, bk2, row2 := m.decode(addr)
		if ch != ch2 || bk != bk2 || row != row2 {
			return false
		}
		return ch == 0 && bk >= 0 && bk < 16
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

// Property: completion time never precedes arrival plus the minimum
// possible service (frontend + tCAS + burst), and is monotone with respect
// to arrival time for a fixed address stream.
func TestLatencyLowerBoundProperty(t *testing.T) {
	cfg := DDR3_1600_8x8()
	min := cfg.FrontendLatency + New(cfg).toCPU(cfg.TCAS) + New(cfg).toCPU(cfg.TBurst)
	f := func(addrs []uint32, gap uint8) bool {
		m := New(cfg)
		now := sim.Cycle(0)
		for _, a := range addrs {
			done := m.AccessAt(now, uint64(a)&^63, false)
			if done < now+min {
				return false
			}
			now = done + sim.Cycle(gap)
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestRefreshWindowDelaysAccess(t *testing.T) {
	cfg := DDR3_1600_8x8().WithRefresh()
	m := New(cfg)
	period := m.toCPU(cfg.TREFI)
	dur := m.toCPU(cfg.TRFC)

	// An access landing inside the first refresh window is pushed out.
	inWindow := period + dur/2
	done := m.AccessAt(inWindow, 0, false)
	clean := New(cfg).AccessAt(period+dur, 0, false) - (period + dur)
	if done-inWindow <= clean {
		t.Fatalf("refresh did not delay: %d vs clean %d", done-inWindow, clean)
	}
	if m.RefreshStalls != 1 {
		t.Fatalf("refresh stalls = %d", m.RefreshStalls)
	}

	// Early accesses (before the first window) are unaffected.
	m2 := New(cfg)
	if got := m2.AccessAt(0, 0x1000, false); got != 108 {
		t.Fatalf("early access perturbed by refresh: %d", got)
	}
	if m2.RefreshStalls != 0 {
		t.Fatal("spurious refresh stall")
	}
}

func TestRefreshValidation(t *testing.T) {
	bad := DDR3_1600_8x8().WithRefresh()
	bad.TRFC = bad.TREFI // refresh longer than the interval
	if bad.Validate() == nil {
		t.Fatal("tRFC >= tREFI accepted")
	}
	if DDR3_1600_8x8().Validate() != nil {
		t.Fatal("default (refresh off) rejected")
	}
	if DDR3_1600_8x8().WithRefresh().Validate() != nil {
		t.Fatal("refresh-enabled config rejected")
	}
}
