// Package dram models the main-memory timing of the paper's Table V
// configuration: DDR3_1600_8x8, one channel, two ranks, eight banks per
// rank, 1 KB row buffers, tCAS-tRCD-tRP = 11-11-11 (DRAM clock cycles at
// 800 MHz). The model tracks per-bank open rows and bank/bus occupancy and
// returns the completion time of each block fetch or writeback in CPU
// cycles, so the LLC controller can simply schedule a response at the
// returned cycle.
package dram

import (
	"fmt"

	"repro/internal/sim"
)

// Config describes a DDR3-style memory system. All timing fields are in
// DRAM clock cycles; CPUCyclesPerDRAMCycleNum/Den convert to CPU cycles
// (3 GHz CPU over 800 MHz DRAM = 15/4).
type Config struct {
	Channels     int
	Ranks        int
	BanksPerRank int
	RowBytes     int // row-buffer size per bank
	BlockBytes   int

	TCAS   int // column access strobe latency
	TRCD   int // row-to-column delay (activate)
	TRP    int // row precharge
	TBurst int // data burst occupancy on the channel bus

	// Refresh: every TREFI DRAM cycles the device performs an all-bank
	// refresh lasting TRFC cycles, during which no access may start.
	// TREFI = 0 disables refresh modeling.
	TREFI int
	TRFC  int

	CPUCyclesPerDRAMCycleNum int
	CPUCyclesPerDRAMCycleDen int

	// FrontendLatency is the fixed controller pipeline cost, in CPU
	// cycles, added to every request (queue entry, scheduling, response
	// routing).
	FrontendLatency sim.Cycle
}

// DDR3_1600_8x8 returns the paper's memory configuration.
func DDR3_1600_8x8() Config {
	return Config{
		Channels:                 1,
		Ranks:                    2,
		BanksPerRank:             8,
		RowBytes:                 1024,
		BlockBytes:               64,
		TCAS:                     11,
		TRCD:                     11,
		TRP:                      11,
		TBurst:                   4,    // BL8 on a DDR bus
		TREFI:                    6240, // 7.8 us at 800 MHz
		TRFC:                     208,  // 260 ns for a 4 Gb device
		CPUCyclesPerDRAMCycleNum: 15,
		CPUCyclesPerDRAMCycleDen: 4,
		FrontendLatency:          10,
	}
}

// WithRefresh returns the configuration with DDR3 all-bank refresh
// enabled (tREFI = 7.8 us, tRFC = 260 ns at 800 MHz).
func (c Config) WithRefresh() Config {
	c.TREFI = 6240
	c.TRFC = 208
	return c
}

// Validate checks the configuration.
func (c Config) Validate() error {
	if c.Channels <= 0 || c.Ranks <= 0 || c.BanksPerRank <= 0 {
		return fmt.Errorf("dram: non-positive topology %+v", c)
	}
	if c.RowBytes <= 0 || c.BlockBytes <= 0 || c.RowBytes%c.BlockBytes != 0 {
		return fmt.Errorf("dram: row %dB must be a multiple of block %dB", c.RowBytes, c.BlockBytes)
	}
	if c.TCAS <= 0 || c.TRCD <= 0 || c.TRP <= 0 || c.TBurst <= 0 {
		return fmt.Errorf("dram: non-positive timing %+v", c)
	}
	if c.TREFI < 0 || c.TRFC < 0 || (c.TREFI > 0 && c.TRFC >= c.TREFI) {
		return fmt.Errorf("dram: invalid refresh timing tREFI=%d tRFC=%d", c.TREFI, c.TRFC)
	}
	if c.CPUCyclesPerDRAMCycleNum <= 0 || c.CPUCyclesPerDRAMCycleDen <= 0 {
		return fmt.Errorf("dram: invalid clock ratio")
	}
	return nil
}

type bank struct {
	openRow uint64
	hasRow  bool
	freeAt  sim.Cycle // CPU cycles
}

type channel struct {
	banks     []bank
	busFreeAt sim.Cycle
}

// Memory is the timing model. It is not safe for concurrent use; the
// simulator is single-threaded.
type Memory struct {
	cfg      Config
	channels []channel

	// Extra, if non-nil, returns additional controller queueing delay for
	// a request arriving at now — the fault-injection hook (extra refresh
	// and row-conflict stalls). The delay pushes the request's start time,
	// so the perturbed schedule is one the controller could legally
	// produce.
	Extra func(now sim.Cycle, addr uint64, write bool) sim.Cycle

	// Stats
	Reads, Writes            uint64
	RowHits, RowMisses       uint64
	RowConflicts             uint64
	RefreshStalls            uint64
	TotalServiceCycles       sim.Cycle
	MaxObservedLatencyCycles sim.Cycle
}

// New builds a Memory, panicking on invalid static configuration.
func New(cfg Config) *Memory {
	if err := cfg.Validate(); err != nil {
		panic(err)
	}
	m := &Memory{cfg: cfg, channels: make([]channel, cfg.Channels)}
	for i := range m.channels {
		m.channels[i].banks = make([]bank, cfg.Ranks*cfg.BanksPerRank)
	}
	return m
}

// Config returns the configuration the memory was built with.
func (m *Memory) Config() Config { return m.cfg }

func (m *Memory) toCPU(dramCycles int) sim.Cycle {
	n := dramCycles*m.cfg.CPUCyclesPerDRAMCycleNum + m.cfg.CPUCyclesPerDRAMCycleDen - 1
	return sim.Cycle(n / m.cfg.CPUCyclesPerDRAMCycleDen)
}

// decode splits a block address into channel, bank (rank-major), and row
// using a row:rank:bank:column interleaving so consecutive blocks hit the
// same row (exploiting spatial locality) and rows stripe across banks.
func (m *Memory) decode(addr uint64) (ch, bk int, row uint64) {
	blk := addr / uint64(m.cfg.BlockBytes)
	blocksPerRow := uint64(m.cfg.RowBytes / m.cfg.BlockBytes)
	rowID := blk / blocksPerRow
	ch = int(rowID % uint64(m.cfg.Channels))
	rowID /= uint64(m.cfg.Channels)
	nbanks := uint64(m.cfg.Ranks * m.cfg.BanksPerRank)
	bk = int(rowID % nbanks)
	row = rowID / nbanks
	return ch, bk, row
}

// AccessAt performs a block read (write=false) or writeback (write=true)
// arriving at CPU cycle now and returns the CPU cycle at which the data is
// available (read) or committed (write).
func (m *Memory) AccessAt(now sim.Cycle, addr uint64, write bool) sim.Cycle {
	chIdx, bkIdx, row := m.decode(addr)
	ch := &m.channels[chIdx]
	b := &ch.banks[bkIdx]

	start := now + m.cfg.FrontendLatency
	if m.Extra != nil {
		start += m.Extra(now, addr, write)
	}
	if b.freeAt > start {
		start = b.freeAt
	}
	start = m.afterRefresh(start)

	var dramLat int
	switch {
	case b.hasRow && b.openRow == row:
		m.RowHits++
		dramLat = m.cfg.TCAS
	case !b.hasRow:
		m.RowMisses++
		dramLat = m.cfg.TRCD + m.cfg.TCAS
	default:
		m.RowConflicts++
		dramLat = m.cfg.TRP + m.cfg.TRCD + m.cfg.TCAS
	}
	b.hasRow = true
	b.openRow = row

	ready := start + m.toCPU(dramLat)

	// The data burst must win the shared channel bus.
	burst := m.toCPU(m.cfg.TBurst)
	busStart := ready
	if ch.busFreeAt > busStart {
		busStart = ch.busFreeAt
	}
	done := busStart + burst
	ch.busFreeAt = done
	b.freeAt = done

	if write {
		m.Writes++
	} else {
		m.Reads++
	}
	lat := done - now
	m.TotalServiceCycles += lat
	if lat > m.MaxObservedLatencyCycles {
		m.MaxObservedLatencyCycles = lat
	}
	return done
}

// afterRefresh pushes a start time out of any all-bank refresh window.
// Windows open at k*tREFI for k >= 1 and last tRFC (both converted to CPU
// cycles).
func (m *Memory) afterRefresh(start sim.Cycle) sim.Cycle {
	if m.cfg.TREFI == 0 {
		return start
	}
	period := m.toCPU(m.cfg.TREFI)
	dur := m.toCPU(m.cfg.TRFC)
	if start < period {
		return start // no refresh has happened yet
	}
	pos := start % period
	if pos < dur {
		m.RefreshStalls++
		return start + (dur - pos)
	}
	return start
}

// AvgLatency returns the mean service latency in CPU cycles, or 0 if no
// accesses occurred.
func (m *Memory) AvgLatency() float64 {
	n := m.Reads + m.Writes
	if n == 0 {
		return 0
	}
	return float64(m.TotalServiceCycles) / float64(n)
}

// Reset clears bank state and statistics, as if the memory were idle.
func (m *Memory) Reset() {
	for i := range m.channels {
		m.channels[i] = channel{banks: make([]bank, m.cfg.Ranks*m.cfg.BanksPerRank)}
	}
	m.Reads, m.Writes = 0, 0
	m.RowHits, m.RowMisses, m.RowConflicts, m.RefreshStalls = 0, 0, 0, 0
	m.TotalServiceCycles, m.MaxObservedLatencyCycles = 0, 0
}

// AppendFingerprint emits a canonical encoding of the memory controller's
// behaviorally relevant state relative to the CPU cycle now: per bank the
// open row (if any) and the remaining busy window, per channel the
// remaining bus occupancy. Past-due windows normalize to zero, so two
// controllers that will time future requests identically fingerprint
// identically regardless of absolute simulated time. With refresh enabled
// (TREFI > 0) service depends on absolute time as well, so callers that
// need time-translation-invariant fingerprints must disable refresh.
func (m *Memory) AppendFingerprint(now sim.Cycle, emit func(uint64)) {
	rel := func(t sim.Cycle) uint64 {
		if t <= now {
			return 0
		}
		return uint64(t - now)
	}
	for ci := range m.channels {
		ch := &m.channels[ci]
		emit(rel(ch.busFreeAt))
		for bi := range ch.banks {
			b := &ch.banks[bi]
			w := b.openRow << 1
			if b.hasRow {
				w |= 1
			}
			emit(w)
			emit(rel(b.freeAt))
		}
	}
}
