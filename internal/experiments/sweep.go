package experiments

import (
	"fmt"
	"strings"

	"repro/internal/cache"
	"repro/internal/campaign"
	"repro/internal/coherence"
	"repro/internal/dram"
	"repro/internal/sim"
	"repro/internal/stats"
)

// TimingSweep is a sensitivity study behind Figure 6: the E/S timing gap
// is not an artifact of one latency calibration. It sweeps the
// interconnect hop latency and the owner-L1 service time across a range
// covering small CMPs to large NUCA designs, measuring the
// attacker-visible gap (3-hop E-state probe minus 2-hop S-state probe)
// under MESI and SwiftDir at every point. MESI's gap grows with both
// parameters — faster networks cannot hide it, larger ones widen it —
// while SwiftDir's stays identically zero because write-protected loads
// never take the 3-hop path at all.
func TimingSweep() string {
	var b strings.Builder
	b.WriteString("Timing-sensitivity sweep: E/S gap (cycles) across hierarchy calibrations\n")
	b.WriteString("gap = remote-exclusive probe latency - shared probe latency\n\n")

	tb := stats.NewTable("",
		"hop", "l1service", "2-hop lat", "3-hop lat", "MESI gap", "SwiftDir gap", "S-MESI gap")
	// Each calibration point builds its own systems, so the grid fans out
	// as one campaign; rows come back in sweep order.
	var jobs []campaign.Job[[]any]
	for _, hop := range []sim.Cycle{1, 2, 3, 5, 8} {
		for _, svc := range []sim.Cycle{10, 23, 40} {
			jobs = append(jobs, campaign.Job[[]any]{
				Name: fmt.Sprintf("sweep/hop%d-svc%d", hop, svc),
				Run: func() ([]any, error) {
					tm := coherence.DefaultTiming()
					tm.Hop, tm.RemoteL1Service = hop, svc
					row := []any{hop, svc, tm.LLCLoadLatency(), tm.RemoteLoadLatency()}
					for _, p := range coherence.Policies {
						row = append(row, probeGap(p, tm))
					}
					return row, nil
				},
			})
		}
	}
	for _, row := range campaign.MustCollect(0, jobs) {
		tb.AddRowF(row...)
	}
	b.WriteString(tb.Render())
	b.WriteString("\nMESI's gap equals Hop + RemoteL1Service at every point; SwiftDir and\n")
	b.WriteString("S-MESI hold it at zero regardless of calibration. (MESIF also zeroes\n")
	b.WriteString("this particular pair by making shared probes 3-hop, but retains a\n")
	b.WriteString("forwarder-present/absent channel — see the moesi study.)\n")
	return b.String()
}

// probeGap measures the latency difference between probing a line held
// exclusively in a remote L1 and probing the same line in the shared
// state, for write-protected data — the covert channel's raw signal.
func probeGap(p coherence.Policy, tm coherence.Timing) sim.Cycle {
	mk := func() *coherence.System {
		return coherence.MustNewSystem(coherence.SystemConfig{
			NumL1:     4,
			L1Params:  cache.Params{Name: "L1", SizeBytes: 32 << 10, Ways: 4, BlockSize: 64},
			LLCParams: cache.Params{Name: "LLC", SizeBytes: 1 << 20, Ways: 8, BlockSize: 64},
			Banks:     1,
			Timing:    tm,
			Policy:    p,
			DRAM:      dram.DDR3_1600_8x8(),
		})
	}
	const addr = cache.Addr(0x7000)

	// Exclusive case: one prior reader, then probe from another core.
	s := mk()
	s.AccessSync(1, addr, false, true, 0)
	latE := s.AccessSync(0, addr, false, true, 0).Latency

	// Shared case: two prior readers, then probe from a third core.
	s = mk()
	s.AccessSync(1, addr, false, true, 0)
	s.AccessSync(2, addr, false, true, 0)
	latS := s.AccessSync(0, addr, false, true, 0).Latency

	return latE - latS
}

// probeGapCheck exposes the sweep's per-point assertion for tests.
func probeGapCheck(p coherence.Policy, tm coherence.Timing) (got, wantMESI sim.Cycle) {
	return probeGap(p, tm), tm.RemoteLoadLatency() - tm.LLCLoadLatency()
}
