package experiments

import (
	"strings"
	"testing"

	"repro/internal/workload"
)

func TestTable5(t *testing.T) {
	out := Table5()
	for _, want := range []string{"Table V", "4 core", "192", "DDR3"} {
		if !strings.Contains(out, want) {
			t.Errorf("Table5 missing %q", want)
		}
	}
}

// Table IV must match the paper exactly: MESI (no, yes), SwiftDir
// (yes, yes), S-MESI (yes, no).
func TestTable4MatchesPaper(t *testing.T) {
	rows, rendered := Table4()
	want := map[string][2]bool{
		"MESI":     {false, true},
		"SwiftDir": {true, true},
		"S-MESI":   {true, false},
	}
	if len(rows) != 3 {
		t.Fatalf("rows = %d", len(rows))
	}
	for _, r := range rows {
		w, ok := want[r.Protocol]
		if !ok {
			t.Fatalf("unexpected protocol %q", r.Protocol)
		}
		if r.ServeEFromLLC != w[0] || r.SilentUpgradeOnL1 != w[1] {
			t.Errorf("%s: (serveE=%v silent=%v), want (%v, %v)\n%s",
				r.Protocol, r.ServeEFromLLC, r.SilentUpgradeOnL1, w[0], w[1], rendered)
		}
	}
}

// Figure 6: SwiftDir's Load_WP and MESI's S-state load distributions both
// concentrate at the constant LLC latency (17 cycles under the calibrated
// timing); MESI's E-state path is strictly slower.
func TestFig6Shape(t *testing.T) {
	d := Fig6(200)
	if d.LoadWP.Count() != 200 || d.LoadS.Count() != 200 || d.LoadE.Count() != 200 {
		t.Fatal("sample counts wrong")
	}
	if d.LoadWP.Min() != d.LoadWP.Max() || d.LoadWP.Min() != 17 {
		t.Fatalf("Load_WP not constant 17: [%d, %d]", d.LoadWP.Min(), d.LoadWP.Max())
	}
	if d.LoadS.Min() != 17 || d.LoadS.Max() != 17 {
		t.Fatalf("MESI Load(S) not 17: [%d, %d]", d.LoadS.Min(), d.LoadS.Max())
	}
	if d.LoadE.Min() <= d.LoadS.Max() {
		t.Fatalf("E-state path (%d) not slower than S (%d)", d.LoadE.Min(), d.LoadS.Max())
	}
	if !strings.Contains(d.Rendered, "Load_WP") {
		t.Error("rendered CDF missing series name")
	}
}

func TestSecurityReport(t *testing.T) {
	results, sides, rendered := Security(64, 64)
	if len(results) != 3 || len(sides) != 3 {
		t.Fatalf("results %d sides %d", len(results), len(sides))
	}
	byName := map[string]bool{}
	for _, r := range results {
		byName[r.Protocol] = r.Leaked
	}
	if !byName["MESI"] || byName["SwiftDir"] || byName["S-MESI"] {
		t.Fatalf("leak matrix wrong: %+v", byName)
	}
	if !strings.Contains(rendered, "CHANNEL CLOSED") || !strings.Contains(rendered, "CHANNEL OPEN") {
		t.Error("rendered security report incomplete")
	}
}

// Figure 10 shape at small scale: SwiftDir == MESI (100), S-MESI > 100 for
// every app, amplified under the O3 model for the serialized app.
func TestFig10Shape(t *testing.T) {
	rowsA, renderedA := Fig10(workload.TimingSimpleCPU, 1)
	rowsB, _ := Fig10(workload.DerivO3CPU, 1)
	if len(rowsA) != 3 || len(rowsB) != 3 {
		t.Fatal("want 3 apps")
	}
	for _, r := range append(rowsA, rowsB...) {
		if r.SwiftDir < 99.5 || r.SwiftDir > 100.5 {
			t.Errorf("%s: SwiftDir %.2f, want ~100", r.Benchmark, r.SwiftDir)
		}
		if r.SMESI < 105 {
			t.Errorf("%s: S-MESI %.2f, want well above 100", r.Benchmark, r.SMESI)
		}
	}
	if !strings.Contains(renderedA, "array assignment") {
		t.Error("rendered Figure 10 missing app name")
	}
}

// Figure 9 shape at small scale: both defenses at or below MESI.
func TestFig9Shape(t *testing.T) {
	rows, rendered := Fig9([]int{1000, 2000})
	if len(rows) != 2 {
		t.Fatal("want 2 sweep points")
	}
	for _, r := range rows {
		if r.SwiftDir > 100 {
			t.Errorf("amount %s: SwiftDir %.2f > 100", r.Benchmark, r.SwiftDir)
		}
		if r.SMESI > 100 {
			t.Errorf("amount %s: S-MESI %.2f > 100", r.Benchmark, r.SMESI)
		}
	}
	if !strings.Contains(rendered, "amount of shared data") {
		t.Error("rendered Figure 9 missing title")
	}
}

// Figures 7 and 8 run end to end at tiny scale and produce averages near
// parity (SwiftDir within a few percent of MESI); the full-scale numbers
// are recorded by cmd/swiftdir-bench into EXPERIMENTS.md.
func TestFig7And8Smoke(t *testing.T) {
	if testing.Short() {
		t.Skip("suite runs are slow")
	}
	rows7, r7 := Fig7(0.02)
	if len(rows7) != 23 || !strings.Contains(r7, "average") {
		t.Fatalf("Fig7: %d rows", len(rows7))
	}
	for _, r := range rows7 {
		if r.SwiftDir < 80 || r.SwiftDir > 120 {
			t.Errorf("Fig7 %s: SwiftDir %.2f implausible", r.Benchmark, r.SwiftDir)
		}
	}
	rows8, r8 := Fig8(0.02)
	if len(rows8) != 13 || !strings.Contains(r8, "PARSEC") {
		t.Fatalf("Fig8: %d rows", len(rows8))
	}
}
