package experiments

import (
	"strings"
	"testing"

	"repro/internal/coherence"
	"repro/internal/sim"
)

// The sweep's claim, asserted point by point: MESI's E/S gap equals
// Hop + RemoteL1Service at every calibration; every SwiftDir variant and
// S-MESI hold it at exactly zero.
func TestTimingSweepGaps(t *testing.T) {
	for _, hop := range []sim.Cycle{1, 3, 8} {
		for _, svc := range []sim.Cycle{10, 23, 40} {
			tm := coherence.DefaultTiming()
			tm.Hop, tm.RemoteL1Service = hop, svc
			for _, p := range coherence.AllPolicies {
				got, mesiGap := probeGapCheck(p, tm)
				closes := p.LoadRequest(true) == coherence.MsgGETSWP &&
					!p.GrantExclusiveOnLoad(true)
				switch {
				case p.Name() == "MESI" || p.Name() == "MOESI":
					if got != mesiGap {
						t.Errorf("%s hop=%d svc=%d: gap %d, want %d", p.Name(), hop, svc, got, mesiGap)
					}
				case p.Name() == "MESIF":
					// MESIF's forwarder makes the shared probe 3-hop too,
					// equalizing this pair (its residual channel is
					// forwarder-present vs -absent; see moesi study).
					if got != 0 {
						t.Errorf("MESIF hop=%d svc=%d: gap %d, want 0", hop, svc, got)
					}
				case closes || p.Name() == "S-MESI" || p.Name() == "SwiftDir-Ewp":
					if got != 0 {
						t.Errorf("%s hop=%d svc=%d: gap %d, want 0", p.Name(), hop, svc, got)
					}
				}
			}
		}
	}
}

func TestTimingSweepRenders(t *testing.T) {
	out := TimingSweep()
	if !strings.Contains(out, "MESI gap") || !strings.Contains(out, "SwiftDir gap") {
		t.Fatalf("missing columns:\n%s", out)
	}
	// 5 hops x 3 service times = 15 data rows.
	if n := strings.Count(out, "\n"); n < 18 {
		t.Fatalf("table too short (%d lines):\n%s", n, out)
	}
}
