package experiments

import (
	"strings"

	"repro/internal/attack"
	"repro/internal/coherence"
	"repro/internal/core"
	"repro/internal/stats"
	"repro/internal/workload"
)

// MOESIStudy extends the evaluation to the protocol families the paper
// notes "prevail in most modern processors" (§II-A2): MOESI (AMD Opteron)
// and MESIF (Intel). The E/S channel exists on both — MOESI adds an O/S
// flavour, MESIF a forwarder-present flavour — and SwiftDir's I→S rule
// composes with either optimization unchanged.
func MOESIStudy(bits, passes int) string {
	var b strings.Builder
	b.WriteString("Protocol-family study: the channel and the defense on MOESI and MESIF\n\n")

	b.WriteString("Covert channel:\n")
	for _, p := range []coherence.Policy{coherence.MOESI, coherence.SwiftDirMOESI, coherence.MESIF, coherence.SwiftDirMESIF} {
		ch, err := attack.NewChannel(core.DefaultConfig(4, p), bits)
		if err != nil {
			panic(err)
		}
		r, err := ch.Run(bits, 0x30E5)
		if err != nil {
			panic(err)
		}
		b.WriteString("  " + r.Describe() + "\n")
	}

	b.WriteString("\nWrite-after-read performance (normalized execution time, DerivO3CPU):\n")
	tb := stats.NewTable("", "application", "MOESI", "SwiftDir-MOESI", "MESI")
	for _, app := range workload.WARApps() {
		metric := func(p coherence.Policy) float64 {
			r, err := workload.RunWAR(app, p, workload.DerivO3CPU, passes)
			if err != nil {
				panic(err)
			}
			return float64(r.ExecCycles)
		}
		base := metric(coherence.MOESI)
		tb.AddRowF(app.Name, 100.0,
			stats.Normalize(metric(coherence.SwiftDirMOESI), base),
			stats.Normalize(metric(coherence.MESI), base))
	}
	b.WriteString(tb.Render())
	b.WriteString("\nSwiftDir-MOESI keeps both the silent upgrade and the O-state dirty\n")
	b.WriteString("migration for unshared data while pinning write-protected data in S.\n")
	return b.String()
}
