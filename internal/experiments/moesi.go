package experiments

import (
	"strings"

	"repro/internal/campaign"
	"repro/internal/coherence"
	"repro/internal/stats"
	"repro/internal/workload"
)

// MOESIStudy extends the evaluation to the protocol families the paper
// notes "prevail in most modern processors" (§II-A2): MOESI (AMD Opteron)
// and MESIF (Intel). The E/S channel exists on both — MOESI adds an O/S
// flavour, MESIF a forwarder-present flavour — and SwiftDir's I→S rule
// composes with either optimization unchanged.
func MOESIStudy(bits, passes int) string {
	var b strings.Builder
	b.WriteString("Protocol-family study: the channel and the defense on MOESI and MESIF\n\n")

	b.WriteString("Covert channel:\n")
	for _, line := range campaign.MustCollect(0, covertJobs(
		[]coherence.Policy{coherence.MOESI, coherence.SwiftDirMOESI, coherence.MESIF, coherence.SwiftDirMESIF},
		"moesi", bits, 0x30E5)) {
		b.WriteString(line)
	}

	b.WriteString("\nWrite-after-read performance (normalized execution time, DerivO3CPU):\n")
	tb := stats.NewTable("", "application", "MOESI", "SwiftDir-MOESI", "MESI")
	apps := workload.WARApps()
	warProtos := []coherence.Policy{coherence.MOESI, coherence.SwiftDirMOESI, coherence.MESI}
	metrics := warMetrics("moesi", apps, warProtos, workload.DerivO3CPU, passes)
	for i, app := range apps {
		tb.AddRowF(normalizedWARRow(app.Name, metrics[i*len(warProtos):(i+1)*len(warProtos)])...)
	}
	b.WriteString(tb.Render())
	b.WriteString("\nSwiftDir-MOESI keeps both the silent upgrade and the O-state dirty\n")
	b.WriteString("migration for unshared data while pinning write-protected data in S.\n")
	return b.String()
}
