package experiments

import (
	"strings"
	"testing"
)

func TestHardwareCostsSwiftDir(t *testing.T) {
	for _, cores := range []int{1, 2, 4} {
		var swift, mesi, mesif *HardwareCost
		costs := HardwareCosts(cores)
		for i := range costs {
			switch costs[i].Protocol {
			case "SwiftDir":
				swift = &costs[i]
			case "MESI":
				mesi = &costs[i]
			case "MESIF":
				mesif = &costs[i]
			}
		}
		if swift == nil || mesi == nil || mesif == nil {
			t.Fatal("missing protocols in cost table")
		}
		if mesi.DirKB != 0 || mesi.L1KB != 0 {
			t.Fatalf("MESI baseline not zero: %+v", mesi)
		}
		if swift.DirBitsEntry != 1 || swift.L1BitsLine != 1 || swift.ExtraOpcodes != 1 {
			t.Fatalf("SwiftDir adds %d/%d/%d, want 1/1/1",
				swift.DirBitsEntry, swift.L1BitsLine, swift.ExtraOpcodes)
		}
		// One bit per 64-byte entry = 1/512 of capacity ≈ 0.195%.
		if swift.PercentOfLLC < 0.19 || swift.PercentOfLLC > 0.20 {
			t.Fatalf("cores=%d: SwiftDir dir overhead %.4f%% of LLC, want ~0.195%%",
				cores, swift.PercentOfLLC)
		}
		// MESIF's pointer must not be cheaper than SwiftDir's bit beyond
		// 2 cores.
		if cores > 2 && mesif.DirBitsEntry <= swift.DirBitsEntry {
			t.Fatalf("cores=%d: MESIF pointer %d bits <= SwiftDir 1 bit", cores, mesif.DirBitsEntry)
		}
	}
}

func TestLog2Ceil(t *testing.T) {
	for _, c := range []struct{ n, want int }{{1, 0}, {2, 1}, {3, 2}, {4, 2}, {5, 3}, {8, 3}, {9, 4}} {
		if got := log2ceil(c.n); got != c.want {
			t.Errorf("log2ceil(%d) = %d, want %d", c.n, got, c.want)
		}
	}
}

func TestOverheadRenders(t *testing.T) {
	out := Overhead(4)
	for _, want := range []string{"SwiftDir", "dir bits/entry", "hitchhiking"} {
		if !strings.Contains(out, want) {
			t.Fatalf("missing %q:\n%s", want, out)
		}
	}
}
