package experiments

import (
	"strings"
	"testing"
)

func TestMOESIStudyShape(t *testing.T) {
	out := MOESIStudy(64, 1)
	if strings.Count(out, "CHANNEL CLOSED") != 3 {
		t.Fatalf("want MOESI open + 3 closed:\n%s", out)
	}
	if !strings.Contains(out, "MOESI     bits=64 errors=0") {
		t.Fatalf("MOESI baseline should leak:\n%s", out)
	}
	for _, want := range []string{"SwiftDir-MOESI", "SwiftDir-MESIF", "array assignment"} {
		if !strings.Contains(out, want) {
			t.Errorf("missing %q", want)
		}
	}
}

func TestSnoopStudyShape(t *testing.T) {
	out := SnoopStudy(64)
	if !strings.Contains(out, "OPEN (inverted: E faster than S)") {
		t.Fatalf("MESI-snoop channel not open:\n%s", out)
	}
	if !strings.Contains(out, "SwiftDir-snoop") || strings.Count(out, "CLOSED") < 2 {
		t.Fatalf("SwiftDir-snoop not closed:\n%s", out)
	}
}

func TestFutureWorkShape(t *testing.T) {
	out := FutureWork(64)
	if !strings.Contains(out, "VULNERABLE") || !strings.Contains(out, "DEFENDED") {
		t.Fatalf("future-work study incomplete:\n%s", out)
	}
	if !strings.Contains(out, "FastCoW write buffer") {
		t.Fatal("missing FastCoW row")
	}
}

func TestMultiprogramShape(t *testing.T) {
	rows, out := Multiprogram(0.02)
	if len(rows) != 5 {
		t.Fatalf("mixes = %d", len(rows))
	}
	for _, r := range rows {
		if r.SwiftDir < 95 || r.SwiftDir > 105 {
			t.Errorf("%s: SwiftDir %.2f implausible", r.Benchmark, r.SwiftDir)
		}
	}
	if !strings.Contains(out, "lib-heavy") {
		t.Fatal("missing mix name")
	}
}

func TestPrefetchStudyShape(t *testing.T) {
	out := Prefetch(64)
	lines := strings.Split(out, "\n")
	var naive, aware string
	for _, l := range lines {
		if strings.HasPrefix(l, "naive") {
			naive = l
		}
		if strings.HasPrefix(l, "wp-aware") {
			aware = l
		}
	}
	if !strings.Contains(naive, "OPEN") || !strings.Contains(naive, "E") {
		t.Fatalf("naive prefetch row wrong: %q", naive)
	}
	if !strings.Contains(aware, "CLOSED") {
		t.Fatalf("wp-aware row wrong: %q", aware)
	}
}

func TestAblationLRUShape(t *testing.T) {
	out := AblationLRU(0.05)
	for _, want := range []string{"mcf", "Random LLC", "average"} {
		if !strings.Contains(out, want) {
			t.Errorf("missing %q", want)
		}
	}
}

func TestFig6JitterSpread(t *testing.T) {
	d := Fig6Jitter(100)
	if d.LoadWP.Count() != 100 {
		t.Fatal("sample count")
	}
	if d.LoadE.Mean() <= d.LoadWP.Mean()+20 {
		t.Fatalf("E path (%.1f) not well above WP (%.1f)", d.LoadE.Mean(), d.LoadWP.Mean())
	}
}

func TestNUMAStudyShape(t *testing.T) {
	out := NUMA()
	if !strings.Contains(out, "YES") {
		t.Fatalf("MESI should leak the socket:\n%s", out)
	}
	lines := strings.Split(out, "\n")
	for _, l := range lines {
		if strings.HasPrefix(l, "SwiftDir ") && !strings.Contains(l, "no") {
			t.Fatalf("SwiftDir leaks the socket: %q", l)
		}
	}
}

func TestKernelStudyShape(t *testing.T) {
	out := KernelStudy(128)
	for _, want := range []string{"stream-triad", "gups", "pointer-chase"} {
		if !strings.Contains(out, want) {
			t.Errorf("missing %q", want)
		}
	}
}
