package experiments

import (
	"strings"
	"testing"

	"repro/internal/coherence"
)

func TestFig4Transcripts(t *testing.T) {
	out := Fig4()
	for _, want := range []string{
		"(a) Initial load of write-protected data",
		"GETS_WP", "Fwd_GETS", "Data_From_Owner", "Upgrade_ACK",
		"(d) Store after initial load", "silent E->M: no messages",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("Fig4 output missing %q", want)
		}
	}
	// Panel (d) must contain no message lines: after its header there is
	// directly the next panel.
	dIdx := strings.Index(out, "(d) Store")
	eIdx := strings.Index(out, "(e) Remote")
	panel := out[dIdx:eIdx]
	if strings.Contains(panel, "L1(0)    ->") {
		t.Errorf("panel (d) contains messages:\n%s", panel)
	}
}

func TestFig5AllArchitecturesSecure(t *testing.T) {
	out := Fig5()
	if strings.Count(out, "yes") != 3 {
		t.Fatalf("not all architectures secure:\n%s", out)
	}
	for _, want := range []string{"PIPT", "VIPT", "VIVT", "tag comparison", "set indexing"} {
		if !strings.Contains(out, want) {
			t.Errorf("Fig5 missing %q", want)
		}
	}
}

func TestTrafficOrdering(t *testing.T) {
	out := Traffic()
	if !strings.Contains(out, "SwiftDir-Ewp") {
		t.Fatal("traffic table missing E_wp")
	}
	// Quantified simplification claim: on the mixed workload SwiftDir
	// delivers fewer messages than MESI, which delivers fewer than S-MESI.
	totals := map[string]uint64{}
	for _, p := range coherence.AllPolicies {
		totals[p.Name()] = trafficSystem(p).TotalMessages()
	}
	if !(totals["SwiftDir"] < totals["MESI"] && totals["MESI"] < totals["S-MESI"]) {
		t.Fatalf("traffic ordering wrong: %v", totals)
	}
	if !(totals["SwiftDir"] < totals["SwiftDir-Ewp"]) {
		t.Fatalf("E_wp not costlier than SwiftDir: %v", totals)
	}
}

func TestAblationEwpSecureAndCostlier(t *testing.T) {
	out := AblationEwp(64)
	if strings.Count(out, "CHANNEL CLOSED") != 2 {
		t.Fatalf("both SwiftDir and E_wp must close the channel:\n%s", out)
	}
}

func TestAblationWARParity(t *testing.T) {
	out := AblationWAR(1)
	// All three rows must show SwiftDir and E_wp at parity with MESI.
	lines := strings.Split(out, "\n")
	found := 0
	for _, l := range lines {
		if strings.HasPrefix(l, "array ") {
			found++
			if !strings.Contains(l, "100.000   100.000") {
				t.Errorf("WAR parity broken: %s", l)
			}
		}
	}
	if found != 3 {
		t.Fatalf("expected 3 app rows, saw %d", found)
	}
}
