package experiments

import (
	"strings"
	"testing"

	"repro/internal/attack"
	"repro/internal/campaign"
	"repro/internal/coherence"
)

// TestScaleShardedEquivalence: both scaling reports are byte-identical
// whether the machines run on one event engine or four shards, under one
// campaign worker or four — the repository's headline guarantee, now
// covering 256-core mesh machines with a two-level directory.
func TestScaleShardedEquivalence(t *testing.T) {
	defer campaign.SetWorkers(0)
	defer campaign.SetShards(0)
	campaign.SetWorkers(1)
	campaign.SetShards(1)
	s1, a1 := Scale(), ScaleAttack(64)
	campaign.SetWorkers(4)
	campaign.SetShards(4)
	s4, a4 := Scale(), ScaleAttack(64)
	if s1 != s4 {
		t.Errorf("Scale differs between 1 and 4 shards/workers:\n--- sequential ---\n%s\n--- sharded ---\n%s", s1, s4)
	}
	if a1 != a4 {
		t.Errorf("ScaleAttack differs between 1 and 4 shards/workers:\n--- sequential ---\n%s\n--- sharded ---\n%s", a1, a4)
	}
	if len(s1) == 0 || len(a1) == 0 {
		t.Error("empty report")
	}
}

// TestScaleAttackCalibrationAt64Cores pins the experiment's headline
// claim at the API level: on the 64-core mesh the naive global threshold
// misdecodes MESI (distance noise), per-line calibration decodes it
// perfectly, and SwiftDir stays at guessing even for the calibrated
// attacker.
func TestScaleAttackCalibrationAt64Cores(t *testing.T) {
	const bits = 64
	run := func(p coherence.Policy) (naive int, r attack.Result) {
		cfg := scaleAttackConfig(64, p)
		th, err := attack.CalibrateThresholds(cfg, bits)
		if err != nil {
			t.Fatal(err)
		}
		ch, err := attack.NewChannel(cfg, bits)
		if err != nil {
			t.Fatal(err)
		}
		ch.SetThresholds(th)
		r, err = ch.Run(bits, 0xA77AC4)
		if err != nil {
			t.Fatal(err)
		}
		for _, lat := range r.Latencies1 {
			if lat <= ch.Threshold {
				naive++
			}
		}
		for _, lat := range r.Latencies0 {
			if lat > ch.Threshold {
				naive++
			}
		}
		return naive, r
	}

	mesiNaive, mesi := run(coherence.MESI)
	if mesiNaive == 0 {
		t.Error("MESI naive decoding has no errors at 64 cores; mesh distance noise is not being modeled")
	}
	if mesi.Errors != 0 {
		t.Errorf("MESI calibrated decoding has %d errors; per-line thresholds should restore the channel", mesi.Errors)
	}
	if !mesi.Leaked {
		t.Error("MESI channel not leaked for the calibrated attacker")
	}

	_, swift := run(coherence.SwiftDir)
	if swift.BER < 0.25 {
		t.Errorf("SwiftDir calibrated BER %.3f below guessing threshold; channel should stay closed", swift.BER)
	}
	if swift.Leaked {
		t.Error("SwiftDir channel leaked at 64 cores")
	}
}

// TestScaleReportShape sanity-checks the rendered sweep: every geometry
// row is present for every protocol.
func TestScaleReportShape(t *testing.T) {
	report := Scale()
	for _, want := range []string{"crossbar", "mesh 4x4", "mesh 8x8", "mesh 16x16", "2-level/32"} {
		if !strings.Contains(report, want) {
			t.Errorf("report missing %q:\n%s", want, report)
		}
	}
	if got, want := strings.Count(report, "SwiftDir"), len(scaleGeoms()); got < want {
		t.Errorf("report has %d SwiftDir rows, want %d", got, want)
	}
}
