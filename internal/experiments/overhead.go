package experiments

import (
	"fmt"
	"strings"

	"repro/internal/coherence"
	"repro/internal/core"
	"repro/internal/stats"
)

// HardwareCost is the per-structure storage a protocol adds over plain
// MESI on the Table V machine, in bits per entry and total kilobytes.
// SwiftDir's additions (§IV): one WP bit per directory entry, one WP bit
// per L1 line (carried with the fill), and one spare request opcode
// (GETS_WP) — the R/W bit itself already exists in the PTE and TLB, it
// only hitchhikes. For contrast, the table also accounts the state the
// protocol *families* add: MOESI's extra stable state, MESIF's forwarder
// pointer, and E_wp's fourth load-grant flavour.
type HardwareCost struct {
	Protocol      string
	DirBitsEntry  int     // extra directory bits per LLC entry
	L1BitsLine    int     // extra bits per L1 line
	ExtraOpcodes  int     // new message kinds on the request network
	DirKB         float64 // total across the LLC directory
	L1KB          float64 // total across all L1s
	PercentOfLLC  float64 // directory addition relative to LLC data capacity
	Justification string
}

// log2ceil returns ceil(log2(n)) for n >= 1.
func log2ceil(n int) int {
	b := 0
	for v := n - 1; v > 0; v >>= 1 {
		b++
	}
	return b
}

// HardwareCosts computes the storage table for a given core count using
// the Table V geometry (32 KB L1s, 2 MB per-core LLC, 64 B blocks).
func HardwareCosts(cores int) []HardwareCost {
	cfg := core.DefaultConfig(cores, coherence.SwiftDir)
	dirEntries := float64(cfg.L2Bank.SizeBytes*cfg.Cores) / float64(cfg.L2Bank.BlockSize)
	l1Lines := float64(cfg.L1.SizeBytes) / float64(cfg.L1.BlockSize) * float64(cores) * 2 // I + D
	llcKB := float64(cfg.L2Bank.SizeBytes*cfg.Cores) / 1024

	mk := func(p coherence.Policy, dirBits, l1Bits, opcodes int, why string) HardwareCost {
		dirKB := dirEntries * float64(dirBits) / 8 / 1024
		return HardwareCost{
			Protocol:      p.Name(),
			DirBitsEntry:  dirBits,
			L1BitsLine:    l1Bits,
			ExtraOpcodes:  opcodes,
			DirKB:         dirKB,
			L1KB:          l1Lines * float64(l1Bits) / 8 / 1024,
			PercentOfLLC:  100 * dirKB / llcKB,
			Justification: why,
		}
	}

	fwdPtr := log2ceil(cores)
	if fwdPtr == 0 {
		fwdPtr = 1
	}
	return []HardwareCost{
		mk(coherence.MESI, 0, 0, 0, "baseline"),
		mk(coherence.SMESI, 0, 0, 0, "reuses Upgrade/ACK; cost is cycles, not storage"),
		mk(coherence.SwiftDir, 1, 1, 1, "WP bit per dir entry + per L1 line; GETS_WP opcode"),
		mk(coherence.SwiftDirEwp, 2, 1, 2, "WP bit + extra stable-state encoding; GETS_WP and Downgrade"),
		mk(coherence.MOESI, 1, 1, 0, "Owned state encoding at dir and L1"),
		mk(coherence.MESIF, fwdPtr, 1, 0, "forwarder pointer per entry; F state at L1"),
		mk(coherence.MSI, 0, 0, 0, "removes E; cost is cycles on every private RMW"),
	}
}

// Overhead renders the hardware-cost accounting for the Table V machine.
func Overhead(cores int) string {
	var b strings.Builder
	fmt.Fprintf(&b, "Hardware storage cost over plain MESI (Table V machine, %d cores)\n\n", cores)
	tb := stats.NewTable("",
		"protocol", "dir bits/entry", "L1 bits/line", "new opcodes", "dir KB", "L1 KB", "% of LLC", "where it goes")
	for _, c := range HardwareCosts(cores) {
		tb.AddRowF(c.Protocol, c.DirBitsEntry, c.L1BitsLine, c.ExtraOpcodes,
			c.DirKB, c.L1KB, c.PercentOfLLC, c.Justification)
	}
	b.WriteString(tb.Render())
	b.WriteString("\nSwiftDir's storage add is one bit per tracked line — ~0.2% of LLC\n")
	b.WriteString("capacity — and zero new stable states; the WP information itself is\n")
	b.WriteString("free, hitchhiking on the translation the access performs anyway.\n")
	return b.String()
}
