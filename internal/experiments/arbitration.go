package experiments

import (
	"fmt"
	"strings"

	"repro/internal/cache"
	"repro/internal/campaign"
	"repro/internal/coherence"
	"repro/internal/core"
	"repro/internal/stats"
)

// Arbitration evaluates Phase-Priority, the policy added to demonstrate
// the table-driven engine: its transition relation is MESI's verbatim —
// the same internal/proto table drives dispatch and the model checker —
// and the only new behavior is a bank-queue discipline that replays
// queued Upgrades ahead of GETX ahead of loads when a busy block
// completes. The study shows (1) arbitration is security-neutral: the
// E/S covert channel stays exactly as open as MESI's, because the leak
// is in the transition relation, not the service order; and (2) under
// writer/reader contention the discipline shortens store latency by
// letting pending owners drain before the next wave of readers re-shares
// the line.
func Arbitration(bits int) string {
	var b strings.Builder
	b.WriteString("Phase-priority directory arbitration (table-shared MESI variant)\n\n")

	// 1. Security: reordering the bank queue neither opens nor closes
	// the channel — Phase-Priority leaks like MESI, SwiftDir still does
	// not. Protection lives in the transition relation alone.
	b.WriteString("Covert channel (arbitration is security-orthogonal):\n")
	protos := []coherence.Policy{coherence.MESI, coherence.PhasePriority, coherence.SwiftDir}
	for _, line := range campaign.MustCollect(0, covertJobs(protos, "arbitration", bits, 0x9AB)) {
		b.WriteString(line)
	}

	// 2. Contended hot line: each round a non-owning writer opens a long
	// busy window (its GETX needs the old owner's copy forwarded), the
	// two readers queue GETS behind it, and the freshly invalidated old
	// owner re-stores last. FIFO serves the reads first and makes the
	// late store wait out two full service rounds; phase-priority
	// promotes it ahead of the queued reads.
	b.WriteString("\nContended hot-line mix (2 writers + 2 readers, 96 rounds):\n")
	tb := stats.NewTable("", "protocol", "cycles", "mean store lat", "queued wakeups", "promotions")
	var jobs []campaign.Job[[]any]
	for _, p := range []coherence.Policy{coherence.MESI, coherence.PhasePriority} {
		jobs = append(jobs, campaign.Job[[]any]{
			Name: "arbitration/contended/" + p.Name(),
			Run: func() ([]any, error) {
				return contendedMix(p, 96), nil
			},
		})
	}
	for _, row := range campaign.MustCollect(0, jobs) {
		tb.AddRowF(row...)
	}
	b.WriteString(tb.Render())
	b.WriteString("\nPromotions count queued requests the arbiter replayed ahead of an\n")
	b.WriteString("earlier arrival; they are zero unless the policy installs a queue\n")
	b.WriteString("discipline. Both runs dispatch from the same proto table MESI uses,\n")
	b.WriteString("so mcheck's proof of MESI's relation covers Phase-Priority for free.\n")
	return b.String()
}

// contendedMix runs the writer/reader contention loop under p and
// returns the report row: protocol, total cycles, mean store latency,
// queued wakeups, and arbiter promotions.
func contendedMix(p coherence.Policy, rounds int) []any {
	cfg := core.DefaultConfig(4, p)
	s := coherence.MustNewSystem(coherence.SystemConfig{
		NumL1:     4,
		L1Params:  cfg.L1,
		LLCParams: cfg.L2Bank,
		Banks:     1, // one bank so every access contends on one queue
		Timing:    coherence.DefaultTiming(),
		Policy:    p,
		DRAM:      cfg.DRAM,
	})
	const a = cache.Addr(0x200040)
	var storeLat, stores, token uint64
	record := func(res coherence.AccessResult) {
		storeLat += uint64(res.Latency)
		stores++
	}
	// Warm past DRAM and leave core 1 the M owner.
	token++
	s.AccessSync(1, a, true, false, token)
	start := s.Eng.Now()
	owner := 1
	for r := 0; r < rounds; r++ {
		w := 1 - owner
		old := owner
		// t+0: the non-owner's GETX opens the busy window (the dir must
		// recall/forward the old owner's modified copy).
		token++
		s.Submit(w, coherence.Access{Addr: a, Write: true, Value: token, Done: record})
		// t+10: both readers (invalidated last round) queue GETS behind
		// the busy block.
		s.Eng.Schedule(10, func() {
			s.Submit(2, coherence.Access{Addr: a})
			s.Submit(3, coherence.Access{Addr: a})
		})
		// t+24: the old owner, by now invalidated by the forward, stores
		// again; its GETX arrives after the queued reads. FIFO serves it
		// last; phase-priority replays it first.
		tk := token + 1
		token++
		s.Eng.Schedule(24, func() {
			s.Submit(old, coherence.Access{Addr: a, Write: true, Value: tk, Done: record})
		})
		s.Quiesce()
		// Reset to a clean M copy at this round's first writer so the
		// next round re-runs the same race with the roles swapped.
		owner = w
		token++
		s.AccessSync(owner, a, true, false, token)
	}
	s.Quiesce()
	return []any{
		p.Name(),
		int(s.Eng.Now() - start),
		fmt.Sprintf("%.1f", float64(storeLat)/float64(stores)),
		s.BankStatsTotal().QueuedWakeups,
		s.ArbPromotions(),
	}
}
