package experiments

import (
	"strings"

	"repro/internal/cache"
	"repro/internal/coherence"
	"repro/internal/core"
	"repro/internal/dram"
	"repro/internal/sim"
	"repro/internal/stats"
)

// NUMA studies the channel on a 2-socket machine (cross-socket hops cost
// extra). Under MESI the receiver's probe latency reveals not only that a
// prior access happened (the E/S bit) but WHICH SOCKET the accessor was
// on — the forward path length differs. Under SwiftDir every probe of
// write-protected data is served by the block's (fixed) home LLC bank, so
// the latency is independent of the prior accessor entirely.
func NUMA() string {
	mk := func(p coherence.Policy) coherence.SystemConfig {
		tm := coherence.DefaultTiming()
		tm.SocketCores = 2
		tm.CrossSocketExtra = 40
		return coherence.SystemConfig{
			NumL1:     4,
			L1Params:  core.DefaultConfig(4, p).L1,
			LLCParams: core.DefaultConfig(4, p).L2Bank,
			Banks:     2,
			Timing:    tm,
			Policy:    p,
			DRAM:      dram.DDR3_1600_8x8(),
		}
	}
	probe := func(p coherence.Policy, owner int) sim.Cycle {
		s := coherence.MustNewSystem(mk(p))
		block := cache.Addr(0x20000) // home bank 0 (socket 0)
		s.AccessSync(owner, block, false, true, 0)
		s.Quiesce()
		// Receiver on socket 0, core 1.
		return s.AccessSync(1, block, false, true, 0).Latency
	}

	var b strings.Builder
	b.WriteString("NUMA study: 2 sockets x 2 cores, +40 cycles per cross-socket hop\n\n")
	tb := stats.NewTable(
		"Receiver probe latency of a write-protected line, by prior accessor",
		"protocol", "owner on same socket", "owner on other socket", "socket leaked?")
	for _, p := range []coherence.Policy{coherence.MESI, coherence.SwiftDir, coherence.SMESI} {
		near := probe(p, 0)
		far := probe(p, 2)
		leak := "no"
		if near != far {
			leak = "YES"
		}
		tb.AddRowF(p.Name(), near, far, leak)
	}
	b.WriteString(tb.Render())
	b.WriteString("\nMESI's forwarded probes traverse the owner's socket, so their length\n")
	b.WriteString("encodes the accessor's location; SwiftDir's home-bank service does not.\n")
	return b.String()
}
