package experiments

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"os"
	"testing"

	"repro/internal/campaign"
)

// TestShardedGoldenReportEquivalence re-renders the full golden grid with
// every simulated machine's event engine split across four shards and
// compares against the SAME committed hashes as the sequential run. There
// is deliberately no update mode: if a hash moves here, sharding changed
// observable behaviour, which is a bug by construction — the sharded
// engine's merge order must reproduce the sequential (cycle, seq) order
// byte for byte.
func TestShardedGoldenReportEquivalence(t *testing.T) {
	raw, err := os.ReadFile(goldenPath)
	if err != nil {
		t.Fatalf("read golden file (regenerate via TestGoldenReportEquivalence): %v", err)
	}
	want := map[string]string{}
	if err := json.Unmarshal(raw, &want); err != nil {
		t.Fatalf("parse %s: %v", goldenPath, err)
	}

	defer campaign.SetWorkers(0)
	defer campaign.SetShards(0)
	campaign.SetWorkers(1)
	campaign.SetShards(4)

	for _, tc := range goldenCases {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			if tc.heavy && testing.Short() {
				t.Skip("suite runs are slow")
			}
			report := tc.run()
			if len(report) == 0 {
				t.Fatalf("%s: empty report", tc.name)
			}
			sum := sha256.Sum256([]byte(report))
			h := hex.EncodeToString(sum[:])
			w, ok := want[tc.name]
			if !ok {
				t.Fatalf("%s: no golden hash recorded", tc.name)
			}
			if h != w {
				t.Errorf("%s: sharded report hash %s differs from golden %s\n--- report ---\n%s",
					tc.name, h, w, report)
			}
		})
	}
}
