package experiments

import (
	"strings"

	"repro/internal/attack"
	"repro/internal/coherence"
	"repro/internal/core"
	"repro/internal/mmu"
	"repro/internal/stats"
)

// FutureWork evaluates the hardware direction the paper sketches in its
// threat-model discussion (§II-B): handling copy-on-write page faults as
// write misses completed through a dedicated write buffer. Two effects
// are measured: the dedup write-timing side channel (Bosman et al.)
// closes, and CoW-write-intensive execution accelerates.
func FutureWork(trials int) string {
	var b strings.Builder
	b.WriteString("Future work (§II-B): copy-on-write faults as write misses\n\n")

	b.WriteString("Dedup write-timing side channel (attacker infers victim page contents):\n")
	for _, fast := range []bool{false, true} {
		cfg := core.DefaultConfig(2, coherence.SwiftDir)
		cfg.FastCoWWrites = fast
		w, err := attack.NewWriteChannel(cfg, trials)
		if err != nil {
			panic(err)
		}
		r, err := w.Run(0xF7)
		if err != nil {
			panic(err)
		}
		b.WriteString("  " + r.Describe() + "\n")
	}

	b.WriteString("\nCoW-write-intensive execution (first store to each of 256 private library pages):\n")
	tb := stats.NewTable("", "mode", "total store cycles", "per store")
	for _, fast := range []bool{false, true} {
		cfg := core.DefaultConfig(1, coherence.SwiftDir)
		cfg.FastCoWWrites = fast
		m := core.MustNewMachine(cfg)
		lib := mmu.NewFile("fw.so", 0xF0)
		p := m.NewProcess()
		ctx := p.AttachContext(0)
		base := p.MmapLibraryData(lib, 256*mmu.PageSize, 0)
		var total uint64
		for i := 0; i < 256; i++ {
			r := ctx.MustAccessSync(base+mmu.VAddr(i)*mmu.PageSize, true, uint64(i))
			total += uint64(r.Latency)
		}
		mode := "baseline CoW fault"
		if fast {
			mode = "FastCoW write buffer"
		}
		tb.AddRowF(mode, total, float64(total)/256)
	}
	b.WriteString(tb.Render())
	return b.String()
}
