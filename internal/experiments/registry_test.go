package experiments

import (
	"reflect"
	"strings"
	"testing"
)

// The registry is the one dispatch table; it must cover every experiment
// the CLI historically exposed, in report order, with no duplicates.
func TestRegistryNamesCompleteAndUnique(t *testing.T) {
	want := []string{
		"table5", "table4", "fig4", "fig5", "fig6", "fig6jitter", "security",
		"fig7", "fig8", "fig9", "fig10a", "fig10b", "ablation", "traffic",
		"futurework", "moesi", "snoop", "multiprogram", "lru", "prefetch",
		"numa", "kernels", "sweep", "msi", "overhead", "arbitration",
		"scale", "scale-attack",
	}
	if got := Names(); !reflect.DeepEqual(got, want) {
		t.Fatalf("Names() = %v\nwant %v", got, want)
	}
	for _, e := range Registry() {
		if e.Title == "" {
			t.Errorf("%s: empty title", e.Name)
		}
		if e.run == nil {
			t.Errorf("%s: nil runner", e.Name)
		}
	}
}

func TestLookup(t *testing.T) {
	if e, ok := Lookup("fig6"); !ok || e.Name != "fig6" {
		t.Errorf("Lookup(fig6) = %+v, %v", e, ok)
	}
	if _, ok := Lookup("fig99"); ok {
		t.Error("Lookup accepted an unknown name")
	}
}

func TestNormalizeClearsUnusedAndResolvesDefaults(t *testing.T) {
	// table5 consumes nothing: every knob normalizes away.
	e, _ := Lookup("table5")
	if got := e.Normalize(Params{Scale: 0.9, Bits: 7, Amounts: []int{1}}); !reflect.DeepEqual(got, Params{}) {
		t.Errorf("table5 normalize = %+v, want zero", got)
	}

	// fig7 consumes only Scale; zero resolves to the default, other knobs
	// are cleared.
	f, _ := Lookup("fig7")
	if got := f.Normalize(Params{Bits: 7}); !reflect.DeepEqual(got, Params{Scale: 0.25}) {
		t.Errorf("fig7 normalize = %+v, want {Scale:0.25}", got)
	}
	if got := f.Normalize(Params{Scale: 0.02}); !reflect.DeepEqual(got, Params{Scale: 0.02}) {
		t.Errorf("fig7 explicit scale = %+v", got)
	}

	// security's Trials default is its Bits value (the CLI's historical
	// behaviour), tracking an explicit Bits override.
	s, _ := Lookup("security")
	if got := s.Normalize(Params{Bits: 64}); got.Trials != 64 || got.Bits != 64 {
		t.Errorf("security normalize = %+v, want trials=bits=64", got)
	}
	if got := s.Normalize(Params{Bits: 64, Trials: 8}); got.Trials != 8 {
		t.Errorf("security explicit trials = %+v", got)
	}

	// fig9's empty sweep resolves to the paper's grid, and explicit
	// amounts are copied and sorted (cache keys must not depend on
	// request-side ordering or later mutation).
	g, _ := Lookup("fig9")
	if got := g.Normalize(Params{}); !reflect.DeepEqual(got.Amounts, Fig9Amounts) {
		t.Errorf("fig9 default amounts = %v", got.Amounts)
	}
	in := []int{3000, 1000}
	got := g.Normalize(Params{Amounts: in})
	if !reflect.DeepEqual(got.Amounts, []int{1000, 3000}) {
		t.Errorf("fig9 amounts not sorted: %v", got.Amounts)
	}
	in[0] = 99
	if got.Amounts[1] == 99 {
		t.Error("normalize aliased the caller's amounts slice")
	}
}

func TestPolicyNames(t *testing.T) {
	if got := PolicyNames(); !reflect.DeepEqual(got, []string{"MESI", "SwiftDir", "S-MESI"}) {
		t.Errorf("PolicyNames() = %v", got)
	}
}

func TestParseNames(t *testing.T) {
	if got, err := ParseNames("all"); err != nil || len(got) != len(Names()) {
		t.Errorf("ParseNames(all) = %v, %v", got, err)
	}
	// Report order and dedup, regardless of request order.
	got, err := ParseNames("overhead, traffic ,overhead")
	if err != nil || !reflect.DeepEqual(got, []string{"traffic", "overhead"}) {
		t.Errorf("ParseNames(list) = %v, %v", got, err)
	}
	if _, err := ParseNames("table5,fig99"); err == nil {
		t.Error("unknown name in list accepted")
	} else if !strings.Contains(err.Error(), "valid: all,") {
		t.Errorf("error does not list the vocabulary: %v", err)
	}
	if _, err := ParseNames(""); err == nil {
		t.Error("empty spec accepted")
	}
	if _, err := ParseNames(" , "); err == nil {
		t.Error("blank spec accepted")
	}
}

// Registry runs must match the direct experiment calls byte for byte —
// the CLI and server dispatch through here, the golden suite calls the
// functions directly, and both must pin the same bytes.
func TestRegistryRunMatchesDirectCall(t *testing.T) {
	e, _ := Lookup("overhead")
	if got, want := e.Run(Params{}), Overhead(4); got != want {
		t.Errorf("overhead via registry differs from direct call")
	}
	k, _ := Lookup("kernels")
	if got, want := k.Run(Params{WSKB: 64}), KernelStudy(64); got != want {
		t.Errorf("kernels via registry differs from direct call")
	}
}
