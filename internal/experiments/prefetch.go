package experiments

import (
	"strings"

	"repro/internal/cache"
	"repro/internal/coherence"
	"repro/internal/core"
	"repro/internal/dram"
	"repro/internal/sim"
	"repro/internal/stats"
)

// Prefetch studies a hazard the paper does not discuss but any deployment
// of SwiftDir would hit: hardware prefetchers issue requests without a
// fresh translation, so an unmodified (naive) next-line prefetcher drops
// the write-protection bit. Under SwiftDir the prefetched copies of
// write-protected lines are then granted Exclusive, and the E/S channel
// reopens over exactly those lines. Propagating the demand access's WP
// bit to same-page prefetches (the WP-aware mode) restores the defense.
func Prefetch(bits int) string {
	var b strings.Builder
	b.WriteString("Prefetcher study: the WP bit must survive prefetching\n\n")

	tb := stats.NewTable("Covert channel over naively-prefetched lines (SwiftDir)",
		"prefetcher", "prefetched WP line", "probe(sent 1)", "probe(sent 0)", "BER", "channel")
	for _, mode := range []coherence.PrefetchMode{coherence.PrefetchOff, coherence.PrefetchNaive, coherence.PrefetchWPAware} {
		state, l1, l0, ber := prefetchChannel(mode, bits)
		verdict := "CLOSED"
		if ber < 0.25 {
			verdict = "OPEN"
		}
		tb.AddRowF(mode.String(), state, l1, l0, ber, verdict)
	}
	b.WriteString(tb.Render())
	b.WriteString("\n(the sender transmits through the line its demand miss prefetches;\n")
	b.WriteString(" `off` reads as closed because unprefetched probe lines are plain misses)\n")
	return b.String()
}

// prefetchChannel runs the covert channel over prefetch-target lines.
// Lines come in pairs: the sender demand-loads line 2k (write-protected),
// which prefetches line 2k+1; bit 1 = one sender thread (prefetch grabs E
// under the naive mode), bit 0 = both sender threads (the second demand
// miss forces the pair to S). The receiver probes line 2k+1.
func prefetchChannel(mode coherence.PrefetchMode, bits int) (lineState string, mean1, mean0, ber float64) {
	cfg := coherence.SystemConfig{
		NumL1:     3,
		L1Params:  core.DefaultConfig(4, coherence.SwiftDir).L1,
		LLCParams: core.DefaultConfig(4, coherence.SwiftDir).L2Bank,
		Banks:     1,
		Timing:    coherence.DefaultTiming(),
		Policy:    coherence.SwiftDir,
		DRAM:      dram.DDR3_1600_8x8(),
		Prefetch:  mode,
	}
	s := coherence.MustNewSystem(cfg)
	tm := cfg.Timing
	threshold := (tm.LLCLoadLatency() + tm.RemoteLoadLatency()) / 2

	rng := sim.NewRNG(0x9F)
	var sum1, sum0 float64
	var n1, n0, errs int
	stateSeen := ""
	for i := 0; i < bits; i++ {
		// Pair k occupies two consecutive blocks within one page.
		page := cache.Addr(0x400000 + (i/32)*4096)
		demand := page + cache.Addr(i%32)*128
		target := demand + 64
		bit := rng.Bool(0.5)
		s.AccessSync(0, demand, false, true, 0)
		if !bit {
			s.AccessSync(1, demand, false, true, 0)
		}
		s.Quiesce()
		if stateSeen == "" {
			stateSeen = s.L1StateOf(0, target).String()
		}
		r := s.AccessSync(2, target, false, true, 0)
		got := r.Latency > threshold
		if got != bit {
			errs++
		}
		if bit {
			sum1 += float64(r.Latency)
			n1++
		} else {
			sum0 += float64(r.Latency)
			n0++
		}
	}
	if n1 > 0 {
		mean1 = sum1 / float64(n1)
	}
	if n0 > 0 {
		mean0 = sum0 / float64(n0)
	}
	return stateSeen, mean1, mean0, float64(errs) / float64(bits)
}
