package experiments

import (
	"fmt"

	"repro/internal/attack"
	"repro/internal/campaign"
	"repro/internal/coherence"
	"repro/internal/core"
	"repro/internal/stats"
	"repro/internal/workload"
)

// covertJobs builds one campaign job per protocol running the E/S covert
// channel and returning its rendered report line — the loop shared by
// the security, ablation, MSI, and MOESI studies.
func covertJobs(protos []coherence.Policy, label string, bits int, seed uint64) []campaign.Job[string] {
	var jobs []campaign.Job[string]
	for _, p := range protos {
		jobs = append(jobs, campaign.Job[string]{
			Name: label + "/covert/" + p.Name(),
			Run: func() (string, error) {
				ch, err := attack.NewChannel(core.DefaultConfig(4, p), bits)
				if err != nil {
					return "", err
				}
				r, err := ch.Run(bits, seed)
				if err != nil {
					return "", err
				}
				return "  " + r.Describe() + "\n", nil
			},
		})
	}
	return jobs
}

// warMetrics fans the write-after-read app×protocol grid out over the
// campaign pool and returns exec-cycle metrics in grid order (apps
// outer, protocols inner).
func warMetrics(label string, apps []workload.WARApp, protos []coherence.Policy, kind workload.CPUKind, passes int) []float64 {
	var jobs []campaign.Job[float64]
	for _, app := range apps {
		for _, p := range protos {
			jobs = append(jobs, campaign.Job[float64]{
				Name: fmt.Sprintf("%s/war/%s/%s", label, app.Name, p.Name()),
				Run: func() (float64, error) {
					r, err := workload.RunWAR(app, p, kind, passes)
					if err != nil {
						return 0, err
					}
					return float64(r.ExecCycles), nil
				},
			})
		}
	}
	return campaign.MustCollect(0, jobs)
}

// normalizedWARRow converts one app's slice of the warMetrics grid into
// table cells normalized against the first protocol (x100).
func normalizedWARRow(name string, metrics []float64) []any {
	row := []any{name, 100.0}
	for _, m := range metrics[1:] {
		row = append(row, stats.Normalize(m, metrics[0]))
	}
	return row
}
