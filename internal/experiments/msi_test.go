package experiments

import (
	"strings"
	"testing"

	"repro/internal/coherence"
)

func TestMSIStudyRenders(t *testing.T) {
	out := MSIStudy(64, 1)
	for _, want := range []string{"MSI", "S-MESI", "SwiftDir", "Upgrade msgs", "normalized to MESI"} {
		if !strings.Contains(out, want) {
			t.Fatalf("missing %q in:\n%s", want, out)
		}
	}
}

// The study's core claims, asserted directly rather than eyeballed.
func TestMSIPrivateRMWTax(t *testing.T) {
	const n = 64
	type m struct {
		cycles   int
		upgrades uint64
		silent   uint64
	}
	res := map[string]m{}
	for _, p := range []coherence.Policy{coherence.MESI, coherence.MSI, coherence.SMESI, coherence.SwiftDir} {
		sys, cycles := privateRMW(p, n)
		res[p.Name()] = m{cycles, sys.MsgCount(coherence.MsgUpgrade), sys.L1s[0].Stats.SilentUpgrades}
	}

	// MESI and SwiftDir: all-silent, zero Upgrade messages, identical cost.
	for _, name := range []string{"MESI", "SwiftDir"} {
		if r := res[name]; r.upgrades != 0 || r.silent != n {
			t.Errorf("%s: %d upgrades, %d silent; want 0, %d", name, r.upgrades, r.silent, n)
		}
	}
	if res["MESI"].cycles != res["SwiftDir"].cycles {
		t.Errorf("SwiftDir private-data cost diverged from MESI: %d vs %d",
			res["SwiftDir"].cycles, res["MESI"].cycles)
	}

	// MSI and S-MESI: one Upgrade round trip per line, no silent upgrades.
	for _, name := range []string{"MSI", "S-MESI"} {
		if r := res[name]; r.upgrades != n || r.silent != 0 {
			t.Errorf("%s: %d upgrades, %d silent; want %d, 0", name, r.upgrades, r.silent, n)
		}
		if res[name].cycles <= res["MESI"].cycles {
			t.Errorf("%s not slower than MESI on private RMW: %d vs %d",
				name, res[name].cycles, res["MESI"].cycles)
		}
	}
}
