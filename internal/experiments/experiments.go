// Package experiments regenerates every table and figure of the paper's
// evaluation (§V). Each function runs the relevant workloads across the
// three protocols and returns both machine-readable data and a rendered
// plain-text report. cmd/swiftdir-bench and the repository's top-level
// benchmarks are thin wrappers around this package; EXPERIMENTS.md records
// the outputs next to the paper's numbers.
package experiments

import (
	"context"
	"fmt"
	"strings"

	"repro/internal/attack"
	"repro/internal/campaign"
	"repro/internal/coherence"
	"repro/internal/core"
	"repro/internal/mmu"
	"repro/internal/sim"
	"repro/internal/stats"
	"repro/internal/workload"
)

// protocols in the paper's presentation order: baseline first, then the
// contribution, then the prior defense.
var protocols = []coherence.Policy{coherence.MESI, coherence.SwiftDir, coherence.SMESI}

// Table5 renders the experiment setup.
func Table5() string {
	return core.DefaultConfig(4, coherence.SwiftDir).Describe()
}

// Table4Row is one protocol's qualitative behaviour, measured rather than
// asserted: the two "efficient handling" properties of Table IV.
type Table4Row struct {
	Protocol          string
	ServeEFromLLC     bool // remote load of an E-granted block is LLC-latency
	SilentUpgradeOnL1 bool // store on an E block completes in the L1
	RemoteLoadLatency sim.Cycle
	StoreOnELatency   sim.Cycle
}

// Table4 measures the qualitative matrix of Table IV with live probes.
func Table4() ([]Table4Row, string) {
	var rows []Table4Row
	for _, p := range protocols {
		m := core.MustNewMachine(core.DefaultConfig(2, p))
		proc := m.NewProcess()
		c0, c1 := proc.AttachContext(0), proc.AttachContext(1)
		heap := proc.MmapAnon(1 << 16)

		// Shared-data probe: initial load on core 1, remote load on
		// core 0. Under SwiftDir shared data are write-protected, so
		// probe through a library mapping.
		lib := mmu.NewFile("table4.so", 4)
		libBase := proc.MmapLibrary(lib, 1<<16)
		c1.MustAccessSync(libBase, false, 0)
		c0.MustAccessSync(libBase+mmu.PageSize-64, false, 0) // warm core 0 TLB, different line
		remote := c0.MustAccessSync(libBase, false, 0)

		// Unshared-data probe: read then write on core 0.
		c0.MustAccessSync(heap, false, 0)
		store := c0.MustAccessSync(heap, true, 1)

		m.Quiesce()
		rows = append(rows, Table4Row{
			Protocol:          p.Name(),
			ServeEFromLLC:     remote.Latency == m.Cfg.Timing.LLCLoadLatency(),
			SilentUpgradeOnL1: store.Latency == m.Cfg.Timing.L1Tag,
			RemoteLoadLatency: remote.Latency,
			StoreOnELatency:   store.Latency,
		})
	}
	tb := stats.NewTable(
		"Table IV: Whether E-state shared and unshared data are efficiently handled (measured)",
		"Protocol", "serve E from LLC", "silent E->M on L1", "remote load (cyc)", "store on E (cyc)")
	check := func(b bool) string {
		if b {
			return "yes"
		}
		return "no"
	}
	for _, r := range rows {
		tb.AddRowF(r.Protocol, check(r.ServeEFromLLC), check(r.SilentUpgradeOnL1),
			r.RemoteLoadLatency, r.StoreOnELatency)
	}
	return rows, tb.Render()
}

// Fig6Data is the latency CDF comparison of Figure 6.
type Fig6Data struct {
	LoadWP   *stats.Histogram // SwiftDir Load_WP(L1I&L2S)
	LoadS    *stats.Histogram // MESI Load(L1I&L2S)
	LoadE    *stats.Histogram // MESI Load(L1I&L2E): the exploited slow path (context)
	Rendered string
}

// Fig6 measures coherence-request latencies: SwiftDir's Load_WP of shared
// data against MESI's Load of S-state data (both LLC-served, ~17 cycles),
// plus MESI's E-state path for contrast.
func Fig6(samples int) Fig6Data { return Fig6Ctx(nil, samples) }

// Fig6Ctx is Fig6 with a cooperative cancellation token armed on its
// machines; a nil token is Fig6 exactly. A fired token aborts the
// measurement loop mid-simulation with a "cancelled" violation.
func Fig6Ctx(c *sim.Cancel, samples int) Fig6Data {
	d := Fig6Data{
		LoadWP: &stats.Histogram{},
		LoadS:  &stats.Histogram{},
		LoadE:  &stats.Histogram{},
	}

	// SwiftDir: every cross-core load of write-protected shared data.
	{
		cfg := core.DefaultConfig(2, coherence.SwiftDir)
		cfg.Cancel = c
		m := core.MustNewMachine(cfg)
		proc := m.NewProcess()
		c0, c1 := proc.AttachContext(0), proc.AttachContext(1)
		lib := mmu.NewFile("fig6.so", 6)
		base := proc.MmapLibrary(lib, (samples/63+2)*mmu.PageSize)
		for i := 0; i < samples; i++ {
			page, line := i/63, i%63+1
			v := base + mmu.VAddr(page*mmu.PageSize+line*64)
			c1.MustAccessSync(v, false, 0)
			c0.MustAccessSync(base+mmu.VAddr(page*mmu.PageSize), false, 0) // TLB warm
			r := c0.MustAccessSync(v, false, 0)
			d.LoadWP.Add(r.Latency)
		}
	}
	// MESI: S-state loads (two prior sharers) and E-state loads.
	{
		cfg := core.DefaultConfig(4, coherence.MESI)
		cfg.Cancel = c
		m := core.MustNewMachine(cfg)
		proc := m.NewProcess()
		c0, c1, c2 := proc.AttachContext(0), proc.AttachContext(1), proc.AttachContext(2)
		lib := mmu.NewFile("fig6-mesi.so", 7)
		base := proc.MmapLibrary(lib, (2*samples/63+2)*mmu.PageSize)
		addr := func(i int) (mmu.VAddr, mmu.VAddr) {
			page, line := i/63, i%63+1
			return base + mmu.VAddr(page*mmu.PageSize+line*64),
				base + mmu.VAddr(page*mmu.PageSize)
		}
		for i := 0; i < samples; i++ {
			v, warm := addr(i)
			c1.MustAccessSync(v, false, 0) // E on core 1
			c2.MustAccessSync(v, false, 0) // E -> S (forward); now S in LLC
			c0.MustAccessSync(warm, false, 0)
			r := c0.MustAccessSync(v, false, 0)
			d.LoadS.Add(r.Latency)
		}
		for i := samples; i < 2*samples; i++ {
			v, warm := addr(i)
			c1.MustAccessSync(v, false, 0) // E on core 1
			c0.MustAccessSync(warm, false, 0)
			r := c0.MustAccessSync(v, false, 0)
			d.LoadE.Add(r.Latency)
		}
	}
	d.Rendered = stats.RenderCDF(
		"Figure 6: CDF of coherence request latency (cycles)",
		[]string{"Load_WP(L1I&L2S) SwiftDir", "Load(L1I&L2S) MESI", "Load(L1I&L2E) MESI"},
		[][]stats.CDFPoint{d.LoadWP.CDF(), d.LoadS.CDF(), d.LoadE.CDF()},
	)
	return d
}

// Fig6Jitter re-measures Figure 6 on a machine with finite interconnect
// bandwidth (LinkOccupancy > 0) and background traffic from the other two
// cores, so the latency distributions acquire the load-dependent spread
// the paper's gem5 measurements show — "centralized around 17 cycles"
// rather than a point mass. The security conclusion is unchanged: the
// Load_WP and Load(S) distributions coincide; only MESI's E-state path is
// shifted.
func Fig6Jitter(samples int) Fig6Data { return Fig6JitterCtx(nil, samples) }

// Fig6JitterCtx is Fig6Jitter with a cooperative cancellation token
// armed on its machines; a nil token is Fig6Jitter exactly.
func Fig6JitterCtx(c *sim.Cancel, samples int) Fig6Data {
	d := Fig6Data{
		LoadWP: &stats.Histogram{},
		LoadS:  &stats.Histogram{},
		LoadE:  &stats.Histogram{},
	}
	measure := func(p coherence.Policy, wp bool, h *stats.Histogram, makeShared bool) {
		cfg := core.DefaultConfig(4, p)
		cfg.Timing.LinkOccupancy = 2
		cfg.Cancel = c
		m := core.MustNewMachine(cfg)
		proc := m.NewProcess()
		lib := mmu.NewFile("fig6j.so", 0x616)
		pages := 2*samples/63 + 2
		base := proc.MmapLibrary(lib, pages*mmu.PageSize)
		c0 := proc.AttachContext(0)
		c1 := proc.AttachContext(1)
		c2 := proc.AttachContext(2)
		noise := proc.AttachContext(3)
		noiseHeap := proc.MmapAnon(1 << 20)

		// Background chatter: core 3 streams its heap continuously.
		rng := sim.NewRNG(0xBA5E)
		var chatter func(n int)
		chatter = func(n int) {
			if n == 0 {
				return
			}
			v := noiseHeap + mmu.VAddr(rng.Intn(1<<14))*64
			_ = noise.Access(v, rng.Bool(0.3), rng.Uint64(), func(coherence.AccessResult) {
				chatter(n - 1)
			})
		}
		chatter(100 * samples)

		addr := func(i int) (mmu.VAddr, mmu.VAddr) {
			page, line := i/63, i%63+1
			return base + mmu.VAddr(page*mmu.PageSize+line*64),
				base + mmu.VAddr(page*mmu.PageSize)
		}
		for i := 0; i < samples; i++ {
			v, warm := addr(i)
			c1.MustAccessSync(v, false, 0)
			if makeShared {
				c2.MustAccessSync(v, false, 0)
			}
			c0.MustAccessSync(warm, false, 0)
			r := c0.MustAccessSync(v, false, 0)
			h.Add(r.Latency)
		}
		_ = wp
	}
	// SwiftDir WP loads (inherently shared), MESI S-state, MESI E-state.
	measureWP := func(h *stats.Histogram) {
		cfg := core.DefaultConfig(4, coherence.SwiftDir)
		cfg.Timing.LinkOccupancy = 2
		cfg.Cancel = c
		m := core.MustNewMachine(cfg)
		proc := m.NewProcess()
		lib := mmu.NewFile("fig6j-wp.so", 0x617)
		pages := samples/63 + 2
		base := proc.MmapLibrary(lib, pages*mmu.PageSize)
		c0, c1 := proc.AttachContext(0), proc.AttachContext(1)
		noise := proc.AttachContext(3)
		noiseHeap := proc.MmapAnon(1 << 20)
		rng := sim.NewRNG(0xBA5F)
		var chatter func(n int)
		chatter = func(n int) {
			if n == 0 {
				return
			}
			v := noiseHeap + mmu.VAddr(rng.Intn(1<<14))*64
			_ = noise.Access(v, rng.Bool(0.3), rng.Uint64(), func(coherence.AccessResult) {
				chatter(n - 1)
			})
		}
		chatter(100 * samples)
		for i := 0; i < samples; i++ {
			page, line := i/63, i%63+1
			v := base + mmu.VAddr(page*mmu.PageSize+line*64)
			warm := base + mmu.VAddr(page*mmu.PageSize)
			c1.MustAccessSync(v, false, 0)
			c0.MustAccessSync(warm, false, 0)
			r := c0.MustAccessSync(v, false, 0)
			h.Add(r.Latency)
		}
	}
	measureWP(d.LoadWP)
	measure(coherence.MESI, false, d.LoadS, true)
	measure(coherence.MESI, false, d.LoadE, false)
	d.Rendered = stats.RenderCDF(
		"Figure 6 (contended interconnect): CDF of coherence request latency (cycles)",
		[]string{"Load_WP(L1I&L2S) SwiftDir", "Load(L1I&L2S) MESI", "Load(L1I&L2E) MESI"},
		[][]stats.CDFPoint{d.LoadWP.CDF(), d.LoadS.CDF(), d.LoadE.CDF()},
	)
	return d
}

// Security runs the covert- and side-channel attacks on all protocols.
// Each protocol's attack is an independent campaign job; the rendered
// report concatenates the per-protocol chunks in the paper's protocol
// order, so the output is identical at any worker count.
func Security(bits, trials int) (results []attack.Result, sides []attack.SideResult, rendered string) {
	return SecurityCtx(context.Background(), nil, bits, trials)
}

// SecurityCtx is Security with end-to-end cancellation: the token is
// armed on every attack machine (mid-simulation abort) and ctx gates the
// campaign grid (jobs not yet started are skipped once it fires). A
// background ctx with a nil token is Security exactly.
func SecurityCtx(ctx context.Context, c *sim.Cancel, bits, trials int) (results []attack.Result, sides []attack.SideResult, rendered string) {
	var b strings.Builder
	b.WriteString("Security: E/S coherence timing-channel attacks (§V-A)\n\n")
	b.WriteString("Covert channel (sender modulates E/S, receiver times loads):\n")

	type covertOut struct {
		res  attack.Result
		text string
	}
	var covertJobs []campaign.Job[covertOut]
	for _, p := range protocols {
		covertJobs = append(covertJobs, campaign.Job[covertOut]{
			Name: "security/covert/" + p.Name(),
			Run: func() (covertOut, error) {
				cfg := core.DefaultConfig(4, p)
				cfg.Cancel = c
				ch, err := attack.NewChannel(cfg, bits)
				if err != nil {
					return covertOut{}, err
				}
				r, err := ch.Run(bits, 0xC0F3)
				if err != nil {
					return covertOut{}, err
				}
				var cb strings.Builder
				cb.WriteString("  " + r.Describe() + "\n")
				if r.Leaked {
					fmt.Fprintf(&cb, "            leak rate: %.0f Kbps at 3 GHz (%.0f cycles/bit, idealized lockstep;\n",
						r.KbpsAt(3.0), r.CyclesPerBit)
					cb.WriteString("            the paper's 700~1,100 Kbps includes sender/receiver synchronization)\n")
				}
				return covertOut{res: r, text: cb.String()}, nil
			},
		})
	}
	for _, out := range campaign.MustCollectCtx(ctx, 0, covertJobs) {
		results = append(results, out.res)
		b.WriteString(out.text)
	}

	b.WriteString("\nInstruction-fetch channel (bits executed from shared library code):\n")
	var textJobs []campaign.Job[string]
	for _, p := range protocols {
		textJobs = append(textJobs, campaign.Job[string]{
			Name: "security/textchannel/" + p.Name(),
			Run: func() (string, error) {
				cfg := core.DefaultConfig(4, p)
				cfg.Cancel = c
				tc, err := attack.NewTextChannel(cfg, bits/4)
				if err != nil {
					return "", err
				}
				r, err := tc.Run(bits/4, 0x1F)
				if err != nil {
					return "", err
				}
				return "  " + r.Describe() + "\n", nil
			},
		})
	}
	for _, line := range campaign.MustCollectCtx(ctx, 0, textJobs) {
		b.WriteString(line)
	}

	b.WriteString("\nSide channel (attacker infers victim accesses):\n")
	var sideJobs []campaign.Job[attack.SideResult]
	for _, p := range protocols {
		sideJobs = append(sideJobs, campaign.Job[attack.SideResult]{
			Name: "security/side/" + p.Name(),
			Run: func() (attack.SideResult, error) {
				cfg := core.DefaultConfig(4, p)
				cfg.Cancel = c
				sc, err := attack.NewSideChannel(cfg, trials)
				if err != nil {
					return attack.SideResult{}, err
				}
				return sc.Run(trials, 0x51DE)
			},
		})
	}
	for _, r := range campaign.MustCollectCtx(ctx, 0, sideJobs) {
		sides = append(sides, r)
		b.WriteString("  " + r.Describe() + "\n")
	}
	return results, sides, b.String()
}

// SuiteRow holds one benchmark's metric under the three protocols,
// normalized to MESI (x100, as the paper's figures).
type SuiteRow struct {
	Benchmark string
	MESI      float64 // always 100
	SwiftDir  float64
	SMESI     float64
}

// runSuite executes profiles under all protocols and normalizes metric
// (IPC: higher is better; exec time: lower is better) against MESI.
// Every benchmark×protocol cell is an independent simulation, so the
// whole grid fans out over the campaign pool; normalization happens
// after collection, on results in submission order.
func runSuite(profiles []workload.Profile, kind workload.CPUKind, useIPC bool, scale float64) []SuiteRow {
	return runSuiteCtx(context.Background(), nil, profiles, kind, useIPC, scale)
}

// runSuiteCtx is runSuite with end-to-end cancellation: the token is
// armed on every benchmark machine and ctx gates the campaign grid.
func runSuiteCtx(ctx context.Context, c *sim.Cancel, profiles []workload.Profile, kind workload.CPUKind, useIPC bool, scale float64) []SuiteRow {
	var jobs []campaign.Job[float64]
	for _, p := range profiles {
		sp := p.Scale(scale)
		for _, proto := range protocols {
			jobs = append(jobs, campaign.Job[float64]{
				Name: p.Name + "/" + proto.Name(),
				Run: func() (float64, error) {
					r, err := workload.RunCancel(sp, proto, kind, c)
					if err != nil {
						return 0, err
					}
					if useIPC {
						return r.IPC, nil
					}
					return float64(r.ExecCycles), nil
				},
			})
		}
	}
	metrics := campaign.MustCollectCtx(ctx, 0, jobs)

	var rows []SuiteRow
	for i, p := range profiles {
		base := metrics[i*len(protocols)] // protocols[0] is MESI
		rows = append(rows, SuiteRow{
			Benchmark: p.Name,
			MESI:      100,
			SwiftDir:  stats.Normalize(metrics[i*len(protocols)+1], base),
			SMESI:     stats.Normalize(metrics[i*len(protocols)+2], base),
		})
	}
	return rows
}

func renderSuite(title, metric string, rows []SuiteRow) string {
	tb := stats.NewTable(title, "benchmark", "MESI", "SwiftDir", "S-MESI")
	var sw, sm []float64
	for _, r := range rows {
		tb.AddRowF(r.Benchmark, r.MESI, r.SwiftDir, r.SMESI)
		sw = append(sw, r.SwiftDir)
		sm = append(sm, r.SMESI)
	}
	tb.AddRowF("average", 100.0, stats.Mean(sw), stats.Mean(sm))
	return tb.Render() + fmt.Sprintf("(normalized %s over MESI; x100)\n", metric)
}

// Fig7 reproduces the single-threaded SPEC comparison (normalized IPC,
// higher is better). scale shrinks instruction counts for quick runs.
func Fig7(scale float64) ([]SuiteRow, string) { return Fig7Ctx(context.Background(), nil, scale) }

// Fig7Ctx is Fig7 with end-to-end cancellation (see runSuiteCtx).
func Fig7Ctx(ctx context.Context, c *sim.Cancel, scale float64) ([]SuiteRow, string) {
	rows := runSuiteCtx(ctx, c, workload.SPEC2017(), workload.DerivO3CPU, true, scale)
	return rows, renderSuite(
		"Figure 7: Single-threaded SPEC CPU 2017 - normalized IPC (higher is better)",
		"IPC", rows)
}

// Fig8 reproduces the multi-threaded PARSEC comparison (normalized ROI
// execution time, lower is better).
func Fig8(scale float64) ([]SuiteRow, string) { return Fig8Ctx(context.Background(), nil, scale) }

// Fig8Ctx is Fig8 with end-to-end cancellation (see runSuiteCtx).
func Fig8Ctx(ctx context.Context, c *sim.Cancel, scale float64) ([]SuiteRow, string) {
	rows := runSuiteCtx(ctx, c, workload.PARSEC3(), workload.DerivO3CPU, false, scale)
	return rows, renderSuite(
		"Figure 8: Multi-threaded PARSEC 3.0 - normalized ROI execution time (lower is better)",
		"execution time", rows)
}

// Fig9Amounts are the paper's shared-data sweep points.
var Fig9Amounts = []int{1000, 2000, 3000, 4000, 5000}

// Fig9 reproduces the read-only shared-data sweep (normalized execution
// time, lower is better).
func Fig9(amounts []int) ([]SuiteRow, string) {
	return Fig9Ctx(context.Background(), nil, amounts)
}

// Fig9Ctx is Fig9 with end-to-end cancellation (see runSuiteCtx).
func Fig9Ctx(ctx context.Context, c *sim.Cancel, amounts []int) ([]SuiteRow, string) {
	var jobs []campaign.Job[float64]
	for _, n := range amounts {
		for _, proto := range protocols {
			jobs = append(jobs, campaign.Job[float64]{
				Name: fmt.Sprintf("fig9/%d/%s", n, proto.Name()),
				Run: func() (float64, error) {
					r, err := workload.RunReadOnlyCancel(n, proto, workload.DerivO3CPU, c)
					if err != nil {
						return 0, err
					}
					return float64(r.ExecCycles), nil
				},
			})
		}
	}
	metrics := campaign.MustCollectCtx(ctx, 0, jobs)

	var rows []SuiteRow
	for i, n := range amounts {
		base := metrics[i*len(protocols)]
		rows = append(rows, SuiteRow{
			Benchmark: fmt.Sprintf("%d", n),
			MESI:      100,
			SwiftDir:  stats.Normalize(metrics[i*len(protocols)+1], base),
			SMESI:     stats.Normalize(metrics[i*len(protocols)+2], base),
		})
	}
	return rows, renderSuite(
		"Figure 9: Multi-threaded read-only benchmarks - normalized execution time vs amount of shared data",
		"execution time", rows)
}

// Fig10 reproduces the write-after-read intensive applications under one
// CPU model (normalized execution time, lower is better). The paper's
// Figure 10(a) uses TimingSimpleCPU and 10(b) DerivO3CPU.
func Fig10(kind workload.CPUKind, passes int) ([]SuiteRow, string) {
	return Fig10Ctx(context.Background(), nil, kind, passes)
}

// Fig10Ctx is Fig10 with end-to-end cancellation (see runSuiteCtx).
func Fig10Ctx(ctx context.Context, c *sim.Cancel, kind workload.CPUKind, passes int) ([]SuiteRow, string) {
	apps := workload.WARApps()
	var jobs []campaign.Job[float64]
	for _, app := range apps {
		for _, proto := range protocols {
			jobs = append(jobs, campaign.Job[float64]{
				Name: fmt.Sprintf("fig10/%s/%s", app.Name, proto.Name()),
				Run: func() (float64, error) {
					r, err := workload.RunWARCancel(app, proto, kind, passes, c)
					if err != nil {
						return 0, err
					}
					return float64(r.ExecCycles), nil
				},
			})
		}
	}
	metrics := campaign.MustCollectCtx(ctx, 0, jobs)

	var rows []SuiteRow
	for i, app := range apps {
		base := metrics[i*len(protocols)]
		rows = append(rows, SuiteRow{
			Benchmark: app.Name,
			MESI:      100,
			SwiftDir:  stats.Normalize(metrics[i*len(protocols)+1], base),
			SMESI:     stats.Normalize(metrics[i*len(protocols)+2], base),
		})
	}
	sub := "(a) TimingSimpleCPU"
	if kind == workload.DerivO3CPU {
		sub = "(b) DerivO3CPU"
	}
	return rows, renderSuite(
		"Figure 10"+sub+": Write-after-read intensive benchmarks - normalized execution time",
		"execution time", rows)
}
