package experiments

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"os"
	"path/filepath"
	"sort"
	"testing"

	"repro/internal/campaign"
	"repro/internal/workload"
)

// goldenCases is the 16-experiment grid whose rendered reports are pinned
// byte-for-byte across substrate rewrites. The cases and parameters mirror
// TestParallelReportsMatchSequential; the hashes in testdata/golden_reports
// were captured on the container/heap engine before the pooled rewrite, so
// a passing run proves the calendar queue and the free lists preserve the
// exact event interleaving (same seeds, one worker).
var goldenCases = []struct {
	name  string
	heavy bool // skipped under -short
	run   func() string
}{
	{"fig7", true, func() string { _, s := Fig7(0.02); return s }},
	{"fig8", true, func() string { _, s := Fig8(0.02); return s }},
	{"fig9", false, func() string { _, s := Fig9([]int{1000, 2000}); return s }},
	{"fig10a", false, func() string { _, s := Fig10(workload.TimingSimpleCPU, 1); return s }},
	{"fig10b", false, func() string { _, s := Fig10(workload.DerivO3CPU, 1); return s }},
	{"security", false, func() string { _, _, s := Security(64, 64); return s }},
	{"multiprogram", true, func() string { _, s := Multiprogram(0.02); return s }},
	{"sweep", false, TimingSweep},
	{"lru", true, func() string { return AblationLRU(0.05) }},
	{"ablation-ewp", false, func() string { return AblationEwp(32) }},
	{"ablation-war", false, func() string { return AblationWAR(1) }},
	{"traffic", false, Traffic},
	{"msi", false, func() string { return MSIStudy(32, 1) }},
	{"moesi", false, func() string { return MOESIStudy(32, 1) }},
	{"snoop", false, func() string { return SnoopStudy(32) }},
	{"kernels", false, func() string { return KernelStudy(64) }},
}

const goldenPath = "testdata/golden_reports.json"

// TestGoldenReportEquivalence renders every experiment of the grid with a
// single worker and compares the SHA-256 of each report against the
// committed golden hash. Regenerate with SWIFTDIR_UPDATE_GOLDEN=1 (only
// legitimate when an experiment's *output format* intentionally changes —
// never to paper over an engine or protocol behaviour change).
func TestGoldenReportEquivalence(t *testing.T) {
	update := os.Getenv("SWIFTDIR_UPDATE_GOLDEN") != ""

	want := map[string]string{}
	if !update {
		raw, err := os.ReadFile(goldenPath)
		if err != nil {
			t.Fatalf("read golden file (set SWIFTDIR_UPDATE_GOLDEN=1 to create): %v", err)
		}
		if err := json.Unmarshal(raw, &want); err != nil {
			t.Fatalf("parse %s: %v", goldenPath, err)
		}
	}

	defer campaign.SetWorkers(0)
	campaign.SetWorkers(1)

	got := map[string]string{}
	for _, tc := range goldenCases {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			if tc.heavy && testing.Short() {
				t.Skip("suite runs are slow")
			}
			report := tc.run()
			if len(report) == 0 {
				t.Fatalf("%s: empty report", tc.name)
			}
			sum := sha256.Sum256([]byte(report))
			h := hex.EncodeToString(sum[:])
			got[tc.name] = h
			if update {
				return
			}
			w, ok := want[tc.name]
			if !ok {
				t.Fatalf("%s: no golden hash recorded", tc.name)
			}
			if h != w {
				t.Errorf("%s: report hash %s differs from golden %s\n--- report ---\n%s",
					tc.name, h, w, report)
			}
		})
	}

	if update {
		// Preserve hashes of cases skipped this run (e.g. -short).
		if raw, err := os.ReadFile(goldenPath); err == nil {
			old := map[string]string{}
			if json.Unmarshal(raw, &old) == nil {
				for k, v := range old {
					if _, ok := got[k]; !ok {
						got[k] = v
					}
				}
			}
		}
		if err := os.MkdirAll(filepath.Dir(goldenPath), 0o755); err != nil {
			t.Fatal(err)
		}
		names := make([]string, 0, len(got))
		for k := range got {
			names = append(names, k)
		}
		sort.Strings(names)
		out, err := json.MarshalIndent(got, "", "  ")
		if err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(goldenPath, append(out, '\n'), 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("wrote %d golden hashes to %s", len(got), goldenPath)
	}
}
