package experiments

import (
	"sort"

	"repro/internal/coherence"
	"repro/internal/stats"
	"repro/internal/workload"
)

// Multiprogram evaluates the protocols on multiprogrammed 4-core mixes:
// independent processes sharing only the common library — the setting the
// paper's introduction motivates for shared memory (dynamically linked
// libraries across programs). Normalized mix execution time over MESI,
// lower is better.
func Multiprogram(scale float64) ([]SuiteRow, string) {
	mixes := workload.SPECRateMixes()
	names := make([]string, 0, len(mixes))
	for n := range mixes {
		names = append(names, n)
	}
	sort.Strings(names)

	var rows []SuiteRow
	for _, name := range names {
		var progs []workload.Profile
		for _, p := range mixes[name] {
			progs = append(progs, p.Scale(scale))
		}
		metric := func(proto coherence.Policy) float64 {
			r, err := workload.RunMultiprogram(progs, proto, workload.DerivO3CPU)
			if err != nil {
				panic(err)
			}
			return float64(r.ExecCycles)
		}
		base := metric(coherence.MESI)
		rows = append(rows, SuiteRow{
			Benchmark: name,
			MESI:      100,
			SwiftDir:  stats.Normalize(metric(coherence.SwiftDir), base),
			SMESI:     stats.Normalize(metric(coherence.SMESI), base),
		})
	}
	return rows, renderSuite(
		"Multiprogrammed SPEC mixes (4 processes, shared libc) - normalized execution time (lower is better)",
		"execution time", rows)
}
