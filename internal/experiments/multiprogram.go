package experiments

import (
	"sort"

	"repro/internal/campaign"
	"repro/internal/stats"
	"repro/internal/workload"
)

// Multiprogram evaluates the protocols on multiprogrammed 4-core mixes:
// independent processes sharing only the common library — the setting the
// paper's introduction motivates for shared memory (dynamically linked
// libraries across programs). Normalized mix execution time over MESI,
// lower is better. Every mix×protocol run is an independent campaign job.
func Multiprogram(scale float64) ([]SuiteRow, string) {
	mixes := workload.SPECRateMixes()
	names := make([]string, 0, len(mixes))
	for n := range mixes {
		names = append(names, n)
	}
	sort.Strings(names)

	var jobs []campaign.Job[float64]
	for _, name := range names {
		var progs []workload.Profile
		for _, p := range mixes[name] {
			progs = append(progs, p.Scale(scale))
		}
		for _, proto := range protocols {
			jobs = append(jobs, campaign.Job[float64]{
				Name: "multiprogram/" + name + "/" + proto.Name(),
				Run: func() (float64, error) {
					r, err := workload.RunMultiprogram(progs, proto, workload.DerivO3CPU)
					if err != nil {
						return 0, err
					}
					return float64(r.ExecCycles), nil
				},
			})
		}
	}
	metrics := campaign.MustCollect(0, jobs)

	var rows []SuiteRow
	for i, name := range names {
		base := metrics[i*len(protocols)]
		rows = append(rows, SuiteRow{
			Benchmark: name,
			MESI:      100,
			SwiftDir:  stats.Normalize(metrics[i*len(protocols)+1], base),
			SMESI:     stats.Normalize(metrics[i*len(protocols)+2], base),
		})
	}
	return rows, renderSuite(
		"Multiprogrammed SPEC mixes (4 processes, shared libc) - normalized execution time (lower is better)",
		"execution time", rows)
}
