package experiments

import (
	"strings"

	"repro/internal/attack"
	"repro/internal/cache"
	"repro/internal/coherence"
	"repro/internal/core"
	"repro/internal/stats"
	"repro/internal/workload"
)

// MSIStudy evaluates the naive fix the paper's design implicitly argues
// against: closing the E/S channel by dropping the Exclusive state
// altogether (plain MSI). MSI is exactly as secure as SwiftDir — there is
// no E to distinguish — but it taxes *every* private read-then-write with
// an Upgrade round trip, for all data, forever. S-MESI narrows that tax
// to first-write-after-read; SwiftDir narrows it to zero by scoping the
// state change to data that cannot be written at all.
func MSIStudy(bits, passes int) string {
	protos := []coherence.Policy{coherence.MESI, coherence.MSI, coherence.SMESI, coherence.SwiftDir}
	var b strings.Builder
	b.WriteString("MSI baseline: dropping the E state vs scoping it (SwiftDir)\n\n")

	// 1. Security: all three defenses close the covert channel.
	b.WriteString("Covert channel:\n")
	for _, p := range protos {
		ch, err := attack.NewChannel(core.DefaultConfig(4, p), bits)
		if err != nil {
			panic(err)
		}
		r, err := ch.Run(bits, 0x351)
		if err != nil {
			panic(err)
		}
		b.WriteString("  " + r.Describe() + "\n")
	}

	// 2. The private read-then-write tax: N private lines, load then
	// store each. MESI and SwiftDir upgrade silently; MSI and S-MESI pay
	// a round trip per line.
	b.WriteString("\nPrivate read-then-write microbenchmark (128 lines):\n")
	tb := stats.NewTable("", "protocol", "cycles", "Upgrade msgs", "silent upgrades")
	for _, p := range protos {
		sys, cycles := privateRMW(p, 128)
		tb.AddRowF(p.Name(), cycles,
			sys.MsgCount(coherence.MsgUpgrade),
			sys.L1s[0].Stats.SilentUpgrades)
	}
	b.WriteString(tb.Render())

	// 3. WAR applications (Figure 10's workloads) with MSI added.
	b.WriteString("\nWAR execution time normalized to MESI (DerivO3CPU):\n")
	wt := stats.NewTable("", "application", "MESI", "MSI", "S-MESI", "SwiftDir")
	for _, app := range workload.WARApps() {
		metric := func(p coherence.Policy) float64 {
			r, err := workload.RunWAR(app, p, workload.DerivO3CPU, passes)
			if err != nil {
				panic(err)
			}
			return float64(r.ExecCycles)
		}
		base := metric(coherence.MESI)
		wt.AddRowF(app.Name, 100.0,
			stats.Normalize(metric(coherence.MSI), base),
			stats.Normalize(metric(coherence.SMESI), base),
			stats.Normalize(metric(coherence.SwiftDir), base))
	}
	b.WriteString(wt.Render())
	b.WriteString("\nMSI buys MESI-grade security at S-MESI-grade (or worse) cost, paid on\n")
	b.WriteString("all data; SwiftDir pays nothing because the protected data are exactly\n")
	b.WriteString("those that cannot be written.\n")
	return b.String()
}

// privateRMW loads then stores n private lines on core 0 and returns the
// quiesced system plus total cycles.
func privateRMW(p coherence.Policy, n int) (*coherence.System, int) {
	cfg := core.DefaultConfig(2, p)
	s := coherence.MustNewSystem(coherence.SystemConfig{
		NumL1:     2,
		L1Params:  cfg.L1,
		LLCParams: cfg.L2Bank,
		Banks:     2,
		Timing:    coherence.DefaultTiming(),
		Policy:    p,
		DRAM:      cfg.DRAM,
	})
	total := 0
	for i := 0; i < n; i++ {
		addr := cache.Addr(0x400000 + i*64)
		// Warm past DRAM so the comparison isolates coherence cost.
		s.AccessSync(0, addr, false, false, 0)
	}
	for i := 0; i < n; i++ {
		addr := cache.Addr(0x400000 + i*64)
		r := s.AccessSync(0, addr, false, false, 0)
		total += int(r.Latency)
		w := s.AccessSync(0, addr, true, false, uint64(i)|1)
		total += int(w.Latency)
	}
	s.Quiesce()
	return s, total
}
