package experiments

import (
	"strings"

	"repro/internal/cache"
	"repro/internal/campaign"
	"repro/internal/coherence"
	"repro/internal/core"
	"repro/internal/stats"
	"repro/internal/workload"
)

// MSIStudy evaluates the naive fix the paper's design implicitly argues
// against: closing the E/S channel by dropping the Exclusive state
// altogether (plain MSI). MSI is exactly as secure as SwiftDir — there is
// no E to distinguish — but it taxes *every* private read-then-write with
// an Upgrade round trip, for all data, forever. S-MESI narrows that tax
// to first-write-after-read; SwiftDir narrows it to zero by scoping the
// state change to data that cannot be written at all.
func MSIStudy(bits, passes int) string {
	protos := []coherence.Policy{coherence.MESI, coherence.MSI, coherence.SMESI, coherence.SwiftDir}
	var b strings.Builder
	b.WriteString("MSI baseline: dropping the E state vs scoping it (SwiftDir)\n\n")

	// 1. Security: all three defenses close the covert channel.
	b.WriteString("Covert channel:\n")
	for _, line := range campaign.MustCollect(0, covertJobs(protos, "msi", bits, 0x351)) {
		b.WriteString(line)
	}

	// 2. The private read-then-write tax: N private lines, load then
	// store each. MESI and SwiftDir upgrade silently; MSI and S-MESI pay
	// a round trip per line.
	b.WriteString("\nPrivate read-then-write microbenchmark (128 lines):\n")
	tb := stats.NewTable("", "protocol", "cycles", "Upgrade msgs", "silent upgrades")
	var rmwJobs []campaign.Job[[]any]
	for _, p := range protos {
		rmwJobs = append(rmwJobs, campaign.Job[[]any]{
			Name: "msi/rmw/" + p.Name(),
			Run: func() ([]any, error) {
				sys, cycles := privateRMW(p, 128)
				return []any{p.Name(), cycles,
					sys.MsgCount(coherence.MsgUpgrade),
					sys.L1s[0].Stats.SilentUpgrades}, nil
			},
		})
	}
	for _, row := range campaign.MustCollect(0, rmwJobs) {
		tb.AddRowF(row...)
	}
	b.WriteString(tb.Render())

	// 3. WAR applications (Figure 10's workloads) with MSI added.
	b.WriteString("\nWAR execution time normalized to MESI (DerivO3CPU):\n")
	wt := stats.NewTable("", "application", "MESI", "MSI", "S-MESI", "SwiftDir")
	apps := workload.WARApps()
	warProtos := []coherence.Policy{coherence.MESI, coherence.MSI, coherence.SMESI, coherence.SwiftDir}
	metrics := warMetrics("msi", apps, warProtos, workload.DerivO3CPU, passes)
	for i, app := range apps {
		wt.AddRowF(normalizedWARRow(app.Name, metrics[i*len(warProtos):(i+1)*len(warProtos)])...)
	}
	b.WriteString(wt.Render())
	b.WriteString("\nMSI buys MESI-grade security at S-MESI-grade (or worse) cost, paid on\n")
	b.WriteString("all data; SwiftDir pays nothing because the protected data are exactly\n")
	b.WriteString("those that cannot be written.\n")
	return b.String()
}

// privateRMW loads then stores n private lines on core 0 and returns the
// quiesced system plus total cycles.
func privateRMW(p coherence.Policy, n int) (*coherence.System, int) {
	cfg := core.DefaultConfig(2, p)
	s := coherence.MustNewSystem(coherence.SystemConfig{
		NumL1:     2,
		L1Params:  cfg.L1,
		LLCParams: cfg.L2Bank,
		Banks:     2,
		Timing:    coherence.DefaultTiming(),
		Policy:    p,
		DRAM:      cfg.DRAM,
	})
	total := 0
	for i := 0; i < n; i++ {
		addr := cache.Addr(0x400000 + i*64)
		// Warm past DRAM so the comparison isolates coherence cost.
		s.AccessSync(0, addr, false, false, 0)
	}
	for i := 0; i < n; i++ {
		addr := cache.Addr(0x400000 + i*64)
		r := s.AccessSync(0, addr, false, false, 0)
		total += int(r.Latency)
		w := s.AccessSync(0, addr, true, false, uint64(i)|1)
		total += int(w.Latency)
	}
	s.Quiesce()
	return s, total
}
