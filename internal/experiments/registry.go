package experiments

import (
	"context"
	"sort"
	"strings"

	"repro/internal/sim"
	"repro/internal/workload"
)

// Params is the full knob set an experiment run can be parameterized
// with. It is the wire format of cmd/swiftdir-serve and the input half
// of the result-cache key, so the zero value of every field means "use
// the experiment's default" and fields an experiment does not consume
// are canonicalized away by Experiment.Normalize — two requests that
// differ only in knobs the experiment ignores memoize to the same entry.
//
// The JSON names are the server's request vocabulary; omitempty keeps
// the canonical (normalized) encoding free of irrelevant zero fields.
type Params struct {
	Scale   float64 `json:"scale,omitempty"`   // instruction-budget scale (suite runs)
	Samples int     `json:"samples,omitempty"` // latency samples (fig6 family)
	Bits    int     `json:"bits,omitempty"`    // covert-channel bits (attack studies)
	Trials  int     `json:"trials,omitempty"`  // side-channel trials (security; default Bits)
	Passes  int     `json:"passes,omitempty"`  // measured WAR passes (fig10, studies)
	Amounts []int   `json:"amounts,omitempty"` // shared-data sweep points (fig9)
	WSKB    int     `json:"ws_kb,omitempty"`   // kernel-study working set, KB
	Cores   int     `json:"cores,omitempty"`   // hardware-cost table core count
}

// DefaultParams are the values the zero Params resolves to, experiment
// by experiment: they mirror cmd/swiftdir-bench's flag defaults so a
// bare server request reproduces exactly what a bare CLI run prints.
func DefaultParams() Params {
	return Params{
		Scale:   0.25,
		Samples: 2000,
		Bits:    1024,
		Trials:  0, // resolved to Bits by the security experiment
		Passes:  4,
		Amounts: nil, // resolved to Fig9Amounts by fig9
		WSKB:    512,
		Cores:   4,
	}
}

// paramUse is the bitmask of Params fields one experiment consumes.
type paramUse uint16

const (
	usesScale paramUse = 1 << iota
	usesSamples
	usesBits
	usesTrials
	usesPasses
	usesAmounts
	usesWSKB
	usesCores
)

// Experiment is one registry entry: a named, parameterized, deterministic
// report generator. Run renders the same bytes for the same normalized
// Params at any worker/shard count (the repo's headline guarantee), which
// is what makes memoizing on (Name, Normalize(p)) sound.
type Experiment struct {
	Name  string
	Title string // one-line description for listings
	uses  paramUse
	run   func(Params) string

	// runCtx, when set, is the cancellation-aware variant: it receives
	// the caller's context plus a cancel token already bound to it, and
	// arms the token on every machine it builds (core.Config.Cancel), so
	// a fired context aborts the simulations mid-run with a typed
	// "cancelled" violation. Experiments without runCtx run to
	// completion once started; their results stay valid, the caller just
	// stops waiting.
	runCtx func(ctx context.Context, c *sim.Cancel, p Params) string
}

// Normalize canonicalizes p for this experiment: fields the experiment
// consumes resolve zero values to DefaultParams, every other field is
// cleared. The result is the Params half of a content-addressed cache
// key — requests that cannot change the report normalize identically.
func (e Experiment) Normalize(p Params) Params {
	def := DefaultParams()
	var n Params
	if e.uses&usesScale != 0 {
		n.Scale = p.Scale
		if n.Scale == 0 {
			n.Scale = def.Scale
		}
	}
	if e.uses&usesSamples != 0 {
		n.Samples = p.Samples
		if n.Samples == 0 {
			n.Samples = def.Samples
		}
	}
	if e.uses&usesBits != 0 {
		n.Bits = p.Bits
		if n.Bits == 0 {
			n.Bits = def.Bits
		}
	}
	if e.uses&usesTrials != 0 {
		n.Trials = p.Trials
		if n.Trials == 0 {
			n.Trials = n.Bits // security's CLI default: trials = bits
		}
	}
	if e.uses&usesPasses != 0 {
		n.Passes = p.Passes
		if n.Passes == 0 {
			n.Passes = def.Passes
		}
	}
	if e.uses&usesAmounts != 0 {
		if len(p.Amounts) > 0 {
			n.Amounts = append([]int(nil), p.Amounts...)
			sort.Ints(n.Amounts)
		} else {
			n.Amounts = append([]int(nil), Fig9Amounts...)
		}
	}
	if e.uses&usesWSKB != 0 {
		n.WSKB = p.WSKB
		if n.WSKB == 0 {
			n.WSKB = def.WSKB
		}
	}
	if e.uses&usesCores != 0 {
		n.Cores = p.Cores
		if n.Cores == 0 {
			n.Cores = def.Cores
		}
	}
	return n
}

// Run normalizes p and renders the experiment's report. It panics on a
// diverging simulation (the package's convention); frontends recover.
func (e Experiment) Run(p Params) string {
	return e.run(e.Normalize(p))
}

// RunCtx is Run with end-to-end cancellation: when ctx can be cancelled
// and the experiment is cancellation-aware, a fired context aborts the
// underlying simulations at their next executed event — surfacing as a
// panic with a *fault.Violation of kind "cancelled" (the package's
// divergence convention, so existing recover fences classify it). The
// rendered report of an uncancelled RunCtx is byte-identical to Run's:
// the token rides the engines' existing watchdog check and injects no
// events of its own.
func (e Experiment) RunCtx(ctx context.Context, p Params) string {
	if e.runCtx == nil || ctx == nil || ctx.Done() == nil {
		return e.run(e.Normalize(p))
	}
	c, stop := sim.CancelFromContext(ctx)
	defer stop()
	return e.runCtx(ctx, c, e.Normalize(p))
}

// registry lists every experiment in report order — the order
// `swiftdir-bench -exp all` prints and the only dispatch table: the
// bench CLI, the HTTP server, and the cache key derivation all read it.
var registry = []Experiment{
	{Name: "table5", Title: "Table V: experiment setup", run: func(Params) string { return Table5() }},
	{Name: "table4", Title: "Table IV: qualitative E-state handling matrix",
		run: func(Params) string { _, s := Table4(); return s }},
	{Name: "fig4", Title: "Figure 4: directory organizations", run: func(Params) string { return Fig4() }},
	{Name: "fig5", Title: "Figure 5: cache architectures", run: func(Params) string { return Fig5() }},
	{Name: "fig6", Title: "Figure 6: coherence-request latency CDF", uses: usesSamples,
		run:    func(p Params) string { return Fig6(p.Samples).Rendered },
		runCtx: func(_ context.Context, c *sim.Cancel, p Params) string { return Fig6Ctx(c, p.Samples).Rendered }},
	{Name: "fig6jitter", Title: "Figure 6 on a contended interconnect", uses: usesSamples,
		run:    func(p Params) string { return Fig6Jitter(p.Samples / 4).Rendered },
		runCtx: func(_ context.Context, c *sim.Cancel, p Params) string { return Fig6JitterCtx(c, p.Samples/4).Rendered }},
	{Name: "security", Title: "covert/side-channel attack suite", uses: usesBits | usesTrials,
		run: func(p Params) string { _, _, s := Security(p.Bits, p.Trials); return s },
		runCtx: func(ctx context.Context, c *sim.Cancel, p Params) string {
			_, _, s := SecurityCtx(ctx, c, p.Bits, p.Trials)
			return s
		}},
	{Name: "fig7", Title: "Figure 7: SPEC 2017 normalized IPC", uses: usesScale,
		run:    func(p Params) string { _, s := Fig7(p.Scale); return s },
		runCtx: func(ctx context.Context, c *sim.Cancel, p Params) string { _, s := Fig7Ctx(ctx, c, p.Scale); return s }},
	{Name: "fig8", Title: "Figure 8: PARSEC 3.0 normalized execution time", uses: usesScale,
		run:    func(p Params) string { _, s := Fig8(p.Scale); return s },
		runCtx: func(ctx context.Context, c *sim.Cancel, p Params) string { _, s := Fig8Ctx(ctx, c, p.Scale); return s }},
	{Name: "fig9", Title: "Figure 9: read-only shared-data sweep", uses: usesAmounts,
		run: func(p Params) string { _, s := Fig9(p.Amounts); return s },
		runCtx: func(ctx context.Context, c *sim.Cancel, p Params) string {
			_, s := Fig9Ctx(ctx, c, p.Amounts)
			return s
		}},
	{Name: "fig10a", Title: "Figure 10(a): WAR apps, TimingSimpleCPU", uses: usesPasses,
		run: func(p Params) string { _, s := Fig10(workload.TimingSimpleCPU, p.Passes); return s },
		runCtx: func(ctx context.Context, c *sim.Cancel, p Params) string {
			_, s := Fig10Ctx(ctx, c, workload.TimingSimpleCPU, p.Passes)
			return s
		}},
	{Name: "fig10b", Title: "Figure 10(b): WAR apps, DerivO3CPU", uses: usesPasses,
		run: func(p Params) string { _, s := Fig10(workload.DerivO3CPU, p.Passes); return s },
		runCtx: func(ctx context.Context, c *sim.Cancel, p Params) string {
			_, s := Fig10Ctx(ctx, c, workload.DerivO3CPU, p.Passes)
			return s
		}},
	{Name: "ablation", Title: "E_wp and WAR ablations", uses: usesBits | usesPasses,
		run: func(p Params) string { return AblationEwp(p.Bits) + "\n" + AblationWAR(p.Passes) }},
	{Name: "traffic", Title: "interconnect message breakdown", run: func(Params) string { return Traffic() }},
	{Name: "futurework", Title: "fast CoW sharing study", uses: usesBits,
		run: func(p Params) string { return FutureWork(p.Bits / 4) }},
	{Name: "moesi", Title: "MOESI/MESIF family study", uses: usesBits | usesPasses,
		run: func(p Params) string { return MOESIStudy(p.Bits/4, p.Passes) }},
	{Name: "snoop", Title: "snooping-bus comparison", uses: usesBits,
		run: func(p Params) string { return SnoopStudy(p.Bits / 4) }},
	{Name: "multiprogram", Title: "multiprogrammed mixes", uses: usesScale,
		run: func(p Params) string { _, s := Multiprogram(p.Scale); return s }},
	{Name: "lru", Title: "replacement-policy ablation", uses: usesScale,
		run: func(p Params) string { return AblationLRU(p.Scale) }},
	{Name: "prefetch", Title: "prefetcher interaction study", uses: usesBits,
		run: func(p Params) string { return Prefetch(p.Bits / 4) }},
	{Name: "numa", Title: "NUMA latency study", run: func(Params) string { return NUMA() }},
	{Name: "kernels", Title: "compute-kernel study", uses: usesWSKB,
		run: func(p Params) string { return KernelStudy(p.WSKB) }},
	{Name: "sweep", Title: "timing-parameter sweep", run: func(Params) string { return TimingSweep() }},
	{Name: "msi", Title: "MSI downgrade study", uses: usesBits | usesPasses,
		run: func(p Params) string { return MSIStudy(p.Bits/4, p.Passes) }},
	{Name: "overhead", Title: "hardware cost table", uses: usesCores,
		run: func(p Params) string { return Overhead(p.Cores) }},
	{Name: "arbitration", Title: "phase-priority arbitration study", uses: usesBits,
		run: func(p Params) string { return Arbitration(p.Bits / 4) }},
	{Name: "scale", Title: "machine-scaling study: mesh + two-level directory",
		run: func(Params) string { return Scale() }},
	{Name: "scale-attack", Title: "covert channel vs machine scale", uses: usesBits,
		run: func(p Params) string { return ScaleAttack(p.Bits / 8) }},
}

// Registry returns every experiment in report order. The slice is
// shared; callers must not mutate it.
func Registry() []Experiment { return registry }

// Names returns the experiment names in report order.
func Names() []string {
	names := make([]string, len(registry))
	for i, e := range registry {
		names[i] = e.Name
	}
	return names
}

// Lookup finds an experiment by name.
func Lookup(name string) (Experiment, bool) {
	for _, e := range registry {
		if e.Name == name {
			return e, true
		}
	}
	return Experiment{}, false
}

// PolicyNames returns the coherence policies every registry experiment
// compares, in the paper's presentation order. It is part of the result
// cache's key derivation: a future change to the compared-policy set
// must fork the cache keys.
func PolicyNames() []string {
	names := make([]string, len(protocols))
	for i, p := range protocols {
		names[i] = p.Name()
	}
	return names
}

// ParseNames splits a comma-separated -exp value into registry names,
// in registry (report) order and deduplicated. "all" selects everything;
// an unknown name is reported with the full valid list.
func ParseNames(spec string) ([]string, error) {
	want := map[string]bool{}
	for _, f := range strings.Split(spec, ",") {
		f = strings.TrimSpace(f)
		if f == "" {
			continue
		}
		if f == "all" {
			return Names(), nil
		}
		if _, ok := Lookup(f); !ok {
			return nil, &UnknownExperimentError{Name: f}
		}
		want[f] = true
	}
	if len(want) == 0 {
		return nil, &UnknownExperimentError{Name: spec}
	}
	var out []string
	for _, e := range registry {
		if want[e.Name] {
			out = append(out, e.Name)
		}
	}
	return out, nil
}

// UnknownExperimentError names a rejected -exp / server spec value and
// renders the valid vocabulary, so every frontend lists the registry the
// same way.
type UnknownExperimentError struct{ Name string }

func (e *UnknownExperimentError) Error() string {
	return "unknown experiment " + strconvQuote(e.Name) + " (valid: all, " + strings.Join(Names(), ", ") + ")"
}

func strconvQuote(s string) string { return "\"" + s + "\"" }
