package experiments

import (
	"fmt"
	"strings"

	"repro/internal/attack"
	"repro/internal/cache"
	"repro/internal/campaign"
	"repro/internal/coherence"
	"repro/internal/core"
	"repro/internal/dram"
	"repro/internal/interconnect"
	"repro/internal/sim"
	"repro/internal/stats"
)

// scaleGeom is one machine point of the scaling study: a core count with
// an interconnect and directory organization legal at that size.
type scaleGeom struct {
	cores    int
	topology string // "crossbar" or "mesh"
	clusters int    // 0 = flat directory
}

// scaleGeoms is the study's sweep: the paper's crossbar machine, the
// same core counts on a mesh (so the two interconnects are directly
// comparable at 16 cores), then mesh-only sizes where the flat directory
// can no longer address the machine and the two-level organization takes
// over (cluster size 8, so invalidation fan-out per hub stays bounded).
func scaleGeoms() []scaleGeom {
	return []scaleGeom{
		{cores: 4, topology: "crossbar"},
		{cores: 16, topology: "crossbar"},
		{cores: 16, topology: "mesh"},
		{cores: 64, topology: "mesh", clusters: 8},
		{cores: 256, topology: "mesh", clusters: 32},
	}
}

// scaleSystem builds the hierarchy for one study point: one L1
// controller and one LLC bank per core, Table V timing, and per-core
// caches shrunk (8 KB L1, 64 KB LLC bank) so a 256-core machine stays
// cheap to allocate — the workload's working set fits either way, so
// the shrink changes no measured latency.
func scaleSystem(p coherence.Policy, g scaleGeom) *coherence.System {
	cfg := coherence.SystemConfig{
		NumL1:     g.cores,
		L1Params:  cache.Params{Name: "L1", SizeBytes: 8 << 10, Ways: 4, BlockSize: 64},
		LLCParams: cache.Params{Name: "LLC", SizeBytes: 64 << 10, Ways: 8, BlockSize: 64},
		Banks:     g.cores,
		Timing:    coherence.DefaultTiming(),
		Policy:    p,
		DRAM:      dram.DDR3_1600_8x8(),
		Clusters:  g.clusters,
		Shards:    campaign.Shards(),
	}
	if g.topology == "mesh" {
		cfg.Topology = "mesh"
		cfg.MeshW, cfg.MeshH = core.MeshDims(g.cores)
		cfg.MeshPerHop = 1
	}
	return coherence.MustNewSystem(cfg)
}

// scaleRow holds one (geometry, protocol) measurement.
type scaleRow struct {
	wpRead, grpRead, store float64 // mean latencies, cycles
	accesses               uint64
	messages               uint64
	avgHops                float64
	mesh                   bool
}

// runScaleWorkload drives a fixed sharing mix and returns its metrics.
// Per round every core (in deterministic order) touches a private line,
// reads one of four globally hot write-protected lines, and reads its
// group's shared line; one member per group then stores to the group
// line, invalidating the other members. Groups interleave across the
// machine (core c belongs to group c mod ngroups), so at 64+ cores every
// group spans all clusters and each store fans invalidations through
// every hub.
func runScaleWorkload(s *coherence.System, cores int) scaleRow {
	const rounds = 8
	ngroups := cores / 8
	if ngroups < 1 {
		ngroups = 1
	}
	private := func(c int) cache.Addr { return cache.Addr(0x100000 + c*0x1000) }
	hot := func(i int) cache.Addr { return cache.Addr(0x40000 + i*64) }
	group := func(j int) cache.Addr { return cache.Addr(0x200000 + j*64) }

	var row scaleRow
	var wpSum, grpSum, storeSum float64
	var wpN, grpN, storeN int
	acc := func(c int, addr cache.Addr, write, wp bool, v uint64) sim.Cycle {
		row.accesses++
		return s.AccessSync(c, addr, write, wp, v).Latency
	}
	for r := 0; r < rounds; r++ {
		for c := 0; c < cores; c++ {
			acc(c, private(c), r%2 == 1, false, uint64(c))
			wpSum += float64(acc(c, hot(r%4), false, true, 0))
			wpN++
			grpSum += float64(acc(c, group(c%ngroups), false, false, 0))
			grpN++
		}
		// One store per group, rotating through the members.
		for j := 0; j < ngroups; j++ {
			writer := j + (r%(cores/ngroups))*ngroups
			storeSum += float64(acc(writer, group(j), true, false, uint64(r)))
			storeN++
		}
	}
	s.Quiesce()
	if err := s.CheckInvariants(); err != nil {
		panic(fmt.Sprintf("scale: %v", err))
	}
	row.wpRead = wpSum / float64(wpN)
	row.grpRead = grpSum / float64(grpN)
	row.store = storeSum / float64(storeN)
	row.messages = s.TotalMessages()
	if m, ok := s.Network().(*interconnect.Mesh); ok {
		row.mesh = true
		row.avgHops = m.AvgHops()
	}
	return row
}

// Scale measures how latency and traffic grow from the paper's 4-core
// crossbar to a 256-core mesh with a two-level directory, under the same
// sharing mix per core. The headline checks: the mesh reproduces the
// crossbar's behaviour at small scale (distance costs aside), the
// two-level directory keeps invalidation latency growing with the mesh
// diameter rather than the core count, and SwiftDir's traffic advantage
// survives scaling.
func Scale() string {
	type cell struct {
		geom scaleGeom
		p    coherence.Policy
		row  scaleRow
	}
	var jobs []campaign.Job[cell]
	for _, g := range scaleGeoms() {
		for _, p := range protocols {
			g, p := g, p
			jobs = append(jobs, campaign.Job[cell]{
				Name: fmt.Sprintf("scale/%d-%s/%s", g.cores, g.topology, p.Name()),
				Run: func() (cell, error) {
					s := scaleSystem(p, g)
					return cell{geom: g, p: p, row: runScaleWorkload(s, g.cores)}, nil
				},
			})
		}
	}

	var b strings.Builder
	b.WriteString("Scaling study: per-core sharing mix on growing machines\n")
	b.WriteString("(per round and core: 1 private access, 1 hot WP read, 1 group-shared\n")
	b.WriteString(" read; 1 store per 8-core group, invalidating members in every cluster;\n")
	b.WriteString(" per-core caches shrunk to keep 256-core machines cheap)\n\n")
	tb := stats.NewTable(
		"Mean latency (cycles) and interconnect traffic by machine size",
		"cores", "network", "directory", "protocol",
		"WP read", "shared read", "shared store", "messages", "msg/access", "avg hops")
	for _, c := range campaign.MustCollect(0, jobs) {
		g, r := c.geom, c.row
		network := g.topology
		if g.topology == "mesh" {
			w, h := core.MeshDims(g.cores)
			network = fmt.Sprintf("mesh %dx%d", w, h)
		}
		dir := "flat"
		if g.clusters > 1 {
			dir = fmt.Sprintf("2-level/%d", g.clusters)
		}
		hops := "-"
		if r.mesh {
			hops = fmt.Sprintf("%.2f", r.avgHops)
		}
		tb.AddRowF(g.cores, network, dir, c.p.Name(),
			fmt.Sprintf("%.1f", r.wpRead), fmt.Sprintf("%.1f", r.grpRead),
			fmt.Sprintf("%.1f", r.store), r.messages,
			fmt.Sprintf("%.2f", float64(r.messages)/float64(r.accesses)), hops)
	}
	b.WriteString(tb.Render())
	b.WriteString("\nThe two-level directory adds hub hops to every miss (higher absolute\n")
	b.WriteString("latency), but store fan-out is aggregated per cluster, so invalidation\n")
	b.WriteString("cost tracks the mesh diameter, not the sharer count. SwiftDir's probes\n")
	b.WriteString("stay home-bank round trips at every size.\n")
	return b.String()
}

// scaleAttackConfig is the scaled Table V machine the covert channel
// runs on, with per-core L2 banks shrunk to 256 KB: the attack touches a
// few hundred lines, so LLC capacity affects no timing path, and 64-core
// machines allocate in milliseconds.
func scaleAttackConfig(cores int, p coherence.Policy) core.Config {
	cfg := core.DefaultScaledConfig(cores, p)
	cfg.L2Bank.SizeBytes = 256 << 10
	cfg.Shards = campaign.Shards()
	return cfg
}

// ScaleAttack re-runs the paper's covert channel on the scaled machines,
// against both a naive and a calibrating attacker. On a mesh the
// LLC-served (S-state) probe latency varies with the line's
// receiver-to-home distance, so the naive attacker's single global
// threshold drowns at 64 cores — the channel appears to close by noise
// alone. The calibrating attacker measures each line's baseline first
// (one extra scan of the mapped library) and decodes against per-line
// thresholds, restoring the MESI channel at every scale. SwiftDir's
// probes carry no E/S signal at any distance, so calibration does not
// help: scale is noise, not a defense.
func ScaleAttack(bits int) string {
	const seed = 0xA77AC4
	sizes := []int{4, 16, 64}
	type cell struct {
		cores int
		p     coherence.Policy
		r     attack.Result
		naive int // errors under the global threshold
	}
	var jobs []campaign.Job[cell]
	for _, cores := range sizes {
		for _, p := range protocols {
			cores, p := cores, p
			jobs = append(jobs, campaign.Job[cell]{
				Name: fmt.Sprintf("scale-attack/%d/%s", cores, p.Name()),
				Run: func() (cell, error) {
					cfg := scaleAttackConfig(cores, p)
					th, err := attack.CalibrateThresholds(cfg, bits)
					if err != nil {
						return cell{}, err
					}
					ch, err := attack.NewChannel(cfg, bits)
					if err != nil {
						return cell{}, err
					}
					ch.SetThresholds(th)
					r, err := ch.Run(bits, seed)
					if err != nil {
						return cell{}, err
					}
					naive := 0
					for _, lat := range r.Latencies1 {
						if lat <= ch.Threshold {
							naive++
						}
					}
					for _, lat := range r.Latencies0 {
						if lat > ch.Threshold {
							naive++
						}
					}
					return cell{cores: cores, p: p, r: r, naive: naive}, nil
				},
			})
		}
	}

	var b strings.Builder
	fmt.Fprintf(&b, "Covert channel vs machine scale (%d bits, mesh + two-level directory)\n\n", bits)
	tb := stats.NewTable(
		"Bit error rate by attacker sophistication",
		"cores", "network", "protocol", "gap (cyc)",
		"BER naive", "BER calibrated", "Kbps@3GHz", "verdict")
	for _, c := range campaign.MustCollect(0, jobs) {
		w, h := core.MeshDims(c.cores)
		verdict := "CLOSED"
		if c.r.Leaked {
			verdict = "OPEN"
		}
		tb.AddRowF(c.cores, fmt.Sprintf("mesh %dx%d", w, h), c.r.Protocol,
			fmt.Sprintf("%.1f", c.r.Gap),
			fmt.Sprintf("%.3f", float64(c.naive)/float64(c.r.Bits)),
			fmt.Sprintf("%.3f", c.r.BER),
			fmt.Sprintf("%.1f", c.r.KbpsAt(3.0)), verdict)
	}
	b.WriteString(tb.Render())
	b.WriteString("\nA rising naive BER at scale is distance noise, not security: per-line\n")
	b.WriteString("calibration restores the MESI channel wholesale. SwiftDir stays at\n")
	b.WriteString("guessing for both attackers at every machine size.\n")
	return b.String()
}
