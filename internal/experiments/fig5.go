package experiments

import (
	"repro/internal/coherence"
	"repro/internal/core"
	"repro/internal/mmu"
	"repro/internal/stats"
)

// Fig5 reproduces §IV-B / Figure 5: the (where, when) property of the
// write-protected information under the three commercial L1 cache
// architectures, with measured latencies showing that the R/W bit always
// reaches the PIPT LLC in time — SwiftDir works identically under all of
// them.
func Fig5() string {
	tb := stats.NewTable(
		"Figure 5: Transmission of write-protected information from MMU to caches (measured)",
		"L1 arch", "WP info available at", "L1 hit (cyc)", "L1 miss->LLC (cyc)",
		"remote WP load", "GETS_WP secure")

	for _, arch := range []core.CacheArch{core.PIPT, core.VIPT, core.VIVT} {
		cfg := core.DefaultConfig(2, coherence.SwiftDir)
		cfg.L1Arch = arch
		m := core.MustNewMachine(cfg)
		lib := mmu.NewFile("fig5.so", uint64(arch)+1)
		p1, p2 := m.NewProcess(), m.NewProcess()
		c1, c2 := p1.AttachContext(0), p2.AttachContext(1)
		b1 := p1.MmapLibrary(lib, 1<<16)
		b2 := p2.MmapLibrary(lib, 1<<16)

		// Warm: core 0's TLB hot, first line resident in its L1.
		c1.MustAccessSync(b1+0x1000, false, 0)
		hit := c1.MustAccessSync(b1+0x1000, false, 0)

		// Core 1 pulls a different line of the page into the LLC (and
		// warms its own TLB); core 0 then misses its L1 but hits the
		// LLC on that line.
		c2.MustAccessSync(b2+0x10c0, false, 0)
		miss := c1.MustAccessSync(b1+0x10c0, false, 0)

		// The security-relevant path: a remote WP load from core 1 of
		// the line core 0 loaded first.
		remote := c2.MustAccessSync(b2+0x1000, false, 0)

		secure := "yes"
		if remote.Served != coherence.ServedLLC || !remote.WP {
			secure = "NO"
		}
		tb.AddRowF(arch.String(), arch.WPAvailableAt(),
			hit.Latency, miss.Latency, remote.Latency, secure)
	}
	return tb.Render() +
		"(translation always completes before the PIPT LLC is reached, so the\n" +
		" coherence controller receives the R/W bit under every architecture)\n"
}
