package experiments

import (
	"fmt"
	"strings"

	"repro/internal/cache"
	"repro/internal/campaign"
	"repro/internal/sim"
	"repro/internal/snoop"
	"repro/internal/stats"
)

// SnoopStudy demonstrates the E/S channel on the other coherence
// architecture the paper describes (§II-A3): bus-based snooping. There the
// timing difference inverts — E/M data are supplied cache-to-cache (fast)
// while S data come from memory (slow) — but it is equally exploitable,
// and SwiftDir's I→S rule closes it the same way: write-protected loads
// are always granted Shared, so the probe latency no longer depends on the
// sender's access pattern. Each protocol's bus is independent, so both
// loops fan out as campaigns.
func SnoopStudy(bits int) string {
	var b strings.Builder
	b.WriteString("Snooping-bus study (§II-A3): the channel on the other architecture\n\n")

	snoopProtos := []snoop.Protocol{snoop.MESI, snoop.SwiftDir}

	tb := stats.NewTable("Probe latencies (cycles)",
		"protocol", "after 1 toucher", "after 2 touchers", "gap", "channel")
	var probeJobs []campaign.Job[[]any]
	for _, p := range snoopProtos {
		probeJobs = append(probeJobs, campaign.Job[[]any]{
			Name: "snoop/probe/" + p.String(),
			Run: func() ([]any, error) {
				one := snoop.MustNewSystem(snoop.DefaultConfig(4, p))
				one.Access(1, 0x4000, false, true, 0)
				r1 := one.Access(0, 0x4000, false, true, 0)

				two := snoop.MustNewSystem(snoop.DefaultConfig(4, p))
				two.Access(1, 0x4000, false, true, 0)
				two.Access(2, 0x4000, false, true, 0)
				r2 := two.Access(0, 0x4000, false, true, 0)

				gap := int64(r2.Latency) - int64(r1.Latency)
				verdict := "CLOSED"
				if gap != 0 {
					verdict = "OPEN (inverted: E faster than S)"
				}
				return []any{p.String(), r1.Latency, r2.Latency, gap, verdict}, nil
			},
		})
	}
	for _, row := range campaign.MustCollect(0, probeJobs) {
		tb.AddRowF(row...)
	}
	b.WriteString(tb.Render())

	// Covert-channel BER on the snooping bus.
	b.WriteString("\nCovert channel over the snooping bus:\n")
	tm := snoop.DefaultTiming()
	var berJobs []campaign.Job[string]
	for _, p := range snoopProtos {
		berJobs = append(berJobs, campaign.Job[string]{
			Name: "snoop/covert/" + p.String(),
			Run: func() (string, error) {
				s := snoop.MustNewSystem(snoop.DefaultConfig(4, p))
				rng := sim.NewRNG(0x5B)
				threshold := (tm.CacheToCache + tm.Memory) / 2
				errors := 0
				for i := 0; i < bits; i++ {
					line := cache.Addr(0x100000 + i*64)
					bit := rng.Bool(0.5)
					s.Access(1, line, false, true, 0)
					if !bit {
						s.Access(2, line, false, true, 0)
					}
					r := s.Access(0, line, false, true, 0)
					got := r.Latency < tm.L1Tag+tm.Arbitration+tm.Broadcast+tm.SnoopCheck+threshold
					if got != bit {
						errors++
					}
				}
				ber := float64(errors) / float64(bits)
				status := "CHANNEL OPEN"
				if ber > 0.25 {
					status = "CHANNEL CLOSED"
				}
				return fmt.Sprintf("  %-14s BER=%.3f => %s\n", p.String(), ber, status), nil
			},
		})
	}
	for _, line := range campaign.MustCollect(0, berJobs) {
		b.WriteString(line)
	}
	return b.String()
}
