package experiments

import (
	"testing"

	"repro/internal/campaign"
	"repro/internal/workload"
)

// TestParallelReportsMatchSequential is the determinism-equivalence
// suite for every experiment rewired onto the campaign pool: the
// rendered report with one worker must equal the report with four
// workers byte for byte. All simulation state is job-local and all RNG
// seeds are fixed, so any divergence means cross-job sharing snuck in.
func TestParallelReportsMatchSequential(t *testing.T) {
	cases := []struct {
		name  string
		heavy bool // skipped under -short
		run   func() string
	}{
		{"fig7", true, func() string { _, s := Fig7(0.02); return s }},
		{"fig8", true, func() string { _, s := Fig8(0.02); return s }},
		{"fig9", false, func() string { _, s := Fig9([]int{1000, 2000}); return s }},
		{"fig10a", false, func() string { _, s := Fig10(workload.TimingSimpleCPU, 1); return s }},
		{"fig10b", false, func() string { _, s := Fig10(workload.DerivO3CPU, 1); return s }},
		{"security", false, func() string { _, _, s := Security(64, 64); return s }},
		{"multiprogram", true, func() string { _, s := Multiprogram(0.02); return s }},
		{"sweep", false, TimingSweep},
		{"lru", true, func() string { return AblationLRU(0.05) }},
		{"ablation-ewp", false, func() string { return AblationEwp(32) }},
		{"ablation-war", false, func() string { return AblationWAR(1) }},
		{"traffic", false, Traffic},
		{"msi", false, func() string { return MSIStudy(32, 1) }},
		{"moesi", false, func() string { return MOESIStudy(32, 1) }},
		{"snoop", false, func() string { return SnoopStudy(32) }},
		{"kernels", false, func() string { return KernelStudy(64) }},
		{"scale", false, Scale},
		{"scale-attack", false, func() string { return ScaleAttack(64) }},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if tc.heavy && testing.Short() {
				t.Skip("suite runs are slow")
			}
			defer campaign.SetWorkers(0)
			campaign.SetWorkers(1)
			seq := tc.run()
			campaign.SetWorkers(4)
			par := tc.run()
			if seq != par {
				t.Errorf("%s: report differs between 1 and 4 workers\n--- sequential ---\n%s\n--- parallel ---\n%s",
					tc.name, seq, par)
			}
			if len(seq) == 0 {
				t.Errorf("%s: empty report", tc.name)
			}
		})
	}
}
