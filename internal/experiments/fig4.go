package experiments

import (
	"strings"

	"repro/internal/cache"
	"repro/internal/coherence"
	"repro/internal/dram"
)

func fig4System(p coherence.Policy) *coherence.System {
	return coherence.MustNewSystem(coherence.SystemConfig{
		NumL1:     3,
		L1Params:  cache.Params{Name: "L1", SizeBytes: 32 << 10, Ways: 4, BlockSize: 64},
		LLCParams: cache.Params{Name: "LLC", SizeBytes: 2 << 20, Ways: 16, BlockSize: 64},
		Banks:     1,
		Timing:    coherence.DefaultTiming(),
		Policy:    p,
		DRAM:      dram.DDR3_1600_8x8(),
	})
}

// Fig4 renders the paper's Figure 4 protocol diagrams as live message
// transcripts: each panel is executed on the real protocol engine and the
// traced coherence messages are printed.
func Fig4() string {
	const block = cache.Addr(0x4000)
	var b strings.Builder
	b.WriteString("Figure 4: SwiftDir coherence, as executed message transcripts\n\n")

	panel := func(title string, p coherence.Policy, setup, measure func(s *coherence.System)) {
		s := fig4System(p)
		if setup != nil {
			setup(s)
			s.Quiesce()
		}
		tr := s.AttachTracer()
		measure(s)
		s.Quiesce()
		b.WriteString(tr.Render(title))
		b.WriteByte('\n')
	}

	panel("(a) Initial load of write-protected data (SwiftDir: I->S, no exclusivity)",
		coherence.SwiftDir,
		nil,
		func(s *coherence.System) { s.AccessSync(0, block, false, true, 0) })

	panel("(b) Remote load after initial load of write-protected data (served from LLC)",
		coherence.SwiftDir,
		func(s *coherence.System) { s.AccessSync(1, block, false, true, 0) },
		func(s *coherence.System) { s.AccessSync(0, block, false, true, 0) })

	panel("(c) Initial load of non-write-protected data (I->E, unchanged from MESI)",
		coherence.SwiftDir,
		nil,
		func(s *coherence.System) { s.AccessSync(0, block, false, false, 0) })

	panel("(d) Store after initial load of non-write-protected data (silent E->M: no messages)",
		coherence.SwiftDir,
		func(s *coherence.System) { s.AccessSync(0, block, false, false, 0) },
		func(s *coherence.System) { s.AccessSync(0, block, true, false, 1) })

	panel("(e) Remote load after initial load of non-write-protected data (three-hop forward)",
		coherence.SwiftDir,
		func(s *coherence.System) { s.AccessSync(1, block, false, false, 0) },
		func(s *coherence.System) { s.AccessSync(0, block, false, false, 0) })

	panel("(Figure 2) S-MESI's explicit E->M transition (EM^A round trip)",
		coherence.SMESI,
		func(s *coherence.System) { s.AccessSync(0, block, false, false, 0) },
		func(s *coherence.System) { s.AccessSync(0, block, true, false, 1) })

	return b.String()
}
