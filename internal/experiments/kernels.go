package experiments

import (
	"repro/internal/campaign"
	"repro/internal/stats"
	"repro/internal/workload"
)

// KernelStudy runs the classic memory kernels (STREAM triad, GUPS,
// pointer chase) across the three paper protocols. Their known signatures
// validate the substrates — stream is bandwidth-bound (high IPC from
// memory-level parallelism), GUPS is TLB/DRAM-row bound, pointer chasing
// is pure serialized latency — and all three are protocol-insensitive
// single-core workloads, so the three columns also serve as a regression
// check that the defenses add no single-core overhead. The kernel×protocol
// grid runs as one campaign.
func KernelStudy(wsKB int) string {
	tb := stats.NewTable(
		"Memory kernels: IPC by protocol (single core, DerivO3CPU)",
		"kernel", "MESI", "SwiftDir", "S-MESI")
	kernels := workload.Kernels()
	var jobs []campaign.Job[float64]
	for _, k := range kernels {
		for _, p := range protocols {
			jobs = append(jobs, campaign.Job[float64]{
				Name: "kernels/" + k.Name + "/" + p.Name(),
				Run: func() (float64, error) {
					r, err := workload.RunKernel(k, p, workload.DerivO3CPU, wsKB<<10)
					if err != nil {
						return 0, err
					}
					return r.IPC, nil
				},
			})
		}
	}
	ipc := campaign.MustCollect(0, jobs)
	for i, k := range kernels {
		tb.AddRowF(k.Name, ipc[i*len(protocols)], ipc[i*len(protocols)+1], ipc[i*len(protocols)+2])
	}
	return tb.Render()
}
