package experiments

import (
	"repro/internal/coherence"
	"repro/internal/stats"
	"repro/internal/workload"
)

// KernelStudy runs the classic memory kernels (STREAM triad, GUPS,
// pointer chase) across the three paper protocols. Their known signatures
// validate the substrates — stream is bandwidth-bound (high IPC from
// memory-level parallelism), GUPS is TLB/DRAM-row bound, pointer chasing
// is pure serialized latency — and all three are protocol-insensitive
// single-core workloads, so the three columns also serve as a regression
// check that the defenses add no single-core overhead.
func KernelStudy(wsKB int) string {
	tb := stats.NewTable(
		"Memory kernels: IPC by protocol (single core, DerivO3CPU)",
		"kernel", "MESI", "SwiftDir", "S-MESI")
	for _, k := range workload.Kernels() {
		row := []float64{}
		for _, p := range []coherence.Policy{coherence.MESI, coherence.SwiftDir, coherence.SMESI} {
			r, err := workload.RunKernel(k, p, workload.DerivO3CPU, wsKB<<10)
			if err != nil {
				panic(err)
			}
			row = append(row, r.IPC)
		}
		tb.AddRowF(k.Name, row[0], row[1], row[2])
	}
	return tb.Render()
}
