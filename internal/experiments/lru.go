package experiments

import (
	"fmt"

	"repro/internal/cache"
	"repro/internal/campaign"
	"repro/internal/coherence"
	"repro/internal/core"
	"repro/internal/stats"
	"repro/internal/workload"
)

// AblationLRU tests the paper's §V-B explanation for S-MESI's occasional
// speedups: the explicit M-state synchronization touches the LLC line,
// making it look recently used to the LRU replacement policy and improving
// retention for memory-bound codes. If that explanation is causal, the
// effect must disappear when the LLC's replacement policy ignores recency.
// We re-run the memory-bound SPEC benchmarks with an LRU LLC and a Random
// LLC and compare S-MESI's normalized IPC under each.
func AblationLRU(scale float64) string {
	memBound := []string{"mcf", "bwaves", "cactuBSSN", "lbm", "wrf", "cam4"}

	normIPC := func(name string, repl cache.ReplPolicy, proto coherence.Policy) float64 {
		p, ok := workload.ProfileByName(name)
		if !ok {
			panic("unknown benchmark " + name)
		}
		cfg := core.DefaultConfig(1, proto)
		cfg.L2Bank.Replacement = repl
		// The mem-bound working sets (384-512 KB) must overflow the LLC
		// for replacement policy to matter at this scale; a 256 KB bank
		// keeps the benchmarks LLC-pressured as their full-size inputs
		// pressure the 2 MB bank.
		cfg.L2Bank.SizeBytes = 256 << 10
		r, _, err := workload.RunDetailed(p.Scale(scale), cfg, workload.DerivO3CPU)
		if err != nil {
			panic(err)
		}
		return r.IPC
	}

	// Four independent simulations per benchmark: {LRU, Random} ×
	// {S-MESI, MESI}. Flatten the grid into one campaign.
	cells := []struct {
		repl  cache.ReplPolicy
		proto coherence.Policy
	}{
		{cache.LRU, coherence.SMESI}, {cache.LRU, coherence.MESI},
		{cache.Random, coherence.SMESI}, {cache.Random, coherence.MESI},
	}
	var jobs []campaign.Job[float64]
	for _, name := range memBound {
		for _, c := range cells {
			jobs = append(jobs, campaign.Job[float64]{
				Name: fmt.Sprintf("lru/%s/%v/%s", name, c.repl, c.proto.Name()),
				Run:  func() (float64, error) { return normIPC(name, c.repl, c.proto), nil },
			})
		}
	}
	ipc := campaign.MustCollect(0, jobs)

	tb := stats.NewTable(
		"Ablation (§V-B): S-MESI's LRU-retention side effect, normalized IPC over MESI (x100)",
		"benchmark", "S-MESI w/ LRU LLC", "S-MESI w/ Random LLC")
	var lru, rnd []float64
	for i, name := range memBound {
		l := stats.Normalize(ipc[i*4+0], ipc[i*4+1])
		r := stats.Normalize(ipc[i*4+2], ipc[i*4+3])
		lru = append(lru, l)
		rnd = append(rnd, r)
		tb.AddRowF(name, l, r)
	}
	tb.AddRowF("average", stats.Mean(lru), stats.Mean(rnd))
	return tb.Render() +
		"(if the average S-MESI advantage shrinks under Random replacement, the\n" +
		" paper's LRU-touch explanation is confirmed causally)\n"
}
