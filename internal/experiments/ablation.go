package experiments

import (
	"strings"

	"repro/internal/cache"
	"repro/internal/campaign"
	"repro/internal/coherence"
	"repro/internal/core"
	"repro/internal/stats"
	"repro/internal/workload"
)

// AblationEwp compares SwiftDir against the E_wp alternative the paper
// considers and rejects in §III-B3: both close the E/S channel, both keep
// silent upgrade for unshared data, but E_wp retains exclusivity for
// write-protected data and therefore needs an extra stable state, a
// Downgrade flow, and a restriction on silent upgrade for E_wp lines —
// protection by complication instead of simplification.
func AblationEwp(bits int) string {
	var b strings.Builder
	b.WriteString("Ablation (§III-B3): SwiftDir vs the rejected E_wp design\n\n")

	// Security: both must close the covert channel.
	b.WriteString("Covert channel:\n")
	for _, line := range campaign.MustCollect(0, covertJobs(
		[]coherence.Policy{coherence.SwiftDir, coherence.SwiftDirEwp}, "ablation", bits, 0xEE)) {
		b.WriteString(line)
	}

	// Traffic: messages per protocol on a WP-read-heavy workload.
	b.WriteString("\nCoherence traffic on a shared-read workload (messages delivered):\n")
	tb := stats.NewTable("", "protocol", "GETS_WP", "Data", "Data_Excl", "Downgrade", "Fwd_GETS", "total")
	var jobs []campaign.Job[[]any]
	for _, p := range []coherence.Policy{coherence.MESI, coherence.SwiftDir, coherence.SwiftDirEwp, coherence.SMESI} {
		jobs = append(jobs, campaign.Job[[]any]{
			Name: "ablation/traffic/" + p.Name(),
			Run: func() ([]any, error) {
				s := trafficSystem(p)
				return []any{p.Name(),
					s.MsgCount(coherence.MsgGETSWP),
					s.MsgCount(coherence.MsgData),
					s.MsgCount(coherence.MsgDataExclusive),
					s.MsgCount(coherence.MsgDowngrade),
					s.MsgCount(coherence.MsgFwdGETS),
					s.TotalMessages()}, nil
			},
		})
	}
	for _, row := range campaign.MustCollect(0, jobs) {
		tb.AddRowF(row...)
	}
	b.WriteString(tb.Render())
	b.WriteString("\nE_wp matches SwiftDir's security but adds Downgrade traffic and a\n")
	b.WriteString("fourth load-grant flavour; SwiftDir's I->S transition needs neither.\n")
	return b.String()
}

// trafficSystem runs a fixed two-core shared-read-then-WAR workload and
// returns the quiesced system for traffic inspection.
func trafficSystem(p coherence.Policy) *coherence.System {
	s := coherence.MustNewSystem(coherence.SystemConfig{
		NumL1:     2,
		L1Params:  core.DefaultConfig(2, p).L1,
		LLCParams: core.DefaultConfig(2, p).L2Bank,
		Banks:     2,
		Timing:    coherence.DefaultTiming(),
		Policy:    p,
		DRAM:      core.DefaultConfig(2, p).DRAM,
	})
	// 64 shared write-protected lines read by both cores...
	for i := 0; i < 64; i++ {
		addr := cache.Addr(0x100000 + i*64)
		s.AccessSync(0, addr, false, true, 0)
		s.AccessSync(1, addr, false, true, 0)
	}
	// ...and a private WAR loop on core 0.
	for i := 0; i < 64; i++ {
		addr := cache.Addr(0x200000 + i*64)
		s.AccessSync(0, addr, false, false, 0)
		s.AccessSync(0, addr, true, false, uint64(i))
	}
	s.Quiesce()
	return s
}

// Traffic renders the coherence-message breakdown for a mixed workload
// under all protocols (including E_wp), quantifying the paper's
// qualitative traffic arguments: S-MESI adds Upgrade round trips; MESI
// adds forwards and owner writebacks; SwiftDir adds neither.
func Traffic() string {
	tb := stats.NewTable(
		"Coherence traffic: messages delivered on a mixed shared-read + WAR workload",
		"protocol", "GETS", "GETS_WP", "Upgrade", "Upgrade_ACK", "Fwd_GETS", "WB_Data", "Downgrade", "total")
	var jobs []campaign.Job[[]any]
	for _, p := range coherence.AllPolicies {
		jobs = append(jobs, campaign.Job[[]any]{
			Name: "traffic/" + p.Name(),
			Run: func() ([]any, error) {
				s := trafficSystem(p)
				return []any{p.Name(),
					s.MsgCount(coherence.MsgGETS),
					s.MsgCount(coherence.MsgGETSWP),
					s.MsgCount(coherence.MsgUpgrade),
					s.MsgCount(coherence.MsgUpgradeAck),
					s.MsgCount(coherence.MsgFwdGETS),
					s.MsgCount(coherence.MsgWBData),
					s.MsgCount(coherence.MsgDowngrade),
					s.TotalMessages()}, nil
			},
		})
	}
	for _, row := range campaign.MustCollect(0, jobs) {
		tb.AddRowF(row...)
	}
	return tb.Render()
}

// AblationWAR extends Figure 10 with the E_wp protocol, verifying that the
// rejected design also avoids the WAR slowdown (its cost is complexity and
// traffic, not WAR latency).
func AblationWAR(passes int) string {
	tb := stats.NewTable(
		"Ablation: WAR execution time normalized to MESI (DerivO3CPU)",
		"application", "MESI", "SwiftDir", "SwiftDir-Ewp", "S-MESI")
	apps := workload.WARApps()
	protos := []coherence.Policy{coherence.MESI, coherence.SwiftDir, coherence.SwiftDirEwp, coherence.SMESI}
	metrics := warMetrics("ablation", apps, protos, workload.DerivO3CPU, passes)
	for i, app := range apps {
		tb.AddRowF(normalizedWARRow(app.Name, metrics[i*len(protos):(i+1)*len(protos)])...)
	}
	return tb.Render()
}
