package core

import (
	"fmt"

	"repro/internal/cache"
	"repro/internal/coherence"
	"repro/internal/fault"
	"repro/internal/mmu"
	"repro/internal/sim"
)

// Machine is a complete simulated multicore: coherent hierarchy, physical
// memory, KSM, and per-core execution contexts.
type Machine struct {
	Cfg Config
	Sys *coherence.System
	PM  *mmu.PhysMem
	KSM *mmu.KSM

	processes []*Process
	contexts  []*Context

	// Parallel-epoch eligibility (see CanRunParallel): prefaulted is set by
	// Prefault, seqOnly by ForceSequential and by machine features whose
	// shared state parallel epochs cannot touch (KSM scans).
	prefaulted bool
	seqOnly    bool
}

// NewMachine builds a machine from cfg.
func NewMachine(cfg Config) (*Machine, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	sys, err := coherence.NewSystem(cfg.coherenceConfig())
	if err != nil {
		return nil, err
	}
	if cfg.Watchdog.Enabled() {
		sys.ArmWatchdog(cfg.Watchdog, func(ti sim.TripInfo) {
			panic(&fault.Violation{
				Kind:      fault.KindLiveness,
				Cycle:     uint64(ti.Now),
				Component: "watchdog",
				Msg: fmt.Sprintf("no progress for %d events / %d cycles (last progress at cycle %d, %d events pending)",
					ti.EventsSinceProgress, ti.CyclesSinceProgress, ti.LastProgress, ti.Pending),
				Dump: "-- watchdog pending snapshot --\n" + ti.PendingDump + sys.DumpState(),
			})
		})
	}
	if cfg.Cancel != nil {
		sys.ArmCancel(cfg.Cancel, func(ci sim.CancelInfo) {
			panic(&fault.Violation{
				Kind:      fault.KindCancelled,
				Cycle:     uint64(ci.Now),
				Component: "cancel",
				Msg: fmt.Sprintf("run cancelled: %s (%d events executed, %d pending)",
					ci.Reason, ci.Executed, ci.Pending),
				Dump: "-- cancellation pending snapshot --\n" + ci.PendingDump + sys.DumpState(),
			})
		})
	}
	pm := mmu.NewPhysMem(0)
	return &Machine{
		Cfg: cfg,
		Sys: sys,
		PM:  pm,
		KSM: mmu.NewKSM(pm),
	}, nil
}

// MustNewMachine is NewMachine for static configurations.
func MustNewMachine(cfg Config) *Machine {
	m, err := NewMachine(cfg)
	if err != nil {
		panic(err)
	}
	return m
}

// Engine returns the machine's driver event engine (shard 0 when the
// machine is sharded). Synchronous callers and cross-core structures
// (barriers, KSM ticks) schedule here; per-core work goes through
// Context.Engine.
func (m *Machine) Engine() *sim.Engine { return m.Sys.Eng }

// Now returns the current cycle.
func (m *Machine) Now() sim.Cycle { return m.Sys.Eng.Now() }

// RunWhile executes events in exact sequential order while cond holds.
func (m *Machine) RunWhile(cond func() bool) { m.Sys.RunWhile(cond) }

// Prefault faults in every mapped page of every process up front —
// demand faults, then write faults on writable pages so the Dirty bits
// are set — leaving the page tables read-only for the rest of the run
// (copy-on-write pages stay write-protected; a store to one still
// duplicates mid-run). Run before the measured region, it removes
// page-fault servicing from the timings and is what makes parallel
// epochs legal at machine level: concurrent per-core walks then only
// read MMU state. Byte-identity across shard counts needs the same
// Prefault decision on both sides, like any other workload knob.
func (m *Machine) Prefault() error {
	for _, p := range m.processes {
		if err := p.AS.Prefault(); err != nil {
			return err
		}
	}
	m.prefaulted = true
	return nil
}

// ForceSequential pins the machine to exact sequential event order even
// when sharded (stepping mode). Workloads whose cross-core structures
// mutate shared state mid-run outside the coherence fabric — trace
// barriers, KSM scans — must call it; CanRunParallel then reports false.
func (m *Machine) ForceSequential() { m.seqOnly = true }

// CanRunParallel reports whether cpu.Run may drive this machine with
// parallel epochs: a parallel-safe hierarchy (sharded, routed crossbar,
// no fast path, no fault injector or observation hooks), page tables
// frozen by Prefault, and no sequential-only machine feature armed.
// When false, sharded machines still run — in byte-identical
// sequential-stepping mode.
func (m *Machine) CanRunParallel() bool {
	return m.Sys.ParallelSafe() && m.prefaulted && !m.seqOnly
}

// Process is an OS process: one address space, any number of contexts
// (threads) pinned to cores.
type Process struct {
	m  *Machine
	AS *mmu.AddressSpace
}

// NewProcess creates a process with a fresh address space registered with
// KSM.
func (m *Machine) NewProcess() *Process {
	p := &Process{m: m, AS: mmu.NewAddressSpace(m.PM)}
	m.KSM.Register(p.AS)
	m.processes = append(m.processes, p)
	return p
}

// Fork clones the process fork(2)-style: the child gets a copy-on-write
// view of the parent's address space, registered with the machine and
// KSM. Contexts (threads) are not inherited; attach new ones. Any context
// TLBs caching writable translations of the parent must be flushed by the
// caller, as the kernel's fork does.
func (p *Process) Fork() *Process {
	child := &Process{m: p.m, AS: p.AS.Fork()}
	p.m.KSM.Register(child.AS)
	p.m.processes = append(p.m.processes, child)
	return child
}

// Mmap maps memory into the process (see mmu.AddressSpace.Mmap).
func (p *Process) Mmap(length int, prot mmu.Prot, flags mmu.MapFlags, file *mmu.File, offset uint64) (mmu.VAddr, error) {
	return p.AS.Mmap(length, prot, flags, file, offset)
}

// MmapAnon maps a private anonymous read-write region (a heap).
func (p *Process) MmapAnon(length int) mmu.VAddr {
	v, err := p.AS.Mmap(length, mmu.ProtRead|mmu.ProtWrite, mmu.MapPrivate|mmu.MapAnonymous, nil, 0)
	if err != nil {
		panic(err) // static arguments cannot fail
	}
	return v
}

// MmapLibrary maps a shared library's read-only segment (MAP_SHARED,
// PROT_READ|PROT_EXEC): the classic source of exploitable shared memory.
func (p *Process) MmapLibrary(lib *mmu.File, length int) mmu.VAddr {
	v, err := p.AS.Mmap(length, mmu.ProtRead|mmu.ProtExec, mmu.MapShared, lib, 0)
	if err != nil {
		panic(err)
	}
	return v
}

// MmapLibraryData maps a shared library's writable data segment
// (MAP_PRIVATE, PROT_READ|PROT_WRITE): write-protected with copy-on-write.
func (p *Process) MmapLibraryData(lib *mmu.File, length int, offset uint64) mmu.VAddr {
	v, err := p.AS.Mmap(length, mmu.ProtRead|mmu.ProtWrite, mmu.MapPrivate, lib, offset)
	if err != nil {
		panic(err)
	}
	return v
}

// AttachContext pins a new thread of p to a core and gives it private
// TLBs. Multiple contexts may share a core only if the caller serializes
// them; the paper's workloads pin one thread per core.
func (p *Process) AttachContext(coreID int) *Context {
	if coreID < 0 || coreID >= p.m.Cfg.Cores {
		panic(fmt.Sprintf("core: context on core %d of %d", coreID, p.m.Cfg.Cores))
	}
	ctx := &Context{
		m:    p.m,
		Proc: p,
		Core: coreID,
		DTLB: mmu.NewTLB(p.m.Cfg.DTLBEntries),
		ITLB: mmu.NewTLB(p.m.Cfg.ITLBEntries),
	}
	p.m.contexts = append(p.m.contexts, ctx)
	return ctx
}

// Context is a hardware thread: a core binding plus the MMU state the
// address-translation hitchhiking (§IV-B) flows through.
type Context struct {
	m    *Machine
	Proc *Process
	Core int
	DTLB *mmu.TLB
	ITLB *mmu.TLB

	// Slot pool for accesses whose translation latency is charged before
	// submission; the pre-delay event carries a slot index instead of a
	// captured closure.
	subs    []ctxSubmit
	subFree []int32

	// Slot pool for fast-path completions: the single ctxOpFastDone event
	// carries a slot index to the (callback, result) pair.
	fds     []ctxFastDone
	fdsFree []int32

	// Cached AccessSync probe state, so repeated synchronous probes reuse
	// one callback pair instead of allocating closures per access.
	syncOut  coherence.AccessResult
	syncDone bool
	syncCb   func(coherence.AccessResult)
	syncCond func() bool

	// storeSeq stamps each store submitted through this context with a
	// strictly increasing sequence number (coherence.Access.Seq), so the
	// L1 can keep same-block data application in program order even when
	// asymmetric translation delays reorder arrival.
	storeSeq uint64

	// Stats
	DataAccesses uint64
	TLBWalks     uint64
	PageFaults   uint64
	CoWs         uint64
}

// ctxSubmit is a parked (port, access) pair awaiting its pre-charge delay.
type ctxSubmit struct {
	port int
	acc  coherence.Access
}

// ctxFastDone is a completed fast-path access awaiting its completion
// cycle: the callback fires at the same (cycle, seq) the event path's tag
// lookup would have completed at.
type ctxFastDone struct {
	done func(coherence.AccessResult)
	res  coherence.AccessResult
}

const (
	// ctxOpSubmit: the translation delay elapsed, submit the parked access.
	ctxOpSubmit uint8 = 1
	// ctxOpFastDone: a fast-path hit's latency elapsed, deliver the result.
	ctxOpFastDone uint8 = 2
)

// Handle dispatches the context's payload events.
func (c *Context) Handle(p sim.Payload) {
	switch p.Op {
	case ctxOpSubmit:
		i := int32(p.A)
		s := c.subs[i]
		c.subs[i] = ctxSubmit{} // drop the Done reference held by the slot
		c.subFree = append(c.subFree, i)
		c.m.Sys.Submit(s.port, s.acc)
	case ctxOpFastDone:
		i := int32(p.A)
		f := c.fds[i]
		c.fds[i] = ctxFastDone{}
		c.fdsFree = append(c.fdsFree, i)
		if f.done != nil {
			f.done(f.res)
		}
	default:
		panic(fmt.Sprintf("core: context on core %d: unknown payload op %d", c.Core, p.Op))
	}
}

// putSubmit parks a pending submission in the slot pool.
func (c *Context) putSubmit(port int, acc coherence.Access) int32 {
	if n := len(c.subFree); n > 0 {
		i := c.subFree[n-1]
		c.subFree = c.subFree[:n-1]
		c.subs[i] = ctxSubmit{port: port, acc: acc}
		return i
	}
	c.subs = append(c.subs, ctxSubmit{port: port, acc: acc})
	return int32(len(c.subs) - 1)
}

// putFastDone parks a fast-path completion in the slot pool.
func (c *Context) putFastDone(done func(coherence.AccessResult), r coherence.AccessResult) int32 {
	if n := len(c.fdsFree); n > 0 {
		i := c.fdsFree[n-1]
		c.fdsFree = c.fdsFree[:n-1]
		c.fds[i] = ctxFastDone{done: done, res: r}
		return i
	}
	c.fds = append(c.fds, ctxFastDone{done: done, res: r})
	return int32(len(c.fds) - 1)
}

// Engine returns this core's home event engine (for CPU models built on
// this context): the shard hosting the core's L1 controllers when the
// machine is sharded, else the machine engine. Everything a core
// schedules for itself — ticks, translation delays, submissions — goes
// here, so a parallel epoch keeps the whole core-local chain on one
// shard.
func (c *Context) Engine() *sim.Engine { return c.m.Sys.EngineForL1(c.dataPort()) }

// Machine returns the owning machine.
func (c *Context) Machine() *Machine { return c.m }

// dataPort returns the coherence port of this context's L1 D-cache.
func (c *Context) dataPort() int { return 2 * c.Core }

// instPort returns the coherence port of this context's L1 I-cache.
func (c *Context) instPort() int { return 2*c.Core + 1 }

// submitTranslated routes a translated access to an L1 port with the
// architecture-dependent translation latency: pre is charged before the
// lookup, missExtra only if the access misses the L1 (VIVT).
func (c *Context) submitTranslated(port int, res mmu.Result, write bool, value uint64, seq uint64,
	pre, missExtra sim.Cycle, done func(coherence.AccessResult)) {
	acc := coherence.Access{
		Addr:        cache.Addr(res.PAddr),
		Write:       write,
		WP:          res.WriteProtected,
		Value:       value,
		Seq:         seq,
		MissPenalty: missExtra,
		// Report the access latency as the core sees it: translation
		// time included.
		Extra: pre,
		Done:  done,
	}
	if pre == 0 {
		c.m.Sys.Submit(port, acc)
		return
	}
	c.Engine().ScheduleEvent(pre, c, sim.Payload{Op: ctxOpSubmit, A: uint64(c.putSubmit(port, acc))})
}

// fastSubmit attempts the synchronous hit fast path for a translated
// access. Eligibility beyond System.TryFastAccess's own checks: no
// pre-charge latency (pre == 0 — a clean TLB outcome on a VIPT or VIVT
// L1) and no earlier access of this context still parked in its
// pre-charge delay (its later array probe must not observe the fast hit's
// mutation out of order). On success the completion callback is delivered
// by a single ctxOpFastDone event occupying the exact (cycle, seq) slot
// the event path's tag-lookup event would have, so engine interleaving is
// byte-identical; when sync is set and the engine is otherwise idle, even
// that event is skipped and the clock advances directly.
func (c *Context) fastSubmit(port int, res mmu.Result, write bool, value uint64, seq uint64,
	pre sim.Cycle, done func(coherence.AccessResult), sync bool) bool {
	if pre != 0 || len(c.subFree) != len(c.subs) {
		return false
	}
	r, ok := c.m.Sys.TryFastAccess(port, coherence.Access{
		Addr:  cache.Addr(res.PAddr),
		Write: write,
		WP:    res.WriteProtected,
		Value: value,
		Seq:   seq,
	})
	if !ok {
		return false
	}
	if sync && c.m.Sys.PendingAll() == 0 {
		c.m.Sys.RunTo(c.m.Now() + r.Latency)
		if done != nil {
			done(r)
		}
		return true
	}
	c.Engine().ScheduleEvent(r.Latency, c, sim.Payload{Op: ctxOpFastDone, A: uint64(c.putFastDone(done, r))})
	return true
}

// Access translates v and submits the access to this core's L1 D-cache.
// The translation result's R/W bit rides along as the access's WP flag —
// the hitchhiking of §IV-B. done may be nil.
func (c *Context) Access(v mmu.VAddr, write bool, value uint64, done func(coherence.AccessResult)) error {
	return c.access(v, write, value, done, false)
}

func (c *Context) access(v mmu.VAddr, write bool, value uint64, done func(coherence.AccessResult), sync bool) error {
	res, tlbHit, err := c.DTLB.Translate(c.Proc.AS, v, write)
	if err != nil {
		return err
	}
	c.DataAccesses++
	var seq uint64
	if write {
		c.storeSeq++
		seq = c.storeSeq
	}
	pre, missExtra := c.translationTiming(res, tlbHit)
	if c.m.Cfg.WalkThroughCaches && !tlbHit {
		c.walkAndSubmit(v, c.dataPort(), res, write, value, seq, pre, missExtra, done)
		return nil
	}
	if c.fastSubmit(c.dataPort(), res, write, value, seq, pre, done, sync) {
		return nil
	}
	c.submitTranslated(c.dataPort(), res, write, value, seq, pre, missExtra, done)
	return nil
}

// Fetch performs an instruction fetch through the I-TLB and L1 I-cache.
// Hardware walkers use the data path, so a cache-coupled walk issues its
// reads on the D-port even for instruction translations.
func (c *Context) Fetch(v mmu.VAddr, done func(coherence.AccessResult)) error {
	res, tlbHit, err := c.ITLB.Translate(c.Proc.AS, v, false)
	if err != nil {
		return err
	}
	pre, missExtra := c.translationTiming(res, tlbHit)
	if c.m.Cfg.WalkThroughCaches && !tlbHit {
		c.walkAndSubmit(v, c.instPort(), res, false, 0, 0, pre, missExtra, done)
		return nil
	}
	if c.fastSubmit(c.instPort(), res, false, 0, 0, pre, done, false) {
		return nil
	}
	c.submitTranslated(c.instPort(), res, false, 0, 0, pre, missExtra, done)
	return nil
}

// walkAndSubmit performs the cache-coupled page-table walk and then the
// real access, reporting total wall-clock latency from now.
func (c *Context) walkAndSubmit(v mmu.VAddr, port int, res mmu.Result, write bool, value uint64, seq uint64,
	pre, missExtra sim.Cycle, done func(coherence.AccessResult)) {
	t0 := c.Engine().Now()
	wrapped := done
	if done != nil {
		wrapped = func(r coherence.AccessResult) {
			// The L1 measured only the final access; report the full
			// walk-inclusive latency the core observed. Clocks are read on
			// the core's own engine: inside a parallel epoch the machine
			// clock is a foreign shard's.
			r.Latency = c.Engine().Now() - t0
			done(r)
		}
	}
	start := func() {
		c.walkThenSubmit(v, func() {
			c.submitTranslated(port, res, write, value, seq, 0, missExtra, wrapped)
		})
	}
	if pre > 0 {
		c.Engine().Schedule(pre, start)
	} else {
		start()
	}
}

// AccessSync performs Access and runs the engine to completion of this
// one request; the probe interface used by the attack framework, the
// microbenchmarks, and tests.
func (c *Context) AccessSync(v mmu.VAddr, write bool, value uint64) (coherence.AccessResult, error) {
	if c.syncCb == nil {
		c.syncCb = func(r coherence.AccessResult) {
			c.syncOut = r
			c.syncDone = true
		}
		c.syncCond = func() bool { return !c.syncDone }
	}
	c.syncDone = false
	err := c.access(v, write, value, c.syncCb, true)
	if err != nil {
		return coherence.AccessResult{}, err
	}
	c.m.Sys.RunWhile(c.syncCond)
	if !c.syncDone {
		panic("core: access did not complete")
	}
	return c.syncOut, nil
}

// MustAccessSync is AccessSync that panics on translation errors.
func (c *Context) MustAccessSync(v mmu.VAddr, write bool, value uint64) coherence.AccessResult {
	r, err := c.AccessSync(v, write, value)
	if err != nil {
		panic(err)
	}
	return r
}

// ScheduleKSMScans models the KSM kernel thread: it schedules scans
// periodic cycles apart, count times, flushing every context's D-TLB
// after a scan that merged pages (the kernel's TLB shootdown after
// write_protect_page). A bounded count keeps the event queue drainable.
func (m *Machine) ScheduleKSMScans(period sim.Cycle, count int) {
	// Scans mutate every address space and flush every TLB from one
	// closure: inherently cross-shard, so the machine drops to sequential
	// stepping when sharded.
	m.ForceSequential()
	var tick func(remaining int)
	tick = func(remaining int) {
		if remaining == 0 {
			return
		}
		if merged := m.KSM.Scan(); merged > 0 {
			for _, ctx := range m.contexts {
				ctx.DTLB.Flush()
				ctx.ITLB.Flush()
			}
		}
		m.Sys.Eng.Schedule(period, func() { tick(remaining - 1) })
	}
	m.Sys.Eng.Schedule(period, func() { tick(count) })
}

// Quiesce drains all in-flight machine activity.
func (m *Machine) Quiesce() { m.Sys.Quiesce() }

// CheckInvariants validates the quiesced hierarchy.
func (m *Machine) CheckInvariants() error { return m.Sys.CheckInvariants() }
