package core

import (
	"strings"
	"testing"

	"repro/internal/coherence"
	"repro/internal/fault"
	"repro/internal/mmu"
	"repro/internal/sim"
)

// A machine armed with a watchdog must convert a wedged engine into a
// typed liveness violation carrying both the engine's pending snapshot
// and the hierarchy dump.
func TestMachineWatchdogTripsAsLivenessViolation(t *testing.T) {
	cfg := DefaultConfig(1, coherence.MESI)
	cfg.Watchdog = sim.WatchdogConfig{MaxEvents: 200}
	m := MustNewMachine(cfg)

	// Wedge: a closure chain that reschedules itself forever without ever
	// marking progress.
	var spin func()
	spin = func() { m.Engine().Schedule(1, spin) }
	spin()

	var recovered any
	func() {
		defer func() { recovered = recover() }()
		for i := 0; i < 1_000; i++ {
			if !m.Engine().Step() {
				break
			}
		}
	}()
	v := fault.AsViolation(recovered)
	if v == nil {
		t.Fatalf("recovered %v (%T), want *fault.Violation", recovered, recovered)
	}
	if v.Kind != fault.KindLiveness || v.Component != "watchdog" {
		t.Errorf("violation = %+v", v)
	}
	if !strings.Contains(v.Msg, "no progress for") {
		t.Errorf("Msg = %q", v.Msg)
	}
	for _, frag := range []string{"-- watchdog pending snapshot --", "pending events", "=== system state at cycle"} {
		if !strings.Contains(v.Dump, frag) {
			t.Errorf("dump missing %q", frag)
		}
	}
}

// A healthy machine doing real memory work must never trip the watchdog:
// every access completion marks progress, resetting the budget.
func TestMachineWatchdogQuietOnHealthyRun(t *testing.T) {
	cfg := DefaultConfig(1, coherence.SwiftDir)
	// Tight budget relative to the whole run: total events far exceed
	// MaxEvents, so only per-access progress marks keep it quiet.
	cfg.Watchdog = sim.WatchdogConfig{MaxEvents: 5_000, MaxCycles: 50_000}
	m := MustNewMachine(cfg)
	p := m.NewProcess()
	ctx := p.AttachContext(0)
	heap := p.MmapAnon(64 * 1024)
	for i := 0; i < 2_000; i++ {
		v := heap + mmu.VAddr((i%512)*64)
		ctx.MustAccessSync(v, i%3 == 0, uint64(i))
	}
	m.Quiesce()
	if err := m.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

// A disabled watchdog config must leave the engine unwatched.
func TestMachineWatchdogDisabledByDefault(t *testing.T) {
	m := MustNewMachine(DefaultConfig(1, coherence.MESI))
	var spin func()
	n := 0
	spin = func() {
		if n++; n < 500 {
			m.Engine().Schedule(1, spin)
		}
	}
	spin()
	m.Engine().Run() // 500 progress-free events: must not panic
}
