package core

import (
	"fmt"

	"repro/internal/mmu"
	"repro/internal/sim"
)

// CacheArch selects how the L1 is indexed and tagged (§IV-B, Figure 5).
// The architecture determines when address translation happens relative to
// the L1 access and therefore where the write-protection bit becomes
// available — but in every case translation completes before the PIPT LLC
// is accessed, which is all SwiftDir requires.
type CacheArch uint8

const (
	// VIPT: virtually indexed, physically tagged (Intel Skylake, AMD Zen
	// L1D). Translation overlaps set indexing; the R/W bit arrives with
	// the physical tag at tag-comparison time. On a TLB hit the
	// translation latency is fully hidden.
	VIPT CacheArch = iota
	// PIPT: physically indexed, physically tagged (ARM Cortex-A L1D).
	// Translation precedes the L1 access; the R/W bit is available at
	// set indexing, and the TLB-hit latency is on the critical path.
	PIPT
	// VIVT: virtually indexed, virtually tagged (older ARM cores). The
	// L1 is searched with the virtual address; translation happens only
	// on the miss path, so the R/W bit joins the coherence request just
	// before it reaches the LLC.
	VIVT
)

func (a CacheArch) String() string {
	switch a {
	case VIPT:
		return "VIPT"
	case PIPT:
		return "PIPT"
	case VIVT:
		return "VIVT"
	}
	return fmt.Sprintf("CacheArch(%d)", uint8(a))
}

// WPAvailableAt describes where in the access pipeline the write-protected
// information reaches the cache hierarchy for this architecture (the
// (where, when) property of §IV-B).
func (a CacheArch) WPAvailableAt() string {
	switch a {
	case PIPT:
		return "(L1 cache, set indexing)"
	case VIPT:
		return "(L1 cache, tag comparison)"
	case VIVT:
		return "(LLC, set indexing)"
	}
	return "unknown"
}

// translationTiming computes, for one access, the latency charged before
// the L1 lookup (pre) and the latency charged only if the access misses
// the L1 (missExtra), given the architecture, the TLB outcome, and the
// fault work performed.
func (c *Context) translationTiming(res mmu.Result, tlbHit bool) (pre, missExtra sim.Cycle) {
	cfg := c.m.Cfg
	var faultWork sim.Cycle
	if res.Faulted {
		c.PageFaults++
		faultWork += cfg.PageFaultLatency
	}
	if res.CoW {
		c.CoWs++
		if cfg.FastCoWWrites {
			// Future-work mode: the store commits to a write buffer at
			// constant cost; the duplication happens in the background.
			faultWork += cfg.WriteBufferLatency
		} else {
			faultWork += cfg.CoWLatency
		}
	}
	if !tlbHit {
		c.TLBWalks++
	}
	// With the cache-coupled walker the walk cost is the four dependent
	// page-table reads issued separately (see walkThenSubmit), not a
	// fixed latency.
	walk := cfg.TLBMissWalkLatency
	if cfg.WalkThroughCaches {
		walk = 0
	}
	switch cfg.L1Arch {
	case PIPT:
		// Serial: TLB (or walk) before the cache access.
		pre = cfg.TLBHitLatency + faultWork
		if !tlbHit {
			pre += walk
		}
		return pre, 0
	case VIVT:
		// The L1 hit path never translates; the miss path pays the TLB
		// (or the walk) before the request reaches the LLC. Faults are
		// OS-level and always serialize.
		missExtra = cfg.TLBHitLatency
		if !tlbHit {
			missExtra += walk
		}
		return faultWork, missExtra
	default: // VIPT
		// The TLB-hit latency hides under set indexing; only walks and
		// faults serialize.
		pre = faultWork
		if !tlbHit {
			pre += walk
		}
		return pre, 0
	}
}
