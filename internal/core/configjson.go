package core

import (
	"encoding/json"
	"fmt"
	"os"

	"repro/internal/cache"
	"repro/internal/coherence"
	"repro/internal/dram"
	"repro/internal/sim"
)

// configJSON is the serialized form of Config: the Policy interface is
// replaced by its name, and CacheArch by its string.
type configJSON struct {
	Cores      int     `json:"cores"`
	FreqGHz    float64 `json:"freq_ghz"`
	ROBEntries int     `json:"rob_entries"`
	LQEntries  int     `json:"lq_entries"`
	SQEntries  int     `json:"sq_entries"`
	Width      int     `json:"width"`

	StoreDrainDepth int `json:"store_drain_depth"`

	L1     cache.Params `json:"l1d"`
	L1I    cache.Params `json:"l1i"`
	L2Bank cache.Params `json:"l2_bank"`

	ITLBEntries int    `json:"itlb_entries"`
	DTLBEntries int    `json:"dtlb_entries"`
	L1Arch      string `json:"l1_arch"`

	TLBHitLatency      sim.Cycle `json:"tlb_hit_latency"`
	TLBMissWalkLatency sim.Cycle `json:"tlb_miss_walk_latency"`
	PageFaultLatency   sim.Cycle `json:"page_fault_latency"`
	CoWLatency         sim.Cycle `json:"cow_latency"`
	WalkThroughCaches  bool      `json:"walk_through_caches"`
	FastCoWWrites      bool      `json:"fast_cow_writes"`
	WriteBufferLatency sim.Cycle `json:"write_buffer_latency"`

	Timing   coherence.Timing `json:"timing"`
	Protocol string           `json:"protocol"`
	DRAM     dram.Config      `json:"dram"`
	Prefetch string           `json:"prefetch,omitempty"`

	NoFastPath bool `json:"no_fast_path,omitempty"`
	Shards     int  `json:"shards,omitempty"`
	Prefault   bool `json:"prefault,omitempty"`
}

func prefetchFromString(s string) (coherence.PrefetchMode, error) {
	switch s {
	case "", "off":
		return coherence.PrefetchOff, nil
	case "naive":
		return coherence.PrefetchNaive, nil
	case "wp-aware":
		return coherence.PrefetchWPAware, nil
	}
	return coherence.PrefetchOff, fmt.Errorf("core: unknown prefetch mode %q", s)
}

func archFromString(s string) (CacheArch, error) {
	switch s {
	case "VIPT", "":
		return VIPT, nil
	case "PIPT":
		return PIPT, nil
	case "VIVT":
		return VIVT, nil
	}
	return VIPT, fmt.Errorf("core: unknown L1 architecture %q", s)
}

// MarshalJSON implements json.Marshaler.
func (c Config) MarshalJSON() ([]byte, error) {
	proto := ""
	if c.Protocol != nil {
		proto = c.Protocol.Name()
	}
	return json.Marshal(configJSON{
		Cores: c.Cores, FreqGHz: c.FreqGHz,
		ROBEntries: c.ROBEntries, LQEntries: c.LQEntries, SQEntries: c.SQEntries,
		Width: c.Width, StoreDrainDepth: c.StoreDrainDepth,
		L1: c.L1, L1I: c.L1I, L2Bank: c.L2Bank,
		ITLBEntries: c.ITLBEntries, DTLBEntries: c.DTLBEntries,
		L1Arch:        c.L1Arch.String(),
		TLBHitLatency: c.TLBHitLatency, TLBMissWalkLatency: c.TLBMissWalkLatency,
		PageFaultLatency: c.PageFaultLatency, CoWLatency: c.CoWLatency,
		WalkThroughCaches: c.WalkThroughCaches,
		FastCoWWrites:     c.FastCoWWrites, WriteBufferLatency: c.WriteBufferLatency,
		Timing: c.Timing, Protocol: proto, DRAM: c.DRAM,
		Prefetch:   c.Prefetch.String(),
		NoFastPath: c.NoFastPath,
		Shards:     c.Shards, Prefault: c.Prefault,
	})
}

// UnmarshalJSON implements json.Unmarshaler. Unknown protocol or
// architecture names are errors; a missing protocol defaults to SwiftDir.
func (c *Config) UnmarshalJSON(data []byte) error {
	var j configJSON
	if err := json.Unmarshal(data, &j); err != nil {
		return err
	}
	arch, err := archFromString(j.L1Arch)
	if err != nil {
		return err
	}
	proto := coherence.Policy(coherence.SwiftDir)
	if j.Protocol != "" {
		proto = coherence.PolicyByName(j.Protocol)
		if proto == nil {
			return fmt.Errorf("core: unknown protocol %q", j.Protocol)
		}
	}
	pf, err := prefetchFromString(j.Prefetch)
	if err != nil {
		return err
	}
	*c = Config{
		Cores: j.Cores, FreqGHz: j.FreqGHz,
		ROBEntries: j.ROBEntries, LQEntries: j.LQEntries, SQEntries: j.SQEntries,
		Width: j.Width, StoreDrainDepth: j.StoreDrainDepth,
		L1: j.L1, L1I: j.L1I, L2Bank: j.L2Bank,
		ITLBEntries: j.ITLBEntries, DTLBEntries: j.DTLBEntries,
		L1Arch:        arch,
		TLBHitLatency: j.TLBHitLatency, TLBMissWalkLatency: j.TLBMissWalkLatency,
		PageFaultLatency: j.PageFaultLatency, CoWLatency: j.CoWLatency,
		WalkThroughCaches: j.WalkThroughCaches,
		FastCoWWrites:     j.FastCoWWrites, WriteBufferLatency: j.WriteBufferLatency,
		Timing: j.Timing, Protocol: proto, DRAM: j.DRAM,
		Prefetch:   pf,
		NoFastPath: j.NoFastPath,
		Shards:     j.Shards, Prefault: j.Prefault,
	}
	return nil
}

// LoadConfig reads and validates a JSON machine configuration.
func LoadConfig(path string) (Config, error) {
	var c Config
	data, err := os.ReadFile(path)
	if err != nil {
		return c, err
	}
	if err := json.Unmarshal(data, &c); err != nil {
		return c, err
	}
	return c, c.Validate()
}

// SaveConfig writes a configuration as indented JSON.
func SaveConfig(path string, c Config) error {
	data, err := json.MarshalIndent(c, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}
