package core

import (
	"testing"

	"repro/internal/coherence"
	"repro/internal/mmu"
	"repro/internal/sim"
)

// Machine-level fast-path tests: the synchronous L1-hit path must remain
// byte-identical to the event path through the full CPU-facing stack —
// TLB lookups, translation-timing charges, page faults — under every L1
// organization, including PIPT where the fast path never fires at all.

// fastSlowPair builds two identical machines, one with the fast path
// disabled, plus one attached context each on core 0.
func fastSlowPair(t *testing.T, mut func(*Config)) (fast, slow *Context) {
	t.Helper()
	mk := func(noFast bool) *Context {
		cfg := DefaultConfig(2, coherence.SwiftDir)
		if mut != nil {
			mut(&cfg)
		}
		cfg.NoFastPath = noFast
		m, err := NewMachine(cfg)
		if err != nil {
			t.Fatal(err)
		}
		return m.NewProcess().AttachContext(0)
	}
	return mk(false), mk(true)
}

// TestFastPathMachineEquivalence replays one random virtual-address
// trace — demand faults, TLB misses and hits, loads and stores — on a
// fast-path machine and its NoFastPath twin and requires identical
// results, identical clocks, and identical statistics modulo the
// FastHits/SlowPath split. VIPT and VIVT exercise the fast path; PIPT
// pins the translation charge ahead of the access and must decline
// everywhere while still matching the event path exactly.
func TestFastPathMachineEquivalence(t *testing.T) {
	for _, arch := range []CacheArch{VIPT, PIPT, VIVT} {
		t.Run(arch.String(), func(t *testing.T) {
			fast, slow := fastSlowPair(t, func(c *Config) { c.L1Arch = arch })
			heapF := fast.Proc.MmapAnon(64 << 10)
			heapS := slow.Proc.MmapAnon(64 << 10)
			if heapF != heapS {
				t.Fatalf("heap layout diverged: %#x vs %#x", heapF, heapS)
			}

			rng := sim.NewRNG(0xC0DE)
			// A few hot lines (fast-path food), a page-sized stride to
			// churn the TLB, and occasional cold pages to fault in.
			addr := func() mmu.VAddr {
				switch rng.Uint64() % 8 {
				case 0:
					return heapF + mmu.VAddr(rng.Uint64()%16)*4096 // TLB churn
				case 1:
					return heapF + mmu.VAddr(40<<10) + mmu.VAddr(rng.Uint64()%8192) // cold-ish
				default:
					return heapF + mmu.VAddr(rng.Uint64()%4)*64 // hot lines
				}
			}
			for i := 0; i < 3000; i++ {
				v := addr()
				write := rng.Bool(0.3)
				val := rng.Uint64()
				rf := fast.MustAccessSync(v, write, val)
				rs := slow.MustAccessSync(v, write, val)
				if rf != rs {
					t.Fatalf("op %d (vaddr %#x write %v): fast %+v != slow %+v", i, v, write, rf, rs)
				}
			}
			mf, ms := fast.Machine(), slow.Machine()
			mf.Quiesce()
			ms.Quiesce()
			if mf.Now() != ms.Now() {
				t.Fatalf("clocks diverged: fast %d, slow %d", mf.Now(), ms.Now())
			}
			var fastHits uint64
			for i := range mf.Sys.L1s {
				fs, ss := mf.Sys.L1s[i].Stats, ms.Sys.L1s[i].Stats
				fastHits += fs.FastHits
				fs.FastHits, fs.SlowPath = 0, 0
				ss.FastHits, ss.SlowPath = 0, 0
				if fs != ss {
					t.Fatalf("L1 %d stats diverged:\nfast %+v\nslow %+v", i, fs, ss)
				}
			}
			if fb, sb := mf.Sys.BankStatsTotal(), ms.Sys.BankStatsTotal(); fb != sb {
				t.Fatalf("bank stats diverged:\nfast %+v\nslow %+v", fb, sb)
			}
			if arch == PIPT {
				if fastHits != 0 {
					t.Fatalf("PIPT fast-pathed %d accesses; translation must serialize ahead", fastHits)
				}
			} else if fastHits == 0 {
				t.Fatalf("%s run never exercised the fast path", arch)
			}
			if err := mf.CheckInvariants(); err != nil {
				t.Fatal(err)
			}
			if err := ms.CheckInvariants(); err != nil {
				t.Fatal(err)
			}
		})
	}
}

// TestFastPathAsyncInterleave is the machine-level litmus: a store is
// submitted asynchronously and, while its upgrade is mid-flight, the
// same core issues synchronous loads to unrelated hot lines. Fast and
// NoFastPath machines must interleave identically — same per-access
// results, same completion cycle for the racing store — so the fast path
// cannot reorder a load around an in-flight same-core store.
func TestFastPathAsyncInterleave(t *testing.T) {
	fast, slow := fastSlowPair(t, nil)
	run := func(ctx *Context) (loads [4]coherence.AccessResult, storeCycle sim.Cycle, fastHits uint64) {
		m := ctx.Machine()
		heap := ctx.Proc.MmapAnon(16 << 10)
		lineA, lineB := heap, heap+4096 // distinct pages, distinct banks
		other := ctx.Proc.AttachContext(1)
		ctx.MustAccessSync(lineA, true, 1) // A modified in core 0
		other.MustAccessSync(lineA, false, 0)
		// Core 0's copy of A is now shared; upgrade required to store.
		ctx.MustAccessSync(lineB, true, 2) // B hot and M in core 0
		m.Quiesce()

		done := false
		if err := ctx.Access(lineA, true, 42, func(coherence.AccessResult) {
			done = true
			storeCycle = m.Now()
		}); err != nil {
			t.Fatal(err)
		}
		m.Engine().RunFor(2) // upgrade in flight, not yet at the bank
		for i := range loads {
			loads[i] = ctx.MustAccessSync(lineB+mmu.VAddr(i%2)*64, false, 0)
		}
		m.Quiesce()
		if !done {
			t.Fatal("async store never completed")
		}
		f, _ := m.Sys.FastPathTotals()
		return loads, storeCycle, f
	}
	lf, cf, hf := run(fast)
	ls, cs, hs := run(slow)
	if lf != ls || cf != cs {
		t.Fatalf("interleaving diverged: fast loads %v store@%d, slow loads %v store@%d", lf, cf, ls, cs)
	}
	if hf == 0 || hs != 0 {
		t.Fatalf("fast-path totals: fast machine %d (want > 0), slow machine %d (want 0)", hf, hs)
	}
}
