package core

import (
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/coherence"
)

func TestConfigJSONRoundTrip(t *testing.T) {
	orig := DefaultConfig(4, coherence.SwiftDir)
	orig.L1Arch = VIVT
	orig.WalkThroughCaches = true
	orig.FastCoWWrites = true
	data, err := json.Marshal(orig)
	if err != nil {
		t.Fatal(err)
	}
	var back Config
	if err := json.Unmarshal(data, &back); err != nil {
		t.Fatal(err)
	}
	if back.Protocol != coherence.SwiftDir {
		t.Fatalf("protocol = %v", back.Protocol)
	}
	if back.L1Arch != VIVT || !back.WalkThroughCaches || !back.FastCoWWrites {
		t.Fatalf("flags lost: %+v", back)
	}
	if back.Cores != 4 || back.ROBEntries != 192 || back.L2Bank.SizeBytes != 2<<20 {
		t.Fatalf("fields lost: %+v", back)
	}
	if back.DRAM.TCAS != 11 || back.Timing.LLCTag != orig.Timing.LLCTag {
		t.Fatal("nested configs lost")
	}
}

func TestConfigJSONErrors(t *testing.T) {
	var c Config
	if err := json.Unmarshal([]byte(`{"protocol":"NOPE"}`), &c); err == nil {
		t.Fatal("unknown protocol accepted")
	}
	if err := json.Unmarshal([]byte(`{"l1_arch":"XXXX"}`), &c); err == nil {
		t.Fatal("unknown arch accepted")
	}
	if err := json.Unmarshal([]byte(`{bad json`), &c); err == nil {
		t.Fatal("bad json accepted")
	}
}

func TestConfigJSONDefaultsProtocol(t *testing.T) {
	var c Config
	if err := json.Unmarshal([]byte(`{}`), &c); err != nil {
		t.Fatal(err)
	}
	if c.Protocol != coherence.SwiftDir {
		t.Fatalf("default protocol = %v", c.Protocol)
	}
	if c.L1Arch != VIPT {
		t.Fatalf("default arch = %v", c.L1Arch)
	}
}

func TestSaveLoadConfig(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "machine.json")
	orig := DefaultConfig(2, coherence.SMESI)
	if err := SaveConfig(path, orig); err != nil {
		t.Fatal(err)
	}
	loaded, err := LoadConfig(path)
	if err != nil {
		t.Fatal(err)
	}
	if loaded.Protocol != coherence.SMESI || loaded.Cores != 2 {
		t.Fatalf("loaded = %+v", loaded)
	}
	// The file is human-readable JSON mentioning the protocol by name.
	data, _ := json.MarshalIndent(orig, "", "  ")
	if !strings.Contains(string(data), `"S-MESI"`) {
		t.Fatal("protocol name not in JSON")
	}
}

func TestLoadConfigValidates(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "bad.json")
	bad := DefaultConfig(2, coherence.MESI)
	bad.Cores = 3 // invalid (not a power of two)
	data, _ := json.Marshal(bad)
	if err := writeFile(path, data); err != nil {
		t.Fatal(err)
	}
	if _, err := LoadConfig(path); err == nil {
		t.Fatal("invalid config loaded without error")
	}
	if _, err := LoadConfig(filepath.Join(dir, "missing.json")); err == nil {
		t.Fatal("missing file loaded")
	}
}

func writeFile(path string, data []byte) error {
	return os.WriteFile(path, data, 0o644)
}
