package core

import (
	"repro/internal/cache"
	"repro/internal/coherence"
	"repro/internal/mmu"
)

// Page-table walker. With Config.WalkThroughCaches enabled, a TLB miss is
// serviced by four dependent memory reads (one per radix level, as on
// x86-64) issued through this core's L1 D-cache port instead of a fixed
// latency. Page-table cache lines are ordinary coherent data, so walks to
// neighbouring pages hit in the L1 — the locality that makes real TLB
// misses cheap in loops and expensive in pointer chases.

// ptBase places page tables in a reserved physical region far above the
// frame allocator.
const ptBase cache.Addr = 1 << 40

// walkAddrs derives the physical addresses of the four page-table entries
// the walk for v touches. Each level's table is indexed by 9 bits of the
// VPN; entries are 8 bytes, so 8 neighbouring pages share one cache block
// at the leaf level.
func walkAddrs(v mmu.VAddr) [4]cache.Addr {
	vpn := uint64(v) / mmu.PageSize
	var out [4]cache.Addr
	for level := 0; level < 4; level++ {
		idx := vpn >> (9 * (3 - level)) // prefix of the VPN at this level
		out[level] = ptBase + cache.Addr(uint64(level)<<36) + cache.Addr(idx*8)
	}
	return out
}

// walkThenSubmit issues the four page-table reads back to back (each
// dependent on the previous) on the context's data port, then runs
// submit. Walk reads are never write-protected and never modify data.
func (c *Context) walkThenSubmit(v mmu.VAddr, submit func()) {
	addrs := walkAddrs(v)
	var step func(i int)
	step = func(i int) {
		if i == len(addrs) {
			submit()
			return
		}
		c.m.Sys.Submit(c.dataPort(), coherence.Access{
			Addr: addrs[i],
			Done: func(coherence.AccessResult) { step(i + 1) },
		})
	}
	step(0)
}
