package core

import (
	"testing"

	"repro/internal/cache"
	"repro/internal/coherence"
	"repro/internal/mmu"
)

func newMachine(t *testing.T, p coherence.Policy, cores int) *Machine {
	t.Helper()
	m, err := NewMachine(DefaultConfig(cores, p))
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func TestConfigValidate(t *testing.T) {
	if err := DefaultConfig(4, coherence.SwiftDir).Validate(); err != nil {
		t.Fatalf("default config invalid: %v", err)
	}
	bad := DefaultConfig(3, coherence.MESI) // non-pow2 cores
	if bad.Validate() == nil {
		t.Error("3 cores accepted")
	}
	bad = DefaultConfig(2, nil)
	if bad.Validate() == nil {
		t.Error("nil protocol accepted")
	}
	bad = DefaultConfig(2, coherence.MESI)
	bad.ITLBEntries = 0
	if bad.Validate() == nil {
		t.Error("zero TLB accepted")
	}
}

func TestDescribeMentionsTableV(t *testing.T) {
	d := DefaultConfig(4, coherence.SwiftDir).Describe()
	for _, want := range []string{"Table V", "SwiftDir", "192", "DDR3_1600_8x8", "11-11-11", "64-entry"} {
		if !contains(d, want) {
			t.Errorf("Describe() missing %q:\n%s", want, d)
		}
	}
}

func contains(s, sub string) bool {
	return len(s) >= len(sub) && (func() bool {
		for i := 0; i+len(sub) <= len(s); i++ {
			if s[i:i+len(sub)] == sub {
				return true
			}
		}
		return false
	})()
}

// End-to-end: two processes map the same shared library; the WP bit flows
// from the PTE through the TLB into the coherence request, and SwiftDir
// keeps the shared data in S with constant LLC latency.
func TestSharedLibraryEndToEndSwiftDir(t *testing.T) {
	m := newMachine(t, coherence.SwiftDir, 2)
	lib := mmu.NewFile("libc.so", 42)

	sender := m.NewProcess()
	receiver := m.NewProcess()
	sctx := sender.AttachContext(0)
	rctx := receiver.AttachContext(1)

	sBase := sender.MmapLibrary(lib, 1<<20)
	rBase := receiver.MmapLibrary(lib, 1<<20)

	// Sender's cold access: I->S under SwiftDir.
	r1 := sctx.MustAccessSync(sBase+0x1000, false, 0)
	if !r1.WP {
		t.Fatal("library access not write-protected")
	}
	// Warm the receiver's translation with a different block of the same
	// page, then measure the cross-core re-access of the sender's block:
	// with a hot TLB it is exactly the constant LLC round trip.
	rctx.MustAccessSync(rBase+0x1040, false, 0)
	r2 := rctx.MustAccessSync(rBase+0x1000, false, 0)
	if r2.Served != coherence.ServedLLC {
		t.Fatalf("receiver served from %v, want LLC (constant latency)", r2.Served)
	}
	if r2.Latency != m.Cfg.Timing.LLCLoadLatency() {
		t.Fatalf("receiver latency %d, want %d", r2.Latency, m.Cfg.Timing.LLCLoadLatency())
	}
	m.Quiesce()
	if err := m.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

// The same scenario under MESI exhibits the three-hop E-state path — the
// exploitable gap.
func TestSharedLibraryEndToEndMESI(t *testing.T) {
	m := newMachine(t, coherence.MESI, 2)
	lib := mmu.NewFile("libc.so", 42)
	p1, p2 := m.NewProcess(), m.NewProcess()
	c1, c2 := p1.AttachContext(0), p2.AttachContext(1)
	b1 := p1.MmapLibrary(lib, 1<<20)
	b2 := p2.MmapLibrary(lib, 1<<20)

	c1.MustAccessSync(b1+0x1000, false, 0)
	r := c2.MustAccessSync(b2+0x1000, false, 0)
	if r.Served != coherence.ServedRemote {
		t.Fatalf("MESI remote library load served from %v, want Remote", r.Served)
	}
	m.Quiesce()
	if err := m.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

// Anonymous private memory is not write-protected; SwiftDir gives it the
// full MESI treatment, including silent upgrade.
func TestPrivateHeapKeepsSilentUpgrade(t *testing.T) {
	m := newMachine(t, coherence.SwiftDir, 1)
	p := m.NewProcess()
	ctx := p.AttachContext(0)
	heap := p.MmapAnon(1 << 16)

	r := ctx.MustAccessSync(heap, false, 0)
	if r.WP {
		t.Fatal("anonymous heap marked write-protected")
	}
	if st := m.Sys.L1StateOf(0, cache.Addr(0)); st != cache.Invalid {
		_ = st // address 0 unused; just exercising the API
	}
	w := ctx.MustAccessSync(heap, true, 0xAB)
	if w.Latency != m.Cfg.Timing.L1Tag {
		t.Fatalf("write-after-read latency %d, want silent %d", w.Latency, m.Cfg.Timing.L1Tag)
	}
	if m.Sys.L1s[0].Stats.SilentUpgrades != 1 {
		t.Fatal("silent upgrade not taken")
	}
}

// Copy-on-write on a library data segment: the store pays the CoW cost,
// moves to a private frame, and subsequent stores are silent upgrades.
func TestLibraryDataCopyOnWrite(t *testing.T) {
	m := newMachine(t, coherence.SwiftDir, 2)
	lib := mmu.NewFile("libdata.so", 9)
	p1, p2 := m.NewProcess(), m.NewProcess()
	c1, c2 := p1.AttachContext(0), p2.AttachContext(1)
	b1 := p1.MmapLibraryData(lib, mmu.PageSize, 0)
	b2 := p2.MmapLibraryData(lib, mmu.PageSize, 0)

	// Reads share the frame, write-protected.
	r1 := c1.MustAccessSync(b1, false, 0)
	r2 := c2.MustAccessSync(b2, false, 0)
	if !r1.WP || !r2.WP {
		t.Fatal("library data not write-protected on read")
	}

	// p1 writes: CoW moves it to a private, writable frame.
	w := c1.MustAccessSync(b1, true, 0x77)
	if w.WP {
		t.Fatal("post-CoW store still write-protected")
	}
	if c1.CoWs != 1 {
		t.Fatalf("CoW count = %d, want 1", c1.CoWs)
	}
	// p2 still reads the original.
	r3 := c2.MustAccessSync(b2, false, 0)
	if r3.Value == 0x77 {
		t.Fatal("CoW leaked the write to the other process")
	}
	m.Quiesce()
	if err := m.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

// KSM merge makes two previously-private pages shared and write-protected;
// under SwiftDir their post-merge accesses collapse to the S state.
func TestKSMEndToEnd(t *testing.T) {
	m := newMachine(t, coherence.SwiftDir, 2)
	p1, p2 := m.NewProcess(), m.NewProcess()
	c1, c2 := p1.AttachContext(0), p2.AttachContext(1)
	b1 := p1.MmapAnon(mmu.PageSize)
	b2 := p2.MmapAnon(mmu.PageSize)
	if err := p1.AS.WritePage(b1, 0xD0B); err != nil {
		t.Fatal(err)
	}
	if err := p2.AS.WritePage(b2, 0xD0B); err != nil {
		t.Fatal(err)
	}
	if merged := m.KSM.Scan(); merged != 1 {
		t.Fatalf("merged = %d, want 1", merged)
	}
	// TLBs may cache stale writable translations; a real kernel shoots
	// them down on merge.
	c1.DTLB.Flush()
	c2.DTLB.Flush()

	r1, err := c1.AccessSync(b1, false, 0)
	if err != nil {
		t.Fatal(err)
	}
	if !r1.WP {
		t.Fatal("merged page not write-protected for p1")
	}
	r2, err := c2.AccessSync(b2, false, 0)
	if err != nil {
		t.Fatal(err)
	}
	if !r2.WP {
		t.Fatal("merged page not write-protected for p2")
	}
	if r2.Served != coherence.ServedLLC {
		t.Fatalf("p2's merged-page load served from %v, want LLC", r2.Served)
	}
	m.Quiesce()
	if err := m.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestFetchGoesToICache(t *testing.T) {
	m := newMachine(t, coherence.MESI, 1)
	p := m.NewProcess()
	ctx := p.AttachContext(0)
	lib := mmu.NewFile("prog.text", 3)
	text := p.MmapLibrary(lib, 1<<16)

	done := false
	if err := ctx.Fetch(text, func(coherence.AccessResult) { done = true }); err != nil {
		t.Fatal(err)
	}
	m.Quiesce()
	if !done {
		t.Fatal("fetch did not complete")
	}
	if m.Sys.L1s[ctx.instPort()].Stats.Loads != 1 {
		t.Fatal("fetch did not reach the I-cache port")
	}
	if m.Sys.L1s[ctx.dataPort()].Stats.Loads != 0 {
		t.Fatal("fetch leaked to the D-cache port")
	}
}

func TestTranslationChargesWalkAndFaultLatency(t *testing.T) {
	m := newMachine(t, coherence.MESI, 1)
	p := m.NewProcess()
	ctx := p.AttachContext(0)
	heap := p.MmapAnon(1 << 16)

	// First touch: TLB miss + page fault + memory fetch.
	r1 := ctx.MustAccessSync(heap, false, 0)
	// Second page: also TLB miss + fault.
	r2 := ctx.MustAccessSync(heap+mmu.PageSize, false, 0)
	// Same page again: pure L1 hit through a TLB hit.
	r3 := ctx.MustAccessSync(heap, false, 0)

	if r1.Latency <= m.Cfg.PageFaultLatency {
		t.Fatalf("faulting access latency %d did not include fault cost", r1.Latency)
	}
	if r3.Latency != m.Cfg.Timing.L1Tag {
		t.Fatalf("hit latency %d, want %d", r3.Latency, m.Cfg.Timing.L1Tag)
	}
	if ctx.PageFaults != 2 || ctx.TLBWalks != 2 {
		t.Fatalf("faults=%d walks=%d, want 2/2", ctx.PageFaults, ctx.TLBWalks)
	}
	_ = r2
}

func TestUnmappedAccessErrors(t *testing.T) {
	m := newMachine(t, coherence.MESI, 1)
	p := m.NewProcess()
	ctx := p.AttachContext(0)
	if _, err := ctx.AccessSync(0x10, false, 0); err == nil {
		t.Fatal("unmapped access succeeded")
	}
}

func TestAttachContextBounds(t *testing.T) {
	m := newMachine(t, coherence.MESI, 2)
	p := m.NewProcess()
	defer func() {
		if recover() == nil {
			t.Fatal("out-of-range core accepted")
		}
	}()
	p.AttachContext(2)
}

// fork(2) mass-produces write-protected pages: until a copy-on-write,
// SwiftDir handles the whole forked address space in state S — then a
// write peels the page out of the protection scope and silent upgrades
// resume on it.
func TestForkEndToEndSwiftDir(t *testing.T) {
	m := newMachine(t, coherence.SwiftDir, 2)
	parent := m.NewProcess()
	pctx := parent.AttachContext(0)
	heap := parent.MmapAnon(4 * mmu.PageSize)
	// Parent dirties its heap pre-fork.
	for i := 0; i < 4; i++ {
		pctx.MustAccessSync(heap+mmu.VAddr(i)*mmu.PageSize, true, uint64(i))
	}

	child := parent.Fork()
	cctx := child.AttachContext(1)
	pctx.DTLB.Flush() // kernel shootdown of now-CoW translations

	// Both sides read the same physical line. The parent's pre-fork
	// stores left the line Modified in its L1, so the child's FIRST
	// access must still be forwarded once (the LLC copy is stale) — a
	// one-shot transient, not a repeatable channel. It downgrades the
	// line to S; every access after that is the constant LLC service.
	r1 := pctx.MustAccessSync(heap, false, 0)
	if !r1.WP {
		t.Fatal("post-fork page not write-protected")
	}
	cctx.MustAccessSync(heap+64, false, 0) // warm child's TLB (also a forward)
	r2 := cctx.MustAccessSync(heap, false, 0)
	if r2.Served != coherence.ServedRemote {
		t.Fatalf("child's first read served from %v, want the one-shot Remote transient", r2.Served)
	}
	if r2.Value != r1.Value {
		t.Fatal("fork shares broken")
	}
	// From now on the block is Shared at the directory (once the
	// owner's writeback lands): the transient cannot recur.
	m.Quiesce()
	res, err := pctx.Proc.AS.Translate(heap, false)
	if err != nil {
		t.Fatal(err)
	}
	if ds := m.Sys.DirStateOf(cache.Addr(res.PAddr) &^ 63); ds != coherence.DirShared {
		t.Fatalf("dir state %v after transient, want DirShared", ds)
	}

	// The child writes: CoW moves it to a private page; subsequent
	// stores are silent upgrades again.
	w := cctx.MustAccessSync(heap, true, 0xF0)
	if w.WP {
		t.Fatal("post-CoW store still write-protected")
	}
	w2 := cctx.MustAccessSync(heap, true, 0xF1)
	if w2.Latency != m.Cfg.Timing.L1Tag {
		t.Fatalf("post-CoW store latency %d, want silent %d", w2.Latency, m.Cfg.Timing.L1Tag)
	}
	// Parent is isolated.
	pr := pctx.MustAccessSync(heap, false, 0)
	if pr.Value == 0xF1 {
		t.Fatal("child write leaked into parent")
	}
	m.Quiesce()
	if err := m.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}
