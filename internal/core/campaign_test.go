package core

import (
	"testing"

	"repro/internal/coherence"
	"repro/internal/mmu"
	"repro/internal/sim"
)

// End-to-end machine campaign: processes forking, KSM scanning, mprotect
// churn, shared libraries, and random memory traffic, all interleaved,
// across the three paper protocols. Each operation's result is verified
// against a per-process shadow of page contents. Skipped in -short mode.
func TestMachineCampaign(t *testing.T) {
	if testing.Short() {
		t.Skip("campaign is long; run without -short")
	}
	for _, proto := range []coherence.Policy{coherence.MESI, coherence.SwiftDir, coherence.SMESI} {
		proto := proto
		t.Run(proto.Name(), func(t *testing.T) {
			m := MustNewMachine(DefaultConfig(4, proto))
			lib := mmu.NewFile("libcampaign.so", 0xCA)
			rng := sim.NewRNG(0xE2E)

			type proc struct {
				p      *Process
				ctx    *Context
				heap   mmu.VAddr
				lib    mmu.VAddr
				shadow map[int]uint64 // heap page -> last written token
				ro     map[int]bool   // heap page currently mprotected RO
			}
			const pages = 8
			mkProc := func(core int) *proc {
				p := m.NewProcess()
				return &proc{
					p:      p,
					ctx:    p.AttachContext(core),
					heap:   p.MmapAnon(pages * mmu.PageSize),
					lib:    p.MmapLibrary(lib, pages*mmu.PageSize),
					shadow: map[int]uint64{},
					ro:     map[int]bool{},
				}
			}
			procs := []*proc{mkProc(0), mkProc(1)}

			forkProc := func(parent *proc, core int) *proc {
				child := &proc{
					p:      parent.p.Fork(),
					heap:   parent.heap,
					lib:    parent.lib,
					shadow: map[int]uint64{},
					ro:     map[int]bool{},
				}
				child.ctx = child.p.AttachContext(core)
				for k, v := range parent.shadow {
					child.shadow[k] = v
				}
				for k, v := range parent.ro {
					child.ro[k] = v
				}
				parent.ctx.DTLB.Flush() // post-fork shootdown
				return child
			}

			val := uint64(1)
			for op := 0; op < 3000; op++ {
				pr := procs[rng.Intn(len(procs))]
				page := rng.Intn(pages)
				v := pr.heap + mmu.VAddr(page)*mmu.PageSize + mmu.VAddr(rng.Intn(60))*64

				switch {
				case rng.Bool(0.02) && len(procs) < 4:
					procs = append(procs, forkProc(pr, len(procs)))
				case rng.Bool(0.02):
					m.KSM.Scan()
					for _, q := range procs {
						q.ctx.DTLB.Flush()
					}
				case rng.Bool(0.03):
					// Toggle mprotect on a heap page.
					if pr.ro[page] {
						if err := pr.p.AS.Mprotect(pr.heap+mmu.VAddr(page)*mmu.PageSize, mmu.PageSize, mmu.ProtRead|mmu.ProtWrite); err != nil {
							t.Fatal(err)
						}
						pr.ro[page] = false
					} else {
						if err := pr.p.AS.Mprotect(pr.heap+mmu.VAddr(page)*mmu.PageSize, mmu.PageSize, mmu.ProtRead); err != nil {
							t.Fatal(err)
						}
						pr.ro[page] = true
					}
					pr.ctx.DTLB.Flush()
				case rng.Bool(0.25):
					// Library read: always write-protected.
					lv := pr.lib + mmu.VAddr(rng.Intn(pages))*mmu.PageSize + mmu.VAddr(rng.Intn(60))*64
					r, err := pr.ctx.AccessSync(lv, false, 0)
					if err != nil {
						t.Fatalf("op %d: lib read: %v", op, err)
					}
					if !r.WP {
						t.Fatalf("op %d: library read not write-protected", op)
					}
				case rng.Bool(0.4):
					// Heap write via the page-content shadow (uses CoW
					// machinery under forks/KSM).
					if pr.ro[page] {
						continue // write would fault; skip
					}
					val++
					if err := pr.p.AS.WritePage(pr.heap+mmu.VAddr(page)*mmu.PageSize, val); err != nil {
						t.Fatalf("op %d: WritePage: %v", op, err)
					}
					pr.shadow[page] = val
					// Also push a cache-level store through the core.
					if _, err := pr.ctx.AccessSync(v, true, val); err != nil {
						t.Fatalf("op %d: store: %v", op, err)
					}
				default:
					// Heap page-content read back.
					got, err := pr.p.AS.ReadPage(pr.heap + mmu.VAddr(page)*mmu.PageSize)
					if err != nil {
						t.Fatalf("op %d: ReadPage: %v", op, err)
					}
					want, wrote := pr.shadow[page]
					if wrote && got != want {
						t.Fatalf("op %d proc heap page %d: got %#x want %#x (fork/KSM isolation broken)",
							op, page, got, want)
					}
					if _, err := pr.ctx.AccessSync(v, false, 0); err != nil {
						t.Fatalf("op %d: load: %v", op, err)
					}
				}
			}
			m.Quiesce()
			if err := m.CheckInvariants(); err != nil {
				t.Fatal(err)
			}
			// Cross-check: every process still reads its own shadow.
			for pi, pr := range procs {
				for page, want := range pr.shadow {
					got, err := pr.p.AS.ReadPage(pr.heap + mmu.VAddr(page)*mmu.PageSize)
					if err != nil || got != want {
						t.Fatalf("proc %d page %d: got %#x want %#x err=%v", pi, page, got, want, err)
					}
				}
			}
		})
	}
}
