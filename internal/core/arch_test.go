package core

import (
	"testing"

	"repro/internal/coherence"
	"repro/internal/mmu"
	"repro/internal/sim"
)

func archMachine(t *testing.T, arch CacheArch, p coherence.Policy, cores int) *Machine {
	t.Helper()
	cfg := DefaultConfig(cores, p)
	cfg.L1Arch = arch
	m, err := NewMachine(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return m
}

// warmCtx returns a context with one warm page whose first block has been
// accessed (TLB hot, line resident).
func warmCtx(t *testing.T, m *Machine) (*Context, mmu.VAddr) {
	t.Helper()
	p := m.NewProcess()
	ctx := p.AttachContext(0)
	heap := p.MmapAnon(1 << 16)
	ctx.MustAccessSync(heap, false, 0)
	return ctx, heap
}

func TestCacheArchStrings(t *testing.T) {
	if VIPT.String() != "VIPT" || PIPT.String() != "PIPT" || VIVT.String() != "VIVT" {
		t.Fatal("arch names wrong")
	}
	if PIPT.WPAvailableAt() != "(L1 cache, set indexing)" {
		t.Fatalf("PIPT location: %s", PIPT.WPAvailableAt())
	}
	if VIPT.WPAvailableAt() != "(L1 cache, tag comparison)" {
		t.Fatalf("VIPT location: %s", VIPT.WPAvailableAt())
	}
	if VIVT.WPAvailableAt() != "(LLC, set indexing)" {
		t.Fatalf("VIVT location: %s", VIVT.WPAvailableAt())
	}
}

// Figure 5 timing: on an L1 hit with a hot TLB, VIPT and VIVT hide the
// translation entirely; PIPT pays the TLB lookup serially.
func TestArchL1HitLatency(t *testing.T) {
	want := map[CacheArch]sim.Cycle{
		VIPT: 1, // L1Tag
		VIVT: 1, // no translation on the hit path at all
		PIPT: 2, // TLBHit + L1Tag
	}
	for arch, wantLat := range want {
		m := archMachine(t, arch, coherence.MESI, 1)
		ctx, heap := warmCtx(t, m)
		r := ctx.MustAccessSync(heap, false, 0)
		if r.Latency != wantLat {
			t.Errorf("%v: hit latency %d, want %d", arch, r.Latency, wantLat)
		}
	}
}

// On an L1 miss that hits the LLC, VIVT pays the deferred TLB lookup on
// the miss path; PIPT pays it up front; VIPT hides it.
func TestArchL1MissLatency(t *testing.T) {
	base := coherence.DefaultTiming().LLCLoadLatency() // 17
	want := map[CacheArch]sim.Cycle{
		VIPT: base,
		PIPT: base + 1,
		VIVT: base + 1,
	}
	for arch, wantLat := range want {
		m := archMachine(t, arch, coherence.MESI, 1)
		ctx, heap := warmCtx(t, m)
		// Evict the warm block's set? Simpler: access another block of
		// the same (warm) page far enough to miss the L1 but the page
		// is TLB-hot. First pull it into the LLC via a different route:
		// touch it once (mem fetch), recall-free, then evict from L1 by
		// filling the set.
		victim := heap + 0x40
		ctx.MustAccessSync(victim, false, 0) // now in L1+LLC
		// Physical frames are allocated sequentially per fault, and the
		// 32 KB 4-way L1 wraps sets every two 4 KB pages, so touching
		// the same offset in the next 12 pages places six blocks in the
		// victim's physical set — enough to evict it.
		for i := 1; i <= 12; i++ {
			ctx.MustAccessSync(heap+mmu.VAddr(i)*mmu.PageSize+0x40, false, 0)
		}
		r := ctx.MustAccessSync(victim, false, 0)
		if r.Served != coherence.ServedLLC {
			t.Fatalf("%v: victim load served from %v, want LLC", arch, r.Served)
		}
		if r.Latency != wantLat {
			t.Errorf("%v: miss latency %d, want %d", arch, r.Latency, wantLat)
		}
	}
}

// A TLB miss (page-table walk) serializes on every architecture, but VIVT
// only pays it on the L1 miss path.
func TestArchWalkLatency(t *testing.T) {
	for _, arch := range []CacheArch{VIPT, PIPT, VIVT} {
		m := archMachine(t, arch, coherence.MESI, 1)
		p := m.NewProcess()
		ctx := p.AttachContext(0)
		heap := p.MmapAnon(1 << 20)
		// Touch 100 pages to overflow the 64-entry DTLB, then re-touch
		// page 0: TLB miss, L1 miss (long gone), LLC or memory service.
		for i := 0; i < 100; i++ {
			ctx.MustAccessSync(heap+mmu.VAddr(i)*mmu.PageSize, false, 0)
		}
		r := ctx.MustAccessSync(heap, false, 0)
		if r.Latency < m.Cfg.TLBMissWalkLatency {
			t.Errorf("%v: post-TLB-overflow latency %d below walk cost", arch, r.Latency)
		}
		if ctx.TLBWalks == 0 {
			t.Errorf("%v: no TLB walks counted", arch)
		}
	}
}

// The security property is architecture-independent: the GETS_WP request
// reaches the directory under all three organizations, so SwiftDir's
// remote WP loads are the constant LLC latency everywhere.
func TestArchIndependentSecurity(t *testing.T) {
	for _, arch := range []CacheArch{VIPT, PIPT, VIVT} {
		cfg := DefaultConfig(2, coherence.SwiftDir)
		cfg.L1Arch = arch
		m := MustNewMachine(cfg)
		lib := mmu.NewFile("lib.so", 9)
		p1, p2 := m.NewProcess(), m.NewProcess()
		c1, c2 := p1.AttachContext(0), p2.AttachContext(1)
		b1 := p1.MmapLibrary(lib, 1<<16)
		b2 := p2.MmapLibrary(lib, 1<<16)

		c1.MustAccessSync(b1+0x1000, false, 0)
		c2.MustAccessSync(b2+0x1040, false, 0) // warm TLB
		r := c2.MustAccessSync(b2+0x1000, false, 0)
		if r.Served != coherence.ServedLLC {
			t.Errorf("%v: WP remote load served from %v, want LLC", arch, r.Served)
		}
		if !r.WP {
			t.Errorf("%v: WP bit lost", arch)
		}
		m.Quiesce()
		if err := m.CheckInvariants(); err != nil {
			t.Errorf("%v: %v", arch, err)
		}
	}
}

// VIVT's deferred miss penalty interacts correctly with MSHR merging: two
// accesses to one cold block still produce one memory fetch.
func TestVIVTMissPenaltyMerges(t *testing.T) {
	m := archMachine(t, VIVT, coherence.MESI, 1)
	p := m.NewProcess()
	ctx := p.AttachContext(0)
	heap := p.MmapAnon(1 << 16)
	done := 0
	for i := 0; i < 3; i++ {
		if err := ctx.Access(heap+mmu.VAddr(i*8), false, 0, func(coherence.AccessResult) { done++ }); err != nil {
			t.Fatal(err)
		}
	}
	m.Quiesce()
	if done != 3 {
		t.Fatalf("completions = %d", done)
	}
	if got := m.Sys.BankStatsTotal().MemFetches; got != 1 {
		t.Fatalf("mem fetches = %d, want 1", got)
	}
}
