package core_test

import (
	"fmt"

	"repro/internal/coherence"
	"repro/internal/core"
	"repro/internal/mmu"
)

// Example demonstrates the core API end to end: build a Table V machine,
// map a shared library into two processes, and observe SwiftDir serving
// the write-protected data with the constant LLC latency.
func Example() {
	m := core.MustNewMachine(core.DefaultConfig(2, coherence.SwiftDir))
	libc := mmu.NewFile("libc.so.6", 1)

	p1, p2 := m.NewProcess(), m.NewProcess()
	t1, t2 := p1.AttachContext(0), p2.AttachContext(1)
	b1 := p1.MmapLibrary(libc, 1<<20)
	b2 := p2.MmapLibrary(libc, 1<<20)

	t1.MustAccessSync(b1+0x1000, false, 0) // first toucher: I->S
	t2.MustAccessSync(b2+0x1040, false, 0) // warm t2's TLB
	r := t2.MustAccessSync(b2+0x1000, false, 0)

	fmt.Printf("write-protected: %v\n", r.WP)
	fmt.Printf("served from: %v in %d cycles\n", r.Served, r.Latency)
	// Output:
	// write-protected: true
	// served from: LLC in 17 cycles
}

// ExampleProcess_Fork shows fork(2)'s copy-on-write making the whole
// address space write-protected until first write.
func ExampleProcess_Fork() {
	m := core.MustNewMachine(core.DefaultConfig(2, coherence.SwiftDir))
	parent := m.NewProcess()
	ctx := parent.AttachContext(0)
	heap := parent.MmapAnon(mmu.PageSize)
	ctx.MustAccessSync(heap, true, 42) // dirty pre-fork

	child := parent.Fork()
	cctx := child.AttachContext(1)
	ctx.DTLB.Flush() // kernel shootdown

	r := cctx.MustAccessSync(heap, false, 0)
	fmt.Printf("child reads %d, write-protected: %v\n", r.Value, r.WP)

	w := cctx.MustAccessSync(heap, true, 99) // copy-on-write
	fmt.Printf("after CoW store, write-protected: %v\n", w.WP)
	pr := ctx.MustAccessSync(heap, false, 0)
	fmt.Printf("parent still reads %d\n", pr.Value)
	// Output:
	// child reads 42, write-protected: true
	// after CoW store, write-protected: false
	// parent still reads 42
}
