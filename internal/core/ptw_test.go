package core

import (
	"testing"

	"repro/internal/coherence"
	"repro/internal/mmu"
)

func ptwMachine(t *testing.T) *Machine {
	t.Helper()
	cfg := DefaultConfig(1, coherence.MESI)
	cfg.WalkThroughCaches = true
	m, err := NewMachine(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func TestWalkAddrsStructure(t *testing.T) {
	a := walkAddrs(0x40000000)
	b := walkAddrs(0x40000000 + mmu.PageSize) // neighbouring page
	// Levels 0-2 share entries with the neighbour (same 512-page group);
	// level 3 entries are 8 bytes apart, i.e. the same cache block.
	for l := 0; l < 3; l++ {
		if a[l] != b[l] {
			t.Fatalf("level %d entries differ for neighbouring pages", l)
		}
	}
	if b[3] != a[3]+8 {
		t.Fatalf("leaf entries not adjacent: %#x vs %#x", a[3], b[3])
	}
	// Distant pages use different leaf blocks.
	c := walkAddrs(0x40000000 + 512*mmu.PageSize)
	if c[3]>>6 == a[3]>>6 {
		t.Fatal("distant pages share a leaf PT block")
	}
}

// A cold TLB miss with the cache-coupled walker costs four memory-bound
// reads; a subsequent miss to a neighbouring page walks mostly out of the
// L1 and is much cheaper.
func TestWalkLocalityEffect(t *testing.T) {
	m := ptwMachine(t)
	p := m.NewProcess()
	ctx := p.AttachContext(0)
	heap := p.MmapAnon(1 << 20)

	// Pre-fault all pages functionally so page-fault latency doesn't
	// pollute the comparison, then flush the TLB to force walks.
	for i := 0; i < 64; i++ {
		if _, err := p.AS.Translate(heap+mmu.VAddr(i)*mmu.PageSize, false); err != nil {
			t.Fatal(err)
		}
	}
	ctx.DTLB.Flush()

	cold := ctx.MustAccessSync(heap, false, 0) // walk: 4 memory reads
	warmWalk := ctx.MustAccessSync(heap+mmu.PageSize, false, 0)

	if ctx.TLBWalks != 2 {
		t.Fatalf("walks = %d, want 2", ctx.TLBWalks)
	}
	if cold.Latency < 300 {
		t.Fatalf("cold walk latency %d suspiciously low (4 DRAM-bound reads expected)", cold.Latency)
	}
	if warmWalk.Latency >= cold.Latency/2 {
		t.Fatalf("neighbour walk %d not much cheaper than cold walk %d (PT caching broken)",
			warmWalk.Latency, cold.Latency)
	}
}

// TLB hits never touch the walker.
func TestWalkOnlyOnTLBMiss(t *testing.T) {
	m := ptwMachine(t)
	p := m.NewProcess()
	ctx := p.AttachContext(0)
	heap := p.MmapAnon(1 << 16)
	ctx.MustAccessSync(heap, false, 0)
	loadsBefore := m.Sys.L1s[0].Stats.Loads
	ctx.MustAccessSync(heap+8, false, 0) // TLB hit
	if got := m.Sys.L1s[0].Stats.Loads - loadsBefore; got != 1 {
		t.Fatalf("TLB-hit access issued %d loads, want 1 (no walk)", got)
	}
}

// The walker composes with the protocols: SwiftDir machines with the
// cache-coupled walker still pin shared WP data to S.
func TestWalkComposesWithSwiftDir(t *testing.T) {
	cfg := DefaultConfig(2, coherence.SwiftDir)
	cfg.WalkThroughCaches = true
	m := MustNewMachine(cfg)
	lib := mmu.NewFile("lib.so", 2)
	p1, p2 := m.NewProcess(), m.NewProcess()
	c1, c2 := p1.AttachContext(0), p2.AttachContext(1)
	b1 := p1.MmapLibrary(lib, 1<<16)
	b2 := p2.MmapLibrary(lib, 1<<16)
	c1.MustAccessSync(b1+0x1000, false, 0)
	c2.MustAccessSync(b2+0x1040, false, 0)
	r := c2.MustAccessSync(b2+0x1000, false, 0)
	if r.Served != coherence.ServedLLC || !r.WP {
		t.Fatalf("WP remote load under PTW: served=%v wp=%v", r.Served, r.WP)
	}
	m.Quiesce()
	if err := m.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestKSMDaemon(t *testing.T) {
	m := MustNewMachine(DefaultConfig(2, coherence.SwiftDir))
	p1, p2 := m.NewProcess(), m.NewProcess()
	c1 := p1.AttachContext(0)
	_ = p2.AttachContext(1)
	b1 := p1.MmapAnon(mmu.PageSize)
	b2 := p2.MmapAnon(mmu.PageSize)
	p1.AS.WritePage(b1, 0x5A)
	p2.AS.WritePage(b2, 0x5A)

	m.ScheduleKSMScans(1000, 3)
	m.Quiesce()
	if m.KSM.Scans != 3 {
		t.Fatalf("scans = %d, want 3", m.KSM.Scans)
	}
	if m.KSM.PagesMerged == 0 {
		t.Fatal("daemon merged nothing")
	}
	// Post-merge the page is write-protected (TLBs were flushed by the
	// daemon).
	r := c1.MustAccessSync(b1, false, 0)
	if !r.WP {
		t.Fatal("merged page not write-protected after daemon run")
	}
}
