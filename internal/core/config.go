// Package core assembles the full SwiftDir machine: CPU-facing contexts
// with per-core TLBs and address spaces (package mmu), the coherent cache
// hierarchy (package coherence), and the DRAM model (package dram), under
// the paper's Table V configuration. It is the public entry point the
// examples, the attack framework, and the benchmark harness build on.
package core

import (
	"fmt"
	"strings"

	"repro/internal/cache"
	"repro/internal/coherence"
	"repro/internal/dram"
	"repro/internal/fault"
	"repro/internal/sim"
)

// Config mirrors the paper's experiment setup (Table V) plus the
// translation-timing knobs the MMU substrate needs.
type Config struct {
	// Processor.
	Cores      int // 1..4 in the paper
	FreqGHz    float64
	ROBEntries int // out-of-order window (DerivO3CPU)
	LQEntries  int
	SQEntries  int
	Width      int // superscalar width

	// StoreDrainDepth bounds how many stores may have in-flight coherence
	// transactions at once. Stores still issue in program order (TSO
	// store->store ordering), but their completions may overlap, modeling
	// a store buffer with ownership pipelining.
	StoreDrainDepth int

	// Caches.
	L1     cache.Params // private L1 D-cache (per core)
	L1I    cache.Params // private L1 I-cache (per core)
	L2Bank cache.Params // one shared-L2 bank per core

	// TLBs.
	ITLBEntries int
	DTLBEntries int

	// L1Arch selects PIPT, VIPT (default), or VIVT L1 organization
	// (§IV-B); it changes when translation latency is charged and where
	// the R/W bit joins the access, never whether it arrives.
	L1Arch CacheArch

	// Translation timing (CPU cycles).
	TLBHitLatency      sim.Cycle // TLB lookup (hidden under indexing on VIPT)
	TLBMissWalkLatency sim.Cycle // page-table walk on TLB miss (fixed model)
	PageFaultLatency   sim.Cycle // demand-paging fault service
	CoWLatency         sim.Cycle // copy-on-write duplication

	// WalkThroughCaches replaces the fixed TLBMissWalkLatency with a
	// real radix walk: four dependent reads of page-table cache lines
	// issued through the core's L1, so walk cost depends on page-table
	// locality.
	WalkThroughCaches bool

	// FastCoWWrites implements the hardware direction the paper sketches
	// as future work (§II-B): treat a copy-on-write page fault as a write
	// miss and complete the store into a dedicated write buffer at a
	// small constant latency while the page duplication proceeds off the
	// critical path. Besides the speedup, this masks the write-timing
	// channel of deduplication attacks (writing a merged page is
	// otherwise an order of magnitude slower than writing a private one).
	FastCoWWrites bool

	// WriteBufferLatency is the constant store-completion cost under
	// FastCoWWrites.
	WriteBufferLatency sim.Cycle

	Timing   coherence.Timing
	Protocol coherence.Policy
	DRAM     dram.Config

	// Topology selects the interconnect model: "" or "crossbar" (the
	// paper's Table V machine), or "mesh" for a 2D mesh with XY
	// dimension-order routing whose latency grows with Manhattan
	// distance. Mesh dimensions derive from the core count (a near-square
	// W x H with W*H = Cores) unless MeshW/MeshH are set explicitly. A
	// core's D- and I-cache controllers and its LLC bank share the core's
	// tile; cluster hubs sit on their cluster's first tile.
	Topology     string
	MeshW, MeshH int

	// MeshPerHop is the per-link latency added on top of Timing.Hop per
	// Manhattan hop; MeshLinkOccupancy serializes each link at the given
	// cycles per message (0 = infinite link bandwidth; incompatible with
	// Shards > 1).
	MeshPerHop        sim.Cycle
	MeshLinkOccupancy sim.Cycle

	// Clusters > 1 organizes the directory hierarchically: the cores
	// partition into Clusters contiguous clusters, each with a hub
	// directory that tracks its locals exactly, while the home directory
	// tracks sharer clusters. Must divide Cores. Required beyond 32
	// cores — the flat directory addresses at most 64 L1 controllers and
	// each core contributes two (D and I).
	Clusters int

	// Prefetch selects the L1 next-line prefetcher mode (off by default;
	// see coherence.PrefetchMode for the naive mode's security hazard).
	Prefetch coherence.PrefetchMode

	// NoFastPath forces every access through the event engine, disabling
	// the synchronous L1-hit fast path (see DESIGN.md §5). Semantics and
	// statistics are identical either way; the knob exists for the
	// fast-vs-slow equivalence tests.
	NoFastPath bool

	// Shards selects the event-engine layout (DESIGN.md §5 "Parallel
	// discrete-event simulation"): 0 or 1 runs the machine on one
	// sequential engine; N > 1 shards the engines per core cluster, with
	// each core's D- and I-cache controllers pinned to the core's shard.
	// Results are byte-identical for every value — sharding changes
	// wall-clock simulation time only.
	Shards int

	// Prefault makes the workload runners fault in every mapped page
	// before the measured region (Machine.Prefault), removing page-fault
	// servicing from the timings and freezing the page tables. Combined
	// with Shards > 1 and NoFastPath it unlocks parallel epochs
	// (Machine.CanRunParallel); without it sharded machines run in
	// byte-identical sequential-stepping mode. Like any workload knob it
	// changes the measured timings, so compare runs with it held fixed.
	Prefault bool

	// Faults, if non-nil, attaches a deterministic timing-fault injector
	// to the hierarchy (DESIGN.md §7). Runtime-only: it does not
	// serialize with the configuration — replays reconstruct it from the
	// bundled fault plan. Nil costs a single pointer check per hook site.
	Faults *fault.Injector

	// Watchdog, when enabled, arms the engine's liveness watchdog: if the
	// configured event or cycle budget elapses with no architectural
	// progress (no L1 access completion), the machine panics with a
	// *fault.Violation carrying the full pending-event and transient-state
	// dump. Runtime-only, like Faults.
	Watchdog sim.WatchdogConfig

	// Cancel, if non-nil, arms cooperative cancellation on the machine's
	// engines: once the token fires (from any goroutine), the next
	// executed event aborts the run with a *fault.Violation of kind
	// "cancelled" carrying the full pending-event dump. Runtime-only,
	// like Faults.
	Cancel *sim.Cancel
}

// MeshDims returns the default near-square mesh for cores tiles:
// W = 2^ceil(k/2), H = 2^floor(k/2) for cores = 2^k, so W*H = cores and
// W/H <= 2.
func MeshDims(cores int) (w, h int) {
	w, h = 1, 1
	for w*h < cores {
		if w <= h {
			w *= 2
		} else {
			h *= 2
		}
	}
	return w, h
}

// DefaultScaledConfig returns the Table V machine scaled to large core
// counts: the same per-core resources, on a 2D mesh sized by MeshDims,
// with a two-level directory once the flat directory can no longer
// address the machine (cores > 32). Cluster size is capped at 8 cores
// (16 L1 controllers per hub), so invalidation fan-out stays bounded as
// the machine grows.
func DefaultScaledConfig(cores int, protocol coherence.Policy) Config {
	cfg := DefaultConfig(cores, protocol)
	cfg.Topology = "mesh"
	cfg.MeshW, cfg.MeshH = MeshDims(cores)
	cfg.MeshPerHop = 1
	if cores > 32 {
		cfg.Clusters = cores / 8
	}
	return cfg
}

// DefaultConfig returns the Table V machine with the given core count and
// protocol.
func DefaultConfig(cores int, protocol coherence.Policy) Config {
	return Config{
		Cores:           cores,
		FreqGHz:         3.0,
		ROBEntries:      192,
		LQEntries:       32,
		SQEntries:       32,
		Width:           8,
		StoreDrainDepth: 8,
		L1: cache.Params{
			Name: "L1D", SizeBytes: 32 << 10, Ways: 4, BlockSize: 64,
		},
		L1I: cache.Params{
			Name: "L1I", SizeBytes: 32 << 10, Ways: 4, BlockSize: 64,
		},
		L2Bank: cache.Params{
			Name: "L2", SizeBytes: 2 << 20, Ways: 16, BlockSize: 64,
		},
		ITLBEntries:        64,
		DTLBEntries:        64,
		L1Arch:             VIPT,
		TLBHitLatency:      1,
		TLBMissWalkLatency: 20,
		PageFaultLatency:   600,
		CoWLatency:         900,
		WriteBufferLatency: 4,
		Timing:             coherence.DefaultTiming(),
		Protocol:           protocol,
		DRAM:               dram.DDR3_1600_8x8(),
	}
}

// Validate checks the configuration.
func (c Config) Validate() error {
	if c.Cores <= 0 || c.Cores&(c.Cores-1) != 0 {
		return fmt.Errorf("core: cores %d must be a positive power of two (bank mapping)", c.Cores)
	}
	if c.Protocol == nil {
		return fmt.Errorf("core: nil protocol")
	}
	if c.ROBEntries <= 0 || c.LQEntries <= 0 || c.SQEntries <= 0 || c.Width <= 0 {
		return fmt.Errorf("core: non-positive pipeline parameter")
	}
	if c.StoreDrainDepth <= 0 {
		return fmt.Errorf("core: non-positive store drain depth")
	}
	if c.ITLBEntries <= 0 || c.DTLBEntries <= 0 {
		return fmt.Errorf("core: non-positive TLB size")
	}
	if c.Shards < 0 || c.Shards > 64 {
		return fmt.Errorf("core: shard count %d out of range [0,64]", c.Shards)
	}
	switch c.Topology {
	case "", "crossbar", "mesh":
	default:
		return fmt.Errorf("core: unknown topology %q", c.Topology)
	}
	if c.Clusters > 1 && c.Cores%c.Clusters != 0 {
		return fmt.Errorf("core: clusters %d does not divide cores %d", c.Clusters, c.Cores)
	}
	if c.Cores > 32 && c.Clusters <= 1 {
		return fmt.Errorf("core: %d cores need %d L1 ports, beyond the flat directory's 64; set Clusters", c.Cores, 2*c.Cores)
	}
	if err := c.L1.Validate(); err != nil {
		return err
	}
	if err := c.L1I.Validate(); err != nil {
		return err
	}
	return c.L2Bank.Validate()
}

// coherenceConfig derives the hierarchy configuration. Each core
// contributes two L1 controllers: port 2i is core i's D-cache and port
// 2i+1 its I-cache, both coherent peers of the banked LLC. When sharded,
// both of core i's controllers are pinned to the core's shard, so a
// core's ticks, translations, and L1 lookups all execute on one event
// queue and parallel epochs stay legal.
func (c Config) coherenceConfig() coherence.SystemConfig {
	cfg := coherence.SystemConfig{
		NumL1:      2 * c.Cores,
		L1Params:   c.L1,
		LLCParams:  c.L2Bank,
		Banks:      c.Cores,
		Timing:     c.Timing,
		Policy:     c.Protocol,
		DRAM:       c.DRAM,
		Prefetch:   c.Prefetch,
		NoFastPath: c.NoFastPath,
		Faults:     c.Faults,
		Shards:     c.Shards,
		Clusters:   c.Clusters,
	}
	if c.Topology == "mesh" {
		cfg.Topology = "mesh"
		cfg.MeshW, cfg.MeshH = c.MeshW, c.MeshH
		if cfg.MeshW == 0 || cfg.MeshH == 0 {
			cfg.MeshW, cfg.MeshH = MeshDims(c.Cores)
		}
		cfg.MeshPerHop = c.MeshPerHop
		cfg.MeshLinkOccupancy = c.MeshLinkOccupancy
	}
	if c.Shards > 1 {
		cfg.ShardOfL1 = make([]int, 2*c.Cores)
		for core := 0; core < c.Cores; core++ {
			sh := core * c.Shards / c.Cores
			cfg.ShardOfL1[2*core] = sh
			cfg.ShardOfL1[2*core+1] = sh
		}
	}
	return cfg
}

// Describe renders the configuration as the paper's Table V.
func (c Config) Describe() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Table V: Experiment Setup (%s)\n", c.Protocol.Name())
	fmt.Fprintf(&b, "  Processor    : %d core(s), %.1f GHz, out-of-order %d-entry ROB,\n",
		c.Cores, c.FreqGHz, c.ROBEntries)
	fmt.Fprintf(&b, "                 %d-entry LQ & %d-entry SQ, superscalar width: %d\n",
		c.LQEntries, c.SQEntries, c.Width)
	fmt.Fprintf(&b, "  Private L1   : %d-Byte block, %d-way, %d KB, RT latency: %d cycle(s)\n",
		c.L1.BlockSize, c.L1.Ways, c.L1.SizeBytes>>10, c.Timing.L1Tag)
	fmt.Fprintf(&b, "  Shared L2    : %d-Byte block, %d-way, %d-MB bank per core, RT latency: %d cycles\n",
		c.L2Bank.BlockSize, c.L2Bank.Ways, c.L2Bank.SizeBytes>>20,
		c.Timing.LLCTag+2*c.Timing.Hop)
	fmt.Fprintf(&b, "  TLB          : %d-entry ITB & %d-entry DTB, fully associative\n",
		c.ITLBEntries, c.DTLBEntries)
	fmt.Fprintf(&b, "  Memory       : DDR3_1600_8x8, %d channel, %d ranks, %d banks per rank,\n",
		c.DRAM.Channels, c.DRAM.Ranks, c.DRAM.BanksPerRank)
	fmt.Fprintf(&b, "                 %d KB row buffers, tCAS-tRCD-tRP: %d-%d-%d\n",
		c.DRAM.RowBytes>>10, c.DRAM.TCAS, c.DRAM.TRCD, c.DRAM.TRP)
	return b.String()
}
