package core

import (
	"strings"
	"testing"

	"repro/internal/coherence"
	"repro/internal/fault"
	"repro/internal/mmu"
	"repro/internal/sim"
)

// cancelWorkload drives a fixed stream of real memory accesses — the
// same shape as the healthy-watchdog run, so both the control and the
// cancelled machine execute an identical event schedule.
func cancelWorkload(m *Machine) {
	p := m.NewProcess()
	ctx := p.AttachContext(0)
	heap := p.MmapAnon(64 * 1024)
	for i := 0; i < 1_000; i++ {
		v := heap + mmu.VAddr((i%512)*64)
		ctx.MustAccessSync(v, i%3 == 0, uint64(i))
	}
	m.Quiesce()
}

// A token fired mid-run must abort the machine as a typed KindCancelled
// violation with the full diagnostic, having executed strictly fewer
// events than the identical uncancelled run — the cancellation analogue
// of the watchdog's liveness trip.
func TestMachineCancelAbortsMidRun(t *testing.T) {
	// Control: the full run, uncancelled.
	ctrl := MustNewMachine(DefaultConfig(1, coherence.SwiftDir))
	cancelWorkload(ctrl)
	total := ctrl.Sys.ExecutedEvents()
	horizon := ctrl.Now()
	if total == 0 || horizon == 0 {
		t.Fatalf("empty control run: %d events, %d cycles", total, horizon)
	}

	// Identical machine with a token that fires mid-run.
	tok := sim.NewCancel()
	cfg := DefaultConfig(1, coherence.SwiftDir)
	cfg.Cancel = tok
	m := MustNewMachine(cfg)
	m.Engine().Schedule(sim.Cycle(horizon/2), func() { tok.Request("client went away") })

	var recovered any
	func() {
		defer func() { recovered = recover() }()
		cancelWorkload(m)
	}()
	v := fault.AsViolation(recovered)
	if v == nil {
		t.Fatalf("recovered %v (%T), want *fault.Violation", recovered, recovered)
	}
	if v.Kind != fault.KindCancelled || v.Component != "cancel" {
		t.Errorf("violation = kind %q component %q, want cancelled/cancel", v.Kind, v.Component)
	}
	if !strings.Contains(v.Msg, "client went away") {
		t.Errorf("Msg = %q, want the request reason", v.Msg)
	}
	for _, frag := range []string{"-- cancellation pending snapshot --", "=== system state at cycle"} {
		if !strings.Contains(v.Dump, frag) {
			t.Errorf("dump missing %q", frag)
		}
	}
	got := m.Sys.ExecutedEvents()
	if got == 0 || got >= total {
		t.Errorf("cancelled run executed %d events, control %d; want 0 < got < control", got, total)
	}
}

// A machine built with no token must run the same workload to completion
// with nothing armed — cancellation is strictly opt-in.
func TestMachineCancelAbsentByDefault(t *testing.T) {
	m := MustNewMachine(DefaultConfig(1, coherence.MESI))
	cancelWorkload(m)
	if err := m.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

// An unfired token must be free: the armed run executes the exact same
// event count as the unarmed control.
func TestMachineCancelUnfiredIsByteIdentical(t *testing.T) {
	ctrl := MustNewMachine(DefaultConfig(1, coherence.MESI))
	cancelWorkload(ctrl)

	cfg := DefaultConfig(1, coherence.MESI)
	cfg.Cancel = sim.NewCancel()
	m := MustNewMachine(cfg)
	cancelWorkload(m)

	if m.Sys.ExecutedEvents() != ctrl.Sys.ExecutedEvents() || m.Now() != ctrl.Now() {
		t.Errorf("armed-but-unfired run diverged: %d events @%d vs control %d events @%d",
			m.Sys.ExecutedEvents(), m.Now(), ctrl.Sys.ExecutedEvents(), ctrl.Now())
	}
}
