package core

import (
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"strings"

	"repro/internal/cache"
	"repro/internal/mmu"
)

// ArchMemHash hashes the machine's architectural memory contents in
// virtual-address space: for every process in creation order, every
// faulted-in page, every block whose value has diverged from its initial
// token, it hashes (process index, virtual address, value). Keying by
// virtual rather than physical address makes the hash invariant under
// physical-frame assignment, which depends on demand-paging *order* —
// a timing artifact that fault injection legitimately perturbs in
// multithreaded runs. Two runs of the same workload under different
// timing-fault plans must produce identical hashes; that is the
// machine-level metamorphic oracle (internal/soak).
func (m *Machine) ArchMemHash() string {
	h := sha256.New()
	m.forEachArchValue(func(pi int, va mmu.VAddr, v uint64) {
		fmt.Fprintf(h, "%d %x %x\n", pi, uint64(va), v)
	})
	return hex.EncodeToString(h.Sum(nil))
}

// ArchMemDump renders the exact lines ArchMemHash hashes, one per block:
// "process virtual-address value". Diffing two dumps pinpoints which
// blocks moved when the soak oracle reports a hash divergence.
func (m *Machine) ArchMemDump() string {
	var b strings.Builder
	m.forEachArchValue(func(pi int, va mmu.VAddr, v uint64) {
		fmt.Fprintf(&b, "%d %x %x\n", pi, uint64(va), v)
	})
	return b.String()
}

// forEachArchValue visits the architectural memory image in canonical
// order: processes in creation order, pages ascending, blocks ascending.
func (m *Machine) forEachArchValue(visit func(pi int, va mmu.VAddr, v uint64)) {
	vals := m.Sys.MemValues()
	block := uint64(m.Cfg.L1.BlockSize)
	for pi, p := range m.processes {
		for _, vpn := range p.AS.MappedVPNs() {
			va := mmu.VAddr(vpn * mmu.PageSize)
			pte := p.AS.PTEOf(va)
			if pte == nil || !pte.Present {
				continue
			}
			base := pte.PFN * mmu.PageSize
			for off := uint64(0); off < mmu.PageSize; off += block {
				if v, ok := vals[cache.Addr(base+off)]; ok {
					visit(pi, va+mmu.VAddr(off), v)
				}
			}
		}
	}
}
