package proto

// Tri is a three-way policy feature knob whose meaning is local to each
// feature (see the Features fields).
type Tri uint8

const (
	TriNever Tri = iota
	TriAlways
	TriNoWP   // applies only to non-write-protected lines
	TriWPOnly // applies only to write-protected lines
)

// Features captures the policy axes that change the shape of the
// transition relation. Everything else (timings, grant payload details)
// lives in the action bodies and does not alter which pairs exist.
// Registered policies get their tables from featuresOf; Build lets an
// unregistered (experimental or fault-seeded) policy derive one from the
// same axes.
type Features struct {
	// WPLoads: write-protected loads use the dedicated GETS_WP request
	// kind (the SwiftDir family).
	WPLoads bool
	// HasE: the protocol grants Exclusive on unshared loads at all
	// (false collapses the design to MSI: no L1 E, no DirE).
	HasE bool
	// SilentE: a store hitting an E line upgrades silently to M
	// (TriAlways), goes through an explicit EM^A upgrade (TriNever), or
	// is silent only for non-write-protected lines (TriNoWP).
	SilentE Tri
	// LLCServeE: loads hitting DirE are served from the clean LLC copy
	// with a Downgrade to the owner, instead of a Fwd_GETS: never,
	// always (S-MESI), or only for write-protected blocks (SwiftDir-Ewp).
	LLCServeE Tri
	// Owned: dirty owners serve forwards without losing ownership
	// (MOESI: L1 O state, DirO directory state).
	Owned bool
	// Forward: the last requestor of shared data becomes the Forward
	// responder (MESIF): never, always, or only for non-write-protected
	// blocks (SwiftDir-MESIF).
	Forward Tri
}

// emaReachable: EM^A exists only when stores on E are not always silent.
func (f Features) emaReachable() bool { return f.HasE && f.SilentE != TriAlways }

// Build constructs a policy's full relation from its feature set in three
// passes: vocabulary (whole-column Impossible), reachability (whole-row
// Impossible), then the defined/defensive cells; finish() turns the
// remainder into Illegal.
func Build(name string, f Features) *Table {
	t := &Table{Policy: name}

	// --- vocabulary: events that never address each controller class.
	for e := EvGETS; e <= EvWBData; e++ {
		t.l1EventImpossible(e) // directory-bound kinds
	}
	t.dirEventImpossible(EvLoad)
	t.dirEventImpossible(EvStore)
	for e := EvData; e < NumEvents; e++ {
		t.dirEventImpossible(e) // L1-bound kinds
	}
	if !f.WPLoads {
		t.dirEventImpossible(EvGETSWP)
	}
	if f.LLCServeE == TriNever {
		t.l1EventImpossible(EvDowngrade)
	}

	// --- reachability: states the policy can never construct.
	if !f.HasE {
		t.l1RowImpossible(L1E)
		t.dirRowImpossible(DirE)
	}
	if !f.emaReachable() {
		t.l1RowImpossible(L1EMA)
	}
	if !f.Owned {
		t.l1RowImpossible(L1O)
		t.dirRowImpossible(DirO)
	}
	if f.Forward == TriNever {
		t.l1RowImpossible(L1F)
	}

	buildL1(t, f)
	buildDir(t, f)
	return t.finish()
}

// buildL1 fills the L1 half. Defensive cells are transitions the
// hand-written controllers tolerated without being part of the bounded
// model: fault-delayed or deeply raced deliveries that wider
// configurations could produce.
func buildL1(t *Table, f Features) {
	// live filters state rows by the policy's reachable state space (the
	// unreachable rows were already marked Impossible wholesale).
	live := func(s L1State) bool {
		switch s {
		case L1E:
			return f.HasE
		case L1O:
			return f.Owned
		case L1F:
			return f.Forward != TriNever
		case L1EMA:
			return f.emaReachable()
		}
		return true
	}
	transients := []L1State{L1ISD, L1IMD, L1SMA, L1EMA}
	stable := []L1State{L1S, L1E, L1M, L1O, L1F}

	// CPU examinations. A transient state merges into the MSHR; stable
	// states hit; I allocates a miss. The miss cell keeps I in its mask
	// for the deferred-translation stall (MissPenalty holds the access
	// before the MSHR allocates).
	t.l1(Defined, L1I, EvLoad, L1ActMiss, L1I, L1ISD)
	t.l1(Defined, L1I, EvStore, L1ActMiss, L1I, L1IMD)
	for _, s := range stable {
		if live(s) {
			t.l1(Defined, s, EvLoad, L1ActLoadHit, s)
		}
	}
	for _, s := range transients {
		if live(s) {
			t.l1(Defined, s, EvLoad, L1ActMerge, s)
			t.l1(Defined, s, EvStore, L1ActMerge, s)
		}
	}
	t.l1(Defined, L1M, EvStore, L1ActStoreHitM, L1M)
	if f.HasE {
		switch f.SilentE {
		case TriAlways:
			t.l1(Defined, L1E, EvStore, L1ActStoreHitE, L1M)
		case TriNever:
			t.l1(Defined, L1E, EvStore, L1ActStoreHitE, L1EMA)
		default: // TriNoWP: silent for plain lines, explicit for WP lines
			t.l1(Defined, L1E, EvStore, L1ActStoreHitE, L1M, L1EMA)
		}
	}
	t.l1(Defined, L1S, EvStore, L1ActStoreShared, L1SMA)
	if f.Owned {
		t.l1(Defined, L1O, EvStore, L1ActStoreShared, L1SMA)
	}
	if f.Forward != TriNever {
		t.l1(Defined, L1F, EvStore, L1ActStoreShared, L1SMA)
	}

	// Data responses. The install can stall on a fully pinned set (state
	// unchanged, retry scheduled), and completing a merged store can
	// carry the line onward (S grant -> SM^A upgrade, E grant -> M or
	// EM^A), so the masks close over the synchronous replay.
	sGrant := []L1State{L1ISD, L1S, L1SMA}
	if f.Forward != TriNever {
		sGrant = append(sGrant, L1F)
	}
	t.l1(Defined, L1ISD, EvData, L1ActData, sGrant...)
	t.l1(Defined, L1ISD, EvDataFromOwner, L1ActData, sGrant...)
	eGrant := []L1State{L1ISD, L1E}
	if f.SilentE != TriNever {
		eGrant = append(eGrant, L1M)
	}
	if f.emaReachable() {
		eGrant = append(eGrant, L1EMA)
	}
	exClass := Defined
	if !f.HasE {
		// MSI never grants E on a load, but the handler still installs
		// an exclusive payload sanely if one were ever delivered.
		exClass = Defensive
	}
	t.l1(exClass, L1ISD, EvDataExclusive, L1ActData, eGrant...)
	t.l1(Defined, L1IMD, EvDataExclusive, L1ActData, L1IMD, L1M)
	t.l1(Defined, L1IMD, EvDataFromOwner, L1ActData, L1IMD, L1M)
	// Deliveries the bounded model never produces but the handler
	// completes coherently (e.g. a shared grant for a store that merged
	// behind a load after a fault-injected delay).
	t.l1(Defensive, L1IMD, EvData, L1ActData, L1IMD, L1M)
	t.l1(Defensive, L1SMA, EvData, L1ActData, L1SMA, L1M)
	t.l1(Defensive, L1SMA, EvDataExclusive, L1ActData, L1SMA, L1M)
	t.l1(Defensive, L1SMA, EvDataFromOwner, L1ActData, L1SMA, L1M)
	if f.emaReachable() {
		t.l1(Defensive, L1EMA, EvData, L1ActData, L1EMA, L1M)
		t.l1(Defensive, L1EMA, EvDataExclusive, L1ActData, L1EMA, L1M)
		t.l1(Defensive, L1EMA, EvDataFromOwner, L1ActData, L1EMA, L1M)
	}

	// Upgrade acks complete the pending store.
	t.l1(Defined, L1SMA, EvUpgradeAck, L1ActUpgradeAck, L1M)
	if f.emaReachable() {
		t.l1(Defined, L1EMA, EvUpgradeAck, L1ActUpgradeAck, L1M)
	}

	// Invalidations. I sees Invs that crossed an eviction or landed
	// after a recall; SM^A demotes its upgrade to a full miss.
	t.l1(Defined, L1I, EvInv, L1ActInv, L1I)
	t.l1(Defined, L1S, EvInv, L1ActInv, L1I)
	if f.Owned {
		t.l1(Defined, L1O, EvInv, L1ActInv, L1I)
	}
	if f.Forward != TriNever {
		t.l1(Defined, L1F, EvInv, L1ActInv, L1I)
	}
	t.l1(Defined, L1ISD, EvInv, L1ActInv, L1ISD)
	t.l1(Defined, L1IMD, EvInv, L1ActInv, L1IMD)
	t.l1(Defined, L1SMA, EvInv, L1ActInv, L1IMD)

	// Forwarded loads. I/IS^D/IM^D answer from the writeback buffer (the
	// forward belongs to an eviction the re-miss overtook); an E hit is
	// unreachable when every DirE load is LLC-served.
	t.l1(Defined, L1I, EvFwdGETS, L1ActFwdGETS, L1I)
	t.l1(Defined, L1ISD, EvFwdGETS, L1ActFwdGETS, L1ISD)
	t.l1(Defined, L1IMD, EvFwdGETS, L1ActFwdGETS, L1IMD)
	if f.HasE {
		cl := Defined
		if f.LLCServeE == TriAlways {
			cl = Defensive
		}
		t.l1(cl, L1E, EvFwdGETS, L1ActFwdGETS, L1S)
	}
	if f.Owned {
		t.l1(Defined, L1M, EvFwdGETS, L1ActFwdGETS, L1O)
		t.l1(Defined, L1O, EvFwdGETS, L1ActFwdGETS, L1O)
	} else {
		t.l1(Defined, L1M, EvFwdGETS, L1ActFwdGETS, L1S)
	}
	if f.Forward != TriNever {
		t.l1(Defined, L1F, EvFwdGETS, L1ActFwdGETS, L1S)
	}
	if f.emaReachable() {
		t.l1(Defensive, L1EMA, EvFwdGETS, L1ActFwdGETS, L1SMA)
	}
	// A forwarded load can land while an SM^A upgrade is pending: the
	// MESIF forwarder and the MOESI owner serve it without disturbing
	// the upgrade. Other policies (and a plain S holder) reach a forward
	// only through a stale Fwd racing a still-buffered writeback of the
	// block's previous incarnation — served from the wb buffer.
	smaFwd := Defensive
	if f.Owned || f.Forward != TriNever {
		smaFwd = Defined
	}
	t.l1(smaFwd, L1SMA, EvFwdGETS, L1ActFwdGETS, L1SMA)
	t.l1(Defensive, L1S, EvFwdGETS, L1ActFwdGETS, L1S)

	// Forwarded stores surrender the block. A Forward copy is never the
	// Fwd_GETX target (sharers are invalidated instead), but the handler
	// would surrender it correctly.
	t.l1(Defined, L1I, EvFwdGETX, L1ActFwdGETX, L1I)
	t.l1(Defined, L1ISD, EvFwdGETX, L1ActFwdGETX, L1ISD)
	t.l1(Defined, L1IMD, EvFwdGETX, L1ActFwdGETX, L1IMD)
	if f.HasE {
		t.l1(Defined, L1E, EvFwdGETX, L1ActFwdGETX, L1I)
	}
	t.l1(Defined, L1M, EvFwdGETX, L1ActFwdGETX, L1I)
	if f.Owned {
		t.l1(Defined, L1O, EvFwdGETX, L1ActFwdGETX, L1I)
	}
	if f.Forward != TriNever {
		t.l1(Defensive, L1F, EvFwdGETX, L1ActFwdGETX, L1I)
	}
	if f.emaReachable() {
		t.l1(Defined, L1EMA, EvFwdGETX, L1ActFwdGETX, L1IMD)
	}
	// A forwarded store against a pending SM^A upgrade: the MOESI owner
	// surrenders its O copy and demotes the upgrade to a full store miss
	// (IM^D); a plain S holder only sees this as the stale-forward
	// writeback race above and keeps its upgrade pending.
	smaFwdX := Defensive
	if f.Owned {
		smaFwdX = Defined
	}
	t.l1(smaFwdX, L1SMA, EvFwdGETX, L1ActFwdGETX, L1SMA, L1IMD)
	t.l1(Defensive, L1S, EvFwdGETX, L1ActFwdGETX, L1S)

	// Downgrades (LLC-serve policies only). E demotes to S; EM^A demotes
	// its explicit upgrade to SM^A; elsewhere the serve raced an eviction
	// or upgrade that already changed the state and the demand is moot.
	if f.LLCServeE != TriNever {
		t.l1(Defined, L1I, EvDowngrade, L1ActDowngrade, L1I)
		t.l1(Defined, L1ISD, EvDowngrade, L1ActDowngrade, L1ISD)
		t.l1(Defined, L1IMD, EvDowngrade, L1ActDowngrade, L1IMD)
		t.l1(Defined, L1E, EvDowngrade, L1ActDowngrade, L1S)
		if f.emaReachable() {
			t.l1(Defined, L1EMA, EvDowngrade, L1ActDowngrade, L1SMA)
		}
		t.l1(Defensive, L1S, EvDowngrade, L1ActDowngrade, L1S)
		t.l1(Defensive, L1M, EvDowngrade, L1ActDowngrade, L1M)
		t.l1(Defensive, L1SMA, EvDowngrade, L1ActDowngrade, L1SMA)
		if f.Owned {
			t.l1(Defensive, L1O, EvDowngrade, L1ActDowngrade, L1O)
		}
		if f.Forward != TriNever {
			t.l1(Defensive, L1F, EvDowngrade, L1ActDowngrade, L1F)
		}
	}

	// Writeback acks release the wb buffer entry; the block state is
	// whatever the world moved on to. In the bounded model only I and
	// the re-miss transients are live when the ack lands.
	t.l1(Defined, L1I, EvWBAck, L1ActWBAck, L1I)
	t.l1(Defined, L1ISD, EvWBAck, L1ActWBAck, L1ISD)
	t.l1(Defined, L1IMD, EvWBAck, L1ActWBAck, L1IMD)
	for _, st := range []L1State{L1S, L1E, L1M, L1O, L1F, L1SMA, L1EMA} {
		if st == L1E && !f.HasE || st == L1O && !f.Owned ||
			st == L1F && f.Forward == TriNever ||
			st == L1EMA && !f.emaReachable() {
			continue
		}
		t.l1(Defensive, st, EvWBAck, L1ActWBAck, st)
	}
}

// buildDir fills the directory half. The directory's state space is
// flat: every open transaction is DirBusy, and completion events can
// replay queued requests, so their next masks admit everything.
func buildDir(t *Table, f Features) {
	loads := []Event{EvGETS}
	if f.WPLoads {
		loads = append(loads, EvGETSWP)
	}
	requests := append(append([]Event{}, loads...), EvGETX, EvUpgrade, EvPUTS, EvPUTX)

	// A busy block queues every request kind.
	for _, e := range requests {
		t.dir(Defined, DirBusy, e, DirActQueue, DirBusy)
	}

	for _, e := range loads {
		t.dir(Defined, DirI, e, DirActFetchLoad, DirBusy)
		t.dir(Defined, DirP, e, DirActGrantLoadP, DirBusy)
		t.dir(Defined, DirS, e, DirActLoadS, DirBusy)
		if f.HasE {
			t.dir(Defined, DirE, e, DirActLoadE, DirBusy)
		}
		t.dir(Defined, DirM, e, DirActLoadOwner, DirBusy)
		if f.Owned {
			t.dir(Defined, DirO, e, DirActLoadOwner, DirBusy)
		}
	}

	t.dir(Defined, DirI, EvGETX, DirActFetchStore, DirBusy)
	t.dir(Defined, DirP, EvGETX, DirActGrantStoreP, DirBusy)
	t.dir(Defined, DirS, EvGETX, DirActStoreS, DirBusy)
	if f.HasE {
		t.dir(Defined, DirE, EvGETX, DirActStoreOwner, DirBusy)
	}
	t.dir(Defined, DirM, EvGETX, DirActStoreOwner, DirBusy)
	if f.Owned {
		t.dir(Defined, DirO, EvGETX, DirActStoreO, DirBusy)
	}

	// Upgrades: a requestor the directory no longer records was recalled
	// or invalidated mid-flight; its upgrade resolves as a store miss.
	// An ack with no invalidations outstanding completes without opening
	// a transaction, so DirM stays in the masks.
	t.dir(Defined, DirI, EvUpgrade, DirActUpgradeMiss, DirBusy)
	t.dir(Defensive, DirP, EvUpgrade, DirActUpgradeMiss, DirBusy)
	t.dir(Defined, DirS, EvUpgrade, DirActUpgradeS, DirM, DirBusy)
	if f.HasE {
		t.dir(Defined, DirE, EvUpgrade, DirActUpgradeOwner, DirM, DirBusy)
	}
	t.dir(Defined, DirM, EvUpgrade, DirActUpgradeOwner, DirM, DirBusy)
	if f.Owned {
		t.dir(Defined, DirO, EvUpgrade, DirActUpgradeO, DirM, DirBusy)
	}

	// Eviction notices. PUTS at DirI is a notice for a recalled block
	// (nothing to clear, no ack — PUTS is fire-and-forget); PUTX always
	// acks so the evictor can release its writeback buffer entry.
	t.dir(Defined, DirI, EvPUTS, DirActPUTSStale, DirI)
	t.dir(Defined, DirP, EvPUTS, DirActPUTS, DirP)
	t.dir(Defined, DirS, EvPUTS, DirActPUTS, DirS, DirP)
	if f.HasE {
		t.dir(Defensive, DirE, EvPUTS, DirActPUTS, DirE)
	}
	t.dir(Defensive, DirM, EvPUTS, DirActPUTS, DirM)
	if f.Owned {
		t.dir(Defined, DirO, EvPUTS, DirActPUTS, DirO)
	}

	t.dir(Defined, DirI, EvPUTX, DirActPUTXStale, DirI)
	t.dir(Defensive, DirP, EvPUTX, DirActPUTX, DirP)
	t.dir(Defined, DirS, EvPUTX, DirActPUTX, DirS, DirP)
	if f.HasE {
		t.dir(Defined, DirE, EvPUTX, DirActPUTX, DirP, DirE)
	}
	t.dir(Defined, DirM, EvPUTX, DirActPUTX, DirP, DirM)
	if f.Owned {
		t.dir(Defined, DirO, EvPUTX, DirActPUTX, DirP, DirS)
	}

	// Completion traffic retires the in-flight transaction and replays
	// anything queued behind it, so any state can follow.
	t.dirMasked(Defined, DirBusy, EvUnblock, DirActUnblock, DirMaskAll())
	t.dirMasked(Defined, DirBusy, EvExclusiveUnblock, DirActUnblock, DirMaskAll())
	t.dirMasked(Defined, DirBusy, EvInvAck, DirActInvAck, DirMaskAll())
	t.dirMasked(Defined, DirBusy, EvWBData, DirActWBData, DirMaskAll())
	// A late Inv_Ack for a transaction that already completed is
	// tolerated (dropped) at every idle state.
	for _, s := range []DirState{DirI, DirP, DirS, DirE, DirM, DirO} {
		if s == DirE && !f.HasE || s == DirO && !f.Owned {
			continue
		}
		t.dir(Defensive, s, EvInvAck, DirActInvAckStale, s)
	}
}

// featuresOf maps each policy name to its feature set. The axes mirror
// the coherence.Policy interface; a linkage test on the coherence side
// asserts the two agree.
var featuresOf = map[string]Features{
	"MESI":           {HasE: true, SilentE: TriAlways},
	"SwiftDir":       {WPLoads: true, HasE: true, SilentE: TriAlways},
	"S-MESI":         {HasE: true, SilentE: TriNever, LLCServeE: TriAlways},
	"SwiftDir-Ewp":   {WPLoads: true, HasE: true, SilentE: TriNoWP, LLCServeE: TriWPOnly},
	"MOESI":          {HasE: true, SilentE: TriAlways, Owned: true},
	"SwiftDir-MOESI": {WPLoads: true, HasE: true, SilentE: TriAlways, Owned: true},
	"MESIF":          {HasE: true, SilentE: TriAlways, Forward: TriAlways},
	"SwiftDir-MESIF": {WPLoads: true, HasE: true, SilentE: TriAlways, Forward: TriNoWP},
	"MSI":            {},
	// Phase-priority arbitration reorders the directory's request queues;
	// the transition relation is exactly MESI's (queued replays are not
	// externally observable events).
	"Phase-Priority": {HasE: true, SilentE: TriAlways},
}

// tableNames is the registration order, for deterministic listings.
var tableNames = []string{
	"MESI", "SwiftDir", "S-MESI", "SwiftDir-Ewp",
	"MOESI", "SwiftDir-MOESI", "MESIF", "SwiftDir-MESIF", "MSI",
	"Phase-Priority",
}

var tables = func() map[string]*Table {
	m := make(map[string]*Table, len(tableNames))
	for _, name := range tableNames {
		m[name] = Build(name, featuresOf[name])
	}
	return m
}()

// TableFor returns the transition relation for a policy name, or nil if
// the policy has no registered table.
func TableFor(policy string) *Table {
	return tables[policy]
}

// Names returns every registered policy name in registration order.
func Names() []string {
	return append([]string(nil), tableNames...)
}
