// Package proto holds the canonical transition relation of every
// coherence protocol in this repository: one table per policy mapping
// (controller state, event) to a classification, a named action, and the
// set of admissible next states.
//
// The tables are the single source of truth for protocol structure. The
// runtime controllers (internal/coherence) dispatch by table lookup —
// the action names here select the hand-tuned handler bodies, and an
// unclassified or forbidden pair raises a typed protocol violation
// instead of falling through a silent default. The model checker
// (internal/mcheck) checks every observed pair for membership in the
// same tables and validates post-dispatch states against the next-state
// masks. What the simulator executes and what the checker verifies can
// therefore no longer drift apart.
//
// The package is pure data: it imports nothing from the rest of the
// repository, and the enum orders deliberately mirror cache.LineState,
// coherence.DirState and coherence.MsgKind so the controllers convert
// with a cast (asserted by tests on the coherence side).
package proto

import "fmt"

// L1State is an L1 controller's per-block protocol state: the stable
// line states in cache.LineState order, then the MSHR transient states
// in coherence.Transient order.
type L1State uint8

const (
	L1I L1State = iota // not resident, no outstanding transaction
	L1S
	L1E
	L1M
	L1O
	L1F
	L1ISD // IS^D: I->S/E, waiting for data
	L1IMD // IM^D: I->M, waiting for exclusive data
	L1SMA // SM^A: S->M, waiting for the upgrade ack
	L1EMA // EM^A: E->M, waiting for the upgrade ack (explicit-upgrade policies)

	NumL1States
)

var l1StateNames = [NumL1States]string{
	"I", "S", "E", "M", "O", "F", "IS^D", "IM^D", "SM^A", "EM^A",
}

func (s L1State) String() string {
	if s < NumL1States {
		return l1StateNames[s]
	}
	return fmt.Sprintf("L1State(%d)", uint8(s))
}

// DirState is the directory's per-block state: the stable entry states
// in coherence.DirState order, plus DirBusy for a block with an
// in-flight blocking transaction.
type DirState uint8

const (
	DirI DirState = iota // no directory entry (block not LLC-resident)
	DirP                 // present in the LLC only
	DirS                 // one or more L1 sharers
	DirE                 // one L1 granted Exclusive (may have silently upgraded)
	DirM                 // one L1 known Modified
	DirO                 // MOESI: one dirty L1 owner plus sharers; LLC stale
	DirBusy              // blocking transaction in flight; requests queue

	NumDirStates
)

var dirStateNames = [NumDirStates]string{
	"DirI", "DirP", "DirS", "DirE", "DirM", "DirO", "DirBusy",
}

func (s DirState) String() string {
	if s < NumDirStates {
		return dirStateNames[s]
	}
	return fmt.Sprintf("DirState(%d)", uint8(s))
}

// Event is anything that can drive a controller transition: a CPU
// examination (Load/Store), then every message kind in coherence.MsgKind
// order. The names match MsgKind.String() exactly (asserted on the
// coherence side) so relation entries and message traces read alike.
type Event uint8

const (
	EvLoad Event = iota
	EvStore

	EvGETS
	EvGETSWP
	EvGETX
	EvUpgrade
	EvPUTS
	EvPUTX
	EvUnblock
	EvExclusiveUnblock
	EvInvAck
	EvWBData

	EvData
	EvDataExclusive
	EvUpgradeAck
	EvInv
	EvFwdGETS
	EvFwdGETX
	EvDowngrade
	EvWBAck
	EvDataFromOwner

	NumEvents
)

var eventNames = [NumEvents]string{
	"Load", "Store",
	"GETS", "GETS_WP", "GETX", "Upgrade", "PUTS", "PUTX",
	"Unblock", "Exclusive_Unblock", "Inv_Ack", "WB_Data",
	"Data", "Data_Exclusive", "Upgrade_ACK", "Inv",
	"Fwd_GETS", "Fwd_GETX", "Downgrade", "WB_Ack", "Data_From_Owner",
}

func (e Event) String() string {
	if e < NumEvents {
		return eventNames[e]
	}
	return fmt.Sprintf("Event(%d)", uint8(e))
}

// Class classifies one (state, event) pair.
type Class uint8

const (
	// Unclassified pairs exist only inside the table builder; a finished
	// table contains none (the completeness test proves it).
	Unclassified Class = iota

	// Defined: part of the protocol's transition relation. Dispatch runs
	// the action; the model checker expects the pair and validates the
	// post-dispatch state against Next.
	Defined

	// Defensive: outside the bounded-model relation, but the controller
	// handles it gracefully because wider configurations (deeper queues,
	// injected delays) could produce it — e.g. a fault-delayed WB_Ack
	// landing after the block was re-fetched. Dispatch runs the action;
	// the model checker still reports the pair as an unexpected
	// transition if its bounded exploration ever reaches one.
	Defensive

	// Impossible: structurally undeliverable — the event kind never
	// addresses this controller, is outside the policy's message
	// vocabulary, or the state row is unreachable under the policy.
	// Dispatch raises a protocol violation.
	Impossible

	// Illegal: deliverable in principle, but the protocol forbids it in
	// this state. Dispatch raises a protocol violation (the typed
	// fault.Violation the old hand-written default cases raised).
	Illegal
)

func (c Class) String() string {
	switch c {
	case Unclassified:
		return "unclassified"
	case Defined:
		return "defined"
	case Defensive:
		return "defensive"
	case Impossible:
		return "impossible"
	case Illegal:
		return "illegal"
	}
	return fmt.Sprintf("Class(%d)", uint8(c))
}

// L1Action names the handler an L1 controller runs for a defined or
// defensive pair. The bodies live in internal/coherence; the table only
// selects among them.
type L1Action uint8

const (
	L1ActNone L1Action = iota // illegal/impossible pairs carry no action

	L1ActLoadHit      // stable-state load hit: complete from the line
	L1ActStoreHitM    // store hit on M: write in place
	L1ActStoreHitE    // store hit on E: silent upgrade or explicit EM^A (policy)
	L1ActStoreShared  // store on S/O/F: Upgrade round trip via SM^A
	L1ActMiss         // no line, no MSHR: allocate and request
	L1ActMerge        // outstanding MSHR: append to pending
	L1ActData         // data response: install, grant, complete, unblock
	L1ActUpgradeAck   // upgrade ack: line to M, complete the store
	L1ActInv          // invalidation demand: drop the copy, ack
	L1ActFwdGETS      // serve a forwarded load (line or writeback buffer)
	L1ActFwdGETX      // surrender the block to a forwarded store
	L1ActDowngrade    // E->S demotion after an LLC serve
	L1ActWBAck        // eviction acknowledged: release the wb buffer entry

	NumL1Actions
)

var l1ActionNames = [NumL1Actions]string{
	"None", "LoadHit", "StoreHitM", "StoreHitE", "StoreShared", "Miss",
	"Merge", "Data", "UpgradeAck", "Inv", "FwdGETS", "FwdGETX",
	"Downgrade", "WBAck",
}

func (a L1Action) String() string {
	if a < NumL1Actions {
		return l1ActionNames[a]
	}
	return fmt.Sprintf("L1Action(%d)", uint8(a))
}

// DirAction names the handler a directory bank runs for a defined or
// defensive pair.
type DirAction uint8

const (
	DirActNone DirAction = iota

	DirActQueue        // busy block: queue the request behind the transaction
	DirActFetchLoad    // DirI load: fetch from memory, then grant
	DirActFetchStore   // DirI store: fetch from memory, then grant exclusively
	DirActGrantLoadP   // DirP load: grant from the LLC
	DirActGrantStoreP  // DirP store: grant exclusively from the LLC
	DirActLoadS        // DirS load: forwarder serve (MESIF) or LLC serve
	DirActLoadE        // DirE load: LLC serve + Downgrade, or forward (policy)
	DirActLoadOwner    // DirM/DirO load: forward to the owner
	DirActStoreS       // DirS store: invalidate sharers, grant on last ack
	DirActStoreOwner   // DirE/DirM store: hand ownership via Fwd_GETX
	DirActStoreO       // DirO store: forward to owner + invalidate sharers
	DirActUpgradeMiss  // Upgrade with no usable record: resolve as a store miss
	DirActUpgradeS     // DirS upgrade: ack a sharer (or resolve as store miss)
	DirActUpgradeOwner // DirE/DirM upgrade: ack the owner (or store miss)
	DirActUpgradeO     // DirO upgrade: ack owner or sharer (or store miss)
	DirActPUTS         // sharer eviction notice: clear the sharer bit
	DirActPUTSStale    // PUTS for a recalled block: nothing left to clear
	DirActPUTX         // owner/forwarder eviction: absorb data, ack
	DirActPUTXStale    // PUTX for a recalled block: commit to memory, ack
	DirActUnblock      // completion: requestor installed its grant
	DirActInvAck       // completion: one invalidation acknowledged
	DirActInvAckStale  // late ack for an already-completed transaction
	DirActWBData       // completion: owner's copy absorbed after a forward

	NumDirActions
)

var dirActionNames = [NumDirActions]string{
	"None", "Queue", "FetchLoad", "FetchStore", "GrantLoadP", "GrantStoreP",
	"LoadS", "LoadE", "LoadOwner", "StoreS", "StoreOwner", "StoreO",
	"UpgradeMiss", "UpgradeS", "UpgradeOwner", "UpgradeO",
	"PUTS", "PUTSStale", "PUTX", "PUTXStale",
	"Unblock", "InvAck", "InvAckStale", "WBData",
}

func (a DirAction) String() string {
	if a < NumDirActions {
		return dirActionNames[a]
	}
	return fmt.Sprintf("DirAction(%d)", uint8(a))
}

// L1Entry is one cell of the L1 half of a table.
type L1Entry struct {
	Class Class
	Act   L1Action
	Next  uint16 // bitmask over L1State: admissible post-dispatch states
}

// DirEntry is one cell of the directory half of a table.
type DirEntry struct {
	Class Class
	Act   DirAction
	Next  uint16 // bitmask over DirState: admissible post-dispatch states
}

// Table is one policy's complete transition relation: a fixed array per
// controller class, indexed by state and event enums. Lookup is a pair
// of array indexings — no maps, no allocation — so the runtime
// controllers dispatch from it on their hot paths.
type Table struct {
	Policy string
	L1     [NumL1States][NumEvents]L1Entry
	Dir    [NumDirStates][NumEvents]DirEntry
}

// L1Mask builds a next-state bitmask.
func L1Mask(states ...L1State) uint16 {
	var m uint16
	for _, s := range states {
		m |= 1 << s
	}
	return m
}

// DirMask builds a next-state bitmask.
func DirMask(states ...DirState) uint16 {
	var m uint16
	for _, s := range states {
		m |= 1 << s
	}
	return m
}

// DirMaskAll admits every directory state (completion events retire
// transactions and replay queued work, so any state can follow).
func DirMaskAll() uint16 { return 1<<NumDirStates - 1 }

// HasL1 reports whether mask admits s.
func HasL1(mask uint16, s L1State) bool { return mask&(1<<s) != 0 }

// HasDir reports whether mask admits s.
func HasDir(mask uint16, s DirState) bool { return mask&(1<<s) != 0 }

// Counts tallies the table's classifications over both controller
// halves, for reports and the -policy listing.
func (t *Table) Counts() (defined, defensive, impossible, illegal int) {
	bump := func(c Class) {
		switch c {
		case Defined:
			defined++
		case Defensive:
			defensive++
		case Impossible:
			impossible++
		case Illegal:
			illegal++
		}
	}
	for s := L1State(0); s < NumL1States; s++ {
		for e := Event(0); e < NumEvents; e++ {
			bump(t.L1[s][e].Class)
		}
	}
	for s := DirState(0); s < NumDirStates; s++ {
		for e := Event(0); e < NumEvents; e++ {
			bump(t.Dir[s][e].Class)
		}
	}
	return
}

// --- builder -------------------------------------------------------------

// l1 classifies one L1 cell. Re-classifying a cell is a builder bug.
func (t *Table) l1(c Class, s L1State, e Event, act L1Action, next ...L1State) {
	cell := &t.L1[s][e]
	if cell.Class != Unclassified {
		panic(fmt.Sprintf("proto: %s: L1[%s][%s] classified twice", t.Policy, s, e))
	}
	*cell = L1Entry{Class: c, Act: act, Next: L1Mask(next...)}
}

// dir classifies one directory cell.
func (t *Table) dir(c Class, s DirState, e Event, act DirAction, next ...DirState) {
	cell := &t.Dir[s][e]
	if cell.Class != Unclassified {
		panic(fmt.Sprintf("proto: %s: Dir[%s][%s] classified twice", t.Policy, s, e))
	}
	*cell = DirEntry{Class: c, Act: act, Next: DirMask(next...)}
}

// dirMasked is dir with an explicit next mask (for DirMaskAll entries).
func (t *Table) dirMasked(c Class, s DirState, e Event, act DirAction, mask uint16) {
	cell := &t.Dir[s][e]
	if cell.Class != Unclassified {
		panic(fmt.Sprintf("proto: %s: Dir[%s][%s] classified twice", t.Policy, s, e))
	}
	*cell = DirEntry{Class: c, Act: act, Next: mask}
}

// l1EventImpossible marks an entire event column undeliverable at the L1
// (directory-bound kinds, or kinds outside the policy's vocabulary).
func (t *Table) l1EventImpossible(e Event) {
	for s := L1State(0); s < NumL1States; s++ {
		if t.L1[s][e].Class == Unclassified {
			t.L1[s][e] = L1Entry{Class: Impossible}
		}
	}
}

// dirEventImpossible marks an entire event column undeliverable at the
// directory.
func (t *Table) dirEventImpossible(e Event) {
	for s := DirState(0); s < NumDirStates; s++ {
		if t.Dir[s][e].Class == Unclassified {
			t.Dir[s][e] = DirEntry{Class: Impossible}
		}
	}
}

// l1RowImpossible marks a state row unreachable under the policy.
func (t *Table) l1RowImpossible(s L1State) {
	for e := Event(0); e < NumEvents; e++ {
		if t.L1[s][e].Class == Unclassified {
			t.L1[s][e] = L1Entry{Class: Impossible}
		}
	}
}

// dirRowImpossible marks a state row unreachable under the policy.
func (t *Table) dirRowImpossible(s DirState) {
	for e := Event(0); e < NumEvents; e++ {
		if t.Dir[s][e].Class == Unclassified {
			t.Dir[s][e] = DirEntry{Class: Impossible}
		}
	}
}

// finish converts every still-unclassified cell to Illegal: the event is
// deliverable (its column survived the vocabulary pass) and the state is
// reachable (its row survived the reachability pass), but no transition
// is defined — exactly the pairs the hand-written controllers answered
// with a protocol-violation panic. After finish a table is total.
func (t *Table) finish() *Table {
	for s := L1State(0); s < NumL1States; s++ {
		for e := Event(0); e < NumEvents; e++ {
			if t.L1[s][e].Class == Unclassified {
				t.L1[s][e] = L1Entry{Class: Illegal}
			}
		}
	}
	for s := DirState(0); s < NumDirStates; s++ {
		for e := Event(0); e < NumEvents; e++ {
			if t.Dir[s][e].Class == Unclassified {
				t.Dir[s][e] = DirEntry{Class: Illegal}
			}
		}
	}
	return t
}
