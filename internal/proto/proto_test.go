package proto

import (
	"fmt"
	"sort"
	"strings"
	"testing"
)

// TestTablesTotal is the table-completeness proof: every (state, event)
// pair of every registered policy is classified — a defined transition,
// a defensively handled delivery, a structurally impossible pair, or an
// illegal pair that dispatch answers with a typed violation. No cell is
// left unclassified, and the classification determines exactly whether
// the cell carries an action and a next-state mask.
func TestTablesTotal(t *testing.T) {
	for _, name := range Names() {
		tab := TableFor(name)
		if tab == nil {
			t.Fatalf("%s: no table", name)
		}
		for s := L1State(0); s < NumL1States; s++ {
			for e := Event(0); e < NumEvents; e++ {
				checkCell(t, name, fmt.Sprintf("L1[%v][%v]", s, e),
					tab.L1[s][e].Class, tab.L1[s][e].Act != L1ActNone,
					tab.L1[s][e].Next)
			}
		}
		for s := DirState(0); s < NumDirStates; s++ {
			for e := Event(0); e < NumEvents; e++ {
				checkCell(t, name, fmt.Sprintf("Dir[%v][%v]", s, e),
					tab.Dir[s][e].Class, tab.Dir[s][e].Act != DirActNone,
					tab.Dir[s][e].Next)
			}
		}
	}
}

func checkCell(t *testing.T, policy, cell string, c Class, hasAct bool, next uint16) {
	t.Helper()
	switch c {
	case Defined, Defensive:
		if !hasAct {
			t.Errorf("%s: %s is %v but has no action", policy, cell, c)
		}
		if next == 0 {
			t.Errorf("%s: %s is %v but has an empty next-state mask", policy, cell, c)
		}
	case Impossible, Illegal:
		if hasAct || next != 0 {
			t.Errorf("%s: %s is %v but carries an action or mask", policy, cell, c)
		}
	default:
		t.Errorf("%s: %s is unclassified", policy, cell)
	}
}

// TestActionsInRange: every action index a table cell carries is a real
// enum value (guards against a skew between the tables and the hook
// arrays the controllers index with them).
func TestActionsInRange(t *testing.T) {
	for _, name := range Names() {
		tab := TableFor(name)
		for s := L1State(0); s < NumL1States; s++ {
			for e := Event(0); e < NumEvents; e++ {
				if a := tab.L1[s][e].Act; a >= NumL1Actions {
					t.Errorf("%s: L1[%v][%v] action %d out of range", name, s, e, a)
				}
			}
		}
		for s := DirState(0); s < NumDirStates; s++ {
			for e := Event(0); e < NumEvents; e++ {
				if a := tab.Dir[s][e].Act; a >= NumDirActions {
					t.Errorf("%s: Dir[%v][%v] action %d out of range", name, s, e, a)
				}
			}
		}
	}
}

// definedSet renders a table's Defined relation as sorted "Ctrl state ev"
// strings for comparison against the pinned paper relations.
func definedSet(tab *Table) []string {
	var out []string
	for s := L1State(0); s < NumL1States; s++ {
		for e := Event(0); e < NumEvents; e++ {
			if tab.L1[s][e].Class == Defined {
				out = append(out, fmt.Sprintf("L1 %v %v", s, e))
			}
		}
	}
	for s := DirState(0); s < NumDirStates; s++ {
		for e := Event(0); e < NumEvents; e++ {
			if tab.Dir[s][e].Class == Defined {
				out = append(out, fmt.Sprintf("Dir %v %v", s, e))
			}
		}
	}
	sort.Strings(out)
	return out
}

// legacyRelations pins the Defined relation of the three paper policies
// to the exact (state, event) sets the model checker shipped with before
// the tables moved here (internal/mcheck/table.go at PR 4). The builder
// must reproduce them verbatim: mcheck's unexpected-transition check and
// its coverage allowlists are calibrated against these sets.
var legacyRelations = map[string][]string{
	"MESI": {
		"L1 I: Load Store Inv Fwd_GETS Fwd_GETX WB_Ack",
		"L1 S: Load Store Inv",
		"L1 E: Load Store Fwd_GETS Fwd_GETX",
		"L1 M: Load Store Fwd_GETS Fwd_GETX",
		"L1 IS^D: Load Store Data Data_Exclusive Data_From_Owner Inv WB_Ack Fwd_GETS Fwd_GETX",
		"L1 IM^D: Load Store Data_Exclusive Data_From_Owner Inv WB_Ack Fwd_GETS Fwd_GETX",
		"L1 SM^A: Load Store Upgrade_ACK Inv",
		"Dir DirI: GETS GETX Upgrade PUTS PUTX",
		"Dir DirP: GETS GETX PUTS",
		"Dir DirS: GETS GETX Upgrade PUTS PUTX",
		"Dir DirE: GETS GETX Upgrade PUTX",
		"Dir DirM: GETS GETX Upgrade PUTX",
		"Dir DirBusy: GETS GETX Upgrade PUTS PUTX Unblock Exclusive_Unblock Inv_Ack WB_Data",
	},
	"SwiftDir": {
		"L1 I: Load Store Inv Fwd_GETS Fwd_GETX WB_Ack",
		"L1 S: Load Store Inv",
		"L1 E: Load Store Fwd_GETS Fwd_GETX",
		"L1 M: Load Store Fwd_GETS Fwd_GETX",
		"L1 IS^D: Load Store Data Data_Exclusive Data_From_Owner Inv WB_Ack Fwd_GETS Fwd_GETX",
		"L1 IM^D: Load Store Data_Exclusive Data_From_Owner Inv WB_Ack Fwd_GETS Fwd_GETX",
		"L1 SM^A: Load Store Upgrade_ACK Inv",
		"Dir DirI: GETS GETS_WP GETX Upgrade PUTS PUTX",
		"Dir DirP: GETS GETS_WP GETX PUTS",
		"Dir DirS: GETS GETS_WP GETX Upgrade PUTS PUTX",
		"Dir DirE: GETS GETS_WP GETX Upgrade PUTX",
		"Dir DirM: GETS GETS_WP GETX Upgrade PUTX",
		"Dir DirBusy: GETS GETS_WP GETX Upgrade PUTS PUTX Unblock Exclusive_Unblock Inv_Ack WB_Data",
	},
	"S-MESI": {
		"L1 I: Load Store Inv Fwd_GETS Fwd_GETX WB_Ack Downgrade",
		"L1 S: Load Store Inv",
		"L1 E: Load Store Fwd_GETX Downgrade",
		"L1 M: Load Store Fwd_GETS Fwd_GETX",
		"L1 IS^D: Load Store Data Data_Exclusive Data_From_Owner Inv WB_Ack Fwd_GETS Fwd_GETX Downgrade",
		"L1 IM^D: Load Store Data_Exclusive Data_From_Owner Inv WB_Ack Fwd_GETS Fwd_GETX Downgrade",
		"L1 SM^A: Load Store Upgrade_ACK Inv",
		"L1 EM^A: Load Store Upgrade_ACK Fwd_GETX Downgrade",
		"Dir DirI: GETS GETX Upgrade PUTS PUTX",
		"Dir DirP: GETS GETX PUTS",
		"Dir DirS: GETS GETX Upgrade PUTS PUTX",
		"Dir DirE: GETS GETX Upgrade PUTX",
		"Dir DirM: GETS GETX Upgrade PUTX",
		"Dir DirBusy: GETS GETX Upgrade PUTS PUTX Unblock Exclusive_Unblock Inv_Ack WB_Data",
	},
}

func expandLegacy(lines []string) []string {
	var out []string
	for _, ln := range lines {
		head, evs, ok := strings.Cut(ln, ": ")
		if !ok {
			panic("bad legacy line: " + ln)
		}
		ctrl, state, ok := strings.Cut(head, " ")
		if !ok {
			panic("bad legacy head: " + head)
		}
		for _, ev := range strings.Fields(evs) {
			out = append(out, fmt.Sprintf("%s %s %s", ctrl, state, ev))
		}
	}
	sort.Strings(out)
	return out
}

// TestLegacyRelationsPreserved proves the feature-driven builder emits
// byte-for-byte the relation the hand-maintained mcheck tables encoded
// for MESI, SwiftDir and S-MESI.
func TestLegacyRelationsPreserved(t *testing.T) {
	for name, lines := range legacyRelations {
		want := expandLegacy(lines)
		got := definedSet(TableFor(name))
		if len(got) != len(want) {
			t.Errorf("%s: %d defined pairs, legacy had %d", name, len(got), len(want))
		}
		wantSet := make(map[string]bool, len(want))
		for _, p := range want {
			wantSet[p] = true
		}
		gotSet := make(map[string]bool, len(got))
		for _, p := range got {
			gotSet[p] = true
		}
		for _, p := range want {
			if !gotSet[p] {
				t.Errorf("%s: legacy pair %q missing from the built table", name, p)
			}
		}
		for _, p := range got {
			if !wantSet[p] {
				t.Errorf("%s: built table defines %q, absent from the legacy relation", name, p)
			}
		}
	}
}

// TestPhasePriorityRelationIsMESI: arbitration only reorders the
// directory's pending queues; queued replays are not observable events,
// so the relation must be exactly MESI's.
func TestPhasePriorityRelationIsMESI(t *testing.T) {
	mesi := definedSet(TableFor("MESI"))
	pp := definedSet(TableFor("Phase-Priority"))
	if len(mesi) != len(pp) {
		t.Fatalf("Phase-Priority defines %d pairs, MESI %d", len(pp), len(mesi))
	}
	for i := range mesi {
		if mesi[i] != pp[i] {
			t.Fatalf("relation diverges: MESI has %q, Phase-Priority %q", mesi[i], pp[i])
		}
	}
}

// TestLookupAllocationFree pins the hot-path property the controllers
// rely on: a table lookup is two array indexings, no map access, no
// allocation.
func TestLookupAllocationFree(t *testing.T) {
	tab := TableFor("SwiftDir")
	var sink uint64
	n := testing.AllocsPerRun(1000, func() {
		for s := L1State(0); s < NumL1States; s++ {
			e := tab.L1[s][EvStore]
			sink += uint64(e.Next) + uint64(e.Act)
		}
		for s := DirState(0); s < NumDirStates; s++ {
			e := tab.Dir[s][EvGETX]
			sink += uint64(e.Next) + uint64(e.Act)
		}
	})
	if n != 0 {
		t.Fatalf("table lookup allocates (%v allocs/run)", n)
	}
	_ = sink
}

// TestMaskHelpers sanity-checks the bitmask helpers the checker uses.
func TestMaskHelpers(t *testing.T) {
	m := L1Mask(L1I, L1SMA)
	if !HasL1(m, L1I) || !HasL1(m, L1SMA) || HasL1(m, L1M) {
		t.Fatal("L1Mask/HasL1 broken")
	}
	d := DirMask(DirP, DirBusy)
	if !HasDir(d, DirP) || !HasDir(d, DirBusy) || HasDir(d, DirM) {
		t.Fatal("DirMask/HasDir broken")
	}
	all := DirMaskAll()
	for s := DirState(0); s < NumDirStates; s++ {
		if !HasDir(all, s) {
			t.Fatalf("DirMaskAll missing %v", s)
		}
	}
}

// TestNames: the registry is stable, complete, and nil for strangers.
func TestNames(t *testing.T) {
	names := Names()
	if len(names) != 10 {
		t.Fatalf("expected 10 registered policies, got %d: %v", len(names), names)
	}
	seen := make(map[string]bool)
	for _, n := range names {
		if seen[n] {
			t.Fatalf("duplicate policy name %q", n)
		}
		seen[n] = true
		if TableFor(n) == nil {
			t.Fatalf("TableFor(%q) = nil", n)
		}
		if TableFor(n).Policy != n {
			t.Fatalf("TableFor(%q).Policy = %q", n, TableFor(n).Policy)
		}
	}
	if TableFor("MOESIFZ") != nil {
		t.Fatal("TableFor should return nil for unregistered policies")
	}
}

// TestCounts: classification totals cover the whole space.
func TestCounts(t *testing.T) {
	total := int(NumL1States)*int(NumEvents) + int(NumDirStates)*int(NumEvents)
	for _, name := range Names() {
		def, dfn, imp, ill := TableFor(name).Counts()
		if def+dfn+imp+ill != total {
			t.Errorf("%s: counts %d+%d+%d+%d != %d cells",
				name, def, dfn, imp, ill, total)
		}
		if def == 0 || imp == 0 || ill == 0 {
			t.Errorf("%s: degenerate classification (%d/%d/%d/%d)",
				name, def, dfn, imp, ill)
		}
	}
}
