package resultcache

import (
	"container/list"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"time"

	"repro/internal/stats"
)

// Entry is one memoized experiment execution. Report is the
// deterministic artifact — the exact bytes a fresh run would render.
// Sidecar carries the producing run's stderr-style accounting (campaign
// speedup, fast-path split, shard counts): informational only, never
// part of the key or the report stream. Wall is the producing run's
// compute time, the number a hit saves.
type Entry struct {
	Key     Key
	Report  []byte
	Sidecar []byte
	Wall    time.Duration
}

// Cache is the content-addressed store: a bounded LRU of entries in
// memory, optionally backed by a directory of hash-verified JSON files.
// All methods are safe for concurrent use. The memory hit path takes one
// mutex and allocates nothing.
type Cache struct {
	stats *stats.CacheStats
	logf  func(format string, args ...any)

	mu      sync.Mutex
	max     int
	entries map[ID]*list.Element // -> *Entry elements in lru
	lru     *list.List           // front = most recently used
	dir     string               // "" after a disk failure: memory-only
}

// New builds a cache holding at most maxEntries in memory (minimum 1),
// persisting to dir when non-empty. A dir that cannot be created demotes
// the cache to memory-only with a logged warning — construction never
// fails, because the cache must degrade to compute-through rather than
// take the service down. st must be non-nil when the caller wants
// counters; nil gets a private set. logf defaults to a stderr logger.
func New(maxEntries int, dir string, st *stats.CacheStats, logf func(string, ...any)) *Cache {
	if maxEntries < 1 {
		maxEntries = 1
	}
	if st == nil {
		st = &stats.CacheStats{}
	}
	if logf == nil {
		logf = func(format string, args ...any) {
			fmt.Fprintf(os.Stderr, "resultcache: "+format+"\n", args...)
		}
	}
	c := &Cache{
		stats:   st,
		logf:    logf,
		max:     maxEntries,
		entries: make(map[ID]*list.Element, maxEntries),
		lru:     list.New(),
		dir:     dir,
	}
	if dir != "" {
		if err := os.MkdirAll(dir, 0o755); err != nil {
			c.stats.DiskErrors.Add(1)
			c.logf("cache dir %s unusable (%v); degrading to memory-only compute-through", dir, err)
			c.dir = ""
		}
	}
	return c
}

// Stats returns the counter set the cache reports into.
func (c *Cache) Stats() *stats.CacheStats { return c.stats }

// Get returns the entry stored under id. Memory hits are O(1) and
// allocation-free; on a memory miss the disk tier is probed and a
// verified entry is promoted into memory. Every return of (nil, false)
// has already counted a miss.
func (c *Cache) Get(id ID) (*Entry, bool) {
	c.mu.Lock()
	if el, ok := c.entries[id]; ok {
		c.lru.MoveToFront(el)
		c.mu.Unlock()
		c.stats.Hits.Add(1)
		return el.Value.(*Entry), true
	}
	dir := c.dir
	c.mu.Unlock()

	if dir != "" {
		if e := c.readDisk(dir, id); e != nil {
			c.insert(id, e)
			c.stats.Hits.Add(1)
			return e, true
		}
	}
	c.stats.Misses.Add(1)
	return nil, false
}

// Put stores e in memory and, when a disk tier is configured, persists
// it. Disk write failures degrade the store to memory-only with one
// logged warning; the entry stays servable from memory either way.
func (c *Cache) Put(e *Entry) {
	id := e.Key.ID()
	c.insert(id, e)
	c.mu.Lock()
	dir := c.dir
	c.mu.Unlock()
	if dir == "" {
		return
	}
	if err := c.writeDisk(dir, id, e); err != nil {
		c.stats.DiskErrors.Add(1)
		c.logf("persist %s: %v; degrading to memory-only compute-through", id, err)
		c.mu.Lock()
		c.dir = ""
		c.mu.Unlock()
	}
}

// Len reports the in-memory entry count.
func (c *Cache) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.lru.Len()
}

func (c *Cache) insert(id ID, e *Entry) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.entries[id]; ok {
		el.Value = e
		c.lru.MoveToFront(el)
		return
	}
	c.entries[id] = c.lru.PushFront(e)
	for c.lru.Len() > c.max {
		back := c.lru.Back()
		victim := back.Value.(*Entry)
		c.lru.Remove(back)
		delete(c.entries, victim.Key.ID())
		c.stats.Evictions.Add(1)
	}
}

// envelope is the on-disk JSON frame. Digest is the SHA-256 of the
// report bytes; together with the file name (the key's ID) it makes
// reads self-verifying: a flipped bit in either the key block or the
// payload fails verification and the entry is treated as a miss.
type envelope struct {
	Key     Key    `json:"key"`
	Digest  string `json:"report_sha256"`
	Report  string `json:"report"`
	Sidecar string `json:"sidecar,omitempty"`
	WallNS  int64  `json:"wall_ns"`
}

func (c *Cache) path(dir string, id ID) string {
	return filepath.Join(dir, id.String()+".json")
}

// readDisk loads and verifies one entry; any failure (unreadable,
// unparsable, digest mismatch, key mismatch) counts and returns nil. A
// corrupt file is deleted so it cannot fail verification forever.
func (c *Cache) readDisk(dir string, id ID) *Entry {
	path := c.path(dir, id)
	raw, err := os.ReadFile(path)
	if err != nil {
		if !os.IsNotExist(err) {
			c.stats.DiskErrors.Add(1)
			c.logf("read %s: %v", path, err)
		}
		return nil
	}
	var env envelope
	if err := json.Unmarshal(raw, &env); err != nil {
		c.discardCorrupt(path, fmt.Sprintf("unparsable: %v", err))
		return nil
	}
	sum := sha256.Sum256([]byte(env.Report))
	if hex.EncodeToString(sum[:]) != env.Digest {
		c.discardCorrupt(path, "report digest mismatch")
		return nil
	}
	if env.Key.ID() != id {
		c.discardCorrupt(path, "key digest mismatch")
		return nil
	}
	return &Entry{
		Key:     env.Key,
		Report:  []byte(env.Report),
		Sidecar: []byte(env.Sidecar),
		Wall:    time.Duration(env.WallNS),
	}
}

// discardCorrupt counts, warns, and removes a failed-verification file.
func (c *Cache) discardCorrupt(path, why string) {
	c.stats.Corrupt.Add(1)
	c.logf("corrupt cache entry %s (%s): treating as miss", path, why)
	if err := os.Remove(path); err != nil && !os.IsNotExist(err) {
		c.stats.DiskErrors.Add(1)
	}
}

// writeDisk persists one entry atomically (temp file + rename) so a
// crash mid-write leaves either the old entry or none — never a torn
// file that must rely on digest verification alone.
func (c *Cache) writeDisk(dir string, id ID, e *Entry) error {
	sum := sha256.Sum256(e.Report)
	env := envelope{
		Key:     e.Key,
		Digest:  hex.EncodeToString(sum[:]),
		Report:  string(e.Report),
		Sidecar: string(e.Sidecar),
		WallNS:  e.Wall.Nanoseconds(),
	}
	raw, err := json.MarshalIndent(env, "", "  ")
	if err != nil {
		return err
	}
	tmp, err := os.CreateTemp(dir, "put-*.tmp")
	if err != nil {
		return err
	}
	if _, err := tmp.Write(append(raw, '\n')); err != nil {
		tmp.Close()
		os.Remove(tmp.Name())
		return err
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmp.Name())
		return err
	}
	if err := os.Rename(tmp.Name(), c.path(dir, id)); err != nil {
		os.Remove(tmp.Name())
		return err
	}
	return nil
}
