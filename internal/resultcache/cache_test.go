package resultcache

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"repro/internal/experiments"
	"repro/internal/stats"
)

func testKey(t *testing.T, name string, p experiments.Params) Key {
	t.Helper()
	k, err := NewKey(name, p)
	if err != nil {
		t.Fatal(err)
	}
	return k
}

func testEntry(t *testing.T, name, report string) *Entry {
	t.Helper()
	return &Entry{
		Key:     testKey(t, name, experiments.Params{}),
		Report:  []byte(report),
		Sidecar: []byte("[campaign " + name + "] test sidecar"),
		Wall:    123 * time.Millisecond,
	}
}

func TestKeyNormalization(t *testing.T) {
	// Knobs the experiment ignores must not fork the key: table5 consumes
	// no params at all.
	a := testKey(t, "table5", experiments.Params{})
	b := testKey(t, "table5", experiments.Params{Scale: 0.5, Bits: 64, Samples: 9})
	if a.ID() != b.ID() {
		t.Errorf("irrelevant params forked the key:\n%s\n%s", a.Canonical(), b.Canonical())
	}

	// Unset knobs resolve to the experiment's defaults: a bare fig7 spec
	// and an explicit default-scale spec are the same execution.
	c := testKey(t, "fig7", experiments.Params{})
	d := testKey(t, "fig7", experiments.Params{Scale: 0.25, Bits: 512})
	if c.ID() != d.ID() {
		t.Errorf("default resolution broken:\n%s\n%s", c.Canonical(), d.Canonical())
	}

	// Knobs the experiment does consume must fork it.
	e := testKey(t, "fig7", experiments.Params{Scale: 0.1})
	if c.ID() == e.ID() {
		t.Error("scale change did not fork the fig7 key")
	}

	// The policy set and code version are in the preimage.
	if !strings.Contains(string(c.Canonical()), `"policies":["MESI","SwiftDir","S-MESI"]`) {
		t.Errorf("canonical key missing policy set: %s", c.Canonical())
	}
	if !strings.Contains(string(c.Canonical()), `"code_version"`) {
		t.Errorf("canonical key missing code version: %s", c.Canonical())
	}

	if _, err := NewKey("fig99", experiments.Params{}); err == nil {
		t.Error("unknown experiment accepted")
	} else if !strings.Contains(err.Error(), "fig7") {
		t.Errorf("unknown-experiment error does not list the registry: %v", err)
	}
}

func TestCodeVersionForksKeys(t *testing.T) {
	k1 := testKey(t, "table5", experiments.Params{})
	prev := SetCodeVersion("other-build")
	defer SetCodeVersion(prev)
	k2 := testKey(t, "table5", experiments.Params{})
	if k1.ID() == k2.ID() {
		t.Error("code version change did not fork the key")
	}
}

func TestIDRoundTrip(t *testing.T) {
	id := testKey(t, "fig6", experiments.Params{Samples: 7}).ID()
	back, err := ParseID(id.String())
	if err != nil || back != id {
		t.Fatalf("ParseID(%s) = %v, %v", id, back, err)
	}
	if _, err := ParseID("zz"); err == nil {
		t.Error("bad hex accepted")
	}
}

func TestMemoryRoundTripAndLRU(t *testing.T) {
	var st stats.CacheStats
	c := New(2, "", &st, func(string, ...any) {})
	e1 := testEntry(t, "table5", "report-1")
	e2 := testEntry(t, "fig4", "report-2")
	e3 := testEntry(t, "fig5", "report-3")

	if _, ok := c.Get(e1.Key.ID()); ok {
		t.Fatal("hit on empty cache")
	}
	c.Put(e1)
	c.Put(e2)
	got, ok := c.Get(e1.Key.ID())
	if !ok || string(got.Report) != "report-1" {
		t.Fatalf("Get e1 = %v, %v", got, ok)
	}
	// e1 is now most recent; inserting e3 must evict e2.
	c.Put(e3)
	if _, ok := c.Get(e2.Key.ID()); ok {
		t.Error("LRU victim e2 still served")
	}
	if _, ok := c.Get(e1.Key.ID()); !ok {
		t.Error("recently-used e1 evicted")
	}
	s := st.Snapshot()
	if s.Evictions != 1 {
		t.Errorf("evictions = %d, want 1", s.Evictions)
	}
	if s.Hits != 2 || s.Misses != 2 {
		t.Errorf("hits/misses = %d/%d, want 2/2", s.Hits, s.Misses)
	}
}

func TestDiskPersistenceAcrossInstances(t *testing.T) {
	dir := t.TempDir()
	e := testEntry(t, "table5", "persistent report\nline 2\n")
	New(4, dir, nil, func(string, ...any) {}).Put(e)

	// A fresh cache (cold memory) must serve the verified disk entry.
	var st stats.CacheStats
	c2 := New(4, dir, &st, func(string, ...any) {})
	got, ok := c2.Get(e.Key.ID())
	if !ok {
		t.Fatal("disk entry not served")
	}
	if string(got.Report) != string(e.Report) || string(got.Sidecar) != string(e.Sidecar) || got.Wall != e.Wall {
		t.Fatalf("disk round trip mangled the entry: %+v", got)
	}
	if st.Snapshot().Hits != 1 {
		t.Errorf("disk hit not counted")
	}
	// The promoted entry now hits memory without touching disk.
	os.RemoveAll(dir)
	if _, ok := c2.Get(e.Key.ID()); !ok {
		t.Error("promoted entry not in memory")
	}
}

// A flipped bit on disk must read as a miss — never as a served report.
func TestCorruptDiskEntryIsAMiss(t *testing.T) {
	dir := t.TempDir()
	e := testEntry(t, "table5", "the authentic report bytes")
	New(4, dir, nil, func(string, ...any) {}).Put(e)

	path := filepath.Join(dir, e.Key.ID().String()+".json")
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	// Flip one bit inside the report payload.
	i := strings.Index(string(raw), "authentic")
	raw[i] ^= 0x01
	if err := os.WriteFile(path, raw, 0o644); err != nil {
		t.Fatal(err)
	}

	var st stats.CacheStats
	var warned []string
	c := New(4, dir, &st, func(f string, a ...any) { warned = append(warned, f) })
	if got, ok := c.Get(e.Key.ID()); ok {
		t.Fatalf("corrupt entry served: %q", got.Report)
	}
	s := st.Snapshot()
	if s.Corrupt != 1 || s.Misses != 1 {
		t.Errorf("corrupt/misses = %d/%d, want 1/1", s.Corrupt, s.Misses)
	}
	if len(warned) == 0 {
		t.Error("corruption not logged")
	}
	if _, err := os.Stat(path); !os.IsNotExist(err) {
		t.Error("corrupt file not removed")
	}

	// Recompute-and-put must repopulate a good entry.
	c.Put(e)
	c2 := New(4, dir, nil, func(string, ...any) {})
	if _, ok := c2.Get(e.Key.ID()); !ok {
		t.Error("repaired entry not served")
	}
}

// A garbled JSON frame and a key/filename mismatch are also misses.
func TestUnparsableAndMisfiledEntries(t *testing.T) {
	dir := t.TempDir()
	e := testEntry(t, "table5", "report")
	var st stats.CacheStats
	c := New(4, dir, &st, func(string, ...any) {})
	path := filepath.Join(dir, e.Key.ID().String()+".json")

	if err := os.WriteFile(path, []byte("{not json"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, ok := c.Get(e.Key.ID()); ok {
		t.Fatal("unparsable entry served")
	}

	// A valid envelope filed under the wrong ID (e.g. a tampered key
	// block whose payload digest still matches) must fail the key check.
	other := testEntry(t, "fig4", "report")
	New(4, dir, nil, func(string, ...any) {}).Put(other)
	src := filepath.Join(dir, other.Key.ID().String()+".json")
	raw, err := os.ReadFile(src)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, raw, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, ok := c.Get(e.Key.ID()); ok {
		t.Fatal("misfiled entry served")
	}
	if got := st.Snapshot().Corrupt; got != 2 {
		t.Errorf("corrupt count = %d, want 2", got)
	}
}

// An unusable cache directory (here: a path through a regular file,
// which fails for root and non-root alike — chmod-based permission
// denials are invisible to root, and tests may run as root) must degrade
// the cache to memory-only compute-through with a logged warning, never
// an error.
func TestUnusableDirDegradesToMemoryOnly(t *testing.T) {
	file := filepath.Join(t.TempDir(), "occupied")
	if err := os.WriteFile(file, []byte("x"), 0o644); err != nil {
		t.Fatal(err)
	}
	var st stats.CacheStats
	var warned int
	c := New(4, filepath.Join(file, "cache"), &st, func(string, ...any) { warned++ })
	if warned == 0 {
		t.Error("degradation not logged")
	}
	if st.Snapshot().DiskErrors == 0 {
		t.Error("disk error not counted")
	}
	// The cache still works in memory.
	e := testEntry(t, "table5", "memory-only report")
	c.Put(e)
	if got, ok := c.Get(e.Key.ID()); !ok || string(got.Report) != "memory-only report" {
		t.Fatalf("memory tier broken after degradation: %v %v", got, ok)
	}
}

// A write failure after construction (directory vanishes) degrades the
// same way: the Put is served from memory, later Puts skip the disk.
func TestWriteFailureDegrades(t *testing.T) {
	dir := t.TempDir()
	var st stats.CacheStats
	c := New(4, dir, &st, func(string, ...any) {})
	if err := os.RemoveAll(dir); err != nil {
		t.Fatal(err)
	}
	e := testEntry(t, "table5", "report")
	c.Put(e)
	if _, ok := c.Get(e.Key.ID()); !ok {
		t.Error("entry lost after disk write failure")
	}
	if st.Snapshot().DiskErrors == 0 {
		t.Error("write failure not counted")
	}
}
