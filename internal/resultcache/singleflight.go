package resultcache

import (
	"sync"

	"repro/internal/stats"
)

// Flight deduplicates concurrent identical work: N goroutines asking for
// the same ID while one is computing it all share the leader's result —
// exactly one underlying run. Completed call frames are recycled on a
// free list, so the uncontended leader path allocates nothing (it is on
// the server's per-request path and benchmarked in bench_test.go).
//
// Unlike golang.org/x/sync/singleflight (which the toolchain image does
// not carry), Flight is specialized to (ID -> *Entry) and counts dedup
// waiters into stats.CacheStats.
type Flight struct {
	mu    sync.Mutex
	calls map[ID]*call
	free  []*call
	stats *stats.CacheStats
}

// call is one in-flight computation. waiters tracks the goroutines
// sharing it so the frame is recycled only after the last reader leaves.
type call struct {
	wg      sync.WaitGroup
	entry   *Entry
	err     error
	waiters int
	done    bool
}

// NewFlight builds a dedup group reporting into st (nil gets a private
// counter set).
func NewFlight(st *stats.CacheStats) *Flight {
	if st == nil {
		st = &stats.CacheStats{}
	}
	return &Flight{calls: make(map[ID]*call), stats: st}
}

// Do executes fn under id, deduplicating concurrent calls: the first
// caller (the leader) runs fn, every caller that arrives before the
// leader finishes waits and shares the same (*Entry, error). shared
// reports whether this caller was a waiter — each waiter also counts
// one Dedups tick; the leader counts one Runs tick.
func (f *Flight) Do(id ID, fn func() (*Entry, error)) (e *Entry, shared bool, err error) {
	f.mu.Lock()
	if c, ok := f.calls[id]; ok {
		c.waiters++
		f.mu.Unlock()
		f.stats.Dedups.Add(1)
		c.wg.Wait()
		e, err = c.entry, c.err
		f.release(c)
		return e, true, err
	}
	c := f.take()
	f.calls[id] = c
	f.mu.Unlock()

	f.stats.Runs.Add(1)
	func() {
		// A panicking fn (a diverging simulation that escaped the runner's
		// recover) must still release the flight, or every later request
		// for this id would block forever. The whole unwind — unregister,
		// publish, wake waiters, maybe recycle — happens under one lock
		// hold: after the map delete no new waiter can join, so the frame
		// is recycled exactly once, by the leader iff no waiter is
		// registered, else by the last waiter to leave (see release).
		defer func() {
			f.mu.Lock()
			delete(f.calls, id)
			c.done = true
			e, err = c.entry, c.err
			c.wg.Done()
			if c.waiters == 0 {
				f.recycle(c)
			}
			f.mu.Unlock()
		}()
		c.entry, c.err = fn()
	}()
	return e, false, err
}

// take pops a recycled call frame or allocates the first few.
func (f *Flight) take() *call {
	var c *call
	if n := len(f.free); n > 0 {
		c = f.free[n-1]
		f.free[n-1] = nil
		f.free = f.free[:n-1]
		c.entry, c.err, c.waiters, c.done = nil, nil, 0, false
	} else {
		c = &call{}
	}
	c.wg.Add(1)
	return c
}

// release is the waiter-side exit: the last waiter of a completed call
// returns the frame to the pool.
func (f *Flight) release(c *call) {
	f.mu.Lock()
	c.waiters--
	if c.done && c.waiters == 0 {
		f.recycle(c)
	}
	f.mu.Unlock()
}

func (f *Flight) recycle(c *call) {
	const keep = 64
	if len(f.free) < keep {
		f.free = append(f.free, c)
	}
}
