// Package resultcache memoizes experiment reports in a content-addressed
// store: a bounded in-memory LRU in front of an optional on-disk
// directory, keyed by the SHA-256 of the canonical JSON encoding of
// (experiment name, normalized parameters, compared-policy set, runtime
// seeds, code version).
//
// The soundness argument is the repository's determinism guarantee: an
// experiment's report bytes are a pure function of that tuple — golden
// hashes pin them across engine rewrites, and the j1-vs-jN and
// shards-1-vs-N equivalence suites prove worker and shard counts cannot
// leak in. A cache hit is therefore provably byte-identical to a re-run,
// which is what lets swiftdir-serve turn O(grid) repeat traffic into
// O(1) lookups without weakening any result.
//
// Reads are hash-verified: a disk entry whose payload digest or key
// digest does not match is treated as a miss (and deleted), never
// served. Disk failures of any kind degrade the cache to compute-through
// with a logged warning — the store is an accelerator, not a dependency.
package resultcache

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"runtime/debug"

	"repro/internal/experiments"
)

// ID is a cache key digest: the SHA-256 of the key's canonical JSON.
type ID [sha256.Size]byte

// String renders the digest as lowercase hex (the on-disk file stem).
func (id ID) String() string { return hex.EncodeToString(id[:]) }

// ParseID parses the hex form produced by String.
func ParseID(s string) (ID, error) {
	var id ID
	b, err := hex.DecodeString(s)
	if err != nil || len(b) != len(id) {
		return ID{}, fmt.Errorf("resultcache: bad id %q", s)
	}
	copy(id[:], b)
	return id, nil
}

// Key is the identity of one deterministic experiment execution. Field
// order is the canonical JSON order; every field is normalized by NewKey
// so semantically identical requests encode byte-identically:
//
//   - Params come from Experiment.Normalize — knobs the experiment
//     ignores are cleared, unset knobs resolve to their defaults.
//   - Policies is the compared-policy set (sorted), today always the
//     paper's three; a future policy-set knob forks the keyspace.
//   - Seeds carries runtime-varied RNG seeds (sorted). The current
//     registry embeds every seed in code, so it is empty and the code
//     version covers them; the field exists so a seed-sweeping
//     experiment cannot collide with the fixed-seed one.
//   - CodeVersion pins the simulator build (VCS revision when the binary
//     embeds one): any code change that could move a report forks the key.
type Key struct {
	Experiment  string             `json:"experiment"`
	Params      experiments.Params `json:"params"`
	Policies    []string           `json:"policies"`
	Seeds       []int64            `json:"seeds,omitempty"`
	CodeVersion string             `json:"code_version"`
}

// NewKey builds the normalized key for running experiment name with p
// under the current build. Unknown names are rejected with the registry
// vocabulary.
func NewKey(name string, p experiments.Params) (Key, error) {
	e, ok := experiments.Lookup(name)
	if !ok {
		return Key{}, &experiments.UnknownExperimentError{Name: name}
	}
	return Key{
		Experiment:  e.Name,
		Params:      e.Normalize(p),
		Policies:    experiments.PolicyNames(),
		CodeVersion: CodeVersion(),
	}, nil
}

// Canonical returns the key's canonical JSON encoding: struct field
// order, normalized fields, no indentation. This is the preimage of ID.
func (k Key) Canonical() []byte {
	b, err := json.Marshal(k)
	if err != nil {
		// Key holds only plain data; Marshal cannot fail on it.
		panic(fmt.Sprintf("resultcache: canonicalize key: %v", err))
	}
	return b
}

// ID returns the content address: SHA-256 over Canonical().
func (k Key) ID() ID { return sha256.Sum256(k.Canonical()) }

// codeVersion is resolved once at init: the VCS revision stamped into
// the binary (with a +dirty marker for modified trees) when available,
// else "dev". `go test` binaries are typically unstamped — tests that
// need cross-build stability pin it with SetCodeVersion.
var codeVersion = func() string {
	if bi, ok := debug.ReadBuildInfo(); ok {
		var rev, modified string
		for _, s := range bi.Settings {
			switch s.Key {
			case "vcs.revision":
				rev = s.Value
			case "vcs.modified":
				modified = s.Value
			}
		}
		if rev != "" {
			if modified == "true" {
				return rev + "+dirty"
			}
			return rev
		}
	}
	return "dev"
}()

// CodeVersion reports the build identity baked into cache keys.
func CodeVersion() string { return codeVersion }

// SetCodeVersion overrides the build identity (tests; a deployment that
// wants cache reuse across bit-identical rebuilds). It returns the
// previous value so callers can restore it.
func SetCodeVersion(v string) (prev string) {
	prev = codeVersion
	codeVersion = v
	return prev
}
