package resultcache

import (
	"errors"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/experiments"
	"repro/internal/stats"
)

// N concurrent identical requests must observe exactly one underlying
// run, with the dedup counter accounting for the other N-1.
func TestFlightDedupsConcurrentIdenticalWork(t *testing.T) {
	var st stats.CacheStats
	f := NewFlight(&st)
	id := mustID(t, "table5")

	const n = 16
	var runs atomic.Int64
	release := make(chan struct{})
	entry := &Entry{Report: []byte("the one report")}

	var wg sync.WaitGroup
	results := make([]*Entry, n)
	sharedCount := atomic.Int64{}
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			e, shared, err := f.Do(id, func() (*Entry, error) {
				runs.Add(1)
				<-release // hold the flight open until every caller has arrived
				return entry, nil
			})
			if err != nil {
				t.Error(err)
			}
			if shared {
				sharedCount.Add(1)
			}
			results[i] = e
		}(i)
	}

	// Wait until the other n-1 callers are registered as waiters, then
	// let the leader finish.
	deadline := time.Now().Add(10 * time.Second)
	for st.Dedups.Load() < n-1 {
		if time.Now().After(deadline) {
			t.Fatalf("only %d waiters joined", st.Dedups.Load())
		}
		time.Sleep(time.Millisecond)
	}
	close(release)
	wg.Wait()

	if got := runs.Load(); got != 1 {
		t.Errorf("underlying runs = %d, want 1", got)
	}
	if got := sharedCount.Load(); got != n-1 {
		t.Errorf("shared results = %d, want %d", got, n-1)
	}
	for i, e := range results {
		if e != entry {
			t.Fatalf("caller %d got a different entry", i)
		}
	}
	s := st.Snapshot()
	if s.Dedups != n-1 || s.Runs != 1 {
		t.Errorf("dedups/runs = %d/%d, want %d/1", s.Dedups, s.Runs, n-1)
	}
}

// Sequential calls each run: the flight dedups only concurrent work
// (completed results belong to the cache, not the flight).
func TestFlightSequentialCallsRunEachTime(t *testing.T) {
	f := NewFlight(nil)
	id := mustID(t, "table5")
	var runs int
	for i := 0; i < 3; i++ {
		_, shared, err := f.Do(id, func() (*Entry, error) { runs++; return nil, nil })
		if shared || err != nil {
			t.Fatalf("call %d: shared=%v err=%v", i, shared, err)
		}
	}
	if runs != 3 {
		t.Errorf("runs = %d, want 3", runs)
	}
}

// Distinct IDs never share a flight.
func TestFlightDistinctIDsIndependent(t *testing.T) {
	f := NewFlight(nil)
	a, b := mustID(t, "table5"), mustID(t, "fig4")
	var runs atomic.Int64
	block := make(chan struct{})
	go f.Do(a, func() (*Entry, error) { runs.Add(1); <-block; return nil, nil })
	for f.inflight() == 0 {
		time.Sleep(time.Millisecond)
	}
	if _, shared, _ := f.Do(b, func() (*Entry, error) { runs.Add(1); return nil, nil }); shared {
		t.Error("distinct id was deduplicated")
	}
	close(block)
	if got := runs.Load(); got != 2 {
		t.Errorf("runs = %d, want 2", got)
	}
}

// Errors propagate to the leader and every waiter alike, and the flight
// is reusable afterwards.
func TestFlightErrorSharedAndCleared(t *testing.T) {
	f := NewFlight(nil)
	id := mustID(t, "table5")
	boom := errors.New("diverged")
	release := make(chan struct{})
	var st = f.stats

	errs := make(chan error, 2)
	go func() {
		_, _, err := f.Do(id, func() (*Entry, error) { <-release; return nil, boom })
		errs <- err
	}()
	for f.inflight() == 0 {
		time.Sleep(time.Millisecond)
	}
	go func() {
		_, _, err := f.Do(id, func() (*Entry, error) { return nil, nil })
		errs <- err
	}()
	for st.Dedups.Load() == 0 {
		time.Sleep(time.Millisecond)
	}
	close(release)
	for i := 0; i < 2; i++ {
		if err := <-errs; !errors.Is(err, boom) {
			t.Errorf("error not shared: %v", err)
		}
	}
	// The failed flight is gone; a fresh call runs again.
	ran := false
	if _, shared, err := f.Do(id, func() (*Entry, error) { ran = true; return nil, nil }); shared || err != nil || !ran {
		t.Errorf("flight not cleared: shared=%v err=%v ran=%v", shared, err, ran)
	}
}

// A panicking leader must not strand later callers.
func TestFlightPanicReleasesFlight(t *testing.T) {
	f := NewFlight(nil)
	id := mustID(t, "table5")
	func() {
		defer func() { recover() }()
		f.Do(id, func() (*Entry, error) { panic("diverging simulation") })
	}()
	done := make(chan struct{})
	go func() {
		f.Do(id, func() (*Entry, error) { return nil, nil })
		close(done)
	}()
	select {
	case <-done:
	case <-time.After(10 * time.Second):
		t.Fatal("flight stranded after leader panic")
	}
}

// inflight reports the registered call count (test helper).
func (f *Flight) inflight() int {
	f.mu.Lock()
	defer f.mu.Unlock()
	return len(f.calls)
}

func mustID(t *testing.T, name string) ID {
	t.Helper()
	k, err := NewKey(name, experiments.Params{})
	if err != nil {
		t.Fatal(err)
	}
	return k.ID()
}
