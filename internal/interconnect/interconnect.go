// Package interconnect models the on-chip network between private caches
// and LLC banks: a crossbar of point-to-point links with finite bandwidth.
// Each message occupies its source and destination ports for a
// configurable number of cycles, so bursts queue and latency becomes
// load-dependent — the realistic jitter that spreads the paper's Figure 6
// CDF around its 17-cycle center. With zero occupancy the crossbar
// degenerates to a pure-latency network (the default configuration, which
// keeps protocol timing exactly analyzable).
package interconnect

import (
	"fmt"
	"sync/atomic"

	"repro/internal/sim"
)

// Config describes the crossbar.
type Config struct {
	Ports     int       // number of endpoints
	Latency   sim.Cycle // base traversal latency per message
	Occupancy sim.Cycle // port occupancy per message (0 = infinite bandwidth)

	// JitterMax adds a deterministic pseudo-random occupancy in
	// [0, JitterMax] to every message (seeded by JitterSeed), perturbing
	// relative message timing while preserving per-port-pair ordering.
	// It exists to fuzz the coherence protocol for timing races.
	JitterMax  sim.Cycle
	JitterSeed uint64

	// Distance, if non-nil, returns extra traversal latency for a
	// (src, dst) port pair — the hook NUMA topologies use to make
	// cross-socket hops slower than local ones.
	Distance func(src, dst int) sim.Cycle

	// Extra, if non-nil, returns extra occupancy for a message admitted at
	// now — the fault-injection hook. Like jitter, the extra cycles flow
	// through the per-port bookkeeping, so injected latency spikes preserve
	// per-port-pair delivery order: a perturbed network is still a legal
	// network.
	Extra func(src, dst int, now sim.Cycle) sim.Cycle

	// Route, if non-nil, takes over event delivery entirely: SendEvent
	// hands the hook the (src, dst, base latency, handler, payload) tuple
	// and performs no scheduling of its own. The sharded coherence model
	// installs it to land each message on the destination's home shard
	// (sim.Engine.SendRemote). Routing is only legal on a pure-latency
	// crossbar — every port-time feature reads and writes shared
	// bookkeeping that per-shard delivery cannot serialize — so Validate
	// rejects Route combined with Occupancy, JitterMax, Distance, or
	// Extra.
	Route func(src, dst int, lat sim.Cycle, h sim.Handler, p sim.Payload)
}

// Validate checks the configuration.
func (c Config) Validate() error {
	if c.Ports <= 0 {
		return fmt.Errorf("interconnect: non-positive port count %d", c.Ports)
	}
	if c.Route != nil && (c.Occupancy > 0 || c.JitterMax > 0 || c.Distance != nil || c.Extra != nil) {
		return fmt.Errorf("interconnect: Route requires a pure-latency crossbar (no occupancy, jitter, distance, or extra hooks)")
	}
	return nil
}

// Crossbar is a full crossbar switch: any source can reach any
// destination, but each port admits one message per Occupancy window in
// each direction.
type Crossbar struct {
	eng *sim.Engine
	cfg Config
	rng *sim.RNG // jitter source (nil when JitterMax == 0)

	txFreeAt []sim.Cycle // per-source egress availability
	rxFreeAt []sim.Cycle // per-destination ingress availability

	// Stats
	Messages     uint64
	QueuedCycles sim.Cycle // total cycles messages spent waiting for ports
	MaxQueue     sim.Cycle // worst single-message queueing delay
}

// New builds a crossbar over the engine. An invalid configuration — which
// can now arrive from user-supplied JSON, not just code — returns an
// error instead of panicking.
func New(eng *sim.Engine, cfg Config) (*Crossbar, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	x := &Crossbar{
		eng:      eng,
		cfg:      cfg,
		txFreeAt: make([]sim.Cycle, cfg.Ports),
		rxFreeAt: make([]sim.Cycle, cfg.Ports),
	}
	if cfg.JitterMax > 0 {
		x.rng = sim.NewRNG(cfg.JitterSeed | 1)
	}
	return x, nil
}

// Config returns the crossbar configuration.
func (x *Crossbar) Config() Config { return x.cfg }

// admit computes the absolute delivery cycle of a message entering the
// crossbar now at src bound for dst, updating port occupancy and queueing
// statistics. Both Send paths share it so the jitter RNG stream and the
// port bookkeeping advance identically regardless of how the delivery is
// scheduled.
func (x *Crossbar) admit(src, dst int) sim.Cycle {
	x.Messages++
	now := x.eng.Now()
	lat := x.cfg.Latency
	if x.cfg.Distance != nil {
		lat += x.cfg.Distance(src, dst)
	}
	occ := x.cfg.Occupancy
	if x.rng != nil {
		occ += sim.Cycle(x.rng.Uint64n(uint64(x.cfg.JitterMax) + 1))
	}
	if x.cfg.Extra != nil {
		occ += x.cfg.Extra(src, dst, now)
	}
	if x.rng == nil && x.cfg.Extra == nil && occ == 0 {
		return now + lat
	}
	// With jitter or fault injection enabled every message flows through
	// the port-time bookkeeping (even a zero-extra roll), which keeps
	// per-port-pair delivery order monotone.
	start := now
	if x.txFreeAt[src] > start {
		start = x.txFreeAt[src]
	}
	if x.rxFreeAt[dst] > start {
		start = x.rxFreeAt[dst]
	}
	queued := start - now
	x.QueuedCycles += queued
	if queued > x.MaxQueue {
		x.MaxQueue = queued
	}
	x.txFreeAt[src] = start + occ
	x.rxFreeAt[dst] = start + occ
	return start + lat
}

// Send schedules deliver after the message traverses src -> dst: base
// latency plus any queueing at the two ports. Closure delivery cannot
// ride the Route hook (it carries no handler), so a routed crossbar
// rejects it.
func (x *Crossbar) Send(src, dst int, deliver func()) {
	if x.cfg.Route != nil {
		panic("interconnect: closure Send on a routed crossbar")
	}
	x.eng.ScheduleAt(x.admit(src, dst), deliver)
}

// SendEvent is Send for a (handler, payload) event: the zero-allocation
// delivery path coherence messages ride. On a routed crossbar the Route
// hook owns scheduling; only the message count is maintained here, with
// an atomic add because shard workers deliver concurrently (the count is
// a commutative sum, so the total stays byte-identical).
func (x *Crossbar) SendEvent(src, dst int, h sim.Handler, p sim.Payload) {
	if x.cfg.Route != nil {
		atomic.AddUint64(&x.Messages, 1)
		x.cfg.Route(src, dst, x.cfg.Latency, h, p)
		return
	}
	x.eng.ScheduleEventAt(x.admit(src, dst), h, p)
}

// AvgQueueing returns mean queueing delay per message.
func (x *Crossbar) AvgQueueing() float64 {
	if x.Messages == 0 {
		return 0
	}
	return float64(x.QueuedCycles) / float64(x.Messages)
}

// MessageCount returns the number of messages admitted so far. The atomic
// load pairs with the routed SendEvent path's atomic add; on the
// sequential paths it is equivalent to a plain read.
func (x *Crossbar) MessageCount() uint64 { return atomic.LoadUint64(&x.Messages) }

// MinLatency returns the unloaded src -> dst traversal latency: the base
// latency plus the NUMA distance, with no port queueing.
func (x *Crossbar) MinLatency(src, dst int) sim.Cycle {
	lat := x.cfg.Latency
	if x.cfg.Distance != nil {
		lat += x.cfg.Distance(src, dst)
	}
	return lat
}
