package interconnect

import (
	"fmt"
	"sync/atomic"

	"repro/internal/sim"
)

// MeshConfig describes a W x H 2D mesh with XY dimension-order routing.
// Every endpoint port is attached to a router; a message from src to dst
// pays the base latency plus PerHop cycles per Manhattan hop between
// their routers. With LinkOccupancy > 0 each directed inter-router link
// (and the endpoint's injection/ejection port) admits one message per
// occupancy window, so congestion queues messages and latency becomes
// load-dependent — the NoC analogue of the crossbar's port occupancy.
type MeshConfig struct {
	Ports int // number of endpoints
	W, H  int // mesh dimensions (routers = W*H)

	Latency sim.Cycle // base traversal latency per message (incl. ejection)
	PerHop  sim.Cycle // additional latency per inter-router hop

	// LinkOccupancy is the per-link (and per-endpoint-port) occupancy per
	// message. 0 models infinite bandwidth: the mesh is pure-latency and
	// routable onto a sharded engine.
	LinkOccupancy sim.Cycle

	// RouterOf maps each port to its router in [0, W*H). nil spreads the
	// ports evenly across the routers in port order.
	RouterOf []int

	// LinkExtra, if non-nil, returns extra hold cycles for one directed
	// link (router*4+dir) as a message crosses it at now — the mesh's
	// fault-injection hook, consulted once per link on the XY route. Like
	// the crossbar's Extra, the injected cycles flow through the per-link
	// bookkeeping, so a latency spike congests exactly one directed link
	// and per-link FIFO order is preserved: a perturbed mesh is still a
	// legal mesh. Any non-nil hook routes every message through the
	// bookkeeping even at zero occupancy, so the hook's draw sequence is
	// a deterministic function of the message sequence.
	LinkExtra func(link int, now sim.Cycle) sim.Cycle

	// Route, if non-nil, takes over event delivery exactly like the
	// crossbar hook: SendEvent hands it (src, dst, latency, handler,
	// payload) — with the mesh's full distance-dependent latency — and
	// performs no scheduling of its own. Only legal on a pure-latency
	// mesh (LinkOccupancy == 0, no LinkExtra): link state is shared
	// bookkeeping that per-shard delivery cannot serialize.
	Route func(src, dst int, lat sim.Cycle, h sim.Handler, p sim.Payload)
}

// Validate checks the configuration.
func (c MeshConfig) Validate() error {
	if c.Ports <= 0 {
		return fmt.Errorf("interconnect: non-positive port count %d", c.Ports)
	}
	if c.W < 1 || c.H < 1 {
		return fmt.Errorf("interconnect: mesh dimensions %dx%d invalid", c.W, c.H)
	}
	if c.PerHop < 0 || c.Latency < 0 || c.LinkOccupancy < 0 {
		return fmt.Errorf("interconnect: negative mesh timing")
	}
	if c.RouterOf != nil {
		if len(c.RouterOf) != c.Ports {
			return fmt.Errorf("interconnect: RouterOf has %d entries for %d ports", len(c.RouterOf), c.Ports)
		}
		for p, r := range c.RouterOf {
			if r < 0 || r >= c.W*c.H {
				return fmt.Errorf("interconnect: RouterOf[%d] = %d out of range [0,%d)", p, r, c.W*c.H)
			}
		}
	}
	if c.Route != nil && (c.LinkOccupancy > 0 || c.LinkExtra != nil) {
		return fmt.Errorf("interconnect: Route requires a pure-latency mesh (no link occupancy or extra hook)")
	}
	return nil
}

// Directed link indexes per router: east, west, south, north. A link id
// is router*4 + direction, identifying the outgoing link of that router.
const (
	linkEast = iota
	linkWest
	linkSouth
	linkNorth
	linkDirs
)

// MeshLinks returns the number of directed link ids a W x H mesh uses
// (router*4 + direction) — the id space MeshConfig.LinkExtra is keyed by
// and fault plans pin storms to.
func MeshLinks(w, h int) int { return w * h * linkDirs }

// Mesh is a W x H 2D mesh of routers with XY dimension-order routing:
// a message first travels along X to its destination column, then along
// Y — the classic deadlock-free order (no cycle in the channel dependency
// graph, and the event-driven model holds no finite buffers to exhaust).
type Mesh struct {
	eng *sim.Engine
	cfg MeshConfig

	routerOf []int

	// Per-port and per-link availability, used only when LinkOccupancy > 0.
	txFreeAt   []sim.Cycle // per-source injection-port availability
	rxFreeAt   []sim.Cycle // per-destination ejection-port availability
	linkFreeAt []sim.Cycle // per directed link (router*4+dir) availability

	// Stats
	Messages     uint64
	HopsTotal    uint64    // total inter-router hops traversed
	QueuedCycles sim.Cycle // total cycles spent beyond the unloaded latency
	MaxQueue     sim.Cycle // worst single-message queueing delay
}

// NewMesh builds a mesh over the engine.
func NewMesh(eng *sim.Engine, cfg MeshConfig) (*Mesh, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	m := &Mesh{eng: eng, cfg: cfg}
	if cfg.RouterOf != nil {
		m.routerOf = cfg.RouterOf
	} else {
		m.routerOf = make([]int, cfg.Ports)
		for p := range m.routerOf {
			m.routerOf[p] = p * cfg.W * cfg.H / cfg.Ports
		}
	}
	if cfg.LinkOccupancy > 0 || cfg.LinkExtra != nil {
		m.txFreeAt = make([]sim.Cycle, cfg.Ports)
		m.rxFreeAt = make([]sim.Cycle, cfg.Ports)
		m.linkFreeAt = make([]sim.Cycle, cfg.W*cfg.H*linkDirs)
	}
	return m, nil
}

// Config returns the mesh configuration.
func (m *Mesh) Config() MeshConfig { return m.cfg }

// RouterOfPort returns the router a port is attached to.
func (m *Mesh) RouterOfPort(port int) int { return m.routerOf[port] }

// dist returns the Manhattan hop count between two routers.
func (m *Mesh) dist(a, b int) int {
	ax, ay := a%m.cfg.W, a/m.cfg.W
	bx, by := b%m.cfg.W, b/m.cfg.W
	dx, dy := ax-bx, ay-by
	if dx < 0 {
		dx = -dx
	}
	if dy < 0 {
		dy = -dy
	}
	return dx + dy
}

// MinLatency returns the unloaded src -> dst latency: base latency plus
// PerHop per Manhattan hop between the endpoints' routers.
func (m *Mesh) MinLatency(src, dst int) sim.Cycle {
	return m.cfg.Latency + m.cfg.PerHop*sim.Cycle(m.dist(m.routerOf[src], m.routerOf[dst]))
}

// admit computes the absolute delivery cycle of a message entering the
// mesh now at src bound for dst, walking the XY route and updating link
// occupancy and queueing statistics. With zero link occupancy it reduces
// to now + MinLatency — the pure-latency path, which allocates nothing
// and updates no shared bookkeeping beyond the message count.
func (m *Mesh) admit(src, dst int) sim.Cycle {
	m.Messages++
	now := m.eng.Now()
	r, rd := m.routerOf[src], m.routerOf[dst]
	d := m.dist(r, rd)
	m.HopsTotal += uint64(d)
	lat := m.cfg.Latency + m.cfg.PerHop*sim.Cycle(d)
	occ := m.cfg.LinkOccupancy
	if occ == 0 && m.cfg.LinkExtra == nil {
		return now + lat
	}
	if d == 0 {
		// Same router: no inter-router link is traversed, so the message
		// contends only for the two endpoint ports — exactly the crossbar's
		// bookkeeping, which is what makes a 1x1 mesh with occupancy
		// byte-identical to an occupancy crossbar.
		start := now
		if m.txFreeAt[src] > start {
			start = m.txFreeAt[src]
		}
		if m.rxFreeAt[dst] > start {
			start = m.rxFreeAt[dst]
		}
		m.note(start - now)
		m.txFreeAt[src] = start + occ
		m.rxFreeAt[dst] = start + occ
		return start + lat
	}
	// Cross-router: inject at src, walk the XY route link by link (each
	// link serializes its messages), then eject at dst. Per-link FIFO
	// admission keeps per-port-pair delivery order monotone.
	t := now
	if m.txFreeAt[src] > t {
		t = m.txFreeAt[src]
	}
	m.txFreeAt[src] = t + occ
	x, y := r%m.cfg.W, r/m.cfg.W
	dx, dy := rd%m.cfg.W, rd/m.cfg.W
	for x != dx {
		var li int
		if x < dx {
			li = (y*m.cfg.W+x)*linkDirs + linkEast
			x++
		} else {
			li = (y*m.cfg.W+x)*linkDirs + linkWest
			x--
		}
		if m.linkFreeAt[li] > t {
			t = m.linkFreeAt[li]
		}
		hold := occ
		if f := m.cfg.LinkExtra; f != nil {
			hold += f(li, t)
		}
		m.linkFreeAt[li] = t + hold
		t += m.cfg.PerHop
	}
	for y != dy {
		var li int
		if y < dy {
			li = (y*m.cfg.W+x)*linkDirs + linkSouth
			y++
		} else {
			li = (y*m.cfg.W+x)*linkDirs + linkNorth
			y--
		}
		if m.linkFreeAt[li] > t {
			t = m.linkFreeAt[li]
		}
		hold := occ
		if f := m.cfg.LinkExtra; f != nil {
			hold += f(li, t)
		}
		m.linkFreeAt[li] = t + hold
		t += m.cfg.PerHop
	}
	if m.rxFreeAt[dst] > t {
		t = m.rxFreeAt[dst]
	}
	m.rxFreeAt[dst] = t + occ
	deliver := t + m.cfg.Latency
	m.note(deliver - now - lat)
	return deliver
}

// note records one message's queueing delay.
func (m *Mesh) note(queued sim.Cycle) {
	m.QueuedCycles += queued
	if queued > m.MaxQueue {
		m.MaxQueue = queued
	}
}

// Send schedules deliver after the message traverses src -> dst.
func (m *Mesh) Send(src, dst int, deliver func()) {
	if m.cfg.Route != nil {
		panic("interconnect: closure Send on a routed mesh")
	}
	m.eng.ScheduleAt(m.admit(src, dst), deliver)
}

// SendEvent is Send for a (handler, payload) event. On a routed mesh the
// Route hook owns scheduling and receives the full distance-dependent
// latency; only the message count is maintained here (atomically — shard
// workers deliver concurrently, and the count is a commutative sum).
func (m *Mesh) SendEvent(src, dst int, h sim.Handler, p sim.Payload) {
	if m.cfg.Route != nil {
		d := m.dist(m.routerOf[src], m.routerOf[dst])
		atomic.AddUint64(&m.Messages, 1)
		atomic.AddUint64(&m.HopsTotal, uint64(d))
		m.cfg.Route(src, dst, m.cfg.Latency+m.cfg.PerHop*sim.Cycle(d), h, p)
		return
	}
	m.eng.ScheduleEventAt(m.admit(src, dst), h, p)
}

// MessageCount returns the number of messages admitted so far.
func (m *Mesh) MessageCount() uint64 { return atomic.LoadUint64(&m.Messages) }

// AvgHops returns the mean inter-router hop count per message. Both
// counters are commutative sums over the (deterministic) message set, so
// the value is identical at every shard count.
func (m *Mesh) AvgHops() float64 {
	n := atomic.LoadUint64(&m.Messages)
	if n == 0 {
		return 0
	}
	return float64(atomic.LoadUint64(&m.HopsTotal)) / float64(n)
}

// AvgQueueing returns mean queueing delay per message beyond the
// unloaded latency.
func (m *Mesh) AvgQueueing() float64 {
	n := m.MessageCount()
	if n == 0 {
		return 0
	}
	return float64(m.QueuedCycles) / float64(n)
}
