package interconnect

import "repro/internal/sim"

// Fabric is the interface between the coherence system and the on-chip
// network model. Two implementations exist: the original full Crossbar
// (the default topology, byte-identical to every pre-Fabric build) and
// the 2D Mesh (XY dimension-order routing with per-hop latency and
// per-link occupancy). Both deliver messages through the owning engine's
// (cycle, seq) order, so a simulation is deterministic regardless of
// topology.
type Fabric interface {
	// Send schedules deliver after the message traverses src -> dst.
	Send(src, dst int, deliver func())

	// SendEvent is Send for a (handler, payload) event — the
	// zero-allocation delivery path coherence messages ride.
	SendEvent(src, dst int, h sim.Handler, p sim.Payload)

	// MinLatency returns the unloaded traversal latency for a (src, dst)
	// pair: the base latency plus any topology distance, with no queueing.
	// The sharded engine derives its conservative lookahead from the
	// minimum over cross-shard pairs — no message can cross shards faster.
	MinLatency(src, dst int) sim.Cycle

	// MessageCount returns the number of messages admitted so far.
	MessageCount() uint64

	// AvgQueueing returns the mean queueing delay per message beyond the
	// unloaded latency.
	AvgQueueing() float64
}

var (
	_ Fabric = (*Crossbar)(nil)
	_ Fabric = (*Mesh)(nil)
)
