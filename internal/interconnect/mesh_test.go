package interconnect

import (
	"testing"

	"repro/internal/sim"
)

func mustNewMesh(t *testing.T, eng *sim.Engine, cfg MeshConfig) *Mesh {
	t.Helper()
	m, err := NewMesh(eng, cfg)
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func TestMeshConfigValidate(t *testing.T) {
	if (MeshConfig{Ports: 0, W: 2, H: 2}).Validate() == nil {
		t.Fatal("zero ports accepted")
	}
	if (MeshConfig{Ports: 4, W: 0, H: 2}).Validate() == nil {
		t.Fatal("zero-width mesh accepted")
	}
	if (MeshConfig{Ports: 4, W: 2, H: 2, RouterOf: []int{0, 1}}).Validate() == nil {
		t.Fatal("short RouterOf accepted")
	}
	if (MeshConfig{Ports: 2, W: 2, H: 2, RouterOf: []int{0, 4}}).Validate() == nil {
		t.Fatal("out-of-range router accepted")
	}
	if (MeshConfig{Ports: 2, W: 2, H: 2, LinkOccupancy: 1,
		Route: func(int, int, sim.Cycle, sim.Handler, sim.Payload) {}}).Validate() == nil {
		t.Fatal("Route with link occupancy accepted")
	}
	if (MeshConfig{Ports: 4, W: 2, H: 2}).Validate() != nil {
		t.Fatal("valid config rejected")
	}
}

// Hop latency must be exactly base + Manhattan distance x PerHop for an
// unloaded mesh, for every port pair.
func TestMeshHopLatencyIsManhattan(t *testing.T) {
	const W, H = 4, 3
	eng := sim.NewEngine()
	ports := W * H
	routers := make([]int, ports)
	for i := range routers {
		routers[i] = i // port i on router i
	}
	m := mustNewMesh(t, eng, MeshConfig{
		Ports: ports, W: W, H: H, Latency: 3, PerHop: 2, RouterOf: routers,
	})
	for src := 0; src < ports; src++ {
		for dst := 0; dst < ports; dst++ {
			sx, sy := src%W, src/W
			dx, dy := dst%W, dst/W
			man := abs(sx-dx) + abs(sy-dy)
			want := sim.Cycle(3 + 2*man)
			if got := m.MinLatency(src, dst); got != want {
				t.Fatalf("MinLatency(%d,%d) = %d, want %d (dist %d)", src, dst, got, want, man)
			}
			var at sim.Cycle
			delivered := false
			m.Send(src, dst, func() { at, delivered = eng.Now(), true })
			now := eng.Now()
			eng.Run()
			if !delivered || at != now+want {
				t.Fatalf("unloaded delivery %d->%d at %d, want %d", src, dst, at, now+want)
			}
		}
	}
	if m.AvgQueueing() != 0 {
		t.Fatal("queueing counted on an unloaded pure-latency mesh")
	}
}

func abs(x int) int {
	if x < 0 {
		return -x
	}
	return x
}

// Messages entering the mesh at the same cycle must be delivered in a
// deterministic order: the engine's (cycle, seq) tie-break, i.e. exactly
// admission order for equal latencies.
func TestMeshDeterministicOrderAtEqualArrival(t *testing.T) {
	run := func() []int {
		eng := sim.NewEngine()
		m := mustNewMesh(t, eng, MeshConfig{Ports: 8, W: 2, H: 2, Latency: 1, PerHop: 1})
		var order []int
		for i := 0; i < 8; i++ {
			i := i
			// All to the same destination with the same source router:
			// identical delivery cycles, ordered purely by sequence.
			m.Send(0, 1, func() { order = append(order, i) })
		}
		eng.Run()
		return order
	}
	first := run()
	for i, v := range first {
		if v != i {
			t.Fatalf("delivery order %v not admission order", first)
		}
	}
	second := run()
	for i := range first {
		if first[i] != second[i] {
			t.Fatalf("delivery order differs across runs: %v vs %v", first, second)
		}
	}
}

// XY routing is deadlock-free: full-mesh random traffic with link
// occupancy must drain completely, every message delivered no earlier
// than its unloaded latency, and per-(src,dst) delivery order monotone.
func TestMeshXYRandomTrafficDrains(t *testing.T) {
	const W, H = 4, 4
	eng := sim.NewEngine()
	ports := W * H
	routers := make([]int, ports)
	for i := range routers {
		routers[i] = i
	}
	m := mustNewMesh(t, eng, MeshConfig{
		Ports: ports, W: W, H: H, Latency: 2, PerHop: 1, LinkOccupancy: 2,
		RouterOf: routers,
	})
	rng := sim.NewRNG(42)
	type rec struct {
		src, dst int
		sent     sim.Cycle
		got      sim.Cycle
	}
	var recs []*rec
	const n = 2000
	for i := 0; i < n; i++ {
		src := int(rng.Uint64n(uint64(ports)))
		dst := int(rng.Uint64n(uint64(ports)))
		r := &rec{src: src, dst: dst, sent: eng.Now()}
		recs = append(recs, r)
		m.Send(src, dst, func() { r.got = eng.Now() })
		if i%5 == 0 {
			eng.RunTo(eng.Now() + 1)
		}
	}
	eng.Run()
	last := map[[2]int]sim.Cycle{}
	for _, r := range recs {
		if r.got == 0 {
			t.Fatalf("message %d->%d sent at %d never delivered (deadlock?)", r.src, r.dst, r.sent)
		}
		if min := r.sent + m.MinLatency(r.src, r.dst); r.got < min {
			t.Fatalf("message %d->%d delivered at %d, before unloaded bound %d", r.src, r.dst, r.got, min)
		}
		key := [2]int{r.src, r.dst}
		if r.got < last[key] {
			t.Fatalf("per-pair order violated for %v: %d after %d", key, r.got, last[key])
		}
		last[key] = r.got
	}
	if m.MessageCount() != n {
		t.Fatalf("MessageCount = %d, want %d", m.MessageCount(), n)
	}
	if m.HopsTotal == 0 {
		t.Fatal("no hops recorded under random traffic")
	}
}

// A 1x1 mesh must be byte-identical to a crossbar with the same latency
// and occupancy: same delivery cycles, same queueing statistics, for the
// same admission sequence.
func TestMesh1x1EquivalentToCrossbar(t *testing.T) {
	for _, occ := range []sim.Cycle{0, 3} {
		engX := sim.NewEngine()
		x := mustNew(t, engX, Config{Ports: 6, Latency: 4, Occupancy: occ})
		engM := sim.NewEngine()
		m := mustNewMesh(t, engM, MeshConfig{Ports: 6, W: 1, H: 1, Latency: 4, PerHop: 7, LinkOccupancy: occ})

		rng := sim.NewRNG(7)
		var xa, ma []sim.Cycle
		for i := 0; i < 500; i++ {
			src := int(rng.Uint64n(6))
			dst := int(rng.Uint64n(6))
			x.Send(src, dst, func() { xa = append(xa, engX.Now()) })
			m.Send(src, dst, func() { ma = append(ma, engM.Now()) })
			if i%7 == 0 {
				engX.RunTo(engX.Now() + 2)
				engM.RunTo(engM.Now() + 2)
			}
		}
		engX.Run()
		engM.Run()
		if len(xa) != len(ma) {
			t.Fatalf("occ=%d: delivered %d vs %d messages", occ, len(xa), len(ma))
		}
		for i := range xa {
			if xa[i] != ma[i] {
				t.Fatalf("occ=%d: delivery %d at cycle %d (crossbar) vs %d (1x1 mesh)", occ, i, xa[i], ma[i])
			}
		}
		if x.QueuedCycles != m.QueuedCycles || x.MaxQueue != m.MaxQueue || x.MessageCount() != m.MessageCount() {
			t.Fatalf("occ=%d: stats diverge: crossbar {%d %d %d} vs mesh {%d %d %d}",
				occ, x.QueuedCycles, x.MaxQueue, x.MessageCount(),
				m.QueuedCycles, m.MaxQueue, m.MessageCount())
		}
	}
}

// Default router placement spreads ports evenly and in order.
func TestMeshDefaultPlacement(t *testing.T) {
	eng := sim.NewEngine()
	m := mustNewMesh(t, eng, MeshConfig{Ports: 8, W: 2, H: 2, Latency: 1})
	prev := -1
	for p := 0; p < 8; p++ {
		r := m.RouterOfPort(p)
		if r < prev {
			t.Fatalf("placement not monotone: port %d on router %d after %d", p, r, prev)
		}
		if r < 0 || r >= 4 {
			t.Fatalf("port %d on out-of-range router %d", p, r)
		}
		prev = r
	}
}
