package interconnect

import (
	"testing"
	"testing/quick"

	"repro/internal/sim"
)

func mustNew(t *testing.T, eng *sim.Engine, cfg Config) *Crossbar {
	t.Helper()
	x, err := New(eng, cfg)
	if err != nil {
		t.Fatal(err)
	}
	return x
}

func TestConfigValidate(t *testing.T) {
	if (Config{Ports: 0}).Validate() == nil {
		t.Fatal("zero ports accepted")
	}
	if (Config{Ports: 4}).Validate() != nil {
		t.Fatal("valid config rejected")
	}
}

func TestZeroOccupancyIsPureLatency(t *testing.T) {
	eng := sim.NewEngine()
	x := mustNew(t, eng, Config{Ports: 4, Latency: 3, Occupancy: 0})
	var arrivals []sim.Cycle
	for i := 0; i < 10; i++ {
		x.Send(0, 1, func() { arrivals = append(arrivals, eng.Now()) })
	}
	eng.Run()
	for _, a := range arrivals {
		if a != 3 {
			t.Fatalf("arrival at %d, want 3 (no contention)", a)
		}
	}
	if x.AvgQueueing() != 0 {
		t.Fatal("queueing counted in zero-occupancy mode")
	}
}

func TestPortContentionSerializes(t *testing.T) {
	eng := sim.NewEngine()
	x := mustNew(t, eng, Config{Ports: 4, Latency: 3, Occupancy: 2})
	var arrivals []sim.Cycle
	// Three messages from the same source at t=0: egress admits one per
	// 2 cycles.
	for i := 0; i < 3; i++ {
		x.Send(0, 1, func() { arrivals = append(arrivals, eng.Now()) })
	}
	eng.Run()
	want := []sim.Cycle{3, 5, 7}
	for i, a := range arrivals {
		if a != want[i] {
			t.Fatalf("arrivals = %v, want %v", arrivals, want)
		}
	}
	if x.MaxQueue != 4 {
		t.Fatalf("max queue = %d, want 4", x.MaxQueue)
	}
}

func TestDistinctPortPairsDoNotContend(t *testing.T) {
	eng := sim.NewEngine()
	x := mustNew(t, eng, Config{Ports: 4, Latency: 3, Occupancy: 2})
	var arrivals []sim.Cycle
	x.Send(0, 1, func() { arrivals = append(arrivals, eng.Now()) })
	x.Send(2, 3, func() { arrivals = append(arrivals, eng.Now()) })
	eng.Run()
	if arrivals[0] != 3 || arrivals[1] != 3 {
		t.Fatalf("independent pairs contended: %v", arrivals)
	}
}

func TestIngressContention(t *testing.T) {
	eng := sim.NewEngine()
	x := mustNew(t, eng, Config{Ports: 4, Latency: 1, Occupancy: 5})
	var arrivals []sim.Cycle
	// Two different sources target the same destination.
	x.Send(0, 2, func() { arrivals = append(arrivals, eng.Now()) })
	x.Send(1, 2, func() { arrivals = append(arrivals, eng.Now()) })
	eng.Run()
	if arrivals[0] != 1 || arrivals[1] != 6 {
		t.Fatalf("arrivals = %v, want [1 6]", arrivals)
	}
}

// Property: messages between a fixed pair always arrive in send order and
// never earlier than latency.
func TestOrderingProperty(t *testing.T) {
	f := func(gaps []uint8) bool {
		eng := sim.NewEngine()
		x := mustNew(t, eng, Config{Ports: 2, Latency: 4, Occupancy: 3})
		var arrivals []sim.Cycle
		var sends []sim.Cycle
		t0 := sim.Cycle(0)
		for _, g := range gaps {
			t0 += sim.Cycle(g % 5)
			at := t0
			eng.ScheduleAt(at, func() {
				sends = append(sends, eng.Now())
				x.Send(0, 1, func() { arrivals = append(arrivals, eng.Now()) })
			})
		}
		eng.Run()
		if len(arrivals) != len(gaps) {
			return false
		}
		for i := 1; i < len(arrivals); i++ {
			if arrivals[i] < arrivals[i-1] {
				return false
			}
		}
		for i := range arrivals {
			if arrivals[i] < sends[i]+4 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestNewRejectsBadConfig(t *testing.T) {
	x, err := New(sim.NewEngine(), Config{Ports: 0})
	if err == nil {
		t.Fatal("bad config accepted")
	}
	if x != nil {
		t.Fatal("crossbar returned alongside error")
	}
}

// The Extra hook injects occupancy like jitter does: delays stretch
// delivery but the per-port bookkeeping preserves send order.
func TestExtraHookDelaysAndPreservesOrder(t *testing.T) {
	eng := sim.NewEngine()
	calls := 0
	x := mustNew(t, eng, Config{
		Ports: 2, Latency: 3,
		Extra: func(src, dst int, now sim.Cycle) sim.Cycle {
			calls++
			if calls == 1 {
				return 10 // spike on the first message only
			}
			return 0
		},
	})
	var arrivals []sim.Cycle
	x.Send(0, 1, func() { arrivals = append(arrivals, eng.Now()) })
	x.Send(0, 1, func() { arrivals = append(arrivals, eng.Now()) })
	eng.Run()
	// First message occupies the ports for 10 cycles; the second starts
	// after it, so both the spike and the ordering are visible.
	if len(arrivals) != 2 || arrivals[0] != 3 || arrivals[1] != 13 {
		t.Fatalf("arrivals = %v, want [3 13]", arrivals)
	}
	if calls != 2 {
		t.Fatalf("Extra consulted %d times, want 2", calls)
	}
}

// A nil Extra hook and zero occupancy must keep the pure-latency shortcut:
// no port bookkeeping, identical timing to the pre-hook crossbar.
func TestNilExtraKeepsPureLatencyPath(t *testing.T) {
	eng := sim.NewEngine()
	x := mustNew(t, eng, Config{Ports: 2, Latency: 5})
	var arrivals []sim.Cycle
	for i := 0; i < 4; i++ {
		x.Send(0, 1, func() { arrivals = append(arrivals, eng.Now()) })
	}
	eng.Run()
	for _, a := range arrivals {
		if a != 5 {
			t.Fatalf("arrival at %d, want 5", a)
		}
	}
	if x.QueuedCycles != 0 {
		t.Fatal("pure-latency path did port bookkeeping")
	}
}
