package server

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/experiments"
	"repro/internal/resultcache"
	"repro/internal/stats"
)

func discardLog(string, ...any) {}

// newTestServer builds a server over a memory-only cache and a fake
// runner that produces deterministic bytes per experiment name.
func newTestServer(t *testing.T, cfg Config, runs *atomic.Int64) (*Server, *stats.CacheStats) {
	t.Helper()
	st := &stats.CacheStats{}
	if cfg.Cache == nil {
		cfg.Cache = resultcache.New(32, "", st, discardLog)
	}
	if cfg.Logf == nil {
		cfg.Logf = discardLog
	}
	if cfg.Run == nil {
		cfg.Run = func(_ context.Context, key resultcache.Key) (*resultcache.Entry, error) {
			if runs != nil {
				runs.Add(1)
			}
			return &resultcache.Entry{
				Report: []byte("report for " + key.Experiment + "\n"),
				Wall:   42 * time.Millisecond,
			}, nil
		}
	}
	s := New(cfg)
	t.Cleanup(func() { drainNow(t, s) })
	return s, st
}

func drainNow(t *testing.T, s *Server) {
	t.Helper()
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if err := s.Drain(ctx); err != nil {
		t.Errorf("drain: %v", err)
	}
}

// waitFor polls cond until it holds or a generous deadline passes.
func waitFor(t *testing.T, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(60 * time.Second)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatal("condition never held")
		}
		time.Sleep(time.Millisecond)
	}
}

func postJSON(h http.Handler, path string, body any) *httptest.ResponseRecorder {
	raw, err := json.Marshal(body)
	if err != nil {
		panic(err)
	}
	w := httptest.NewRecorder()
	h.ServeHTTP(w, httptest.NewRequest("POST", path, bytes.NewReader(raw)))
	return w
}

func get(h http.Handler, path string) *httptest.ResponseRecorder {
	w := httptest.NewRecorder()
	h.ServeHTTP(w, httptest.NewRequest("GET", path, nil))
	return w
}

func TestRunEndpointMissThenHit(t *testing.T) {
	var runs atomic.Int64
	s, st := newTestServer(t, Config{}, &runs)
	h := s.Handler()
	spec := Spec{Experiment: "table5"}

	first := postJSON(h, "/v1/run", spec)
	if first.Code != http.StatusOK {
		t.Fatalf("first run: %d %s", first.Code, first.Body)
	}
	if got := first.Header().Get("X-Swiftdir-Cache"); got != "miss" {
		t.Errorf("first X-Swiftdir-Cache = %q, want miss", got)
	}

	second := postJSON(h, "/v1/run", spec)
	if second.Code != http.StatusOK {
		t.Fatalf("second run: %d %s", second.Code, second.Body)
	}
	if got := second.Header().Get("X-Swiftdir-Cache"); got != "hit" {
		t.Errorf("second X-Swiftdir-Cache = %q, want hit", got)
	}
	if !bytes.Equal(first.Body.Bytes(), second.Body.Bytes()) {
		t.Error("hit body differs from miss body")
	}
	if first.Header().Get("X-Swiftdir-Key") != second.Header().Get("X-Swiftdir-Key") {
		t.Error("key header differs between identical specs")
	}
	if got := runs.Load(); got != 1 {
		t.Errorf("underlying runs = %d, want 1", got)
	}
	if s := st.Snapshot(); s.Hits != 1 || s.Misses != 1 {
		t.Errorf("hits/misses = %d/%d, want 1/1", s.Hits, s.Misses)
	}

	// A normalization-equivalent spec (irrelevant knob set) is the same key.
	third := postJSON(h, "/v1/run", Spec{Experiment: "table5", Params: experiments.Params{Scale: 0.9}})
	if got := third.Header().Get("X-Swiftdir-Cache"); got != "hit" {
		t.Errorf("normalized-equivalent spec: cache = %q, want hit", got)
	}
}

func TestRunRejectsUnknownExperimentAndBadJSON(t *testing.T) {
	s, _ := newTestServer(t, Config{}, nil)
	h := s.Handler()

	w := postJSON(h, "/v1/run", Spec{Experiment: "fig99"})
	if w.Code != http.StatusBadRequest {
		t.Fatalf("unknown experiment: %d", w.Code)
	}
	// The error must teach the vocabulary: every registry name listed.
	for _, name := range experiments.Names() {
		if !strings.Contains(w.Body.String(), name) {
			t.Errorf("unknown-experiment error missing %q", name)
		}
	}

	raw := httptest.NewRecorder()
	h.ServeHTTP(raw, httptest.NewRequest("POST", "/v1/run", strings.NewReader("{nope")))
	if raw.Code != http.StatusBadRequest {
		t.Errorf("bad JSON: %d, want 400", raw.Code)
	}
}

func TestRunnerErrorIs500(t *testing.T) {
	s, _ := newTestServer(t, Config{
		Run: func(context.Context, resultcache.Key) (*resultcache.Entry, error) {
			return nil, fmt.Errorf("model diverged")
		},
	}, nil)
	w := postJSON(s.Handler(), "/v1/run", Spec{Experiment: "table5"})
	if w.Code != http.StatusInternalServerError || !strings.Contains(w.Body.String(), "model diverged") {
		t.Errorf("runner error: %d %s", w.Code, w.Body)
	}
}

// N concurrent identical submissions observe exactly one underlying run:
// one miss, N-1 dedups, every body byte-identical.
func TestConcurrentIdenticalRunsDedup(t *testing.T) {
	var runs atomic.Int64
	release := make(chan struct{})
	s, st := newTestServer(t, Config{
		QueueDepth: 64,
		Run: func(_ context.Context, key resultcache.Key) (*resultcache.Entry, error) {
			runs.Add(1)
			<-release
			return &resultcache.Entry{Report: []byte("shared report")}, nil
		},
	}, nil)
	h := s.Handler()

	const n = 8
	var wg sync.WaitGroup
	recs := make([]*httptest.ResponseRecorder, n)
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			recs[i] = postJSON(h, "/v1/run", Spec{Experiment: "overhead"})
		}(i)
	}
	deadline := time.Now().Add(10 * time.Second)
	for st.Dedups.Load() < n-1 {
		if time.Now().After(deadline) {
			t.Fatalf("only %d waiters joined the flight", st.Dedups.Load())
		}
		time.Sleep(time.Millisecond)
	}
	close(release)
	wg.Wait()

	if got := runs.Load(); got != 1 {
		t.Fatalf("underlying runs = %d, want 1", got)
	}
	sources := map[string]int{}
	for i, w := range recs {
		if w.Code != http.StatusOK {
			t.Fatalf("request %d: %d %s", i, w.Code, w.Body)
		}
		if w.Body.String() != "shared report" {
			t.Fatalf("request %d body = %q", i, w.Body)
		}
		sources[w.Header().Get("X-Swiftdir-Cache")]++
	}
	if sources["miss"] != 1 || sources["dedup"] != n-1 {
		t.Errorf("sources = %v, want 1 miss + %d dedup", sources, n-1)
	}
}

func TestBatchLifecycle(t *testing.T) {
	var runs atomic.Int64
	s, _ := newTestServer(t, Config{Workers: 2}, &runs)
	h := s.Handler()

	w := postJSON(h, "/v1/batch", map[string]any{
		"specs": []Spec{{Experiment: "table5"}, {Experiment: "overhead"}},
	})
	if w.Code != http.StatusAccepted {
		t.Fatalf("batch: %d %s", w.Code, w.Body)
	}
	var resp struct {
		Batch string
		Jobs  []struct{ ID, Experiment, Key string }
	}
	if err := json.Unmarshal(w.Body.Bytes(), &resp); err != nil {
		t.Fatal(err)
	}
	if resp.Batch == "" || len(resp.Jobs) != 2 {
		t.Fatalf("batch response: %+v", resp)
	}

	// Poll each job to done and fetch its report.
	for _, ref := range resp.Jobs {
		var st jobStatus
		deadline := time.Now().Add(30 * time.Second)
		for {
			jw := get(h, "/v1/jobs/"+ref.ID)
			if jw.Code != http.StatusOK {
				t.Fatalf("job %s: %d", ref.ID, jw.Code)
			}
			if err := json.Unmarshal(jw.Body.Bytes(), &st); err != nil {
				t.Fatal(err)
			}
			if st.State == stateDone || st.State == stateFailed {
				break
			}
			if time.Now().After(deadline) {
				t.Fatalf("job %s stuck in %s", ref.ID, st.State)
			}
			time.Sleep(time.Millisecond)
		}
		if st.State != stateDone || st.ReportBytes == 0 {
			t.Fatalf("job %s: %+v", ref.ID, st)
		}
		rw := get(h, "/v1/jobs/"+ref.ID+"/report")
		if rw.Code != http.StatusOK {
			t.Fatalf("report %s: %d", ref.ID, rw.Code)
		}
		want := "report for " + ref.Experiment + "\n"
		if rw.Body.String() != want {
			t.Errorf("report %s = %q, want %q", ref.ID, rw.Body, want)
		}
		if rw.Header().Get("X-Swiftdir-Key") != ref.Key {
			t.Errorf("report key header mismatch for %s", ref.ID)
		}
	}

	// The stream endpoint replays to the terminal state.
	sw := get(h, "/v1/jobs/"+resp.Jobs[0].ID+"/stream")
	if !strings.Contains(sw.Body.String(), "state=done") {
		t.Errorf("stream = %q, want a state=done line", sw.Body)
	}

	// A second identical batch is served from cache.
	w2 := postJSON(h, "/v1/batch", map[string]any{
		"specs": []Spec{{Experiment: "table5"}, {Experiment: "overhead"}},
	})
	if w2.Code != http.StatusAccepted {
		t.Fatalf("second batch: %d", w2.Code)
	}
	var resp2 struct {
		Jobs []struct{ ID string }
	}
	json.Unmarshal(w2.Body.Bytes(), &resp2)
	for _, ref := range resp2.Jobs {
		var st jobStatus
		deadline := time.Now().Add(30 * time.Second)
		for st.State != stateDone {
			if time.Now().After(deadline) {
				t.Fatalf("cached job %s stuck", ref.ID)
			}
			json.Unmarshal(get(h, "/v1/jobs/"+ref.ID).Body.Bytes(), &st)
			time.Sleep(time.Millisecond)
		}
		if st.Cache != "hit" {
			t.Errorf("second-batch job %s cache = %q, want hit", ref.ID, st.Cache)
		}
	}
	if got := runs.Load(); got != 2 {
		t.Errorf("underlying runs = %d, want 2 (second batch all hits)", got)
	}

	if get(h, "/v1/jobs/j999").Code != http.StatusNotFound {
		t.Error("missing job not 404")
	}
	if postJSON(h, "/v1/batch", map[string]any{"specs": []Spec{}}).Code != http.StatusBadRequest {
		t.Error("empty batch not 400")
	}
}

// When the queue cannot take the whole batch, admission fails atomically
// with 429 — no partial batches.
func TestBatchBackpressure(t *testing.T) {
	release := make(chan struct{})
	s, _ := newTestServer(t, Config{
		Workers:    1,
		QueueDepth: 2,
		Run: func(_ context.Context, key resultcache.Key) (*resultcache.Entry, error) {
			<-release
			return &resultcache.Entry{Report: []byte("r")}, nil
		},
	}, nil)
	h := s.Handler()

	if w := postJSON(h, "/v1/batch", map[string]any{"specs": []Spec{{Experiment: "table5"}, {Experiment: "overhead"}}}); w.Code != http.StatusAccepted {
		t.Fatalf("first batch: %d %s", w.Code, w.Body)
	}
	// Queue holds 2; even after the worker picks one up, a 2-spec batch
	// needs 2 free slots and at most 1 is free.
	w := postJSON(h, "/v1/batch", map[string]any{"specs": []Spec{{Experiment: "traffic"}, {Experiment: "sweep"}}})
	if w.Code != http.StatusTooManyRequests {
		t.Fatalf("over-capacity batch: %d, want 429", w.Code)
	}
	if !strings.Contains(w.Body.String(), "retry later") {
		t.Errorf("429 body not actionable: %s", w.Body)
	}
	close(release)
}

// Synchronous computes are bounded by the queue depth too; cache hits are
// exempt from back-pressure.
func TestRunBackpressureAndHitExemption(t *testing.T) {
	release := make(chan struct{})
	var once sync.Once
	s, _ := newTestServer(t, Config{
		QueueDepth: 1,
		Run: func(_ context.Context, key resultcache.Key) (*resultcache.Entry, error) {
			if key.Experiment == "overhead" {
				<-release
			}
			return &resultcache.Entry{Report: []byte("r " + key.Experiment)}, nil
		},
	}, nil)
	defer once.Do(func() { close(release) })
	h := s.Handler()

	// Warm one entry so we can prove hits bypass the gate.
	if w := postJSON(h, "/v1/run", Spec{Experiment: "table5"}); w.Code != http.StatusOK {
		t.Fatalf("warm: %d", w.Code)
	}

	done := make(chan *httptest.ResponseRecorder, 1)
	go func() { done <- postJSON(h, "/v1/run", Spec{Experiment: "overhead"}) }()
	deadline := time.Now().Add(10 * time.Second)
	for s.syncWait.Load() != 1 {
		if time.Now().After(deadline) {
			t.Fatal("blocking compute never admitted")
		}
		time.Sleep(time.Millisecond)
	}

	if w := postJSON(h, "/v1/run", Spec{Experiment: "traffic"}); w.Code != http.StatusTooManyRequests {
		t.Fatalf("saturated sync compute: %d, want 429", w.Code)
	}
	if w := postJSON(h, "/v1/run", Spec{Experiment: "table5"}); w.Code != http.StatusOK || w.Header().Get("X-Swiftdir-Cache") != "hit" {
		t.Fatalf("cache hit refused under saturation: %d %s", w.Code, w.Header().Get("X-Swiftdir-Cache"))
	}

	once.Do(func() { close(release) })
	if w := <-done; w.Code != http.StatusOK {
		t.Fatalf("blocked compute: %d", w.Code)
	}
}

func TestDrainRefusesNewWorkButServesHits(t *testing.T) {
	s, _ := newTestServer(t, Config{}, nil)
	h := s.Handler()

	if w := get(h, "/healthz"); w.Code != http.StatusOK {
		t.Fatalf("healthz before drain: %d", w.Code)
	}
	if w := postJSON(h, "/v1/run", Spec{Experiment: "table5"}); w.Code != http.StatusOK {
		t.Fatalf("warm: %d", w.Code)
	}

	drainNow(t, s)
	if !s.Draining() {
		t.Fatal("Draining() false after Drain")
	}
	if w := get(h, "/healthz"); w.Code != http.StatusServiceUnavailable {
		t.Errorf("healthz during drain: %d, want 503", w.Code)
	}
	if w := postJSON(h, "/v1/batch", map[string]any{"specs": []Spec{{Experiment: "overhead"}}}); w.Code != http.StatusServiceUnavailable {
		t.Errorf("batch during drain: %d, want 503", w.Code)
	}
	if w := postJSON(h, "/v1/run", Spec{Experiment: "overhead"}); w.Code != http.StatusServiceUnavailable {
		t.Errorf("fresh compute during drain: %d, want 503", w.Code)
	}
	// Cache hits cost microseconds and stay available to the end.
	if w := postJSON(h, "/v1/run", Spec{Experiment: "table5"}); w.Code != http.StatusOK || w.Header().Get("X-Swiftdir-Cache") != "hit" {
		t.Errorf("cache hit during drain: %d %s", w.Code, w.Header().Get("X-Swiftdir-Cache"))
	}
}

func TestStatszAndExperiments(t *testing.T) {
	s, _ := newTestServer(t, Config{Workers: 3, QueueDepth: 7}, nil)
	h := s.Handler()
	postJSON(h, "/v1/run", Spec{Experiment: "table5"})
	postJSON(h, "/v1/run", Spec{Experiment: "table5"})

	w := get(h, "/statsz")
	var st struct {
		Cache      stats.CacheSnapshot `json:"cache"`
		QueueDepth int                 `json:"queue_depth"`
		Workers    int                 `json:"workers"`
	}
	if err := json.Unmarshal(w.Body.Bytes(), &st); err != nil {
		t.Fatalf("statsz: %v (%s)", err, w.Body)
	}
	if st.Cache.Hits != 1 || st.Cache.Misses != 1 || st.Workers != 3 || st.QueueDepth != 7 {
		t.Errorf("statsz = %+v", st)
	}

	ew := get(h, "/v1/experiments")
	var items []struct{ Name, Title string }
	if err := json.Unmarshal(ew.Body.Bytes(), &items); err != nil {
		t.Fatal(err)
	}
	if len(items) != len(experiments.Names()) {
		t.Errorf("experiments endpoint lists %d names, registry has %d", len(items), len(experiments.Names()))
	}
}
