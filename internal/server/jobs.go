package server

import (
	"sync"
	"time"

	"repro/internal/resultcache"
)

// Job states, in order. A job moves queued → running → done|failed and
// never back.
const (
	stateQueued  = "queued"
	stateRunning = "running"
	stateDone    = "done"
	stateFailed  = "failed"
)

// job is one batch entry's lifecycle. The entry/source/wall fields are
// written exactly once (at finish) before the terminal state is
// published, so readers that observe stateDone may read them without the
// lock the way handleJobReport does.
type job struct {
	id        string
	key       resultcache.Key
	timeoutMS int64 // the spec's timeout_ms, applied when a worker picks it up

	mu      sync.Mutex
	state   string
	source  string // hit | miss | dedup, set at finish
	wall    time.Duration
	err     error
	errText string
	entry   *resultcache.Entry
	changed chan struct{} // closed and replaced on every transition
}

func newJob(id string, key resultcache.Key, timeoutMS int64) *job {
	return &job{id: id, key: key, timeoutMS: timeoutMS, state: stateQueued, changed: make(chan struct{})}
}

// transition publishes a state change and wakes every watcher.
func (j *job) transition(fn func()) {
	j.mu.Lock()
	fn()
	close(j.changed)
	j.changed = make(chan struct{})
	j.mu.Unlock()
}

func (j *job) setRunning() {
	j.transition(func() { j.state = stateRunning })
}

func (j *job) finish(e *resultcache.Entry, source string, wall time.Duration, err error) {
	j.transition(func() {
		j.entry, j.source, j.wall = e, source, wall
		if err != nil {
			j.state, j.err, j.errText = stateFailed, err, err.Error()
			return
		}
		j.state = stateDone
	})
}

// jobStatus is the wire form of GET /v1/jobs/{id}.
type jobStatus struct {
	ID          string `json:"id"`
	Experiment  string `json:"experiment"`
	Key         string `json:"key"`
	State       string `json:"state"`
	Cache       string `json:"cache,omitempty"`
	WallNS      int64  `json:"wall_ns,omitempty"`
	RunWallNS   int64  `json:"run_wall_ns,omitempty"`
	ReportBytes int    `json:"report_bytes,omitempty"`
	Error       string `json:"error,omitempty"`
}

func (j *job) status() jobStatus {
	st, _ := j.watch()
	return st
}

// watch returns the current status plus the channel that closes on the
// next transition — the primitive behind the stream endpoint.
func (j *job) watch() (jobStatus, <-chan struct{}) {
	j.mu.Lock()
	defer j.mu.Unlock()
	st := jobStatus{
		ID:         j.id,
		Experiment: j.key.Experiment,
		Key:        j.key.ID().String(),
		State:      j.state,
		Cache:      j.source,
		WallNS:     j.wall.Nanoseconds(),
		Error:      j.errText,
	}
	if j.entry != nil {
		st.RunWallNS = j.entry.Wall.Nanoseconds()
		st.ReportBytes = len(j.entry.Report)
	}
	return st, j.changed
}
