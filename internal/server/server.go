// Package server is the simulation-as-a-service layer: a long-running
// HTTP/JSON front end that schedules experiment specs on the existing
// campaign machinery and memoizes every report in the content-addressed
// result cache (internal/resultcache).
//
// The serving contract rests on the repo's determinism guarantee: a
// report is a pure function of its cache key, so a hit is byte-identical
// to a re-run (asserted end to end against the committed golden hashes
// in golden_e2e_test.go). Overlapping parameter sweeps from many clients
// therefore mostly collapse into O(1) lookups — and identical specs that
// are *in flight* collapse too, via singleflight dedup: N concurrent
// identical requests cost one simulation and produce N responses.
//
// Endpoints:
//
//	POST /v1/run             synchronous: raw report bytes (metadata in
//	                         X-Swiftdir-* headers so bodies stay
//	                         byte-identical across hit/miss/dedup)
//	POST /v1/batch           enqueue a batch of specs; 429 when the
//	                         bounded queue cannot take the whole batch
//	GET  /v1/jobs/{id}       job status JSON
//	GET  /v1/jobs/{id}/report raw report bytes once done (202 before)
//	GET  /v1/jobs/{id}/stream plain-text state transitions as they happen
//	GET  /v1/experiments     the registry vocabulary
//	GET  /healthz            200 ok / 503 draining
//	GET  /statsz             cache + queue counters (stats.CacheStats)
//
// Graceful drain: Drain stops intake (healthz flips to 503, batch
// submissions are refused), lets queued jobs finish, and returns when
// the workers are idle or the context expires — the SIGTERM path of
// cmd/swiftdir-serve.
package server

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"os"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/campaign"
	"repro/internal/experiments"
	"repro/internal/fault"
	"repro/internal/resultcache"
	"repro/internal/stats"
)

// Spec is the wire form of one experiment request. Params are normalized
// by the registry before keying, so a spec only needs the knobs it cares
// about.
type Spec struct {
	Experiment string             `json:"experiment"`
	Params     experiments.Params `json:"params"`

	// TimeoutMS, when positive, bounds this request's compute time in
	// milliseconds; past it the run is aborted mid-simulation and the
	// request fails with a typed "cancelled" error. It is a request
	// attribute, not an experiment knob: it does not participate in the
	// cache key, so a timed-out spec retried without the deadline is the
	// same cache entry.
	TimeoutMS int64 `json:"timeout_ms,omitempty"`
}

// Config wires a Server.
type Config struct {
	// Cache is the content-addressed store (required).
	Cache *resultcache.Cache
	// Workers is the batch worker-pool size (default 2). Each worker runs
	// one experiment at a time; the experiment itself fans out over the
	// campaign pool, so a couple of workers saturate a host.
	Workers int
	// QueueDepth bounds the batch job queue and the number of synchronous
	// computes allowed to wait; beyond it requests are refused with 429
	// (default 64).
	QueueDepth int
	// Run overrides the experiment runner (tests). nil runs the registry.
	// The context is cancelled when the client disconnects, the job's
	// deadline passes, or the server force-drains; a run that returns on
	// cancellation must return a non-nil error so the result cache is
	// never populated with a partial report.
	Run func(ctx context.Context, key resultcache.Key) (*resultcache.Entry, error)
	// JobTimeout, when positive, is the default per-job compute deadline
	// (the -job-timeout flag); a spec's timeout_ms overrides it per
	// request.
	JobTimeout time.Duration
	// BundleDir, when set, receives a crash bundle for every diverging
	// run (fault.WriteBundle); the failure response references the
	// bundle directory.
	BundleDir string
	// Logf receives operational warnings (default stderr).
	Logf func(format string, args ...any)
}

// Server resolves specs through cache → singleflight → compute and owns
// the batch queue, the job registry, and the drain lifecycle.
type Server struct {
	cache  *resultcache.Cache
	flight *resultcache.Flight
	stats  *stats.CacheStats
	run    func(ctx context.Context, key resultcache.Key) (*resultcache.Entry, error)
	logf   func(string, ...any)

	jobTimeout time.Duration
	bundleDir  string
	cancelled  atomic.Int64 // runs aborted by deadline/disconnect/drain

	// baseCtx parents every compute; Drain cancels it once its own
	// context expires, aborting in-flight simulations instead of leaving
	// workers wedged behind a long run.
	baseCtx    context.Context
	baseCancel context.CancelCauseFunc

	workers    int
	queueDepth int
	queue      chan *job
	wg         sync.WaitGroup

	mu       sync.Mutex // guards jobs, queueClosed, batch/job id counters
	jobs     map[string]*job
	nextJob  int
	nextBat  int
	qClosed  bool
	queued   int // jobs enqueued but not yet picked up (exact, unlike len(queue))
	draining atomic.Bool
	syncWait atomic.Int64 // synchronous computes in progress or waiting
	started  time.Time
}

// New builds and starts a Server (its batch workers run until Drain).
func New(cfg Config) *Server {
	if cfg.Cache == nil {
		panic("server: Config.Cache is required")
	}
	if cfg.Workers <= 0 {
		cfg.Workers = 2
	}
	if cfg.QueueDepth <= 0 {
		cfg.QueueDepth = 64
	}
	if cfg.Logf == nil {
		cfg.Logf = func(format string, args ...any) {
			fmt.Fprintf(os.Stderr, "swiftdir-serve: "+format+"\n", args...)
		}
	}
	baseCtx, baseCancel := context.WithCancelCause(context.Background())
	s := &Server{
		cache:      cfg.Cache,
		flight:     resultcache.NewFlight(cfg.Cache.Stats()),
		stats:      cfg.Cache.Stats(),
		run:        cfg.Run,
		logf:       cfg.Logf,
		jobTimeout: cfg.JobTimeout,
		bundleDir:  cfg.BundleDir,
		baseCtx:    baseCtx,
		baseCancel: baseCancel,
		workers:    cfg.Workers,
		queueDepth: cfg.QueueDepth,
		queue:      make(chan *job, cfg.QueueDepth),
		jobs:       make(map[string]*job),
		started:    time.Now(),
	}
	if s.run == nil {
		s.run = s.runRegistry
	}
	for i := 0; i < s.workers; i++ {
		s.wg.Add(1)
		go s.worker()
	}
	return s
}

// Sentinel resolution refusals, mapped to HTTP statuses by the handlers.
var (
	errDraining = fmt.Errorf("draining")
	errBusy     = fmt.Errorf("compute queue full; retry later")
)

// resolve serves one spec's key: cache hit, in-flight share, or a fresh
// run (which populates the cache). source is "hit", "dedup", or "miss".
// admit, when non-nil, is consulted after a cache miss and before any
// compute — the hook synchronous requests use for back-pressure, so a
// hit is always served even on a saturated or draining server.
// A cancelled run (ctx fired mid-simulation) returns a *CancelledError
// and never reaches the cache: Put happens only on a nil-error compute,
// so a later identical request is an honest miss that runs to
// completion. Singleflight waiters share the leader's outcome by
// construction — if the leader's context aborts the run, every waiter
// observes that cancellation rather than a bogus entry.
func (s *Server) resolve(ctx context.Context, key resultcache.Key, admit func() error) (e *resultcache.Entry, source string, err error) {
	id := key.ID()
	s.stats.Inflight.Add(1)
	defer s.stats.Inflight.Add(-1)
	if e, ok := s.cache.Get(id); ok {
		return e, "hit", nil
	}
	if admit != nil {
		if err := admit(); err != nil {
			return nil, "", err
		}
		defer s.syncWait.Add(-1)
	}
	e, shared, err := s.flight.Do(id, func() (*resultcache.Entry, error) {
		ent, err := s.run(ctx, key)
		if err != nil {
			var ce *CancelledError
			if errors.As(err, &ce) {
				s.cancelled.Add(1)
			}
			return nil, err
		}
		ent.Key = key
		s.cache.Put(ent)
		return ent, nil
	})
	if shared {
		return e, "dedup", err
	}
	return e, "miss", err
}

// jobCtx derives one compute's context: parented on the server's
// lifetime (force-drain aborts it), joined to the caller's context
// (client disconnect aborts it), bounded by the per-request deadline
// (timeout_ms, else the -job-timeout default).
func (s *Server) jobCtx(parent context.Context, timeoutMS int64) (context.Context, context.CancelFunc) {
	ctx, cancel := context.WithCancelCause(parent)
	stop := context.AfterFunc(s.baseCtx, func() { cancel(context.Cause(s.baseCtx)) })
	timeout := s.jobTimeout
	if timeoutMS > 0 {
		timeout = time.Duration(timeoutMS) * time.Millisecond
	}
	if timeout <= 0 {
		return ctx, func() { stop(); cancel(nil) }
	}
	tctx, tcancel := context.WithTimeoutCause(ctx, timeout,
		fmt.Errorf("job deadline (%v) exceeded: %w", timeout, context.DeadlineExceeded))
	return tctx, func() { tcancel(); stop(); cancel(nil) }
}

// admitSync is the synchronous-compute gate: refuse while draining, and
// bound the number of in-flight synchronous computes by the queue depth.
// On success the caller's resolve holds one syncWait slot.
func (s *Server) admitSync() error {
	if s.draining.Load() {
		return errDraining
	}
	if s.syncWait.Add(1) > int64(s.queueDepth) {
		s.syncWait.Add(-1)
		return errBusy
	}
	return nil
}

// CancelledError reports a run aborted by its context: client
// disconnect, per-job deadline, or server drain. It is never cached.
type CancelledError struct {
	Experiment string
	Cause      error  // context cause (deadline, disconnect, drain)
	Detail     string // the simulator's own cancellation report, if any
}

func (e *CancelledError) Error() string {
	msg := fmt.Sprintf("experiment %s cancelled", e.Experiment)
	if e.Cause != nil {
		msg += ": " + e.Cause.Error()
	}
	if e.Detail != "" {
		msg += " (" + e.Detail + ")"
	}
	return msg
}

// DivergedError reports a diverging simulation (panic or protocol
// violation), referencing the crash bundle when one was written.
type DivergedError struct {
	Experiment string
	Msg        string
	Bundle     string // bundle directory, "" when none was written
}

func (e *DivergedError) Error() string {
	msg := fmt.Sprintf("experiment %s diverged: %s", e.Experiment, e.Msg)
	if e.Bundle != "" {
		msg += " (crash bundle: " + e.Bundle + ")"
	}
	return msg
}

// writeBundle persists a crash bundle for a diverging run and returns
// its directory ("" when bundling is disabled or fails — bundle I/O
// must never mask the original failure).
func (s *Server) writeBundle(key resultcache.Key, v *fault.Violation, stack []byte) string {
	if s.bundleDir == "" {
		return ""
	}
	dir, err := fault.WriteBundle(s.bundleDir, fault.BundleSpec{
		Violation: v,
		Plan:      fault.Plan{Name: "serve-" + key.Experiment},
		Stack:     stack,
	})
	if err != nil {
		s.logf("crash bundle for %s failed: %v", key.Experiment, err)
		return ""
	}
	return dir
}

// classifyPanic turns a recovered run panic into a typed error. A panic
// that unwinds while the context is already done is the cancellation
// itself (the engines abort with a "cancelled" violation that campaign
// layers may re-wrap); everything else is a divergence that gets a
// crash bundle.
func (s *Server) classifyPanic(ctx context.Context, key resultcache.Key, p any) error {
	v, isViolation := p.(*fault.Violation)
	if (isViolation && v.Kind == fault.KindCancelled) || ctx.Err() != nil {
		ce := &CancelledError{Experiment: key.Experiment, Cause: context.Cause(ctx)}
		if isViolation {
			ce.Detail = v.Msg
		}
		return ce
	}
	if !isViolation {
		// A plain panic still gets a typed bundle so the failure is
		// replay-triageable like any other violation.
		v = &fault.Violation{
			Kind:      fault.KindPanic,
			Component: "server",
			Msg:       fmt.Sprint(p),
		}
	}
	return &DivergedError{
		Experiment: key.Experiment,
		Msg:        fmt.Sprint(p),
		Bundle:     s.writeBundle(key, v, nil),
	}
}

// runRegistry executes one experiment through the shared registry,
// capturing the report plus the accounting footers as the sidecar. A
// diverging simulation (panic) is returned as an error. Footer
// attribution is best-effort when runs overlap — the footers are
// informational; only the report bytes are the deterministic artifact.
func (s *Server) runRegistry(ctx context.Context, key resultcache.Key) (*resultcache.Entry, error) {
	exp, ok := experiments.Lookup(key.Experiment)
	if !ok {
		return nil, &experiments.UnknownExperimentError{Name: key.Experiment}
	}
	start := time.Now()
	report, err := func() (r string, err error) {
		defer func() {
			if p := recover(); p != nil {
				err = s.classifyPanic(ctx, key, p)
			}
		}()
		return exp.RunCtx(ctx, key.Params), nil
	}()
	wall := time.Since(start)
	var side strings.Builder
	if sum := stats.MergeCampaigns(key.Experiment, campaign.TakeSummaries()); len(sum.Jobs) > 0 {
		sum.Wall = wall
		side.WriteString(sum.Footer() + "\n")
	}
	if fp := stats.MergeFastPaths(key.Experiment, stats.TakeFastPaths()); fp.Total() > 0 {
		side.WriteString(fp.Footer() + "\n")
	}
	if sh := stats.MergeShards(key.Experiment, stats.TakeShards()); sh.Shards() > 0 {
		side.WriteString(sh.Footer() + "\n")
	}
	if err != nil {
		return nil, err
	}
	return &resultcache.Entry{
		Key:     key,
		Report:  []byte(report),
		Sidecar: []byte(side.String()),
		Wall:    wall,
	}, nil
}

// worker drains the batch queue until Drain closes it.
func (s *Server) worker() {
	defer s.wg.Done()
	for j := range s.queue {
		s.mu.Lock()
		s.queued--
		s.mu.Unlock()
		j.setRunning()
		start := time.Now()
		ctx, cancel := s.jobCtx(context.Background(), j.timeoutMS)
		e, source, err := s.resolve(ctx, j.key, nil)
		cancel()
		j.finish(e, source, time.Since(start), err)
	}
}

// Drain stops intake and waits for the queue to empty and the workers to
// go idle, or for ctx to expire. It is idempotent.
func (s *Server) Drain(ctx context.Context) error {
	s.draining.Store(true)
	s.mu.Lock()
	if !s.qClosed {
		close(s.queue)
		s.qClosed = true
	}
	s.mu.Unlock()
	done := make(chan struct{})
	go func() {
		s.wg.Wait()
		close(done)
	}()
	select {
	case <-done:
		return nil
	case <-ctx.Done():
		// The grace period is over: abort in-flight simulations (their
		// machines carry cancel tokens parented on baseCtx) and wait for
		// the workers to unwind. Aborted jobs fail with a typed
		// cancellation and are never cached.
		s.baseCancel(fmt.Errorf("server draining: %w", context.Cause(ctx)))
		<-done
		return fmt.Errorf("server: drain deadline hit; in-flight jobs aborted")
	}
}

// Draining reports whether Drain has been initiated.
func (s *Server) Draining() bool { return s.draining.Load() }

// ---------------------------------------------------------------------
// HTTP layer

// Handler returns the server's route table.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/run", s.handleRun)
	mux.HandleFunc("POST /v1/batch", s.handleBatch)
	mux.HandleFunc("GET /v1/jobs/{id}", s.handleJob)
	mux.HandleFunc("GET /v1/jobs/{id}/report", s.handleJobReport)
	mux.HandleFunc("GET /v1/jobs/{id}/stream", s.handleJobStream)
	mux.HandleFunc("GET /v1/experiments", s.handleExperiments)
	mux.HandleFunc("GET /healthz", s.handleHealthz)
	mux.HandleFunc("GET /statsz", s.handleStatsz)
	return mux
}

func httpError(w http.ResponseWriter, code int, format string, args ...any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	json.NewEncoder(w).Encode(map[string]string{"error": fmt.Sprintf(format, args...)})
}

// decodeSpec reads one Spec and derives its normalized key.
func decodeSpec(r *http.Request) (Spec, resultcache.Key, error) {
	var spec Spec
	dec := json.NewDecoder(http.MaxBytesReader(nil, r.Body, 1<<20))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&spec); err != nil {
		return Spec{}, resultcache.Key{}, fmt.Errorf("bad spec: %v", err)
	}
	key, err := resultcache.NewKey(spec.Experiment, spec.Params)
	if err != nil {
		return Spec{}, resultcache.Key{}, err
	}
	return spec, key, nil
}

// writeEntry sends the raw report bytes with the resolution metadata in
// headers, keeping the body byte-identical across hit, miss, and dedup.
func writeEntry(w http.ResponseWriter, e *resultcache.Entry, source string, wall time.Duration) {
	h := w.Header()
	h.Set("Content-Type", "text/plain; charset=utf-8")
	h.Set("X-Swiftdir-Cache", source)
	h.Set("X-Swiftdir-Key", e.Key.ID().String())
	h.Set("X-Swiftdir-Wall-Ns", strconv.FormatInt(wall.Nanoseconds(), 10))
	h.Set("X-Swiftdir-Run-Wall-Ns", strconv.FormatInt(e.Wall.Nanoseconds(), 10))
	w.Write(e.Report)
}

// statusClientClosedRequest is nginx's 499: the client went away before
// the response; our compute was aborted on its behalf.
const statusClientClosedRequest = 499

// writeFailure emits the typed JSON error body for a failed compute:
// "kind" distinguishes cancellation from divergence, and diverged
// responses reference their crash bundle when one was written.
func writeFailure(w http.ResponseWriter, code int, kind, bundle string, err error) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	body := map[string]string{"error": err.Error(), "kind": kind}
	if bundle != "" {
		body["bundle"] = bundle
	}
	json.NewEncoder(w).Encode(body)
}

// writeResolveErr maps a resolve failure to its HTTP response. Shared by
// the synchronous path and the batch report endpoint so a given failure
// reads the same either way.
func (s *Server) writeResolveErr(w http.ResponseWriter, err error) {
	var ce *CancelledError
	var de *DivergedError
	switch {
	case err == errDraining:
		httpError(w, http.StatusServiceUnavailable, "draining")
	case err == errBusy:
		// Back-pressure, not failure: tell well-behaved clients when to
		// come back (scripts/serve-e2e.sh honors this).
		w.Header().Set("Retry-After", "1")
		httpError(w, http.StatusTooManyRequests, "compute queue full (%d in flight); retry later", s.queueDepth)
	case errors.As(err, &ce):
		code := statusClientClosedRequest
		if errors.Is(ce.Cause, context.DeadlineExceeded) {
			code = http.StatusGatewayTimeout
		}
		writeFailure(w, code, "cancelled", "", ce)
	case errors.As(err, &de):
		writeFailure(w, http.StatusInternalServerError, "diverged", de.Bundle, de)
	case err != nil:
		httpError(w, http.StatusInternalServerError, "%v", err)
	}
}

func (s *Server) handleRun(w http.ResponseWriter, r *http.Request) {
	spec, key, err := decodeSpec(r)
	if err != nil {
		httpError(w, http.StatusBadRequest, "%v", err)
		return
	}
	// Cache hits are always served, even while draining or saturated —
	// they cost microseconds. Fresh computes go through admitSync so a
	// traffic spike degrades to 429, not an unbounded goroutine pile.
	// The compute context carries the client connection (disconnect
	// aborts the run mid-simulation), the request deadline, and the
	// server lifetime.
	start := time.Now()
	ctx, cancel := s.jobCtx(r.Context(), spec.TimeoutMS)
	defer cancel()
	e, source, err := s.resolve(ctx, key, s.admitSync)
	if err != nil {
		s.writeResolveErr(w, err)
		return
	}
	writeEntry(w, e, source, time.Since(start))
}

func (s *Server) handleBatch(w http.ResponseWriter, r *http.Request) {
	var req struct {
		Specs []Spec `json:"specs"`
	}
	dec := json.NewDecoder(http.MaxBytesReader(nil, r.Body, 8<<20))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&req); err != nil {
		httpError(w, http.StatusBadRequest, "bad batch: %v", err)
		return
	}
	if len(req.Specs) == 0 {
		httpError(w, http.StatusBadRequest, "empty batch")
		return
	}
	keys := make([]resultcache.Key, len(req.Specs))
	for i, spec := range req.Specs {
		key, err := resultcache.NewKey(spec.Experiment, spec.Params)
		if err != nil {
			httpError(w, http.StatusBadRequest, "spec %d: %v", i, err)
			return
		}
		keys[i] = key
	}

	type jobRef struct {
		ID         string `json:"id"`
		Experiment string `json:"experiment"`
		Key        string `json:"key"`
	}
	resp := struct {
		Batch string   `json:"batch"`
		Jobs  []jobRef `json:"jobs"`
	}{}

	// Admission is atomic: the whole batch fits in the queue or none of
	// it is accepted (a half-admitted batch would be miserable to retry).
	s.mu.Lock()
	if s.draining.Load() || s.qClosed {
		s.mu.Unlock()
		httpError(w, http.StatusServiceUnavailable, "draining")
		return
	}
	if s.queued+len(req.Specs) > s.queueDepth {
		free := s.queueDepth - s.queued
		s.mu.Unlock()
		w.Header().Set("Retry-After", "1")
		httpError(w, http.StatusTooManyRequests, "queue full (%d slots free, batch needs %d); retry later", free, len(req.Specs))
		return
	}
	s.nextBat++
	resp.Batch = fmt.Sprintf("b%d", s.nextBat)
	batch := make([]*job, len(req.Specs))
	for i, key := range keys {
		s.nextJob++
		j := newJob(fmt.Sprintf("j%d", s.nextJob), key, req.Specs[i].TimeoutMS)
		s.jobs[j.id] = j
		batch[i] = j
		resp.Jobs = append(resp.Jobs, jobRef{ID: j.id, Experiment: key.Experiment, Key: key.ID().String()})
	}
	s.queued += len(batch)
	for _, j := range batch {
		s.queue <- j // cannot block: queued <= queueDepth == cap(queue)
	}
	s.mu.Unlock()

	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(http.StatusAccepted)
	json.NewEncoder(w).Encode(resp)
}

func (s *Server) lookupJob(w http.ResponseWriter, r *http.Request) *job {
	s.mu.Lock()
	j := s.jobs[r.PathValue("id")]
	s.mu.Unlock()
	if j == nil {
		httpError(w, http.StatusNotFound, "no such job %q", r.PathValue("id"))
	}
	return j
}

func (s *Server) handleJob(w http.ResponseWriter, r *http.Request) {
	j := s.lookupJob(w, r)
	if j == nil {
		return
	}
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(j.status())
}

func (s *Server) handleJobReport(w http.ResponseWriter, r *http.Request) {
	j := s.lookupJob(w, r)
	if j == nil {
		return
	}
	st := j.status()
	switch st.State {
	case stateDone:
		writeEntry(w, j.entry, j.source, j.wall)
	case stateFailed:
		s.writeResolveErr(w, j.err)
	default:
		w.Header().Set("Content-Type", "application/json")
		w.WriteHeader(http.StatusAccepted)
		json.NewEncoder(w).Encode(st)
	}
}

// handleJobStream writes one "state=<state> ..." line per transition
// until the job reaches a terminal state or the client goes away — the
// cheap progress feed a sweep driver polls-without-polling.
func (s *Server) handleJobStream(w http.ResponseWriter, r *http.Request) {
	j := s.lookupJob(w, r)
	if j == nil {
		return
	}
	fl, _ := w.(http.Flusher)
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	w.Header().Set("Cache-Control", "no-store")
	for {
		st, changed := j.watch()
		fmt.Fprintf(w, "state=%s", st.State)
		if st.Cache != "" {
			fmt.Fprintf(w, " cache=%s wall_ns=%d", st.Cache, st.WallNS)
		}
		if st.Error != "" {
			fmt.Fprintf(w, " error=%q", st.Error)
		}
		fmt.Fprintln(w)
		if fl != nil {
			fl.Flush()
		}
		if st.State == stateDone || st.State == stateFailed {
			return
		}
		select {
		case <-changed:
		case <-r.Context().Done():
			return
		}
	}
}

func (s *Server) handleExperiments(w http.ResponseWriter, _ *http.Request) {
	type item struct {
		Name  string `json:"name"`
		Title string `json:"title"`
	}
	var items []item
	for _, e := range experiments.Registry() {
		items = append(items, item{Name: e.Name, Title: e.Title})
	}
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(items)
}

func (s *Server) handleHealthz(w http.ResponseWriter, _ *http.Request) {
	if s.draining.Load() {
		w.WriteHeader(http.StatusServiceUnavailable)
		fmt.Fprintln(w, "draining")
		return
	}
	fmt.Fprintln(w, "ok")
}

func (s *Server) handleStatsz(w http.ResponseWriter, _ *http.Request) {
	s.mu.Lock()
	jobsTotal := len(s.jobs)
	queued := s.queued
	s.mu.Unlock()
	resp := struct {
		Cache      stats.CacheSnapshot `json:"cache"`
		Queued     int                 `json:"queued"`
		QueueDepth int                 `json:"queue_depth"`
		Workers    int                 `json:"workers"`
		Jobs       int                 `json:"jobs"`
		Cancelled  int64               `json:"cancelled"`
		Draining   bool                `json:"draining"`
		UptimeSec  float64             `json:"uptime_sec"`
	}{
		Cache:      s.stats.Snapshot(),
		Queued:     queued,
		QueueDepth: s.queueDepth,
		Workers:    s.workers,
		Jobs:       jobsTotal,
		Cancelled:  s.cancelled.Load(),
		Draining:   s.draining.Load(),
		UptimeSec:  time.Since(s.started).Seconds(),
	}
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(resp)
}
