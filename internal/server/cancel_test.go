package server

import (
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"errors"

	"repro/internal/experiments"
	"repro/internal/fault"
	"repro/internal/resultcache"
)

// simulatedRun builds a fake runner with the real simulator's abort
// contract: it "executes" up to total events, checking the context
// between events, and a fired context unwinds as a KindCancelled
// violation that the server's classifier (the same code path runRegistry
// uses) turns into a typed *CancelledError. events accumulates the
// per-run executed counts, exposing how far each run got.
func simulatedRun(srv **Server, events *atomic.Int64, total int, step time.Duration) func(context.Context, resultcache.Key) (*resultcache.Entry, error) {
	return func(ctx context.Context, key resultcache.Key) (e *resultcache.Entry, err error) {
		defer func() {
			if p := recover(); p != nil {
				err = (*srv).classifyPanic(ctx, key, p)
			}
		}()
		n := 0
		for ; n < total; n++ {
			select {
			case <-ctx.Done():
				events.Add(int64(n))
				panic(&fault.Violation{
					Kind: fault.KindCancelled, Component: "cancel",
					Msg: fmt.Sprintf("run cancelled: %v (%d events executed)", context.Cause(ctx), n),
				})
			default:
			}
			time.Sleep(step)
		}
		events.Add(int64(n))
		return &resultcache.Entry{
			Report: []byte(fmt.Sprintf("golden report for %s after %d events\n", key.Experiment, n)),
		}, nil
	}
}

// The headline acceptance test: a run with timeout_ms is aborted
// mid-simulation (strictly fewer events executed than the uncancelled
// run), fails with a typed "cancelled" error, is never cached — and the
// identical spec submitted afterwards is an honest miss that runs to
// byte-identical golden completion.
func TestRunTimeoutAbortsMidSimulationAndNeverPoisonsCache(t *testing.T) {
	var srv *Server
	var events atomic.Int64
	const total = 400
	s, st := newTestServer(t, Config{
		Run: simulatedRun(&srv, &events, total, time.Millisecond),
	}, nil)
	srv = s
	h := s.Handler()

	w := postJSON(h, "/v1/run", Spec{Experiment: "table5", TimeoutMS: 40})
	if w.Code != http.StatusGatewayTimeout {
		t.Fatalf("timed-out run: %d %s, want 504", w.Code, w.Body)
	}
	var body struct{ Error, Kind string }
	if err := json.Unmarshal(w.Body.Bytes(), &body); err != nil {
		t.Fatal(err)
	}
	if body.Kind != "cancelled" || !strings.Contains(body.Error, "deadline") {
		t.Errorf("failure body = %+v, want kind=cancelled with the deadline cause", body)
	}
	aborted := events.Load()
	if aborted == 0 || aborted >= total {
		t.Errorf("cancelled run executed %d events, want 0 < n < %d", aborted, total)
	}
	if s.cancelled.Load() != 1 {
		t.Errorf("cancelled counter = %d, want 1", s.cancelled.Load())
	}

	// The retry without a deadline is a miss (nothing was cached) and
	// runs all the way.
	events.Store(0)
	w2 := postJSON(h, "/v1/run", Spec{Experiment: "table5"})
	if w2.Code != http.StatusOK || w2.Header().Get("X-Swiftdir-Cache") != "miss" {
		t.Fatalf("retry: %d cache=%q, want 200 miss", w2.Code, w2.Header().Get("X-Swiftdir-Cache"))
	}
	want := fmt.Sprintf("golden report for table5 after %d events\n", total)
	if w2.Body.String() != want {
		t.Errorf("retry body = %q, want the golden completion %q", w2.Body, want)
	}
	if events.Load() != total {
		t.Errorf("retry executed %d events, want the full %d", events.Load(), total)
	}

	// And the third request is a hit on the completed entry.
	w3 := postJSON(h, "/v1/run", Spec{Experiment: "table5"})
	if w3.Code != http.StatusOK || w3.Header().Get("X-Swiftdir-Cache") != "hit" {
		t.Fatalf("third request: %d cache=%q, want 200 hit", w3.Code, w3.Header().Get("X-Swiftdir-Cache"))
	}
	if w3.Body.String() != want {
		t.Error("cached body differs from the computed one")
	}
	if snap := st.Snapshot(); snap.Hits != 1 {
		t.Errorf("hits = %d, want exactly the third request", snap.Hits)
	}
}

// A client that disconnects mid-run aborts the compute: 499 with
// kind=cancelled, and nothing is cached.
func TestRunClientDisconnectAborts(t *testing.T) {
	var srv *Server
	started := make(chan struct{}, 1)
	s, _ := newTestServer(t, Config{
		Run: func(ctx context.Context, key resultcache.Key) (e *resultcache.Entry, err error) {
			defer func() {
				if p := recover(); p != nil {
					err = srv.classifyPanic(ctx, key, p)
				}
			}()
			started <- struct{}{}
			<-ctx.Done()
			panic(&fault.Violation{Kind: fault.KindCancelled, Component: "cancel", Msg: "run cancelled"})
		},
	}, nil)
	srv = s
	h := s.Handler()

	reqCtx, hangUp := context.WithCancel(context.Background())
	req := httptest.NewRequest("POST", "/v1/run",
		strings.NewReader(`{"experiment":"overhead"}`)).WithContext(reqCtx)
	w := httptest.NewRecorder()
	go func() {
		<-started
		hangUp()
	}()
	h.ServeHTTP(w, req)
	if w.Code != statusClientClosedRequest {
		t.Fatalf("disconnected run: %d %s, want 499", w.Code, w.Body)
	}
	var body struct{ Kind string }
	json.Unmarshal(w.Body.Bytes(), &body)
	if body.Kind != "cancelled" {
		t.Errorf("kind = %q, want cancelled", body.Kind)
	}
	if _, ok := s.cache.Get(mustKeyID(t, "overhead")); ok {
		t.Error("aborted run was cached")
	}
}

func mustKeyID(t *testing.T, exp string) resultcache.ID {
	t.Helper()
	key, err := resultcache.NewKey(exp, experiments.Params{})
	if err != nil {
		t.Fatal(err)
	}
	return key.ID()
}

// Singleflight waiters share the leader's outcome — including its
// cancellation. When the leader's deadline fires, every deduped waiter
// observes the same typed cancellation, and the next identical request
// is a fresh miss that completes.
func TestSingleflightWaitersObserveLeaderCancellation(t *testing.T) {
	var srv *Server
	var starts atomic.Int64
	release := make(chan struct{})
	s, st := newTestServer(t, Config{
		QueueDepth: 16,
		Run: func(ctx context.Context, key resultcache.Key) (e *resultcache.Entry, err error) {
			defer func() {
				if p := recover(); p != nil {
					err = srv.classifyPanic(ctx, key, p)
				}
			}()
			starts.Add(1)
			select {
			case <-ctx.Done():
				panic(&fault.Violation{Kind: fault.KindCancelled, Component: "cancel",
					Msg: "run cancelled: " + context.Cause(ctx).Error()})
			case <-release:
				return &resultcache.Entry{Report: []byte("late but complete\n")}, nil
			}
		},
	}, nil)
	srv = s
	h := s.Handler()

	const waiters = 3
	var wg sync.WaitGroup
	recs := make([]*httptest.ResponseRecorder, waiters+1)
	wg.Add(1)
	go func() {
		defer wg.Done()
		// The leader carries the only deadline.
		recs[0] = postJSON(h, "/v1/run", Spec{Experiment: "traffic", TimeoutMS: 250})
	}()
	waitFor(t, func() bool { return starts.Load() == 1 })
	for i := 1; i <= waiters; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			recs[i] = postJSON(h, "/v1/run", Spec{Experiment: "traffic"})
		}(i)
	}
	waitFor(t, func() bool { return st.Dedups.Load() >= waiters })
	// Everyone is aboard; now the leader's deadline fires.
	wg.Wait()

	for i, w := range recs {
		if w.Code != http.StatusGatewayTimeout {
			t.Errorf("request %d: %d %s, want the leader's 504", i, w.Code, w.Body)
		}
		var body struct{ Kind string }
		json.Unmarshal(w.Body.Bytes(), &body)
		if body.Kind != "cancelled" {
			t.Errorf("request %d kind = %q", i, body.Kind)
		}
	}
	if got := starts.Load(); got != 1 {
		t.Fatalf("underlying runs = %d, want 1 (waiters shared the leader)", got)
	}

	// The flight is gone and nothing was cached: a retry is a miss that
	// runs to completion once the runner can finish.
	close(release)
	w := postJSON(h, "/v1/run", Spec{Experiment: "traffic"})
	if w.Code != http.StatusOK || w.Header().Get("X-Swiftdir-Cache") != "miss" {
		t.Fatalf("post-cancellation retry: %d cache=%q, want 200 miss",
			w.Code, w.Header().Get("X-Swiftdir-Cache"))
	}
	if w.Body.String() != "late but complete\n" {
		t.Errorf("retry body = %q", w.Body)
	}
}

// A diverging run (panic that is not a cancellation) fails as a typed
// 500 with kind=diverged and a crash bundle on disk, is never cached,
// and leaves the worker pool healthy for the next job.
func TestDivergingRunWritesBundleAndPoolSurvives(t *testing.T) {
	var srv *Server
	dir := t.TempDir()
	s, _ := newTestServer(t, Config{
		Workers:   1,
		BundleDir: dir,
		Run: func(ctx context.Context, key resultcache.Key) (e *resultcache.Entry, err error) {
			defer func() {
				if p := recover(); p != nil {
					err = srv.classifyPanic(ctx, key, p)
				}
			}()
			if key.Experiment == "sweep" {
				panic(&fault.Violation{Kind: fault.KindProtocol, Cycle: 4242,
					Component: "bank 3", Msg: "stale owner", Dump: "-- dump --"})
			}
			return &resultcache.Entry{Report: []byte("healthy report\n")}, nil
		},
	}, nil)
	srv = s
	h := s.Handler()

	// Batch: the diverging job first, a healthy one behind it on the same
	// single worker.
	w := postJSON(h, "/v1/batch", map[string]any{
		"specs": []Spec{{Experiment: "sweep"}, {Experiment: "table5"}},
	})
	if w.Code != http.StatusAccepted {
		t.Fatalf("batch: %d %s", w.Code, w.Body)
	}
	var resp struct {
		Jobs []struct{ ID string }
	}
	json.Unmarshal(w.Body.Bytes(), &resp)

	var diverged jobStatus
	waitFor(t, func() bool {
		json.Unmarshal(get(h, "/v1/jobs/"+resp.Jobs[0].ID).Body.Bytes(), &diverged)
		return diverged.State == stateFailed || diverged.State == stateDone
	})
	if diverged.State != stateFailed || !strings.Contains(diverged.Error, "stale owner") {
		t.Fatalf("diverging job = %+v", diverged)
	}

	rw := get(h, "/v1/jobs/"+resp.Jobs[0].ID+"/report")
	if rw.Code != http.StatusInternalServerError {
		t.Fatalf("diverged report: %d, want 500", rw.Code)
	}
	var body struct{ Error, Kind, Bundle string }
	if err := json.Unmarshal(rw.Body.Bytes(), &body); err != nil {
		t.Fatal(err)
	}
	if body.Kind != "diverged" || body.Bundle == "" {
		t.Fatalf("failure body = %+v, want kind=diverged with a bundle reference", body)
	}
	v, err := fault.ReadBundleViolation(body.Bundle)
	if err != nil {
		t.Fatalf("referenced bundle unreadable: %v", err)
	}
	if v.Kind != fault.KindProtocol || v.Cycle != 4242 || v.Msg != "stale owner" {
		t.Errorf("bundled violation = %+v", v)
	}

	// The same worker then serves the healthy job: the panic was
	// contained, not fatal to the pool.
	var healthy jobStatus
	waitFor(t, func() bool {
		json.Unmarshal(get(h, "/v1/jobs/"+resp.Jobs[1].ID).Body.Bytes(), &healthy)
		return healthy.State == stateDone || healthy.State == stateFailed
	})
	if healthy.State != stateDone {
		t.Fatalf("healthy job after divergence = %+v", healthy)
	}
}

// classifyPanic unit coverage: the cancellation/divergence split, the
// wrapping of plain panics as KindPanic bundles, and the rule that a
// violation unwinding through an already-dead context is the
// cancellation itself, not a divergence.
func TestClassifyPanic(t *testing.T) {
	dir := t.TempDir()
	s, _ := newTestServer(t, Config{BundleDir: dir}, nil)
	key, err := resultcache.NewKey("fig9", experiments.Params{})
	if err != nil {
		t.Fatal(err)
	}
	bg := context.Background()

	var ce *CancelledError
	var de *DivergedError

	err = s.classifyPanic(bg, key, &fault.Violation{Kind: fault.KindCancelled, Msg: "run cancelled: drain"})
	if !errors.As(err, &ce) || ce.Detail != "run cancelled: drain" {
		t.Errorf("cancelled violation → %v", err)
	}

	dead, cancel := context.WithCancelCause(bg)
	cancel(fmt.Errorf("client went away"))
	err = s.classifyPanic(dead, key, "incidental panic during teardown")
	if !errors.As(err, &ce) || !strings.Contains(ce.Error(), "client went away") {
		t.Errorf("panic under dead context → %v, want cancellation with the context cause", err)
	}

	err = s.classifyPanic(bg, key, &fault.Violation{Kind: fault.KindProtocol, Msg: "bad state"})
	if !errors.As(err, &de) || de.Bundle == "" {
		t.Fatalf("protocol violation → %v, want divergence with a bundle", err)
	}

	err = s.classifyPanic(bg, key, "boom")
	if !errors.As(err, &de) || de.Bundle == "" {
		t.Fatalf("plain panic → %v, want divergence with a bundle", err)
	}
	v, rerr := fault.ReadBundleViolation(de.Bundle)
	if rerr != nil {
		t.Fatal(rerr)
	}
	if v.Kind != fault.KindPanic || v.Msg != "boom" {
		t.Errorf("plain panic bundled as %+v, want KindPanic", v)
	}
}

// A batch job with timeout_ms is aborted by the worker's own deadline —
// no client connection involved — and reports 504 kind=cancelled.
func TestBatchJobTimeoutMS(t *testing.T) {
	var srv *Server
	s, _ := newTestServer(t, Config{
		Workers: 1,
		Run: func(ctx context.Context, key resultcache.Key) (e *resultcache.Entry, err error) {
			defer func() {
				if p := recover(); p != nil {
					err = srv.classifyPanic(ctx, key, p)
				}
			}()
			<-ctx.Done()
			panic(&fault.Violation{Kind: fault.KindCancelled, Component: "cancel",
				Msg: "run cancelled: " + context.Cause(ctx).Error()})
		},
	}, nil)
	srv = s
	h := s.Handler()

	w := postJSON(h, "/v1/batch", map[string]any{
		"specs": []Spec{{Experiment: "fig8", TimeoutMS: 30}},
	})
	if w.Code != http.StatusAccepted {
		t.Fatalf("batch: %d %s", w.Code, w.Body)
	}
	var resp struct {
		Jobs []struct{ ID string }
	}
	json.Unmarshal(w.Body.Bytes(), &resp)

	var st jobStatus
	waitFor(t, func() bool {
		json.Unmarshal(get(h, "/v1/jobs/"+resp.Jobs[0].ID).Body.Bytes(), &st)
		return st.State == stateFailed || st.State == stateDone
	})
	if st.State != stateFailed || !strings.Contains(st.Error, "deadline") {
		t.Fatalf("timed-out batch job = %+v", st)
	}
	rw := get(h, "/v1/jobs/"+resp.Jobs[0].ID+"/report")
	if rw.Code != http.StatusGatewayTimeout {
		t.Errorf("timed-out job report: %d, want 504", rw.Code)
	}
	if s.cancelled.Load() != 1 {
		t.Errorf("cancelled counter = %d, want 1", s.cancelled.Load())
	}
}

// Drain past its grace period force-aborts in-flight jobs instead of
// leaving workers wedged behind them; the aborted jobs fail typed and
// uncached.
func TestDrainForceAbortsInFlightJobs(t *testing.T) {
	var srv *Server
	started := make(chan struct{}, 1)
	s, _ := newTestServer(t, Config{
		Workers: 1,
		Run: func(ctx context.Context, key resultcache.Key) (e *resultcache.Entry, err error) {
			defer func() {
				if p := recover(); p != nil {
					err = srv.classifyPanic(ctx, key, p)
				}
			}()
			started <- struct{}{}
			<-ctx.Done() // no deadline: only the drain can end this
			panic(&fault.Violation{Kind: fault.KindCancelled, Component: "cancel",
				Msg: "run cancelled: " + context.Cause(ctx).Error()})
		},
	}, nil)
	srv = s
	h := s.Handler()

	w := postJSON(h, "/v1/batch", map[string]any{"specs": []Spec{{Experiment: "fig7"}}})
	if w.Code != http.StatusAccepted {
		t.Fatalf("batch: %d %s", w.Code, w.Body)
	}
	var resp struct {
		Jobs []struct{ ID string }
	}
	json.Unmarshal(w.Body.Bytes(), &resp)
	<-started

	ctx, cancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
	defer cancel()
	if err := s.Drain(ctx); err == nil || !strings.Contains(err.Error(), "in-flight jobs aborted") {
		t.Fatalf("force drain returned %v, want the aborted-jobs error", err)
	}

	var st jobStatus
	json.Unmarshal(get(h, "/v1/jobs/"+resp.Jobs[0].ID).Body.Bytes(), &st)
	if st.State != stateFailed || !strings.Contains(st.Error, "draining") {
		t.Errorf("force-aborted job = %+v, want failed with the drain cause", st)
	}
	if s.cancelled.Load() != 1 {
		t.Errorf("cancelled counter = %d, want 1", s.cancelled.Load())
	}
}

// The cancellation stress test CI runs under -race: many concurrent
// synchronous runs, half of them deadlined, against one server. The
// server must stay coherent — every deadlined request fails typed, every
// healthy request completes, the cancelled counter balances exactly, and
// afterwards the cache holds only completed entries.
func TestCancellationStress(t *testing.T) {
	var srv *Server
	var healed atomic.Bool
	s, st := newTestServer(t, Config{
		Workers:    4,
		QueueDepth: 64,
		Run: func(ctx context.Context, key resultcache.Key) (e *resultcache.Entry, err error) {
			defer func() {
				if p := recover(); p != nil {
					err = srv.classifyPanic(ctx, key, p)
				}
			}()
			if strings.HasPrefix(key.Experiment, "fig") && !healed.Load() {
				<-ctx.Done() // deadlined cohort: runs until its timeout fires
				panic(&fault.Violation{Kind: fault.KindCancelled, Component: "cancel",
					Msg: "run cancelled: " + context.Cause(ctx).Error()})
			}
			return &resultcache.Entry{Report: []byte("ok " + key.Experiment + "\n")}, nil
		},
	}, nil)
	srv = s
	h := s.Handler()

	doomed := []string{"fig4", "fig5", "fig6", "fig7", "fig8", "fig9"}
	healthy := []string{"table5", "table4", "overhead", "traffic", "sweep", "security"}
	var wg sync.WaitGroup
	codes := make([]int, len(doomed)+len(healthy))
	for i, exp := range doomed {
		wg.Add(1)
		go func(i int, exp string) {
			defer wg.Done()
			codes[i] = postJSON(h, "/v1/run", Spec{Experiment: exp, TimeoutMS: 25}).Code
		}(i, exp)
	}
	for i, exp := range healthy {
		wg.Add(1)
		go func(i int, exp string) {
			defer wg.Done()
			codes[len(doomed)+i] = postJSON(h, "/v1/run", Spec{Experiment: exp}).Code
		}(i, exp)
	}
	wg.Wait()

	for i, code := range codes {
		want := http.StatusGatewayTimeout
		if i >= len(doomed) {
			want = http.StatusOK
		}
		if code != want {
			t.Errorf("request %d: %d, want %d", i, code, want)
		}
	}
	if got := s.cancelled.Load(); got != int64(len(doomed)) {
		t.Errorf("cancelled counter = %d, want %d", got, len(doomed))
	}
	for _, exp := range doomed {
		if _, ok := s.cache.Get(mustKeyID(t, exp)); ok {
			t.Errorf("cancelled run %s poisoned the cache", exp)
		}
	}
	for _, exp := range healthy {
		if _, ok := s.cache.Get(mustKeyID(t, exp)); !ok {
			t.Errorf("completed run %s missing from the cache", exp)
		}
	}
	if snap := st.Snapshot(); snap.Runs != uint64(len(doomed)+len(healthy)) {
		t.Errorf("underlying runs = %d, want %d", snap.Runs, len(doomed)+len(healthy))
	}

	// The server is still fully serviceable: the doomed cohort retried
	// without deadlines (and a healed runner) are honest misses.
	healed.Store(true)
	for _, exp := range doomed {
		w := postJSON(h, "/v1/run", Spec{Experiment: exp})
		if w.Code != http.StatusOK || w.Header().Get("X-Swiftdir-Cache") != "miss" {
			t.Errorf("healed retry %s: %d cache=%q, want 200 miss",
				exp, w.Code, w.Header().Get("X-Swiftdir-Cache"))
		}
	}
	if w := get(h, "/statsz"); w.Code != http.StatusOK {
		t.Errorf("statsz after stress: %d", w.Code)
	}
}
