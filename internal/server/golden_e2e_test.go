package server

import (
	"bytes"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"net/http"
	"os"
	"strconv"
	"testing"

	"repro/internal/campaign"
	"repro/internal/experiments"
	"repro/internal/resultcache"
	"repro/internal/stats"
)

// goldenSpecs maps the committed golden-report grid
// (internal/experiments/testdata/golden_reports.json) onto server specs:
// each entry's Params must normalize to exactly the parameterization the
// golden hash was captured with. ablation-ewp/ablation-war are absent —
// the registry's "ablation" experiment concatenates both, so it is
// checked against a fresh in-process run instead (TestServerAblation).
var goldenSpecs = []struct {
	name  string
	p     experiments.Params
	heavy bool // skipped under -short, mirroring the golden suite
}{
	{name: "fig7", p: experiments.Params{Scale: 0.02}, heavy: true},
	{name: "fig8", p: experiments.Params{Scale: 0.02}, heavy: true},
	{name: "fig9", p: experiments.Params{Amounts: []int{1000, 2000}}},
	{name: "fig10a", p: experiments.Params{Passes: 1}},
	{name: "fig10b", p: experiments.Params{Passes: 1}},
	{name: "security", p: experiments.Params{Bits: 64, Trials: 64}},
	{name: "multiprogram", p: experiments.Params{Scale: 0.02}, heavy: true},
	{name: "sweep"},
	{name: "lru", p: experiments.Params{Scale: 0.05}, heavy: true},
	{name: "traffic"},
	{name: "msi", p: experiments.Params{Bits: 128, Passes: 1}},   // MSIStudy(bits/4=32, 1)
	{name: "moesi", p: experiments.Params{Bits: 128, Passes: 1}}, // MOESIStudy(bits/4=32, 1)
	{name: "snoop", p: experiments.Params{Bits: 128}},            // SnoopStudy(bits/4=32)
	{name: "kernels", p: experiments.Params{WSKB: 64}},           // KernelStudy(64)
}

// TestServerGoldenEquivalence is the end-to-end determinism proof behind
// the memoization: for each golden-suite experiment the server's *cached*
// response bytes hash to the same committed SHA-256 the in-process golden
// test pins. A hit is therefore provably byte-identical to a re-run — the
// property that makes serving from the content-addressed cache sound.
func TestServerGoldenEquivalence(t *testing.T) {
	raw, err := os.ReadFile("../experiments/testdata/golden_reports.json")
	if err != nil {
		t.Fatal(err)
	}
	golden := map[string]string{}
	if err := json.Unmarshal(raw, &golden); err != nil {
		t.Fatal(err)
	}

	// Mirror the golden suite's single-worker setup (the hashes were
	// captured at -j 1; the repo's j1-vs-jN equivalence tests cover the
	// parallel case separately).
	defer campaign.SetWorkers(0)
	campaign.SetWorkers(1)

	st := &stats.CacheStats{}
	s := New(Config{Cache: resultcache.New(64, "", st, discardLog), Logf: discardLog})
	defer drainNow(t, s)
	h := s.Handler()

	for _, tc := range goldenSpecs {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			if tc.heavy && testing.Short() {
				t.Skip("suite runs are slow")
			}
			want, ok := golden[tc.name]
			if !ok {
				t.Fatalf("no golden hash for %s", tc.name)
			}
			miss := postJSON(h, "/v1/run", Spec{Experiment: tc.name, Params: tc.p})
			if miss.Code != http.StatusOK {
				t.Fatalf("cold run: %d %s", miss.Code, miss.Body)
			}
			if got := miss.Header().Get("X-Swiftdir-Cache"); got != "miss" {
				t.Fatalf("cold run source = %q, want miss", got)
			}
			hit := postJSON(h, "/v1/run", Spec{Experiment: tc.name, Params: tc.p})
			if hit.Code != http.StatusOK {
				t.Fatalf("warm run: %d %s", hit.Code, hit.Body)
			}
			if got := hit.Header().Get("X-Swiftdir-Cache"); got != "hit" {
				t.Fatalf("warm run source = %q, want hit", got)
			}
			if !bytes.Equal(miss.Body.Bytes(), hit.Body.Bytes()) {
				t.Fatal("hit bytes differ from the fresh run")
			}
			sum := sha256.Sum256(hit.Body.Bytes())
			if got := hex.EncodeToString(sum[:]); got != want {
				t.Errorf("cached response hash %s differs from golden %s", got, want)
			}
		})
	}
}

// The registry's "ablation" experiment concatenates the two golden
// ablations; its server bytes are compared against a fresh in-process
// run, the same hit-equals-recompute property without a committed hash.
func TestServerAblationMatchesInProcessRun(t *testing.T) {
	defer campaign.SetWorkers(0)
	campaign.SetWorkers(1)

	s, _ := newTestServer(t, Config{Run: nil}, nil)
	s.run = s.runRegistry // real runner, memory-only cache
	h := s.Handler()

	p := experiments.Params{Bits: 32, Passes: 1}
	w := postJSON(h, "/v1/run", Spec{Experiment: "ablation", Params: p})
	if w.Code != http.StatusOK {
		t.Fatalf("run: %d %s", w.Code, w.Body)
	}
	exp, _ := experiments.Lookup("ablation")
	if fresh := exp.Run(p); w.Body.String() != fresh {
		t.Errorf("server bytes differ from in-process run:\n--- server ---\n%s\n--- fresh ---\n%s", w.Body, fresh)
	}
	hit := postJSON(h, "/v1/run", Spec{Experiment: "ablation", Params: p})
	if hit.Header().Get("X-Swiftdir-Cache") != "hit" || !bytes.Equal(hit.Body.Bytes(), w.Body.Bytes()) {
		t.Error("cached ablation bytes differ from the fresh run")
	}
}

// TestServerHitLatency pins the point of the cache: a fig6 hit must be at
// least 100x faster than the cold run that populated it.
func TestServerHitLatency(t *testing.T) {
	defer campaign.SetWorkers(0)
	campaign.SetWorkers(1)

	st := &stats.CacheStats{}
	s := New(Config{Cache: resultcache.New(8, "", st, discardLog), Logf: discardLog})
	defer drainNow(t, s)
	h := s.Handler()

	spec := Spec{Experiment: "fig6"}
	cold := postJSON(h, "/v1/run", spec)
	if cold.Code != http.StatusOK {
		t.Fatalf("cold fig6: %d %s", cold.Code, cold.Body)
	}
	coldNS, _ := strconv.ParseInt(cold.Header().Get("X-Swiftdir-Wall-Ns"), 10, 64)
	if coldNS < int64(1e6) {
		t.Skipf("cold fig6 only %dns on this host; speedup unmeasurable", coldNS)
	}
	// Best hit of a few tries, to shrug off scheduler noise.
	best := int64(1 << 62)
	for i := 0; i < 5; i++ {
		hit := postJSON(h, "/v1/run", spec)
		if hit.Header().Get("X-Swiftdir-Cache") != "hit" {
			t.Fatalf("try %d not a hit", i)
		}
		ns, _ := strconv.ParseInt(hit.Header().Get("X-Swiftdir-Wall-Ns"), 10, 64)
		if ns < best {
			best = ns
		}
	}
	if best*100 > coldNS {
		t.Errorf("hit %dns vs cold %dns: speedup %.1fx < 100x", best, coldNS, float64(coldNS)/float64(best))
	}
}

// TestServerRepeatedBatchAllHits drives the CI scenario in-process: the
// same batch submitted twice sees a 100%% hit rate and byte-identical
// reports on the second pass.
func TestServerRepeatedBatchAllHits(t *testing.T) {
	defer campaign.SetWorkers(0)
	campaign.SetWorkers(1)

	st := &stats.CacheStats{}
	s := New(Config{Cache: resultcache.New(16, "", st, discardLog), Logf: discardLog})
	defer drainNow(t, s)
	h := s.Handler()

	batch := map[string]any{"specs": []Spec{
		{Experiment: "table5"}, {Experiment: "overhead"}, {Experiment: "traffic"},
	}}
	bodies := make([]map[string]string, 2)
	for pass := 0; pass < 2; pass++ {
		w := postJSON(h, "/v1/batch", batch)
		if w.Code != http.StatusAccepted {
			t.Fatalf("pass %d: %d %s", pass, w.Code, w.Body)
		}
		var resp struct {
			Jobs []struct{ ID, Experiment string }
		}
		json.Unmarshal(w.Body.Bytes(), &resp)
		bodies[pass] = map[string]string{}
		for _, ref := range resp.Jobs {
			var js jobStatus
			waitFor(t, func() bool {
				json.Unmarshal(get(h, "/v1/jobs/"+ref.ID).Body.Bytes(), &js)
				return js.State == stateDone || js.State == stateFailed
			})
			if js.State != stateDone {
				t.Fatalf("pass %d job %s: %+v", pass, ref.ID, js)
			}
			if pass == 1 && js.Cache != "hit" {
				t.Errorf("second pass %s source = %q, want hit", ref.Experiment, js.Cache)
			}
			bodies[pass][ref.Experiment] = get(h, "/v1/jobs/"+ref.ID+"/report").Body.String()
		}
	}
	for name, body := range bodies[0] {
		if bodies[1][name] != body {
			t.Errorf("%s: second-pass bytes differ", name)
		}
	}
	if snap := st.Snapshot(); snap.Runs != 3 {
		t.Errorf("underlying runs = %d, want 3 (second pass 100%% hits)", snap.Runs)
	}
}
