package cpu

import (
	"testing"

	"repro/internal/coherence"
	"repro/internal/core"
	"repro/internal/mmu"
	"repro/internal/sim"
)

// Stores issue to the hierarchy in program order even when a younger
// store's operands are ready first.
func TestO3StoreProgramOrder(t *testing.T) {
	m, ctxs, heaps := machineWithHeap(t, coherence.MESI, 1)
	// Store A depends on a long FP chain; store B is immediately ready.
	tr := &SliceTrace{Instrs: []Instr{
		{Op: OpFP, Lat: 50},
		{Op: OpStore, Addr: heaps[0], Dep1: 1, Value: 0xA}, // store A (waits 50)
		{Op: OpStore, Addr: heaps[0] + 4096, Value: 0xB},   // store B (ready now)
		{Op: OpLoad, Addr: heaps[0] + 8192},                // unrelated load
	}}
	c := NewOutOfOrder(ctxs[0], tr, nil)
	Run(m, []CPU{c})
	// Functional check is weak here; the structural check is that the
	// run completes with all four instructions (no deadlock from the
	// ordering constraint).
	if c.Stats().Instructions != 4 {
		t.Fatalf("instructions = %d", c.Stats().Instructions)
	}
	if c.Stats().Stores != 2 {
		t.Fatalf("stores = %d", c.Stats().Stores)
	}
}

// The SQ stalls dispatch when full: with a tiny SQ, a long burst of
// dependent-latency stores bounds the number of in-flight stores.
func TestO3SQFullStallsDispatch(t *testing.T) {
	cfg := core.DefaultConfig(1, coherence.SMESI) // upgrades make stores slow
	cfg.SQEntries = 4
	cfg.StoreDrainDepth = 1
	m, err := core.NewMachine(cfg)
	if err != nil {
		t.Fatal(err)
	}
	proc := m.NewProcess()
	ctx := proc.AttachContext(0)
	heap := proc.MmapAnon(1 << 20)

	// Warm region into E state (load then nothing) so stores upgrade.
	var warm []Instr
	for i := 0; i < 64; i++ {
		warm = append(warm, Instr{Op: OpLoad, Addr: heap + mmu.VAddr(i*64)})
	}
	Run(m, []CPU{NewInOrder(ctx, &SliceTrace{Instrs: warm}, nil)})

	var instrs []Instr
	for i := 0; i < 64; i++ {
		instrs = append(instrs, Instr{Op: OpStore, Addr: heap + mmu.VAddr(i*64), Value: uint64(i)})
	}
	c := NewOutOfOrder(ctx, &SliceTrace{Instrs: instrs}, nil)
	cycles := Run(m, []CPU{c})
	// 64 upgrades serialized at ~17 cycles each with drain depth 1.
	if cycles < 64*15 {
		t.Fatalf("cycles = %d; SQ/drain limits not enforced", cycles)
	}
	if c.Stats().Stores != 64 {
		t.Fatalf("stores = %d", c.Stats().Stores)
	}
}

// Same-block stores coalesce: they do not consume extra drain slots, so a
// burst of stores to one block is not serialized by the drain depth.
func TestO3SameBlockStoreCoalescing(t *testing.T) {
	run := func(sameBlock bool) sim.Cycle {
		cfg := core.DefaultConfig(1, coherence.MESI)
		cfg.StoreDrainDepth = 1
		m, err := core.NewMachine(cfg)
		if err != nil {
			t.Fatal(err)
		}
		proc := m.NewProcess()
		ctx := proc.AttachContext(0)
		heap := proc.MmapAnon(1 << 20)
		// Warm one block (or 32 blocks).
		var warm []Instr
		for i := 0; i < 32; i++ {
			off := mmu.VAddr(i * 8)
			if !sameBlock {
				off = mmu.VAddr(i * 64)
			}
			warm = append(warm, Instr{Op: OpLoad, Addr: heap + off})
		}
		Run(m, []CPU{NewInOrder(ctx, &SliceTrace{Instrs: warm}, nil)})
		var instrs []Instr
		for i := 0; i < 32; i++ {
			off := mmu.VAddr(i * 8)
			if !sameBlock {
				off = mmu.VAddr(i * 64)
			}
			instrs = append(instrs, Instr{Op: OpStore, Addr: heap + off, Value: uint64(i)})
		}
		c := NewOutOfOrder(ctx, &SliceTrace{Instrs: instrs}, nil)
		return Run(m, []CPU{c})
	}
	same := run(true)
	diff := run(false)
	if same >= diff {
		t.Fatalf("same-block stores (%d cycles) not faster than distinct blocks (%d); coalescing broken",
			same, diff)
	}
}

// Loads bypass stalled stores: a load independent of a slow store chain
// completes long before the stores drain.
func TestO3LoadsBypassStores(t *testing.T) {
	cfg := core.DefaultConfig(1, coherence.SMESI)
	cfg.StoreDrainDepth = 1
	m, err := core.NewMachine(cfg)
	if err != nil {
		t.Fatal(err)
	}
	proc := m.NewProcess()
	ctx := proc.AttachContext(0)
	heap := proc.MmapAnon(1 << 20)
	var warm []Instr
	for i := 0; i < 16; i++ {
		warm = append(warm, Instr{Op: OpLoad, Addr: heap + mmu.VAddr(i*64)})
	}
	warm = append(warm, Instr{Op: OpLoad, Addr: heap + 16*64})
	Run(m, []CPU{NewInOrder(ctx, &SliceTrace{Instrs: warm}, nil)})

	var loadDone sim.Cycle
	var instrs []Instr
	for i := 0; i < 16; i++ {
		instrs = append(instrs, Instr{Op: OpStore, Addr: heap + mmu.VAddr(i*64), Value: 1})
	}
	instrs = append(instrs, Instr{Op: OpLoad, Addr: heap + 16*64})
	c := NewOutOfOrder(ctx, &SliceTrace{Instrs: instrs}, nil)
	start := m.Now()
	// Intercept the load completion via a parallel probe: simpler, check
	// total time is bounded by the serialized stores, which proves the
	// load did not add to the tail.
	cycles := Run(m, []CPU{c})
	_ = loadDone
	_ = start
	// 16 upgrades x ~17 serialized ≈ 280+; if the load serialized after
	// them it would add its own latency; it is an L1 hit (1 cycle), so
	// the bound stays close to the store drain time.
	if cycles > 16*25 {
		t.Fatalf("cycles = %d; load did not overlap the store drain", cycles)
	}
}

// ROB capacity bounds in-flight instructions: a dependent chain longer
// than the ROB still executes correctly.
func TestO3ROBWrapAround(t *testing.T) {
	cfg := core.DefaultConfig(1, coherence.MESI)
	cfg.ROBEntries = 16 // tiny ROB, forces wrap
	m, err := core.NewMachine(cfg)
	if err != nil {
		t.Fatal(err)
	}
	proc := m.NewProcess()
	ctx := proc.AttachContext(0)
	tr := repeat(500, func(i int) Instr {
		d := 0
		if i%3 == 0 && i > 0 {
			d = 2
		}
		return Instr{Op: OpInt, Dep1: d}
	})
	c := NewOutOfOrder(ctx, tr, nil)
	Run(m, []CPU{c})
	if c.Stats().Instructions != 500 {
		t.Fatalf("instructions = %d, want 500", c.Stats().Instructions)
	}
}

// Dependences on retired producers resolve immediately.
func TestO3RetiredProducerDependence(t *testing.T) {
	cfg := core.DefaultConfig(1, coherence.MESI)
	cfg.ROBEntries = 8
	m, err := core.NewMachine(cfg)
	if err != nil {
		t.Fatal(err)
	}
	proc := m.NewProcess()
	ctx := proc.AttachContext(0)
	// Dep distance 7 with an 8-entry ROB: producers are sometimes
	// retired before the consumer fetches.
	tr := repeat(200, func(i int) Instr {
		d := 0
		if i >= 7 {
			d = 7
		}
		return Instr{Op: OpInt, Dep1: d}
	})
	c := NewOutOfOrder(ctx, tr, nil)
	Run(m, []CPU{c})
	if c.Stats().Instructions != 200 {
		t.Fatalf("instructions = %d", c.Stats().Instructions)
	}
}

// A mispredicted branch stalls O3 fetch until resolution plus the
// redirect penalty; correctly-predicted branches cost nothing extra.
func TestO3MispredictStallsFetch(t *testing.T) {
	run := func(mispredict bool) sim.Cycle {
		m, ctxs, _ := machineWithHeap(t, coherence.MESI, 1)
		tr := repeat(64, func(i int) Instr {
			if i == 8 {
				return Instr{Op: OpBranch, Dep1: 1, Mispredict: mispredict}
			}
			return Instr{Op: OpInt, Dep1: boolToDep(i%4 == 0)}
		})
		c := NewOutOfOrder(ctxs[0], tr, nil)
		cycles := Run(m, []CPU{c})
		if mispredict && c.Stats().Mispredicts != 1 {
			t.Fatalf("mispredicts = %d", c.Stats().Mispredicts)
		}
		return cycles
	}
	good := run(false)
	bad := run(true)
	if bad < good+MispredictPenalty {
		t.Fatalf("mispredict cost %d -> %d; want >= +%d", good, bad, MispredictPenalty)
	}
}

func boolToDep(b bool) int {
	if b {
		return 1
	}
	return 0
}

func TestInOrderMispredictPenalty(t *testing.T) {
	m, ctxs, _ := machineWithHeap(t, coherence.MESI, 1)
	tr := &SliceTrace{Instrs: []Instr{
		{Op: OpBranch, Mispredict: true},
		{Op: OpInt},
	}}
	c := NewInOrder(ctxs[0], tr, nil)
	cycles := Run(m, []CPU{c})
	if cycles != 2+MispredictPenalty {
		t.Fatalf("cycles = %d, want %d", cycles, 2+MispredictPenalty)
	}
}
