package cpu

import (
	"fmt"

	"repro/internal/coherence"
	"repro/internal/core"
	"repro/internal/mmu"
	"repro/internal/sim"
)

// OutOfOrder is a DerivO3CPU-style core: a reorder buffer of Table V's 192
// entries, 32-entry load and store queues, and superscalar width 8 for
// fetch, issue, and commit. Instructions issue when their register
// dependences resolve, memory operations overlap up to the queue limits,
// and commit is in order — so long-latency coherence events (S-MESI's
// upgrade round trips in particular) stall the window and surface as IPC
// loss, reproducing the amplification the paper reports in Figure 10(b).
//
// Simplifications relative to gem5's DerivO3CPU, none of which affect the
// protocol comparison: no branch misprediction (traces are linear), no
// speculative wrong-path fetch, and stores issue to the hierarchy when
// their operands are ready rather than at commit.
type OutOfOrder struct {
	ctx   *core.Context
	trace TraceSource
	bar   *Barrier

	robSize, lqSize, sqSize, width int

	rob     []o3Entry
	head    uint64 // global index of the oldest in-flight instruction
	tail    uint64 // next global index to fetch
	eof     bool
	ready   []int            // slots whose dependences are resolved
	waiters map[uint64][]int // producer idx -> dependent slots

	loadsInFlight int

	// Store buffer (TSO drain): stores issue to the hierarchy in program
	// order, with up to drainDepth distinct-block transactions
	// overlapping; stores to a block that already has an in-flight store
	// coalesce into its transaction for free (write combining). storeOrder
	// holds un-issued store indices in fetch order; sqOcc counts stores
	// occupying the SQ (fetched but not completed).
	storeOrder    []uint64
	storeBlocks   map[mmu.VAddr]int // in-flight stores per block
	storesDrained int               // distinct blocks with in-flight stores
	drainDepth    int
	blockMask     mmu.VAddr
	sqOcc         int
	stash         *Instr // fetched instruction deferred by a full SQ

	// Mispredict handling: fetch stalls from the moment a mispredicted
	// branch is dispatched until it resolves plus the redirect penalty.
	fetchBlockedOn  uint64 // instruction index of the blocking branch
	fetchBlocked    bool
	redirectPending bool

	tickScheduled bool
	finished      bool
	stats         Stats
	done          func()
}

// Payload ops for the core's self-wakeup events (see Handle).
const (
	o3OpTick     uint8 = 1 // pipeline tick
	o3OpMarkDone uint8 = 2 // fixed-latency instruction completed (A = idx)
	o3OpRedirect uint8 = 3 // mispredict redirect penalty elapsed
)

// Handle implements sim.Handler for the core's scheduled work, replacing
// the per-event closures the pipeline used to allocate.
func (c *OutOfOrder) Handle(p sim.Payload) {
	switch p.Op {
	case o3OpTick:
		c.tickScheduled = false
		c.tick()
	case o3OpMarkDone:
		c.markDone(p.A)
	case o3OpRedirect:
		c.fetchBlocked = false
		c.redirectPending = false
		c.ensureTick()
	default:
		panic(fmt.Sprintf("cpu: o3 core: unknown payload op %d", p.Op))
	}
}

type o3Status uint8

const (
	stWaiting o3Status = iota
	stReady
	stIssued
	stDone
)

type o3Entry struct {
	instr       Instr
	idx         uint64
	pendingDeps int
	status      o3Status
	arrived     bool // barrier reached its rendezvous
}

// NewOutOfOrder builds the core using the machine configuration's ROB,
// LQ/SQ, and width.
func NewOutOfOrder(ctx *core.Context, trace TraceSource, bar *Barrier) *OutOfOrder {
	cfg := ctx.Machine().Cfg
	return &OutOfOrder{
		ctx: ctx, trace: trace, bar: bar,
		robSize:     cfg.ROBEntries,
		lqSize:      cfg.LQEntries,
		sqSize:      cfg.SQEntries,
		width:       cfg.Width,
		drainDepth:  cfg.StoreDrainDepth,
		blockMask:   ^mmu.VAddr(cfg.L1.BlockSize - 1),
		rob:         make([]o3Entry, cfg.ROBEntries),
		waiters:     make(map[uint64][]int),
		storeBlocks: make(map[mmu.VAddr]int),
	}
}

// Start begins execution; done runs when the trace has fully committed.
func (c *OutOfOrder) Start(done func()) {
	c.done = done
	c.stats.StartCycle = c.ctx.Engine().Now()
	c.ctx.Engine().ScheduleEvent(0, c, sim.Payload{Op: o3OpTick})
}

// Stats returns the execution summary (valid after completion).
func (c *OutOfOrder) Stats() Stats { return c.stats }

func (c *OutOfOrder) count() int { return int(c.tail - c.head) }

func (c *OutOfOrder) slot(idx uint64) int { return int(idx % uint64(c.robSize)) }

func (c *OutOfOrder) ensureTick() {
	if c.tickScheduled || c.finished {
		return
	}
	c.tickScheduled = true
	c.ctx.Engine().ScheduleEvent(1, c, sim.Payload{Op: o3OpTick})
}

func (c *OutOfOrder) tick() {
	if c.finished {
		return
	}
	progress := 0
	progress += c.commit()
	if c.finished {
		return
	}
	progress += c.issue()
	progress += c.fetch()
	c.checkBarrierAtHead()

	// Reschedule only when forward progress is possible without an
	// external event; completions (and mispredict redirects) call
	// ensureTick themselves.
	if progress > 0 ||
		(c.count() > 0 && c.rob[c.slot(c.head)].status == stDone) ||
		len(c.ready) > 0 && c.resourcesAvailable() {
		c.ensureTick()
	}
}

// resourcesAvailable reports whether at least one ready entry could issue
// right now (so spinning another tick is useful).
func (c *OutOfOrder) resourcesAvailable() bool {
	for _, s := range c.ready {
		e := &c.rob[s]
		switch e.instr.Op {
		case OpLoad:
			if c.loadsInFlight < c.lqSize {
				return true
			}
		case OpStore:
			if c.canDrainStore(e.idx) {
				return true
			}
		default:
			return true
		}
	}
	return false
}

// canDrainStore reports whether the store at idx is the oldest un-issued
// store and may enter the hierarchy: stores coalescing into a block that
// already has an in-flight store are free; otherwise a drain slot must be
// available (in-order issue, overlapping completion).
func (c *OutOfOrder) canDrainStore(idx uint64) bool {
	if len(c.storeOrder) == 0 || c.storeOrder[0] != idx {
		return false
	}
	block := c.rob[c.slot(idx)].instr.Addr & c.blockMask
	if c.storeBlocks[block] > 0 {
		return true
	}
	return c.storesDrained < c.drainDepth
}

func (c *OutOfOrder) commit() int {
	n := 0
	for c.count() > 0 && n < c.width {
		e := &c.rob[c.slot(c.head)]
		if e.status != stDone {
			break
		}
		c.stats.Instructions++
		switch e.instr.Op {
		case OpLoad:
			c.stats.Loads++
		case OpStore:
			c.stats.Stores++
		case OpBarrier:
			c.stats.Barriers++
		}
		delete(c.waiters, e.idx)
		c.head++
		n++
	}
	if c.eof && c.count() == 0 {
		c.finished = true
		c.stats.FinishCycle = c.ctx.Engine().Now()
		if c.done != nil {
			c.done()
		}
	}
	return n
}

func (c *OutOfOrder) issue() int {
	issued := 0
	remaining := c.ready[:0]
	for i, s := range c.ready {
		if issued >= c.width {
			remaining = append(remaining, c.ready[i:]...)
			break
		}
		e := &c.rob[s]
		if e.status != stReady {
			continue // stale slot (entry completed or retired)
		}
		switch e.instr.Op {
		case OpLoad:
			if c.loadsInFlight >= c.lqSize {
				remaining = append(remaining, s)
				continue
			}
			c.loadsInFlight++
			c.issueMem(e, false)
		case OpStore:
			if !c.canDrainStore(e.idx) {
				remaining = append(remaining, s)
				continue
			}
			block := e.instr.Addr & c.blockMask
			if c.storeBlocks[block] == 0 {
				c.storesDrained++
			}
			c.storeBlocks[block]++
			c.storeOrder = c.storeOrder[1:]
			c.issueMem(e, true)
		default:
			e.status = stIssued
			c.ctx.Engine().ScheduleEvent(e.instr.latency(), c, sim.Payload{Op: o3OpMarkDone, A: e.idx})
		}
		issued++
	}
	c.ready = remaining
	return issued
}

func (c *OutOfOrder) issueMem(e *o3Entry, write bool) {
	e.status = stIssued
	idx := e.idx
	err := c.ctx.Access(e.instr.Addr, write, e.instr.Value, func(coherence.AccessResult) {
		if write {
			block := e.instr.Addr & c.blockMask
			c.storeBlocks[block]--
			if c.storeBlocks[block] == 0 {
				delete(c.storeBlocks, block)
				c.storesDrained--
			}
			c.sqOcc--
		} else {
			c.loadsInFlight--
		}
		c.markDone(idx)
	})
	if err != nil {
		panic(fmt.Sprintf("cpu: o3 mem op %#x: %v", uint64(e.instr.Addr), err))
	}
}

// checkBarrierAtHead releases a barrier instruction once it is the oldest
// in-flight instruction with resolved dependences.
func (c *OutOfOrder) checkBarrierAtHead() {
	if c.count() == 0 {
		return
	}
	e := &c.rob[c.slot(c.head)]
	if e.instr.Op != OpBarrier || e.arrived || e.pendingDeps > 0 || e.status == stDone {
		return
	}
	if c.bar == nil {
		panic("cpu: barrier instruction without a barrier")
	}
	e.arrived = true
	idx := e.idx
	c.bar.Arrive(func() { c.markDone(idx) })
}

func (c *OutOfOrder) markDone(idx uint64) {
	if idx < c.head {
		return // already retired (defensive; should not happen)
	}
	e := &c.rob[c.slot(idx)]
	if e.idx != idx || e.status == stDone {
		return
	}
	e.status = stDone
	if c.fetchBlocked && idx == c.fetchBlockedOn && !c.redirectPending {
		// The mispredicted branch resolved: redirect the front end.
		c.redirectPending = true
		c.ctx.Engine().ScheduleEvent(MispredictPenalty, c, sim.Payload{Op: o3OpRedirect})
	}
	for _, depSlot := range c.waiters[idx] {
		d := &c.rob[depSlot]
		d.pendingDeps--
		if d.pendingDeps == 0 && d.status == stWaiting {
			d.status = stReady
			if d.instr.Op != OpBarrier {
				// Barriers issue from the ROB head, not the ready queue.
				c.ready = append(c.ready, depSlot)
			}
		}
	}
	delete(c.waiters, idx)
	c.ensureTick()
}

func (c *OutOfOrder) fetch() int {
	if c.fetchBlocked {
		return 0
	}
	fetched := 0
	for !c.eof && c.count() < c.robSize && fetched < c.width {
		var ins Instr
		if c.stash != nil {
			ins = *c.stash
			if ins.Op == OpStore && c.sqOcc >= c.sqSize {
				break // SQ still full
			}
			c.stash = nil
		} else {
			var ok bool
			ins, ok = c.trace.Next()
			if !ok {
				c.eof = true
				break
			}
			if ins.Op == OpStore && c.sqOcc >= c.sqSize {
				// SQ full: stall dispatch until a store completes.
				c.stash = &ins
				break
			}
		}
		if ins.Op == OpStore {
			c.storeOrder = append(c.storeOrder, c.tail)
			c.sqOcc++
		}
		if ins.Op == OpBranch && ins.Mispredict {
			c.stats.Mispredicts++
			c.fetchBlocked = true
			c.fetchBlockedOn = c.tail
		}
		idx := c.tail
		c.tail++
		s := c.slot(idx)
		c.rob[s] = o3Entry{instr: ins, idx: idx}
		e := &c.rob[s]
		for _, d := range []int{ins.Dep1, ins.Dep2} {
			if d <= 0 || uint64(d) > idx {
				continue
			}
			pidx := idx - uint64(d)
			if pidx < c.head {
				continue // producer already retired
			}
			p := &c.rob[c.slot(pidx)]
			if p.idx == pidx && p.status != stDone {
				e.pendingDeps++
				c.waiters[pidx] = append(c.waiters[pidx], s)
			}
		}
		if e.pendingDeps == 0 {
			e.status = stReady
			if ins.Op != OpBarrier {
				c.ready = append(c.ready, s)
			}
		}
		fetched++
	}
	return fetched
}
