package cpu

import (
	"fmt"

	"repro/internal/coherence"
	"repro/internal/core"
)

// InOrder models gem5's TimingSimpleCPU: one instruction at a time, with
// memory operations blocking the pipeline until their response returns.
// It exposes coherence costs directly — exactly why the paper uses it to
// "scrutinize how coherence overprotection affects write-after-read
// performance" (Figure 10(a)).
type InOrder struct {
	ctx   *core.Context
	trace TraceSource
	bar   *Barrier

	stats Stats
	done  func()
}

// NewInOrder builds an in-order core over ctx executing trace. bar may be
// nil for traces without barrier instructions.
func NewInOrder(ctx *core.Context, trace TraceSource, bar *Barrier) *InOrder {
	return &InOrder{ctx: ctx, trace: trace, bar: bar}
}

// Start begins execution; done is invoked when the trace drains.
func (c *InOrder) Start(done func()) {
	c.done = done
	c.stats.StartCycle = c.ctx.Engine().Now()
	c.ctx.Engine().Schedule(0, c.step)
}

// Stats returns the execution summary (valid after completion).
func (c *InOrder) Stats() Stats { return c.stats }

func (c *InOrder) step() {
	eng := c.ctx.Engine()
	ins, ok := c.trace.Next()
	if !ok {
		c.stats.FinishCycle = eng.Now()
		if c.done != nil {
			c.done()
		}
		return
	}
	c.stats.Instructions++
	switch ins.Op {
	case OpLoad:
		c.stats.Loads++
		if err := c.ctx.Access(ins.Addr, false, 0, func(coherence.AccessResult) {
			eng.Schedule(0, c.step)
		}); err != nil {
			panic(fmt.Sprintf("cpu: load %#x: %v", uint64(ins.Addr), err))
		}
	case OpStore:
		c.stats.Stores++
		if err := c.ctx.Access(ins.Addr, true, ins.Value, func(coherence.AccessResult) {
			eng.Schedule(0, c.step)
		}); err != nil {
			panic(fmt.Sprintf("cpu: store %#x: %v", uint64(ins.Addr), err))
		}
	case OpBarrier:
		if c.bar == nil {
			panic("cpu: barrier instruction without a barrier")
		}
		c.stats.Barriers++
		c.bar.Arrive(c.step)
	default:
		lat := ins.latency()
		if ins.Op == OpBranch && ins.Mispredict {
			c.stats.Mispredicts++
			lat += MispredictPenalty
		}
		eng.Schedule(lat, c.step)
	}
}
