package cpu

import (
	"fmt"

	"repro/internal/coherence"
	"repro/internal/core"
	"repro/internal/sim"
)

// InOrder models gem5's TimingSimpleCPU: one instruction at a time, with
// memory operations blocking the pipeline until their response returns.
// It exposes coherence costs directly — exactly why the paper uses it to
// "scrutinize how coherence overprotection affects write-after-read
// performance" (Figure 10(a)).
type InOrder struct {
	ctx   *core.Context
	trace TraceSource
	bar   *Barrier

	stats Stats
	done  func()

	// Cached callbacks so steady-state execution allocates nothing: one
	// memory-completion closure shared by every access, and one step
	// thunk for barrier rendezvous.
	memDone func(coherence.AccessResult)
	stepFn  func()
}

// ioOpStep is the InOrder core's only payload op: execute the next
// instruction.
const ioOpStep uint8 = 1

// NewInOrder builds an in-order core over ctx executing trace. bar may be
// nil for traces without barrier instructions.
func NewInOrder(ctx *core.Context, trace TraceSource, bar *Barrier) *InOrder {
	c := &InOrder{ctx: ctx, trace: trace, bar: bar}
	c.memDone = func(coherence.AccessResult) {
		c.ctx.Engine().ScheduleEvent(0, c, sim.Payload{Op: ioOpStep})
	}
	c.stepFn = c.step
	return c
}

// Handle implements sim.Handler: the core's self-wakeup event.
func (c *InOrder) Handle(p sim.Payload) {
	if p.Op != ioOpStep {
		panic(fmt.Sprintf("cpu: in-order core: unknown payload op %d", p.Op))
	}
	c.step()
}

// Start begins execution; done is invoked when the trace drains.
func (c *InOrder) Start(done func()) {
	c.done = done
	c.stats.StartCycle = c.ctx.Engine().Now()
	c.ctx.Engine().ScheduleEvent(0, c, sim.Payload{Op: ioOpStep})
}

// Stats returns the execution summary (valid after completion).
func (c *InOrder) Stats() Stats { return c.stats }

func (c *InOrder) step() {
	eng := c.ctx.Engine()
	ins, ok := c.trace.Next()
	if !ok {
		c.stats.FinishCycle = eng.Now()
		if c.done != nil {
			c.done()
		}
		return
	}
	c.stats.Instructions++
	switch ins.Op {
	case OpLoad:
		c.stats.Loads++
		if err := c.ctx.Access(ins.Addr, false, 0, c.memDone); err != nil {
			panic(fmt.Sprintf("cpu: load %#x: %v", uint64(ins.Addr), err))
		}
	case OpStore:
		c.stats.Stores++
		if err := c.ctx.Access(ins.Addr, true, ins.Value, c.memDone); err != nil {
			panic(fmt.Sprintf("cpu: store %#x: %v", uint64(ins.Addr), err))
		}
	case OpBarrier:
		if c.bar == nil {
			panic("cpu: barrier instruction without a barrier")
		}
		c.stats.Barriers++
		c.bar.Arrive(c.stepFn)
	default:
		lat := ins.latency()
		if ins.Op == OpBranch && ins.Mispredict {
			c.stats.Mispredicts++
			lat += MispredictPenalty
		}
		eng.ScheduleEvent(lat, c, sim.Payload{Op: ioOpStep})
	}
}
