package cpu

import (
	"repro/internal/core"
	"repro/internal/sim"
)

// CPU is either execution model.
type CPU interface {
	Start(done func())
	Stats() Stats
}

// Run starts every CPU and drives the machine until all traces commit,
// returning the wall-clock execution time (the paper's multi-threaded
// metric: ROI execution time).
func Run(m *core.Machine, cpus []CPU) sim.Cycle {
	start := m.Now()
	remaining := len(cpus)
	for _, c := range cpus {
		c.Start(func() { remaining-- })
	}
	m.Engine().RunWhile(func() bool { return remaining > 0 })
	if remaining > 0 {
		panic("cpu: threads did not finish (deadlock or missing barrier party)")
	}
	end := m.Now()
	m.Quiesce()
	return end - start
}

// TotalInstructions sums committed instructions across CPUs.
func TotalInstructions(cpus []CPU) uint64 {
	var n uint64
	for _, c := range cpus {
		n += c.Stats().Instructions
	}
	return n
}
