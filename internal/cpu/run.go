package cpu

import (
	"sync/atomic"

	"repro/internal/core"
	"repro/internal/sim"
)

// CPU is either execution model.
type CPU interface {
	Start(done func())
	Stats() Stats
}

// Run starts every CPU and drives the machine until all traces commit,
// returning the wall-clock execution time (the paper's multi-threaded
// metric: ROI execution time).
//
// On a machine eligible for parallel epochs (core.Machine.CanRunParallel)
// the shards run concurrently and the stop condition is only checked at
// epoch barriers, so the engine may execute past the last commit before
// stopping; the returned time is therefore measured to the latest
// per-thread FinishCycle, which both modes stamp at the exact commit
// event, keeping the result byte-identical to the sequential run.
func Run(m *core.Machine, cpus []CPU) sim.Cycle {
	start := m.Now()
	var remaining atomic.Int64
	remaining.Store(int64(len(cpus)))
	for _, c := range cpus {
		c.Start(func() { remaining.Add(-1) })
	}
	cond := func() bool { return remaining.Load() > 0 }
	if sh := m.Sys.ShardedEngine(); sh != nil && m.CanRunParallel() {
		sh.RunWhile(cond)
	} else {
		m.RunWhile(cond)
	}
	if remaining.Load() > 0 {
		panic("cpu: threads did not finish (deadlock or missing barrier party)")
	}
	end := start
	for _, c := range cpus {
		if f := c.Stats().FinishCycle; f > end {
			end = f
		}
	}
	m.Quiesce()
	return end - start
}

// TotalInstructions sums committed instructions across CPUs.
func TotalInstructions(cpus []CPU) uint64 {
	var n uint64
	for _, c := range cpus {
		n += c.Stats().Instructions
	}
	return n
}
