package cpu

import (
	"testing"

	"repro/internal/coherence"
	"repro/internal/core"
	"repro/internal/mmu"
	"repro/internal/sim"
)

func machineWithHeap(t *testing.T, p coherence.Policy, cores int) (*core.Machine, []*core.Context, []mmu.VAddr) {
	t.Helper()
	m, err := core.NewMachine(core.DefaultConfig(cores, p))
	if err != nil {
		t.Fatal(err)
	}
	proc := m.NewProcess()
	var ctxs []*core.Context
	var heaps []mmu.VAddr
	for i := 0; i < cores; i++ {
		ctxs = append(ctxs, proc.AttachContext(i))
		heaps = append(heaps, proc.MmapAnon(1<<20))
	}
	return m, ctxs, heaps
}

func repeat(n int, gen func(i int) Instr) *SliceTrace {
	t := &SliceTrace{}
	for i := 0; i < n; i++ {
		t.Instrs = append(t.Instrs, gen(i))
	}
	return t
}

func TestInOrderPureALU(t *testing.T) {
	m, ctxs, _ := machineWithHeap(t, coherence.MESI, 1)
	trace := repeat(100, func(int) Instr { return Instr{Op: OpInt} })
	c := NewInOrder(ctxs[0], trace, nil)
	cycles := Run(m, []CPU{c})
	if c.Stats().Instructions != 100 {
		t.Fatalf("instructions = %d", c.Stats().Instructions)
	}
	if cycles != 100 {
		t.Fatalf("cycles = %d, want 100 (1 IPC in-order)", cycles)
	}
	if ipc := c.Stats().IPC(); ipc != 1.0 {
		t.Fatalf("IPC = %v", ipc)
	}
}

func TestInOrderFPLatency(t *testing.T) {
	m, ctxs, _ := machineWithHeap(t, coherence.MESI, 1)
	trace := repeat(10, func(int) Instr { return Instr{Op: OpFP} })
	c := NewInOrder(ctxs[0], trace, nil)
	cycles := Run(m, []CPU{c})
	if cycles != 40 {
		t.Fatalf("cycles = %d, want 40 (4-cycle FP)", cycles)
	}
}

func TestInOrderBlocksOnMemory(t *testing.T) {
	m, ctxs, heaps := machineWithHeap(t, coherence.MESI, 1)
	// Two loads to distinct cold blocks: in-order must serialize them.
	trace := &SliceTrace{Instrs: []Instr{
		{Op: OpLoad, Addr: heaps[0]},
		{Op: OpLoad, Addr: heaps[0] + 64},
	}}
	c := NewInOrder(ctxs[0], trace, nil)
	cycles := Run(m, []CPU{c})
	if c.Stats().Loads != 2 {
		t.Fatalf("loads = %d", c.Stats().Loads)
	}
	// Each cold load costs well over 100 cycles (fault+walk+mem); strictly
	// serialized means > 200 total.
	if cycles < 200 {
		t.Fatalf("cycles = %d; loads overlapped in an in-order core", cycles)
	}
}

func TestOutOfOrderOverlapsIndependentLoads(t *testing.T) {
	// The same two cold loads on the O3 core overlap: total well below
	// twice the single-load latency.
	build := func(p coherence.Policy) (sim.Cycle, sim.Cycle) {
		m, ctxs, heaps := machineWithHeap(t, p, 1)
		soloTrace := &SliceTrace{Instrs: []Instr{{Op: OpLoad, Addr: heaps[0] + 4096}}}
		solo := NewInOrder(ctxs[0], soloTrace, nil)
		soloCycles := Run(m, []CPU{solo})

		trace := &SliceTrace{Instrs: []Instr{
			{Op: OpLoad, Addr: heaps[0]},
			{Op: OpLoad, Addr: heaps[0] + 64},
			{Op: OpLoad, Addr: heaps[0] + 128},
			{Op: OpLoad, Addr: heaps[0] + 192},
		}}
		o3 := NewOutOfOrder(ctxs[0], trace, nil)
		o3Cycles := Run(m, []CPU{o3})
		return soloCycles, o3Cycles
	}
	solo, four := build(coherence.MESI)
	if four >= 3*solo {
		t.Fatalf("4 independent loads took %d cycles vs solo %d; no MLP", four, solo)
	}
}

func TestOutOfOrderRespectsDependences(t *testing.T) {
	m, ctxs, _ := machineWithHeap(t, coherence.MESI, 1)
	// A chain of 50 dependent FP ops cannot overlap: >= 50*4 cycles.
	trace := repeat(50, func(i int) Instr {
		d := 0
		if i > 0 {
			d = 1
		}
		return Instr{Op: OpFP, Dep1: d}
	})
	c := NewOutOfOrder(ctxs[0], trace, nil)
	cycles := Run(m, []CPU{c})
	if cycles < 200 {
		t.Fatalf("dependent chain finished in %d cycles; dependences ignored", cycles)
	}
	if c.Stats().Instructions != 50 {
		t.Fatalf("instructions = %d", c.Stats().Instructions)
	}
}

func TestOutOfOrderIndependentALUSuperscalar(t *testing.T) {
	m, ctxs, _ := machineWithHeap(t, coherence.MESI, 1)
	trace := repeat(800, func(int) Instr { return Instr{Op: OpInt} })
	c := NewOutOfOrder(ctxs[0], trace, nil)
	cycles := Run(m, []CPU{c})
	// Width 8 => at least 4 IPC on pure independent ALU work.
	if ipc := float64(800) / float64(cycles); ipc < 4 {
		t.Fatalf("IPC = %.2f (cycles=%d); superscalar issue broken", ipc, cycles)
	}
}

func TestBarrierSynchronizesThreads(t *testing.T) {
	m, ctxs, _ := machineWithHeap(t, coherence.MESI, 2)
	bar := NewBarrier(m.Engine(), 2)
	// Thread 0 does little work before the barrier; thread 1 a lot.
	fast := &SliceTrace{Instrs: []Instr{{Op: OpInt}, {Op: OpBarrier}, {Op: OpInt}}}
	slowInstrs := repeat(500, func(int) Instr { return Instr{Op: OpFP, Dep1: 1} })
	slowInstrs.Instrs = append(slowInstrs.Instrs, Instr{Op: OpBarrier}, Instr{Op: OpInt})
	c0 := NewInOrder(ctxs[0], fast, bar)
	c1 := NewInOrder(ctxs[1], slowInstrs, bar)
	cycles := Run(m, []CPU{c0, c1})
	// The fast thread's execution time is dominated by waiting.
	if c0.Stats().Cycles() < 1000 {
		t.Fatalf("fast thread finished in %d cycles; barrier did not block", c0.Stats().Cycles())
	}
	if bar.Waits != 1 {
		t.Fatalf("barrier episodes = %d", bar.Waits)
	}
	_ = cycles
}

func TestBarrierWorksOnO3(t *testing.T) {
	m, ctxs, _ := machineWithHeap(t, coherence.SwiftDir, 2)
	bar := NewBarrier(m.Engine(), 2)
	mk := func() *SliceTrace {
		tr := repeat(64, func(int) Instr { return Instr{Op: OpInt} })
		tr.Instrs = append(tr.Instrs, Instr{Op: OpBarrier})
		tr.Instrs = append(tr.Instrs, repeat(64, func(int) Instr { return Instr{Op: OpInt} }).Instrs...)
		return tr
	}
	c0 := NewOutOfOrder(ctxs[0], mk(), bar)
	c1 := NewOutOfOrder(ctxs[1], mk(), bar)
	Run(m, []CPU{c0, c1})
	if c0.Stats().Instructions != 129 || c1.Stats().Instructions != 129 {
		t.Fatalf("instructions = %d/%d", c0.Stats().Instructions, c1.Stats().Instructions)
	}
	if bar.Waits != 1 {
		t.Fatalf("barrier episodes = %d", bar.Waits)
	}
}

// The paper's Figure 10 contrast, in miniature: a write-after-read loop is
// much slower under S-MESI than under MESI/SwiftDir because every E->M
// upgrade costs a round trip.
func TestWARSlowdownUnderSMESI(t *testing.T) {
	// The WAR effect needs a footprint larger than the 32 KB L1 but
	// LLC-resident: each pass re-loads lines into E (from the LLC) and
	// every store then pays the upgrade round trip under S-MESI while
	// MESI/SwiftDir upgrade silently.
	const blocks = 1024 // 64 KB
	warTrace := func(heap mmu.VAddr) *SliceTrace {
		tr := &SliceTrace{}
		for i := 0; i < blocks; i++ {
			addr := heap + mmu.VAddr(i*64)
			tr.Instrs = append(tr.Instrs,
				Instr{Op: OpLoad, Addr: addr},
				Instr{Op: OpStore, Addr: addr, Dep1: 1},
			)
		}
		return tr
	}
	run := func(p coherence.Policy) sim.Cycle {
		m, ctxs, heaps := machineWithHeap(t, p, 1)
		// Warm pass: faults + memory fetches; leaves the region in the
		// LLC (it exceeds the L1).
		Run(m, []CPU{NewInOrder(ctxs[0], warTrace(heaps[0]), nil)})
		c := NewInOrder(ctxs[0], warTrace(heaps[0]), nil)
		return Run(m, []CPU{c})
	}
	mesi := run(coherence.MESI)
	swift := run(coherence.SwiftDir)
	smesi := run(coherence.SMESI)
	if swift != mesi {
		t.Fatalf("SwiftDir WAR time %d != MESI %d", swift, mesi)
	}
	if float64(smesi) < 1.5*float64(mesi) {
		t.Fatalf("S-MESI WAR time %d not clearly slower than MESI %d", smesi, mesi)
	}
}

func TestSliceTraceExhausts(t *testing.T) {
	tr := &SliceTrace{Instrs: []Instr{{Op: OpInt}}}
	if _, ok := tr.Next(); !ok {
		t.Fatal("first Next failed")
	}
	if _, ok := tr.Next(); ok {
		t.Fatal("trace did not exhaust")
	}
}

func TestBarrierPanicsOnZeroParties(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("NewBarrier(0) did not panic")
		}
	}()
	NewBarrier(sim.NewEngine(), 0)
}

func TestOpStrings(t *testing.T) {
	for op, want := range map[Op]string{OpInt: "int", OpFP: "fp", OpLoad: "load", OpStore: "store", OpBranch: "branch", OpBarrier: "barrier"} {
		if op.String() != want {
			t.Errorf("%d.String() = %q", op, op.String())
		}
	}
	if !OpLoad.IsMem() || !OpStore.IsMem() || OpInt.IsMem() {
		t.Error("IsMem wrong")
	}
}

func TestRunPanicsOnMissingBarrierParty(t *testing.T) {
	m, ctxs, _ := machineWithHeap(t, coherence.MESI, 2)
	bar := NewBarrier(m.Engine(), 2) // two parties, only one thread
	tr := &SliceTrace{Instrs: []Instr{{Op: OpBarrier}}}
	c := NewInOrder(ctxs[0], tr, bar)
	defer func() {
		if recover() == nil {
			t.Fatal("deadlocked run did not panic")
		}
	}()
	Run(m, []CPU{c})
}
