// Package cpu provides the two execution models of the paper's evaluation:
// TimingSimpleCPU (a blocking in-order core, Figure 10(a)) and a
// DerivO3CPU-style out-of-order core with a 192-entry ROB, 32-entry
// load/store queues, and superscalar width 8 (Table V, Figure 10(b)).
// Both drive a core.Context, so every memory instruction flows through the
// MMU (picking up the write-protection bit) and the coherent hierarchy.
package cpu

import (
	"fmt"

	"repro/internal/mmu"
	"repro/internal/sim"
)

// Op is an instruction class.
type Op uint8

const (
	// OpInt is a single-cycle integer ALU operation.
	OpInt Op = iota
	// OpFP is a multi-cycle floating-point operation.
	OpFP
	// OpLoad reads memory.
	OpLoad
	// OpStore writes memory.
	OpStore
	// OpBranch is a single-cycle control instruction.
	OpBranch
	// OpBarrier synchronizes all threads sharing a Barrier.
	OpBarrier
)

func (o Op) String() string {
	switch o {
	case OpInt:
		return "int"
	case OpFP:
		return "fp"
	case OpLoad:
		return "load"
	case OpStore:
		return "store"
	case OpBranch:
		return "branch"
	case OpBarrier:
		return "barrier"
	}
	return fmt.Sprintf("Op(%d)", uint8(o))
}

// IsMem reports whether the op accesses memory.
func (o Op) IsMem() bool { return o == OpLoad || o == OpStore }

// DefaultLatency returns the execution latency of non-memory ops.
func (o Op) DefaultLatency() sim.Cycle {
	switch o {
	case OpFP:
		return 4
	default:
		return 1
	}
}

// Instr is one trace instruction. Dep1/Dep2 are register dependences
// expressed as distances to the producing instruction (1 = the previous
// instruction); 0 means no dependence.
type Instr struct {
	Op         Op
	Addr       mmu.VAddr // loads and stores
	Value      uint64    // stores
	Dep1, Dep2 int
	Lat        sim.Cycle // overrides DefaultLatency if nonzero

	// Mispredict marks a branch whose prediction fails: fetch stalls
	// until it resolves and pays the redirect penalty.
	Mispredict bool
}

// MispredictPenalty is the front-end redirect cost of a mispredicted
// branch, in cycles (a typical modern pipeline depth).
const MispredictPenalty sim.Cycle = 12

func (i Instr) latency() sim.Cycle {
	if i.Lat != 0 {
		return i.Lat
	}
	return i.Op.DefaultLatency()
}

// TraceSource produces a finite instruction stream on demand, so traces
// of millions of instructions never materialize in memory.
type TraceSource interface {
	Next() (Instr, bool)
}

// SliceTrace adapts a slice to a TraceSource; handy for tests and small
// microbenchmarks.
type SliceTrace struct {
	Instrs []Instr
	pos    int
}

// Next implements TraceSource.
func (s *SliceTrace) Next() (Instr, bool) {
	if s.pos >= len(s.Instrs) {
		return Instr{}, false
	}
	i := s.Instrs[s.pos]
	s.pos++
	return i, true
}

// Stats summarizes one core's execution.
type Stats struct {
	Instructions uint64
	Loads        uint64
	Stores       uint64
	Barriers     uint64
	Mispredicts  uint64
	StartCycle   sim.Cycle
	FinishCycle  sim.Cycle
}

// Cycles is the wall-clock execution time of the thread.
func (s Stats) Cycles() sim.Cycle { return s.FinishCycle - s.StartCycle }

// IPC is instructions per cycle.
func (s Stats) IPC() float64 {
	c := s.Cycles()
	if c == 0 {
		return 0
	}
	return float64(s.Instructions) / float64(c)
}

// Barrier synchronizes a fixed set of threads: the last arriver releases
// everyone. It mirrors the synchronization that dominates PARSEC ROI
// timing.
type Barrier struct {
	eng     *sim.Engine
	parties int
	waiting []func()

	// Waits counts completed barrier episodes.
	Waits uint64
}

// NewBarrier builds a barrier for parties threads.
func NewBarrier(eng *sim.Engine, parties int) *Barrier {
	if parties <= 0 {
		panic("cpu: barrier needs at least one party")
	}
	return &Barrier{eng: eng, parties: parties}
}

// Arrive registers a thread at the barrier; resume runs (one cycle later)
// once all parties have arrived.
func (b *Barrier) Arrive(resume func()) {
	b.waiting = append(b.waiting, resume)
	if len(b.waiting) < b.parties {
		return
	}
	b.Waits++
	released := b.waiting
	b.waiting = nil
	for _, r := range released {
		b.eng.Schedule(1, r)
	}
}
