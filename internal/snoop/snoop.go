// Package snoop implements bus-based snooping MESI — the other coherence
// architecture the paper describes (§II-A3) before focusing on directory
// protocols. Every miss broadcasts on a shared bus; all caches snoop and
// the owner (or memory) responds.
//
// The E/S timing channel exists here too, with an inverted sign: an
// E/M-state line is supplied cache-to-cache (fast) while S-state data come
// from memory (slow), so a receiver can still distinguish the states by
// timing. SwiftDir's I→S rule applies unchanged: write-protected data are
// always granted Shared, every access to them is served from the same
// place, and the channel closes. This package demonstrates that the
// paper's protection-by-simplification is architecture-agnostic.
package snoop

import (
	"fmt"

	"repro/internal/cache"
	"repro/internal/sim"
)

// Protocol selects the snooping variant.
type Protocol uint8

const (
	// MESI is the classic snooping baseline.
	MESI Protocol = iota
	// SwiftDir grants write-protected loads Shared (I->S), never
	// Exclusive.
	SwiftDir
)

func (p Protocol) String() string {
	if p == SwiftDir {
		return "SwiftDir-snoop"
	}
	return "MESI-snoop"
}

// Timing parameterizes the bus and memory.
type Timing struct {
	Arbitration  sim.Cycle // winning the bus
	Broadcast    sim.Cycle // address phase reaching all snoopers
	SnoopCheck   sim.Cycle // snoop tag check at every cache
	CacheToCache sim.Cycle // owner supplies the line over the bus
	Memory       sim.Cycle // memory supplies the line
	L1Tag        sim.Cycle // local hit
}

// DefaultTiming mirrors a front-side-bus system: cache-to-cache supply is
// much faster than a memory fetch.
func DefaultTiming() Timing {
	return Timing{
		Arbitration:  2,
		Broadcast:    3,
		SnoopCheck:   2,
		CacheToCache: 8,
		Memory:       60,
		L1Tag:        1,
	}
}

// hitLatency is the fixed local-hit service time.
func (t Timing) hitLatency() sim.Cycle { return t.L1Tag }

// supplyLatency is the miss service time given the supplier.
func (t Timing) supplyLatency(cacheSupplied bool) sim.Cycle {
	base := t.L1Tag + t.Arbitration + t.Broadcast + t.SnoopCheck
	if cacheSupplied {
		return base + t.CacheToCache
	}
	return base + t.Memory
}

// Config describes the snooping system.
type Config struct {
	Cores    int
	CacheKB  int
	Ways     int
	Protocol Protocol
	Timing   Timing
}

// DefaultConfig returns a system of the given size.
func DefaultConfig(cores int, p Protocol) Config {
	return Config{Cores: cores, CacheKB: 32, Ways: 4, Protocol: p, Timing: DefaultTiming()}
}

// System is a bus-snooping multicore: private caches over one shared bus
// with memory as the backstop. The bus serializes transactions, which is
// what makes snooping simple and unscalable — exactly the trade-off the
// paper describes.
type System struct {
	Eng    *sim.Engine
	cfg    Config
	caches []*cache.Array
	image  map[cache.Addr]uint64

	busFreeAt sim.Cycle

	// Stats
	BusTransactions uint64
	CacheSupplies   uint64
	MemorySupplies  uint64
	Invalidations   uint64
	SilentUpgrades  uint64
	UpgradeBusses   uint64
}

// NewSystem builds the machine.
func NewSystem(cfg Config) (*System, error) {
	if cfg.Cores <= 0 || cfg.Cores > 32 {
		return nil, fmt.Errorf("snoop: cores %d out of range", cfg.Cores)
	}
	s := &System{
		Eng:   sim.NewEngine(),
		cfg:   cfg,
		image: make(map[cache.Addr]uint64),
	}
	for i := 0; i < cfg.Cores; i++ {
		s.caches = append(s.caches, cache.NewArray(cache.Params{
			Name: fmt.Sprintf("snoopL1-%d", i), SizeBytes: cfg.CacheKB << 10,
			Ways: cfg.Ways, BlockSize: 64,
		}))
	}
	return s, nil
}

// MustNewSystem panics on configuration errors.
func MustNewSystem(cfg Config) *System {
	s, err := NewSystem(cfg)
	if err != nil {
		panic(err)
	}
	return s
}

func (s *System) memRead(addr cache.Addr) uint64 {
	if v, ok := s.image[addr]; ok {
		return v
	}
	return uint64(addr)*0x9E3779B97F4A7C15 | 1
}

// Result reports one access.
type Result struct {
	Latency       sim.Cycle
	Value         uint64
	CacheSupplied bool // miss served cache-to-cache (fast path)
	Hit           bool
}

// Access performs one blocking access on core's cache. The simulation is
// transaction-atomic: the bus serializes entire misses, which is faithful
// to classic snooping implementations.
func (s *System) Access(core int, addr cache.Addr, write bool, wp bool, value uint64) Result {
	arr := s.caches[core]
	block := arr.BlockAddr(addr)
	now := s.Eng.Now()
	t := s.cfg.Timing

	if ln := arr.Probe(block); ln != nil {
		if !write {
			s.advance(now + t.hitLatency())
			return Result{Latency: t.hitLatency(), Value: ln.Data, Hit: true}
		}
		switch ln.State {
		case cache.Modified:
			ln.Data = value
			s.advance(now + t.hitLatency())
			return Result{Latency: t.hitLatency(), Value: value, Hit: true}
		case cache.Exclusive:
			// Silent upgrade, as in directory MESI.
			s.SilentUpgrades++
			ln.State = cache.Modified
			ln.Data = value
			s.advance(now + t.hitLatency())
			return Result{Latency: t.hitLatency(), Value: value, Hit: true}
		default: // Shared: BusUpgr
			lat := s.busTransaction(core, block, true, false)
			ln.State = cache.Modified
			ln.Data = value
			s.UpgradeBusses++
			done := s.waitBus(now) + lat
			s.advance(done)
			return Result{Latency: done - now, Value: value}
		}
	}

	// Miss: full bus transaction.
	start := s.waitBus(now)
	var data uint64
	var cacheSupplied, othersHold bool
	if write {
		data, cacheSupplied, _ = s.snoopCollect(core, block, true)
	} else {
		data, cacheSupplied, othersHold = s.snoopCollect(core, block, false)
	}
	lat := t.supplyLatency(cacheSupplied)
	if cacheSupplied {
		s.CacheSupplies++
	} else {
		s.MemorySupplies++
	}
	s.BusTransactions++

	// Install.
	v := arr.Victim(block)
	if v.State.Valid() {
		s.evict(arr, v, block)
	}
	state := cache.Shared
	switch {
	case write:
		state = cache.Modified
		data = value
	case othersHold:
		state = cache.Shared
	case s.cfg.Protocol == SwiftDir && wp:
		// The SwiftDir rule: write-protected data are never Exclusive.
		state = cache.Shared
	default:
		state = cache.Exclusive
	}
	arr.Install(v, block, state)
	v.Data = data
	v.WP = wp

	done := start + lat
	s.advance(done)
	return Result{Latency: done - now, Value: data, CacheSupplied: cacheSupplied}
}

// waitBus returns when the bus is available, and reserves nothing yet.
func (s *System) waitBus(now sim.Cycle) sim.Cycle {
	if s.busFreeAt > now {
		return s.busFreeAt
	}
	return now
}

// busTransaction models a dataless upgrade broadcast.
func (s *System) busTransaction(core int, block cache.Addr, invalidate, _ bool) sim.Cycle {
	t := s.cfg.Timing
	if invalidate {
		for i, arr := range s.caches {
			if i == core {
				continue
			}
			if arr.Invalidate(block) {
				s.Invalidations++
			}
		}
	}
	s.BusTransactions++
	return t.Arbitration + t.Broadcast + t.SnoopCheck
}

// snoopCollect broadcasts a BusRd/BusRdX: every other cache snoops; an
// E/M holder supplies the data (downgrading to S, or invalidating on
// BusRdX); S holders either stay (BusRd) or invalidate (BusRdX).
func (s *System) snoopCollect(core int, block cache.Addr, exclusive bool) (data uint64, cacheSupplied, othersHold bool) {
	data = s.memRead(block)
	for i, arr := range s.caches {
		if i == core {
			continue
		}
		ln := arr.Lookup(block)
		if ln == nil {
			continue
		}
		switch ln.State {
		case cache.Modified, cache.Exclusive:
			data = ln.Data
			cacheSupplied = true
			if ln.State == cache.Modified {
				s.image[block] = ln.Data // flush to memory
			}
			if exclusive {
				arr.Invalidate(block)
				s.Invalidations++
			} else {
				ln.State = cache.Shared
				othersHold = true
			}
		case cache.Shared:
			if exclusive {
				arr.Invalidate(block)
				s.Invalidations++
			} else {
				othersHold = true
			}
		}
	}
	return data, cacheSupplied, othersHold
}

func (s *System) evict(arr *cache.Array, v *cache.Line, probe cache.Addr) {
	if v.State == cache.Modified {
		s.image[arr.AddrOfLine(v, probe)] = v.Data
	}
}

// advance moves simulated time forward and marks the bus busy until then.
func (s *System) advance(until sim.Cycle) {
	s.busFreeAt = until
	s.Eng.ScheduleAt(until, func() {})
	s.Eng.Run()
}

// StateOf reports core's cached state for a block.
func (s *System) StateOf(core int, addr cache.Addr) cache.LineState {
	if ln := s.caches[core].Lookup(addr); ln != nil {
		return ln.State
	}
	return cache.Invalid
}

// CheckInvariants validates SWMR across the snooping caches.
func (s *System) CheckInvariants() error {
	type h struct{ excl, shared []int }
	blocks := map[cache.Addr]*h{}
	for i, arr := range s.caches {
		i := i
		arr.ForEachValid(func(addr cache.Addr, ln *cache.Line) {
			e := blocks[addr]
			if e == nil {
				e = &h{}
				blocks[addr] = e
			}
			if ln.State == cache.Modified || ln.State == cache.Exclusive {
				e.excl = append(e.excl, i)
			} else {
				e.shared = append(e.shared, i)
			}
		})
	}
	for addr, e := range blocks {
		if len(e.excl) > 1 || (len(e.excl) == 1 && len(e.shared) > 0) {
			return fmt.Errorf("snoop SWMR: block %#x excl=%v shared=%v", addr, e.excl, e.shared)
		}
	}
	return nil
}
