package snoop

import (
	"testing"
	"testing/quick"

	"repro/internal/cache"
	"repro/internal/sim"
)

const blockA cache.Addr = 0x4000

func TestConfigBounds(t *testing.T) {
	if _, err := NewSystem(Config{Cores: 0}); err == nil {
		t.Fatal("zero cores accepted")
	}
	if _, err := NewSystem(DefaultConfig(4, MESI)); err != nil {
		t.Fatal(err)
	}
}

func TestProtocolStrings(t *testing.T) {
	if MESI.String() != "MESI-snoop" || SwiftDir.String() != "SwiftDir-snoop" {
		t.Fatal("names wrong")
	}
}

func TestColdLoadGetsExclusiveFromMemory(t *testing.T) {
	s := MustNewSystem(DefaultConfig(2, MESI))
	r := s.Access(0, blockA, false, false, 0)
	if r.CacheSupplied {
		t.Fatal("cold load cache-supplied")
	}
	if st := s.StateOf(0, blockA); st != cache.Exclusive {
		t.Fatalf("state %v, want E", st)
	}
	want := DefaultTiming().supplyLatency(false)
	if r.Latency != want {
		t.Fatalf("latency %d, want %d", r.Latency, want)
	}
}

// The snooping E/S channel, inverted: E-state data are supplied
// cache-to-cache (fast); S-state data come from memory (slow).
func TestSnoopTimingChannelInverted(t *testing.T) {
	tm := DefaultTiming()

	// E-state remote load: fast cache-to-cache.
	s := MustNewSystem(DefaultConfig(2, MESI))
	s.Access(1, blockA, false, true, 0) // E on core 1
	rE := s.Access(0, blockA, false, true, 0)
	if !rE.CacheSupplied {
		t.Fatal("E-state load not cache-supplied")
	}
	if rE.Latency != tm.supplyLatency(true) {
		t.Fatalf("E latency %d, want %d", rE.Latency, tm.supplyLatency(true))
	}

	// S-state load (two sharers already): slow memory supply.
	s2 := MustNewSystem(DefaultConfig(4, MESI))
	s2.Access(1, blockA, false, true, 0)
	s2.Access(2, blockA, false, true, 0) // E->S
	rS := s2.Access(0, blockA, false, true, 0)
	if rS.CacheSupplied {
		t.Fatal("S-state load cache-supplied under plain MESI snooping")
	}
	if rS.Latency != tm.supplyLatency(false) {
		t.Fatalf("S latency %d, want %d", rS.Latency, tm.supplyLatency(false))
	}
	if rE.Latency >= rS.Latency {
		t.Fatalf("snooping channel not inverted: E=%d S=%d", rE.Latency, rS.Latency)
	}
}

// SwiftDir on snooping closes the channel: write-protected loads are
// always granted S, so the receiver's probe latency is independent of how
// many senders touched the line.
func TestSnoopSwiftDirConstantLatency(t *testing.T) {
	tm := DefaultTiming()
	// One prior toucher.
	s := MustNewSystem(DefaultConfig(4, SwiftDir))
	s.Access(1, blockA, false, true, 0)
	if st := s.StateOf(1, blockA); st != cache.Shared {
		t.Fatalf("initial WP load state %v, want S", st)
	}
	r1 := s.Access(0, blockA, false, true, 0)

	// Two prior touchers.
	s2 := MustNewSystem(DefaultConfig(4, SwiftDir))
	s2.Access(1, blockA, false, true, 0)
	s2.Access(2, blockA, false, true, 0)
	r2 := s2.Access(0, blockA, false, true, 0)

	if r1.Latency != r2.Latency {
		t.Fatalf("SwiftDir-snoop latencies differ: %d vs %d (channel open)", r1.Latency, r2.Latency)
	}
	if r1.Latency != tm.supplyLatency(false) {
		t.Fatalf("latency %d, want constant memory supply %d", r1.Latency, tm.supplyLatency(false))
	}
}

// The snooping covert channel end to end: decodable on MESI, guessing on
// SwiftDir.
func TestSnoopCovertChannel(t *testing.T) {
	run := func(p Protocol) (errors int) {
		s := MustNewSystem(DefaultConfig(4, p))
		rng := sim.NewRNG(3)
		threshold := (DefaultTiming().supplyLatency(true) + DefaultTiming().supplyLatency(false)) / 2
		for i := 0; i < 128; i++ {
			line := cache.Addr(0x100000 + i*64)
			bit := rng.Bool(0.5)
			// Sender: one toucher for 1 (E under MESI), two for 0 (S).
			s.Access(1, line, false, true, 0)
			if !bit {
				s.Access(2, line, false, true, 0)
			}
			r := s.Access(0, line, false, true, 0)
			// Inverted channel: fast (cache-supplied) means E means 1.
			got := r.Latency < threshold
			if got != bit {
				errors++
			}
		}
		return errors
	}
	if e := run(MESI); e != 0 {
		t.Fatalf("MESI-snoop channel errors = %d, want 0", e)
	}
	if e := run(SwiftDir); e < 30 {
		t.Fatalf("SwiftDir-snoop channel errors = %d, want ~half (closed)", e)
	}
}

func TestSnoopWriteInvalidatesAndPropagates(t *testing.T) {
	s := MustNewSystem(DefaultConfig(2, MESI))
	s.Access(0, blockA, false, false, 0)
	s.Access(1, blockA, false, false, 0) // E->S via snoop
	w := s.Access(1, blockA, true, false, 0x5A)
	_ = w
	if st := s.StateOf(0, blockA); st != cache.Invalid {
		t.Fatalf("other copy not invalidated: %v", st)
	}
	r := s.Access(0, blockA, false, false, 0)
	if r.Value != 0x5A {
		t.Fatalf("read %#x, want 0x5A", r.Value)
	}
	if !r.CacheSupplied {
		t.Fatal("dirty line not supplied cache-to-cache")
	}
	if err := s.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestSnoopSilentUpgrade(t *testing.T) {
	s := MustNewSystem(DefaultConfig(2, MESI))
	s.Access(0, blockA, false, false, 0)
	before := s.BusTransactions
	w := s.Access(0, blockA, true, false, 1)
	if w.Latency != DefaultTiming().L1Tag {
		t.Fatalf("silent upgrade latency %d", w.Latency)
	}
	if s.BusTransactions != before {
		t.Fatal("silent upgrade used the bus")
	}
	if s.SilentUpgrades != 1 {
		t.Fatal("silent upgrade not counted")
	}
}

func TestSnoopUpgradeFromShared(t *testing.T) {
	s := MustNewSystem(DefaultConfig(2, MESI))
	s.Access(0, blockA, false, false, 0)
	s.Access(1, blockA, false, false, 0) // both S
	w := s.Access(0, blockA, true, false, 2)
	if w.Latency <= DefaultTiming().L1Tag {
		t.Fatal("S->M upgrade was free")
	}
	if s.UpgradeBusses != 1 {
		t.Fatalf("upgrade bus transactions = %d", s.UpgradeBusses)
	}
	if st := s.StateOf(1, blockA); st != cache.Invalid {
		t.Fatal("sharer survived upgrade")
	}
}

// Dirty evictions write back to memory; data survive.
func TestSnoopDirtyEviction(t *testing.T) {
	cfg := DefaultConfig(1, MESI)
	cfg.CacheKB = 1
	cfg.Ways = 2
	s := MustNewSystem(cfg)
	sets := 1 * 1024 / (2 * 64)
	base := cache.Addr(0x8000)
	stride := cache.Addr(sets * 64)
	for i := 0; i < 6; i++ {
		s.Access(0, base+cache.Addr(i)*stride, true, false, uint64(0x70+i))
	}
	for i := 0; i < 6; i++ {
		r := s.Access(0, base+cache.Addr(i)*stride, false, false, 0)
		if r.Value != uint64(0x70+i) {
			t.Fatalf("block %d lost data: %#x", i, r.Value)
		}
	}
	if err := s.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

// Property: sequential consistency under random single-threaded-per-core
// snooping traffic.
func TestSnoopSequentialConsistencyProperty(t *testing.T) {
	for _, p := range []Protocol{MESI, SwiftDir} {
		p := p
		f := func(ops []uint16) bool {
			s := MustNewSystem(DefaultConfig(4, p))
			shadow := map[cache.Addr]uint64{}
			v := uint64(1)
			for _, op := range ops {
				core := int(op) % 4
				block := cache.Addr(0x100000 + (uint64(op)>>2%24)*64)
				if op&0x8000 != 0 {
					v++
					s.Access(core, block, true, false, v)
					shadow[block] = v
				} else {
					r := s.Access(core, block, false, op&0x4000 != 0, 0)
					want, ok := shadow[block]
					if !ok {
						want = s.memRead(block)
					}
					if r.Value != want {
						return false
					}
				}
			}
			return s.CheckInvariants() == nil
		}
		if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
			t.Fatalf("%v: %v", p, err)
		}
	}
}

// The bus serializes: back-to-back misses from different cores cannot
// overlap (the scalability limit the paper cites for snooping).
func TestSnoopBusSerialization(t *testing.T) {
	s := MustNewSystem(DefaultConfig(2, MESI))
	t0 := s.Eng.Now()
	s.Access(0, 0x1000, false, false, 0)
	t1 := s.Eng.Now()
	s.Access(1, 0x2000, false, false, 0)
	t2 := s.Eng.Now()
	if (t2 - t1) < (t1 - t0) {
		t.Fatalf("second miss overlapped the first: %d vs %d", t2-t1, t1-t0)
	}
}
