package stats

import (
	"fmt"
	"sync"
)

// FastPathSummary reports how one run's CPU-side cache accesses split
// between the synchronous L1-hit fast path and the event engine (see
// DESIGN.md §5). The split is pure observability: disabling the fast
// path changes neither results nor statistics, only this summary.
type FastPathSummary struct {
	Label string
	Fast  uint64 // accesses completed synchronously (TryFastAccess)
	Slow  uint64 // accesses submitted to the event path
}

// Total returns the run's CPU-side access count.
func (s FastPathSummary) Total() uint64 { return s.Fast + s.Slow }

// Fraction returns the share of accesses served by the fast path, 0
// for an empty run.
func (s FastPathSummary) Fraction() float64 {
	if t := s.Total(); t > 0 {
		return float64(s.Fast) / float64(t)
	}
	return 0
}

// Footer renders the one-line fast-path accounting printed under each
// report. Like CampaignSummary.Footer it never goes on the deterministic
// report stream itself (swiftdir-bench prints it to stderr).
func (s FastPathSummary) Footer() string {
	label := s.Label
	if label == "" {
		label = "run"
	}
	return fmt.Sprintf("[fastpath %s] %d accesses: %d fast (%.1f%%), %d slow",
		label, s.Total(), s.Fast, 100*s.Fraction(), s.Slow)
}

// MergeFastPaths folds the per-run summaries of one experiment into a
// single line under the given label.
func MergeFastPaths(label string, summaries []FastPathSummary) FastPathSummary {
	out := FastPathSummary{Label: label}
	for _, s := range summaries {
		out.Fast += s.Fast
		out.Slow += s.Slow
	}
	return out
}

var (
	fpMu      sync.Mutex
	fpPending []FastPathSummary
)

// AddFastPath queues a run's fast-path split for TakeFastPaths; the
// workload runners call it so CLI frontends can report the split without
// threading it through every experiment signature (the same pattern as
// the campaign summaries). The queue is bounded: under a frontend that
// never drains, old entries fall off rather than accumulating.
func AddFastPath(s FastPathSummary) {
	fpMu.Lock()
	defer fpMu.Unlock()
	fpPending = append(fpPending, s)
	const keep = 4096
	if len(fpPending) > keep {
		fpPending = append(fpPending[:0], fpPending[len(fpPending)-keep:]...)
	}
}

// TakeFastPaths drains and returns the summaries queued since the
// previous drain, in completion order.
func TakeFastPaths() []FastPathSummary {
	fpMu.Lock()
	defer fpMu.Unlock()
	out := fpPending
	fpPending = nil
	return out
}
