package stats

import (
	"fmt"
	"sync/atomic"
)

// CacheStats are the result-cache and singleflight counters behind
// swiftdir-serve's /statsz endpoint. All fields are atomic so the
// cache's hit path and the server's request handlers update them without
// a lock; Snapshot gives a consistent-enough point-in-time copy for
// reporting (each counter is read atomically, the set is not fenced —
// these are observability numbers, not invariants).
type CacheStats struct {
	Hits       atomic.Uint64 // Get served from memory or verified disk
	Misses     atomic.Uint64 // Get found nothing servable
	Dedups     atomic.Uint64 // singleflight waiters that shared a leader's run
	Runs       atomic.Uint64 // underlying experiment executions started
	Evictions  atomic.Uint64 // LRU entries dropped from memory
	Corrupt    atomic.Uint64 // disk entries rejected by hash verification
	DiskErrors atomic.Uint64 // disk reads/writes that failed and degraded
	Inflight   atomic.Int64  // requests currently resolving (gauge)
}

// CacheSnapshot is one point-in-time reading of CacheStats, in the wire
// shape /statsz marshals.
type CacheSnapshot struct {
	Hits       uint64 `json:"hits"`
	Misses     uint64 `json:"misses"`
	Dedups     uint64 `json:"dedups"`
	Runs       uint64 `json:"runs"`
	Evictions  uint64 `json:"evictions"`
	Corrupt    uint64 `json:"corrupt"`
	DiskErrors uint64 `json:"disk_errors"`
	Inflight   int64  `json:"inflight"`
}

// Snapshot reads every counter.
func (c *CacheStats) Snapshot() CacheSnapshot {
	return CacheSnapshot{
		Hits:       c.Hits.Load(),
		Misses:     c.Misses.Load(),
		Dedups:     c.Dedups.Load(),
		Runs:       c.Runs.Load(),
		Evictions:  c.Evictions.Load(),
		Corrupt:    c.Corrupt.Load(),
		DiskErrors: c.DiskErrors.Load(),
		Inflight:   c.Inflight.Load(),
	}
}

// HitRate returns hits/(hits+misses), 0 before any lookup.
func (s CacheSnapshot) HitRate() float64 {
	if t := s.Hits + s.Misses; t > 0 {
		return float64(s.Hits) / float64(t)
	}
	return 0
}

// Footer renders the one-line cache accounting (the CLI/log sibling of
// the campaign, fastpath, and shards footers).
func (s CacheSnapshot) Footer() string {
	return fmt.Sprintf("[cache] %d hits, %d misses (%.1f%% hit rate), %d deduped, %d runs, %d evicted, %d corrupt, %d disk errors",
		s.Hits, s.Misses, 100*s.HitRate(), s.Dedups, s.Runs, s.Evictions, s.Corrupt, s.DiskErrors)
}
