package stats

import (
	"strings"
	"testing"
	"time"
)

func TestCampaignSummaryAccounting(t *testing.T) {
	s := CampaignSummary{
		Label:   "fig7",
		Workers: 4,
		Wall:    2 * time.Second,
		Jobs: []JobTiming{
			{Name: "mcf/MESI", Wall: 3 * time.Second},
			{Name: "mcf/SwiftDir", Wall: 4 * time.Second},
			{Name: "mcf/S-MESI", Wall: time.Second, Failed: true},
		},
	}
	if s.Busy() != 8*time.Second {
		t.Fatalf("Busy = %v", s.Busy())
	}
	if s.Speedup() != 4 {
		t.Fatalf("Speedup = %v", s.Speedup())
	}
	if s.Failed() != 1 {
		t.Fatalf("Failed = %d", s.Failed())
	}
	slow, ok := s.Slowest()
	if !ok || slow.Name != "mcf/SwiftDir" {
		t.Fatalf("Slowest = %+v, %v", slow, ok)
	}
	footer := s.Footer()
	for _, want := range []string{"fig7", "3 jobs", "4 workers", "speedup 4.00x", "mcf/SwiftDir", "1 FAILED"} {
		if !strings.Contains(footer, want) {
			t.Errorf("footer missing %q: %s", want, footer)
		}
	}
}

func TestCampaignSummaryEdges(t *testing.T) {
	var empty CampaignSummary
	if empty.Speedup() != 0 || empty.Failed() != 0 {
		t.Fatal("empty summary not zero")
	}
	if _, ok := empty.Slowest(); ok {
		t.Fatal("empty summary has a slowest job")
	}
	if !strings.Contains(empty.Footer(), "campaign") {
		t.Fatalf("footer = %q", empty.Footer())
	}
}

func TestMergeCampaigns(t *testing.T) {
	a := CampaignSummary{Workers: 2, Wall: time.Second, Jobs: []JobTiming{{Name: "a", Wall: time.Second}}}
	b := CampaignSummary{Workers: 4, Wall: 2 * time.Second, Jobs: []JobTiming{{Name: "b", Wall: time.Second}, {Name: "c", Wall: 3 * time.Second}}}
	m := MergeCampaigns("security", []CampaignSummary{a, b})
	if m.Label != "security" || m.Workers != 4 || m.Wall != 3*time.Second || len(m.Jobs) != 3 {
		t.Fatalf("merged = %+v", m)
	}
}
