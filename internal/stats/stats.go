// Package stats provides the measurement plumbing for the evaluation:
// latency histograms and CDFs (Figure 6), normalized metric tables
// (Figures 7-10), and plain-text rendering of the paper's tables.
package stats

import (
	"fmt"
	"math"
	"sort"
	"strings"

	"repro/internal/sim"
)

// Histogram collects cycle latencies.
type Histogram struct {
	samples []sim.Cycle
	sorted  bool
}

// Add records one sample.
func (h *Histogram) Add(c sim.Cycle) {
	h.samples = append(h.samples, c)
	h.sorted = false
}

// Count returns the number of samples.
func (h *Histogram) Count() int { return len(h.samples) }

func (h *Histogram) sort() {
	if !h.sorted {
		sort.Slice(h.samples, func(i, j int) bool { return h.samples[i] < h.samples[j] })
		h.sorted = true
	}
}

// Mean returns the average latency, or 0 with no samples.
func (h *Histogram) Mean() float64 {
	if len(h.samples) == 0 {
		return 0
	}
	var sum float64
	for _, s := range h.samples {
		sum += float64(s)
	}
	return sum / float64(len(h.samples))
}

// StdDev returns the population standard deviation.
func (h *Histogram) StdDev() float64 {
	if len(h.samples) == 0 {
		return 0
	}
	m := h.Mean()
	var ss float64
	for _, s := range h.samples {
		d := float64(s) - m
		ss += d * d
	}
	return math.Sqrt(ss / float64(len(h.samples)))
}

// Percentile returns the p-th percentile (0 <= p <= 100).
func (h *Histogram) Percentile(p float64) sim.Cycle {
	if len(h.samples) == 0 {
		return 0
	}
	h.sort()
	if p <= 0 {
		return h.samples[0]
	}
	if p >= 100 {
		return h.samples[len(h.samples)-1]
	}
	idx := int(math.Ceil(p/100*float64(len(h.samples)))) - 1
	if idx < 0 {
		idx = 0
	}
	return h.samples[idx]
}

// Min and Max return the extremes.
func (h *Histogram) Min() sim.Cycle { return h.Percentile(0) }
func (h *Histogram) Max() sim.Cycle { return h.Percentile(100) }

// CDFPoint is one step of a cumulative distribution function.
type CDFPoint struct {
	Latency sim.Cycle
	Frac    float64 // fraction of samples <= Latency
}

// CDF returns the empirical distribution as steps at each distinct
// latency (the data behind Figure 6).
func (h *Histogram) CDF() []CDFPoint {
	if len(h.samples) == 0 {
		return nil
	}
	h.sort()
	var out []CDFPoint
	n := float64(len(h.samples))
	for i := 0; i < len(h.samples); i++ {
		if i+1 < len(h.samples) && h.samples[i+1] == h.samples[i] {
			continue
		}
		out = append(out, CDFPoint{Latency: h.samples[i], Frac: float64(i+1) / n})
	}
	return out
}

// Normalize expresses value as a percentage of baseline (100 = equal).
// A zero baseline yields NaN-free 0.
func Normalize(value, baseline float64) float64 {
	if baseline == 0 {
		return 0
	}
	return value / baseline * 100
}

// GeoMean returns the geometric mean of positive values (conventional for
// normalized benchmark metrics); zero/negative inputs are skipped.
func GeoMean(vals []float64) float64 {
	var sum float64
	n := 0
	for _, v := range vals {
		if v > 0 {
			sum += math.Log(v)
			n++
		}
	}
	if n == 0 {
		return 0
	}
	return math.Exp(sum / float64(n))
}

// Mean returns the arithmetic mean.
func Mean(vals []float64) float64 {
	if len(vals) == 0 {
		return 0
	}
	var sum float64
	for _, v := range vals {
		sum += v
	}
	return sum / float64(len(vals))
}

// Table renders aligned plain-text tables for the report output.
type Table struct {
	Title   string
	Headers []string
	rows    [][]string
}

// NewTable creates a table with a title and column headers.
func NewTable(title string, headers ...string) *Table {
	return &Table{Title: title, Headers: headers}
}

// AddRow appends a row; cells beyond the header count are dropped.
func (t *Table) AddRow(cells ...string) {
	if len(cells) > len(t.Headers) {
		cells = cells[:len(t.Headers)]
	}
	row := make([]string, len(t.Headers))
	copy(row, cells)
	t.rows = append(t.rows, row)
}

// AddRowF appends a row of formatted values: strings pass through,
// float64 renders with 3 decimals, integers with %d.
func (t *Table) AddRowF(cells ...any) {
	out := make([]string, 0, len(cells))
	for _, c := range cells {
		switch v := c.(type) {
		case string:
			out = append(out, v)
		case float64:
			out = append(out, fmt.Sprintf("%.3f", v))
		case sim.Cycle:
			out = append(out, fmt.Sprintf("%d", v))
		default:
			out = append(out, fmt.Sprint(v))
		}
	}
	t.AddRow(out...)
}

// Rows returns the number of data rows.
func (t *Table) Rows() int { return len(t.rows) }

// Render produces the aligned text.
func (t *Table) Render() string {
	widths := make([]int, len(t.Headers))
	for i, h := range t.Headers {
		widths[i] = len(h)
	}
	for _, r := range t.rows {
		for i, c := range r {
			if len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	var b strings.Builder
	if t.Title != "" {
		b.WriteString(t.Title)
		b.WriteByte('\n')
	}
	writeRow := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], c)
		}
		b.WriteByte('\n')
	}
	writeRow(t.Headers)
	sep := make([]string, len(t.Headers))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	writeRow(sep)
	for _, r := range t.rows {
		writeRow(r)
	}
	return b.String()
}

// RenderCDF renders one or more CDFs side by side as text (Figure 6's
// form), sampling at each distinct latency across all series.
func RenderCDF(title string, names []string, cdfs [][]CDFPoint) string {
	latencySet := map[sim.Cycle]bool{}
	for _, c := range cdfs {
		for _, p := range c {
			latencySet[p.Latency] = true
		}
	}
	lats := make([]sim.Cycle, 0, len(latencySet))
	for l := range latencySet {
		lats = append(lats, l)
	}
	sort.Slice(lats, func(i, j int) bool { return lats[i] < lats[j] })

	headers := append([]string{"latency(cyc)"}, names...)
	tb := NewTable(title, headers...)
	for _, l := range lats {
		row := []string{fmt.Sprintf("%d", l)}
		for _, c := range cdfs {
			frac := 0.0
			for _, p := range c {
				if p.Latency <= l {
					frac = p.Frac
				} else {
					break
				}
			}
			row = append(row, fmt.Sprintf("%.4f", frac))
		}
		tb.AddRow(row...)
	}
	return tb.Render()
}
