package stats

import (
	"fmt"
	"strings"
	"sync"
)

// ShardSummary reports one sharded run's event-engine accounting: how
// many events each shard executed, how many global (driver-run) events
// there were, and how many epoch barriers the run crossed (DESIGN.md §5
// "Parallel discrete-event simulation"). Like FastPathSummary it is pure
// observability: results are byte-identical at every shard count, so the
// summary never goes on the deterministic report stream (the CLIs print
// it to stderr).
type ShardSummary struct {
	Label    string
	Executed []uint64 // per-shard executed-event counts
	Globals  uint64   // global events run on the driver
	Barriers uint64   // epoch barriers crossed
}

// Shards returns the shard count of the run.
func (s ShardSummary) Shards() int { return len(s.Executed) }

// Total returns the run's executed-event count across shards and driver.
func (s ShardSummary) Total() uint64 {
	n := s.Globals
	for _, e := range s.Executed {
		n += e
	}
	return n
}

// Footer renders the one-line shard accounting printed under a report.
func (s ShardSummary) Footer() string {
	label := s.Label
	if label == "" {
		label = "run"
	}
	per := make([]string, len(s.Executed))
	for i, e := range s.Executed {
		per[i] = fmt.Sprintf("%d", e)
	}
	return fmt.Sprintf("[shards %s] %d shards: %d events (%s per shard, %d global), %d epoch barriers",
		label, s.Shards(), s.Total(), strings.Join(per, "/"), s.Globals, s.Barriers)
}

// MergeShards folds the per-run summaries of one experiment into a
// single line under the given label; per-shard counts add element-wise
// (runs with more shards extend the vector).
func MergeShards(label string, summaries []ShardSummary) ShardSummary {
	out := ShardSummary{Label: label}
	for _, s := range summaries {
		for len(out.Executed) < len(s.Executed) {
			out.Executed = append(out.Executed, 0)
		}
		for i, e := range s.Executed {
			out.Executed[i] += e
		}
		out.Globals += s.Globals
		out.Barriers += s.Barriers
	}
	return out
}

var (
	shMu      sync.Mutex
	shPending []ShardSummary
)

// AddShards queues a sharded run's engine accounting for TakeShards; the
// workload runners call it so CLI frontends can print the [shards]
// footer without threading it through every experiment signature. The
// queue is bounded like the fast-path queue.
func AddShards(s ShardSummary) {
	shMu.Lock()
	defer shMu.Unlock()
	shPending = append(shPending, s)
	const keep = 4096
	if len(shPending) > keep {
		shPending = append(shPending[:0], shPending[len(shPending)-keep:]...)
	}
}

// TakeShards drains and returns the summaries queued since the previous
// drain, in completion order.
func TakeShards() []ShardSummary {
	shMu.Lock()
	defer shMu.Unlock()
	out := shPending
	shPending = nil
	return out
}
