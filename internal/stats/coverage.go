package stats

import (
	"fmt"
	"sort"
	"strings"
)

// Coverage is a generic exercised-vs-expected report: a named universe of
// items (protocol transition-table entries, experiment cells, ...), which
// of them were actually hit, and which hits fell outside the universe.
// The model checker (internal/mcheck) uses it to report transition-table
// coverage; the zero value is an empty report ready for Declare/Hit calls.
type Coverage struct {
	Name string

	hit    map[string]bool // item -> exercised
	extras []string        // observed but not in the universe
}

// Declare registers an expected item (idempotent; does not mark it hit).
func (c *Coverage) Declare(item string) {
	if c.hit == nil {
		c.hit = make(map[string]bool)
	}
	if _, ok := c.hit[item]; !ok {
		c.hit[item] = false
	}
}

// Hit marks an expected item as exercised. An item outside the declared
// universe is recorded as unexpected instead.
func (c *Coverage) Hit(item string) {
	if c.hit == nil {
		c.hit = make(map[string]bool)
	}
	if _, ok := c.hit[item]; ok {
		c.hit[item] = true
		return
	}
	c.extras = append(c.extras, item)
}

// Expected returns the size of the declared universe.
func (c *Coverage) Expected() int { return len(c.hit) }

// Covered returns how many declared items were hit.
func (c *Coverage) Covered() int {
	n := 0
	for _, h := range c.hit {
		if h {
			n++
		}
	}
	return n
}

// Ratio returns Covered/Expected, or 1 for an empty universe.
func (c *Coverage) Ratio() float64 {
	if len(c.hit) == 0 {
		return 1
	}
	return float64(c.Covered()) / float64(len(c.hit))
}

// Missing returns the declared items never hit, sorted.
func (c *Coverage) Missing() []string {
	var out []string
	for item, h := range c.hit {
		if !h {
			out = append(out, item)
		}
	}
	sort.Strings(out)
	return out
}

// Unexpected returns the hits that fell outside the universe, sorted and
// deduplicated.
func (c *Coverage) Unexpected() []string {
	seen := make(map[string]bool, len(c.extras))
	var out []string
	for _, item := range c.extras {
		if !seen[item] {
			seen[item] = true
			out = append(out, item)
		}
	}
	sort.Strings(out)
	return out
}

// String renders the report: a summary line, then any missing and
// unexpected items.
func (c *Coverage) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s: %d/%d covered (%.1f%%)\n",
		c.Name, c.Covered(), c.Expected(), 100*c.Ratio())
	for _, m := range c.Missing() {
		fmt.Fprintf(&b, "  MISSING    %s\n", m)
	}
	for _, u := range c.Unexpected() {
		fmt.Fprintf(&b, "  UNEXPECTED %s\n", u)
	}
	return b.String()
}
