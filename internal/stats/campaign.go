package stats

import (
	"fmt"
	"strings"
	"time"
)

// JobTiming records one campaign job's wall-clock cost (the scheduling
// accounting behind the report footers; see internal/campaign).
type JobTiming struct {
	Name   string
	Wall   time.Duration
	Failed bool
}

// CampaignSummary aggregates the scheduling accounting of one campaign:
// how many workers ran, how long the campaign took end to end (Wall), and
// what every job cost individually. Busy/Wall is the achieved speedup
// over a strictly sequential run of the same jobs.
type CampaignSummary struct {
	Label   string
	Workers int
	Wall    time.Duration
	Jobs    []JobTiming
}

// Busy returns the summed wall time of all jobs — the cost a sequential
// run would pay end to end.
func (s CampaignSummary) Busy() time.Duration {
	var total time.Duration
	for _, j := range s.Jobs {
		total += j.Wall
	}
	return total
}

// Speedup returns Busy/Wall: how much faster the campaign completed than
// the same jobs run back to back. 0 with no elapsed time.
func (s CampaignSummary) Speedup() float64 {
	if s.Wall <= 0 {
		return 0
	}
	return float64(s.Busy()) / float64(s.Wall)
}

// Failed counts jobs that ended in an error (including captured panics).
func (s CampaignSummary) Failed() int {
	n := 0
	for _, j := range s.Jobs {
		if j.Failed {
			n++
		}
	}
	return n
}

// Slowest returns the most expensive job — the campaign's critical path
// lower bound — and false if the campaign was empty.
func (s CampaignSummary) Slowest() (JobTiming, bool) {
	if len(s.Jobs) == 0 {
		return JobTiming{}, false
	}
	max := s.Jobs[0]
	for _, j := range s.Jobs[1:] {
		if j.Wall > max.Wall {
			max = j
		}
	}
	return max, true
}

// Footer renders the one-line accounting printed under each report. It
// carries wall-clock times and therefore never goes on the deterministic
// report stream itself (swiftdir-bench prints it to stderr).
func (s CampaignSummary) Footer() string {
	var b strings.Builder
	label := s.Label
	if label == "" {
		label = "campaign"
	}
	fmt.Fprintf(&b, "[campaign %s] %d jobs on %d workers: wall %s, busy %s, speedup %.2fx",
		label, len(s.Jobs), s.Workers,
		s.Wall.Round(time.Microsecond), s.Busy().Round(time.Microsecond), s.Speedup())
	if slow, ok := s.Slowest(); ok {
		fmt.Fprintf(&b, ", slowest %s (%s)", slow.Name, slow.Wall.Round(time.Microsecond))
	}
	if f := s.Failed(); f > 0 {
		fmt.Fprintf(&b, ", %d FAILED", f)
	}
	return b.String()
}

// MergeCampaigns folds several sequentially-executed campaigns (e.g. the
// sub-campaigns of one experiment) into a single summary: walls add, job
// lists concatenate, and the worker count is the maximum seen.
func MergeCampaigns(label string, summaries []CampaignSummary) CampaignSummary {
	out := CampaignSummary{Label: label}
	for _, s := range summaries {
		out.Wall += s.Wall
		out.Jobs = append(out.Jobs, s.Jobs...)
		if s.Workers > out.Workers {
			out.Workers = s.Workers
		}
	}
	return out
}
