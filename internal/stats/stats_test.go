package stats

import (
	"math"
	"sort"
	"strings"
	"testing"
	"testing/quick"

	"repro/internal/sim"
)

func TestHistogramBasics(t *testing.T) {
	var h Histogram
	if h.Count() != 0 || h.Mean() != 0 || h.StdDev() != 0 {
		t.Fatal("empty histogram not zeroed")
	}
	for _, v := range []sim.Cycle{10, 20, 30, 40} {
		h.Add(v)
	}
	if h.Count() != 4 {
		t.Fatalf("count = %d", h.Count())
	}
	if h.Mean() != 25 {
		t.Fatalf("mean = %v", h.Mean())
	}
	if h.Min() != 10 || h.Max() != 40 {
		t.Fatalf("min/max = %d/%d", h.Min(), h.Max())
	}
	if h.Percentile(50) != 20 {
		t.Fatalf("p50 = %d", h.Percentile(50))
	}
	want := math.Sqrt((225 + 25 + 25 + 225) / 4.0)
	if math.Abs(h.StdDev()-want) > 1e-9 {
		t.Fatalf("stddev = %v, want %v", h.StdDev(), want)
	}
}

func TestHistogramAddAfterSortStaysCorrect(t *testing.T) {
	var h Histogram
	h.Add(30)
	h.Add(10)
	_ = h.Percentile(50) // forces sort
	h.Add(20)
	if h.Percentile(100) != 30 || h.Percentile(0) != 10 {
		t.Fatal("histogram corrupted by post-sort insertion")
	}
	if h.Percentile(50) != 20 {
		t.Fatalf("p50 = %d, want 20", h.Percentile(50))
	}
}

func TestCDFMonotoneAndComplete(t *testing.T) {
	f := func(raw []uint16) bool {
		if len(raw) == 0 {
			return true
		}
		var h Histogram
		for _, r := range raw {
			h.Add(sim.Cycle(r))
		}
		cdf := h.CDF()
		if len(cdf) == 0 {
			return false
		}
		if cdf[len(cdf)-1].Frac != 1.0 {
			return false
		}
		for i := 1; i < len(cdf); i++ {
			if cdf[i].Latency <= cdf[i-1].Latency || cdf[i].Frac <= cdf[i-1].Frac {
				return false
			}
		}
		// Distinct latencies only.
		sorted := append([]uint16(nil), raw...)
		sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
		distinct := 1
		for i := 1; i < len(sorted); i++ {
			if sorted[i] != sorted[i-1] {
				distinct++
			}
		}
		return len(cdf) == distinct
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestDegenerateCDF(t *testing.T) {
	var h Histogram
	for i := 0; i < 100; i++ {
		h.Add(17)
	}
	cdf := h.CDF()
	if len(cdf) != 1 || cdf[0].Latency != 17 || cdf[0].Frac != 1 {
		t.Fatalf("degenerate CDF = %+v", cdf)
	}
}

func TestNormalize(t *testing.T) {
	if math.Abs(Normalize(110, 100)-110) > 1e-9 {
		t.Fatal("normalize 110/100")
	}
	if math.Abs(Normalize(50, 200)-25) > 1e-9 {
		t.Fatal("normalize 50/200")
	}
	if Normalize(5, 0) != 0 {
		t.Fatal("normalize with zero baseline")
	}
}

func TestGeoMeanAndMean(t *testing.T) {
	vals := []float64{1, 10, 100}
	if math.Abs(GeoMean(vals)-10) > 1e-9 {
		t.Fatalf("geomean = %v", GeoMean(vals))
	}
	if Mean(vals) != 37 {
		t.Fatalf("mean = %v", Mean(vals))
	}
	if GeoMean(nil) != 0 || Mean(nil) != 0 {
		t.Fatal("empty inputs")
	}
	if GeoMean([]float64{0, -1}) != 0 {
		t.Fatal("nonpositive-only geomean")
	}
}

func TestTableRender(t *testing.T) {
	tb := NewTable("Figure X", "bench", "MESI", "SwiftDir")
	tb.AddRow("mcf", "100.000", "100.031")
	tb.AddRowF("xz", 100.0, 99.97)
	out := tb.Render()
	for _, want := range []string{"Figure X", "bench", "MESI", "SwiftDir", "mcf", "99.970"} {
		if !strings.Contains(out, want) {
			t.Errorf("render missing %q:\n%s", want, out)
		}
	}
	if tb.Rows() != 2 {
		t.Fatalf("rows = %d", tb.Rows())
	}
	// All lines of the body equal width alignment: header and separator
	// share prefix structure.
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 5 {
		t.Fatalf("line count = %d", len(lines))
	}
}

func TestTableExtraCellsDropped(t *testing.T) {
	tb := NewTable("", "a", "b")
	tb.AddRow("1", "2", "3")
	if strings.Contains(tb.Render(), "3") {
		t.Fatal("overflow cell rendered")
	}
}

func TestRenderCDFMergesSeries(t *testing.T) {
	var a, b Histogram
	for i := 0; i < 10; i++ {
		a.Add(17)
		b.Add(sim.Cycle(40 + i))
	}
	out := RenderCDF("Figure 6", []string{"Load_WP", "Load"}, [][]CDFPoint{a.CDF(), b.CDF()})
	for _, want := range []string{"Figure 6", "Load_WP", "17", "49", "1.0000"} {
		if !strings.Contains(out, want) {
			t.Errorf("CDF render missing %q:\n%s", want, out)
		}
	}
}
