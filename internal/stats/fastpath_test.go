package stats

import (
	"strings"
	"testing"
)

func TestFastPathSummary(t *testing.T) {
	s := FastPathSummary{Label: "fig7/MESI", Fast: 75, Slow: 25}
	if s.Total() != 100 || s.Fraction() != 0.75 {
		t.Fatalf("total %d fraction %v", s.Total(), s.Fraction())
	}
	f := s.Footer()
	for _, want := range []string{"[fastpath fig7/MESI]", "100 accesses", "75 fast (75.0%)", "25 slow"} {
		if !strings.Contains(f, want) {
			t.Errorf("footer %q missing %q", f, want)
		}
	}
	if (FastPathSummary{}).Fraction() != 0 {
		t.Error("empty summary fraction not 0")
	}
}

func TestFastPathRegistry(t *testing.T) {
	TakeFastPaths() // clean slate
	AddFastPath(FastPathSummary{Label: "a", Fast: 1})
	AddFastPath(FastPathSummary{Label: "b", Slow: 2})
	got := TakeFastPaths()
	if len(got) != 2 || got[0].Label != "a" || got[1].Label != "b" {
		t.Fatalf("drained %+v", got)
	}
	if len(TakeFastPaths()) != 0 {
		t.Fatal("second drain not empty")
	}
	m := MergeFastPaths("all", got)
	if m.Fast != 1 || m.Slow != 2 || m.Label != "all" {
		t.Fatalf("merge %+v", m)
	}
}
