package stats

import (
	"strings"
	"testing"
)

func TestCoverage(t *testing.T) {
	var c Coverage
	c.Name = "demo"
	c.Declare("a")
	c.Declare("b")
	c.Declare("c")
	c.Hit("a")
	c.Hit("a") // repeat hits count once
	c.Hit("x") // outside the declared universe

	if got := c.Expected(); got != 3 {
		t.Errorf("Expected() = %d, want 3", got)
	}
	if got := c.Covered(); got != 1 {
		t.Errorf("Covered() = %d, want 1", got)
	}
	if got := c.Ratio(); got < 0.333 || got > 0.334 {
		t.Errorf("Ratio() = %v, want 1/3", got)
	}
	if got := c.Missing(); len(got) != 2 || got[0] != "b" || got[1] != "c" {
		t.Errorf("Missing() = %v, want [b c]", got)
	}
	if got := c.Unexpected(); len(got) != 1 || got[0] != "x" {
		t.Errorf("Unexpected() = %v, want [x]", got)
	}

	s := c.String()
	for _, want := range []string{"demo", "1/3", "MISSING", "UNEXPECTED", "x"} {
		if !strings.Contains(s, want) {
			t.Errorf("String() missing %q:\n%s", want, s)
		}
	}
}

func TestCoverageEmpty(t *testing.T) {
	var c Coverage
	if got := c.Ratio(); got != 1 {
		t.Errorf("empty Ratio() = %v, want 1 (nothing expected, nothing missed)", got)
	}
	if m := c.Missing(); len(m) != 0 {
		t.Errorf("empty Missing() = %v", m)
	}
}
