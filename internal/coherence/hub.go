package coherence

import (
	"fmt"
	"math/bits"

	"repro/internal/cache"
	"repro/internal/fault"
	"repro/internal/sim"
)

// hub is a cluster-level directory: the middle tier of the two-level
// organization (SystemConfig.Clusters). Each cluster's L1 traffic funnels
// through its hub, which keeps an exact record of which locals hold each
// block, so the home directory only needs one sharer bit per CLUSTER —
// lifting the flat 64-sharer limit to 64 clusters x 64 locals.
//
// The hub never resolves a protocol table entry: it is routing plus local
// bookkeeping. Upward it filters evictions (a PUTS from a non-last holder
// is absorbed; only the cluster's last eviction reaches the home) and
// aggregates invalidation acks (the home sends ONE Inv per sharer cluster
// and receives ONE ack back). Downward it records grants and forwards.
//
// The home's cluster bits are deliberately conservative: whenever a grant
// for a block is still in flight into the cluster (upReqs > 0), the hub
// cannot decide "cluster empty", so it absorbs the eviction notice (or
// suppresses the PUTX ClusterLast flag) and leaves the home's bit set. An
// invalidation that later reaches an actually-empty cluster is acked
// immediately on the cluster's behalf. Exact clearing in that window
// would race the in-flight grant and silently orphan the new holder.
type hub struct {
	id     int
	sys    *System
	engine *sim.Engine

	// record tracks, per block, exactly which locals hold the block in
	// any valid state (bit = global id minus the cluster base).
	record map[cache.Addr]uint64

	// pending counts outstanding local Inv acks per block while the hub
	// aggregates a home-directory invalidation.
	pending map[cache.Addr]int

	// upReqs counts in-flight requests (GETS/GETS_WP/GETX/Upgrade) this
	// hub has forwarded toward a home bank and whose grant has not yet
	// been delivered back into the cluster. Nonzero makes "cluster
	// empty" undecidable at the hub, turning eviction filtering
	// conservative (see the type comment).
	upReqs map[cache.Addr]int

	// direct re-enters dispatch after an injected busy window without
	// consulting the injector again (see Handle).
	direct hubDirect

	// faultFree is the injected-busy-window release ledger: no message may
	// dispatch before it. Serializing delayed messages behind it keeps the
	// hub's input FIFO — a message that drew no delay cannot overtake an
	// earlier one still parked, which would reorder a cluster's writeback
	// against its own follow-up request and break the blocking protocol.
	faultFree sim.Cycle
}

// hubDirect is the hub's second handler identity: a delayed message is
// rescheduled onto it so the busy-window roll happens exactly once per
// message — a never-closing storm window must delay each message once,
// not orbit it forever.
type hubDirect struct{ h *hub }

func (d *hubDirect) Handle(p sim.Payload) { d.h.dispatch(p) }

func newHub(id int, sys *System) *hub {
	h := &hub{
		id:      id,
		sys:     sys,
		engine:  sys.engineForHub(id),
		record:  make(map[cache.Addr]uint64, 256),
		pending: make(map[cache.Addr]int, 16),
		upReqs:  make(map[cache.Addr]int, 32),
	}
	h.direct = hubDirect{h: h}
	return h
}

// base returns the cluster's first global L1 id.
func (h *hub) base() int { return h.id * h.sys.localsPer }

// localBit returns the record bit for a global L1 id in this cluster.
func (h *hub) localBit(l1 int) uint64 { return 1 << uint(l1-h.base()) }

// port returns the hub's fabric port.
func (h *hub) port() int { return h.sys.hubPort(h.id) }

// Handle dispatches the hub's payload events (see the op constants in
// message.go). With a fault injector attached, each message first rolls
// the hub busy-window class: a nonzero draw parks the message until the
// hub is free again and re-enters through the direct handler, modeling a
// transiently busy hub that queues its input. The faultFree ledger makes
// the delay FIFO-preserving: later messages — even ones drawing no delay
// of their own — release no earlier than everything parked before them,
// and the engine's (cycle, insertion-order) tie-break keeps same-cycle
// releases in arrival order. That matters for correctness, not just
// fidelity: a cluster's request overtaking its own earlier writeback
// through the hub would present the home directory with an owner
// re-requesting a block it still holds.
func (h *hub) Handle(p sim.Payload) {
	if f := h.sys.faults; f != nil {
		now := h.engine.Now()
		release := now + f.HubDelay(h.id, now)
		if release < h.faultFree {
			release = h.faultFree
		}
		if release > now {
			h.faultFree = release
			h.engine.ScheduleEvent(release-now, &h.direct, p)
			return
		}
	}
	h.dispatch(p)
}

func (h *hub) dispatch(p sim.Payload) {
	switch p.Op {
	case opHubUp:
		h.up(p)
	case opHubDown:
		h.down(p)
	case opHubDownPin:
		// Pinned grant (UpgradeAck): record the holder, retire the
		// answered up-request, and forward along the flat pinned path —
		// the bank handles opBankDeliverPin on the destination's port so
		// the unpin and the delivery share one event.
		addr := cache.Addr(p.A)
		dst := int(p.Z)
		h.record[addr] |= h.localBit(dst)
		h.grantDelivered(addr)
		p.Op = opBankDeliverPin
		h.sys.net.SendEvent(h.port(), dst, h.sys.bankFor(addr), p)
	case opHubInv:
		h.inv(p)
	default:
		h.violate(cache.Addr(p.A), "unknown payload op %d", p.Op)
	}
}

// up filters and forwards an L1's upward message.
func (h *hub) up(p sim.Payload) {
	addr := cache.Addr(p.A)
	src := int(p.X)
	switch MsgKind(p.K) {
	case MsgPUTS:
		rec := h.record[addr] &^ h.localBit(src)
		if rec != 0 {
			h.record[addr] = rec
			return // other locals still hold the block: absorbed
		}
		delete(h.record, addr)
		if h.upReqs[addr] > 0 {
			// A grant in flight will repopulate the cluster, so the home
			// must keep its sharer bit. PUTS is fire-and-forget, so
			// absorbing it is legal.
			return
		}
		// Cluster empty for good: the home clears this cluster's bit.
		h.toHome(addr, p)
	case MsgPUTX:
		rec := h.record[addr] &^ h.localBit(src)
		if rec == 0 {
			delete(h.record, addr)
			if h.upReqs[addr] == 0 {
				p.F |= pfClusterLast
			}
		} else {
			h.record[addr] = rec
		}
		// Always forwarded: the evictor blocks on the home's WB_Ack.
		h.toHome(addr, p)
	case MsgInvAck:
		n := h.pending[addr] - 1
		if n < 0 {
			h.violate(addr, "Inv_Ack without pending invalidation")
		}
		if n > 0 {
			h.pending[addr] = n
			return
		}
		delete(h.pending, addr)
		// Last local ack: one aggregate ack represents the cluster.
		h.toHome(addr, p)
	case MsgGETS, MsgGETSWP, MsgGETX, MsgUpgrade:
		h.upReqs[addr]++
		h.toHome(addr, p)
	default:
		// Unblock, Exclusive_Unblock, WB_Data: pure pass-through.
		h.toHome(addr, p)
	}
}

// down records and delivers a home/owner message to a local L1 (Z = dst).
func (h *hub) down(p sim.Payload) {
	addr := cache.Addr(p.A)
	dst := int(p.Z)
	switch MsgKind(p.K) {
	case MsgData, MsgDataExclusive, MsgDataFromOwner:
		h.record[addr] |= h.localBit(dst)
		h.grantDelivered(addr)
	case MsgFwdGETX:
		// The local surrenders its copy to the requestor on receipt (a
		// copy already parked in its writeback buffer cleared the bit
		// when its PUTX passed through).
		h.clearBit(addr, dst)
	}
	p.Op = opL1Recv
	h.sys.net.SendEvent(h.port(), dst, h.sys.L1s[dst], p)
}

// inv multicasts a home invalidation to the recorded locals and arms the
// ack aggregation; an empty cluster is acked immediately.
func (h *hub) inv(p sim.Payload) {
	addr := cache.Addr(p.A)
	targets := h.record[addr]
	if targets == 0 {
		// The home's sharer bit was conservative (the cluster emptied
		// under an in-flight grant, or the grant itself raced the
		// invalidation's transaction): ack on the cluster's behalf.
		ack := Msg{Kind: MsgInvAck, Addr: addr, Src: h.base(), Requestor: int(p.Y)}
		h.toHome(addr, ack.payload(opBankDispatch))
		return
	}
	if h.pending[addr] != 0 {
		h.violate(addr, "overlapping invalidations")
	}
	delete(h.record, addr)
	h.pending[addr] = bits.OnesCount64(targets)
	p.Op = opL1Recv
	base := h.base()
	for lid := 0; targets != 0; lid++ {
		if targets&1 != 0 {
			dst := base + lid
			h.sys.net.SendEvent(h.port(), dst, h.sys.L1s[dst], p)
		}
		targets >>= 1
	}
}

// toHome forwards a payload to the block's home bank for dispatch.
func (h *hub) toHome(addr cache.Addr, p sim.Payload) {
	b := h.sys.bankFor(addr)
	p.Op = opBankDispatch
	h.sys.net.SendEvent(h.port(), h.sys.bankPort(b.id), b, p)
}

// clearBit clears one local's record bit, dropping empty entries.
func (h *hub) clearBit(addr cache.Addr, l1 int) {
	if rec := h.record[addr] &^ h.localBit(l1); rec != 0 {
		h.record[addr] = rec
	} else {
		delete(h.record, addr)
	}
}

// grantDelivered retires one answered up-request.
func (h *hub) grantDelivered(addr cache.Addr) {
	n := h.upReqs[addr] - 1
	if n < 0 {
		h.violate(addr, "grant delivered without an in-flight request")
	}
	if n > 0 {
		h.upReqs[addr] = n
	} else {
		delete(h.upReqs, addr)
	}
}

// violate panics with a typed, contained protocol violation (see
// bank.violate). It never returns.
func (h *hub) violate(addr cache.Addr, format string, args ...any) {
	panic(&fault.Violation{
		Kind:      fault.KindProtocol,
		Cycle:     uint64(h.engine.Now()),
		Component: fmt.Sprintf("hub %d", h.id),
		Addr:      uint64(addr),
		Msg:       fmt.Sprintf(format, args...),
		Dump:      h.sys.DumpState(),
	})
}
