package coherence

import (
	"testing"

	"repro/internal/cache"
	"repro/internal/proto"
)

// TestProtoEventAlignment: every MsgKind converts to the proto event with
// the identical canonical name, and Load/Store map to the CPU events.
// This is the contract that lets the bridge convert with a cast.
func TestProtoEventAlignment(t *testing.T) {
	for k := MsgGETS; k <= MsgDataFromOwner; k++ {
		if got, want := protoEvent(k).String(), k.String(); got != want {
			t.Errorf("MsgKind %d: proto event %q != msg kind %q", k, got, want)
		}
	}
	if int(MsgDataFromOwner)+1 != int(proto.NumEvents)-2 {
		t.Errorf("event count skew: %d message kinds vs %d proto events (2 CPU)",
			int(MsgDataFromOwner)+1, proto.NumEvents)
	}
	if cpuEvent(false) != proto.EvLoad || cpuEvent(true) != proto.EvStore {
		t.Error("cpuEvent mapping broken")
	}
	if proto.EvLoad.String() != "Load" || proto.EvStore.String() != "Store" {
		t.Error("CPU event names diverge from the observation vocabulary")
	}
}

// TestProtoStateAlignment: line states, transient states and directory
// states convert by cast/offset, and the proto labels equal the ones the
// controllers print (dumps, mcheck pairs, transcripts all share them).
func TestProtoStateAlignment(t *testing.T) {
	lineStates := []cache.LineState{
		cache.Invalid, cache.Shared, cache.Exclusive,
		cache.Modified, cache.Owned, cache.Forward,
	}
	wantL1 := []proto.L1State{proto.L1I, proto.L1S, proto.L1E, proto.L1M, proto.L1O, proto.L1F}
	for i, ls := range lineStates {
		if proto.L1State(ls) != wantL1[i] {
			t.Errorf("cache.%v = %d, proto.%v = %d", ls, ls, wantL1[i], wantL1[i])
		}
	}
	for tr := TrISD; tr <= TrEMA; tr++ {
		ps := proto.L1ISD + proto.L1State(tr)
		if ps.String() != tr.String() {
			t.Errorf("Transient %d: proto label %q != controller label %q",
				tr, ps.String(), tr.String())
		}
	}
	dirStates := []DirState{
		DirInvalid, DirPresent, DirShared, DirExclusive, DirModifiedL1, DirOwned,
	}
	wantDir := []proto.DirState{
		proto.DirI, proto.DirP, proto.DirS, proto.DirE, proto.DirM, proto.DirO,
	}
	for i, ds := range dirStates {
		if proto.DirState(ds) != wantDir[i] {
			t.Errorf("DirState %v = %d, proto %v = %d", ds, ds, wantDir[i], wantDir[i])
		}
		if proto.DirState(ds).String() != ds.String() {
			t.Errorf("DirState %v: proto label %q != controller label %q",
				ds, proto.DirState(ds).String(), ds.String())
		}
	}
}

// TestProtoPolicyLinkage: each policy's feature-derived table agrees with
// what its Policy implementation actually does — the vocabulary contains
// GETS_WP iff write-protected loads request it, the (E, Store) next
// states match SilentUpgrade, and DirE loads match ServeExclusiveFromLLC.
func TestProtoPolicyLinkage(t *testing.T) {
	for _, p := range ExtendedPolicies {
		tab := proto.TableFor(p.Name())
		if tab == nil {
			t.Errorf("%s: no proto table registered", p.Name())
			continue
		}
		wantWP := p.LoadRequest(true) == MsgGETSWP
		gotWP := tab.Dir[proto.DirI][proto.EvGETSWP].Class == proto.Defined
		if wantWP != gotWP {
			t.Errorf("%s: GETS_WP in vocabulary=%v, policy uses it=%v",
				p.Name(), gotWP, wantWP)
		}
		hasE := p.GrantExclusiveOnLoad(false)
		if gotE := tab.L1[proto.L1E][proto.EvLoad].Class == proto.Defined; gotE != hasE {
			t.Errorf("%s: L1 E row live=%v, policy grants E=%v", p.Name(), gotE, hasE)
		}
		if hasE {
			ent := tab.L1[proto.L1E][proto.EvStore]
			silentPlain := p.SilentUpgrade(false)
			silentWP := p.SilentUpgrade(true) && p.GrantExclusiveOnLoad(true)
			wantM := silentPlain || silentWP
			wantEMA := !silentPlain || (p.GrantExclusiveOnLoad(true) && !p.SilentUpgrade(true))
			if got := proto.HasL1(ent.Next, proto.L1M); got != wantM {
				t.Errorf("%s: (E,Store) admits M=%v, policy silent-upgrades=%v",
					p.Name(), got, wantM)
			}
			if got := proto.HasL1(ent.Next, proto.L1EMA); got != wantEMA {
				t.Errorf("%s: (E,Store) admits EM^A=%v, policy needs it=%v",
					p.Name(), got, wantEMA)
			}
			llcServe := p.ServeExclusiveFromLLC(false) || p.ServeExclusiveFromLLC(true)
			if got := tab.L1[proto.L1I][proto.EvDowngrade].Class == proto.Defined; got != llcServe {
				t.Errorf("%s: Downgrade in vocabulary=%v, policy LLC-serves E=%v",
					p.Name(), got, llcServe)
			}
		}
		owned := p.OwnershipTransfer()
		if got := tab.Dir[proto.DirO][proto.EvGETX].Class == proto.Defined; got != owned {
			t.Errorf("%s: DirO row live=%v, policy transfers ownership=%v",
				p.Name(), got, owned)
		}
		fwd := p.ForwardStateFor(false) || p.ForwardStateFor(true)
		if got := tab.L1[proto.L1F][proto.EvLoad].Class == proto.Defined; got != fwd {
			t.Errorf("%s: L1 F row live=%v, policy uses Forward=%v", p.Name(), got, fwd)
		}
	}
}
