package coherence

import (
	"fmt"
	"reflect"
	"strings"
	"testing"

	"repro/internal/cache"
	"repro/internal/sim"
)

// sysFingerprint captures everything a run can observe about a system:
// final clock, executed-event count, message accounting, controller
// statistics, the architectural memory image, and the full per-access
// result stream in completion order. Two byte-identical runs must agree on
// all of it.
type sysFingerprint struct {
	end      sim.Cycle
	executed uint64
	messages uint64
	kinds    [MsgDataFromOwner + 1]uint64
	bank     BankStats
	l1       []L1Stats
	memHash  string
	results  []AccessResult
}

func fingerprint(s *System, results []AccessResult) sysFingerprint {
	fp := sysFingerprint{
		end:      s.Eng.Now(),
		executed: s.ExecutedEvents(),
		messages: s.TotalMessages(),
		bank:     s.BankStatsTotal(),
		memHash:  s.MemImageHash(),
		results:  results,
	}
	for k := range fp.kinds {
		fp.kinds[k] = s.MsgCount(MsgKind(k))
	}
	for _, l1 := range s.L1s {
		fp.l1 = append(fp.l1, l1.Stats)
	}
	return fp
}

func checkFingerprintsEqual(t *testing.T, want, got sysFingerprint, label string) {
	t.Helper()
	if want.end != got.end {
		t.Errorf("%s: final cycle %d, want %d", label, got.end, want.end)
	}
	if want.executed != got.executed {
		t.Errorf("%s: executed %d, want %d", label, got.executed, want.executed)
	}
	if want.messages != got.messages {
		t.Errorf("%s: messages %d, want %d", label, got.messages, want.messages)
	}
	if want.kinds != got.kinds {
		t.Errorf("%s: per-kind counts diverged:\n got %v\nwant %v", label, got.kinds, want.kinds)
	}
	if want.bank != got.bank {
		t.Errorf("%s: bank stats diverged:\n got %+v\nwant %+v", label, got.bank, want.bank)
	}
	if !reflect.DeepEqual(want.l1, got.l1) {
		t.Errorf("%s: L1 stats diverged:\n got %+v\nwant %+v", label, got.l1, want.l1)
	}
	if want.memHash != got.memHash {
		t.Errorf("%s: memory image hash %s, want %s", label, got.memHash, want.memHash)
	}
	if len(want.results) != len(got.results) {
		t.Fatalf("%s: %d results, want %d", label, len(got.results), len(want.results))
	}
	for i := range want.results {
		if want.results[i] != got.results[i] {
			t.Fatalf("%s: result %d = %+v, want %+v", label, i, got.results[i], want.results[i])
		}
	}
}

// shardedTestConfig is testConfig with 8 banks (so shards=8 still maps at
// least one bank per shard) and a small LLC to exercise recalls.
func shardedTestConfig(p Policy, cores, shards int, noFast bool) SystemConfig {
	cfg := testConfig(p, cores)
	cfg.Banks = 8
	cfg.LLCParams = cache.Params{Name: "LLC", SizeBytes: 4 << 10, Ways: 4, BlockSize: 64}
	cfg.Shards = shards
	cfg.NoFastPath = noFast
	return cfg
}

// plannedAccess is one pre-generated workload access. The whole workload
// is planned up front, per core, because generation must not depend on
// completion interleaving: inside parallel epochs, cores on different
// shards complete concurrently, so drawing the next access from a shared
// RNG at completion time would embed wall-clock ordering in the workload.
// A core's own completion order is deterministic (all its events execute
// on its shard in (cycle, key) order), so per-core consumption is safe.
type plannedAccess struct {
	block     cache.Addr
	write, wp bool
	value     uint64
}

func planWorkload(cores, perCore int, seed uint64) [][]plannedAccess {
	plans := make([][]plannedAccess, cores)
	for c := range plans {
		rng := sim.NewRNG(seed + uint64(c)*1000003)
		for i := 0; i < perCore; i++ {
			write := rng.Bool(0.3)
			plans[c] = append(plans[c], plannedAccess{
				block: cache.Addr(0x100000 + uint64(rng.Intn(32))*64),
				write: write,
				wp:    !write && rng.Bool(0.4),
				value: rng.Uint64(),
			})
		}
	}
	return plans
}

// runConcurrentWorkload drives overlapping per-core access chains (the
// stress pattern) over a pre-planned workload and returns the fingerprint
// after a full drain. Results are collected per core (each core's Done
// callbacks run on its own shard, in deterministic order) and concatenated
// by core id.
func runConcurrentWorkload(t *testing.T, cfg SystemConfig, seed uint64, perCore int) sysFingerprint {
	t.Helper()
	s := MustNewSystem(cfg)
	plans := planWorkload(cfg.NumL1, perCore, seed)
	perCoreResults := make([][]AccessResult, cfg.NumL1)
	next := make([]int, cfg.NumL1)
	for c := 0; c < cfg.NumL1; c++ {
		c := c
		var issue func()
		issue = func() {
			if next[c] >= len(plans[c]) {
				return
			}
			pa := plans[c][next[c]]
			next[c]++
			s.Submit(c, Access{
				Addr: pa.block, Write: pa.write, WP: pa.wp, Value: pa.value,
				Done: func(r AccessResult) {
					perCoreResults[c] = append(perCoreResults[c], r)
					issue()
				},
			})
		}
		// Three overlapping chains per core.
		issue()
		issue()
		issue()
	}
	s.Quiesce()
	if err := s.CheckInvariants(); err != nil {
		t.Fatalf("invariants after drain: %v", err)
	}
	var results []AccessResult
	for c := range perCoreResults {
		if len(perCoreResults[c]) != perCore {
			t.Fatalf("core %d completed %d/%d accesses", c, len(perCoreResults[c]), perCore)
		}
		results = append(results, perCoreResults[c]...)
	}
	return fingerprint(s, results)
}

// TestShardedConcurrentEquivalence: the concurrent stress workload must be
// byte-identical between the sequential engine and every shard count, in
// both execution modes — parallel epochs (NoFastPath=true satisfies
// ParallelSafe) and sequential stepping (fast path enabled).
func TestShardedConcurrentEquivalence(t *testing.T) {
	for _, p := range AllPolicies {
		p := p
		t.Run(p.Name(), func(t *testing.T) {
			for _, noFast := range []bool{true, false} {
				want := runConcurrentWorkload(t, shardedTestConfig(p, 4, 1, noFast), 12345, 200)
				for _, shards := range []int{2, 4, 8} {
					label := fmt.Sprintf("shards=%d/noFast=%v", shards, noFast)
					got := runConcurrentWorkload(t, shardedTestConfig(p, 4, shards, noFast), 12345, 200)
					checkFingerprintsEqual(t, want, got, label)
				}
			}
		})
	}
}

// runSyncWorkload drives a serialized AccessSync stream — the probe
// interface — through stepping mode, asserting the data-value invariant on
// the way, and fingerprints the result (including every AccessResult).
func runSyncWorkload(t *testing.T, cfg SystemConfig, seed uint64, n int) sysFingerprint {
	t.Helper()
	s := MustNewSystem(cfg)
	rng := sim.NewRNG(seed)
	shadow := map[cache.Addr]uint64{}
	var results []AccessResult
	val := seed
	for i := 0; i < n; i++ {
		core := rng.Intn(cfg.NumL1)
		block := cache.Addr(0x100000 + uint64(rng.Intn(24))*64)
		write := rng.Bool(0.3)
		wp := !write && rng.Bool(0.4)
		if write {
			val++
			results = append(results, s.AccessSync(core, block, true, false, val))
			shadow[block] = val
		} else {
			r := s.AccessSync(core, block, false, wp, 0)
			want, ok := shadow[block]
			if !ok {
				want = initialToken(block)
			}
			if r.Value != want {
				t.Fatalf("load %#x on core %d: got %#x want %#x", block, core, r.Value, want)
			}
			results = append(results, r)
		}
	}
	s.Quiesce()
	if err := s.CheckInvariants(); err != nil {
		t.Fatalf("invariants after drain: %v", err)
	}
	return fingerprint(s, results)
}

// TestShardedAccessSyncEquivalence: the synchronous probe interface (fast
// path enabled — the stricter configuration) reports identical latencies,
// values, and service classes at every shard count. AccessSync demands
// exact stop cycles, so sharded systems drive it through stepping mode.
func TestShardedAccessSyncEquivalence(t *testing.T) {
	for _, p := range Policies {
		p := p
		t.Run(p.Name(), func(t *testing.T) {
			want := runSyncWorkload(t, shardedTestConfig(p, 4, 1, false), 7, 600)
			for _, shards := range []int{2, 4, 8} {
				got := runSyncWorkload(t, shardedTestConfig(p, 4, shards, false), 7, 600)
				checkFingerprintsEqual(t, want, got, fmt.Sprintf("shards=%d", shards))
			}
		})
	}
}

// TestShardedDumpStateIdentical: in stepping mode the global message ring
// advances exactly as on one engine, so the full failure diagnostic — the
// strongest observable surface — renders byte-identically.
func TestShardedDumpStateIdentical(t *testing.T) {
	dump := func(shards int) string {
		s := MustNewSystem(shardedTestConfig(SwiftDir, 4, shards, false))
		rng := sim.NewRNG(3)
		for i := 0; i < 300; i++ {
			block := cache.Addr(0x100000 + uint64(rng.Intn(16))*64)
			s.AccessSync(rng.Intn(4), block, rng.Bool(0.5), false, uint64(i))
		}
		s.Quiesce()
		return s.DumpState()
	}
	want := dump(1)
	got := dump(4)
	// The title line (final cycle) must match exactly; the pending-events
	// section names the engine layout and both runs are quiesced (no
	// events), so everything from the directory section on — transactions,
	// MSHRs, the delivered-message tail — must match byte for byte.
	const marker = "-- directory transient transactions --"
	wantTitle, _, _ := strings.Cut(want, "\n")
	gotTitle, _, _ := strings.Cut(got, "\n")
	if wantTitle != gotTitle {
		t.Fatalf("dump titles diverged: %q vs %q", wantTitle, gotTitle)
	}
	wi := strings.Index(want, marker)
	gi := strings.Index(got, marker)
	if wi < 0 || gi < 0 {
		t.Fatalf("dump missing %q section", marker)
	}
	if want[wi:] != got[gi:] {
		t.Fatalf("dump tails diverged:\n--- shards=1 ---\n%s\n--- shards=4 ---\n%s", want[wi:], got[gi:])
	}
}

// TestShardedValidation: invalid shard configurations are rejected with
// errors, not panics.
func TestShardedValidation(t *testing.T) {
	cfg := shardedTestConfig(SwiftDir, 4, 4, false)
	cfg.Shards = 65
	if _, err := NewSystem(cfg); err == nil {
		t.Error("shards=65 accepted")
	}
	cfg.Shards = -1
	if _, err := NewSystem(cfg); err == nil {
		t.Error("shards=-1 accepted")
	}
	cfg.Shards = 4
	cfg.ShardOfL1 = []int{0, 1}
	if _, err := NewSystem(cfg); err == nil {
		t.Error("short ShardOfL1 accepted")
	}
	cfg.ShardOfL1 = []int{0, 1, 2, 9}
	if _, err := NewSystem(cfg); err == nil {
		t.Error("out-of-range ShardOfL1 accepted")
	}
	cfg.ShardOfL1 = nil
	cfg.Timing.Hop = 0
	if _, err := NewSystem(cfg); err == nil {
		t.Error("zero hop latency accepted with shards")
	}
	cfg.Timing = DefaultTiming()
	cfg.Timing.LLCTag = cfg.Timing.Hop - 1
	if _, err := NewSystem(cfg); err == nil {
		t.Error("LLCTag < Hop accepted with shards")
	}
}

// TestShardedExplicitPinning: an explicit ShardOfL1 map changes shard
// placement without changing a single observable byte.
func TestShardedExplicitPinning(t *testing.T) {
	want := runConcurrentWorkload(t, shardedTestConfig(SwiftDir, 4, 1, true), 99, 120)
	cfg := shardedTestConfig(SwiftDir, 4, 4, true)
	cfg.ShardOfL1 = []int{3, 0, 2, 1}
	got := runConcurrentWorkload(t, cfg, 99, 120)
	checkFingerprintsEqual(t, want, got, "pinned")
}
