package coherence

import (
	"repro/internal/cache"
	"repro/internal/proto"
)

// This file is the bridge between the runtime controllers and the
// canonical transition tables in internal/proto. The proto enums were
// laid out to mirror cache.LineState, Transient, DirState and MsgKind,
// so every conversion is a cast plus an offset; proto_bridge_test.go
// asserts the alignment value by value and name by name.

// protoEvent maps a message kind to its transition-table event.
func protoEvent(k MsgKind) proto.Event { return proto.EvGETS + proto.Event(k) }

// cpuEvent maps a CPU examination to its transition-table event.
func cpuEvent(write bool) proto.Event {
	if write {
		return proto.EvStore
	}
	return proto.EvLoad
}

// protoState returns the L1's transition-table state for a block: the
// MSHR transient state if a transaction is outstanding, else the stable
// line state (L1I when not resident). It is stats-neutral (Lookup, not
// Probe): dispatch consults it before the action body performs the
// accounted array access.
func (l *L1) protoState(block cache.Addr) proto.L1State {
	if ms, ok := l.mshrs[block]; ok {
		return proto.L1ISD + proto.L1State(ms.state)
	}
	if ln := l.arr.Lookup(block); ln != nil {
		return proto.L1State(ln.State)
	}
	return proto.L1I
}

// protoDirState returns the bank's transition-table state for a block:
// DirBusy if a blocking transaction is in flight, else the entry state
// (DirI when absent).
func (b *bank) protoDirState(addr cache.Addr) proto.DirState {
	if _, ok := b.busy[addr]; ok {
		return proto.DirBusy
	}
	if e, ok := b.entries[addr]; ok {
		return proto.DirState(e.state)
	}
	return proto.DirI
}

// ProtoTable returns the system policy's canonical transition relation.
// Dispatch in both controllers is driven by this table, so it is always
// non-nil: registered policies resolve by name, and an unregistered
// policy (an experiment or a deliberately buggy test double) gets a
// table derived from its Policy interface answers.
func (s *System) ProtoTable() *proto.Table { return s.table }

// tableForPolicy resolves the canonical table for a policy, deriving one
// from the interface for policies outside the registry. The derivation
// asks the same questions the controllers ask at runtime, so the derived
// relation matches what the action bodies will actually do — including
// for deliberately broken policies, whose bugs manifest as protocol
// invariant violations (SWMR, stale data), not as dispatch gaps.
func tableForPolicy(p Policy) *proto.Table {
	if t := proto.TableFor(p.Name()); t != nil {
		return t
	}
	tri := func(plain, wp bool) proto.Tri {
		switch {
		case plain && wp:
			return proto.TriAlways
		case plain:
			return proto.TriNoWP
		case wp:
			return proto.TriWPOnly
		default:
			return proto.TriNever
		}
	}
	return proto.Build(p.Name(), proto.Features{
		WPLoads:   p.LoadRequest(true) == MsgGETSWP,
		HasE:      p.GrantExclusiveOnLoad(false) || p.GrantExclusiveOnLoad(true),
		SilentE:   tri(p.SilentUpgrade(false), p.SilentUpgrade(true)),
		LLCServeE: tri(p.ServeExclusiveFromLLC(false), p.ServeExclusiveFromLLC(true)),
		Owned:     p.OwnershipTransfer(),
		Forward:   tri(p.ForwardStateFor(false), p.ForwardStateFor(true)),
	})
}
