package coherence

import (
	"fmt"
	"math/bits"
	"strings"

	"repro/internal/cache"
	"repro/internal/fault"
	"repro/internal/proto"
	"repro/internal/sim"
)

// DirState is the directory's knowledge about a block resident in the LLC.
//
// The distinction between DirExclusive and DirModifiedL1 is the crux of
// the paper: under MESI and SwiftDir a silent E→M upgrade leaves the
// directory in DirExclusive while the owner's copy may already be dirty,
// so the directory must forward every GETS (the slow three-hop path the
// timing channel measures). Under S-MESI the explicit Upgrade moves the
// directory to DirModifiedL1, which means DirExclusive is provably clean
// and can be served straight from the LLC.
type DirState uint8

const (
	// DirInvalid: block not resident in the LLC (no entry exists).
	DirInvalid DirState = iota
	// DirPresent: resident in the LLC only; no L1 holds a copy.
	DirPresent
	// DirShared: resident; one or more L1s hold Shared copies.
	DirShared
	// DirExclusive: one L1 was granted E; it may have silently upgraded.
	DirExclusive
	// DirModifiedL1: one L1 is known to hold the block Modified.
	DirModifiedL1
	// DirOwned (MOESI): one L1 holds the block dirty in state O while
	// zero or more others hold Shared copies of the same value; the LLC
	// data are stale, so every request forwards to the owner.
	DirOwned
)

// String renders the proto-table name for the state (the stable prefix
// of proto.DirState), so directory dumps, transcripts, and relation
// entries are spelled identically by construction.
func (s DirState) String() string {
	return proto.DirState(s).String()
}

// dirEntry is the directory sidecar for an LLC-resident block.
type dirEntry struct {
	state     DirState
	owner     int
	sharers   uint64 // bitset of L1 ids
	llcDirty  bool   // LLC data differs from memory
	wp        bool   // block was write-protected at its last load grant
	forwarder int    // MESIF forward-state holder among the sharers, or -1
}

func bit(id int) uint64 { return 1 << uint(id) }

// Deferred-grant kinds: what a transaction owes its requestor once the
// outstanding invalidation acks arrive. A plain enum (plus the captured
// grant data) replaces the closure the old implementation allocated per
// invalidating store — the directory entry is re-fetched at grant time,
// which is sound because the block stays busy (and therefore resident)
// for the whole window.
const (
	pendNone uint8 = iota
	pendStore
	pendUpgrade
)

// txn is an in-flight directory transaction; the block is busy until all
// wait conditions clear (the blocking protocol of Table II). Completed
// transactions are recycled through the bank's free list.
type txn struct {
	req         Msg
	waitUnblock bool
	waitWB      bool
	waitAcks    int
	pendKind    uint8  // deferred grant once invalidation acks arrive
	pendData    uint64 // LLC data captured when the grant was deferred
	queued      []Msg
}

// BankStats counts directory activity per bank.
type BankStats struct {
	Requests      uint64
	LLCServed     uint64 // grants served from the LLC (two-hop)
	Forwards      uint64 // Fwd_GETS / Fwd_GETX issued (three-hop)
	MemFetches    uint64
	Invals        uint64 // Inv demands issued
	UpgradeAcks   uint64
	Recalls       uint64 // inclusive-eviction recalls of L1 copies
	Writebacks    uint64 // dirty evictions written to memory
	QueuedWakeups uint64
}

// bank is one LLC slice plus its directory and its view of the memory
// controller.
type bank struct {
	id      int
	sys     *System
	engine  *sim.Engine  // home engine (the bank's shard when sharded)
	tab     *proto.Table // canonical transition relation (drives dispatch)
	arr     *cache.Array
	entries map[cache.Addr]*dirEntry
	busy    map[cache.Addr]*txn
	// image is this bank's slice of the shadow memory: blocks homed here.
	// Partitioning the image per bank lets bank-local events read and write
	// it from their own shard without synchronization.
	image map[cache.Addr]uint64
	// pinned counts in-flight grants (UpgradeAcks) per address. Such a
	// grant carries no follow-up unblock, so no busy transaction covers
	// its flight; pinning keeps victim selection from recalling the block
	// before the grant lands (which would orphan the requestor's MSHR).
	pinned map[cache.Addr]int

	txnFree   []*txn      // recycled transactions
	entryFree []*dirEntry // recycled directory entries

	// One-entry lookup cache: directory traffic is bursty per block (a
	// request, its WB_Data, its acks, its unblock all hit the same entry),
	// so the last touched entry answers most map probes.
	lastAddr cache.Addr
	lastEnt  *dirEntry

	// arb, when the policy implements Arbiter, orders each transaction's
	// queued requests by arbitration class (see enqueue). nil keeps the
	// plain FIFO append, byte-identical to a build without arbitration.
	arb Arbiter

	// arbPromotions counts queued requests that were inserted ahead of at
	// least one earlier arrival (kept outside BankStats: report surfaces
	// hash BankStats fields, and arbitration is additive).
	arbPromotions uint64

	Stats BankStats
}

func newBank(id int, sys *System, params cache.Params) *bank {
	lines := params.SizeBytes / params.BlockSize
	esz := lines / 4
	if esz < 256 {
		esz = 256
	}
	arb, _ := sys.Policy.(Arbiter)
	return &bank{
		id:      id,
		sys:     sys,
		engine:  sys.engineForBank(id),
		tab:     sys.table,
		arr:     cache.NewArray(params),
		entries: make(map[cache.Addr]*dirEntry, esz),
		busy:    make(map[cache.Addr]*txn, 256),
		pinned:  make(map[cache.Addr]int, 64),
		image:   make(map[cache.Addr]uint64),
		arb:     arb,
	}
}

// entry looks up the directory entry for addr through the one-entry cache.
func (b *bank) entry(addr cache.Addr) *dirEntry {
	if addr == b.lastAddr && b.lastEnt != nil {
		return b.lastEnt
	}
	e := b.entries[addr]
	if e != nil {
		b.lastAddr, b.lastEnt = addr, e
	}
	return e
}

// newTxn takes a recycled transaction (or allocates a fresh one) for req.
// freeTxn reset every other field when the previous transaction retired.
func (b *bank) newTxn(req Msg) *txn {
	var t *txn
	if n := len(b.txnFree); n > 0 {
		t = b.txnFree[n-1]
		b.txnFree = b.txnFree[:n-1]
	} else {
		t = &txn{}
	}
	t.req = req
	return t
}

// freeTxn recycles a retired transaction, zeroing its queued slots so no
// stale Msg outlives it.
func (b *bank) freeTxn(t *txn) {
	for i := range t.queued {
		t.queued[i] = Msg{}
	}
	t.queued = t.queued[:0]
	t.req = Msg{}
	t.waitUnblock, t.waitWB, t.waitAcks = false, false, 0
	t.pendKind, t.pendData = pendNone, 0
	b.txnFree = append(b.txnFree, t)
}

// newEntry takes a recycled directory entry, zeroed.
func (b *bank) newEntry() *dirEntry {
	if n := len(b.entryFree); n > 0 {
		e := b.entryFree[n-1]
		b.entryFree = b.entryFree[:n-1]
		*e = dirEntry{}
		return e
	}
	return &dirEntry{}
}

func (b *bank) eng() *sim.Engine { return b.engine }
func (b *bank) timing() Timing   { return b.sys.Timing }
func (b *bank) policy() Policy   { return b.sys.Policy }

// send delivers a message to an L1 after delay. The final Hop of the
// delay traverses the crossbar, so it is subject to port contention when
// LinkOccupancy is configured. The message rides two payload events — a
// bank-local stage, then the crossbar — with the destination in Z.
func (b *bank) send(dst int, m Msg, delay sim.Cycle) {
	m.Src = DirID
	hop := b.timing().Hop
	var local sim.Cycle
	if delay > hop {
		local = delay - hop
	}
	if f := b.sys.faults; f != nil {
		local += f.BankDelay(b.eng().Now())
	}
	p := m.payload(opBankSendStage)
	p.Z = int32(dst)
	b.eng().ScheduleEvent(local, b, p)
}

// sendPinned is send for grants with no follow-up unblock: the address
// is pinned against LLC victim selection until delivery, then unpinned in
// the same event that hands the message to the L1 (no window in between),
// which is why the crossbar delivers the pinned payload back to the bank
// rather than straight to the L1.
func (b *bank) sendPinned(dst int, m Msg, delay sim.Cycle) {
	b.pinned[m.Addr]++
	m.Src = DirID
	hop := b.timing().Hop
	var local sim.Cycle
	if delay > hop {
		local = delay - hop
	}
	if f := b.sys.faults; f != nil {
		local += f.BankDelay(b.eng().Now())
	}
	p := m.payload(opBankSendStagePin)
	p.Z = int32(dst)
	b.eng().ScheduleEvent(local, b, p)
}

// sendHub delivers a message to a cluster hub after delay (two-level
// only; currently the Inv multicast). It mirrors send(): the final Hop of
// the delay traverses the fabric, preceded by a bank-local stage.
func (b *bank) sendHub(c int, m Msg, delay sim.Cycle) {
	m.Src = DirID
	hop := b.timing().Hop
	var local sim.Cycle
	if delay > hop {
		local = delay - hop
	}
	if f := b.sys.faults; f != nil {
		local += f.BankDelay(b.eng().Now())
	}
	p := m.payload(opBankSendStageHub)
	p.Z = int32(c)
	b.eng().ScheduleEvent(local, b, p)
}

// sharerBit returns the sharer-bitmask bit a requestor contributes: its
// cluster under the two-level directory, its L1 id flat.
func (b *bank) sharerBit(src int) uint64 {
	if b.sys.twoLevel {
		return bit(b.sys.clusterOf(src))
	}
	return bit(src)
}

// unpinNow releases one pin on addr immediately. Driver or barrier-replay
// context only; mid-epoch releases go through System.unpin.
func (b *bank) unpinNow(addr cache.Addr) {
	if b.pinned[addr]--; b.pinned[addr] <= 0 {
		delete(b.pinned, addr)
	}
}

// Handle dispatches the bank's payload events (see the op constants in
// message.go).
func (b *bank) Handle(p sim.Payload) {
	switch p.Op {
	case opBankDispatch:
		m := msgFromPayload(p)
		b.sys.trace(b.engine, m, DirID)
		b.dispatch(m)
		if b.sys.ObservePost != nil {
			b.sys.ObservePost(m, DirID)
		}
	case opBankSendStage:
		dst := int(p.Z)
		if b.sys.twoLevel {
			// Route through the destination's hub so its record sees
			// every grant and demand entering the cluster.
			c := b.sys.clusterOf(dst)
			p.Op = opHubDown
			b.sys.net.SendEvent(b.sys.bankPort(b.id), b.sys.hubPort(c), b.sys.hubs[c], p)
			return
		}
		p.Op = opL1Recv
		b.sys.net.SendEvent(b.sys.bankPort(b.id), dst, b.sys.L1s[dst], p)
	case opBankSendStagePin:
		if b.sys.twoLevel {
			c := b.sys.clusterOf(int(p.Z))
			p.Op = opHubDownPin
			b.sys.net.SendEvent(b.sys.bankPort(b.id), b.sys.hubPort(c), b.sys.hubs[c], p)
			return
		}
		p.Op = opBankDeliverPin
		b.sys.net.SendEvent(b.sys.bankPort(b.id), int(p.Z), b, p)
	case opBankSendStageHub:
		c := int(p.Z)
		p.Op = opHubInv
		b.sys.net.SendEvent(b.sys.bankPort(b.id), b.sys.hubPort(c), b.sys.hubs[c], p)
	case opBankDeliverPin:
		// The crossbar delivered this to the destination L1's port, so when
		// sharded it executes on that L1's engine, not the bank's; the pin
		// release defers to the barrier replay mid-epoch (see System.unpin).
		m := msgFromPayload(p)
		dst := int(p.Z)
		e := b.sys.engineForL1(dst)
		b.sys.unpin(e, b, m.Addr)
		b.sys.trace(e, m, dst)
		b.sys.L1s[dst].Receive(m)
		if b.sys.ObservePost != nil {
			b.sys.ObservePost(m, dst)
		}
	case opBankFetchIssue:
		// Runs as a global event (see fetchAndGrant): DRAM port state is
		// shared across banks, so the access must observe globally ordered
		// time. The install is global too — it may recall lines from any L1.
		now := b.eng().Now()
		done := b.sys.Mem.AccessAt(now, p.A, false)
		p.Op = opBankInstall
		p.B = 0 // stall cycles accumulated so far
		b.eng().ScheduleGlobalEvent(done-now, b, p)
	case opBankInstall:
		b.installAndGrant(cache.Addr(p.A), p.Z != 0, sim.Cycle(p.B))
	default:
		b.violate(0, "unknown payload op %d", p.Op)
	}
}

// respDelay is the service latency for a grant computed at request-arrival
// time: directory/LLC lookup plus the return hop.
func (b *bank) respDelay() sim.Cycle { return b.timing().LLCTag + b.timing().Hop }

// dirTabEntry is the generic dispatch step, mirroring (*L1).l1Entry:
// resolve (state-of-block, event) in the canonical table and fail with a
// typed protocol violation unless the pair is Defined or Defensive.
func (b *bank) dirTabEntry(addr cache.Addr, ev proto.Event) *proto.DirEntry {
	st := b.protoDirState(addr)
	ent := &b.tab.Dir[st][ev]
	if ent.Class != proto.Defined && ent.Class != proto.Defensive {
		b.violate(addr, "%v in state %v is %v under %s", ev, st, ent.Class, b.tab.Policy)
	}
	return ent
}

// dispatch is the bank's single entry point: the generic table step plus
// a switch from the entry's named action to its handler body. Replays of
// queued requests (maybeComplete) re-enter here and re-resolve against
// the block's current state exactly as a fresh arrival would. A request
// counts once, at the dispatch that actually services or starts it —
// queued arrivals count when replayed, and an Upgrade that re-resolves
// as a GETX (resolveAsStore) is not double-counted.
func (b *bank) dispatch(m Msg) {
	ent := b.dirTabEntry(m.Addr, protoEvent(m.Kind))
	if ent.Act != proto.DirActQueue {
		switch m.Kind {
		case MsgGETS, MsgGETSWP, MsgGETX, MsgUpgrade:
			b.Stats.Requests++
		}
	}
	b.runDir(ent.Act, m)
}

// resolveAsStore re-resolves a raced Upgrade — the requestor's copy was
// recalled or invalidated mid-flight — as a GETX through the same table
// entry a fresh GETX would hit. The request was already counted at
// dispatch, so Stats.Requests is untouched.
func (b *bank) resolveAsStore(m Msg) {
	b.runDir(b.dirTabEntry(m.Addr, proto.EvGETX).Act, m)
}

// runDir executes a table action's handler body.
func (b *bank) runDir(act proto.DirAction, m Msg) {
	switch act {
	case proto.DirActQueue:
		b.enqueue(b.busy[m.Addr], m)
	case proto.DirActFetchLoad:
		b.fetchAndGrant(m, false)
	case proto.DirActFetchStore:
		b.fetchAndGrant(m, true)
	case proto.DirActGrantLoadP:
		b.grantLoad(m, b.entry(m.Addr), b.arr.Probe(m.Addr).Data, ServedLLC, 0)
	case proto.DirActGrantStoreP:
		b.grantStore(m, b.entry(m.Addr), b.arr.Probe(m.Addr).Data, ServedLLC, 0)
	case proto.DirActLoadS:
		b.onLoadShared(m)
	case proto.DirActLoadE:
		b.onLoadExclusive(m)
	case proto.DirActLoadOwner:
		b.arr.Probe(m.Addr)
		b.forwardLoad(m, b.entry(m.Addr))
	case proto.DirActStoreS:
		b.onStoreShared(m)
	case proto.DirActStoreOwner:
		b.onStoreOwner(m)
	case proto.DirActStoreO:
		b.onStoreOwned(m)
	case proto.DirActUpgradeMiss:
		b.resolveAsStore(m)
	case proto.DirActUpgradeS:
		b.onUpgradeShared(m)
	case proto.DirActUpgradeOwner:
		e := b.entry(m.Addr)
		if e.owner != m.Src {
			// Raced: the requestor is no longer the owner (S-MESI recall
			// window). Resolve as GETX.
			b.resolveAsStore(m)
			return
		}
		b.ackUpgrade(m, e)
	case proto.DirActUpgradeO:
		b.onUpgradeOwned(m)
	case proto.DirActPUTS:
		b.onPUTS(m)
	case proto.DirActPUTSStale:
		// Eviction notice for a recalled block: nothing to clear, and
		// PUTS is fire-and-forget (no ack).
	case proto.DirActPUTX:
		b.onPUTX(m)
	case proto.DirActPUTXStale:
		if m.Dirty {
			// The block was recalled while the writeback was in flight;
			// commit the data straight to memory.
			b.sys.memWrite(m.Addr, m.Data)
		}
		b.send(m.Src, Msg{Kind: MsgWBAck, Addr: m.Addr}, b.respDelay())
	case proto.DirActUnblock:
		t := b.busy[m.Addr]
		t.waitUnblock = false
		b.maybeComplete(m.Addr, t)
	case proto.DirActInvAck:
		b.onInvAck(m)
	case proto.DirActInvAckStale:
		// Late ack for a transaction that already completed: dropped.
	case proto.DirActWBData:
		b.onWBData(m)
	default:
		b.violate(m.Addr, "directory action %v unhandled for %v", act, m.Kind)
	}
}

// onInvAck retires one outstanding invalidation ack and performs the
// deferred grant once the last ack arrives.
func (b *bank) onInvAck(m Msg) {
	t := b.busy[m.Addr]
	t.waitAcks--
	if t.waitAcks == 0 && t.pendKind != pendNone {
		kind := t.pendKind
		t.pendKind = pendNone
		// The entry pointer is stable across the ack window: the block
		// stayed busy, so no install or eviction could replace it.
		e := b.entry(m.Addr)
		switch kind {
		case pendStore:
			b.grantStore(t.req, e, t.pendData, ServedLLC, 0)
		case pendUpgrade:
			b.ackUpgrade(t.req, e)
		}
	}
	b.maybeComplete(m.Addr, t)
}

// enqueue parks a request behind addr's in-flight transaction. Without
// an arbiter this is a FIFO append. With one, the request is inserted by
// arbitration class (stable within a class), except that it never
// overtakes an earlier request from the same source: per-source order is
// load-bearing — replaying a core's GETX ahead of its own still-queued
// PUTX for the block would make the directory see its owner re-request
// the block, a protocol violation.
func (b *bank) enqueue(t *txn, m Msg) {
	if b.arb == nil {
		t.queued = append(t.queued, m)
		return
	}
	c := b.arb.QueueClass(m.Kind)
	i := len(t.queued)
	for i > 0 {
		prev := t.queued[i-1]
		if prev.Src == m.Src || b.arb.QueueClass(prev.Kind) <= c {
			break
		}
		i--
	}
	if i == len(t.queued) {
		t.queued = append(t.queued, m)
		return
	}
	b.arbPromotions++
	t.queued = append(t.queued, Msg{})
	copy(t.queued[i+1:], t.queued[i:])
	t.queued[i] = m
}

// onLoadShared implements GETS/GETS_WP at DirShared (Figure 1(b)/4(b)):
// the designated MESIF forwarder supplies the data cache-to-cache, or
// the LLC serves directly.
func (b *bank) onLoadShared(m Msg) {
	e := b.entry(m.Addr)
	ln := b.arr.Probe(m.Addr)
	// Forward-state decisions key on the REQUESTOR's protection bit, not
	// the entry's: a write-protected requestor must get the constant LLC
	// service in state S even if earlier unprotected accesses left a
	// forwarder behind (otherwise it would inherit F, re-opening the
	// timing channel the SwiftDir adaptation closes).
	if b.policy().ForwardStateFor(m.WP) && e.forwarder >= 0 {
		// MESIF: the designated forwarder supplies the data
		// cache-to-cache; the requestor becomes the new forwarder.
		t := b.newTxn(m)
		t.waitUnblock, t.waitWB = true, true
		b.busy[m.Addr] = t
		b.Stats.Forwards++
		b.send(e.forwarder, Msg{Kind: MsgFwdGETS, Addr: m.Addr, Requestor: m.Src, WP: m.WP}, b.respDelay())
		return
	}
	// Figure 1(b)/4(b): served directly from the LLC.
	e.sharers |= b.sharerBit(m.Src)
	mf := b.policy().ForwardStateFor(m.WP)
	if mf {
		e.forwarder = m.Src
	}
	t := b.newTxn(m)
	t.waitUnblock = true
	b.busy[m.Addr] = t
	b.Stats.LLCServed++
	b.send(m.Src, Msg{Kind: MsgData, Addr: m.Addr, Data: ln.Data, Served: ServedLLC, MakeForward: mf}, b.respDelay())
}

// onLoadExclusive implements GETS/GETS_WP at DirExclusive: the paper's
// crux. The silent-upgrade protocols must forward (the copy may be
// dirty); S-MESI and the E_wp ablation serve the provably clean LLC copy
// and downgrade the owner (Figure 4(a)-(b), 4(c), 4(e)).
func (b *bank) onLoadExclusive(m Msg) {
	e := b.entry(m.Addr)
	ln := b.arr.Probe(m.Addr)
	if e.owner == m.Src {
		b.violate(m.Addr, "owner %d re-requests the block", m.Src)
	}
	if b.policy().ServeExclusiveFromLLC(e.wp) {
		// S-MESI (always) or the E_wp ablation (write-protected
		// blocks): E at the directory is provably clean; serve from
		// the LLC and downgrade the owner.
		owner := e.owner
		e.state = DirShared
		e.sharers = b.sharerBit(owner) | b.sharerBit(m.Src)
		e.owner = -1
		t := b.newTxn(m)
		t.waitUnblock = true
		b.busy[m.Addr] = t
		b.Stats.LLCServed++
		b.send(m.Src, Msg{Kind: MsgData, Addr: m.Addr, Data: ln.Data, Served: ServedLLC}, b.respDelay())
		b.send(owner, Msg{Kind: MsgDowngrade, Addr: m.Addr}, b.respDelay())
		return
	}
	b.forwardLoad(m, e)
}

// forwardLoad relays a GETS to the owner (Figure 1(a)): the directory
// cannot rule out a silent upgrade, so the owner must supply the data.
func (b *bank) forwardLoad(m Msg, e *dirEntry) {
	t := b.newTxn(m)
	t.waitUnblock, t.waitWB = true, true
	b.busy[m.Addr] = t
	b.Stats.Forwards++
	b.send(e.owner, Msg{Kind: MsgFwdGETS, Addr: m.Addr, Requestor: m.Src, WP: m.WP}, b.respDelay())
}

// onWBData absorbs the owner's copy after a forwarded GETS and finalizes
// the sharer set. Under MOESI the owner may instead report that it kept
// the dirty copy (m.Owned): the entry moves to DirOwned and the LLC data
// stay stale.
func (b *bank) onWBData(m Msg) {
	t := b.busy[m.Addr]
	if t == nil {
		b.violate(m.Addr, "WB_Data for idle block")
	}
	e := b.entry(m.Addr)
	ln := b.arr.Lookup(m.Addr)
	if e == nil || ln == nil {
		b.violate(m.Addr, "WB_Data for absent block")
	}
	if m.Owned {
		e.state = DirOwned
		e.owner = m.Src
		e.sharers |= bit(t.req.Src)
		t.waitWB = false
		b.maybeComplete(m.Addr, t)
		return
	}
	if b.policy().ForwardStateFor(t.req.WP) {
		// MESIF: the requestor that just received the data becomes the
		// forwarder (never a write-protected requestor, whose copy must
		// stay plain S).
		e.forwarder = t.req.Src
	}
	if m.Dirty {
		ln.Data = m.Data
		e.llcDirty = true
	}
	if b.sys.twoLevel {
		// Only the E/M owner-downgrade path is reachable: owned and
		// forward-state policies are rejected with Clusters > 1. E/M
		// ownership is globally exclusive and the block stayed busy, so
		// the owner's and requestor's clusters are the only holders (a
		// served-from-writeback owner holds nothing, and its hub record
		// bit was already cleared when its PUTX passed through).
		e.sharers = b.sharerBit(t.req.Src)
		if !m.FromWB {
			e.sharers |= b.sharerBit(m.Src)
		}
	} else if e.state == DirShared || e.state == DirOwned {
		// MESIF forwarder transfer, or a MOESI owned block whose owner
		// downgraded/evicted: other sharers are untouched and must be
		// preserved.
		e.sharers |= bit(t.req.Src)
		if m.FromWB {
			e.sharers &^= bit(m.Src)
		} else {
			e.sharers |= bit(m.Src)
		}
	} else {
		// E/M owner downgrade: owner and requestor are the only copies.
		e.sharers = bit(t.req.Src)
		if !m.FromWB {
			e.sharers |= bit(m.Src)
		}
	}
	e.state = DirShared
	e.owner = -1
	t.waitWB = false
	b.maybeComplete(m.Addr, t)
}

// onStoreShared implements GETX at DirShared: invalidate the other
// sharers, deferring the grant until their acks arrive.
func (b *bank) onStoreShared(m Msg) {
	e := b.entry(m.Addr)
	ln := b.arr.Probe(m.Addr)
	targets := e.sharers
	if !b.sys.twoLevel {
		// Flat: the requestor holds nothing (a GETX is a miss), so its
		// own bit — if stale — is simply dropped. Two-level keeps the
		// requestor's CLUSTER in the target set: other locals of the
		// cluster may hold copies only the hub can enumerate.
		targets &^= bit(m.Src)
	}
	if targets == 0 {
		b.grantStore(m, e, ln.Data, ServedLLC, 0)
		return
	}
	t := b.newTxn(m)
	b.busy[m.Addr] = t
	b.invalidate(m.Addr, targets, m.Src, t)
	t.pendKind, t.pendData = pendStore, ln.Data
}

// onStoreOwner implements GETX at DirExclusive/DirModifiedL1: the owner
// surrenders the block to the requestor via Fwd_GETX.
func (b *bank) onStoreOwner(m Msg) {
	e := b.entry(m.Addr)
	b.arr.Probe(m.Addr)
	if e.owner == m.Src {
		b.violate(m.Addr, "owner %d GETX on own block", m.Src)
	}
	owner := e.owner
	e.state = DirModifiedL1
	e.owner = m.Src
	e.sharers = 0
	t := b.newTxn(m)
	t.waitUnblock = true
	b.busy[m.Addr] = t
	b.Stats.Forwards++
	b.send(owner, Msg{Kind: MsgFwdGETX, Addr: m.Addr, Requestor: m.Src}, b.respDelay())
}

// onStoreOwned implements GETX at DirOwned (MOESI): the data come from
// the O holder; any S copies (and the requestor's own stale S copy never
// exists here: sharers store with Upgrade) must be invalidated in
// parallel.
func (b *bank) onStoreOwned(m Msg) {
	e := b.entry(m.Addr)
	b.arr.Probe(m.Addr)
	owner := e.owner
	targets := e.sharers &^ bit(m.Src)
	t := b.newTxn(m)
	t.waitUnblock = true
	b.busy[m.Addr] = t
	if targets != 0 {
		b.invalidate(m.Addr, targets, m.Src, t)
	}
	e.state = DirModifiedL1
	e.owner = m.Src
	e.sharers = 0
	b.Stats.Forwards++
	b.send(owner, Msg{Kind: MsgFwdGETX, Addr: m.Addr, Requestor: m.Src}, b.respDelay())
}

// onUpgradeShared implements Upgrade at DirShared: S→M in every protocol
// (Figure 2). A requestor that is no longer a sharer lost its copy to a
// racing invalidation and resolves as a full GETX.
func (b *bank) onUpgradeShared(m Msg) {
	e := b.entry(m.Addr)
	if b.sys.twoLevel {
		// The home tracks clusters, not locals, so it cannot grant an
		// upgrade without invalidating the requestor's own cluster (which
		// would invalidate the requestor too). Resolve every shared-state
		// upgrade as a full GETX: the requestor's S copy falls to the hub
		// multicast (its MSHR moves SM^A -> IM^D, the defined raced-
		// upgrade path) and a fresh exclusive grant follows.
		b.resolveAsStore(m)
		return
	}
	if e.sharers&bit(m.Src) == 0 {
		b.resolveAsStore(m)
		return
	}
	targets := e.sharers &^ bit(m.Src)
	if targets == 0 {
		b.ackUpgrade(m, e)
		return
	}
	t := b.newTxn(m)
	b.busy[m.Addr] = t
	b.invalidate(m.Addr, targets, m.Src, t)
	t.pendKind = pendUpgrade
}

// onUpgradeOwned implements Upgrade at DirOwned (MOESI): either the O
// holder upgrades O->M (invalidating the S copies) or a sharer upgrades
// S->M (invalidating the O holder too — safe, since every S copy equals
// the O copy's value).
func (b *bank) onUpgradeOwned(m Msg) {
	e := b.entry(m.Addr)
	if e.owner != m.Src && e.sharers&bit(m.Src) == 0 {
		b.resolveAsStore(m)
		return
	}
	targets := e.sharers &^ bit(m.Src)
	if e.owner != m.Src {
		targets |= bit(e.owner)
	}
	if targets == 0 {
		b.ackUpgrade(m, e)
		return
	}
	t := b.newTxn(m)
	b.busy[m.Addr] = t
	b.invalidate(m.Addr, targets, m.Src, t)
	t.pendKind = pendUpgrade
}

// ackUpgrade grants write permission and records the known-modified owner.
// The LLC line is touched: the paper observes (§V-B) that S-MESI's explicit
// M-state synchronization makes the block look recently used to the LLC's
// LRU policy, occasionally improving retention — an effect that emerges
// here for free.
func (b *bank) ackUpgrade(m Msg, e *dirEntry) {
	e.state = DirModifiedL1
	e.owner = m.Src
	e.sharers = 0
	e.wp = false
	e.forwarder = -1
	b.arr.Touch(m.Addr)
	b.Stats.UpgradeAcks++
	b.sendPinned(m.Src, Msg{Kind: MsgUpgradeAck, Addr: m.Addr}, b.respDelay())
	if t, ok := b.busy[m.Addr]; ok {
		b.maybeComplete(m.Addr, t)
	}
}

// invalidate issues Inv demands and arms the ack counter. Flat, each
// target bit is an L1; two-level, each is a cluster whose hub multicasts
// to its recorded locals and returns ONE aggregate ack.
func (b *bank) invalidate(addr cache.Addr, targets uint64, requestor int, t *txn) {
	n := bits.OnesCount64(targets)
	t.waitAcks = n
	b.Stats.Invals += uint64(n)
	e := b.entry(addr)
	if b.sys.twoLevel {
		for c := 0; targets != 0; c++ {
			if targets&1 != 0 {
				e.sharers &^= bit(c)
				b.sendHub(c, Msg{Kind: MsgInv, Addr: addr, Requestor: requestor}, b.respDelay())
			}
			targets >>= 1
		}
		return
	}
	for id := 0; targets != 0; id++ {
		if targets&1 != 0 {
			e.sharers &^= bit(id)
			b.send(id, Msg{Kind: MsgInv, Addr: addr, Requestor: requestor}, b.respDelay())
		}
		targets >>= 1
	}
}

// onPUTS clears an evicting sharer; PUTS is fire-and-forget (no ack).
// Under the two-level directory a PUTS only reaches the home when the
// evictor's hub determined the whole cluster is (and stays) empty, so
// clearing the cluster bit is exact.
func (b *bank) onPUTS(m Msg) {
	e := b.entry(m.Addr)
	e.sharers &^= b.sharerBit(m.Src)
	if e.forwarder == m.Src {
		// The MESIF forwarder evicted; until the next shared grant there
		// is no designated responder and the LLC serves.
		e.forwarder = -1
	}
	if e.state == DirShared && e.sharers == 0 {
		e.state = DirPresent
	}
}

// onPUTX absorbs an owner's (or demoted holder's) writeback and always
// acks so the evictor can release its writeback buffer entry.
func (b *bank) onPUTX(m Msg) {
	e := b.entry(m.Addr)
	switch {
	case e.owner == m.Src && e.state == DirOwned:
		// The O holder evicts: the LLC absorbs the dirty data; any S
		// copies remain valid sharers of the now-clean LLC line.
		e.owner = -1
		if ln := b.arr.Lookup(m.Addr); ln != nil {
			ln.Data = m.Data
		}
		e.llcDirty = true
		if e.sharers == 0 {
			e.state = DirPresent
		} else {
			e.state = DirShared
		}
	case e.owner == m.Src && (e.state == DirExclusive || e.state == DirModifiedL1):
		e.state = DirPresent
		e.owner = -1
		if m.Dirty {
			if ln := b.arr.Lookup(m.Addr); ln != nil {
				ln.Data = m.Data
			}
			e.llcDirty = true
		}
	default:
		// Stale or non-owner writeback: an S-MESI Downgrade demoted the
		// sender to a sharer, or a MESIF Forward holder evicted. Its
		// copy is gone either way. Two-level, the cluster bit may only
		// be cleared when the hub certified the evictor was the last
		// holder with no grant in flight (ClusterLast); otherwise other
		// locals — or an in-flight grant — still populate the cluster.
		if b.sys.twoLevel {
			if m.ClusterLast {
				e.sharers &^= b.sharerBit(m.Src)
			}
		} else {
			e.sharers &^= bit(m.Src)
		}
		if e.forwarder == m.Src {
			e.forwarder = -1
		}
		if e.state == DirShared && e.sharers == 0 {
			e.state = DirPresent
		}
	}
	b.send(m.Src, Msg{Kind: MsgWBAck, Addr: m.Addr}, b.respDelay())
}

// fetchAndGrant services an LLC miss from DRAM, then installs and grants.
// The request itself lives in the busy transaction; the payload events
// carry only the address, the store flag (Z), and the stall counter (B).
func (b *bank) fetchAndGrant(m Msg, store bool) {
	t := b.newTxn(m)
	b.busy[m.Addr] = t
	b.Stats.MemFetches++
	p := sim.Payload{Op: opBankFetchIssue, A: uint64(m.Addr)}
	if store {
		p.Z = 1
	}
	// Global event: the fetch touches the shared DRAM model. The LLC tag
	// latency is at least the lookahead when sharded (Validate enforces it),
	// so issuing from a mid-epoch dispatch is always legal.
	b.eng().ScheduleGlobalEvent(b.timing().LLCTag, b, p)
}

// installAndGrant completes an LLC miss once DRAM has responded. A victim
// set fully covered by busy transactions or in-flight grants is a
// structural stall: retry after a tag-lookup delay. The stall is bounded —
// a set blocked this long means the protocol deadlocked, so fail fast.
// The original request is recovered from the busy transaction, which spans
// the whole fetch.
func (b *bank) installAndGrant(addr cache.Addr, store bool, stalled sim.Cycle) {
	extra, ok := b.install(addr)
	if !ok {
		const stallLimit = 100_000
		if stalled > stallLimit {
			// Every way of the set has been covered by busy transactions or
			// in-flight grants for the whole retry window: the protocol has
			// deadlocked around this set. Fail with the pinned-ways dump.
			panic(&fault.Violation{
				Kind:      fault.KindResource,
				Cycle:     uint64(b.eng().Now()),
				Component: fmt.Sprintf("bank %d", b.id),
				Addr:      uint64(addr),
				Msg:       fmt.Sprintf("no evictable way after %d stall cycles", stalled),
				Dump:      b.dumpSet(addr) + b.sys.DumpState(),
			})
		}
		retry := b.timing().LLCTag
		if retry < 1 {
			retry = 1
		}
		p := sim.Payload{Op: opBankInstall, A: uint64(addr), B: uint64(stalled + retry)}
		if store {
			p.Z = 1
		}
		// Installs run as global events (driver context), so the retry may
		// use any delay: re-scheduling a global from the driver skips the
		// lookahead constraint.
		b.eng().ScheduleGlobalEvent(retry, b, p)
		return
	}
	m := b.busy[addr].req
	data := b.sys.memRead(addr)
	b.arr.Lookup(addr).Data = data
	e := b.entry(addr)
	if store {
		b.grantStore(m, e, data, ServedMem, extra)
	} else {
		b.grantLoad(m, e, data, ServedMem, extra)
	}
}

// grantLoad answers a load request with the policy-determined permission.
// SwiftDir's I→S transition for write-protected data happens here: the
// grant for a GETS_WP is never exclusive (Figure 4(a)).
func (b *bank) grantLoad(m Msg, e *dirEntry, data uint64, served ServedBy, extra sim.Cycle) {
	t := b.busy[m.Addr]
	if t == nil {
		t = b.newTxn(m)
		b.busy[m.Addr] = t
	}
	t.waitUnblock = true
	if served == ServedLLC {
		b.Stats.LLCServed++
	}
	e.wp = m.WP
	if b.policy().GrantExclusiveOnLoad(m.WP) {
		e.state = DirExclusive
		e.owner = m.Src
		e.sharers = 0
		e.forwarder = -1
		b.send(m.Src, Msg{Kind: MsgDataExclusive, Addr: m.Addr, Data: data, Served: served, WP: m.WP}, b.respDelay()+extra)
		return
	}
	e.state = DirShared
	e.owner = -1
	e.sharers |= b.sharerBit(m.Src)
	mf := b.policy().ForwardStateFor(m.WP)
	if mf {
		e.forwarder = m.Src
	}
	b.send(m.Src, Msg{Kind: MsgData, Addr: m.Addr, Data: data, Served: served, WP: m.WP, MakeForward: mf}, b.respDelay()+extra)
}

// grantStore answers a GETX (or an Upgrade resolved as GETX).
func (b *bank) grantStore(m Msg, e *dirEntry, data uint64, served ServedBy, extra sim.Cycle) {
	t := b.busy[m.Addr]
	if t == nil {
		t = b.newTxn(m)
		b.busy[m.Addr] = t
	}
	t.waitUnblock = true
	if served == ServedLLC {
		b.Stats.LLCServed++
	}
	e.state = DirModifiedL1
	e.owner = m.Src
	e.sharers = 0
	e.wp = false // written data are no longer treated as write-protected
	e.forwarder = -1
	b.send(m.Src, Msg{Kind: MsgDataExclusive, Addr: m.Addr, Data: data, Served: served}, b.respDelay()+extra)
}

// maybeComplete retires the transaction once every wait clears, then
// replays any queued requests in arrival order.
func (b *bank) maybeComplete(addr cache.Addr, t *txn) {
	if b.busy[addr] != t {
		// t already completed (and possibly a queued request installed a
		// new transaction); a stale caller must not touch it.
		return
	}
	if t.waitUnblock || t.waitWB || t.waitAcks > 0 || t.pendKind != pendNone {
		return
	}
	delete(b.busy, addr)
	// Iterate t.queued in place; t is recycled only after the loop is done
	// with its backing array (a replay may pull a different txn from the
	// pool, never t itself — it is no longer in busy).
	queued := t.queued
	for i, m := range queued {
		if nt, ok := b.busy[addr]; ok {
			// A replayed request re-opened a transaction; this message
			// and the rest stay queued behind it.
			nt.queued = append(nt.queued, queued[i:]...)
			b.freeTxn(t)
			return
		}
		b.Stats.QueuedWakeups++
		b.dispatch(m)
	}
	b.freeTxn(t)
}

// install allocates an LLC line for addr, recalling and evicting a victim
// if necessary. It returns the extra latency the triggering request must
// absorb (the recall penalty), with ok=false when every way of the set is
// covered by a busy transaction or an in-flight grant — a structural
// stall the caller retries once a way frees.
func (b *bank) install(addr cache.Addr) (extra sim.Cycle, ok bool) {
	if b.entries[addr] != nil {
		b.violate(addr, "double install")
	}
	v := b.arr.VictimFiltered(addr, func(a cache.Addr) bool {
		return b.busy[a] != nil || b.pinned[a] > 0
	})
	if v == nil {
		return 0, false
	}
	if v.State.Valid() {
		extra = b.evictLLC(b.arr.AddrOfLine(v, addr), v)
	}
	b.arr.Install(v, addr, cache.Shared)
	e := b.newEntry()
	e.state, e.owner, e.forwarder = DirPresent, -1, -1
	b.entries[addr] = e
	b.lastAddr, b.lastEnt = addr, e
	return extra, true
}

// evictLLC removes a block from the LLC. Inclusion requires recalling any
// L1 copies; the recall is performed synchronously with an approximate
// RecallPenalty charged to the triggering request (see DESIGN.md).
func (b *bank) evictLLC(victim cache.Addr, ln *cache.Line) sim.Cycle {
	e := b.entries[victim]
	if e == nil {
		b.violate(victim, "LLC line without directory entry")
	}
	var extra sim.Cycle
	data := ln.Data
	dirty := e.llcDirty

	recall := func(id int) {
		d, dty, had := b.sys.L1s[id].ForceInvalidate(victim)
		if had && dty {
			data, dirty = d, true
		}
	}
	switch e.state {
	case DirShared:
		b.Stats.Recalls++
		extra = b.timing().RecallPenalty
		if b.sys.twoLevel {
			// The hubs' records — not the home's conservative cluster
			// bits — enumerate the actual holders. Sweep every hub: a
			// record can outlive its home bit only transiently, and the
			// sweep makes the recall exact regardless.
			for _, h := range b.sys.hubs {
				base := h.base()
				for lid, rec := 0, h.record[victim]; rec != 0; lid++ {
					if rec&1 != 0 {
						recall(base + lid)
					}
					rec >>= 1
				}
				delete(h.record, victim)
			}
			break
		}
		for id, s := 0, e.sharers; s != 0; id++ {
			if s&1 != 0 {
				recall(id)
			}
			s >>= 1
		}
	case DirExclusive, DirModifiedL1:
		b.Stats.Recalls++
		extra = b.timing().RecallPenalty
		recall(e.owner)
		if b.sys.twoLevel {
			b.sys.hubs[b.sys.clusterOf(e.owner)].clearBit(victim, e.owner)
		}
	case DirOwned:
		b.Stats.Recalls++
		extra = b.timing().RecallPenalty
		recall(e.owner)
		for id, s := 0, e.sharers; s != 0; id++ {
			if s&1 != 0 {
				recall(id)
			}
			s >>= 1
		}
	}
	if dirty {
		b.Stats.Writebacks++
		b.sys.memWrite(victim, data)
		b.sys.Mem.AccessAt(b.eng().Now(), uint64(victim), true)
	}
	delete(b.entries, victim)
	if victim == b.lastAddr {
		b.lastEnt = nil
	}
	// Victim selection excludes busy and pinned blocks, so no in-flight
	// transaction still references this entry; recycle it.
	b.entryFree = append(b.entryFree, e)
	return extra
}

// violate panics with a typed, contained protocol violation carrying the
// full system state dump. The campaign fence recovers the *fault.Violation
// into a crash bundle instead of a bare stack trace. It never returns.
func (b *bank) violate(addr cache.Addr, format string, args ...any) {
	panic(&fault.Violation{
		Kind:      fault.KindProtocol,
		Cycle:     uint64(b.eng().Now()),
		Component: fmt.Sprintf("bank %d", b.id),
		Addr:      uint64(addr),
		Msg:       fmt.Sprintf(format, args...),
		Dump:      b.sys.DumpState(),
	})
}

// dumpSet renders the install-target set for addr: every valid way's
// block, state, and why it is (or is not) excluded from victim selection.
// Failure-path only.
func (b *bank) dumpSet(addr cache.Addr) string {
	var sb strings.Builder
	set := b.arr.SetIndex(addr)
	fmt.Fprintf(&sb, "bank %d set %d ways (install target %#x):\n", b.id, set, addr)
	b.arr.ForEachValid(func(a cache.Addr, ln *cache.Line) {
		if b.arr.SetIndex(a) != set {
			return
		}
		var why []string
		if b.busy[a] != nil {
			why = append(why, "busy txn")
		}
		if n := b.pinned[a]; n > 0 {
			why = append(why, fmt.Sprintf("pinned x%d", n))
		}
		status := "evictable"
		if len(why) > 0 {
			status = strings.Join(why, ", ")
		}
		fmt.Fprintf(&sb, "  %#x %v: %s\n", a, ln.State, status)
	})
	return sb.String()
}
