package coherence

import (
	"testing"
	"testing/quick"

	"repro/internal/cache"
)

// MOESI: a forwarded GETS to a dirty owner transfers ownership to state O
// — the owner keeps its dirty copy, the requestor gets S, and the LLC is
// not written.
func TestMOESIOwnershipTransfer(t *testing.T) {
	s := newTestSystem(t, MOESI, 3)
	s.AccessSync(0, blockA, false, false, 0)     // E
	s.AccessSync(0, blockA, true, false, 0xFACE) // silent M
	wbBefore := s.BankStatsTotal().Writebacks

	r := s.AccessSync(1, blockA, false, false, 0)
	if r.Served != ServedRemote {
		t.Fatalf("served %v, want Remote", r.Served)
	}
	if r.Value != 0xFACE {
		t.Fatalf("value %#x", r.Value)
	}
	s.Quiesce()
	if st := s.L1StateOf(0, blockA); st != cache.Owned {
		t.Fatalf("old owner state %v, want O", st)
	}
	if st := s.L1StateOf(1, blockA); st != cache.Shared {
		t.Fatalf("requestor state %v, want S", st)
	}
	if ds := s.DirStateOf(blockA); ds != DirOwned {
		t.Fatalf("dir state %v, want DirO", ds)
	}
	if s.BankStatsTotal().Writebacks != wbBefore {
		t.Fatal("MOESI forward wrote back to memory")
	}
	quiesceAndCheck(t, s)
}

// Under MESI the same sequence downgrades the owner to S and absorbs the
// dirty data into the LLC — the contrast MOESI optimizes away.
func TestMESIAbsorbsWhereMOESIRetains(t *testing.T) {
	s := newTestSystem(t, MESI, 2)
	s.AccessSync(0, blockA, false, false, 0)
	s.AccessSync(0, blockA, true, false, 0xFACE)
	s.AccessSync(1, blockA, false, false, 0)
	s.Quiesce()
	if st := s.L1StateOf(0, blockA); st != cache.Shared {
		t.Fatalf("MESI owner state %v, want S", st)
	}
	if ds := s.DirStateOf(blockA); ds != DirShared {
		t.Fatalf("MESI dir state %v, want DirS", ds)
	}
}

// Every subsequent remote load of an Owned block is served by the owner
// (three-hop): the O/S timing channel MOESI adds.
func TestMOESISubsequentLoadsForwardToOwner(t *testing.T) {
	s := newTestSystem(t, MOESI, 4)
	s.AccessSync(0, blockA, false, false, 0)
	s.AccessSync(0, blockA, true, false, 0xBEE)
	s.AccessSync(1, blockA, false, false, 0) // O transfer
	r := s.AccessSync(2, blockA, false, false, 0)
	if r.Served != ServedRemote || r.Value != 0xBEE {
		t.Fatalf("third reader: served %v value %#x", r.Served, r.Value)
	}
	s.Quiesce()
	if ds := s.DirStateOf(blockA); ds != DirOwned {
		t.Fatalf("dir state %v", ds)
	}
	if st := s.L1StateOf(0, blockA); st != cache.Owned {
		t.Fatalf("owner %v", st)
	}
	quiesceAndCheck(t, s)
}

// A store by the O holder upgrades O->M and invalidates the sharers.
func TestMOESIOwnerUpgrade(t *testing.T) {
	s := newTestSystem(t, MOESI, 2)
	s.AccessSync(0, blockA, false, false, 0)
	s.AccessSync(0, blockA, true, false, 1)
	s.AccessSync(1, blockA, false, false, 0) // 0:O, 1:S
	w := s.AccessSync(0, blockA, true, false, 2)
	if w.Served != ServedUpgrade {
		t.Fatalf("O-holder store served %v, want Upgrade", w.Served)
	}
	s.Quiesce()
	if st := s.L1StateOf(1, blockA); st != cache.Invalid {
		t.Fatalf("sharer state %v after owner upgrade", st)
	}
	if st := s.L1StateOf(0, blockA); st != cache.Modified {
		t.Fatalf("owner state %v, want M", st)
	}
	r := s.AccessSync(1, blockA, false, false, 0)
	if r.Value != 2 {
		t.Fatalf("re-read %#x, want 2", r.Value)
	}
	quiesceAndCheck(t, s)
}

// A store by a sharer invalidates the O holder (whose dirty value equals
// the sharer's copy) and no data are lost.
func TestMOESISharerUpgradeInvalidatesOwner(t *testing.T) {
	s := newTestSystem(t, MOESI, 2)
	s.AccessSync(0, blockA, false, false, 0)
	s.AccessSync(0, blockA, true, false, 0x11)
	s.AccessSync(1, blockA, false, false, 0) // 0:O, 1:S (both value 0x11)
	w := s.AccessSync(1, blockA, true, false, 0x22)
	if w.Served != ServedUpgrade {
		t.Fatalf("sharer store served %v, want Upgrade", w.Served)
	}
	s.Quiesce()
	if st := s.L1StateOf(0, blockA); st != cache.Invalid {
		t.Fatalf("old owner state %v", st)
	}
	r := s.AccessSync(0, blockA, false, false, 0)
	if r.Value != 0x22 {
		t.Fatalf("value %#x, want 0x22", r.Value)
	}
	quiesceAndCheck(t, s)
}

// Eviction of an Owned line writes the dirty data back; remaining sharers
// stay valid against the now-clean LLC.
func TestMOESIOwnedEviction(t *testing.T) {
	s := newTestSystem(t, MOESI, 2)
	l1Sets := s.L1s[0].Array().Sets()
	stride := cache.Addr(l1Sets * 64)
	base := cache.Addr(0x40000)
	s.AccessSync(0, base, false, false, 0)
	s.AccessSync(0, base, true, false, 0x99)
	s.AccessSync(1, base, false, false, 0) // 0:O, 1:S
	// Evict the O line from core 0.
	for i := 1; i <= 4; i++ {
		s.AccessSync(0, base+cache.Addr(i)*stride, false, false, 0)
	}
	s.Quiesce()
	if st := s.L1StateOf(0, base); st != cache.Invalid {
		t.Fatalf("O line survived eviction pressure: %v", st)
	}
	if ds := s.DirStateOf(base); ds != DirShared {
		t.Fatalf("dir state %v, want DirS (sharer remains)", ds)
	}
	// A third party reads the absorbed value from the LLC.
	r := s.AccessSync(0, base, false, false, 0)
	if r.Value != 0x99 || r.Served != ServedLLC {
		t.Fatalf("post-eviction read: %#x from %v", r.Value, r.Served)
	}
	quiesceAndCheck(t, s)
}

// SwiftDir on MOESI: write-protected data never enter E, M, or O, so the
// remote load is the constant LLC latency and the channel stays closed.
func TestSwiftDirMOESIClosesChannel(t *testing.T) {
	tm := DefaultTiming()
	s := newTestSystem(t, SwiftDirMOESI, 2)
	s.AccessSync(1, blockA, false, true, 0)
	r := s.AccessSync(0, blockA, false, true, 0)
	if r.Served != ServedLLC || r.Latency != tm.LLCLoadLatency() {
		t.Fatalf("WP remote load: %v %d", r.Served, r.Latency)
	}
	// Non-WP dirty data still migrate via O (the MOESI speedup is kept).
	s.AccessSync(0, 0x20000, false, false, 0)
	s.AccessSync(0, 0x20000, true, false, 5)
	s.AccessSync(1, 0x20000, false, false, 0)
	s.Quiesce()
	if st := s.L1StateOf(0, 0x20000); st != cache.Owned {
		t.Fatalf("non-WP owner state %v, want O", st)
	}
	quiesceAndCheck(t, s)
}

// MOESI sequential consistency property (the MESI version's twin).
func TestMOESISequentialConsistencyProperty(t *testing.T) {
	for _, p := range []Policy{MOESI, SwiftDirMOESI} {
		p := p
		t.Run(p.Name(), func(t *testing.T) {
			f := func(ops []uint32) bool {
				cfg := testConfig(p, 4)
				cfg.LLCParams = cache.Params{Name: "LLC", SizeBytes: 4 << 10, Ways: 4, BlockSize: 64}
				s := MustNewSystem(cfg)
				shadow := map[cache.Addr]uint64{}
				val := uint64(1)
				for _, op := range ops {
					core := int(op % 4)
					block := cache.Addr(0x100000 + (uint64(op>>2)%24)*64)
					if op&(1<<30) != 0 {
						val++
						s.AccessSync(core, block, true, false, val)
						shadow[block] = val
					} else {
						r := s.AccessSync(core, block, false, op&(1<<29) != 0, 0)
						want, ok := shadow[block]
						if !ok {
							want = initialToken(block)
						}
						if r.Value != want {
							return false
						}
					}
				}
				s.Quiesce()
				return s.CheckInvariants() == nil
			}
			if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
				t.Fatal(err)
			}
		})
	}
}

// MOESI concurrent stress.
func TestMOESIConcurrentStress(t *testing.T) {
	cfg := testConfig(MOESI, 4)
	cfg.LLCParams = cache.Params{Name: "LLC", SizeBytes: 4 << 10, Ways: 4, BlockSize: 64}
	s := MustNewSystem(cfg)
	for i := 0; i < 1500; i++ {
		s.Submit(i%4, Access{
			Addr:  cache.Addr(0x100000 + (i%32)*64),
			Write: i%3 == 0,
			Value: uint64(i),
		})
	}
	s.Eng.RunBounded(50_000_000)
	if err := s.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

// MOESI transaction shape: GETS to a dirty owner produces a WB_Data with
// the Owned flag and no data writeback.
func TestMOESITransactionShape(t *testing.T) {
	s, tr := tracedSystem(t, MOESI, 2)
	s.AccessSync(0, blockA, false, false, 0)
	s.AccessSync(0, blockA, true, false, 1)
	s.Quiesce()
	tr.Reset()
	s.AccessSync(1, blockA, false, false, 0)
	s.Quiesce()
	want := "GETS Fwd_GETS Data_From_Owner WB_Data Unblock"
	if got := tr.KindSeq(); got != want {
		t.Fatalf("sequence %q, want %q", got, want)
	}
	for _, e := range tr.Events {
		if e.Msg.Kind == MsgWBData && !e.Msg.Owned {
			t.Fatal("WB_Data lacks the Owned flag")
		}
	}
}
