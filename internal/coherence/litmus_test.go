package coherence_test

import (
	"testing"

	"repro/internal/cache"
	"repro/internal/coherence"
	"repro/internal/dram"
	"repro/internal/sim"
)

// Coherence-level litmus tests. Each hardware thread issues its accesses
// in program order (the next access is submitted from the previous one's
// completion callback), so any relaxation observed here would be a
// protocol bug, not a memory-model artifact: per-location coherence
// (CoRR), write atomicity (IRIW), and store visibility (MP, SB) must all
// hold on every protocol, with and without network timing fuzz.

const (
	litmusX = cache.Addr(0x1000)
	litmusY = cache.Addr(0x9040) // different block, different bank
	tokenW  = uint64(1)          // distinguishable from initialToken values
)

func litmusSystem(t *testing.T, p coherence.Policy, jitterSeed uint64) *coherence.System {
	t.Helper()
	return coherence.MustNewSystem(coherence.SystemConfig{
		NumL1:     4,
		L1Params:  cache.Params{Name: "L1", SizeBytes: 4 << 10, Ways: 2, BlockSize: 64},
		LLCParams: cache.Params{Name: "LLC", SizeBytes: 64 << 10, Ways: 8, BlockSize: 64},
		Banks:     2,
		Timing: func() coherence.Timing {
			tm := coherence.DefaultTiming()
			if jitterSeed != 0 {
				tm.JitterMax = 5
				tm.JitterSeed = jitterSeed
			}
			return tm
		}(),
		Policy: p,
		DRAM:   dram.DDR3_1600_8x8(),
	})
}

type litmusOp struct {
	addr  cache.Addr
	write bool
	value uint64
}

// runSeq issues ops on port strictly in program order starting after
// delay, appending each load's observed value to out.
func runSeq(s *coherence.System, port int, delay sim.Cycle, ops []litmusOp, out *[]uint64) {
	var issue func(i int)
	issue = func(i int) {
		if i >= len(ops) {
			return
		}
		op := ops[i]
		s.Submit(port, coherence.Access{
			Addr: op.addr, Write: op.write, Value: op.value,
			Done: func(r coherence.AccessResult) {
				if !op.write {
					*out = append(*out, r.Value)
				}
				issue(i + 1)
			},
		})
	}
	s.Eng.Schedule(delay, func() { issue(0) })
}

// TestLitmusMP: writer stores data then flag; reader polls flag and,
// once it observes the flag store, must observe the data store too.
func TestLitmusMP(t *testing.T) {
	for _, p := range coherence.AllPolicies {
		p := p
		t.Run(p.Name(), func(t *testing.T) {
			rng := sim.NewRNG(0x11717)
			for trial := 0; trial < 40; trial++ {
				var jitter uint64
				if trial%2 == 1 {
					jitter = uint64(trial)
				}
				s := litmusSystem(t, p, jitter)
				wDelay := sim.Cycle(rng.Intn(80))
				rDelay := sim.Cycle(rng.Intn(80))

				runSeq(s, 0, wDelay, []litmusOp{
					{addr: litmusX, write: true, value: tokenW},
					{addr: litmusY, write: true, value: tokenW},
				}, nil)

				var data uint64
				sawFlag := false
				polls := 0
				var poll func()
				poll = func() {
					polls++
					if polls > 10000 {
						t.Fatal("reader never observed the flag store")
					}
					s.Submit(1, coherence.Access{Addr: litmusY, Done: func(r coherence.AccessResult) {
						if r.Value != tokenW {
							s.Eng.Schedule(1, poll)
							return
						}
						sawFlag = true
						s.Submit(1, coherence.Access{Addr: litmusX, Done: func(r coherence.AccessResult) {
							data = r.Value
						}})
					}})
				}
				s.Eng.Schedule(rDelay, poll)
				s.Quiesce()

				if !sawFlag {
					t.Fatalf("trial %d: flag store lost", trial)
				}
				if data != tokenW {
					t.Fatalf("trial %d: flag observed but data stale (%#x)", trial, data)
				}
				if err := s.CheckInvariants(); err != nil {
					t.Fatalf("trial %d: %v", trial, err)
				}
			}
		})
	}
}

// TestLitmusSB: store buffering. With per-access completion ordering,
// at least one of the two cross-reads must observe the other thread's
// store (both-stale is forbidden).
func TestLitmusSB(t *testing.T) {
	for _, p := range coherence.AllPolicies {
		p := p
		t.Run(p.Name(), func(t *testing.T) {
			rng := sim.NewRNG(0x5B5B)
			for trial := 0; trial < 40; trial++ {
				var jitter uint64
				if trial%2 == 0 {
					jitter = uint64(trial + 1)
				}
				s := litmusSystem(t, p, jitter)
				var r0, r1 []uint64
				runSeq(s, 0, sim.Cycle(rng.Intn(40)), []litmusOp{
					{addr: litmusX, write: true, value: tokenW},
					{addr: litmusY},
				}, &r0)
				runSeq(s, 1, sim.Cycle(rng.Intn(40)), []litmusOp{
					{addr: litmusY, write: true, value: tokenW},
					{addr: litmusX},
				}, &r1)
				s.Quiesce()

				if len(r0) != 1 || len(r1) != 1 {
					t.Fatalf("trial %d: loads did not complete (%d, %d)", trial, len(r0), len(r1))
				}
				if r0[0] != tokenW && r1[0] != tokenW {
					t.Fatalf("trial %d: both threads read stale values (%#x, %#x) — store visibility violated",
						trial, r0[0], r1[0])
				}
				if err := s.CheckInvariants(); err != nil {
					t.Fatalf("trial %d: %v", trial, err)
				}
			}
		})
	}
}

// TestLitmusCoRR: per-location coherence — a thread reading the same
// block twice must never observe the new value then the old one, no
// matter how a concurrent writer's store lands between the reads.
func TestLitmusCoRR(t *testing.T) {
	for _, p := range coherence.AllPolicies {
		p := p
		t.Run(p.Name(), func(t *testing.T) {
			rng := sim.NewRNG(0xC0BB)
			for trial := 0; trial < 60; trial++ {
				var jitter uint64
				if trial%3 == 0 {
					jitter = uint64(trial + 7)
				}
				s := litmusSystem(t, p, jitter)
				runSeq(s, 2, sim.Cycle(rng.Intn(120)), []litmusOp{
					{addr: litmusX, write: true, value: tokenW},
				}, nil)
				var reads []uint64
				runSeq(s, 3, sim.Cycle(rng.Intn(120)), []litmusOp{
					{addr: litmusX}, {addr: litmusX}, {addr: litmusX},
				}, &reads)
				s.Quiesce()

				if len(reads) != 3 {
					t.Fatalf("trial %d: reads incomplete", trial)
				}
				seenNew := false
				for i, v := range reads {
					if v == tokenW {
						seenNew = true
					} else if seenNew {
						t.Fatalf("trial %d: read %d went back in time: %v", trial, i, reads)
					}
				}
				if err := s.CheckInvariants(); err != nil {
					t.Fatalf("trial %d: %v", trial, err)
				}
			}
		})
	}
}

// TestLitmusIRIW: write atomicity — two readers must agree on the order
// in which two independent writers' stores become visible. Observing
// (x new, y old) on one reader and (y new, x old) on the other would
// mean the stores propagated in different orders to different cores.
func TestLitmusIRIW(t *testing.T) {
	for _, p := range coherence.AllPolicies {
		p := p
		t.Run(p.Name(), func(t *testing.T) {
			rng := sim.NewRNG(0x141F)
			for trial := 0; trial < 40; trial++ {
				var jitter uint64
				if trial%2 == 1 {
					jitter = uint64(trial * 3)
				}
				s := litmusSystem(t, p, jitter)
				runSeq(s, 0, sim.Cycle(rng.Intn(60)), []litmusOp{{addr: litmusX, write: true, value: tokenW}}, nil)
				runSeq(s, 1, sim.Cycle(rng.Intn(60)), []litmusOp{{addr: litmusY, write: true, value: tokenW}}, nil)
				var ra, rb []uint64
				runSeq(s, 2, sim.Cycle(rng.Intn(60)), []litmusOp{{addr: litmusX}, {addr: litmusY}}, &ra)
				runSeq(s, 3, sim.Cycle(rng.Intn(60)), []litmusOp{{addr: litmusY}, {addr: litmusX}}, &rb)
				s.Quiesce()

				if len(ra) != 2 || len(rb) != 2 {
					t.Fatalf("trial %d: reads incomplete", trial)
				}
				aForward := ra[0] == tokenW && ra[1] != tokenW // saw x before y
				bForward := rb[0] == tokenW && rb[1] != tokenW // saw y before x
				if aForward && bForward {
					t.Fatalf("trial %d: readers disagree on store order: ra=%v rb=%v", trial, ra, rb)
				}
				if err := s.CheckInvariants(); err != nil {
					t.Fatalf("trial %d: %v", trial, err)
				}
			}
		})
	}
}
