//go:build !race

// Allocation-regression tests for the coherence hot path: a steady-state
// L1 hit — the most frequent operation in every experiment — must not
// allocate. Excluded under -race because the race detector instruments
// allocations.

package coherence

import (
	"testing"

	"repro/internal/cache"
)

// TestSteadyStateL1HitZeroAlloc pins the full hit path — Submit, the
// tag-lookup event, process, complete, Done — at zero allocations.
func TestSteadyStateL1HitZeroAlloc(t *testing.T) {
	s := MustNewSystem(testConfig(MESI, 2))
	const addr = blockA
	done := func(AccessResult) {}

	// Warm: install the line (load) and drive it to M (store), then pump
	// hits until the clock has swept the engine's whole calendar ring, so
	// every bucket along the hit path's stride has grown its slot and every
	// pool has reached steady state.
	s.AccessSync(0, addr, false, false, 0)
	s.AccessSync(0, addr, true, false, 1)
	start := s.Eng.Now()
	for i := 0; s.Eng.Now()-start < 4096 || i < 64; i++ {
		s.Submit(0, Access{Addr: addr, Write: i%2 == 0, Value: uint64(i), Done: done})
		s.Eng.Run()
	}

	allocs := testing.AllocsPerRun(500, func() {
		s.Submit(0, Access{Addr: addr, Done: done})
		s.Eng.Run()
	})
	if allocs != 0 {
		t.Fatalf("steady-state L1 load hit allocates %.1f per access, want 0", allocs)
	}

	allocs = testing.AllocsPerRun(500, func() {
		s.Submit(0, Access{Addr: addr, Write: true, Value: 42, Done: done})
		s.Eng.Run()
	})
	if allocs != 0 {
		t.Fatalf("steady-state L1 store hit allocates %.1f per access, want 0", allocs)
	}
}

// TestSteadyStateMissZeroAlloc drives a working set larger than the L1
// through one controller until every pool (MSHRs, txns, directory entries,
// message events) reaches capacity, then asserts the whole miss path —
// request, directory grant, install, eviction, writeback — allocates
// nothing per access.
func TestSteadyStateMissZeroAlloc(t *testing.T) {
	s := MustNewSystem(testConfig(MESI, 2))
	done := func(AccessResult) {}
	// 64 blocks cycle through a 1 KB / 16-line L1: permanent miss+evict
	// traffic confined to a fixed footprint.
	addrOf := func(i int) cache.Addr { return blockA + cache.Addr((i%64)*64) }

	for i := 0; i < 2048; i++ {
		s.Submit(0, Access{Addr: addrOf(i), Write: i%4 == 0, Value: uint64(i), Done: done})
		s.Eng.Run()
	}

	i := 2048
	allocs := testing.AllocsPerRun(500, func() {
		s.Submit(0, Access{Addr: addrOf(i), Write: i%4 == 0, Value: uint64(i), Done: done})
		i++
		s.Eng.Run()
	})
	if allocs > 0.1 {
		t.Fatalf("steady-state L1 miss allocates %.2f per access, want 0", allocs)
	}
}

// TestFastPathZeroAlloc pins the synchronous fast path — TryFastAccess
// plus AccessSync's zero-event completion tier — at zero allocations and
// confirms the path actually fires (FastHits advances every iteration).
func TestFastPathZeroAlloc(t *testing.T) {
	s := MustNewSystem(testConfig(MESI, 2))
	const addr = blockA
	s.AccessSync(0, addr, false, false, 0)
	s.AccessSync(0, addr, true, false, 1)
	s.Eng.Run() // drain directory cleanup so the fast path is eligible

	before := s.L1s[0].Stats.FastHits
	var i uint64
	allocs := testing.AllocsPerRun(500, func() {
		s.AccessSync(0, addr, i%2 == 0, false, i)
		i++
	})
	if allocs != 0 {
		t.Fatalf("fast-path hit allocates %.1f per access, want 0", allocs)
	}
	if after := s.L1s[0].Stats.FastHits; after-before < 500 {
		t.Fatalf("fast path fired %d times during the alloc run, want >= 500", after-before)
	}
}
