package coherence

import (
	"strings"
	"testing"
)

// These tests assert the exact message sequences of the paper's protocol
// diagrams (Figures 2-4) using the message tracer.

func tracedSystem(t *testing.T, p Policy, cores int) (*System, *Tracer) {
	t.Helper()
	s := newTestSystem(t, p, cores)
	return s, s.AttachTracer()
}

// Figure 4(a): initial load of write-protected data under SwiftDir —
// GETS_WP to the LLC, Data (not exclusive) back, Unblock. No exclusivity
// anywhere.
func TestTransactionFig4aInitialWPLoad(t *testing.T) {
	s, tr := tracedSystem(t, SwiftDir, 2)
	s.AccessSync(0, blockA, false, true, 0)
	s.Quiesce()
	want := "GETS_WP Data Unblock"
	if got := tr.KindSeq(); got != want {
		t.Fatalf("sequence = %q, want %q\n%s", got, want, tr.Render("fig4a"))
	}
	if !tr.Events[0].Msg.WP {
		t.Fatal("GETS_WP lost the write-protection argument")
	}
}

// Figure 4(b): remote load after the initial load of write-protected data —
// a pure two-hop LLC service, with no forwarding and no messages to the
// first core.
func TestTransactionFig4bRemoteWPLoad(t *testing.T) {
	s, tr := tracedSystem(t, SwiftDir, 2)
	s.AccessSync(1, blockA, false, true, 0)
	s.Quiesce()
	tr.Reset()
	s.AccessSync(0, blockA, false, true, 0)
	s.Quiesce()
	want := "GETS_WP Data Unblock"
	if got := tr.KindSeq(); got != want {
		t.Fatalf("sequence = %q, want %q\n%s", got, want, tr.Render("fig4b"))
	}
	for _, e := range tr.Events {
		if e.Dst == 1 || e.Msg.Src == 1 {
			t.Fatalf("core 1 involved in a remote WP load:\n%s", tr.Render("fig4b"))
		}
	}
}

// Figure 4(c): initial load of non-write-protected data — GETS,
// Data_Exclusive, Exclusive_Unblock.
func TestTransactionFig4cInitialLoad(t *testing.T) {
	for _, p := range Policies {
		s, tr := tracedSystem(t, p, 2)
		s.AccessSync(0, blockA, false, false, 0)
		s.Quiesce()
		want := "GETS Data_Exclusive Exclusive_Unblock"
		if got := tr.KindSeq(); got != want {
			t.Fatalf("%s: sequence = %q, want %q", p.Name(), got, want)
		}
	}
}

// Figure 4(d): store after initial load of non-write-protected data —
// MESI and SwiftDir keep the silent upgrade: not a single coherence
// message.
func TestTransactionFig4dSilentStore(t *testing.T) {
	for _, p := range []Policy{MESI, SwiftDir} {
		s, tr := tracedSystem(t, p, 2)
		s.AccessSync(0, blockA, false, false, 0)
		s.Quiesce()
		tr.Reset()
		s.AccessSync(0, blockA, true, false, 1)
		s.Quiesce()
		if len(tr.Events) != 0 {
			t.Fatalf("%s: silent upgrade produced messages:\n%s", p.Name(), tr.Render("fig4d"))
		}
	}
}

// Figure 2 / Figure 3(b): the same store under S-MESI — Upgrade to the
// LLC, ACK back (the EM^A round trip the paper blames for the slowdown).
func TestTransactionFig2SMESIUpgrade(t *testing.T) {
	s, tr := tracedSystem(t, SMESI, 2)
	s.AccessSync(0, blockA, false, false, 0)
	s.Quiesce()
	tr.Reset()
	s.AccessSync(0, blockA, true, false, 1)
	s.Quiesce()
	want := "Upgrade Upgrade_ACK"
	if got := tr.KindSeq(); got != want {
		t.Fatalf("sequence = %q, want %q", got, want)
	}
}

// Figure 4(e) / Figure 1(a): remote load after an initial load under MESI —
// the directory forwards to the owner, the owner answers the requestor
// directly and writes its copy back to the LLC.
func TestTransactionFig4eRemoteLoadMESI(t *testing.T) {
	s, tr := tracedSystem(t, MESI, 2)
	s.AccessSync(1, blockA, false, false, 0)
	s.Quiesce()
	tr.Reset()
	s.AccessSync(0, blockA, false, false, 0)
	s.Quiesce()
	want := "GETS Fwd_GETS Data_From_Owner WB_Data Unblock"
	if got := tr.KindSeq(); got != want {
		t.Fatalf("sequence = %q, want %q\n%s", got, want, tr.Render("fig4e"))
	}
	// The forwarded data reaches the requestor from the owner's L1.
	var fwd TraceEvent
	for _, e := range tr.Events {
		if e.Msg.Kind == MsgDataFromOwner {
			fwd = e
		}
	}
	if fwd.Msg.Src != 1 || fwd.Dst != 0 {
		t.Fatalf("Data_From_Owner path wrong: %v", fwd)
	}
}

// Figure 1(b)-analogue under S-MESI: a remote load of a directory-E block
// is served from the LLC and the owner is downgraded, with no owner data
// transfer.
func TestTransactionSMESIServeEFromLLC(t *testing.T) {
	s, tr := tracedSystem(t, SMESI, 2)
	s.AccessSync(1, blockA, false, false, 0)
	s.Quiesce()
	tr.Reset()
	s.AccessSync(0, blockA, false, false, 0)
	s.Quiesce()
	want := "GETS Data Downgrade Unblock"
	if got := tr.KindSeq(); got != want {
		t.Fatalf("sequence = %q, want %q\n%s", got, want, tr.Render("smesi-serveE"))
	}
}

// GETX on a shared block: invalidation round trip before the grant.
func TestTransactionStoreInvalidatesSharer(t *testing.T) {
	s, tr := tracedSystem(t, SwiftDir, 3)
	s.AccessSync(1, blockA, false, true, 0)
	s.AccessSync(2, blockA, false, true, 0)
	s.Quiesce()
	tr.Reset()
	s.AccessSync(0, blockA, true, false, 9)
	s.Quiesce()
	got := tr.KindSeq()
	want := "GETX Inv Inv Inv_Ack Inv_Ack Data_Exclusive Exclusive_Unblock"
	if got != want {
		t.Fatalf("sequence = %q, want %q\n%s", got, want, tr.Render("getx-shared"))
	}
}

func TestTracerRenderAndCount(t *testing.T) {
	s, tr := tracedSystem(t, MESI, 2)
	s.AccessSync(0, blockA, false, false, 0)
	s.Quiesce()
	out := tr.Render("demo")
	for _, wantStr := range []string{"demo", "GETS", "LLC/Dir", "L1(0)", "0x10000"} {
		if !strings.Contains(out, wantStr) {
			t.Errorf("render missing %q:\n%s", wantStr, out)
		}
	}
	if tr.Count(MsgGETS) != 1 || tr.Count(MsgFwdGETS) != 0 {
		t.Fatal("count wrong")
	}
	s.DetachTracer()
	n := len(tr.Events)
	s.AccessSync(1, blockA, false, false, 0)
	s.Quiesce()
	if len(tr.Events) != n {
		t.Fatal("tracer still recording after detach")
	}
}
