package coherence

import (
	"testing"

	"repro/internal/cache"
	"repro/internal/sim"
)

// Timing-race fuzzing: randomize interconnect occupancy per message
// (preserving per-port-pair ordering, as real networks do) and hammer
// every protocol with concurrent conflicting traffic across many seeds.
// Any protocol state machine that silently relies on exact message timing
// surfaces here as an invariant violation, a value error, or a panic.

func fuzzTimingConfig(p Policy, seed uint64) SystemConfig {
	cfg := testConfig(p, 4)
	cfg.LLCParams = cache.Params{Name: "LLC", SizeBytes: 4 << 10, Ways: 4, BlockSize: 64}
	cfg.Timing.JitterMax = 7
	cfg.Timing.JitterSeed = seed
	return cfg
}

func TestTimingFuzzAllProtocols(t *testing.T) {
	for _, p := range AllPolicies {
		p := p
		t.Run(p.Name(), func(t *testing.T) {
			for seed := uint64(1); seed <= 12; seed++ {
				s := MustNewSystem(fuzzTimingConfig(p, seed))
				rng := sim.NewRNG(seed * 977)
				completed := 0
				const n = 600
				for i := 0; i < n; i++ {
					write := rng.Bool(0.35)
					s.Submit(rng.Intn(4), Access{
						Addr:  cache.Addr(0x100000 + uint64(rng.Intn(24))*64),
						Write: write,
						WP:    !write && rng.Bool(0.4),
						Value: rng.Uint64(),
						Done:  func(AccessResult) { completed++ },
					})
				}
				s.Eng.RunBounded(80_000_000)
				if completed != n {
					t.Fatalf("seed %d: completed %d/%d", seed, completed, n)
				}
				if err := s.CheckInvariants(); err != nil {
					t.Fatalf("seed %d: %v", seed, err)
				}
			}
		})
	}
}

// Sequential data-value check under jitter: even with perturbed message
// timing, a serialized request stream must stay sequentially consistent.
func TestTimingFuzzSequentialValues(t *testing.T) {
	for _, p := range []Policy{MESI, SwiftDir, SMESI, MOESI, MESIF} {
		p := p
		t.Run(p.Name(), func(t *testing.T) {
			for seed := uint64(1); seed <= 6; seed++ {
				s := MustNewSystem(fuzzTimingConfig(p, seed))
				rng := sim.NewRNG(seed * 31)
				shadow := map[cache.Addr]uint64{}
				v := uint64(1)
				for i := 0; i < 400; i++ {
					core := rng.Intn(4)
					block := cache.Addr(0x200000 + uint64(rng.Intn(20))*64)
					if rng.Bool(0.4) {
						v++
						s.AccessSync(core, block, true, false, v)
						shadow[block] = v
					} else {
						r := s.AccessSync(core, block, false, rng.Bool(0.3), 0)
						want, ok := shadow[block]
						if !ok {
							want = initialToken(block)
						}
						if r.Value != want {
							t.Fatalf("seed %d op %d: got %#x want %#x", seed, i, r.Value, want)
						}
					}
				}
				s.Quiesce()
				if err := s.CheckInvariants(); err != nil {
					t.Fatalf("seed %d: %v", seed, err)
				}
			}
		})
	}
}

// Jitter must not break the security property: SwiftDir's WP loads stay
// non-exclusive and LLC-served regardless of timing.
func TestTimingFuzzSecurityInvariant(t *testing.T) {
	for seed := uint64(1); seed <= 8; seed++ {
		s := MustNewSystem(fuzzTimingConfig(SwiftDir, seed))
		rng := sim.NewRNG(seed)
		for i := 0; i < 500; i++ {
			s.Submit(rng.Intn(4), Access{
				Addr: cache.Addr(0x300000 + uint64(rng.Intn(16))*64),
				WP:   true,
			})
		}
		s.Quiesce()
		if err := s.CheckInvariants(); err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if fw := s.BankStatsTotal().Forwards; fw != 0 {
			t.Fatalf("seed %d: %d forwards on a WP-only workload", seed, fw)
		}
	}
}
