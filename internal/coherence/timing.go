package coherence

import "repro/internal/sim"

// Timing holds the latency parameters of the cache hierarchy, calibrated
// so that the round-trip numbers match the measurements the paper builds
// on: an L1 hit costs 1 cycle and an LLC-served load costs
// L1Tag + Hop + LLCTag + Hop = 17 cycles (Table V's 1-cycle L1 / 16-cycle
// L2 round trip, and the ~17-cycle center of Figure 6), while a three-hop
// load additionally pays Hop + RemoteL1Service, reproducing the ~26-cycle
// E/S gap measured on Intel Xeon by Yao et al.
type Timing struct {
	L1Tag           sim.Cycle // L1 tag+data access
	Hop             sim.Cycle // one interconnect traversal (L1<->LLC or L1<->L1)
	LLCTag          sim.Cycle // LLC tag+data+directory access
	RemoteL1Service sim.Cycle // owner L1's servicing of a forwarded request
	RecallPenalty   sim.Cycle // LLC eviction recall of L1 copies (approximate)

	// LinkOccupancy enables finite interconnect bandwidth: each message
	// occupies its crossbar ports for this many cycles, so bursts queue
	// and latencies acquire load-dependent jitter. Zero (the default)
	// models an ideal network with exactly Hop cycles per traversal.
	LinkOccupancy sim.Cycle

	// JitterMax/JitterSeed perturb per-message interconnect occupancy
	// pseudo-randomly (preserving per-port-pair ordering), for fuzzing
	// the protocol against timing races. Zero disables jitter.
	JitterMax  sim.Cycle
	JitterSeed uint64

	// NUMA topology: with SocketCores > 0, L1 ports are grouped into
	// sockets of that many controllers (and LLC banks are distributed
	// round-robin across sockets); every message crossing a socket
	// boundary pays CrossSocketExtra additional latency per traversal.
	SocketCores      int
	CrossSocketExtra sim.Cycle
}

// DefaultTiming returns the calibrated configuration.
func DefaultTiming() Timing {
	return Timing{
		L1Tag:           1,
		Hop:             3,
		LLCTag:          10,
		RemoteL1Service: 23,
		RecallPenalty:   40,
	}
}

// LLCLoadLatency is the two-hop load service time: the constant latency
// SwiftDir serves all write-protected data with.
func (t Timing) LLCLoadLatency() sim.Cycle {
	return t.L1Tag + t.Hop + t.LLCTag + t.Hop
}

// RemoteLoadLatency is the three-hop load service time via a forwarded
// GETS.
func (t Timing) RemoteLoadLatency() sim.Cycle {
	return t.LLCLoadLatency() + t.Hop + t.RemoteL1Service
}
