package coherence

import (
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/cache"
	"repro/internal/dram"
)

// Differential table-vs-transcript harness: directed litmus and
// conformance scenarios (plus a seeded random stress mix) run with a
// TransitionRecorder attached, and the resulting (state, event, next,
// action) transcripts are compared byte-for-byte against golden files
// recorded from the pre-refactor switch-based controllers. Because the
// recorder also validates every transition against the proto table while
// recording, a passing run simultaneously proves (a) dispatch behaviour
// is unchanged and (b) the canonical tables are sound for every
// transition the scenarios exercise.
//
// Regenerate with SWIFTDIR_UPDATE_TRANSCRIPTS=1 — but note that needing
// to regenerate after a dispatch change means the change altered
// controller behaviour, which is exactly what this harness exists to
// catch.

// taccess is one scripted access; all accesses of a phase are submitted
// before the engine drains, so a phase with conflicting accesses
// exercises the directory's queue/replay machinery.
type taccess struct {
	core  int
	write bool
	line  int
	wp    bool
}

type tphase []taccess

type tscenario struct {
	name   string
	phases []tphase
}

// transcriptConfig: tiny caches over one bank so evictions, recalls and
// writeback races appear within a few dozen accesses; short unjittered
// timings so race windows interleave; no fast path so every access is an
// observed examination.
func transcriptConfig(p Policy) SystemConfig {
	return SystemConfig{
		NumL1:     3,
		L1Params:  cache.Params{Name: "L1", SizeBytes: 512, Ways: 2, BlockSize: 64},
		LLCParams: cache.Params{Name: "LLC", SizeBytes: 2 << 10, Ways: 4, BlockSize: 64},
		Banks:     1,
		Timing: Timing{
			L1Tag: 1, Hop: 2, LLCTag: 3, RemoteL1Service: 4, RecallPenalty: 5,
		},
		Policy:     p,
		DRAM:       dram.DDR3_1600_8x8(),
		NoFastPath: true,
	}
}

func litmusScenario() tscenario {
	ld := func(c, l int) taccess { return taccess{core: c, line: l} }
	ldwp := func(c, l int) taccess { return taccess{core: c, line: l, wp: true} }
	st := func(c, l int) taccess { return taccess{core: c, write: true, line: l} }
	return tscenario{name: "litmus", phases: []tphase{
		{ld(0, 0)},           // cold load: E (or S) grant
		{ld(1, 0)},           // second reader: forward or LLC serve
		{st(0, 0)},           // upgrade with invalidation
		{st(1, 0)},           // M hand-off between cores
		{ld(0, 1), st(1, 1)}, // read/write race on a cold block
		{st(0, 2), st(1, 2)}, // write/write race
		{ldwp(0, 3), ldwp(1, 3)}, // write-protected sharers
		{st(0, 3)},           // store to the write-protected block
		{ld(0, 4), st(0, 4)}, // same-core merge: store joins the load MSHR
		{st(1, 5), ld(1, 5)}, // same-core merge: load joins the store MSHR
		{ld(0, 6), ld(1, 6), st(2, 6)},            // sharer pile-up then writer
		{st(0, 7), st(1, 7), st(2, 7), ld(0, 7)},  // queue pressure on one block
	}}
}

func conformanceScenario() tscenario {
	var phases []tphase
	// Fill core 0's L1 (8 lines) and keep going: clean evictions (PUTS)
	// and the directory's sharer bookkeeping.
	for l := 0; l < 12; l++ {
		phases = append(phases, tphase{{core: 0, line: l}})
	}
	// Dirty the working set: silent or explicit upgrades, then dirty
	// evictions (PUTX) as the set wraps.
	for l := 0; l < 12; l++ {
		phases = append(phases, tphase{{core: 0, write: true, line: l}})
	}
	// A second core streams over the LLC (32 blocks): inclusive
	// evictions recall core 0's survivors, and re-misses race the
	// eviction traffic.
	for l := 4; l < 38; l += 2 {
		phases = append(phases, tphase{{core: 1, line: l}})
	}
	// Cross-core dirty hand-offs on the recalled range.
	for l := 4; l < 12; l++ {
		phases = append(phases, tphase{
			{core: 0, write: true, line: l},
			{core: 1, line: l},
		})
	}
	// Write-protected traffic under LLC pressure.
	for l := 20; l < 26; l++ {
		phases = append(phases, tphase{
			{core: 0, line: l, wp: true},
			{core: 2, line: l, wp: true},
		})
	}
	return tscenario{name: "conformance", phases: phases}
}

// stressScenario: a fixed-seed xorshift mix of 160 accesses in bursts of
// four, over 3 cores and 12 lines with occasional write-protected loads.
func stressScenario() tscenario {
	var phases []tphase
	seed := uint64(0x9E3779B97F4A7C15)
	next := func(n int) int {
		seed ^= seed << 13
		seed ^= seed >> 7
		seed ^= seed << 17
		return int(seed % uint64(n))
	}
	for i := 0; i < 40; i++ {
		var ph tphase
		for j := 0; j < 4; j++ {
			a := taccess{core: next(3), line: next(12)}
			switch next(4) {
			case 0, 1:
				a.write = true
			case 2:
				a.wp = true
			}
			ph = append(ph, a)
		}
		phases = append(phases, ph)
	}
	return tscenario{name: "stress", phases: phases}
}

func runTranscript(t *testing.T, p Policy, sc tscenario) []string {
	t.Helper()
	sys, err := NewSystem(transcriptConfig(p))
	if err != nil {
		t.Fatal(err)
	}
	tr := AttachRecorder(sys)
	for _, ph := range sc.phases {
		for _, a := range ph {
			core := a.core
			sys.Submit(core, Access{
				Addr:  cache.Addr(a.line * 64),
				Write: a.write,
				WP:    a.wp,
				Value: uint64(a.line)<<8 | uint64(a.core) | 1,
				Done:  func(AccessResult) {},
			})
		}
		sys.Quiesce()
	}
	if err := sys.CheckInvariants(); err != nil {
		t.Fatalf("invariants after %s: %v", sc.name, err)
	}
	for _, e := range tr.Errs {
		t.Errorf("recorder: %s", e)
	}
	return tr.Lines
}

// transcriptPolicies lists which policies record which scenarios: the
// directed suites run for every registered policy; the stress mix for
// the paper's three plus the arbitration variant (whose transcript must
// diverge from MESI's only in replay order, never in transitions).
func transcriptCases() map[string][]tscenario {
	lit, conf, str := litmusScenario(), conformanceScenario(), stressScenario()
	out := make(map[string][]tscenario)
	for _, p := range ExtendedPolicies {
		out[p.Name()] = []tscenario{lit, conf}
	}
	for _, name := range []string{"MESI", "SwiftDir", "S-MESI", "Phase-Priority"} {
		out[name] = append(out[name], str)
	}
	return out
}

func TestTranscriptGoldens(t *testing.T) {
	update := os.Getenv("SWIFTDIR_UPDATE_TRANSCRIPTS") != ""
	cases := transcriptCases()
	for _, p := range ExtendedPolicies {
		p := p
		for _, sc := range cases[p.Name()] {
			sc := sc
			t.Run(p.Name()+"/"+sc.name, func(t *testing.T) {
				lines := runTranscript(t, p, sc)
				got := strings.Join(lines, "\n") + "\n"
				path := filepath.Join("testdata", "transcripts",
					fmt.Sprintf("%s_%s.txt", p.Name(), sc.name))
				if update {
					if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
						t.Fatal(err)
					}
					if err := os.WriteFile(path, []byte(got), 0o644); err != nil {
						t.Fatal(err)
					}
					t.Logf("wrote %s (%d transitions)", path, len(lines))
					return
				}
				want, err := os.ReadFile(path)
				if err != nil {
					t.Fatalf("missing golden transcript (run with "+
						"SWIFTDIR_UPDATE_TRANSCRIPTS=1 to record): %v", err)
				}
				if got != string(want) {
					diffTranscript(t, string(want), got)
				}
			})
		}
	}
}

// diffTranscript reports the first divergence with context instead of
// dumping two multi-thousand-line transcripts.
func diffTranscript(t *testing.T, want, got string) {
	t.Helper()
	w, g := strings.Split(want, "\n"), strings.Split(got, "\n")
	n := len(w)
	if len(g) < n {
		n = len(g)
	}
	for i := 0; i < n; i++ {
		if w[i] != g[i] {
			lo := i - 2
			if lo < 0 {
				lo = 0
			}
			t.Fatalf("transcript diverges at line %d:\n  context: %s\n  golden:  %s\n  got:     %s",
				i+1, strings.Join(w[lo:i], " | "), w[i], g[i])
		}
	}
	t.Fatalf("transcript length changed: golden %d lines, got %d", len(w), len(g))
}
