package coherence

import (
	"testing"

	"repro/internal/cache"
	"repro/internal/sim"
)

// numaConfig builds a 2-socket, 4-core machine: L1 ports {0,1} on socket
// 0, {2,3} on socket 1 (with the I-cache-free raw coherence layout, each
// port is a core); banks alternate sockets.
func numaConfig(p Policy) SystemConfig {
	cfg := testConfig(p, 4)
	cfg.Banks = 2
	cfg.Timing.SocketCores = 2
	cfg.Timing.CrossSocketExtra = 40
	return cfg
}

func TestNUMALocalVsRemoteSocketLatency(t *testing.T) {
	// Identical cold loads of the same bank-0 block, from a socket-local
	// and a cross-socket core, on fresh systems (so the DRAM state
	// matches exactly).
	local := MustNewSystem(numaConfig(MESI)).AccessSync(0, 0x10000, false, false, 0)
	remote := MustNewSystem(numaConfig(MESI)).AccessSync(2, 0x10000, false, false, 0)
	if remote.Latency <= local.Latency {
		t.Fatalf("cross-socket load %d not slower than local %d", remote.Latency, local.Latency)
	}
	// Two hops (request + response), each +40.
	if remote.Latency != local.Latency+2*40 {
		t.Fatalf("cross-socket delta = %d, want 80", remote.Latency-local.Latency)
	}
}

// The NUMA dimension of the channel: under MESI the receiver's probe
// latency reveals WHICH SOCKET the prior accessor was on (the forward
// path's length differs), leaking locality information beyond the E/S
// bit. Under SwiftDir the probe is served by the (fixed) home bank, so
// the latency is independent of who accessed the data before.
func TestNUMASocketLocationChannel(t *testing.T) {
	probe := func(p Policy, owner int) sim.Cycle {
		s := MustNewSystem(numaConfig(p))
		block := cache.Addr(0x20000) // bank 0, socket 0
		s.AccessSync(owner, block, false, true, 0)
		s.Quiesce()
		r := s.AccessSync(1, block, false, true, 0) // receiver on socket 0
		return r.Latency
	}

	// MESI: owner on socket 0 (core 0) vs socket 1 (core 2).
	near := probe(MESI, 0)
	far := probe(MESI, 2)
	if far <= near {
		t.Fatalf("MESI: far-owner probe %d not slower than near-owner %d (no locality leak?)", far, near)
	}

	// SwiftDir: identical regardless of the prior accessor's socket.
	sdNear := probe(SwiftDir, 0)
	sdFar := probe(SwiftDir, 2)
	if sdNear != sdFar {
		t.Fatalf("SwiftDir NUMA probe differs: %d vs %d", sdNear, sdFar)
	}
}

// NUMA timing must not break any invariant under concurrent stress.
func TestNUMAStress(t *testing.T) {
	for _, p := range []Policy{MESI, SwiftDir, SMESI, MOESI, MESIF} {
		cfg := numaConfig(p)
		cfg.LLCParams = cache.Params{Name: "LLC", SizeBytes: 4 << 10, Ways: 4, BlockSize: 64}
		s := MustNewSystem(cfg)
		for i := 0; i < 1000; i++ {
			s.Submit(i%4, Access{
				Addr:  cache.Addr(0x100000 + (i%32)*64),
				Write: i%4 == 0,
				WP:    i%3 == 0 && i%4 != 0,
				Value: uint64(i),
			})
		}
		s.Eng.RunBounded(80_000_000)
		if err := s.CheckInvariants(); err != nil {
			t.Fatalf("%s: %v", p.Name(), err)
		}
	}
}

func TestSocketOfMapping(t *testing.T) {
	s := MustNewSystem(numaConfig(MESI))
	// L1 ports 0,1 -> socket 0; 2,3 -> socket 1.
	for port, want := range map[int]int{0: 0, 1: 0, 2: 1, 3: 1} {
		if got := s.socketOf(port); got != want {
			t.Errorf("socketOf(L1 %d) = %d, want %d", port, got, want)
		}
	}
	// Banks (ports 4,5) alternate sockets.
	if s.socketOf(4) != 0 || s.socketOf(5) != 1 {
		t.Errorf("bank sockets = %d,%d", s.socketOf(4), s.socketOf(5))
	}
}
