package coherence

import (
	"fmt"
	"testing"

	"repro/internal/cache"
	"repro/internal/sim"
)

// The validation campaign: every protocol crossed with every hierarchy
// feature (prefetch modes, NUMA distances, link contention, timing
// jitter), under sustained random conflicting traffic, with the full
// invariant suite at quiescence. Skipped in -short mode.

type campaignAxis struct {
	name string
	mut  func(*SystemConfig)
}

func campaignAxes() []campaignAxis {
	return []campaignAxis{
		{"plain", func(c *SystemConfig) {}},
		{"prefetch-naive", func(c *SystemConfig) { c.Prefetch = PrefetchNaive }},
		{"prefetch-aware", func(c *SystemConfig) { c.Prefetch = PrefetchWPAware }},
		{"numa", func(c *SystemConfig) {
			c.Timing.SocketCores = 2
			c.Timing.CrossSocketExtra = 30
		}},
		{"contended", func(c *SystemConfig) { c.Timing.LinkOccupancy = 2 }},
		{"jitter", func(c *SystemConfig) {
			c.Timing.JitterMax = 5
			c.Timing.JitterSeed = 7
		}},
		{"everything", func(c *SystemConfig) {
			c.Prefetch = PrefetchWPAware
			c.Timing.SocketCores = 2
			c.Timing.CrossSocketExtra = 30
			c.Timing.LinkOccupancy = 1
			c.Timing.JitterMax = 3
			c.Timing.JitterSeed = 11
		}},
	}
}

func TestValidationCampaign(t *testing.T) {
	if testing.Short() {
		t.Skip("campaign is long; run without -short")
	}
	for _, p := range AllPolicies {
		for _, ax := range campaignAxes() {
			p, ax := p, ax
			t.Run(fmt.Sprintf("%s/%s", p.Name(), ax.name), func(t *testing.T) {
				cfg := testConfig(p, 4)
				cfg.LLCParams = cache.Params{Name: "LLC", SizeBytes: 8 << 10, Ways: 4, BlockSize: 64}
				ax.mut(&cfg)
				s := MustNewSystem(cfg)
				rng := sim.NewRNG(uint64(len(ax.name))*1000 + 17)
				completed := 0
				const n = 2500
				for i := 0; i < n; i++ {
					write := rng.Bool(0.3)
					s.Submit(rng.Intn(4), Access{
						Addr:  cache.Addr(0x100000 + uint64(rng.Intn(48))*64),
						Write: write,
						WP:    !write && rng.Bool(0.4),
						Value: rng.Uint64(),
						Done:  func(AccessResult) { completed++ },
					})
				}
				s.Eng.RunBounded(200_000_000)
				if completed != n {
					t.Fatalf("completed %d/%d", completed, n)
				}
				if err := s.CheckInvariants(); err != nil {
					t.Fatal(err)
				}
			})
		}
	}
}

// Sequential-consistency campaign: values must be exact under every axis
// for the three paper protocols.
func TestValueCampaign(t *testing.T) {
	if testing.Short() {
		t.Skip("campaign is long; run without -short")
	}
	for _, p := range Policies {
		for _, ax := range campaignAxes() {
			p, ax := p, ax
			t.Run(fmt.Sprintf("%s/%s", p.Name(), ax.name), func(t *testing.T) {
				cfg := testConfig(p, 4)
				cfg.LLCParams = cache.Params{Name: "LLC", SizeBytes: 8 << 10, Ways: 4, BlockSize: 64}
				ax.mut(&cfg)
				s := MustNewSystem(cfg)
				rng := sim.NewRNG(0xCA4)
				shadow := map[cache.Addr]uint64{}
				v := uint64(1)
				for i := 0; i < 1200; i++ {
					core := rng.Intn(4)
					block := cache.Addr(0x200000 + uint64(rng.Intn(40))*64)
					if rng.Bool(0.35) {
						v++
						s.AccessSync(core, block, true, false, v)
						shadow[block] = v
					} else {
						r := s.AccessSync(core, block, false, rng.Bool(0.3), 0)
						want, ok := shadow[block]
						if !ok {
							want = initialToken(block)
						}
						if r.Value != want {
							t.Fatalf("op %d: got %#x want %#x", i, r.Value, want)
						}
					}
				}
				s.Quiesce()
				if err := s.CheckInvariants(); err != nil {
					t.Fatal(err)
				}
			})
		}
	}
}
